package repro_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro"
)

// The README's embedded code snippets live here as Example functions so the
// compiler (and go vet, in CI) keeps the documentation honest: if the API
// drifts, the build breaks instead of the README rotting. They carry no
// Output comment on purpose — at the paper's injection budget they are
// full experiments, minutes not milliseconds; `go test` compiles and vets
// them without executing, and the runnable walkthroughs under examples/
// (exercised by `make examples` in CI) cover execution.

// Example_quickstart is the README "Quick start" snippet: build the paper's
// study, measure the ground truth, reproduce Table I.
func Example_quickstart() {
	study, err := repro.NewStudy(repro.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := study.RunGroundTruth(); err != nil { // Section IV-A ground truth
		log.Fatal(err)
	}
	rows, err := study.Table1(repro.PaperModels(), // Table I reproduction
		repro.PaperCVSplits, repro.PaperTrainFrac, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.RenderTable1(os.Stdout, rows); err != nil {
		log.Fatal(err)
	}
}

// Example_crossCircuit is the README "Corpus & scenarios" snippet: train an
// FDR model on one circuit, predict another, render the transfer matrices.
func Example_crossCircuit() {
	var studies []*repro.Study
	for _, id := range []string{"alupipe/randomops", "uartser/paced"} {
		sc, err := repro.FindCorpusScenario(id)
		if err != nil {
			log.Fatal(err)
		}
		study, err := repro.NewCorpusStudy(sc, repro.CorpusStudyConfig{
			Scale:           repro.CorpusScaleSmall,
			InjectionsPerFF: 32,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := study.RunGroundTruth(); err != nil {
			log.Fatal(err)
		}
		studies = append(studies, study)
	}
	spec, err := repro.FindModel("k-NN")
	if err != nil {
		log.Fatal(err)
	}
	tm, err := repro.CrossCircuit(studies, spec, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := repro.RenderTransferMatrix(os.Stdout, tm); err != nil {
		log.Fatal(err)
	}
}

// Example_adaptiveCampaign is the README "Active learning" snippet: replace
// the exhaustive campaign with a committee-guided loop that stops when the
// FFR estimate converges.
func Example_adaptiveCampaign() {
	study, err := repro.NewStudy(repro.DefaultStudyConfig())
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := repro.NewAdaptiveStudy(study, repro.AdaptiveStudyConfig{
		Strategy: repro.StrategyCommittee,
		DeltaTol: 0.005,
		Patience: 2,
		OnRound: func(r repro.AdaptiveRound) {
			fmt.Printf("round %d: %d FFs measured, FFR estimate %.4f\n",
				r.Index, r.MeasuredFFs, r.FFR)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := adaptive.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FFR %.4f from %d of %d flip-flops (converged=%v)\n",
		res.FFR, len(res.Measured), study.NumFFs(), res.Converged)
}

// Example_harden is the README "Hardening advisor" snippet: load a trained
// artifact, plan the TMR set that fits half the full-TMR area, then verify
// the plan by rewriting the netlist and re-measuring residual FFR.
func Example_harden() {
	art, err := repro.LoadModel("knn.ffrm") // e.g. from ffrcorpus -sweep -out
	if err != nil {
		log.Fatal(err)
	}
	sc, err := repro.FindCorpusScenario("alupipe/randomops")
	if err != nil {
		log.Fatal(err)
	}
	m, err := sc.Materialize(repro.CorpusScaleSmall, 1)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := repro.HardenAdvise(art, m, 0.5, repro.HardenConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harden %d of %d FFs: predicted FFR %.4f -> %.4f\n",
		len(plan.Selected), m.NumFFs(), plan.BaseFFR, plan.ResidualFFR)

	v, err := repro.HardenVerify(context.Background(), plan, repro.HardenVerifyConfig{
		Scenario: sc,
		Scale:    repro.CorpusScaleSmall,
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured residual %.4f vs baseline %.4f (improved=%v)\n",
		v.MeasuredResidualFFR, v.BaselineFFR, v.Improved())
}
