package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStdLibLookup(t *testing.T) {
	lib := StdLib()
	for _, name := range []string{
		"TIEL", "TIEH", "INV_X1", "BUF_X4", "AND2_X1", "AND4_X2", "OR3_X4",
		"NAND2_X1", "NOR4_X4", "XOR2_X1", "XNOR2_X2", "MUX2_X1", "AOI21_X1",
		"OAI21_X2", "DFF_X1", "DFF_X4",
	} {
		ct, err := lib.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if ct.Name != name {
			t.Fatalf("Lookup(%q).Name = %q", name, ct.Name)
		}
	}
	if _, err := lib.Lookup("FANCY_X9"); err == nil {
		t.Fatal("expected error for unknown cell")
	}
}

func TestStdLibNamesSortedAndComplete(t *testing.T) {
	lib := StdLib()
	names := lib.Names()
	if len(names) < 40 {
		t.Fatalf("library too small: %d types", len(names))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %q >= %q", names[i-1], names[i])
		}
	}
	// Names() must return a copy.
	names[0] = "mutated"
	if lib.Names()[0] == "mutated" {
		t.Fatal("Names leaked internal slice")
	}
}

func TestVariant(t *testing.T) {
	lib := StdLib()
	ct, _ := lib.Lookup("NAND2_X1")
	v, err := lib.Variant(ct, 4)
	if err != nil {
		t.Fatalf("Variant: %v", err)
	}
	if v.Name != "NAND2_X4" || v.Drive != 4 {
		t.Fatalf("Variant = %+v", v)
	}
	if _, err := lib.Variant(ct, 8); err == nil {
		t.Fatal("expected error for missing drive")
	}
	tie, _ := lib.Lookup("TIEL")
	if _, err := lib.Variant(tie, 2); err == nil {
		t.Fatal("TIEL has only X1")
	}
}

func TestIsSequential(t *testing.T) {
	lib := StdLib()
	dff, _ := lib.Lookup("DFF_X2")
	if !dff.IsSequential() {
		t.Fatal("DFF must be sequential")
	}
	and2, _ := lib.Lookup("AND2_X1")
	if and2.IsSequential() {
		t.Fatal("AND2 must not be sequential")
	}
}

// TestAreaUnits checks the ordering properties the hardening budget math
// relies on: every cell has positive area, stronger drives cost more but
// sublinearly, wider gates cost more, and a flip-flop dwarfs a NAND2.
func TestAreaUnits(t *testing.T) {
	lib := StdLib()
	for _, name := range lib.Names() {
		ct, _ := lib.Lookup(name)
		if ct.AreaUnits() <= 0 {
			t.Errorf("%s has non-positive area %v", name, ct.AreaUnits())
		}
	}
	area := func(name string) float64 {
		ct, err := lib.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		return ct.AreaUnits()
	}
	if !(area("DFF_X1") < area("DFF_X2") && area("DFF_X2") < area("DFF_X4")) {
		t.Error("drive strength must increase area")
	}
	if area("DFF_X4") >= 2*area("DFF_X1") {
		t.Error("drive scaling must be sublinear")
	}
	if !(area("NAND2_X1") < area("NAND3_X1") && area("NAND3_X1") < area("NAND4_X1")) {
		t.Error("input count must increase area")
	}
	if area("NAND2_X1") != 1.0 {
		t.Errorf("NAND2_X1 is the unit cell, got %v", area("NAND2_X1"))
	}
	if area("DFF_X1") < 4*area("NAND2_X1") {
		t.Error("a flip-flop must cost several gate equivalents")
	}
}

func TestFuncString(t *testing.T) {
	if FuncNand.String() != "NAND" || FuncMux2.String() != "MUX2" {
		t.Fatal("Func.String wrong")
	}
	if Func(99).String() == "" {
		t.Fatal("unknown func must stringify")
	}
}

// truthCases pin down the scalar semantics of every combinational function.
func TestEvalScalarTruthTables(t *testing.T) {
	cases := []struct {
		f    Func
		in   []bool
		want bool
	}{
		{FuncConst0, nil, false},
		{FuncConst1, nil, true},
		{FuncBuf, []bool{true}, true},
		{FuncInv, []bool{true}, false},
		{FuncAnd, []bool{true, true, false}, false},
		{FuncAnd, []bool{true, true, true}, true},
		{FuncOr, []bool{false, false}, false},
		{FuncOr, []bool{false, true}, true},
		{FuncNand, []bool{true, true}, false},
		{FuncNand, []bool{true, false}, true},
		{FuncNor, []bool{false, false}, true},
		{FuncNor, []bool{true, false}, false},
		{FuncXor, []bool{true, true}, false},
		{FuncXor, []bool{true, false}, true},
		{FuncXnor, []bool{true, true}, true},
		{FuncXnor, []bool{true, false}, false},
		{FuncMux2, []bool{true, false, false}, true},  // sel=0 → A
		{FuncMux2, []bool{true, false, true}, false},  // sel=1 → B
		{FuncAOI21, []bool{true, true, false}, false}, // (A&B)|C = 1 → 0
		{FuncAOI21, []bool{true, false, false}, true},
		{FuncOAI21, []bool{false, false, true}, true}, // (A|B)&C = 0 → 1
		{FuncOAI21, []bool{true, false, true}, false},
	}
	for _, c := range cases {
		if got := EvalScalar(c.f, c.in); got != c.want {
			t.Errorf("EvalScalar(%v, %v) = %v, want %v", c.f, c.in, got, c.want)
		}
	}
}

func TestEvalScalarPanicsOnDFF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalScalar(FuncDFF, []bool{true})
}

func TestEvalPackedPanicsOnDFF(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvalPacked(FuncDFF, []uint64{0})
}

// Property: EvalPacked agrees with EvalScalar on every lane for every
// combinational function and random inputs.
func TestEvalPackedMatchesScalar(t *testing.T) {
	funcs := []struct {
		f Func
		n int
	}{
		{FuncConst0, 0}, {FuncConst1, 0}, {FuncBuf, 1}, {FuncInv, 1},
		{FuncAnd, 2}, {FuncAnd, 3}, {FuncAnd, 4},
		{FuncOr, 2}, {FuncOr, 3}, {FuncOr, 4},
		{FuncNand, 2}, {FuncNand, 3}, {FuncNand, 4},
		{FuncNor, 2}, {FuncNor, 3}, {FuncNor, 4},
		{FuncXor, 2}, {FuncXnor, 2},
		{FuncMux2, 3}, {FuncAOI21, 3}, {FuncOAI21, 3},
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, fc := range funcs {
			words := make([]uint64, fc.n)
			for i := range words {
				words[i] = rng.Uint64()
			}
			packed := EvalPacked(fc.f, words)
			for lane := 0; lane < 64; lane++ {
				bits := make([]bool, fc.n)
				for i := range bits {
					bits[i] = (words[i]>>uint(lane))&1 == 1
				}
				want := EvalScalar(fc.f, bits)
				got := (packed>>uint(lane))&1 == 1
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
