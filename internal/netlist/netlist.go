package netlist

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// NetID identifies a net (a single-driver wire) within a netlist.
type NetID int32

// CellID identifies a cell instance within a netlist.
type CellID int32

// None marks an absent net reference.
const None NetID = -1

// Net is a single-bit wire with exactly one driver: either a primary input
// or the output pin of a cell.
type Net struct {
	Name   string
	Driver CellID // driving cell, or -1 when driven by a primary input
}

// Cell is an instance of a library cell type.
type Cell struct {
	Name   string
	Type   *CellType
	Inputs []NetID // input pins in library order
	Output NetID
	Init   bool // initial/reset state; meaningful only for FuncDFF
}

// Netlist is a flattened gate-level circuit.
//
// Clocking model: a single implicit global clock drives every DFF. Reset is
// performed by loading every DFF's Init value, which matches how the paper's
// testbench initializes the design before stimulus.
type Netlist struct {
	Name    string
	Nets    []Net
	Cells   []Cell
	Inputs  []NetID // primary input nets, in port order
	Outputs []NetID // primary output nets, in port order
	// OutputNames are the port names of Outputs (a net may feed several
	// differently named output ports).
	OutputNames []string

	netByName map[string]NetID
}

// FindOutput resolves an output port by name and returns its position.
func (n *Netlist) FindOutput(name string) (int, bool) {
	for i, on := range n.OutputNames {
		if on == name {
			return i, true
		}
	}
	return 0, false
}

// NewNetlist returns an empty netlist with the given design name.
func NewNetlist(name string) *Netlist {
	return &Netlist{Name: name, netByName: make(map[string]NetID)}
}

// AddNet appends a net with the given name and driver and returns its ID.
// Callers must keep names unique; FindNet resolves them.
func (n *Netlist) AddNet(name string, driver CellID) (NetID, error) {
	if _, dup := n.netByName[name]; dup {
		return None, fmt.Errorf("netlist: duplicate net name %q", name)
	}
	id := NetID(len(n.Nets))
	n.Nets = append(n.Nets, Net{Name: name, Driver: driver})
	n.netByName[name] = id
	return id, nil
}

// FindNet resolves a net by name.
func (n *Netlist) FindNet(name string) (NetID, bool) {
	id, ok := n.netByName[name]
	return id, ok
}

// NumFFs returns the number of sequential cells.
func (n *Netlist) NumFFs() int {
	c := 0
	for i := range n.Cells {
		if n.Cells[i].Type.IsSequential() {
			c++
		}
	}
	return c
}

// FFs returns the IDs of all sequential cells in instantiation order.
func (n *Netlist) FFs() []CellID {
	out := make([]CellID, 0, 64)
	for i := range n.Cells {
		if n.Cells[i].Type.IsSequential() {
			out = append(out, CellID(i))
		}
	}
	return out
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Nets      int
	Cells     int
	FlipFlops int
	Combo     int
	Inputs    int
	Outputs   int
	MaxLevel  int // combinational depth (levels of logic)
}

// Stats computes summary statistics. The combinational depth is 0 for purely
// sequential netlists and -1 if the netlist has combinational cycles.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Nets:    len(n.Nets),
		Cells:   len(n.Cells),
		Inputs:  len(n.Inputs),
		Outputs: len(n.Outputs),
	}
	for i := range n.Cells {
		if n.Cells[i].Type.IsSequential() {
			s.FlipFlops++
		} else {
			s.Combo++
		}
	}
	levels, err := n.CombLevels()
	if err != nil {
		s.MaxLevel = -1
		return s
	}
	for _, l := range levels {
		if l > s.MaxLevel {
			s.MaxLevel = l
		}
	}
	return s
}

// CombGraph builds the cell-level dependency graph restricted to
// combinational evaluation order: an edge u→v means combinational cell v
// reads the output of cell u. Flip-flop outputs and primary inputs are
// sources (no incoming edges in this graph), so a valid netlist yields a DAG.
func (n *Netlist) CombGraph() *graph.Digraph {
	g := graph.New(len(n.Cells))
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if c.Type.IsSequential() {
			continue // state updates are not part of combinational order
		}
		for _, in := range c.Inputs {
			drv := n.Nets[in].Driver
			if drv < 0 {
				continue // primary input
			}
			if n.Cells[drv].Type.IsSequential() {
				continue // FF output is a source for this cycle
			}
			// Error impossible: both IDs are in range.
			_ = g.AddEdge(int(drv), ci)
		}
	}
	return g
}

// CombLevels returns, for each cell, its combinational logic level (0 for
// flip-flops and cells fed only by FFs/primary inputs). It returns
// graph.ErrCycle when combinational feedback exists.
func (n *Netlist) CombLevels() ([]int, error) {
	lv, err := n.CombGraph().Levels()
	if err != nil {
		return nil, fmt.Errorf("netlist %q: %w", n.Name, err)
	}
	return lv, nil
}

// Validation errors.
var (
	ErrUndriven  = errors.New("netlist: undriven net")
	ErrBadPinout = errors.New("netlist: pin count mismatch")
	ErrBadRef    = errors.New("netlist: reference out of range")
)

// Validate checks structural invariants: every net reference is in range,
// pin counts match cell types, every net has a consistent driver record, and
// the combinational subcircuit is acyclic.
func (n *Netlist) Validate() error {
	for ci := range n.Cells {
		c := &n.Cells[ci]
		if len(c.Inputs) != c.Type.Inputs {
			return fmt.Errorf("%w: cell %q (%s) has %d inputs, wants %d",
				ErrBadPinout, c.Name, c.Type.Name, len(c.Inputs), c.Type.Inputs)
		}
		for _, in := range c.Inputs {
			if in < 0 || int(in) >= len(n.Nets) {
				return fmt.Errorf("%w: cell %q input net %d", ErrBadRef, c.Name, in)
			}
		}
		if c.Output < 0 || int(c.Output) >= len(n.Nets) {
			return fmt.Errorf("%w: cell %q output net %d", ErrBadRef, c.Name, c.Output)
		}
		if n.Nets[c.Output].Driver != CellID(ci) {
			return fmt.Errorf("netlist: net %q driver mismatch: cell %q claims it",
				n.Nets[c.Output].Name, c.Name)
		}
	}
	driven := make([]bool, len(n.Nets))
	for _, id := range n.Inputs {
		if id < 0 || int(id) >= len(n.Nets) {
			return fmt.Errorf("%w: primary input net %d", ErrBadRef, id)
		}
		driven[id] = true
	}
	for ci := range n.Cells {
		driven[n.Cells[ci].Output] = true
	}
	for i, d := range driven {
		if !d {
			return fmt.Errorf("%w: %q", ErrUndriven, n.Nets[i].Name)
		}
	}
	if len(n.OutputNames) != len(n.Outputs) {
		return fmt.Errorf("netlist: %d output names for %d outputs", len(n.OutputNames), len(n.Outputs))
	}
	for _, id := range n.Outputs {
		if id < 0 || int(id) >= len(n.Nets) {
			return fmt.Errorf("%w: primary output net %d", ErrBadRef, id)
		}
	}
	if _, err := n.CombLevels(); err != nil {
		return err
	}
	return nil
}
