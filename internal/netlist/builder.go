package netlist

import (
	"fmt"
	"strings"
)

// Builder incrementally constructs a valid netlist. It keeps a sticky error:
// the first failure is recorded and every later call becomes a no-op, so
// generator code can compose gates without per-call error handling and check
// Finish once (the "errWriter" pattern from Effective Go).
//
// Gates created through the builder always use the X1 drive variant; the
// synthesis pass in internal/circuit retypes cells to stronger variants.
type Builder struct {
	lib      *Library
	nl       *Netlist
	prefix   string
	auto     int
	err      error
	const0   NetID
	const1   NetID
	pendingD int // DFFDecl flip-flops whose D pin is not wired yet
	ffCount  int
}

// FFCount returns the number of flip-flops instantiated so far. Generators
// use it to size padding structures to an exact flip-flop budget.
func (b *Builder) FFCount() int { return b.ffCount }

// NewBuilder returns a builder for a design with the given name, using the
// built-in standard-cell library.
func NewBuilder(design string) *Builder {
	return &Builder{lib: StdLib(), nl: NewNetlist(design), const0: None, const1: None}
}

// Err returns the sticky error, if any.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...interface{}) NetID {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return None
}

// Scope pushes a hierarchical name prefix ("txfifo") and returns a function
// that pops it. Instance and net names created inside the scope are prefixed
// with "txfifo/".
func (b *Builder) Scope(name string) func() {
	old := b.prefix
	b.prefix = b.prefix + name + "/"
	return func() { b.prefix = old }
}

func (b *Builder) qualify(name string) string { return b.prefix + name }

func (b *Builder) autoName(kind string) string {
	b.auto++
	return fmt.Sprintf("%s%s_%d", b.prefix, kind, b.auto)
}

// Input declares a primary input and returns its net.
func (b *Builder) Input(name string) NetID {
	if b.err != nil {
		return None
	}
	id, err := b.nl.AddNet(b.qualify(name), -1)
	if err != nil {
		return b.fail("builder: %w", err)
	}
	b.nl.Inputs = append(b.nl.Inputs, id)
	return id
}

// InputBus declares width primary inputs named name[0..width-1], LSB first.
func (b *Builder) InputBus(name string, width int) []NetID {
	out := make([]NetID, width)
	for i := 0; i < width; i++ {
		out[i] = b.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

// Output declares net as a primary output port with the given port name.
func (b *Builder) Output(name string, net NetID) {
	if b.err != nil {
		return
	}
	if net == None {
		b.fail("builder: output %q wired to no net", name)
		return
	}
	b.nl.Outputs = append(b.nl.Outputs, net)
	b.nl.OutputNames = append(b.nl.OutputNames, b.qualify(name))
}

// OutputBus declares each net of a bus as a primary output, LSB first.
func (b *Builder) OutputBus(name string, nets []NetID) {
	for i, n := range nets {
		b.Output(fmt.Sprintf("%s[%d]", name, i), n)
	}
}

// cell instantiates a cell of the given type name with auto-generated
// instance and output-net names.
func (b *Builder) cell(typeName, kind string, inputs []NetID, init bool) NetID {
	if b.err != nil {
		return None
	}
	for _, in := range inputs {
		if in == None {
			return b.fail("builder: %s gate wired to missing net", kind)
		}
	}
	ct, err := b.lib.Lookup(typeName)
	if err != nil {
		return b.fail("builder: %w", err)
	}
	if len(inputs) != ct.Inputs {
		return b.fail("builder: %s expects %d pins, got %d", typeName, ct.Inputs, len(inputs))
	}
	instName := b.autoName(kind)
	cid := CellID(len(b.nl.Cells))
	out, err := b.nl.AddNet(instName+"_o", cid)
	if err != nil {
		return b.fail("builder: %w", err)
	}
	ins := make([]NetID, len(inputs))
	copy(ins, inputs)
	b.nl.Cells = append(b.nl.Cells, Cell{
		Name:   instName,
		Type:   ct,
		Inputs: ins,
		Output: out,
		Init:   init,
	})
	return out
}

// Const0 returns the output of a (lazily created) TIEL cell.
func (b *Builder) Const0() NetID {
	if b.const0 == None {
		old := b.prefix
		b.prefix = ""
		b.const0 = b.cell("TIEL", "tiel", nil, false)
		b.prefix = old
	}
	return b.const0
}

// Const1 returns the output of a (lazily created) TIEH cell.
func (b *Builder) Const1() NetID {
	if b.const1 == None {
		old := b.prefix
		b.prefix = ""
		b.const1 = b.cell("TIEH", "tieh", nil, false)
		b.prefix = old
	}
	return b.const1
}

// Not returns !a.
func (b *Builder) Not(a NetID) NetID { return b.cell("INV_X1", "inv", []NetID{a}, false) }

// Buf returns a buffered copy of a.
func (b *Builder) Buf(a NetID) NetID { return b.cell("BUF_X1", "buf", []NetID{a}, false) }

// nary folds ins into a tree of up-to-4-input gates of the given function.
func (b *Builder) nary(f Func, kind string, ins []NetID) NetID {
	switch len(ins) {
	case 0:
		return b.fail("builder: %s with no inputs", kind)
	case 1:
		return ins[0]
	}
	work := make([]NetID, len(ins))
	copy(work, ins)
	for len(work) > 1 {
		next := work[:0:0]
		for i := 0; i < len(work); i += 4 {
			j := i + 4
			if j > len(work) {
				j = i + (len(work) - i)
			}
			chunk := work[i:j]
			if len(chunk) == 1 {
				next = append(next, chunk[0])
				continue
			}
			name := fmt.Sprintf("%s%d_X1", strings.ToUpper(f.String()), len(chunk))
			next = append(next, b.cell(name, kind, chunk, false))
		}
		work = next
	}
	return work[0]
}

// And returns the conjunction of the inputs, building a gate tree as needed.
func (b *Builder) And(ins ...NetID) NetID { return b.nary(FuncAnd, "and", ins) }

// Or returns the disjunction of the inputs, building a gate tree as needed.
func (b *Builder) Or(ins ...NetID) NetID { return b.nary(FuncOr, "or", ins) }

// Nand returns !(a&b).
func (b *Builder) Nand(a, x NetID) NetID { return b.cell("NAND2_X1", "nand", []NetID{a, x}, false) }

// Nor returns !(a|b).
func (b *Builder) Nor(a, x NetID) NetID { return b.cell("NOR2_X1", "nor", []NetID{a, x}, false) }

// Xor returns a^b.
func (b *Builder) Xor(a, x NetID) NetID { return b.cell("XOR2_X1", "xor", []NetID{a, x}, false) }

// Xnor returns !(a^b).
func (b *Builder) Xnor(a, x NetID) NetID { return b.cell("XNOR2_X1", "xnor", []NetID{a, x}, false) }

// Mux returns sel ? d1 : d0.
func (b *Builder) Mux(d0, d1, sel NetID) NetID {
	return b.cell("MUX2_X1", "mux", []NetID{d0, d1, sel}, false)
}

// AOI21 returns !((a&x)|c).
func (b *Builder) AOI21(a, x, c NetID) NetID {
	return b.cell("AOI21_X1", "aoi", []NetID{a, x, c}, false)
}

// OAI21 returns !((a|x)&c).
func (b *Builder) OAI21(a, x, c NetID) NetID {
	return b.cell("OAI21_X1", "oai", []NetID{a, x, c}, false)
}

// DFF instantiates a named flip-flop and returns its Q net. The name is
// qualified by the current scope and must be unique; register buses should
// use names like "state[3]" so that bus-detection features can group them.
func (b *Builder) DFF(name string, d NetID, init bool) NetID {
	if b.err != nil {
		return None
	}
	if d == None {
		return b.fail("builder: DFF %q wired to missing net", name)
	}
	ct, err := b.lib.Lookup("DFF_X1")
	if err != nil {
		return b.fail("builder: %w", err)
	}
	instName := b.qualify(name)
	cid := CellID(len(b.nl.Cells))
	out, err := b.nl.AddNet(instName+"_q", cid)
	if err != nil {
		return b.fail("builder: %w", err)
	}
	b.nl.Cells = append(b.nl.Cells, Cell{
		Name:   instName,
		Type:   ct,
		Inputs: []NetID{d},
		Output: out,
		Init:   init,
	})
	b.ffCount++
	return out
}

// DFFDecl declares a flip-flop whose D input is wired later, enabling
// feedback through combinational logic that reads Q (counters, FSM state,
// enable registers). It returns the Q net and a function that must be called
// exactly once to wire the D pin; Finish fails if any declared FF was left
// unwired.
func (b *Builder) DFFDecl(name string, init bool) (NetID, func(NetID)) {
	if b.err != nil {
		return None, func(NetID) {}
	}
	ct, err := b.lib.Lookup("DFF_X1")
	if err != nil {
		b.fail("builder: %w", err)
		return None, func(NetID) {}
	}
	instName := b.qualify(name)
	cid := CellID(len(b.nl.Cells))
	out, err := b.nl.AddNet(instName+"_q", cid)
	if err != nil {
		b.fail("builder: %w", err)
		return None, func(NetID) {}
	}
	b.nl.Cells = append(b.nl.Cells, Cell{
		Name:   instName,
		Type:   ct,
		Inputs: []NetID{None}, // wired by the returned closure
		Output: out,
		Init:   init,
	})
	b.ffCount++
	b.pendingD++
	wired := false
	setD := func(d NetID) {
		if b.err != nil {
			return
		}
		if wired {
			b.fail("builder: DFF %q D pin wired twice", instName)
			return
		}
		if d == None {
			b.fail("builder: DFF %q wired to missing net", instName)
			return
		}
		wired = true
		b.pendingD--
		b.nl.Cells[cid].Inputs[0] = d
	}
	return out, setD
}

// Placeholder reserves a net that will be driven by a DFF created later,
// enabling feedback loops (e.g. FSM state registers). Wire it with Close.
type Placeholder struct {
	b   *Builder
	net NetID
}

// NewPlaceholder creates a forward-referenced net. It is implemented as a
// BUF cell whose input is patched by Close.
func (b *Builder) NewPlaceholder() *Placeholder {
	if b.err != nil {
		return &Placeholder{b: b, net: None}
	}
	// Create the buf with a temporary self-input; Close rewires pin 0.
	ct, err := b.lib.Lookup("BUF_X1")
	if err != nil {
		b.fail("builder: %w", err)
		return &Placeholder{b: b, net: None}
	}
	instName := b.autoName("fwd")
	cid := CellID(len(b.nl.Cells))
	out, err := b.nl.AddNet(instName+"_o", cid)
	if err != nil {
		b.fail("builder: %w", err)
		return &Placeholder{b: b, net: None}
	}
	b.nl.Cells = append(b.nl.Cells, Cell{
		Name:   instName,
		Type:   ct,
		Inputs: []NetID{out}, // temporarily self-driven; must be Closed
		Output: out,
	})
	return &Placeholder{b: b, net: out}
}

// Net returns the forward-referenced net.
func (p *Placeholder) Net() NetID { return p.net }

// Close wires the placeholder to its real source net.
func (p *Placeholder) Close(src NetID) {
	if p.b.err != nil || p.net == None {
		return
	}
	if src == None {
		p.b.fail("builder: placeholder closed with missing net")
		return
	}
	drv := p.b.nl.Nets[p.net].Driver
	p.b.nl.Cells[drv].Inputs[0] = src
}

// Finish validates and returns the constructed netlist. The builder must not
// be reused afterwards.
func (b *Builder) Finish() (*Netlist, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.pendingD != 0 {
		return nil, fmt.Errorf("builder: %d declared flip-flops left unwired", b.pendingD)
	}
	// Unclosed placeholders remain self-driven and surface as cycles.
	if err := b.nl.Validate(); err != nil {
		return nil, fmt.Errorf("builder: %w", err)
	}
	return b.nl, nil
}
