package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The .gnl plain-text netlist format, one statement per line:
//
//	# comment
//	design <name>
//	input <net>
//	cell <instance> <type> out=<net> [in=<net>,<net>,...] [init=0|1]
//	output <port> <net>
//
// Nets are declared by `input` lines and by `out=` clauses; `in=` clauses may
// reference nets declared anywhere in the file (two-pass resolution), which
// permits sequential feedback loops.

// Write serializes nl in .gnl format.
func Write(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "design %s\n", nl.Name)
	for _, in := range nl.Inputs {
		fmt.Fprintf(bw, "input %s\n", nl.Nets[in].Name)
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		fmt.Fprintf(bw, "cell %s %s out=%s", c.Name, c.Type.Name, nl.Nets[c.Output].Name)
		if len(c.Inputs) > 0 {
			names := make([]string, len(c.Inputs))
			for i, id := range c.Inputs {
				names[i] = nl.Nets[id].Name
			}
			fmt.Fprintf(bw, " in=%s", strings.Join(names, ","))
		}
		if c.Type.IsSequential() {
			init := 0
			if c.Init {
				init = 1
			}
			fmt.Fprintf(bw, " init=%d", init)
		}
		bw.WriteByte('\n')
	}
	for i, out := range nl.Outputs {
		fmt.Fprintf(bw, "output %s %s\n", nl.OutputNames[i], nl.Nets[out].Name)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("netlist: write: %w", err)
	}
	return nil
}

type parsedCell struct {
	line     int
	inst     string
	typeName string
	outNet   string
	inNets   []string
	init     bool
}

// Parse reads a .gnl netlist. The result is validated before being returned.
func Parse(r io.Reader) (*Netlist, error) {
	lib := StdLib()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)

	var (
		nl      *Netlist
		cells   []parsedCell
		inputs  []string
		outputs [][2]string // {port, net}
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "design":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: design wants one name", lineNo)
			}
			if nl != nil {
				return nil, fmt.Errorf("netlist: line %d: duplicate design statement", lineNo)
			}
			nl = NewNetlist(fields[1])
		case "input":
			if len(fields) != 2 {
				return nil, fmt.Errorf("netlist: line %d: input wants one net", lineNo)
			}
			inputs = append(inputs, fields[1])
		case "output":
			switch len(fields) {
			case 2: // shorthand: port name equals net name
				outputs = append(outputs, [2]string{fields[1], fields[1]})
			case 3:
				outputs = append(outputs, [2]string{fields[1], fields[2]})
			default:
				return nil, fmt.Errorf("netlist: line %d: output wants a port and a net", lineNo)
			}
		case "cell":
			if len(fields) < 4 {
				return nil, fmt.Errorf("netlist: line %d: cell wants instance, type and clauses", lineNo)
			}
			pc := parsedCell{line: lineNo, inst: fields[1], typeName: fields[2]}
			for _, clause := range fields[3:] {
				key, val, ok := strings.Cut(clause, "=")
				if !ok {
					return nil, fmt.Errorf("netlist: line %d: malformed clause %q", lineNo, clause)
				}
				switch key {
				case "out":
					pc.outNet = val
				case "in":
					if val != "" {
						pc.inNets = strings.Split(val, ",")
					}
				case "init":
					switch val {
					case "0":
						pc.init = false
					case "1":
						pc.init = true
					default:
						return nil, fmt.Errorf("netlist: line %d: init must be 0 or 1, got %q", lineNo, val)
					}
				default:
					return nil, fmt.Errorf("netlist: line %d: unknown clause %q", lineNo, key)
				}
			}
			if pc.outNet == "" {
				return nil, fmt.Errorf("netlist: line %d: cell %q has no out= clause", lineNo, pc.inst)
			}
			cells = append(cells, pc)
		default:
			return nil, fmt.Errorf("netlist: line %d: unknown statement %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netlist: read: %w", err)
	}
	if nl == nil {
		return nil, fmt.Errorf("netlist: missing design statement")
	}

	// Pass 1: declare all nets.
	for _, name := range inputs {
		id, err := nl.AddNet(name, -1)
		if err != nil {
			return nil, err
		}
		nl.Inputs = append(nl.Inputs, id)
	}
	for i, pc := range cells {
		if _, err := nl.AddNet(pc.outNet, CellID(i)); err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", pc.line, err)
		}
	}

	// Pass 2: resolve cell pins.
	for _, pc := range cells {
		ct, err := lib.Lookup(pc.typeName)
		if err != nil {
			return nil, fmt.Errorf("netlist: line %d: %w", pc.line, err)
		}
		ins := make([]NetID, len(pc.inNets))
		for i, name := range pc.inNets {
			id, ok := nl.FindNet(name)
			if !ok {
				return nil, fmt.Errorf("netlist: line %d: unknown net %q", pc.line, name)
			}
			ins[i] = id
		}
		out, _ := nl.FindNet(pc.outNet)
		nl.Cells = append(nl.Cells, Cell{
			Name:   pc.inst,
			Type:   ct,
			Inputs: ins,
			Output: out,
			Init:   pc.init,
		})
	}
	for _, o := range outputs {
		id, ok := nl.FindNet(o[1])
		if !ok {
			return nil, fmt.Errorf("netlist: unknown output net %q", o[1])
		}
		nl.Outputs = append(nl.Outputs, id)
		nl.OutputNames = append(nl.OutputNames, o[0])
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}
