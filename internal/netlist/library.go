package netlist

import (
	"fmt"
	"sort"
)

// Func identifies the logic function of a cell type.
type Func int

// Supported logic functions. Sequential cells (FuncDFF) hold one bit of
// state; everything else is combinational.
const (
	FuncConst0 Func = iota + 1 // ties output to logic 0 (TIEL)
	FuncConst1                 // ties output to logic 1 (TIEH)
	FuncBuf
	FuncInv
	FuncAnd
	FuncOr
	FuncNand
	FuncNor
	FuncXor
	FuncXnor
	FuncMux2  // output = S ? B : A, pins [A B S]
	FuncAOI21 // output = !((A&B) | C), pins [A B C]
	FuncOAI21 // output = !((A|B) & C), pins [A B C]
	FuncDFF   // D flip-flop, pins [D]; clock is implicit and global
)

// String returns the mnemonic for f.
func (f Func) String() string {
	switch f {
	case FuncConst0:
		return "CONST0"
	case FuncConst1:
		return "CONST1"
	case FuncBuf:
		return "BUF"
	case FuncInv:
		return "INV"
	case FuncAnd:
		return "AND"
	case FuncOr:
		return "OR"
	case FuncNand:
		return "NAND"
	case FuncNor:
		return "NOR"
	case FuncXor:
		return "XOR"
	case FuncXnor:
		return "XNOR"
	case FuncMux2:
		return "MUX2"
	case FuncAOI21:
		return "AOI21"
	case FuncOAI21:
		return "OAI21"
	case FuncDFF:
		return "DFF"
	default:
		return fmt.Sprintf("Func(%d)", int(f))
	}
}

// CellType describes one entry of the standard-cell library.
type CellType struct {
	Name   string // library name, e.g. "NAND2_X1"
	Func   Func
	Inputs int // number of input pins
	Drive  int // drive strength: 1, 2 or 4 (the X suffix)
}

// IsSequential reports whether the cell holds state.
func (ct *CellType) IsSequential() bool { return ct.Func == FuncDFF }

// AreaUnits returns the cell's area in gate-equivalent units, modelled on
// the NanGate FreePDK45 footprint ratios: a 2-input NAND at minimum drive
// is 1.0 and everything else scales from there. Hardening cost estimates
// (see internal/harden) budget in these units, so the model only needs to
// be *relatively* faithful — a flip-flop really is about five NAND2s, an
// X4 drive really is under twice its X1 footprint.
func (ct *CellType) AreaUnits() float64 {
	var base float64
	switch ct.Func {
	case FuncConst0, FuncConst1:
		base = 0.5
	case FuncBuf:
		base = 1.0
	case FuncInv:
		base = 0.5
	case FuncNand, FuncNor:
		base = 1.0 + 0.5*float64(ct.Inputs-2)
	case FuncAnd, FuncOr:
		base = 1.5 + 0.5*float64(ct.Inputs-2)
	case FuncXor, FuncXnor:
		base = 2.5
	case FuncMux2:
		base = 2.5
	case FuncAOI21, FuncOAI21:
		base = 1.5
	case FuncDFF:
		base = 5.0
	default:
		base = 1.0
	}
	return base * driveAreaFactor(ct.Drive)
}

// driveAreaFactor scales a base footprint by drive strength: stronger
// drives grow sublinearly (only the output stage widens).
func driveAreaFactor(drive int) float64 {
	switch drive {
	case 2:
		return 1.3
	case 4:
		return 1.8
	default:
		return 1.0
	}
}

// Library is an immutable set of cell types indexed by name.
type Library struct {
	byName map[string]*CellType
	names  []string // sorted, for deterministic iteration
}

// Lookup returns the cell type with the given name.
func (l *Library) Lookup(name string) (*CellType, error) {
	ct, ok := l.byName[name]
	if !ok {
		return nil, fmt.Errorf("netlist: unknown cell type %q", name)
	}
	return ct, nil
}

// Names returns the sorted list of cell type names.
func (l *Library) Names() []string {
	out := make([]string, len(l.names))
	copy(out, l.names)
	return out
}

// Variant returns the cell type with the same function and input count as ct
// but the requested drive strength.
func (l *Library) Variant(ct *CellType, drive int) (*CellType, error) {
	if (ct.Func == FuncConst0 || ct.Func == FuncConst1) && drive != 1 {
		return nil, fmt.Errorf("netlist: tie cells only come in X1, requested X%d", drive)
	}
	name := cellName(ct.Func, ct.Inputs, drive)
	v, ok := l.byName[name]
	if !ok {
		return nil, fmt.Errorf("netlist: no %s variant with drive X%d", ct.Func, drive)
	}
	return v, nil
}

func cellName(f Func, inputs, drive int) string {
	switch f {
	case FuncConst0:
		return "TIEL"
	case FuncConst1:
		return "TIEH"
	case FuncBuf, FuncInv, FuncMux2, FuncAOI21, FuncOAI21, FuncDFF:
		return fmt.Sprintf("%s_X%d", f, drive)
	default:
		return fmt.Sprintf("%s%d_X%d", f, inputs, drive)
	}
}

// drives lists the drive-strength variants generated for every cell.
var drives = []int{1, 2, 4}

// StdLib returns the built-in standard-cell library, modelled on the NanGate
// FreePDK45 Open Cell Library's logical views.
func StdLib() *Library {
	l := &Library{byName: make(map[string]*CellType, 96)}
	add := func(f Func, inputs int, driveVariants []int) {
		for _, d := range driveVariants {
			ct := &CellType{Name: cellName(f, inputs, d), Func: f, Inputs: inputs, Drive: d}
			l.byName[ct.Name] = ct
		}
	}
	add(FuncConst0, 0, []int{1})
	add(FuncConst1, 0, []int{1})
	add(FuncBuf, 1, drives)
	add(FuncInv, 1, drives)
	for _, n := range []int{2, 3, 4} {
		add(FuncAnd, n, drives)
		add(FuncOr, n, drives)
		add(FuncNand, n, drives)
		add(FuncNor, n, drives)
	}
	add(FuncXor, 2, drives)
	add(FuncXnor, 2, drives)
	add(FuncMux2, 3, drives)
	add(FuncAOI21, 3, drives)
	add(FuncOAI21, 3, drives)
	add(FuncDFF, 1, drives)
	l.names = make([]string, 0, len(l.byName))
	for n := range l.byName {
		l.names = append(l.names, n)
	}
	sort.Strings(l.names)
	return l
}

// EvalScalar computes the boolean output of a combinational function for the
// given input bits. It is the scalar reference semantics; the bit-parallel
// simulator must agree lane-wise (see internal/sim property tests).
// Calling it for FuncDFF is a programming error and panics.
func EvalScalar(f Func, in []bool) bool {
	switch f {
	case FuncConst0:
		return false
	case FuncConst1:
		return true
	case FuncBuf:
		return in[0]
	case FuncInv:
		return !in[0]
	case FuncAnd:
		v := true
		for _, b := range in {
			v = v && b
		}
		return v
	case FuncOr:
		v := false
		for _, b := range in {
			v = v || b
		}
		return v
	case FuncNand:
		v := true
		for _, b := range in {
			v = v && b
		}
		return !v
	case FuncNor:
		v := false
		for _, b := range in {
			v = v || b
		}
		return !v
	case FuncXor:
		v := false
		for _, b := range in {
			v = v != b
		}
		return v
	case FuncXnor:
		v := false
		for _, b := range in {
			v = v != b
		}
		return !v
	case FuncMux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	case FuncAOI21:
		return !((in[0] && in[1]) || in[2])
	case FuncOAI21:
		return !((in[0] || in[1]) && in[2])
	default:
		panic(fmt.Sprintf("netlist: EvalScalar on non-combinational func %v", f))
	}
}

// EvalPacked computes the 64-lane bit-parallel output of a combinational
// function: bit k of every word belongs to independent simulation lane k.
// Calling it for FuncDFF panics.
func EvalPacked(f Func, in []uint64) uint64 {
	switch f {
	case FuncConst0:
		return 0
	case FuncConst1:
		return ^uint64(0)
	case FuncBuf:
		return in[0]
	case FuncInv:
		return ^in[0]
	case FuncAnd:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		return v
	case FuncOr:
		var v uint64
		for _, w := range in {
			v |= w
		}
		return v
	case FuncNand:
		v := ^uint64(0)
		for _, w := range in {
			v &= w
		}
		return ^v
	case FuncNor:
		var v uint64
		for _, w := range in {
			v |= w
		}
		return ^v
	case FuncXor:
		var v uint64
		for _, w := range in {
			v ^= w
		}
		return v
	case FuncXnor:
		var v uint64
		for _, w := range in {
			v ^= w
		}
		return ^v
	case FuncMux2:
		return (in[0] &^ in[2]) | (in[1] & in[2])
	case FuncAOI21:
		return ^((in[0] & in[1]) | in[2])
	case FuncOAI21:
		return ^((in[0] | in[1]) & in[2])
	default:
		panic(fmt.Sprintf("netlist: EvalPacked on non-combinational func %v", f))
	}
}
