package netlist

import "testing"

func TestFFProximityClustersChain(t *testing.T) {
	// A 6-stage shift register: FF i feeds FF i+1 through an inverter, so
	// the undirected adjacency graph is a path and BFS proximity is simply
	// index distance along the chain. Scopes keep FF names distinct.
	b := NewBuilder("chain")
	d := b.Input("din")
	for i := 0; i < 6; i++ {
		pop := b.Scope(string(rune('a' + i)))
		q := b.DFF("s", d, false)
		pop()
		d = b.Not(q)
	}
	b.Output("q", d)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if nl.NumFFs() != 6 {
		t.Fatalf("NumFFs = %d, want 6", nl.NumFFs())
	}

	clusters := FFProximityClusters(nl, 3)
	if len(clusters) != 6 {
		t.Fatalf("%d clusters, want 6", len(clusters))
	}
	for anchor, cl := range clusters {
		if len(cl) != 3 {
			t.Fatalf("cluster %d has %d members, want 3", anchor, len(cl))
		}
		if cl[0] != anchor {
			t.Fatalf("cluster %d starts with %d, want the anchor", anchor, cl[0])
		}
		seen := map[int]bool{}
		for _, m := range cl {
			if m < 0 || m >= 6 {
				t.Fatalf("cluster %d member %d out of range", anchor, m)
			}
			if seen[m] {
				t.Fatalf("cluster %d repeats member %d", anchor, m)
			}
			seen[m] = true
		}
		// On a chain the nearest FFs are the chain neighbours: every member
		// is within 2 hops of the anchor.
		for _, m := range cl {
			if m-anchor > 2 || anchor-m > 2 {
				t.Fatalf("cluster %d contains distant FF %d on a chain", anchor, m)
			}
		}
	}
}

func TestFFProximityClustersDeterministic(t *testing.T) {
	nl := buildShiftChainScoped(t, 8)
	a := FFProximityClusters(nl, 4)
	b := FFProximityClusters(nl, 4)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("cluster %d differs between runs", i)
			}
		}
	}
}

// TestFFProximityClustersSizeClamp: a requested size beyond the FF count
// clamps to the whole device, and a degenerate size yields singletons.
func TestFFProximityClustersSizeClamp(t *testing.T) {
	nl := buildShiftChainScoped(t, 3)
	for _, cl := range FFProximityClusters(nl, 10) {
		if len(cl) != 3 {
			t.Fatalf("oversized request produced %d members, want all 3", len(cl))
		}
	}
	for anchor, cl := range FFProximityClusters(nl, 0) {
		if len(cl) != 1 || cl[0] != anchor {
			t.Fatalf("size 0 cluster %d = %v, want the anchor alone", anchor, cl)
		}
	}
}

// TestFFProximityClustersDisconnected: flip-flops in disconnected components
// still fill their clusters deterministically by ascending FF index.
func TestFFProximityClustersDisconnected(t *testing.T) {
	b := NewBuilder("islands")
	a := b.Input("a")
	pop := b.Scope("x")
	q1 := b.DFF("r", a, false)
	pop()
	pop = b.Scope("y")
	q2 := b.DFF("r", b.Input("b"), false)
	pop()
	b.Output("o1", q1)
	b.Output("o2", q2)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	clusters := FFProximityClusters(nl, 2)
	for anchor, cl := range clusters {
		if len(cl) != 2 {
			t.Fatalf("cluster %d has %d members, want 2", anchor, len(cl))
		}
		if cl[0] != anchor {
			t.Fatalf("cluster %d anchor-first violated: %v", anchor, cl)
		}
	}
	// The islands are disconnected, so each cluster's filler is the lowest
	// other FF index.
	if clusters[0][1] != 1 || clusters[1][1] != 0 {
		t.Fatalf("disconnected fill wrong: %v", clusters)
	}
}

// buildShiftChainScoped is buildShiftChain with unique scoped FF names.
func buildShiftChainScoped(t *testing.T, stages int) *Netlist {
	t.Helper()
	b := NewBuilder("chain")
	d := b.Input("din")
	for i := 0; i < stages; i++ {
		pop := b.Scope(string(rune('a' + i)))
		q := b.DFF("s", d, false)
		pop()
		d = b.Not(q)
	}
	b.Output("q", d)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return nl
}
