package netlist

import "sort"

// FFProximityClusters computes, for every flip-flop, the set of flip-flops
// an MBU (multi-bit upset) anchored at it would corrupt: the anchor itself
// plus its spatially nearest flip-flops. With no placement data, netlist
// connectivity is the proximity proxy — cells wired together end up placed
// together — so nearness is breadth-first distance over the undirected
// cell-adjacency graph (two cells are adjacent when one drives a net the
// other reads).
//
// The result has one cluster per flip-flop, indexed and populated in
// Netlist.FFs order (the fault campaign's FF index space). Each cluster
// holds min(size, NumFFs) distinct FF indices, anchor first, then BFS
// layer by layer with cell-index tie-breaks; flip-flops unreachable from
// the anchor (disconnected components) are appended in FF-index order
// until the cluster is full. The construction is fully deterministic in
// the netlist, so every campaign node derives identical clusters.
func FFProximityClusters(n *Netlist, size int) [][]int {
	ffs := n.FFs()
	if size > len(ffs) {
		size = len(ffs)
	}
	if size < 1 {
		size = 1
	}
	ffIndex := make(map[CellID]int, len(ffs))
	for i, ci := range ffs {
		ffIndex[ci] = i
	}

	// readers[net] lists the cells reading the net, ascending by cell ID.
	readers := make([][]CellID, len(n.Nets))
	for ci := range n.Cells {
		for _, in := range n.Cells[ci].Inputs {
			readers[in] = append(readers[in], CellID(ci))
		}
	}

	neighbors := func(ci CellID, visit func(CellID)) {
		c := &n.Cells[ci]
		drivers := make([]CellID, 0, len(c.Inputs))
		for _, in := range c.Inputs {
			if d := n.Nets[in].Driver; d >= 0 {
				drivers = append(drivers, d)
			}
		}
		sort.Slice(drivers, func(a, b int) bool { return drivers[a] < drivers[b] })
		for _, d := range drivers {
			visit(d)
		}
		for _, r := range readers[c.Output] {
			visit(r)
		}
	}

	clusters := make([][]int, len(ffs))
	visited := make([]bool, len(n.Cells))
	queue := make([]CellID, 0, len(n.Cells))
	for anchor, ci := range ffs {
		cluster := make([]int, 0, size)
		for i := range visited {
			visited[i] = false
		}
		queue = append(queue[:0], ci)
		visited[ci] = true
		for len(queue) > 0 && len(cluster) < size {
			cur := queue[0]
			queue = queue[1:]
			if idx, ok := ffIndex[cur]; ok {
				cluster = append(cluster, idx)
			}
			neighbors(cur, func(nb CellID) {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			})
		}
		// Disconnected leftovers: fill deterministically by FF index.
		for i := 0; len(cluster) < size; i++ {
			dup := false
			for _, m := range cluster {
				if m == i {
					dup = true
					break
				}
			}
			if !dup {
				cluster = append(cluster, i)
			}
		}
		clusters[anchor] = cluster
	}
	return clusters
}
