package netlist

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

// buildToggle returns a netlist with one FF toggling via an inverter, one
// input gated in, and one output.
func buildToggle(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("toggle")
	en := b.Input("en")
	fb := b.NewPlaceholder()
	d := b.Mux(fb.Net(), b.Not(fb.Net()), en)
	q := b.DFF("state", d, false)
	fb.Close(q)
	b.Output("q", q)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return nl
}

func TestBuilderToggle(t *testing.T) {
	nl := buildToggle(t)
	if nl.NumFFs() != 1 {
		t.Fatalf("NumFFs = %d, want 1", nl.NumFFs())
	}
	if len(nl.Inputs) != 1 || len(nl.Outputs) != 1 {
		t.Fatalf("ports = %d/%d, want 1/1", len(nl.Inputs), len(nl.Outputs))
	}
	st := nl.Stats()
	if st.FlipFlops != 1 || st.Combo < 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MaxLevel < 1 {
		t.Fatalf("MaxLevel = %d, want >= 1", st.MaxLevel)
	}
}

func TestBuilderScope(t *testing.T) {
	b := NewBuilder("scoped")
	pop := b.Scope("sub")
	in := b.Input("a")
	q := b.DFF("r", in, true)
	pop()
	b.Output("q", q)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if _, ok := nl.FindNet("sub/a"); !ok {
		t.Fatal("scoped input name missing")
	}
	ff := nl.FFs()
	if len(ff) != 1 || nl.Cells[ff[0]].Name != "sub/r" {
		t.Fatalf("scoped FF name = %q", nl.Cells[ff[0]].Name)
	}
	if !nl.Cells[ff[0]].Init {
		t.Fatal("init not preserved")
	}
}

func TestBuilderAndOrTrees(t *testing.T) {
	b := NewBuilder("tree")
	ins := b.InputBus("x", 9)
	y := b.And(ins...)
	z := b.Or(ins...)
	b.Output("y", y)
	b.Output("z", z)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	// 9 inputs need ceil(9/4)=3 first-level gates (4,4,1→passthrough) then 1.
	st := nl.Stats()
	if st.Combo == 0 {
		t.Fatal("no gates built")
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderSingleInputFold(t *testing.T) {
	b := NewBuilder("one")
	a := b.Input("a")
	if got := b.And(a); got != a {
		t.Fatal("And of one net must be the net itself")
	}
}

func TestBuilderConstLazy(t *testing.T) {
	b := NewBuilder("c")
	c0 := b.Const0()
	c1 := b.Const1()
	if c0 == None || c1 == None || c0 == c1 {
		t.Fatalf("consts wrong: %v %v", c0, c1)
	}
	if b.Const0() != c0 {
		t.Fatal("Const0 must be cached")
	}
	b.Output("zero", c0)
	b.Output("one", c1)
	if _, err := b.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestBuilderStickyError(t *testing.T) {
	b := NewBuilder("bad")
	// Missing net wiring triggers the sticky error.
	b.And(None, None)
	in := b.Input("a") // subsequent calls are no-ops
	if in != None {
		t.Fatal("builder must be inert after error")
	}
	if _, err := b.Finish(); err == nil {
		t.Fatal("Finish must surface sticky error")
	}
	if b.Err() == nil {
		t.Fatal("Err must be set")
	}
}

func TestBuilderAndNoInputs(t *testing.T) {
	b := NewBuilder("bad2")
	b.And()
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected error for And()")
	}
}

func TestBuilderUnclosedPlaceholderFails(t *testing.T) {
	b := NewBuilder("dangling")
	p := b.NewPlaceholder()
	b.Output("o", p.Net())
	_, err := b.Finish()
	if !errors.Is(err, graphCycleErr(err)) && err == nil {
		t.Fatal("unclosed placeholder must fail validation")
	}
	if err == nil {
		t.Fatal("expected validation error")
	}
}

// graphCycleErr is a helper so the test reads clearly: any error is fine, we
// just assert that Finish fails.
func graphCycleErr(err error) error { return err }

func TestBuilderDuplicateFFName(t *testing.T) {
	b := NewBuilder("dup")
	a := b.Input("a")
	b.DFF("r", a, false)
	b.DFF("r", a, false)
	if _, err := b.Finish(); err == nil {
		t.Fatal("duplicate FF names must fail")
	}
}

func TestDFFDeclFeedback(t *testing.T) {
	b := NewBuilder("cnt1")
	q, setD := b.DFFDecl("bit", false)
	setD(b.Not(q))
	b.Output("q", q)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	ff := nl.FFs()
	if len(ff) != 1 {
		t.Fatalf("FFs = %d, want 1", len(ff))
	}
	d := nl.Cells[ff[0]].Inputs[0]
	if nl.Nets[d].Driver < 0 || nl.Cells[nl.Nets[d].Driver].Type.Func != FuncInv {
		t.Fatal("DFF D pin must be the inverter output")
	}
}

func TestDFFDeclUnwiredFails(t *testing.T) {
	b := NewBuilder("bad")
	q, _ := b.DFFDecl("bit", false)
	b.Output("q", q)
	if _, err := b.Finish(); err == nil {
		t.Fatal("unwired DFFDecl must fail Finish")
	}
}

func TestDFFDeclDoubleWireFails(t *testing.T) {
	b := NewBuilder("bad2")
	q, setD := b.DFFDecl("bit", false)
	setD(q)
	setD(q)
	if _, err := b.Finish(); err == nil {
		t.Fatal("double-wired DFFDecl must fail Finish")
	}
}

func TestValidateCatchesCombLoop(t *testing.T) {
	// Hand-build a combinational loop: inv driving itself.
	nl := NewNetlist("loop")
	lib := StdLib()
	inv, _ := lib.Lookup("INV_X1")
	out, _ := nl.AddNet("n0", 0)
	nl.Cells = append(nl.Cells, Cell{Name: "u0", Type: inv, Inputs: []NetID{out}, Output: out})
	nl.Outputs = append(nl.Outputs, out)
	if err := nl.Validate(); err == nil {
		t.Fatal("comb loop must fail validation")
	}
}

func TestValidatePinCount(t *testing.T) {
	nl := NewNetlist("pins")
	lib := StdLib()
	and2, _ := lib.Lookup("AND2_X1")
	in, _ := nl.AddNet("a", -1)
	nl.Inputs = append(nl.Inputs, in)
	out, _ := nl.AddNet("y", 0)
	nl.Cells = append(nl.Cells, Cell{Name: "u0", Type: and2, Inputs: []NetID{in}, Output: out})
	err := nl.Validate()
	if !errors.Is(err, ErrBadPinout) {
		t.Fatalf("err = %v, want ErrBadPinout", err)
	}
}

func TestValidateUndriven(t *testing.T) {
	nl := NewNetlist("undriven")
	_, _ = nl.AddNet("floating", -1) // not registered as input
	if err := nl.Validate(); !errors.Is(err, ErrUndriven) {
		t.Fatalf("err = %v, want ErrUndriven", err)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	nl := buildToggle(t)
	var buf bytes.Buffer
	if err := Write(&buf, nl); err != nil {
		t.Fatalf("Write: %v", err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed.Name != nl.Name {
		t.Fatalf("name = %q, want %q", parsed.Name, nl.Name)
	}
	if len(parsed.Cells) != len(nl.Cells) || len(parsed.Nets) != len(nl.Nets) {
		t.Fatalf("shape mismatch: %d/%d cells, %d/%d nets",
			len(parsed.Cells), len(nl.Cells), len(parsed.Nets), len(nl.Nets))
	}
	for i := range nl.Cells {
		if parsed.Cells[i].Type.Name != nl.Cells[i].Type.Name {
			t.Fatalf("cell %d type %q vs %q", i, parsed.Cells[i].Type.Name, nl.Cells[i].Type.Name)
		}
		if parsed.Cells[i].Init != nl.Cells[i].Init {
			t.Fatalf("cell %d init mismatch", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no design", "input a\n"},
		{"dup design", "design a\ndesign b\n"},
		{"bad statement", "design d\nfrobnicate x\n"},
		{"bad clause", "design d\ninput a\ncell u INV_X1 out=y weird=1 in=a\n"},
		{"missing out", "design d\ninput a\ncell u INV_X1 in=a\n"},
		{"unknown type", "design d\ninput a\ncell u WAT_X1 out=y in=a\noutput y\n"},
		{"unknown in net", "design d\ncell u INV_X1 out=y in=ghost\noutput y\n"},
		{"unknown output", "design d\ninput a\noutput ghost\n"},
		{"bad init", "design d\ninput a\ncell u DFF_X1 out=q in=a init=7\n"},
		{"dup net", "design d\ninput a\ninput a\n"},
		{"input arity", "design d\ninput\n"},
		{"output arity", "design d\noutput\n"},
		{"design arity", "design\n"},
		{"cell arity", "design d\ncell u\n"},
		{"malformed clause", "design d\ninput a\ncell u INV_X1 out=y inx\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(c.src)); err == nil {
				t.Fatalf("Parse(%q) succeeded, want error", c.src)
			}
		})
	}
}

func TestParseComments(t *testing.T) {
	src := `
# a comment
design d

input a
cell u1 INV_X1 out=y in=a
output y
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(nl.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(nl.Cells))
	}
}

func TestParseForwardReference(t *testing.T) {
	// DFF reads a net declared later in the file.
	src := `design d
input a
cell ff DFF_X1 out=q in=later init=1
cell g1 AND2_X1 out=later in=a,q
output q
`
	nl, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if nl.NumFFs() != 1 {
		t.Fatalf("NumFFs = %d", nl.NumFFs())
	}
}

func TestStatsCycle(t *testing.T) {
	nl := NewNetlist("loop")
	lib := StdLib()
	inv, _ := lib.Lookup("INV_X1")
	out, _ := nl.AddNet("n0", 0)
	nl.Cells = append(nl.Cells, Cell{Name: "u0", Type: inv, Inputs: []NetID{out}, Output: out})
	if st := nl.Stats(); st.MaxLevel != -1 {
		t.Fatalf("MaxLevel = %d, want -1 for cyclic", st.MaxLevel)
	}
}
