package netlist

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns a stable 64-bit digest of the netlist structure: the
// design name, every net (name and driver), every cell (name, type, drive,
// pin connectivity and initial state) and the port bindings, all in
// definition order. Two netlists fingerprint equal iff a generator produced
// them identically, which lets the circuit corpus pin generator determinism
// ("same config and seed → the same circuit") without storing golden
// netlist files.
func (n *Netlist) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(n.Name)
	writeInt(int64(len(n.Nets)))
	for i := range n.Nets {
		writeStr(n.Nets[i].Name)
		writeInt(int64(n.Nets[i].Driver))
	}
	writeInt(int64(len(n.Cells)))
	for i := range n.Cells {
		c := &n.Cells[i]
		writeStr(c.Name)
		writeStr(c.Type.Name)
		writeInt(int64(c.Type.Drive))
		writeInt(int64(len(c.Inputs)))
		for _, in := range c.Inputs {
			writeInt(int64(in))
		}
		writeInt(int64(c.Output))
		if c.Init {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	writeInt(int64(len(n.Inputs)))
	for _, in := range n.Inputs {
		writeInt(int64(in))
	}
	writeInt(int64(len(n.Outputs)))
	for i, out := range n.Outputs {
		writeStr(n.OutputNames[i])
		writeInt(int64(out))
	}
	return h.Sum64()
}
