// Package netlist models gate-level circuits: a standard-cell library in the
// style of the NanGate FreePDK45 Open Cell Library (logic function + drive
// strength variants), netlists of cells and nets, a builder API used by the
// structural circuit generators, a validator, and a plain-text serialization
// format (.gnl) with parser and writer.
//
// The library replaces the paper's use of the NanGate FreePDK45 kit: the
// methodology only consumes cell identity, pin structure and drive strength,
// all of which are modelled here (see DESIGN.md, substitution table).
package netlist
