package netlist

import "testing"

// buildFPFixture assembles a tiny two-FF circuit via the Builder.
func buildFPFixture(t *testing.T, name string, inv bool) *Netlist {
	t.Helper()
	b := NewBuilder(name)
	in := b.Input("in")
	q1, set1 := b.DFFDecl("q1", false)
	q2, set2 := b.DFFDecl("q2", true)
	x := b.And(in, q2)
	if inv {
		x = b.Not(x)
	}
	set1(x)
	set2(q1)
	b.Output("out", q1)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return nl
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	a := buildFPFixture(t, "fp", false)
	b := buildFPFixture(t, "fp", false)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical constructions fingerprint differently")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not idempotent")
	}
	if a.Fingerprint() == 0 {
		t.Fatal("fingerprint is zero")
	}
	if got := buildFPFixture(t, "fp2", false).Fingerprint(); got == a.Fingerprint() {
		t.Fatal("renamed design shares a fingerprint")
	}
	if got := buildFPFixture(t, "fp", true).Fingerprint(); got == a.Fingerprint() {
		t.Fatal("structurally different design shares a fingerprint")
	}
}

func TestFingerprintSensitiveToInit(t *testing.T) {
	a := buildFPFixture(t, "fp", false)
	b := buildFPFixture(t, "fp", false)
	for ci := range b.Cells {
		if b.Cells[ci].Type.IsSequential() {
			b.Cells[ci].Init = !b.Cells[ci].Init
			break
		}
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("flipping a reset value did not change the fingerprint")
	}
}
