// Package persist is the model artifact store: the versioned on-disk format
// that lets a regressor trained on one fault-injection campaign be reloaded
// — bit-identical — by any later process, turning the paper's
// train-once/predict-forever promise into a file.
//
// An artifact is a single file holding a human-readable JSON header line
// (format identification, version, model name and kind, the feature schema,
// a training-data fingerprint, CV metrics) followed by a gob payload with
// the fitted model. The layout mirrors fault/checkpoint.go: the header lets
// loaders reject foreign, stale or undecodable files before touching the
// binary payload, and saves are atomic (temp sibling + rename) so an
// interrupted save never corrupts an existing artifact.
package persist
