package persist

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"time"

	"repro/internal/ml"
)

const (
	// artifactMagic identifies the file format.
	artifactMagic = "repro/ffr model artifact"
	// ArtifactVersion is the current on-disk format version. Loaders
	// reject any other version with ErrArtifactVersion.
	ArtifactVersion = 1
)

// Artifact errors, matchable with errors.Is.
var (
	// ErrArtifactCorrupt marks files that are not parseable artifacts.
	ErrArtifactCorrupt = errors.New("persist: corrupt model artifact")
	// ErrArtifactVersion marks a parseable artifact of an unsupported
	// format version.
	ErrArtifactVersion = errors.New("persist: unsupported artifact version")
	// ErrUnknownKind marks an artifact whose model kind has no codec
	// registered in this build.
	ErrUnknownKind = errors.New("persist: unknown model kind")
	// ErrSchemaMismatch marks a feature vector that does not match the
	// artifact's feature schema.
	ErrSchemaMismatch = errors.New("persist: feature schema mismatch")
)

// Artifact is a fitted model plus the metadata needed to use it safely:
// the feature schema it expects, a fingerprint of the data it was trained
// on, and the cross-validation metrics measured at training time.
type Artifact struct {
	// Name is the model's display name (the Table I row label).
	Name string
	// Kind is the registry codec kind; Save derives it from the model and
	// Load restores it from the header.
	Kind string
	// FeatureNames is the ordered feature schema (features.Names() for
	// study-trained models); prediction inputs must match its width.
	FeatureNames []string
	// Circuit and Workload tag the corpus scenario whose campaign trained
	// this model ("mac10ge"/"loopback" for the paper's flow); empty on
	// artifacts from before the corpus existed. The prediction service
	// surfaces them so multi-scenario deployments can tell models apart.
	Circuit  string
	Workload string
	// TrainRows is the number of training rows.
	TrainRows int
	// TrainHash fingerprints the training data (see DataFingerprint).
	TrainHash uint64
	// Metrics carries evaluation scores measured at training time
	// (MAE/MAX/RMSE/EV/R2 for Table I protocols); optional.
	Metrics map[string]float64
	// CreatedAt is the save timestamp.
	CreatedAt time.Time
	// Model is the fitted regressor. Its Predict must follow the
	// ml.Regressor concurrency contract: read-only after Fit.
	Model ml.Regressor
}

// New assembles an artifact around a fitted model, deriving its codec kind
// when the model's type is registered (Save re-derives it and fails loudly
// otherwise). The caller may fill TrainRows, TrainHash and Metrics before
// Save.
func New(name string, model ml.Regressor, featureNames []string) *Artifact {
	kind, err := KindOf(model)
	if err != nil {
		kind = ""
	}
	return &Artifact{
		Name:         name,
		Kind:         kind,
		FeatureNames: append([]string(nil), featureNames...),
		Model:        model,
	}
}

// NumFeatures is the width of the artifact's feature schema.
func (a *Artifact) NumFeatures() int { return len(a.FeatureNames) }

// CheckVector validates one prediction input against the feature schema.
func (a *Artifact) CheckVector(x []float64) error {
	if len(x) != len(a.FeatureNames) {
		return fmt.Errorf("%w: vector has %d features, model %q wants %d",
			ErrSchemaMismatch, len(x), a.Name, len(a.FeatureNames))
	}
	return nil
}

// Fingerprint returns a stable 64-bit digest of the artifact's identity:
// name, kind, scenario tags, feature schema, training provenance and save
// timestamp. Two artifacts fingerprint equal only when they describe the
// same trained model; any retrain or re-save produces a new fingerprint
// (Save stamps CreatedAt), which is what lets the prediction service key
// its response cache per artifact so a hot reload never serves stale
// predictions.
func (a *Artifact) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		write(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(a.Name)
	writeStr(a.Kind)
	writeStr(a.Circuit)
	writeStr(a.Workload)
	write(uint64(len(a.FeatureNames)))
	for _, f := range a.FeatureNames {
		writeStr(f)
	}
	write(uint64(a.TrainRows))
	write(a.TrainHash)
	write(uint64(a.CreatedAt.UnixNano()))
	keys := make([]string, 0, len(a.Metrics))
	for k := range a.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	write(uint64(len(keys)))
	for _, k := range keys {
		writeStr(k)
		write(math.Float64bits(a.Metrics[k]))
	}
	return h.Sum64()
}

// DataFingerprint returns a stable 64-bit digest of a training set: exact
// float bits of every row and target, in order. Two datasets fingerprint
// equal iff they are bit-identical, letting artifact consumers detect which
// campaign a model was trained on.
func DataFingerprint(X [][]float64, y []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	write(uint64(len(X)))
	for _, row := range X {
		write(uint64(len(row)))
		for _, v := range row {
			write(math.Float64bits(v))
		}
	}
	write(uint64(len(y)))
	for _, v := range y {
		write(math.Float64bits(v))
	}
	return h.Sum64()
}

// artifactHeader is the JSON first line of an artifact file. Circuit and
// Workload are additive optional fields: version-1 artifacts written before
// the corpus load cleanly with empty tags.
type artifactHeader struct {
	Magic     string             `json:"magic"`
	Version   int                `json:"version"`
	Name      string             `json:"name"`
	Kind      string             `json:"kind"`
	Circuit   string             `json:"circuit,omitempty"`
	Workload  string             `json:"workload,omitempty"`
	Features  []string           `json:"features"`
	TrainRows int                `json:"train_rows"`
	TrainHash string             `json:"train_hash"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	CreatedAt time.Time          `json:"created_at"`
}

// payload wraps the model so gob transmits the interface value (with the
// concrete type name) rather than requiring a fixed concrete type.
type payload struct {
	Model ml.Regressor
}

// Save atomically writes the artifact: the bytes land in a temp sibling
// first and are renamed over path only after a successful flush, so readers
// never observe a torn file. It stamps a.Kind and a.CreatedAt.
func Save(path string, a *Artifact) (err error) {
	if a == nil || a.Model == nil {
		return fmt.Errorf("persist: saving artifact: nil artifact or model")
	}
	if a.Name == "" {
		return fmt.Errorf("persist: saving artifact: empty model name")
	}
	if len(a.FeatureNames) == 0 {
		return fmt.Errorf("persist: saving artifact: empty feature schema")
	}
	kind, err := KindOf(a.Model)
	if err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	a.Kind = kind
	if a.CreatedAt.IsZero() {
		a.CreatedAt = time.Now().UTC()
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriter(tmp)
	hdr := artifactHeader{
		Magic:     artifactMagic,
		Version:   ArtifactVersion,
		Name:      a.Name,
		Kind:      a.Kind,
		Circuit:   a.Circuit,
		Workload:  a.Workload,
		Features:  a.FeatureNames,
		TrainRows: a.TrainRows,
		TrainHash: strconv.FormatUint(a.TrainHash, 16),
		Metrics:   a.Metrics,
		CreatedAt: a.CreatedAt,
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	if _, err = w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	if err = gob.NewEncoder(w).Encode(payload{Model: a.Model}); err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("persist: saving artifact: %w", err)
	}
	return nil
}

// Load reads and validates an artifact file. It returns ErrArtifactCorrupt
// for unparseable files, ErrArtifactVersion for foreign format versions,
// ErrUnknownKind for models this build has no codec for, and fs.ErrNotExist
// (via os.Open) when the file is missing. The returned model predicts
// bit-identically to the instance that was saved.
func Load(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %s: missing header", ErrArtifactCorrupt, path)
	}
	var hdr artifactHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: bad header: %v", ErrArtifactCorrupt, path, err)
	}
	if hdr.Magic != artifactMagic {
		return nil, fmt.Errorf("%w: %s: magic %q", ErrArtifactCorrupt, path, hdr.Magic)
	}
	if hdr.Version != ArtifactVersion {
		return nil, fmt.Errorf("%w: %s: version %d, supported %d",
			ErrArtifactVersion, path, hdr.Version, ArtifactVersion)
	}
	if hdr.Name == "" || len(hdr.Features) == 0 {
		return nil, fmt.Errorf("%w: %s: missing name or feature schema", ErrArtifactCorrupt, path)
	}
	if !KnownKind(hdr.Kind) {
		return nil, fmt.Errorf("%w: %s: kind %q (register its codec before loading)",
			ErrUnknownKind, path, hdr.Kind)
	}
	trainHash, err := strconv.ParseUint(hdr.TrainHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad train hash %q", ErrArtifactCorrupt, path, hdr.TrainHash)
	}

	var pl payload
	if err := gob.NewDecoder(r).Decode(&pl); err != nil {
		return nil, fmt.Errorf("%w: %s: bad payload: %v", ErrArtifactCorrupt, path, err)
	}
	if pl.Model == nil {
		return nil, fmt.Errorf("%w: %s: payload without model", ErrArtifactCorrupt, path)
	}
	kind, err := KindOf(pl.Model)
	if err != nil || kind != hdr.Kind {
		return nil, fmt.Errorf("%w: %s: payload kind %q does not match header kind %q",
			ErrArtifactCorrupt, path, kind, hdr.Kind)
	}

	return &Artifact{
		Name:         hdr.Name,
		Kind:         hdr.Kind,
		Circuit:      hdr.Circuit,
		Workload:     hdr.Workload,
		FeatureNames: hdr.Features,
		TrainRows:    hdr.TrainRows,
		TrainHash:    trainHash,
		Metrics:      hdr.Metrics,
		CreatedAt:    hdr.CreatedAt,
		Model:        pl.Model,
	}, nil
}
