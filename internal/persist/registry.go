package persist

import (
	"fmt"
	"reflect"
	"strings"
	"sync"

	"repro/internal/ml"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
	"repro/internal/ml/mlp"
	"repro/internal/ml/svr"
	"repro/internal/ml/tree"
)

// Codec registry: stable kind names for the concrete regressor and scaler
// types an artifact can carry. The kind is recorded in the artifact header
// so a loader can tell what a file contains — and reject files it cannot
// decode — before touching the gob payload. Pipelines get a composite kind,
// "pipeline[<scaler>,<model>]", derived recursively.
//
// Importing this package links in every built-in model package, whose init
// functions gob-register the concrete types; that registration is what lets
// the interface-typed payload (and Pipeline's interface fields) decode.

var registry = struct {
	sync.RWMutex
	kindOf map[reflect.Type]string
	known  map[string]bool
}{
	kindOf: map[reflect.Type]string{},
	known:  map[string]bool{},
}

// RegisterKind associates a stable kind name with the concrete type of
// example (a regressor or a scaler). Built-in kinds are registered by this
// package's init; external callers may add their own before saving or
// loading artifacts that carry custom models. It panics on a duplicate kind
// or type, like gob.Register.
func RegisterKind(kind string, example any) {
	if kind == "" || example == nil {
		panic("persist: RegisterKind with empty kind or nil example")
	}
	t := reflect.TypeOf(example)
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.kindOf[t]; ok {
		panic(fmt.Sprintf("persist: type %v already registered as %q", t, prev))
	}
	if registry.known[kind] {
		panic(fmt.Sprintf("persist: kind %q already registered", kind))
	}
	registry.kindOf[t] = kind
	registry.known[kind] = true
}

func init() {
	RegisterKind("linreg", &linreg.LinearRegression{})
	RegisterKind("knn", &knn.Regressor{})
	RegisterKind("svr", &svr.Regressor{})
	RegisterKind("tree", &tree.Regressor{})
	RegisterKind("forest", &ensemble.RandomForest{})
	RegisterKind("boosting", &ensemble.GradientBoosting{})
	RegisterKind("mlp", &mlp.Regressor{})
	RegisterKind("std", &ml.StandardScaler{})
	RegisterKind("minmax", &ml.MinMaxScaler{})
}

func kindOfValue(v any) (string, bool) {
	registry.RLock()
	defer registry.RUnlock()
	k, ok := registry.kindOf[reflect.TypeOf(v)]
	return k, ok
}

func kindRegistered(kind string) bool {
	registry.RLock()
	defer registry.RUnlock()
	return registry.known[kind]
}

// KindOf derives the registry kind of a model, unwrapping pipelines. It
// fails for unregistered concrete types, which is how Save refuses models
// no loader would be able to reconstruct.
func KindOf(m ml.Regressor) (string, error) {
	if p, ok := m.(*ml.Pipeline); ok {
		scaler := "raw"
		if p.Scaler != nil {
			sk, ok := kindOfValue(p.Scaler)
			if !ok {
				return "", fmt.Errorf("persist: unregistered scaler type %T", p.Scaler)
			}
			scaler = sk
		}
		if p.Model == nil {
			return "", fmt.Errorf("persist: pipeline without a model")
		}
		inner, err := KindOf(p.Model)
		if err != nil {
			return "", err
		}
		return "pipeline[" + scaler + "," + inner + "]", nil
	}
	k, ok := kindOfValue(m)
	if !ok {
		return "", fmt.Errorf("persist: unregistered model type %T", m)
	}
	return k, nil
}

// KnownKind reports whether a header kind (possibly composite) names only
// registered codecs, i.e. whether this build can decode such an artifact.
func KnownKind(kind string) bool {
	if rest, ok := strings.CutPrefix(kind, "pipeline["); ok {
		body, ok := strings.CutSuffix(rest, "]")
		if !ok {
			return false
		}
		scaler, inner, ok := strings.Cut(body, ",")
		if !ok {
			return false
		}
		if scaler != "raw" && !kindRegistered(scaler) {
			return false
		}
		return KnownKind(inner)
	}
	return kindRegistered(kind)
}
