package persist_test

import (
	"errors"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
	"repro/internal/persist"
)

// The round-trip tests run every model against a real (reduced-scale) study
// feature matrix: quickstart-sized device, tiny injection budget. Built once
// per test binary.
var testStudy struct {
	once  sync.Once
	study *core.Study
	err   error
}

func smallStudy(t *testing.T) *core.Study {
	t.Helper()
	testStudy.once.Do(func() {
		cfg := core.DefaultStudyConfig()
		cfg.MAC.FIFODepth = 16
		cfg.MAC.StatWidth = 8
		cfg.MAC.TargetFFs = 0
		cfg.Bench.FIFODepth = 16
		cfg.Bench.Packets = 6
		cfg.Bench.MinPayload = 4
		cfg.Bench.MaxPayload = 6
		cfg.InjectionsPerFF = 4
		st, err := core.NewStudy(cfg)
		if err == nil {
			_, err = st.RunGroundTruth()
		}
		testStudy.study, testStudy.err = st, err
	})
	if testStudy.err != nil {
		t.Fatalf("building test study: %v", testStudy.err)
	}
	return testStudy.study
}

// TestRoundTripBitIdentical pins the headline guarantee: for every model of
// the paper and the extended set, save → load → Predict returns exactly the
// same bits as the in-memory model on the full study feature matrix.
func TestRoundTripBitIdentical(t *testing.T) {
	study := smallStudy(t)
	X := study.FeatureRows()
	y, err := study.FDR()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range append(core.PaperModels(), core.ExtendedModels()...) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			model := spec.Factory()
			if err := model.Fit(X, y); err != nil {
				t.Fatalf("fit: %v", err)
			}
			want := ml.PredictAll(model, X)

			art := persist.New(spec.Name, model, features.Names())
			art.TrainRows = len(X)
			art.TrainHash = persist.DataFingerprint(X, y)
			art.Metrics = map[string]float64{"r2_smoke": 1}
			path := filepath.Join(t.TempDir(), "model.ffrm")
			if err := persist.Save(path, art); err != nil {
				t.Fatalf("save: %v", err)
			}

			got, err := persist.Load(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			if got.Name != spec.Name {
				t.Errorf("name %q, want %q", got.Name, spec.Name)
			}
			if got.Kind != art.Kind || got.Kind == "" {
				t.Errorf("kind %q, want %q", got.Kind, art.Kind)
			}
			if got.TrainRows != len(X) || got.TrainHash != art.TrainHash {
				t.Errorf("fingerprint round-trip: rows %d hash %x, want %d / %x",
					got.TrainRows, got.TrainHash, len(X), art.TrainHash)
			}
			if len(got.FeatureNames) != features.NumFeatures {
				t.Fatalf("schema has %d features, want %d", len(got.FeatureNames), features.NumFeatures)
			}
			for i, name := range features.Names() {
				if got.FeatureNames[i] != name {
					t.Fatalf("schema[%d] = %q, want %q", i, got.FeatureNames[i], name)
				}
			}

			for i, x := range X {
				p := got.Model.Predict(x)
				if math.Float64bits(p) != math.Float64bits(want[i]) {
					t.Fatalf("row %d: reloaded model predicts %v, in-memory %v (bits differ)",
						i, p, want[i])
				}
			}
		})
	}
}

// fittedArtifact builds a small valid artifact on synthetic data, for the
// corruption tests.
func fittedArtifact(t *testing.T) (string, *persist.Artifact) {
	t.Helper()
	model := linreg.New()
	X := [][]float64{{1, 2}, {2, 3}, {3, 5}, {4, 4}, {5, 8}}
	y := []float64{1, 2, 3, 4, 5}
	if err := model.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	art := persist.New("lin", model, []string{"a", "b"})
	art.TrainRows = len(X)
	art.TrainHash = persist.DataFingerprint(X, y)
	path := filepath.Join(t.TempDir(), "lin.ffrm")
	if err := persist.Save(path, art); err != nil {
		t.Fatal(err)
	}
	return path, art
}

func rewrite(t *testing.T, path string, mutate func([]byte) []byte) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(t.TempDir(), "mutated.ffrm")
	if err := os.WriteFile(out, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLoadRejectsCorruptArtifacts(t *testing.T) {
	path, _ := fittedArtifact(t)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"garbage header", func(b []byte) []byte {
			return append([]byte("not json at all\n"), b...)
		}, persist.ErrArtifactCorrupt},
		{"wrong magic", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), "repro/ffr model artifact", "something else here ok", 1))
		}, persist.ErrArtifactCorrupt},
		{"version bumped", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"version":1`, `"version":99`, 1))
		}, persist.ErrArtifactVersion},
		{"unknown kind", func(b []byte) []byte {
			return []byte(strings.Replace(string(b), `"kind":"linreg"`, `"kind":"alien"`, 1))
		}, persist.ErrUnknownKind},
		{"truncated payload", func(b []byte) []byte {
			nl := strings.IndexByte(string(b), '\n')
			return b[:nl+3]
		}, persist.ErrArtifactCorrupt},
		{"header only", func(b []byte) []byte {
			nl := strings.IndexByte(string(b), '\n')
			return b[:nl+1]
		}, persist.ErrArtifactCorrupt},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := rewrite(t, path, c.mutate)
			_, err := persist.Load(mutated)
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("got error %v, want %v", err, c.wantErr)
			}
			if err == nil || err.Error() == c.wantErr.Error() {
				t.Fatalf("error %q carries no context", err)
			}
		})
	}

	if _, err := persist.Load(filepath.Join(t.TempDir(), "missing.ffrm")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: got %v, want fs.ErrNotExist", err)
	}
}

func TestSaveValidation(t *testing.T) {
	dir := t.TempDir()
	model := linreg.New()
	if err := persist.Save(filepath.Join(dir, "a"), nil); err == nil {
		t.Error("nil artifact accepted")
	}
	if err := persist.Save(filepath.Join(dir, "a"), &persist.Artifact{Name: "m", FeatureNames: []string{"f"}}); err == nil {
		t.Error("nil model accepted")
	}
	if err := persist.Save(filepath.Join(dir, "a"), &persist.Artifact{Model: model, FeatureNames: []string{"f"}}); err == nil {
		t.Error("empty name accepted")
	}
	if err := persist.Save(filepath.Join(dir, "a"), &persist.Artifact{Model: model, Name: "m"}); err == nil {
		t.Error("empty schema accepted")
	}
}

type alienModel struct{}

func (alienModel) Fit(X [][]float64, y []float64) error { return nil }
func (alienModel) Predict(x []float64) float64          { return 0 }

func TestKindOf(t *testing.T) {
	k, err := persist.KindOf(&ml.Pipeline{Scaler: &ml.StandardScaler{}, Model: knn.New(3, knn.Manhattan)})
	if err != nil || k != "pipeline[std,knn]" {
		t.Errorf("pipeline kind %q (%v), want pipeline[std,knn]", k, err)
	}
	k, err = persist.KindOf(&ml.Pipeline{Model: linreg.New()})
	if err != nil || k != "pipeline[raw,linreg]" {
		t.Errorf("scalerless pipeline kind %q (%v), want pipeline[raw,linreg]", k, err)
	}
	if _, err := persist.KindOf(alienModel{}); err == nil {
		t.Error("unregistered model type accepted")
	}
	if !persist.KnownKind("pipeline[std,pipeline[raw,tree]]") {
		t.Error("nested pipeline kind not recognized")
	}
	if persist.KnownKind("pipeline[std,alien]") || persist.KnownKind("pipeline[std]") {
		t.Error("malformed/unknown composite kind accepted")
	}
}

func TestDataFingerprint(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	y := []float64{5, 6}
	h1 := persist.DataFingerprint(X, y)
	Xc := [][]float64{{1, 2}, {3, 4}}
	if h2 := persist.DataFingerprint(Xc, []float64{5, 6}); h2 != h1 {
		t.Errorf("identical data fingerprints differ: %x vs %x", h1, h2)
	}
	Xc[1][1] = math.Nextafter(4, 5)
	if h2 := persist.DataFingerprint(Xc, y); h2 == h1 {
		t.Error("single-ULP change not detected")
	}
	if h2 := persist.DataFingerprint(X, []float64{5, 7}); h2 == h1 {
		t.Error("target change not detected")
	}
}

func TestCheckVector(t *testing.T) {
	art := persist.New("m", linreg.New(), []string{"a", "b", "c"})
	if err := art.CheckVector([]float64{1, 2, 3}); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	err := art.CheckVector([]float64{1, 2})
	if !errors.Is(err, persist.ErrSchemaMismatch) {
		t.Fatalf("got %v, want ErrSchemaMismatch", err)
	}
	if !strings.Contains(err.Error(), "2") || !strings.Contains(err.Error(), "3") {
		t.Errorf("error %q does not state both widths", err)
	}
}

// Scenario tags (circuit/workload) must round-trip through the header, and
// their absence must load as empty strings (pre-corpus artifacts).
func TestScenarioTagsRoundTrip(t *testing.T) {
	study := smallStudy(t)
	X := study.FeatureRows()
	y, err := study.FDR()
	if err != nil {
		t.Fatal(err)
	}
	spec := core.PaperModels()[1]
	model := spec.Factory()
	if err := model.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	art := persist.New(spec.Name, model, features.Names())
	art.Circuit = study.CircuitName
	art.Workload = study.WorkloadName
	path := filepath.Join(t.TempDir(), "tagged.ffrm")
	if err := persist.Save(path, art); err != nil {
		t.Fatal(err)
	}
	got, err := persist.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Circuit != "mac10ge" || got.Workload != "loopback" {
		t.Fatalf("tags round-tripped as %q/%q, want mac10ge/loopback", got.Circuit, got.Workload)
	}

	// Untagged artifacts (the pre-corpus format) stay loadable with empty
	// tags.
	art2 := persist.New(spec.Name, model, features.Names())
	path2 := filepath.Join(t.TempDir(), "untagged.ffrm")
	if err := persist.Save(path2, art2); err != nil {
		t.Fatal(err)
	}
	got2, err := persist.Load(path2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Circuit != "" || got2.Workload != "" {
		t.Fatalf("untagged artifact loaded with tags %q/%q", got2.Circuit, got2.Workload)
	}
}
