package corpus

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/sim"
)

// xorshift64 is the deterministic stimulus generator shared by the corpus
// workloads; all workload randomness flows from the scenario seed through
// one of these, never from global rand.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// chance returns true with probability num/den.
func (x *xorshift64) chance(num, den uint64) bool { return x.next()%den < num }

// allOutputs lists every output port index of p — the monitor set of the
// exact-compare scenarios.
func allOutputs(p *sim.Program) []int {
	out := make([]int, p.NumOutputs())
	for i := range out {
		out[i] = i
	}
	return out
}

// exactBench assembles the common corpus bench shape: every output
// monitored, injections during [0, active), failures judged by exact
// golden comparison over the whole run.
func exactBench(stim *sim.Stimulus, p *sim.Program, active int) *Bench {
	return &Bench{
		Stim:         stim,
		Monitors:     allOutputs(p),
		ActiveCycles: active,
		Classifier:   &fault.ExactClassifier{},
	}
}

// ---- ALU workloads --------------------------------------------------------

// aluOps drives the ALU pipeline with randomized operations: ~75 % valid
// duty cycle, uniform opcodes and operands, then a short drain.
func aluOps(p *sim.Program, width, ops int, seed int64) (*Bench, error) {
	rng := xorshift64(uint64(seed)*2654435761 | 1)
	const drain = 8
	cycles := ops + drain
	stim := sim.NewStimulus(cycles)

	valid, err := p.InputIndex("in_valid")
	if err != nil {
		return nil, err
	}
	op, err := p.InputBusIndices("op", 3)
	if err != nil {
		return nil, err
	}
	a, err := p.InputBusIndices("a", width)
	if err != nil {
		return nil, err
	}
	b, err := p.InputBusIndices("b", width)
	if err != nil {
		return nil, err
	}
	setValid := stim.DrivePort(valid)
	setOp := stim.DriveBus(op)
	setA := stim.DriveBus(a)
	setB := stim.DriveBus(b)

	mask := uint64(1)<<uint(width) - 1
	for c := 0; c < ops; c++ {
		setValid(c, rng.chance(3, 4))
		setOp(c, rng.next()%8)
		setA(c, rng.next()&mask)
		setB(c, rng.next()&mask)
	}
	return exactBench(stim, p, ops), nil
}

// aluStream drives back-to-back accumulating traffic: valid every cycle,
// cycling opcodes, ramping operands — the all-lanes-busy profile.
func aluStream(p *sim.Program, width, ops int, seed int64) (*Bench, error) {
	rng := xorshift64(uint64(seed)*0x9E3779B9 | 1)
	const drain = 8
	cycles := ops + drain
	stim := sim.NewStimulus(cycles)

	valid, err := p.InputIndex("in_valid")
	if err != nil {
		return nil, err
	}
	op, err := p.InputBusIndices("op", 3)
	if err != nil {
		return nil, err
	}
	a, err := p.InputBusIndices("a", width)
	if err != nil {
		return nil, err
	}
	b, err := p.InputBusIndices("b", width)
	if err != nil {
		return nil, err
	}
	setValid := stim.DrivePort(valid)
	setOp := stim.DriveBus(op)
	setA := stim.DriveBus(a)
	setB := stim.DriveBus(b)

	mask := uint64(1)<<uint(width) - 1
	for c := 0; c < ops; c++ {
		setValid(c, true)
		setOp(c, uint64(c)%8)
		setA(c, uint64(c)&mask)
		setB(c, rng.next()&mask)
	}
	return exactBench(stim, p, ops), nil
}

// ---- Arbiter workloads ----------------------------------------------------

// arbTraffic drives the switch slice with per-port request probabilities
// prob[i]/16 and random payloads.
func arbTraffic(p *sim.Program, ports, dataWidth, cycles int, prob []uint64, seed int64) (*Bench, error) {
	rng := xorshift64(uint64(seed)*0x85EBCA6B | 1)
	const drain = 48
	stim := sim.NewStimulus(cycles + drain)

	setReq := make([]func(int, bool), ports)
	for i := 0; i < ports; i++ {
		idx, err := p.InputIndex(fmt.Sprintf("req[%d]", i))
		if err != nil {
			return nil, err
		}
		setReq[i] = stim.DrivePort(idx)
	}
	data, err := p.InputBusIndices("data", dataWidth)
	if err != nil {
		return nil, err
	}
	setData := stim.DriveBus(data)

	mask := uint64(1)<<uint(dataWidth) - 1
	for c := 0; c < cycles; c++ {
		for i := 0; i < ports; i++ {
			setReq[i](c, rng.chance(prob[i], 16))
		}
		setData(c, rng.next()&mask)
	}
	return exactBench(stim, p, cycles), nil
}

// ---- UART workloads -------------------------------------------------------

// uartBytes drives the serializer with one byte every `interval` cycles.
func uartBytes(p *sim.Program, nBytes, interval, tail int, seed int64) (*Bench, error) {
	rng := xorshift64(uint64(seed)*0xC2B2AE35 | 1)
	cycles := nBytes*interval + tail
	stim := sim.NewStimulus(cycles)

	wr, err := p.InputIndex("wr")
	if err != nil {
		return nil, err
	}
	data, err := p.InputBusIndices("data", 8)
	if err != nil {
		return nil, err
	}
	setWr := stim.DrivePort(wr)
	setData := stim.DriveBus(data)
	for k := 0; k < nBytes; k++ {
		c := k * interval
		setWr(c, true)
		setData(c, rng.next()&0xFF)
	}
	return exactBench(stim, p, cycles-tail/2), nil
}

// uartBurst pushes a burst of back-to-back bytes (saturating the FIFO),
// then lets the line drain — the store-and-forward stress profile.
func uartBurst(p *sim.Program, burst, drainCycles int, seed int64) (*Bench, error) {
	rng := xorshift64(uint64(seed)*0x27D4EB2F | 1)
	cycles := burst + drainCycles
	stim := sim.NewStimulus(cycles)

	wr, err := p.InputIndex("wr")
	if err != nil {
		return nil, err
	}
	data, err := p.InputBusIndices("data", 8)
	if err != nil {
		return nil, err
	}
	setWr := stim.DrivePort(wr)
	setData := stim.DriveBus(data)
	for c := 0; c < burst; c++ {
		setWr(c, true)
		setData(c, rng.next()&0xFF)
	}
	return exactBench(stim, p, cycles-drainCycles/2), nil
}

// ---- Random-circuit workload ----------------------------------------------

// randomNoise toggles every primary input randomly each cycle.
func randomNoise(p *sim.Program, cycles int, seed int64) (*Bench, error) {
	rng := xorshift64(uint64(seed)*0x165667B1 | 1)
	stim := sim.NewStimulus(cycles)
	for i := 0; i < p.NumInputs(); i++ {
		set := stim.DrivePort(i)
		for c := 0; c < cycles; c++ {
			set(c, rng.chance(1, 2))
		}
	}
	return exactBench(stim, p, cycles), nil
}
