package corpus_test

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// The corpus contract the CLI and the docs advertise: at least four DUT
// families, at least six scenario variants, unique IDs, and every scenario
// resolvable by Find.
func TestCorpusInventory(t *testing.T) {
	fams := corpus.Families()
	if len(fams) < 4 {
		t.Fatalf("%d families registered, want >= 4", len(fams))
	}
	scenarios := corpus.List()
	if len(scenarios) < 6 {
		t.Fatalf("%d scenarios registered, want >= 6", len(scenarios))
	}
	seen := map[string]bool{}
	for _, s := range scenarios {
		id := s.ID()
		if seen[id] {
			t.Fatalf("duplicate scenario ID %q", id)
		}
		seen[id] = true
		got, err := corpus.Find(id)
		if err != nil {
			t.Fatalf("Find(%q): %v", id, err)
		}
		if got.ID() != id {
			t.Fatalf("Find(%q) resolved to %q", id, got.ID())
		}
		if s.Entry.Defaults.InjectionsPerFF < 1 {
			t.Fatalf("%s: no default injection budget", id)
		}
	}
	// Family shorthand resolves to the first workload.
	first, err := corpus.Find("mac10ge")
	if err != nil {
		t.Fatal(err)
	}
	if first.Workload.Name != "loopback" {
		t.Fatalf("family shorthand resolved to %q, want loopback", first.Workload.Name)
	}
	if _, err := corpus.Find("nosuch/thing"); err == nil {
		t.Fatal("unknown family resolved")
	}
	if _, err := corpus.Find("mac10ge/nosuch"); err == nil {
		t.Fatal("unknown workload resolved")
	}
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	gen := func(corpus.Scale, int64) (*netlist.Netlist, error) { return nil, nil }
	wl := []corpus.Workload{{Name: "w", Build: func(*sim.Program, corpus.Scale, int64) (*corpus.Bench, error) {
		return nil, nil
	}}}
	geom := corpus.Geometry{InjectionsPerFF: 1}
	cases := []*corpus.Entry{
		nil,
		{Name: "", Generate: gen, Workloads: wl, Defaults: geom},
		{Name: "a/b", Generate: gen, Workloads: wl, Defaults: geom},
		{Name: "x", Workloads: wl, Defaults: geom},
		{Name: "x", Generate: gen, Defaults: geom},
		{Name: "x", Generate: gen, Workloads: wl},
		{Name: "mac10ge", Generate: gen, Workloads: wl, Defaults: geom}, // duplicate
		{Name: "x", Generate: gen, Defaults: geom,
			Workloads: []corpus.Workload{wl[0], wl[0]}}, // duplicate workload
	}
	for i, e := range cases {
		if err := corpus.Register(e); err == nil {
			t.Errorf("case %d: bad entry registered", i)
		}
	}
}

// Every scenario must be fully deterministic: generating twice yields
// fingerprint-identical netlists, and materializing twice yields
// fingerprint-identical golden traces. This is the per-circuit simulator
// regression net — any change to a generator, the synthesis pass, the
// engine or a workload builder shows up as a golden fingerprint change in
// exactly the affected scenarios.
func TestScenarioDeterminism(t *testing.T) {
	for _, s := range corpus.List() {
		s := s
		t.Run(s.ID(), func(t *testing.T) {
			t.Parallel()
			const seed = 1
			a, err := s.Entry.Generate(corpus.ScaleSmall, seed)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			b, err := s.Entry.Generate(corpus.ScaleSmall, seed)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatal("two generations with the same seed differ")
			}
			m1, err := s.Materialize(corpus.ScaleSmall, seed)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			m2, err := s.Materialize(corpus.ScaleSmall, seed)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			if m1.Golden.Fingerprint() != m2.Golden.Fingerprint() {
				t.Fatal("two materializations with the same seed produce different golden traces")
			}
			if m1.NumFFs() == 0 {
				t.Fatal("materialized DUT has no flip-flops")
			}
			if len(m1.Features.Rows) != m1.NumFFs() {
				t.Fatalf("feature matrix has %d rows for %d FFs", len(m1.Features.Rows), m1.NumFFs())
			}
			// Dynamic features must be populated (the workload toggles
			// something).
			toggled := false
			for _, tg := range m1.Activity.Toggles {
				if tg > 0 {
					toggled = true
					break
				}
			}
			if !toggled {
				t.Fatal("workload produced no flip-flop activity")
			}
		})
	}
}

// pinnedGoldenFingerprints are the small-scale, seed-1 golden trace
// fingerprints of every built-in scenario. They pin the full generator →
// synthesis → compile → workload → simulator stack per circuit: a diff here
// means simulated behavior changed for that scenario and its FDR ground
// truth is no longer comparable with historical campaigns.
//
// When a change is intentional (generator or workload redesign), update the
// affected constants — the failure message prints the new value.
var pinnedGoldenFingerprints = map[string]uint64{
	"mac10ge/loopback":  0x244cc0d3a7aa904f, // 634 FFs, 195 cycles
	"mac10ge/bursty":    0x497fdebf923595c6, // 634 FFs, 138 cycles
	"alupipe/randomops": 0x65beacf8ec30c0d1, // 85 FFs, 200 cycles
	"alupipe/streaming": 0x1dcbc34f779f7f29, // 85 FFs, 200 cycles
	"rrarb/uniform":     0xdb6271004f3f5242, // 249 FFs, 304 cycles
	"rrarb/hotspot":     0xb3615a11bbd437ca, // 249 FFs, 304 cycles
	"uartser/paced":     0x63e10641d59fa17d, // 99 FFs, 274 cycles
	"uartser/burst":     0xb110a3fccf052d46, // 99 FFs, 162 cycles
	"random/noise":      0x3629f7c93424e3d5, // 48 FFs, 256 cycles
}

func TestGoldenTraceFingerprintsPinned(t *testing.T) {
	for _, s := range corpus.List() {
		s := s
		t.Run(s.ID(), func(t *testing.T) {
			t.Parallel()
			want, ok := pinnedGoldenFingerprints[s.ID()]
			if !ok {
				t.Fatalf("scenario %s has no pinned golden fingerprint; add it", s.ID())
			}
			m, err := s.Materialize(corpus.ScaleSmall, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Golden.Fingerprint(); got != want {
				t.Fatalf("golden fingerprint %#x, pinned %#x — simulated behavior changed; "+
					"update pinnedGoldenFingerprints if intentional", got, want)
			}
		})
	}
}

// A tiny end-to-end campaign must run for every non-MAC scenario through
// the sharded runner: finite FDR in [0,1], and the corpus circuits must be
// observably vulnerable (some failures found somewhere).
func TestCorpusScenarioCampaigns(t *testing.T) {
	totalFailures := 0
	for _, s := range corpus.List() {
		if s.Entry.Name == "mac10ge" {
			continue // covered (heavily) by the core study tests
		}
		m, err := s.Materialize(corpus.ScaleSmall, 1)
		if err != nil {
			t.Fatalf("%s: %v", s.ID(), err)
		}
		runner, err := fault.NewRunner(m.Program, m.Bench.Stim, m.Bench.Monitors,
			m.Bench.Classifier, fault.RunnerConfig{Golden: m.Golden})
		if err != nil {
			t.Fatalf("%s: %v", s.ID(), err)
		}
		jobs := fault.NewPlan(m.NumFFs(), 2, m.Bench.ActiveCycles, s.Entry.Defaults.CampaignSeed)
		res, err := runner.Run(jobs)
		if err != nil {
			t.Fatalf("%s: campaign: %v", s.ID(), err)
		}
		if len(res.FDR) != m.NumFFs() {
			t.Fatalf("%s: FDR for %d FFs, want %d", s.ID(), len(res.FDR), m.NumFFs())
		}
		for ff, v := range res.FDR {
			if v < 0 || v > 1 {
				t.Fatalf("%s: FF %d has FDR %v", s.ID(), ff, v)
			}
		}
		for _, f := range res.Failures {
			totalFailures += f
		}
	}
	if totalFailures == 0 {
		t.Fatal("no scenario produced any functional failure; classifiers or workloads are inert")
	}
}
