package corpus

import (
	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Built-in corpus. Registration order is the canonical listing order:
// the paper's original DUT first, then the new families.
func init() {
	mustRegister(macEntry())
	mustRegister(aluEntry())
	mustRegister(arbEntry())
	mustRegister(uartEntry())
	mustRegister(randomEntry())
}

// macConfig returns the MAC generator configuration at a scale.
func macConfig(scale Scale) circuit.MACConfig {
	if scale == ScaleSmall {
		// The quickstart scale: structural FF count (~600), shallow FIFOs.
		return circuit.MACConfig{FIFODepth: 16, StatWidth: 8}
	}
	return circuit.DefaultMACConfig()
}

func macEntry() *Entry {
	buildMAC := func(p *sim.Program, cfg circuit.MACBenchConfig) (*Bench, error) {
		bench, err := circuit.BuildMACBench(p, cfg)
		if err != nil {
			return nil, err
		}
		return &Bench{
			Stim:         bench.Stim,
			Monitors:     bench.Monitors,
			ActiveCycles: bench.ActiveCycles,
			Classifier:   fault.NewMACClassifier(bench, true),
		}, nil
	}
	return &Entry{
		Name:        "mac10ge",
		Description: "MAC10GE-lite: the paper's store-and-forward 10GE MAC with CRC-32 and RMON counters",
		Generate: func(scale Scale, seed int64) (*netlist.Netlist, error) {
			return circuit.NewMAC10GE(macConfig(scale))
		},
		Workloads: []Workload{
			{
				Name:        "loopback",
				Description: "the paper's testbench: packets through the XGMII loopback plus a statistics sweep",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cfg := circuit.DefaultMACBenchConfig()
					cfg.FIFODepth = macConfig(scale).FIFODepth
					cfg.Seed = uint64(seed)*0x9E3779B97F4A7C15 | 1
					if scale == ScaleSmall {
						cfg.Packets = 6
						cfg.MinPayload = 4
						cfg.MaxPayload = 6
					}
					return buildMAC(p, cfg)
				},
			},
			{
				Name:        "bursty",
				Description: "many short frames at minimum inter-frame gap: the FIFO/framer stress profile",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cfg := circuit.DefaultMACBenchConfig()
					cfg.FIFODepth = macConfig(scale).FIFODepth
					cfg.Seed = uint64(seed)*0xD1B54A32D192ED03 | 1
					cfg.MinPayload = 2
					cfg.MaxPayload = 4
					cfg.Gap = 2
					cfg.Packets = 10
					if scale != ScaleSmall {
						cfg.Packets = 24
					}
					return buildMAC(p, cfg)
				},
			},
		},
		Defaults: Geometry{InjectionsPerFF: 170, CampaignSeed: 2019},
	}
}

func aluConfig(scale Scale) circuit.ALUConfig {
	if scale == ScaleSmall {
		return circuit.SmallALUConfig()
	}
	return circuit.DefaultALUConfig()
}

func aluEntry() *Entry {
	ops := func(scale Scale) int {
		if scale == ScaleSmall {
			return 192
		}
		return 384
	}
	return &Entry{
		Name:        "alupipe",
		Description: "three-stage pipelined ALU datapath with hardened accumulator and MISR signature",
		Generate: func(scale Scale, seed int64) (*netlist.Netlist, error) {
			return circuit.NewALUPipe(aluConfig(scale))
		},
		Workloads: []Workload{
			{
				Name:        "randomops",
				Description: "uniform random opcodes and operands at ~75% duty cycle",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					return aluOps(p, aluConfig(scale).Width, ops(scale), seed)
				},
			},
			{
				Name:        "streaming",
				Description: "back-to-back operations every cycle, cycling opcodes",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					return aluStream(p, aluConfig(scale).Width, ops(scale), seed)
				},
			},
		},
		Defaults: Geometry{InjectionsPerFF: 128, CampaignSeed: 2019},
	}
}

func arbConfig(scale Scale) circuit.ArbConfig {
	if scale == ScaleSmall {
		return circuit.SmallArbConfig()
	}
	return circuit.DefaultArbConfig()
}

func arbEntry() *Entry {
	cycles := func(scale Scale) int {
		if scale == ScaleSmall {
			return 256
		}
		return 512
	}
	return &Entry{
		Name:        "rrarb",
		Description: "round-robin arbiter/switch-fabric slice with per-port queues and TMR pointer",
		Generate: func(scale Scale, seed int64) (*netlist.Netlist, error) {
			return circuit.NewRRArb(arbConfig(scale))
		},
		Workloads: []Workload{
			{
				Name:        "uniform",
				Description: "symmetric random traffic on every requester port",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cfg := arbConfig(scale)
					prob := make([]uint64, cfg.Ports)
					for i := range prob {
						prob[i] = 6
					}
					return arbTraffic(p, cfg.Ports, cfg.DataWidth, cycles(scale), prob, seed)
				},
			},
			{
				Name:        "hotspot",
				Description: "one saturated requester against lightly loaded neighbours",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cfg := arbConfig(scale)
					prob := make([]uint64, cfg.Ports)
					prob[0] = 14
					for i := 1; i < cfg.Ports; i++ {
						prob[i] = 2
					}
					return arbTraffic(p, cfg.Ports, cfg.DataWidth, cycles(scale), prob, seed)
				},
			},
		},
		Defaults: Geometry{InjectionsPerFF: 128, CampaignSeed: 2019},
	}
}

func uartConfig(scale Scale) circuit.UARTConfig {
	if scale == ScaleSmall {
		return circuit.SmallUARTConfig()
	}
	return circuit.DefaultUARTConfig()
}

func uartEntry() *Entry {
	return &Entry{
		Name:        "uartser",
		Description: "UART-style serializer: TX FIFO, baud timer, framer with parity, line signature",
		Generate: func(scale Scale, seed int64) (*netlist.Netlist, error) {
			return circuit.NewUARTSer(uartConfig(scale))
		},
		Workloads: []Workload{
			{
				Name:        "paced",
				Description: "bytes pushed at roughly line rate, FIFO nearly empty",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cfg := uartConfig(scale)
					frame := circuit.FrameBits * cfg.Divisor
					return uartBytes(p, 8, frame+2*cfg.Divisor, 3*frame, seed)
				},
			},
			{
				Name:        "burst",
				Description: "a back-to-back burst saturating the FIFO, then a full drain",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cfg := uartConfig(scale)
					frame := circuit.FrameBits * cfg.Divisor
					return uartBurst(p, cfg.FIFODepth+4, (cfg.FIFODepth+3)*frame, seed)
				},
			},
		},
		Defaults: Geometry{InjectionsPerFF: 128, CampaignSeed: 2019},
	}
}

func randomEntry() *Entry {
	cfg := func(scale Scale) circuit.RandomConfig {
		if scale == ScaleSmall {
			return circuit.RandomConfig{Inputs: 4, FFs: 48, Gates: 220, Outputs: 6}
		}
		return circuit.RandomConfig{Inputs: 6, FFs: 160, Gates: 800, Outputs: 8}
	}
	return &Entry{
		Name:        "random",
		Description: "seeded random sequential circuit: the adversarial no-structure baseline",
		Generate: func(scale Scale, seed int64) (*netlist.Netlist, error) {
			return circuit.RandomCircuit(cfg(scale), seed)
		},
		Workloads: []Workload{
			{
				Name:        "noise",
				Description: "independent random toggling on every primary input",
				Build: func(p *sim.Program, scale Scale, seed int64) (*Bench, error) {
					cycles := 256
					if scale != ScaleSmall {
						cycles = 512
					}
					return randomNoise(p, cycles, seed)
				},
			},
		},
		Defaults: Geometry{InjectionsPerFF: 64, CampaignSeed: 2019},
	}
}
