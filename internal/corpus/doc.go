// Package corpus is the circuit/scenario registry that turns the repository
// from a single-DUT reproduction into a corpus of devices under test. Each
// registered Entry bundles a deterministic, seedable netlist generator with
// one or more testbench workloads; a (family, workload) pair is a Scenario,
// the unit everything downstream consumes: the corpus CLI enumerates and
// sweeps scenarios, core studies materialize them, cross-circuit experiments
// train on one and predict on another, and saved model artifacts carry their
// scenario tags so the prediction service can tell models apart.
//
// The built-in corpus covers five DUT families (the paper's MAC10GE-lite,
// a pipelined ALU datapath, a round-robin arbiter/switch slice, a UART-style
// serializer with a baud timer, and a randomized sequential circuit) under
// nine workload variants; external packages can Register more.
package corpus
