package corpus

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/features"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Materialized is a scenario carried through the front half of the Fig. 1
// flow: generated and synthesized netlist, compiled simulator, compiled
// workload, golden trace with activity, and the extracted per-flip-flop
// feature matrix. It holds everything a fault campaign or a study needs;
// the golden trace is computed once here and reused by every downstream
// consumer (runner shards, classifiers, feature extraction).
type Materialized struct {
	Scenario Scenario
	Scale    Scale
	Seed     int64

	Netlist  *netlist.Netlist
	Program  *sim.Program
	Bench    *Bench
	Golden   *sim.Trace
	Activity *sim.Activity
	Features *features.Matrix
	// Snapshots are the periodic golden engine-state restore points
	// captured during the golden run; campaign runners fast-forward faulty
	// batches from them (see sim.Snapshots).
	Snapshots *sim.Snapshots
}

// Materialize runs generate → synthesize → compile → build workload →
// golden simulation (collecting activity) → feature extraction for the
// scenario. The result is deterministic in (scenario, scale, seed).
func (s Scenario) Materialize(scale Scale, seed int64) (*Materialized, error) {
	return s.MaterializeWith(scale, seed, nil)
}

// MaterializeWith is Materialize with a netlist rewrite hook applied
// between generation and synthesis — the seam the hardening advisor uses
// to TMR-rewrite a DUT (circuit.ApplyTMR) and re-measure it under the
// unchanged workload. A nil rewrite is exactly Materialize; determinism
// extends to the rewrite (the result is deterministic in scenario, scale,
// seed and what the hook does). Workloads resolve ports by name, so a
// rewrite must preserve the port surface but may change anything else.
func (s Scenario) MaterializeWith(scale Scale, seed int64, rewrite func(*netlist.Netlist) error) (*Materialized, error) {
	nl, err := s.Entry.Generate(scale, seed)
	if err != nil {
		return nil, fmt.Errorf("corpus: generating %s: %w", s.ID(), err)
	}
	if rewrite != nil {
		if err := rewrite(nl); err != nil {
			return nil, fmt.Errorf("corpus: rewriting %s: %w", s.ID(), err)
		}
	}
	if err := circuit.Synthesize(nl); err != nil {
		return nil, fmt.Errorf("corpus: synthesizing %s: %w", s.ID(), err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		return nil, fmt.Errorf("corpus: compiling %s: %w", s.ID(), err)
	}
	bench, err := s.Workload.Build(p, scale, seed)
	if err != nil {
		return nil, fmt.Errorf("corpus: building workload %s: %w", s.ID(), err)
	}
	if bench.Classifier == nil {
		return nil, fmt.Errorf("corpus: workload %s built a bench without a classifier", s.ID())
	}
	if bench.ActiveCycles < 1 || bench.ActiveCycles > bench.Stim.Cycles() {
		return nil, fmt.Errorf("corpus: workload %s has injection window %d of %d cycles",
			s.ID(), bench.ActiveCycles, bench.Stim.Cycles())
	}

	engine := sim.NewEngine(p)
	snaps := sim.NewSnapshots(p, bench.Stim, 0)
	golden, act := sim.Run(engine, bench.Stim, sim.RunConfig{
		Monitors:        bench.Monitors,
		CollectActivity: true,
		Snapshots:       snaps,
	})

	ex, err := features.NewExtractor(nl)
	if err != nil {
		return nil, fmt.Errorf("corpus: feature extraction for %s: %w", s.ID(), err)
	}
	fm, err := ex.Extract(act)
	if err != nil {
		return nil, fmt.Errorf("corpus: feature extraction for %s: %w", s.ID(), err)
	}
	return &Materialized{
		Scenario:  s,
		Scale:     scale,
		Seed:      seed,
		Netlist:   nl,
		Program:   p,
		Bench:     bench,
		Golden:    golden,
		Activity:  act,
		Features:  fm,
		Snapshots: snaps,
	}, nil
}

// NumFFs returns the flip-flop count of the materialized DUT.
func (m *Materialized) NumFFs() int { return m.Program.NumFFs() }
