package corpus

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Scale selects the circuit/workload size of a scenario.
type Scale int

// Scales. Small keeps every corpus entry fast enough for smoke tests and
// CI; Default is the scale experiments report.
const (
	ScaleSmall Scale = iota
	ScaleDefault
)

// ParseScale resolves a -scale flag value.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "small":
		return ScaleSmall, nil
	case "default":
		return ScaleDefault, nil
	}
	return 0, fmt.Errorf("corpus: unknown scale %q (valid: small, default)", s)
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == ScaleSmall {
		return "small"
	}
	return "default"
}

// Geometry is a scenario's default campaign shape.
type Geometry struct {
	// InjectionsPerFF is the per-flip-flop SEU budget.
	InjectionsPerFF int
	// CampaignSeed drives injection-time sampling.
	CampaignSeed int64
}

// Bench is a compiled workload: the open-loop stimulus, the monitored
// output ports, the injection window and the applicative failure criterion.
// It is the generic counterpart of circuit.MACBench that lets fault.Runner
// drive any corpus DUT.
type Bench struct {
	Stim     *sim.Stimulus
	Monitors []int
	// ActiveCycles is the injection window [0, ActiveCycles).
	ActiveCycles int
	// Classifier decides per-lane functional failure against the golden
	// trace.
	Classifier fault.Classifier
}

// Workload is one testbench variant of a DUT family.
type Workload struct {
	// Name is the variant identifier within the family (e.g. "loopback").
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Build compiles the workload against a compiled program of the
	// family's netlist. Workload construction is deterministic in
	// (scale, seed).
	Build func(p *sim.Program, scale Scale, seed int64) (*Bench, error)
}

// Entry is one DUT family of the corpus.
type Entry struct {
	// Name is the family identifier (e.g. "alupipe").
	Name string
	// Description is a one-line summary for listings.
	Description string
	// Generate builds the family's netlist (pre-synthesis) at the given
	// scale. Generation must be deterministic in (scale, seed): the same
	// pair always yields a Fingerprint-identical netlist. Structured
	// generators ignore the seed; randomized ones (the "random" family)
	// derive all randomness from it.
	Generate func(scale Scale, seed int64) (*netlist.Netlist, error)
	// Workloads are the family's testbench variants; at least one.
	Workloads []Workload
	// Defaults is the family's default campaign geometry.
	Defaults Geometry
}

// Scenario is one (family, workload) pair — the unit of the corpus.
type Scenario struct {
	Entry    *Entry
	Workload *Workload
}

// ID returns the scenario identifier "family/workload".
func (s Scenario) ID() string { return s.Entry.Name + "/" + s.Workload.Name }

// registry is the ordered corpus. Builtins register at init; external
// packages may add more via Register.
var registry []*Entry

// Register adds a DUT family to the corpus. It rejects nil generators,
// empty workload lists and duplicate family names.
func Register(e *Entry) error {
	if e == nil || e.Name == "" {
		return fmt.Errorf("corpus: registering nil or unnamed entry")
	}
	if strings.ContainsRune(e.Name, '/') {
		return fmt.Errorf("corpus: family name %q must not contain '/'", e.Name)
	}
	if e.Generate == nil {
		return fmt.Errorf("corpus: family %q has no generator", e.Name)
	}
	if len(e.Workloads) == 0 {
		return fmt.Errorf("corpus: family %q has no workloads", e.Name)
	}
	seen := map[string]bool{}
	for i := range e.Workloads {
		w := &e.Workloads[i]
		if w.Name == "" || w.Build == nil {
			return fmt.Errorf("corpus: family %q has an unnamed or buildless workload", e.Name)
		}
		if seen[w.Name] {
			return fmt.Errorf("corpus: family %q registers workload %q twice", e.Name, w.Name)
		}
		seen[w.Name] = true
	}
	if e.Defaults.InjectionsPerFF < 1 {
		return fmt.Errorf("corpus: family %q has no default injection budget", e.Name)
	}
	for _, prev := range registry {
		if prev.Name == e.Name {
			return fmt.Errorf("corpus: family %q already registered", e.Name)
		}
	}
	registry = append(registry, e)
	return nil
}

// mustRegister is the builtin-registration helper; a broken builtin is a
// programming error.
func mustRegister(e *Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// Families lists every registered DUT family in registration order.
func Families() []*Entry {
	return append([]*Entry(nil), registry...)
}

// List enumerates every scenario in registration order.
func List() []Scenario {
	var out []Scenario
	for _, e := range registry {
		for i := range e.Workloads {
			out = append(out, Scenario{Entry: e, Workload: &e.Workloads[i]})
		}
	}
	return out
}

// IDs lists every scenario identifier in registration order.
func IDs() []string {
	scenarios := List()
	ids := make([]string, len(scenarios))
	for i, s := range scenarios {
		ids[i] = s.ID()
	}
	return ids
}

// Find resolves a scenario by "family/workload" identifier, or a family's
// first workload when only "family" is given.
func Find(id string) (Scenario, error) {
	family, workload, hasWorkload := strings.Cut(id, "/")
	for _, e := range registry {
		if e.Name != family {
			continue
		}
		if !hasWorkload {
			return Scenario{Entry: e, Workload: &e.Workloads[0]}, nil
		}
		for i := range e.Workloads {
			if e.Workloads[i].Name == workload {
				return Scenario{Entry: e, Workload: &e.Workloads[i]}, nil
			}
		}
		return Scenario{}, fmt.Errorf("corpus: family %q has no workload %q (valid: %s)",
			family, workload, strings.Join(workloadNames(e), ", "))
	}
	known := IDs()
	sort.Strings(known)
	return Scenario{}, fmt.Errorf("corpus: unknown scenario %q (valid: %s)",
		id, strings.Join(known, ", "))
}

func workloadNames(e *Entry) []string {
	names := make([]string, len(e.Workloads))
	for i := range e.Workloads {
		names[i] = e.Workloads[i].Name
	}
	return names
}
