package circuit

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// RandomConfig parameterizes RandomCircuit.
type RandomConfig struct {
	Inputs  int // primary inputs (≥1)
	FFs     int // flip-flops (≥1)
	Gates   int // combinational gates (≥1)
	Outputs int // primary outputs (≥1)
}

// RandomCircuit generates a random, valid, acyclic-combinational netlist.
// Gates read only previously created nets, which guarantees a combinational
// DAG; flip-flop D pins may read any net, producing realistic sequential
// feedback.
//
// Determinism contract (required of every corpus generator): all randomness
// flows from the explicit seed through a single rand.Source — no global
// rand, no time, no map iteration — so the same (cfg, seed) pair always
// produces a Fingerprint-identical netlist. Campaign results, golden traces
// and saved model artifacts for a corpus scenario are only comparable across
// runs and machines because of this property; a regression test pins it.
//
// Property tests use these circuits to cross-check the two simulation
// engines on arbitrary structures, and the corpus exposes them as the
// "random" DUT family.
func RandomCircuit(cfg RandomConfig, seed int64) (*netlist.Netlist, error) {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("random_%d", seed))

	pool := make([]netlist.NetID, 0, cfg.Inputs+cfg.FFs+cfg.Gates)
	for i := 0; i < cfg.Inputs; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("in[%d]", i)))
	}
	ffQ := make([]netlist.NetID, cfg.FFs)
	ffSet := make([]func(netlist.NetID), cfg.FFs)
	for i := 0; i < cfg.FFs; i++ {
		ffQ[i], ffSet[i] = b.DFFDecl(fmt.Sprintf("ff[%d]", i), rng.Intn(2) == 1)
		pool = append(pool, ffQ[i])
	}
	pick := func() netlist.NetID { return pool[rng.Intn(len(pool))] }
	for g := 0; g < cfg.Gates; g++ {
		var out netlist.NetID
		switch rng.Intn(10) {
		case 0:
			out = b.Not(pick())
		case 1:
			out = b.And(pick(), pick())
		case 2:
			out = b.And(pick(), pick(), pick())
		case 3:
			out = b.Or(pick(), pick())
		case 4:
			out = b.Or(pick(), pick(), pick(), pick())
		case 5:
			out = b.Xor(pick(), pick())
		case 6:
			out = b.Xnor(pick(), pick())
		case 7:
			out = b.Mux(pick(), pick(), pick())
		case 8:
			out = b.AOI21(pick(), pick(), pick())
		default:
			out = b.OAI21(pick(), pick(), pick())
		}
		pool = append(pool, out)
	}
	for i := 0; i < cfg.FFs; i++ {
		ffSet[i](pick())
	}
	for i := 0; i < cfg.Outputs; i++ {
		b.Output(fmt.Sprintf("out[%d]", i), pick())
	}
	return b.Finish()
}
