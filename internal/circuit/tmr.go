package circuit

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
)

// This file is the netlist rewriter behind the hardening advisor
// (internal/harden): it applies the TMR structure of components.go —
// triplicated state, 2-of-3 majority vote — to an already generated
// netlist, flip-flop by flip-flop, instead of requiring the design to be
// rebuilt through the Builder with TMRWord.
//
// The rewrite targets the campaign's fault model: single-event upsets in
// flip-flops. Each selected flip-flop gains two replicas loading the same
// next-state value and one majority voter over the three outputs; every
// former reader of the flip-flop (combinational fanout, other flip-flops'
// D pins, primary outputs) is rewired to the voter. A flip in any one
// replica is out-voted the same cycle and overwritten by the shared
// next-state value on the next clock edge, so the hardened flip-flop's
// measured FDR drops to zero. Logic and voter upsets are outside the fault
// model, which is why one voter per flip-flop suffices here where TMRWord
// triplicates them.
//
// The rewrite preserves fault-free behavior exactly: with all replicas
// equal, the voter output equals the original Q, so the golden trace of
// the hardened netlist is bit-identical to the original's — an invariant
// the corpus-wide property tests pin. The netlist fingerprint, of course,
// changes.

// tmrVoterTypes resolves the voter gate types once; StdLib always carries
// them, so a failure is a programming error.
func tmrVoterTypes() (and2, or3 *netlist.CellType) {
	lib := netlist.StdLib()
	and2, err := lib.Lookup("AND2_X1")
	if err != nil {
		panic(err)
	}
	or3, err = lib.Lookup("OR3_X1")
	if err != nil {
		panic(err)
	}
	return and2, or3
}

// TMRVoterArea returns the area of one 2-of-3 majority voter (three AND2
// plus one OR3) in gate-equivalent units.
func TMRVoterArea() float64 {
	and2, or3 := tmrVoterTypes()
	return 3*and2.AreaUnits() + or3.AreaUnits()
}

// TMRCost returns the incremental area of TMR-hardening one flip-flop of
// the given cell type: two replica flip-flops plus one majority voter, in
// gate-equivalent units (netlist.CellType.AreaUnits).
func TMRCost(ff *netlist.CellType) float64 {
	return 2*ff.AreaUnits() + TMRVoterArea()
}

// ApplyTMR rewrites nl in place, TMR-hardening the flip-flops selected by
// ffs — indices into the netlist's flip-flop order (netlist.FFs), the same
// order campaigns and feature matrices use. Indices are deduplicated;
// out-of-range indices are an error and leave nl untouched.
//
// New cells are appended, so the original flip-flops keep their indices:
// flip-flop i of the hardened netlist is flip-flop i of the original for
// i < NumFFs(original), followed by the replica pairs in selection order.
// The rewrite happens pre-synthesis; Synthesize then sizes drives and
// buffers fanout as usual.
func ApplyTMR(nl *netlist.Netlist, ffs []int) error {
	ffIDs := nl.FFs()
	sel := append([]int(nil), ffs...)
	sort.Ints(sel)
	dedup := sel[:0]
	for i, idx := range sel {
		if idx < 0 || idx >= len(ffIDs) {
			return fmt.Errorf("circuit: TMR target %d out of range (netlist has %d flip-flops)", idx, len(ffIDs))
		}
		if i > 0 && idx == sel[i-1] {
			continue
		}
		dedup = append(dedup, idx)
	}
	and2, or3 := tmrVoterTypes()

	for _, idx := range dedup {
		cid := ffIDs[idx]
		ff := nl.Cells[cid] // copy: appends below may grow nl.Cells
		origQ := ff.Output
		d := ff.Inputs[0]

		// Record every reader of the original Q before the voter exists:
		// cell input pins and primary-output bindings. These all move to
		// the voted net; only the voter itself reads the raw replicas.
		type pin struct{ cell, input int }
		var readers []pin
		for ci := range nl.Cells {
			for pi, in := range nl.Cells[ci].Inputs {
				if in == origQ {
					readers = append(readers, pin{ci, pi})
				}
			}
		}

		// Cell IDs are assigned by append order; nets need them up front.
		base := netlist.CellID(len(nl.Cells))
		ids := struct{ rb, rc, ab, ac, bc, vote netlist.CellID }{
			base, base + 1, base + 2, base + 3, base + 4, base + 5,
		}
		addNet := func(suffix string, driver netlist.CellID) (netlist.NetID, error) {
			return nl.AddNet(ff.Name+suffix, driver)
		}
		qb, err := addNet(".tmr_qb", ids.rb)
		if err != nil {
			return err
		}
		qc, err := addNet(".tmr_qc", ids.rc)
		if err != nil {
			return err
		}
		wab, err := addNet(".tmr_ab", ids.ab)
		if err != nil {
			return err
		}
		wac, err := addNet(".tmr_ac", ids.ac)
		if err != nil {
			return err
		}
		wbc, err := addNet(".tmr_bc", ids.bc)
		if err != nil {
			return err
		}
		vote, err := addNet(".tmr_vote", ids.vote)
		if err != nil {
			return err
		}

		// A flip-flop feeding its own D directly must load the voted value,
		// like every other reader of its Q; the rewiring below moves the
		// original cell's pin, the replicas start there.
		dIn := d
		if d == origQ {
			dIn = vote
		}
		nl.Cells = append(nl.Cells,
			netlist.Cell{Name: ff.Name + ".tmr_b", Type: ff.Type, Inputs: []netlist.NetID{dIn}, Output: qb, Init: ff.Init},
			netlist.Cell{Name: ff.Name + ".tmr_c", Type: ff.Type, Inputs: []netlist.NetID{dIn}, Output: qc, Init: ff.Init},
			netlist.Cell{Name: ff.Name + ".tmr_ab", Type: and2, Inputs: []netlist.NetID{origQ, qb}, Output: wab},
			netlist.Cell{Name: ff.Name + ".tmr_ac", Type: and2, Inputs: []netlist.NetID{origQ, qc}, Output: wac},
			netlist.Cell{Name: ff.Name + ".tmr_bc", Type: and2, Inputs: []netlist.NetID{qb, qc}, Output: wbc},
			netlist.Cell{Name: ff.Name + ".tmr_vote", Type: or3, Inputs: []netlist.NetID{wab, wac, wbc}, Output: vote},
		)
		for _, r := range readers {
			nl.Cells[r.cell].Inputs[r.input] = vote
		}
		for oi, on := range nl.Outputs {
			if on == origQ {
				nl.Outputs[oi] = vote
			}
		}
	}
	if err := nl.Validate(); err != nil {
		return fmt.Errorf("circuit: TMR rewrite broke %q: %w", nl.Name, err)
	}
	return nil
}
