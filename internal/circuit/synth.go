package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// MaxFanout is the load limit above which the synthesis pass builds buffer
// trees, mirroring production synthesis DRC fixing.
const MaxFanout = 8

// Synthesize is the mini technology-mapping pass that substitutes for the
// paper's Synopsys Design Compiler run. It first legalizes fanout by
// inserting buffer trees on overloaded nets (as Design Compiler's DRC
// fixing does), then sizes every cell's drive strength from the remaining
// fanout:
//
//	fanout ≤ 2  → X1
//	fanout ≤ 5  → X2
//	fanout ≥ 6  → X4
//
// The per-flip-flop drive strength becomes the "Flip-Flop Drive Strength"
// feature of Section III-B. Tie cells exist only in X1 and keep their type.
func Synthesize(nl *netlist.Netlist) error {
	lib := netlist.StdLib()
	if err := insertBuffers(nl, lib, MaxFanout); err != nil {
		return err
	}
	fanout := Fanout(nl)
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Type.Func == netlist.FuncConst0 || c.Type.Func == netlist.FuncConst1 {
			continue
		}
		drive := 1
		switch f := fanout[c.Output]; {
		case f >= 6:
			drive = 4
		case f >= 3:
			drive = 2
		}
		if drive == c.Type.Drive {
			continue
		}
		v, err := lib.Variant(c.Type, drive)
		if err != nil {
			return fmt.Errorf("circuit: synthesizing %q: %w", c.Name, err)
		}
		c.Type = v
	}
	return nil
}

// insertBuffers rewires every net with more than maxFan cell-pin sinks
// through a tree of BUF_X2 cells so no driver sees more than maxFan loads.
// Primary output bindings stay on the original net. Nets driven by tie
// cells are exempt (constants are legalized by duplication in real flows
// and carry no switching load).
func insertBuffers(nl *netlist.Netlist, lib *netlist.Library, maxFan int) error {
	buf, err := lib.Lookup("BUF_X2")
	if err != nil {
		return fmt.Errorf("circuit: buffer insertion: %w", err)
	}
	type pinRef struct {
		cell netlist.CellID
		pin  int
	}
	bufCount := 0
	// Iterate until stable: buffering one net can overload none (buffers
	// have one input), but freshly created buffer output nets may still
	// exceed maxFan when a net needs a multi-level tree.
	work := make([]netlist.NetID, len(nl.Nets))
	for i := range work {
		work[i] = netlist.NetID(i)
	}
	for len(work) > 0 {
		sinks := make(map[netlist.NetID][]pinRef)
		inWork := make(map[netlist.NetID]bool, len(work))
		for _, n := range work {
			inWork[n] = true
		}
		for ci := range nl.Cells {
			for pin, in := range nl.Cells[ci].Inputs {
				if inWork[in] {
					sinks[in] = append(sinks[in], pinRef{cell: netlist.CellID(ci), pin: pin})
				}
			}
		}
		var next []netlist.NetID
		for _, net := range work {
			refs := sinks[net]
			if len(refs) <= maxFan {
				continue
			}
			drv := nl.Nets[net].Driver
			if drv >= 0 {
				f := nl.Cells[drv].Type.Func
				if f == netlist.FuncConst0 || f == netlist.FuncConst1 {
					continue
				}
			}
			// Split the sinks into maxFan groups and drive each group
			// through one buffer.
			groups := (len(refs) + maxFan - 1) / maxFan
			if groups > maxFan {
				groups = maxFan
			}
			for g := 0; g < groups; g++ {
				bufCount++
				cid := netlist.CellID(len(nl.Cells))
				out, err := nl.AddNet(fmt.Sprintf("synthbuf_%d_o", bufCount), cid)
				if err != nil {
					return fmt.Errorf("circuit: buffer insertion: %w", err)
				}
				nl.Cells = append(nl.Cells, netlist.Cell{
					Name:   fmt.Sprintf("synthbuf_%d", bufCount),
					Type:   buf,
					Inputs: []netlist.NetID{net},
					Output: out,
				})
				for k := g; k < len(refs); k += groups {
					nl.Cells[refs[k].cell].Inputs[refs[k].pin] = out
				}
				// A buffer output may itself exceed maxFan; re-examine.
				next = append(next, out)
			}
		}
		work = next
	}
	return nil
}

// Fanout returns, per net, the number of sinks: cell input pins reading the
// net plus the number of primary output ports bound to it.
func Fanout(nl *netlist.Netlist) []int {
	fanout := make([]int, len(nl.Nets))
	for ci := range nl.Cells {
		for _, in := range nl.Cells[ci].Inputs {
			fanout[in]++
		}
	}
	for _, out := range nl.Outputs {
		fanout[out]++
	}
	return fanout
}
