package circuit_test

import (
	"bytes"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// buildMAC compiles the default 1054-FF MAC and its testbench once per test
// run; building is cheap enough to repeat but sharing keeps tests fast.
func buildMAC(t *testing.T) (*sim.Program, *circuit.MACBench) {
	t.Helper()
	nl, err := circuit.NewMAC10GE(circuit.DefaultMACConfig())
	if err != nil {
		t.Fatalf("NewMAC10GE: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bench, err := circuit.BuildMACBench(p, circuit.DefaultMACBenchConfig())
	if err != nil {
		t.Fatalf("BuildMACBench: %v", err)
	}
	return p, bench
}

func TestMACHasPaperFFCount(t *testing.T) {
	nl, err := circuit.NewMAC10GE(circuit.DefaultMACConfig())
	if err != nil {
		t.Fatalf("NewMAC10GE: %v", err)
	}
	if got := nl.NumFFs(); got != 1054 {
		t.Fatalf("NumFFs = %d, want 1054 (the paper's circuit)", got)
	}
	st := nl.Stats()
	if st.MaxLevel < 3 {
		t.Fatalf("MaxLevel = %d, suspiciously shallow", st.MaxLevel)
	}
	t.Logf("MAC10GE-lite: %d cells (%d FF, %d comb), %d nets, depth %d",
		st.Cells, st.FlipFlops, st.Combo, st.Nets, st.MaxLevel)
}

func TestMACConfigValidation(t *testing.T) {
	cases := []circuit.MACConfig{
		{FIFODepth: 3, StatWidth: 24},
		{FIFODepth: 32, StatWidth: 4},
		{FIFODepth: 32, StatWidth: 64},
		{FIFODepth: 32, StatWidth: 24, TargetFFs: -1},
		{FIFODepth: 32, StatWidth: 24, TargetFFs: 10}, // below structural minimum
	}
	for i, cfg := range cases {
		if _, err := circuit.NewMAC10GE(cfg); err == nil {
			t.Fatalf("case %d: config %+v must be rejected", i, cfg)
		}
	}
}

func TestMACLoopbackDeliversAllPackets(t *testing.T) {
	p, bench := buildMAC(t)
	e := sim.NewEngine(p)
	trace, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})

	got := bench.LanePackets(trace, 0)
	if len(got) != len(bench.Packets) {
		t.Fatalf("received %d packets, sent %d", len(got), len(bench.Packets))
	}
	for i, pkt := range got {
		if pkt.Err {
			t.Fatalf("packet %d flagged with CRC error in golden run", i)
		}
		if !bytes.Equal(pkt.Payload, bench.Packets[i]) {
			t.Fatalf("packet %d payload mismatch:\n got  %x\n want %x",
				i, pkt.Payload, bench.Packets[i])
		}
	}
}

func TestMACStatisticsReadout(t *testing.T) {
	p, bench := buildMAC(t)
	e := sim.NewEngine(p)
	trace, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})

	stats := bench.LaneStats(trace, 0)
	bytesPer := (circuit.DefaultMACConfig().StatWidth + 7) / 8
	if len(stats) < 6*bytesPer {
		t.Fatalf("stats readout too short: %d", len(stats))
	}
	counter := func(slot int) int {
		v := 0
		for b := 0; b < bytesPer; b++ {
			v |= int(stats[slot*bytesPer+b]) << uint(8*b)
		}
		return v
	}
	if got := counter(0); got != len(bench.Packets) {
		t.Fatalf("tx_frames = %d, want %d", got, len(bench.Packets))
	}
	var wantBytes int
	for _, pl := range bench.Packets {
		wantBytes += len(pl)
	}
	if got := counter(1); got != wantBytes {
		t.Fatalf("tx_bytes = %d, want %d", got, wantBytes)
	}
	if got := counter(2); got != len(bench.Packets) {
		t.Fatalf("rx_frames = %d, want %d", got, len(bench.Packets))
	}
	if got := counter(3); got != 0 {
		t.Fatalf("rx_crc_err = %d, want 0 in golden run", got)
	}
	if got := counter(4); got != wantBytes {
		t.Fatalf("rx_bytes = %d, want %d", got, wantBytes)
	}
	if got := counter(5); got != 0 {
		t.Fatalf("tx_drops = %d, want 0 in golden run", got)
	}
}

func TestMACActivityIsPlausible(t *testing.T) {
	p, bench := buildMAC(t)
	e := sim.NewEngine(p)
	_, act := sim.Run(e, bench.Stim, sim.RunConfig{CollectActivity: true})
	if act == nil {
		t.Fatal("no activity")
	}
	busy := 0
	for i := range act.Toggles {
		if act.Toggles[i] > 0 {
			busy++
		}
	}
	// A healthy run toggles a sizable share of the design.
	if busy < p.NumFFs()/4 {
		t.Fatalf("only %d of %d FFs toggled — testbench too idle", busy, p.NumFFs())
	}
}

func TestMACFaultCanCorruptPayload(t *testing.T) {
	// Sanity for the fault model: flipping a TX FIFO data bit while a
	// payload byte is in flight must either corrupt a packet or be benign,
	// and flipping *some* FF during the active window must produce at
	// least one failing lane. Try a batch of 64 distinct targets.
	p, bench := buildMAC(t)
	e := sim.NewEngine(p)
	golden, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})
	goldenPkts := bench.LanePackets(golden, 0)

	injectCycle := 3 // while the first packet streams into the FIFO
	e2 := sim.NewEngine(p)
	faulty, _ := sim.Run(e2, bench.Stim, sim.RunConfig{
		Monitors: bench.Monitors,
		PreEval: func(c int) {
			if c == injectCycle {
				for lane := 0; lane < 64; lane++ {
					e2.FlipFF(lane*7%p.NumFFs(), 1<<uint(lane))
				}
			}
		},
	})
	anyFailure := false
	for lane := 0; lane < 64; lane++ {
		pkts := bench.LanePackets(faulty, lane)
		if len(pkts) != len(goldenPkts) {
			anyFailure = true
			break
		}
		for i := range pkts {
			if pkts[i].Err != goldenPkts[i].Err || !bytes.Equal(pkts[i].Payload, goldenPkts[i].Payload) {
				anyFailure = true
			}
		}
	}
	if !anyFailure {
		t.Fatal("64 random SEUs during packet streaming all benign — fault path broken?")
	}
}

func TestSynthesizeAssignsDrives(t *testing.T) {
	nl, err := circuit.NewMAC10GE(circuit.DefaultMACConfig())
	if err != nil {
		t.Fatalf("NewMAC10GE: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	counts := map[int]int{}
	for i := range nl.Cells {
		counts[nl.Cells[i].Type.Drive]++
	}
	if counts[2] == 0 || counts[4] == 0 {
		t.Fatalf("expected a mix of drive strengths, got %v", counts)
	}
	// Fanout rule spot check.
	fanout := circuit.Fanout(nl)
	for i := range nl.Cells {
		c := &nl.Cells[i]
		f := fanout[c.Output]
		want := 1
		switch {
		case f >= 6:
			want = 4
		case f >= 3:
			want = 2
		}
		if c.Type.Name == "TIEL" || c.Type.Name == "TIEH" {
			continue
		}
		if c.Type.Drive != want {
			t.Fatalf("cell %q fanout %d has drive X%d, want X%d", c.Name, f, c.Type.Drive, want)
		}
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid after synthesis: %v", err)
	}
}

func TestParityPipelineBuilds(t *testing.T) {
	nl, err := circuit.ParityPipeline()
	if err != nil {
		t.Fatalf("ParityPipeline: %v", err)
	}
	if nl.NumFFs() < 10 {
		t.Fatalf("too few FFs: %d", nl.NumFFs())
	}
	if _, err := sim.Compile(nl); err != nil {
		t.Fatalf("Compile: %v", err)
	}
}

func TestBenchConfigValidation(t *testing.T) {
	bad := []circuit.MACBenchConfig{
		{Packets: 0, MinPayload: 4, MaxPayload: 8, Gap: 8, FIFODepth: 32},
		{Packets: 1, MinPayload: 0, MaxPayload: 8, Gap: 8, FIFODepth: 32},
		{Packets: 1, MinPayload: 9, MaxPayload: 8, Gap: 8, FIFODepth: 32},
		{Packets: 1, MinPayload: 4, MaxPayload: 20, Gap: 8, FIFODepth: 32},
		{Packets: 1, MinPayload: 4, MaxPayload: 8, Gap: 0, FIFODepth: 32},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("case %d: %+v must be rejected", i, cfg)
		}
	}
	if err := circuit.DefaultMACBenchConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}
