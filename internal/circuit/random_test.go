package circuit_test

import (
	"testing"

	"repro/internal/circuit"
)

// Two generations with the same config and seed must produce
// fingerprint-identical netlists — the corpus determinism contract — and
// different seeds must not collide on small samples.
func TestRandomCircuitSeedDeterminism(t *testing.T) {
	cfg := circuit.RandomConfig{Inputs: 4, FFs: 24, Gates: 120, Outputs: 6}
	for _, seed := range []int64{1, 2, 42, 1 << 40} {
		a, err := circuit.RandomCircuit(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := circuit.RandomCircuit(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		// Synthesis is deterministic too: the full generate+synthesize
		// path must also fingerprint equal.
		if err := circuit.Synthesize(a); err != nil {
			t.Fatalf("seed %d: synthesize: %v", seed, err)
		}
		if err := circuit.Synthesize(b); err != nil {
			t.Fatalf("seed %d: synthesize: %v", seed, err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: synthesized netlists differ", seed)
		}
	}
	a, _ := circuit.RandomCircuit(cfg, 7)
	b, _ := circuit.RandomCircuit(cfg, 8)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different seeds produced identical netlists")
	}
}
