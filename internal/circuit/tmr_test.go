package circuit_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// buildToggleChain builds a tiny DUT with observable state: a 3-stage shift
// chain clocked from an input, with the last stage both a primary output
// and fed back through an XOR so single flips propagate and persist.
func buildToggleChain(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("tmrfix")
	in := b.Input("in")
	q2, setD2 := b.DFFDecl("s2", false)
	q0 := b.DFF("s0", b.Xor(in, q2), false)
	q1 := b.DFF("s1", q0, true)
	setD2(b.Xor(q1, q0))
	b.Output("out", q2)
	b.Output("mid", q1)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return nl
}

// runWithFlip simulates cycles steps, driving the input from stim bits,
// optionally flipping flip-flop ff at flipCycle, and returns the output
// port values observed each cycle (lane 0).
func runWithFlip(t *testing.T, nl *netlist.Netlist, cycles, ff, flipCycle int, flip bool) []uint64 {
	t.Helper()
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := sim.NewEngine(p)
	e.Reset()
	var out []uint64
	for c := 0; c < cycles; c++ {
		e.SetInputBool(0, c%3 == 0)
		if flip && c == flipCycle {
			e.FlipFF(ff, 1)
		}
		e.Eval()
		var word uint64
		for o := 0; o < 2; o++ {
			word |= (e.Output(o) & 1) << uint(o)
		}
		out = append(out, word)
		e.Commit()
	}
	return out
}

func TestApplyTMRPreservesFaultFreeBehavior(t *testing.T) {
	base := buildToggleChain(t)
	hardened := buildToggleChain(t)
	if err := circuit.ApplyTMR(hardened, []int{0, 1, 2}); err != nil {
		t.Fatalf("ApplyTMR: %v", err)
	}
	if err := hardened.Validate(); err != nil {
		t.Fatalf("hardened netlist invalid: %v", err)
	}
	if base.Fingerprint() == hardened.Fingerprint() {
		t.Fatal("TMR rewrite must change the netlist fingerprint")
	}
	if got, want := hardened.NumFFs(), base.NumFFs()+6; got != want {
		t.Fatalf("hardened has %d FFs, want %d", got, want)
	}
	const cycles = 24
	golden := runWithFlip(t, base, cycles, 0, 0, false)
	goldenHard := runWithFlip(t, hardened, cycles, 0, 0, false)
	for c := range golden {
		if golden[c] != goldenHard[c] {
			t.Fatalf("fault-free outputs diverge at cycle %d: base %b, hardened %b", c, golden[c], goldenHard[c])
		}
	}
}

func TestApplyTMROutvotesSingleFlips(t *testing.T) {
	base := buildToggleChain(t)
	hardened := buildToggleChain(t)
	if err := circuit.ApplyTMR(hardened, []int{0, 1, 2}); err != nil {
		t.Fatalf("ApplyTMR: %v", err)
	}
	const cycles = 24
	golden := runWithFlip(t, base, cycles, 0, 0, false)

	// The unhardened design must actually be vulnerable, or the test below
	// proves nothing.
	vulnerable := false
	for ff := 0; ff < base.NumFFs(); ff++ {
		faulty := runWithFlip(t, base, cycles, ff, 5, true)
		for c := range golden {
			if faulty[c] != golden[c] {
				vulnerable = true
			}
		}
	}
	if !vulnerable {
		t.Fatal("baseline DUT tolerates every single flip; fixture is useless")
	}

	// Every flip-flop of the hardened design — originals and replicas —
	// must tolerate a single-cycle flip with bit-identical outputs.
	for ff := 0; ff < hardened.NumFFs(); ff++ {
		faulty := runWithFlip(t, hardened, cycles, ff, 5, true)
		for c := range golden {
			if faulty[c] != golden[c] {
				t.Fatalf("flip of hardened FF %d visible at cycle %d", ff, c)
			}
		}
	}
}

func TestApplyTMRPartialSelection(t *testing.T) {
	hardened := buildToggleChain(t)
	// Duplicate and unsorted indices are fine; only FF 1 is hardened.
	if err := circuit.ApplyTMR(hardened, []int{1, 1}); err != nil {
		t.Fatalf("ApplyTMR: %v", err)
	}
	if got, want := hardened.NumFFs(), 5; got != want {
		t.Fatalf("hardened has %d FFs, want %d", got, want)
	}
	base := buildToggleChain(t)
	const cycles = 24
	golden := runWithFlip(t, base, cycles, 0, 0, false)
	// FF 1 (and its replicas 3, 4) are immune; FF 0 must still be flippable.
	for _, ff := range []int{1, 3, 4} {
		faulty := runWithFlip(t, hardened, cycles, ff, 5, true)
		for c := range golden {
			if faulty[c] != golden[c] {
				t.Fatalf("flip of hardened FF %d visible at cycle %d", ff, c)
			}
		}
	}
	diverged := false
	faulty := runWithFlip(t, hardened, cycles, 0, 5, true)
	for c := range golden {
		if faulty[c] != golden[c] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("unhardened FF 0 should still be vulnerable after partial TMR")
	}
}

func TestApplyTMRRejectsBadIndices(t *testing.T) {
	nl := buildToggleChain(t)
	fp := nl.Fingerprint()
	if err := circuit.ApplyTMR(nl, []int{3}); err == nil {
		t.Fatal("out-of-range FF index accepted")
	}
	if err := circuit.ApplyTMR(nl, []int{-1}); err == nil {
		t.Fatal("negative FF index accepted")
	}
	if nl.Fingerprint() != fp {
		t.Fatal("failed ApplyTMR must leave the netlist untouched")
	}
}

func TestApplyTMRSurvivesSynthesis(t *testing.T) {
	nl := buildToggleChain(t)
	if err := circuit.ApplyTMR(nl, []int{0, 1, 2}); err != nil {
		t.Fatalf("ApplyTMR: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize after TMR: %v", err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("synthesized hardened netlist invalid: %v", err)
	}
}

func TestTMRCost(t *testing.T) {
	lib := netlist.StdLib()
	dff, err := lib.Lookup("DFF_X1")
	if err != nil {
		t.Fatal(err)
	}
	cost := circuit.TMRCost(dff)
	if cost <= 2*dff.AreaUnits() {
		t.Fatalf("TMR cost %v must exceed two replica flip-flops", cost)
	}
	if circuit.TMRVoterArea() <= 0 {
		t.Fatal("voter area must be positive")
	}
	dff4, _ := lib.Lookup("DFF_X4")
	if circuit.TMRCost(dff4) <= cost {
		t.Fatal("stronger flip-flops must cost more to harden")
	}
}
