package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// FIFO is a synchronous register-file FIFO with power-of-two depth.
// Simultaneous push and pop are allowed; pushes to a full FIFO and pops from
// an empty FIFO are suppressed internally.
type FIFO struct {
	// Out is the word at the head of the queue (valid when Empty is low).
	Out Word
	// Empty and Full are status flags.
	Empty netlist.NetID
	Full  netlist.NetID
	// Count is the occupancy (log2(depth)+1 bits).
	Count Word
}

// NewFIFO builds a FIFO holding depth words of len(din) bits. depth must be
// a power of two ≥ 2. push/pop request an enqueue/dequeue this cycle.
//
// Structure (mirrors what synthesis produces for a small register FIFO):
// a write decoder gating per-word enable muxes, a read mux tree addressed by
// the read pointer, binary read/write pointers and an occupancy counter.
func NewFIFO(b *netlist.Builder, name string, depth int, din Word, push, pop netlist.NetID) *FIFO {
	return newFIFO(b, name, depth, din, push, pop, false)
}

// NewHardenedFIFO builds the same FIFO with its control state (read/write
// pointers and occupancy counter) protected by triple modular redundancy —
// the selective-hardening scheme of the paper's references [3]-[5]. Data
// words stay unprotected, as selective TMR hardens only the state that
// would corrupt the whole stream.
func NewHardenedFIFO(b *netlist.Builder, name string, depth int, din Word, push, pop netlist.NetID) *FIFO {
	return newFIFO(b, name, depth, din, push, pop, true)
}

// StateWord builds a plain register bank whose next value is a function of
// its current value — the unhardened counterpart of TMRWord.
func StateWord(b *netlist.Builder, name string, width int, init uint64, next func(cur Word) Word) Word {
	q := make(Word, width)
	set := make([]func(netlist.NetID), width)
	for i := 0; i < width; i++ {
		q[i], set[i] = b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), init>>uint(i)&1 == 1)
	}
	nxt := next(q)
	for i := 0; i < width; i++ {
		set[i](nxt[i])
	}
	return q
}

func stateOrTMRWord(b *netlist.Builder, hardened bool, name string, width int, init uint64, next func(cur Word) Word) Word {
	if hardened {
		return TMRWord(b, name, width, init, next)
	}
	return StateWord(b, name, width, init, next)
}

func newFIFO(b *netlist.Builder, name string, depth int, din Word, push, pop netlist.NetID, hardened bool) *FIFO {
	if depth < 2 || depth&(depth-1) != 0 {
		panic(fmt.Sprintf("circuit: FIFO depth %d not a power of two >= 2", depth))
	}
	popScope := b.Scope(name)
	defer popScope()

	ptrBits := 0
	for 1<<uint(ptrBits) < depth {
		ptrBits++
	}
	cntBits := ptrBits + 1

	// Occupancy, flags, and push/pop gating. The gating nets are derived
	// from the (possibly voted) count inside the state function and
	// captured for use by the pointer and memory logic below.
	var empty, full, doPush, doPop netlist.NetID
	cnt := stateOrTMRWord(b, hardened, "count", cntBits, 0, func(cur Word) Word {
		empty = EqualConst(b, cur, 0)
		full = EqualConst(b, cur, uint64(depth))
		doPush = b.And(push, b.Not(full))
		doPop = b.And(pop, b.Not(empty))
		inc, _ := Incrementer(b, cur)
		dec := decrementer(b, cur)
		onlyPush := b.And(doPush, b.Not(doPop))
		onlyPop := b.And(doPop, b.Not(doPush))
		out := make(Word, len(cur))
		for i := range cur {
			v := b.Mux(cur[i], inc[i], onlyPush)
			out[i] = b.Mux(v, dec[i], onlyPop)
		}
		return out
	})

	advance := func(en netlist.NetID) func(cur Word) Word {
		return func(cur Word) Word {
			inc, _ := Incrementer(b, cur)
			return WordMux(b, cur, inc, en)
		}
	}
	wptr := stateOrTMRWord(b, hardened, "wptr", ptrBits, 0, advance(doPush))
	rptr := stateOrTMRWord(b, hardened, "rptr", ptrBits, 0, advance(doPop))

	// Storage: per-word enable registers behind a write decoder.
	wdec := Decoder(b, wptr)
	words := make([]Word, depth)
	for wi := 0; wi < depth; wi++ {
		en := b.And(doPush, wdec[wi])
		words[wi] = Register(b, fmt.Sprintf("mem%d", wi), din, en, 0)
	}

	out := WordMuxTree(b, words, rptr)
	return &FIFO{Out: out, Empty: empty, Full: full, Count: cnt}
}

// decrementer returns x-1 (borrow chain).
func decrementer(b *netlist.Builder, x Word) Word {
	out := make(Word, len(x))
	borrow := b.Const1()
	for i := range x {
		out[i] = b.Xor(x[i], borrow)
		borrow = b.And(b.Not(x[i]), borrow)
	}
	return out
}
