package circuit

import (
	"fmt"

	"repro/internal/sim"
)

// MACBench is the compiled testbench for MAC10GE-lite: the paper's loopback
// scenario. It writes packets into the transmit packet interface, loops the
// XGMII transmit lines back into the XGMII receive lines, collects frames
// from the receive packet interface, and finally sweeps the statistics
// readout port. All sent/received traffic and the statistics sweep are
// monitored; the fault classifier compares them against the golden run.
type MACBench struct {
	Stim     *sim.Stimulus
	Monitors []int // output port indices recorded during the run

	// Positions within Monitors.
	MonRxValid  int
	MonRxData   [8]int
	MonRxEOP    int
	MonRxErr    int
	MonStatData [8]int
	MonTxReady  int

	// ReadoutStart is the first cycle of the statistics sweep; everything
	// from this cycle on is the readout window.
	ReadoutStart int
	// Packets are the payloads written to the transmit interface.
	Packets [][]byte
	// ActiveCycles is the injection window: [0, ActiveCycles).
	ActiveCycles int
}

// MACBenchConfig parameterizes the generated workload.
type MACBenchConfig struct {
	// Packets is the number of frames to send.
	Packets int
	// MinPayload and MaxPayload bound the payload length in bytes. The
	// sum of two consecutive payloads must stay below the TX FIFO depth
	// (store-and-forward occupancy), which the builder enforces.
	MinPayload, MaxPayload int
	// Gap is the number of idle cycles between packet writes.
	Gap int
	// DrainCycles is the settle time after the last write before readout.
	DrainCycles int
	// Seed drives the payload generator.
	Seed uint64
	// FIFODepth must match the MAC configuration (for the safety check).
	FIFODepth int
}

// DefaultMACBenchConfig returns the workload used by the reproduction: a
// packet mix comparable to the paper's testbench ("writes several packets
// ... XGMII TX looped back ... frames read from the packet receive
// interface").
func DefaultMACBenchConfig() MACBenchConfig {
	return MACBenchConfig{
		Packets:     10,
		MinPayload:  6,
		MaxPayload:  14,
		Gap:         12,
		DrainCycles: 60,
		Seed:        0x10ABCDEF,
		FIFODepth:   32,
	}
}

// Validate checks the workload parameters.
func (c MACBenchConfig) Validate() error {
	if c.Packets < 1 {
		return fmt.Errorf("circuit: MACBench needs at least one packet")
	}
	if c.MinPayload < 1 || c.MaxPayload < c.MinPayload {
		return fmt.Errorf("circuit: bad payload bounds [%d,%d]", c.MinPayload, c.MaxPayload)
	}
	if 2*c.MaxPayload+2 >= c.FIFODepth {
		return fmt.Errorf("circuit: payloads up to %d bytes can overflow a %d-deep FIFO",
			c.MaxPayload, c.FIFODepth)
	}
	if c.Gap < 2 {
		return fmt.Errorf("circuit: gap %d too small for stable store-and-forward", c.Gap)
	}
	return nil
}

// xorshift64 is the deterministic payload generator.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// BuildMACBench compiles the workload into an open-loop stimulus for the
// given MAC program. The program must expose the MAC10GE-lite ports.
func BuildMACBench(p *sim.Program, cfg MACBenchConfig) (*MACBench, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := xorshift64(cfg.Seed | 1)

	// Generate payloads.
	packets := make([][]byte, cfg.Packets)
	span := cfg.MaxPayload - cfg.MinPayload + 1
	for i := range packets {
		n := cfg.MinPayload + int(rng.next()%uint64(span))
		pl := make([]byte, n)
		for j := range pl {
			pl[j] = byte(rng.next())
		}
		packets[i] = pl
	}

	// Cycle schedule: per packet, len(payload) write cycles + gap; then
	// drain; then the 32-slot statistics sweep (one slot per cycle, plus
	// one settle cycle per slot to let the registered path stabilize —
	// the readout mux is combinational, one cycle each is enough but two
	// makes the monitor robust).
	writeCycles := 0
	for _, pl := range packets {
		writeCycles += len(pl) + cfg.Gap
	}
	const statSlots = 32
	readoutStart := writeCycles + cfg.DrainCycles
	total := readoutStart + statSlots + 2

	stim := sim.NewStimulus(total)

	// Resolve ports.
	txValid, err := p.InputIndex("tx_valid")
	if err != nil {
		return nil, err
	}
	txEOP, err := p.InputIndex("tx_eop")
	if err != nil {
		return nil, err
	}
	txData, err := p.InputBusIndices("tx_data", 8)
	if err != nil {
		return nil, err
	}
	statSel, err := p.InputBusIndices("stat_sel", 5)
	if err != nil {
		return nil, err
	}
	rxgCtl, err := p.InputIndex("rxg_ctl")
	if err != nil {
		return nil, err
	}
	rxgData, err := p.InputBusIndices("rxg_data", 8)
	if err != nil {
		return nil, err
	}
	txgCtlOut, err := p.OutputIndex("txg_ctl")
	if err != nil {
		return nil, err
	}
	txgDataOut, err := p.OutputBusIndices("txg_data", 8)
	if err != nil {
		return nil, err
	}

	setValid := stim.DrivePort(txValid)
	setEOP := stim.DrivePort(txEOP)
	setData := stim.DriveBus(txData)
	setSel := stim.DriveBus(statSel)

	cycle := 0
	for _, pl := range packets {
		for j, bv := range pl {
			setValid(cycle, true)
			setData(cycle, uint64(bv))
			setEOP(cycle, j == len(pl)-1)
			cycle++
		}
		cycle += cfg.Gap
	}
	for s := 0; s < statSlots; s++ {
		setSel(readoutStart+s, uint64(s))
	}
	// Hold the last slot during the settle cycles.
	setSel(readoutStart+statSlots, statSlots-1)
	setSel(readoutStart+statSlots+1, statSlots-1)

	// XGMII loopback, per lane.
	stim.AddLoopback(rxgCtl, txgCtlOut)
	for i := 0; i < 8; i++ {
		stim.AddLoopback(rxgData[i], txgDataOut[i])
	}

	// Monitors: receive packet interface + statistics readout + tx_ready.
	bench := &MACBench{
		Stim:         stim,
		ReadoutStart: readoutStart,
		Packets:      packets,
		ActiveCycles: readoutStart,
	}
	addMon := func(name string) (int, error) {
		idx, err := p.OutputIndex(name)
		if err != nil {
			return 0, err
		}
		bench.Monitors = append(bench.Monitors, idx)
		return len(bench.Monitors) - 1, nil
	}
	if bench.MonRxValid, err = addMon("rx_valid"); err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if bench.MonRxData[i], err = addMon(fmt.Sprintf("rx_data[%d]", i)); err != nil {
			return nil, err
		}
	}
	if bench.MonRxEOP, err = addMon("rx_eop"); err != nil {
		return nil, err
	}
	if bench.MonRxErr, err = addMon("rx_err"); err != nil {
		return nil, err
	}
	for i := 0; i < 8; i++ {
		if bench.MonStatData[i], err = addMon(fmt.Sprintf("stat_data[%d]", i)); err != nil {
			return nil, err
		}
	}
	if bench.MonTxReady, err = addMon("tx_ready"); err != nil {
		return nil, err
	}
	return bench, nil
}

// LanePackets reconstructs the packets received on one lane of a recorded
// trace: each returned packet is the payload bytes up to (excluding) the EOP
// marker, plus the error flag carried by the marker.
func (m *MACBench) LanePackets(t *sim.Trace, lane int) []LanePacket {
	var out []LanePacket
	var cur []byte
	for c := 0; c < t.Cycles(); c++ {
		if !t.Bit(c, m.MonRxValid, lane) {
			continue
		}
		if t.Bit(c, m.MonRxEOP, lane) {
			out = append(out, LanePacket{
				Payload: cur,
				Err:     t.Bit(c, m.MonRxErr, lane),
			})
			cur = nil
			continue
		}
		var bv byte
		for i := 0; i < 8; i++ {
			if t.Bit(c, m.MonRxData[i], lane) {
				bv |= 1 << uint(i)
			}
		}
		cur = append(cur, bv)
	}
	return out
}

// LaneStats extracts the statistics bytes observed during the readout
// window on one lane.
func (m *MACBench) LaneStats(t *sim.Trace, lane int) []byte {
	out := make([]byte, 0, t.Cycles()-m.ReadoutStart)
	for c := m.ReadoutStart; c < t.Cycles(); c++ {
		var bv byte
		for i := 0; i < 8; i++ {
			if t.Bit(c, m.MonStatData[i], lane) {
				bv |= 1 << uint(i)
			}
		}
		out = append(out, bv)
	}
	return out
}

// LanePacket is one frame delivered by the receive packet interface.
type LanePacket struct {
	Payload []byte
	Err     bool
}
