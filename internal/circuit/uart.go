package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// UARTSer is a UART-style byte serializer with a baud-rate timer — the
// corpus's timing-dominated DUT family. Bytes pushed into a transmit FIFO
// are framed as start(0) + 8 data bits (LSB first) + even parity + stop(1)
// and shifted out on the tx line, one bit per baud tick; a divider counter
// generates the ticks. Faults in the divider or the bit counter corrupt the
// *timing* of the line rather than its data — a failure mode the frame-level
// MAC criterion never produces, and the reason this family's FDR profile
// differs from the datapath DUTs.
//
// The frame counter is TMR hardened, the bit counter is not (the selective
// contrast population); a rotate-XOR signature samples the tx line at every
// baud tick so any timing slip is observable at the outputs forever after.
//
// Port summary:
//
//	inputs:  wr, data[8]     enqueue a byte
//	outputs: tx              serial line (idle high)
//	         busy            a frame is being shifted out
//	         full, empty     FIFO status
//	         frames[8]       completed-frame counter (TMR)
//	         bits[8]         shifted-bit counter (unhardened)
//	         sig[8]          tx-line signature, sampled at baud ticks

// UARTConfig parameterizes the UARTSer generator. Generation is fully
// deterministic: the same configuration always produces a
// fingerprint-identical netlist.
type UARTConfig struct {
	// Divisor is the baud-rate divider: one bit every Divisor cycles
	// (2..16).
	Divisor int
	// FIFODepth is the transmit FIFO depth (power of two ≥ 2).
	FIFODepth int
	// TargetFFs, when non-zero, pads with a diagnostic trace buffer to
	// exactly this flip-flop count.
	TargetFFs int
}

// FrameBits is the number of line symbols per UART frame:
// start + 8 data + parity + stop.
const FrameBits = 11

// DefaultUARTConfig is the corpus default.
func DefaultUARTConfig() UARTConfig {
	return UARTConfig{Divisor: 4, FIFODepth: 8, TargetFFs: 192}
}

// SmallUARTConfig is the smoke-test scale.
func SmallUARTConfig() UARTConfig {
	return UARTConfig{Divisor: 2, FIFODepth: 4}
}

// Validate checks the configuration.
func (c UARTConfig) Validate() error {
	if c.Divisor < 2 || c.Divisor > 16 {
		return fmt.Errorf("circuit: UART divisor %d out of range [2,16]", c.Divisor)
	}
	if c.FIFODepth < 2 || c.FIFODepth&(c.FIFODepth-1) != 0 {
		return fmt.Errorf("circuit: UART FIFO depth %d must be a power of two >= 2", c.FIFODepth)
	}
	if c.TargetFFs < 0 {
		return fmt.Errorf("circuit: negative TargetFFs %d", c.TargetFFs)
	}
	return nil
}

// UARTFrame is the software reference: the FrameBits line symbols for one
// data byte, in wire order.
func UARTFrame(data byte) []bool {
	bits := make([]bool, 0, FrameBits)
	bits = append(bits, false) // start
	parity := false
	for i := 0; i < 8; i++ {
		bit := data>>uint(i)&1 == 1
		bits = append(bits, bit)
		parity = parity != bit
	}
	bits = append(bits, parity, true) // even parity, stop
	return bits
}

// NewUARTSer generates the serializer netlist.
func NewUARTSer(cfg UARTConfig) (*netlist.Netlist, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := netlist.NewBuilder("uartser")

	wr := b.Input("wr")
	data := b.InputBus("data", 8)

	// ---- Transmit FIFO ----------------------------------------------------
	popPh := b.NewPlaceholder()
	fifo := NewFIFO(b, "txfifo", cfg.FIFODepth, data, wr, popPh.Net())

	// ---- Baud-rate timer --------------------------------------------------
	// Free-running divider: a tick fires every Divisor cycles. Upsets here
	// stretch or shrink every subsequent bit cell.
	divBits := 1
	for 1<<uint(divBits) < cfg.Divisor {
		divBits++
	}
	var tick netlist.NetID
	StateWord(b, "baud/div", divBits, 0, func(cur Word) Word {
		tick = EqualConst(b, cur, uint64(cfg.Divisor-1))
		inc, _ := Incrementer(b, cur)
		return WordMux(b, inc, WordConst(b, divBits, 0), tick)
	})

	// ---- Frame engine -----------------------------------------------------
	busy, setBusy := b.DFFDecl("fsm/busy", false)
	idle := b.Not(busy)

	// Load a new frame at a tick while idle with a byte waiting.
	load := b.And(tick, idle, b.Not(fifo.Empty))
	popPh.Close(load)

	// Payload shift register: data + even parity, shifted one per data tick.
	parity := fifo.Out[0]
	for i := 1; i < 8; i++ {
		parity = b.Xor(parity, fifo.Out[i])
	}
	loadVal := append(append(Word{}, fifo.Out...), parity) // 9 bits

	// Bit counter: 0 start, 1..8 data, 9 parity, 10 stop.
	bcnt := make(Word, 4)
	bcntSet := make([]func(netlist.NetID), 4)
	for i := range bcnt {
		bcnt[i], bcntSet[i] = b.DFFDecl(fmt.Sprintf("fsm/bcnt[%d]", i), false)
	}
	lastBit := EqualConst(b, bcnt, FrameBits-1)
	shiftTick := b.And(tick, busy)
	frameEnd := b.And(shiftTick, lastBit)

	inc, _ := Incrementer(b, bcnt)
	for i := range bcnt {
		v := b.Mux(bcnt[i], inc[i], shiftTick)
		v = b.And(v, b.Not(load), b.Not(frameEnd)) // restart at 0
		bcntSet[i](v)
	}
	setBusy(b.Or(load, b.And(busy, b.Not(frameEnd))))

	// Shift on data/parity bit cells (bcnt 1..9 advance past a payload bit).
	isData := b.Not(b.Or(EqualConst(b, bcnt, 0), EqualConst(b, bcnt, FrameBits-1)))
	shreg := make(Word, 9)
	shregSet := make([]func(netlist.NetID), 9)
	for i := range shreg {
		shreg[i], shregSet[i] = b.DFFDecl(fmt.Sprintf("fsm/shreg[%d]", i), false)
	}
	shift := b.And(shiftTick, isData)
	for i := range shreg {
		var next netlist.NetID
		if i == 8 {
			next = b.Const0()
		} else {
			next = shreg[i+1]
		}
		v := b.Mux(shreg[i], next, shift)
		shregSet[i](b.Mux(v, loadVal[i], load))
	}

	// The line: idle/stop high, start low, else the current payload bit.
	isStart := b.And(busy, EqualConst(b, bcnt, 0))
	isStop := b.And(busy, lastBit)
	txRaw := b.Or(idle, isStop, b.And(busy, b.Not(isStart), shreg[0]))
	tx := b.DFF("tx/line", txRaw, true)

	// ---- Accounting and signature ----------------------------------------
	frames := TMRCounter(b, "stat/frames", 8, frameEnd, b.Const0())
	bits := Counter(b, "stat/bits", 8, shiftTick, b.Const0())
	sig := StateWord(b, "stat/sig", 8, 1, func(cur Word) Word {
		rot := append(append(Word{}, cur[7:]...), cur[:7]...)
		mixed := append(Word{}, rot...)
		mixed[0] = b.Xor(rot[0], tx)
		return WordMux(b, cur, mixed, tick)
	})

	// ---- Diagnostic trace buffer ------------------------------------------
	tracePar, err := DiagTraceBuffer(b, cfg.TargetFFs, 4, b.Xor(tx, busy))
	if err != nil {
		return nil, err
	}

	b.Output("tx", tx)
	b.Output("busy", busy)
	b.Output("full", fifo.Full)
	b.Output("empty", fifo.Empty)
	b.OutputBus("frames", frames)
	b.OutputBus("bits", bits)
	b.OutputBus("sig", sig)
	b.Output("trace_par", tracePar)

	nl, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("circuit: building UARTSer: %w", err)
	}
	return nl, nil
}
