package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// MAC10GE-lite: a structural re-implementation of the functional class of the
// OpenCores 10GE MAC core the paper evaluates (store-and-forward MAC with
// packet FIFOs, CRC-32 frame protection, XGMII-style framing, control FSMs
// and RMON-style statistics counters), sized to the paper's 1054 flip-flops.
//
// The datapath is one byte wide, which preserves the architecture — FIFO
// register files, CRC engine, framer/deframer FSMs, counters — while keeping
// the gate count tractable for the fault-injection campaign (see DESIGN.md).
//
// Port summary (all single-bit unless a width is given):
//
//	inputs:  tx_valid, tx_data[8], tx_eop       packet transmit interface
//	         rxg_ctl, rxg_data[8]               XGMII-style receive (loopback)
//	         stat_sel[5]                        statistics readout address
//	outputs: tx_ready                           transmit backpressure
//	         txg_ctl, txg_data[8]               XGMII-style transmit
//	         rx_valid, rx_data[8], rx_eop, rx_err  packet receive interface
//	         stat_data[8]                       statistics readout value

// XGMII-lite control codes (valid when the ctl flag is high).
const (
	XgmiiIdle      = 0x07
	XgmiiStart     = 0xFB
	XgmiiTerminate = 0xFD
)

// ScramblerSeed is the frame-start state of the line scrambler LFSR.
const ScramblerSeed = 0xA5

// scramblerStep advances the 8-bit scrambler LFSR (taps 8,6,5,4) one step.
func scramblerStep(b *netlist.Builder, cur Word) Word {
	fb := b.Xor(b.Xor(cur[7], cur[5]), b.Xor(cur[4], cur[3]))
	next := make(Word, 8)
	next[0] = fb
	for i := 1; i < 8; i++ {
		next[i] = cur[i-1]
	}
	return next
}

// TX framer states.
const (
	txIdle = iota
	txStart
	txPayload
	txFCS0
	txFCS1
	txFCS2
	txFCS3
	txTerm
)

// MACConfig parameterizes the MAC10GE-lite generator.
type MACConfig struct {
	// FIFODepth is the packet FIFO depth in bytes (power of two ≥ 4).
	FIFODepth int
	// StatWidth is the width of each statistics counter in bits (8..32).
	StatWidth int
	// TargetFFs, when non-zero, pads the design with a live diagnostic
	// trace buffer until the flip-flop count reaches exactly this value.
	TargetFFs int
}

// DefaultMACConfig reproduces the paper's circuit scale: 1054 flip-flops.
func DefaultMACConfig() MACConfig {
	return MACConfig{FIFODepth: 32, StatWidth: 16, TargetFFs: 1054}
}

// Validate checks the configuration.
func (c MACConfig) Validate() error {
	if c.FIFODepth < 4 || c.FIFODepth&(c.FIFODepth-1) != 0 {
		return fmt.Errorf("circuit: FIFODepth %d must be a power of two >= 4", c.FIFODepth)
	}
	if c.StatWidth < 8 || c.StatWidth > 32 {
		return fmt.Errorf("circuit: StatWidth %d out of range [8,32]", c.StatWidth)
	}
	if c.TargetFFs < 0 {
		return fmt.Errorf("circuit: negative TargetFFs %d", c.TargetFFs)
	}
	return nil
}

// NewMAC10GE generates the MAC10GE-lite netlist.
func NewMAC10GE(cfg MACConfig) (*netlist.Netlist, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b := netlist.NewBuilder("mac10ge_lite")

	// ---- Ports -----------------------------------------------------------
	txValid := b.Input("tx_valid")
	txData := b.InputBus("tx_data", 8)
	txEOP := b.Input("tx_eop")
	rxgCtlIn := b.Input("rxg_ctl")
	rxgDataIn := b.InputBus("rxg_data", 8)
	statSel := b.InputBus("stat_sel", 5)

	// ---- TX packet FIFO (store and forward) -------------------------------
	txEntry := append(append(Word{}, txData...), txEOP) // {data[8], eop}
	txPopPh := b.NewPlaceholder()
	txFifo := NewFIFO(b, "txfifo", cfg.FIFODepth, txEntry, txValid, txPopPh.Net())
	txReady := b.Not(txFifo.Full)
	txOutData := txFifo.Out[:8]
	txOutEOP := txFifo.Out[8]

	// Complete frames available in the FIFO: +1 on push of an EOP byte,
	// -1 on pop of an EOP byte. Store-and-forward start condition.
	framePush := b.And(txValid, b.Not(txFifo.Full), txEOP)
	framePopPh := b.NewPlaceholder()
	frames := updown(b, "txframes_avail", 3, framePush, framePopPh.Net())
	haveFrame := b.Not(EqualConst(b, frames, 0))

	// ---- TX framer FSM -----------------------------------------------------
	st := make(Word, 3)
	stSet := make([]func(netlist.NetID), 3)
	for i := range st {
		st[i], stSet[i] = b.DFFDecl(fmt.Sprintf("txfsm/state[%d]", i), false)
	}
	is := Decoder(b, st)

	// Inter-frame gap: 2-bit saturating counter cleared at TERM.
	ifg := make(Word, 2)
	ifgSet := make([]func(netlist.NetID), 2)
	for i := range ifg {
		ifg[i], ifgSet[i] = b.DFFDecl(fmt.Sprintf("txfsm/ifg[%d]", i), i <= 1) // init 3: ready at reset
	}
	ifgDone := EqualConst(b, ifg, 3)
	ifgInc, _ := Incrementer(b, ifg)
	for i := range ifg {
		v := b.Mux(ifgInc[i], ifg[i], ifgDone) // saturate at 3
		v = b.And(v, b.Not(is[txTerm]))        // clear during TERM
		ifgSet[i](v)
	}

	startOK := b.And(haveFrame, ifgDone)
	txPop := b.And(is[txPayload], b.Not(txFifo.Empty))
	txPopPh.Close(txPop)
	framePopPh.Close(b.And(txPop, txOutEOP))
	lastByte := b.And(txPop, txOutEOP)

	next := stateSum(b, is, map[int]Word{
		txIdle:    WordMux(b, WordConst(b, 3, txIdle), WordConst(b, 3, txStart), startOK),
		txStart:   WordConst(b, 3, txPayload),
		txPayload: WordMux(b, WordConst(b, 3, txPayload), WordConst(b, 3, txFCS0), lastByte),
		txFCS0:    WordConst(b, 3, txFCS1),
		txFCS1:    WordConst(b, 3, txFCS2),
		txFCS2:    WordConst(b, 3, txFCS3),
		txFCS3:    WordConst(b, 3, txTerm),
		txTerm:    WordConst(b, 3, txIdle),
	})
	for i := range st {
		stSet[i](next[i])
	}

	// ---- TX scrambler --------------------------------------------------------
	// Frame-synchronized additive scrambler (PCS-style): an 8-bit LFSR
	// reseeded at frame start whose state XORs every payload byte on the
	// wire. The CRC protects the scrambled stream, so both line CRCs stay
	// consistent while descrambler state upsets corrupt delivered payload
	// without tripping the CRC — a realistic silent-corruption mode.
	txScr := StateWord(b, "txscr/state", 8, ScramblerSeed, func(cur Word) Word {
		stepped := WordMux(b, cur, scramblerStep(b, cur), txPopPh.Net())
		return WordMux(b, stepped, WordConst(b, 8, ScramblerSeed), is[txStart])
	})
	txWire := WordXor(b, txOutData, txScr)

	// ---- TX CRC ------------------------------------------------------------
	txCRC := NewCRCEngine(b, "txcrc/reg", txWire, txPop, is[txStart])
	fcs := txCRC.FCS(b)
	fcsBytes := []Word{fcs[0:8], fcs[8:16], fcs[16:24], fcs[24:32]}

	// ---- XGMII TX mux + output register ------------------------------------
	stall := b.And(is[txPayload], txFifo.Empty)
	ctlRaw := b.Or(is[txIdle], is[txStart], is[txTerm], stall)
	dataRaw := stateSum(b, is, map[int]Word{
		txIdle:    WordConst(b, 8, XgmiiIdle),
		txStart:   WordConst(b, 8, XgmiiStart),
		txPayload: WordMux(b, txWire, WordConst(b, 8, XgmiiIdle), stall),
		txFCS0:    fcsBytes[0],
		txFCS1:    fcsBytes[1],
		txFCS2:    fcsBytes[2],
		txFCS3:    fcsBytes[3],
		txTerm:    WordConst(b, 8, XgmiiTerminate),
	})
	// Registered XGMII output; reset drives idle (ctl=1, data=0x07).
	txgCtl := b.DFF("txgreg/ctl", ctlRaw, true)
	txgData := make(Word, 8)
	for i := 0; i < 8; i++ {
		txgData[i] = b.DFF(fmt.Sprintf("txgreg/data[%d]", i), dataRaw[i], XgmiiIdle>>uint(i)&1 == 1)
	}

	// ---- XGMII RX input register -------------------------------------------
	rctl := b.DFF("rxgreg/ctl", rxgCtlIn, true)
	rdata := make(Word, 8)
	for i := 0; i < 8; i++ {
		rdata[i] = b.DFF(fmt.Sprintf("rxgreg/data[%d]", i), rxgDataIn[i], XgmiiIdle>>uint(i)&1 == 1)
	}

	// ---- RX deframer --------------------------------------------------------
	startDet := b.And(rctl, EqualConst(b, rdata, XgmiiStart))
	termDet := b.And(rctl, EqualConst(b, rdata, XgmiiTerminate))

	inFrame, setInFrame := b.DFFDecl("rxfsm/in_frame", false)
	// Enter on start, leave on terminate; hold otherwise.
	setInFrame(b.Or(startDet, b.And(inFrame, b.Not(termDet))))

	dataCyc := b.And(inFrame, b.Not(rctl))
	termInFrame := b.And(inFrame, termDet)

	// ---- RX descrambler -------------------------------------------------------
	// Hardened (TMR), while its transmit twin is not: the two scramblers
	// are structurally near-identical instances with opposite FDR.
	rxScr := TMRWord(b, "rxscr/state", 8, ScramblerSeed, func(cur Word) Word {
		stepped := WordMux(b, cur, scramblerStep(b, cur), dataCyc)
		return WordMux(b, stepped, WordConst(b, 8, ScramblerSeed), startDet)
	})
	rxClear := WordXor(b, rdata, rxScr)

	// 4-byte FCS stripper: delay line plus a saturating fill counter.
	// Stage 1 is hardened; its neighbours are not.
	stages := make([]Word, 4)
	cur := rxClear
	for st := 0; st < 4; st++ {
		name := fmt.Sprintf("rxdelay/s%d", st)
		if st == 1 {
			prev := cur
			cur = TMRWord(b, name, 8, 0, func(c Word) Word {
				return WordMux(b, c, prev, dataCyc)
			})
		} else {
			cur = Register(b, name, cur, dataCyc, 0)
		}
		stages[st] = cur
	}
	fill := make(Word, 3)
	fillSet := make([]func(netlist.NetID), 3)
	for i := range fill {
		fill[i], fillSet[i] = b.DFFDecl(fmt.Sprintf("rxfsm/fill[%d]", i), false)
	}
	fillFull := EqualConst(b, fill, 4)
	fillInc, _ := Incrementer(b, fill)
	for i := range fill {
		v := b.Mux(fill[i], fillInc[i], b.And(dataCyc, b.Not(fillFull)))
		v = b.And(v, b.Not(startDet)) // clear when a frame starts
		fillSet[i](v)
	}

	// ---- RX CRC check -------------------------------------------------------
	rxCRC := NewCRCEngine(b, "rxcrc/reg", rdata, dataCyc, startDet)
	residueOK := rxCRC.ResidueOK(b)
	crcErr := b.Not(residueOK)

	// ---- RX packet FIFO ------------------------------------------------------
	pushData := b.And(dataCyc, fillFull)
	pushEOP := termInFrame
	rxPush := b.Or(pushData, pushEOP)
	// Entry: {data[8], eop, err}; on the EOP entry the data byte is zeroed.
	entryData := WordAnd1(b, stages[3], b.Not(pushEOP))
	rxEntry := append(append(Word{}, entryData...), pushEOP, b.And(pushEOP, crcErr))
	rxPopPh := b.NewPlaceholder()
	// The receive FIFO control is selectively hardened (TMR voters on its
	// pointers and occupancy), mirroring the selective-TMR methodology of
	// the paper's references [3]-[5]; the transmit FIFO stays unhardened,
	// giving the study structurally similar instances with very different
	// vulnerability — the non-linearity the regression models must learn.
	rxFifo := NewHardenedFIFO(b, "rxfifo", cfg.FIFODepth, rxEntry, rxPush, rxPopPh.Net())
	rxValid := b.Not(rxFifo.Empty)
	rxPopPh.Close(rxValid) // sink is always ready

	// ---- Statistics counters (RMON-lite) -------------------------------------
	// Half of the counter bank is selectively hardened (TMR), half is not —
	// structurally near-identical instances with opposite vulnerability,
	// the population the paper's non-linear models separate and the linear
	// model cannot.
	statClear := b.Const0()
	// Protection follows traffic: the busy byte/frame counters are
	// hardened, the rarely incrementing error/drop counters are not — so
	// within this population high activity implies *low* vulnerability,
	// inverting the global activity↔FDR trend.
	stats := []struct {
		name     string
		en       netlist.NetID
		hardened bool
	}{
		{"stats/tx_frames", is[txTerm], false},
		{"stats/tx_bytes", txPop, true},
		{"stats/rx_frames", b.And(termInFrame, residueOK), true},
		{"stats/rx_crc_err", b.And(termInFrame, crcErr), false},
		{"stats/rx_bytes", pushData, true},
		{"stats/tx_drops", b.And(txValid, txFifo.Full), false},
	}
	statVals := make([]Word, len(stats))
	for i, s := range stats {
		if s.hardened {
			statVals[i] = TMRCounter(b, s.name, cfg.StatWidth, s.en, statClear)
		} else {
			statVals[i] = Counter(b, s.name, cfg.StatWidth, s.en, statClear)
		}
	}

	// ---- Diagnostic trace buffer (pads to the target FF budget) --------------
	// A live shift register sampling the transmit line; its parity is
	// observable through the statistics readout, so trace faults are
	// functionally relevant.
	tracePar, err := DiagTraceBuffer(b, cfg.TargetFFs, 8, b.Xor(txgData[0], txgCtl))
	if err != nil {
		return nil, err
	}

	// ---- Statistics readout ----------------------------------------------------
	// 32 byte-slots: counters at 3 bytes each, then status and trace parity.
	slots := make([]Word, 32)
	zero := WordConst(b, 8, 0)
	slot := 0
	bytesPer := (cfg.StatWidth + 7) / 8
	for _, v := range statVals {
		padded := append(Word{}, v...)
		for len(padded) < 8*bytesPer {
			padded = append(padded, b.Const0())
		}
		for byteIdx := 0; byteIdx < bytesPer && slot < 30; byteIdx++ {
			slots[slot] = padded[8*byteIdx : 8*byteIdx+8]
			slot++
		}
	}
	status := Word{txFifo.Empty, txFifo.Full, rxFifo.Empty, rxFifo.Full,
		inFrame, is[txIdle], b.Const0(), b.Const0()}
	slots[30] = status
	slots[31] = Word{tracePar, residueOK, b.Const0(), b.Const0(),
		b.Const0(), b.Const0(), b.Const0(), b.Const0()}
	for i := range slots {
		if slots[i] == nil {
			slots[i] = zero
		}
	}
	statData := WordMuxTree(b, slots, statSel)

	// ---- Outputs ---------------------------------------------------------------
	b.Output("tx_ready", txReady)
	b.Output("txg_ctl", txgCtl)
	b.OutputBus("txg_data", txgData)
	b.Output("rx_valid", rxValid)
	b.OutputBus("rx_data", rxFifo.Out[:8])
	b.Output("rx_eop", rxFifo.Out[8])
	b.Output("rx_err", rxFifo.Out[9])
	b.OutputBus("stat_data", statData)

	nl, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("circuit: building MAC10GE-lite: %w", err)
	}
	return nl, nil
}

// stateSum builds the one-hot AND-OR network that merges per-state word
// values: result = OR over s of (is[s] & words[s]). All words must share the
// same width. States absent from the map contribute nothing.
func stateSum(b *netlist.Builder, is []netlist.NetID, words map[int]Word) Word {
	var width int
	for _, w := range words {
		width = len(w)
		break
	}
	out := make(Word, width)
	for bit := 0; bit < width; bit++ {
		var terms []netlist.NetID
		for s := 0; s < len(is); s++ {
			w, ok := words[s]
			if !ok {
				continue
			}
			terms = append(terms, b.And(is[s], w[bit]))
		}
		out[bit] = b.Or(terms...)
	}
	return out
}

// updown builds an up/down counter with the given width: +1 on up, -1 on
// down (simultaneous up and down cancel out).
func updown(b *netlist.Builder, name string, width int, up, down netlist.NetID) Word {
	q := make(Word, width)
	set := make([]func(netlist.NetID), width)
	for i := range q {
		q[i], set[i] = b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), false)
	}
	inc, _ := Incrementer(b, q)
	dec := decrementer(b, q)
	onlyUp := b.And(up, b.Not(down))
	onlyDown := b.And(down, b.Not(up))
	for i := range q {
		v := b.Mux(q[i], inc[i], onlyUp)
		set[i](b.Mux(v, dec[i], onlyDown))
	}
	return q
}
