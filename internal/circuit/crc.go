package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// CRC-32 (IEEE 802.3) in its reflected form, the same algorithm the Go
// standard library's hash/crc32 IEEE table implements. The gate-level engine
// processes one byte per cycle:
//
//	for each data bit i (LSB first):
//	    fb    = crc[0] ^ d[i]
//	    crc   = crc >> 1
//	    crc  ^= fb ? 0xEDB88320 : 0
//
// ReflectedPoly is the reflected IEEE polynomial.
const ReflectedPoly uint32 = 0xEDB88320

// CRCInit is the standard initial register value.
const CRCInit uint32 = 0xFFFFFFFF

// CRCResidue is the register value observed after processing a message
// followed by its (complemented, little-endian) FCS: the Ethernet "magic
// number" check used by the receive path.
const CRCResidue uint32 = 0xDEBB20E3

// CRC32UpdateByte is the software reference for one byte step, used by
// testbenches and unit tests. crc is the raw register (not complemented).
func CRC32UpdateByte(crc uint32, data byte) uint32 {
	crc ^= uint32(data)
	for i := 0; i < 8; i++ {
		if crc&1 == 1 {
			crc = crc>>1 ^ ReflectedPoly
		} else {
			crc >>= 1
		}
	}
	return crc
}

// CRC32Bytes runs the reference over a byte string starting from CRCInit and
// returns the final complemented checksum (equal to hash/crc32 ChecksumIEEE).
func CRC32Bytes(data []byte) uint32 {
	crc := CRCInit
	for _, d := range data {
		crc = CRC32UpdateByte(crc, d)
	}
	return crc ^ 0xFFFFFFFF
}

// CRC32ByteStep builds the combinational next-state network for one byte of
// data: given the 32-bit register value and 8 data bits it returns the next
// register value. Gate cost: 8 stages × (1 + popcount(poly)) XOR2 gates.
func CRC32ByteStep(b *netlist.Builder, crc Word, data Word) Word {
	if len(crc) != 32 || len(data) != 8 {
		panic(fmt.Sprintf("circuit: CRC32ByteStep wants 32+8 bits, got %d+%d", len(crc), len(data)))
	}
	cur := crc
	for i := 0; i < 8; i++ {
		fb := b.Xor(cur[0], data[i])
		next := make(Word, 32)
		for j := 0; j < 32; j++ {
			var shifted netlist.NetID
			if j == 31 {
				shifted = b.Const0()
			} else {
				shifted = cur[j+1]
			}
			if ReflectedPoly>>uint(j)&1 == 1 {
				next[j] = b.Xor(shifted, fb)
			} else {
				next[j] = shifted
			}
		}
		cur = next
	}
	return cur
}

// CRCEngine is a byte-wide CRC-32 register with enable and synchronous
// clear-to-init. Clear takes precedence over enable.
type CRCEngine struct {
	// Value is the current (raw, uncomplemented) register contents.
	Value Word
}

// NewCRCEngine builds the engine. When clear is high the register reloads
// CRCInit; when en is high it absorbs the data byte; otherwise it holds.
func NewCRCEngine(b *netlist.Builder, name string, data Word, en, clear netlist.NetID) *CRCEngine {
	q := make(Word, 32)
	setters := make([]func(netlist.NetID), 32)
	for i := 0; i < 32; i++ {
		// Reset state is CRCInit so the engine is ready after global reset.
		q[i], setters[i] = b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), CRCInit>>uint(i)&1 == 1)
	}
	next := CRC32ByteStep(b, q, data)
	for i := 0; i < 32; i++ {
		v := b.Mux(q[i], next[i], en)
		if CRCInit>>uint(i)&1 == 1 {
			v = b.Or(v, clear)
		} else {
			v = b.And(v, b.Not(clear))
		}
		setters[i](v)
	}
	return &CRCEngine{Value: q}
}

// FCS returns the complemented register value — the frame check sequence as
// transmitted on the wire, LSB first (little-endian byte order).
func (e *CRCEngine) FCS(b *netlist.Builder) Word {
	return WordInv(b, e.Value)
}

// ResidueOK returns a net that is high when the register holds CRCResidue,
// i.e. the received frame (payload ‖ FCS) was intact.
func (e *CRCEngine) ResidueOK(b *netlist.Builder) netlist.NetID {
	return EqualConst(b, e.Value, uint64(CRCResidue))
}
