package circuit_test

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

type uartDriver struct {
	e    *sim.Engine
	wr   int
	data []int
	tx   int
	busy int
	full int
	cfg  circuit.UARTConfig
}

func newUARTDriver(t *testing.T, cfg circuit.UARTConfig) *uartDriver {
	t.Helper()
	nl, err := circuit.NewUARTSer(cfg)
	if err != nil {
		t.Fatalf("NewUARTSer: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	d := &uartDriver{e: sim.NewEngine(p), cfg: cfg}
	if d.wr, err = p.InputIndex("wr"); err != nil {
		t.Fatal(err)
	}
	if d.data, err = p.InputBusIndices("data", 8); err != nil {
		t.Fatal(err)
	}
	if d.tx, err = p.OutputIndex("tx"); err != nil {
		t.Fatal(err)
	}
	if d.busy, err = p.OutputIndex("busy"); err != nil {
		t.Fatal(err)
	}
	if d.full, err = p.OutputIndex("full"); err != nil {
		t.Fatal(err)
	}
	return d
}

// step clocks one cycle and samples the line.
func (d *uartDriver) step(wr bool, data byte) (tx, busy, full bool) {
	d.e.SetInputBool(d.wr, wr)
	for i, p := range d.data {
		d.e.SetInputBool(p, data>>uint(i)&1 == 1)
	}
	d.e.Eval()
	tx = d.e.Output(d.tx)&1 == 1
	busy = d.e.Output(d.busy)&1 == 1
	full = d.e.Output(d.full)&1 == 1
	d.e.Commit()
	return
}

// decodeLine splits a recorded tx waveform into frames: each frame starts at
// a falling edge from idle and carries FrameBits symbols of cellLen cycles
// each, sampled mid-cell.
func decodeLine(line []bool, cellLen int) [][]bool {
	var frames [][]bool
	c := 0
	for c < len(line) {
		if line[c] {
			c++
			continue
		}
		// Start-bit edge found; sample every cell at its midpoint.
		var bits []bool
		ok := true
		for k := 0; k < circuit.FrameBits; k++ {
			idx := c + k*cellLen + cellLen/2
			if idx >= len(line) {
				ok = false
				break
			}
			bits = append(bits, line[idx])
		}
		if !ok {
			break
		}
		frames = append(frames, bits)
		c += circuit.FrameBits * cellLen
	}
	return frames
}

// Every pushed byte must appear on the line as a correctly framed, correctly
// timed start+data+parity+stop sequence, in FIFO order.
func TestUARTSerFramesBytes(t *testing.T) {
	for _, cfg := range []circuit.UARTConfig{circuit.SmallUARTConfig(), circuit.DefaultUARTConfig()} {
		d := newUARTDriver(t, cfg)
		rng := rand.New(rand.NewSource(31))

		var sent []byte
		var line []bool
		// Sending a frame takes FrameBits*Divisor cycles plus sync slack;
		// push slowly enough that the FIFO never drops (full is also
		// checked live).
		frameCycles := (circuit.FrameBits + 3) * cfg.Divisor
		const nBytes = 12
		cycles := (nBytes + 3) * frameCycles
		for c := 0; c < cycles; c++ {
			push := false
			var bv byte
			if c%frameCycles == 0 && len(sent) < nBytes {
				bv = byte(rng.Uint64())
				push = true
			}
			tx, _, full := d.step(push, bv)
			if push && full {
				t.Fatalf("cycle %d: FIFO full despite paced pushes", c)
			}
			if push {
				sent = append(sent, bv)
			}
			line = append(line, tx)
		}
		frames := decodeLine(line, cfg.Divisor)
		if len(frames) != len(sent) {
			t.Fatalf("divisor %d: sent %d bytes, decoded %d frames", cfg.Divisor, len(sent), len(frames))
		}
		for i, bv := range sent {
			want := circuit.UARTFrame(bv)
			for k := range want {
				if frames[i][k] != want[k] {
					t.Fatalf("divisor %d frame %d (byte %#x): symbol %d is %v, want %v",
						cfg.Divisor, i, bv, k, frames[i][k], want[k])
				}
			}
		}
	}
}

// The line must idle high and busy must fall after the queue drains.
func TestUARTSerIdleState(t *testing.T) {
	d := newUARTDriver(t, circuit.SmallUARTConfig())
	for c := 0; c < 50; c++ {
		tx, busy, _ := d.step(false, 0)
		if !tx {
			t.Fatalf("cycle %d: line not idle-high without traffic", c)
		}
		if busy {
			t.Fatalf("cycle %d: busy without traffic", c)
		}
	}
	d.step(true, 0x5A)
	sawBusy := false
	for c := 0; c < 40*d.cfg.Divisor; c++ {
		_, busy, _ := d.step(false, 0)
		sawBusy = sawBusy || busy
	}
	if !sawBusy {
		t.Fatal("pushing a byte never raised busy")
	}
	tx, busy, _ := d.step(false, 0)
	if !tx || busy {
		t.Fatal("line did not return to idle after draining")
	}
}

// Default config hits its FF budget; generation is deterministic.
func TestUARTSerBudgetAndDeterminism(t *testing.T) {
	cfg := circuit.DefaultUARTConfig()
	nl, err := circuit.NewUARTSer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := nl.NumFFs(); got != cfg.TargetFFs {
		t.Fatalf("FF count %d, want %d", got, cfg.TargetFFs)
	}
	nl2, err := circuit.NewUARTSer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Fingerprint() != nl2.Fingerprint() {
		t.Fatal("two generations with the same config differ")
	}
}

func TestUARTConfigValidate(t *testing.T) {
	for _, cfg := range []circuit.UARTConfig{
		{Divisor: 1, FIFODepth: 4},
		{Divisor: 20, FIFODepth: 4},
		{Divisor: 4, FIFODepth: 3},
		{Divisor: 4, FIFODepth: 4, TargetFFs: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
}
