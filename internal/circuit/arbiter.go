package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// RRArb is a round-robin arbiter with per-port input queues — a one-output
// slice of a switch fabric, and the corpus's control-dominated DUT family.
// Each requester port buffers incoming bytes in its own FIFO; a rotating
// round-robin pointer grants one non-empty queue per cycle, pops it, and
// forwards the byte (tagged with the port index) to the registered output.
//
// Hardening is deliberately asymmetric, mirroring the MAC's selective-TMR
// populations: the round-robin pointer and the even-port grant counters are
// TMR protected, odd-port counters and the data queues are not.
//
// Port summary (P ports, W-bit payload):
//
//	inputs:  req[P]          per-port enqueue request
//	         data[W]         payload (shared bus, latched into port i on req[i])
//	outputs: out_valid       a grant happened last cycle
//	         out_data[W]     granted payload
//	         out_port[log2P] granted port index
//	         gnt<i>[8]       per-port grant counters
//	         qstat[P]        per-port queue-empty flags
//	         sig[W]          XOR-rotate signature of the granted stream

// ArbConfig parameterizes the RRArb generator. Generation is fully
// deterministic: the same configuration always produces a
// fingerprint-identical netlist.
type ArbConfig struct {
	// Ports is the requester count (power of two, 2..8).
	Ports int
	// QueueDepth is the per-port FIFO depth (power of two ≥ 2).
	QueueDepth int
	// DataWidth is the payload width in bits (4..16).
	DataWidth int
	// TargetFFs, when non-zero, pads with a diagnostic trace buffer to
	// exactly this flip-flop count.
	TargetFFs int
}

// DefaultArbConfig is the corpus default: a 4×8-deep byte switch slice.
func DefaultArbConfig() ArbConfig {
	return ArbConfig{Ports: 4, QueueDepth: 8, DataWidth: 8, TargetFFs: 448}
}

// SmallArbConfig is the smoke-test scale.
func SmallArbConfig() ArbConfig {
	return ArbConfig{Ports: 4, QueueDepth: 4, DataWidth: 8}
}

// Validate checks the configuration.
func (c ArbConfig) Validate() error {
	if c.Ports < 2 || c.Ports > 8 || c.Ports&(c.Ports-1) != 0 {
		return fmt.Errorf("circuit: arbiter ports %d must be a power of two in [2,8]", c.Ports)
	}
	if c.QueueDepth < 2 || c.QueueDepth&(c.QueueDepth-1) != 0 {
		return fmt.Errorf("circuit: queue depth %d must be a power of two >= 2", c.QueueDepth)
	}
	if c.DataWidth < 4 || c.DataWidth > 16 {
		return fmt.Errorf("circuit: data width %d out of range [4,16]", c.DataWidth)
	}
	if c.TargetFFs < 0 {
		return fmt.Errorf("circuit: negative TargetFFs %d", c.TargetFFs)
	}
	return nil
}

// NewRRArb generates the round-robin arbiter netlist.
func NewRRArb(cfg ArbConfig) (*netlist.Netlist, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	P := cfg.Ports
	W := cfg.DataWidth
	ptrBits := 0
	for 1<<uint(ptrBits) < P {
		ptrBits++
	}
	b := netlist.NewBuilder("rrarb")

	req := make([]netlist.NetID, P)
	for i := range req {
		req[i] = b.Input(fmt.Sprintf("req[%d]", i))
	}
	data := b.InputBus("data", W)

	// ---- Per-port input queues -------------------------------------------
	grantPh := make([]*netlist.Placeholder, P)
	fifos := make([]*FIFO, P)
	notEmpty := make([]netlist.NetID, P)
	for i := 0; i < P; i++ {
		grantPh[i] = b.NewPlaceholder()
		fifos[i] = NewFIFO(b, fmt.Sprintf("q%d", i), cfg.QueueDepth, data, req[i], grantPh[i].Net())
		notEmpty[i] = b.Not(fifos[i].Empty)
	}

	// ---- Round-robin grant ------------------------------------------------
	// The pointer names the highest-priority port; the grant goes to the
	// first non-empty queue at or after it (wrapping). The pointer is TMR
	// hardened: a single upset would permanently skew fairness.
	grantFor := func(isPtr []netlist.NetID, i int) netlist.NetID {
		var terms []netlist.NetID
		for p := 0; p < P; p++ {
			// Pointer at p, ports p..i-1 (wrapping) all empty, i ready.
			cond := b.And(isPtr[p], notEmpty[i])
			for j := p; j%P != i; j++ {
				cond = b.And(cond, b.Not(notEmpty[j%P]))
			}
			terms = append(terms, cond)
		}
		return b.Or(terms...)
	}

	// The voted pointer value is consumed only inside the state function
	// (via the grant network), so the voter output itself is unused.
	var grants []netlist.NetID
	TMRWord(b, "rr/ptr", ptrBits, 0, func(cur Word) Word {
		isPtr := Decoder(b, cur)
		g := make([]netlist.NetID, P)
		for i := 0; i < P; i++ {
			g[i] = grantFor(isPtr, i)
		}
		if grants == nil {
			grants = g
		}
		// Next pointer: granted port + 1 (mod P), held when idle.
		next := make(Word, ptrBits)
		for bit := 0; bit < ptrBits; bit++ {
			var terms []netlist.NetID
			for i := 0; i < P; i++ {
				if (i+1)%P>>uint(bit)&1 == 1 {
					terms = append(terms, g[i])
				}
			}
			if terms == nil {
				next[bit] = b.Const0()
			} else {
				next[bit] = b.Or(terms...)
			}
		}
		anyG := b.Or(g...)
		return WordMux(b, cur, next, anyG)
	})
	for i := 0; i < P; i++ {
		grantPh[i].Close(grants[i])
	}
	anyGrant := b.Or(grants...)

	// ---- Output stage -----------------------------------------------------
	// Binary-encode the granted port and mux the granted payload.
	gport := make(Word, ptrBits)
	for bit := 0; bit < ptrBits; bit++ {
		var terms []netlist.NetID
		for i := 0; i < P; i++ {
			if i>>uint(bit)&1 == 1 {
				terms = append(terms, grants[i])
			}
		}
		if terms == nil {
			gport[bit] = b.Const0()
		} else {
			gport[bit] = b.Or(terms...)
		}
	}
	gdata := make(Word, W)
	for bit := 0; bit < W; bit++ {
		var terms []netlist.NetID
		for i := 0; i < P; i++ {
			terms = append(terms, b.And(grants[i], fifos[i].Out[bit]))
		}
		gdata[bit] = b.Or(terms...)
	}

	outValid := b.DFF("out/valid", anyGrant, false)
	outData := Register(b, "out/data", gdata, anyGrant, 0)
	outPort := Register(b, "out/port", gport, anyGrant, 0)

	// ---- Grant accounting -------------------------------------------------
	// Even ports hardened, odd ports not: structurally identical counters
	// with opposite vulnerability.
	gntCnt := make([]Word, P)
	for i := 0; i < P; i++ {
		name := fmt.Sprintf("gnt%d", i)
		if i%2 == 0 {
			gntCnt[i] = TMRCounter(b, name, 8, grants[i], b.Const0())
		} else {
			gntCnt[i] = Counter(b, name, 8, grants[i], b.Const0())
		}
	}

	// Stream signature over (data, port): rotate left, XOR in the grant.
	sig := StateWord(b, "out/sig", W, 1, func(cur Word) Word {
		rot := append(append(Word{}, cur[W-1:]...), cur[:W-1]...)
		mixed := WordXor(b, rot, gdata)
		mixed[0] = b.Xor(mixed[0], gport[0])
		return WordMux(b, cur, mixed, anyGrant)
	})

	// ---- Diagnostic trace buffer ------------------------------------------
	tracePar, err := DiagTraceBuffer(b, cfg.TargetFFs, 4, b.Xor(outData[0], outValid))
	if err != nil {
		return nil, err
	}

	b.Output("out_valid", outValid)
	b.OutputBus("out_data", outData)
	b.OutputBus("out_port", outPort)
	for i := 0; i < P; i++ {
		b.OutputBus(fmt.Sprintf("gnt%d", i), gntCnt[i])
		b.Output(fmt.Sprintf("qstat[%d]", i), fifos[i].Empty)
	}
	b.OutputBus("sig", sig)
	b.Output("trace_par", tracePar)

	nl, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("circuit: building RRArb: %w", err)
	}
	return nl, nil
}
