package circuit_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// fifoHarness wraps a FIFO for direct simulation.
func fifoHarness(t *testing.T, depth, width int) *sim.Program {
	t.Helper()
	b := netlist.NewBuilder("fifoharness")
	push := b.Input("push")
	pop := b.Input("pop")
	din := b.InputBus("din", width)
	f := circuit.NewFIFO(b, "f", depth, din, push, pop)
	b.OutputBus("dout", f.Out)
	b.Output("empty", f.Empty)
	b.Output("full", f.Full)
	b.OutputBus("count", f.Count)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

type fifoDriver struct {
	e     *sim.Engine
	push  int
	pop   int
	din   []int
	dout  []int
	empty int
	full  int
	width int
}

func newFifoDriver(t *testing.T, p *sim.Program, width int) *fifoDriver {
	t.Helper()
	d := &fifoDriver{e: sim.NewEngine(p), width: width}
	var err error
	if d.push, err = p.InputIndex("push"); err != nil {
		t.Fatal(err)
	}
	if d.pop, err = p.InputIndex("pop"); err != nil {
		t.Fatal(err)
	}
	if d.din, err = p.InputBusIndices("din", width); err != nil {
		t.Fatal(err)
	}
	if d.dout, err = p.OutputBusIndices("dout", width); err != nil {
		t.Fatal(err)
	}
	if d.empty, err = p.OutputIndex("empty"); err != nil {
		t.Fatal(err)
	}
	if d.full, err = p.OutputIndex("full"); err != nil {
		t.Fatal(err)
	}
	return d
}

// step applies one cycle with the given controls and returns the FIFO view
// (head word, empty, full) as sampled during the cycle.
func (d *fifoDriver) step(push bool, pushVal uint64, pop bool) (head uint64, empty, full bool) {
	d.e.SetInputBool(d.push, push)
	d.e.SetInputBool(d.pop, pop)
	for i := 0; i < d.width; i++ {
		d.e.SetInputBool(d.din[i], pushVal>>uint(i)&1 == 1)
	}
	d.e.Eval()
	for i := 0; i < d.width; i++ {
		head |= (d.e.Output(d.dout[i]) & 1) << uint(i)
	}
	empty = d.e.Output(d.empty)&1 == 1
	full = d.e.Output(d.full)&1 == 1
	d.e.Commit()
	return head, empty, full
}

func TestFIFOBasicOrder(t *testing.T) {
	p := fifoHarness(t, 4, 8)
	d := newFifoDriver(t, p, 8)

	if _, empty, _ := d.step(false, 0, false); !empty {
		t.Fatal("fresh FIFO must be empty")
	}
	for _, v := range []uint64{0xAA, 0xBB, 0xCC} {
		d.step(true, v, false)
	}
	for _, want := range []uint64{0xAA, 0xBB, 0xCC} {
		head, empty, _ := d.step(false, 0, true)
		if empty {
			t.Fatal("unexpected empty during drain")
		}
		if head != want {
			t.Fatalf("head = %#x, want %#x", head, want)
		}
	}
	if _, empty, _ := d.step(false, 0, false); !empty {
		t.Fatal("FIFO must drain to empty")
	}
}

func TestFIFOFullSuppressesPush(t *testing.T) {
	p := fifoHarness(t, 4, 4)
	d := newFifoDriver(t, p, 4)
	for i := 0; i < 4; i++ {
		_, _, full := d.step(true, uint64(i), false)
		if full && i < 3 {
			t.Fatalf("full too early at %d", i)
		}
	}
	if _, _, full := d.step(true, 0xF, false); !full {
		t.Fatal("FIFO must report full at capacity")
	}
	// The overflow push above must have been dropped.
	for _, want := range []uint64{0, 1, 2, 3} {
		head, _, _ := d.step(false, 0, true)
		if head != want {
			t.Fatalf("head = %d, want %d (overflow write must be dropped)", head, want)
		}
	}
	if _, empty, _ := d.step(false, 0, false); !empty {
		t.Fatal("exactly 4 entries expected")
	}
}

func TestFIFOSimultaneousPushPop(t *testing.T) {
	p := fifoHarness(t, 4, 8)
	d := newFifoDriver(t, p, 8)
	d.step(true, 1, false)
	// Push+pop keeps occupancy at 1 and preserves FIFO order.
	head, _, _ := d.step(true, 2, true)
	if head != 1 {
		t.Fatalf("head during push+pop = %d, want 1", head)
	}
	head, empty, _ := d.step(false, 0, true)
	if head != 2 || empty {
		t.Fatalf("next head = %d empty=%v, want 2 false", head, empty)
	}
	if _, empty, _ := d.step(false, 0, false); !empty {
		t.Fatal("FIFO should now be empty")
	}
}

func TestFIFOPopWhileEmptyIgnored(t *testing.T) {
	p := fifoHarness(t, 4, 8)
	d := newFifoDriver(t, p, 8)
	d.step(false, 0, true)
	d.step(false, 0, true)
	d.step(true, 0x5A, false)
	head, empty, _ := d.step(false, 0, true)
	if empty || head != 0x5A {
		t.Fatalf("pop-on-empty corrupted state: head=%#x empty=%v", head, empty)
	}
}

// Property: the FIFO behaves exactly like a software queue under random
// push/pop sequences (with pushes dropped when full, pops ignored when
// empty).
func TestFIFOMatchesModelQueue(t *testing.T) {
	p := fifoHarness(t, 8, 8)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := newFifoDriver(t, p, 8)
		var model []uint64
		for step := 0; step < 200; step++ {
			push := rng.Intn(2) == 1
			pop := rng.Intn(2) == 1
			val := uint64(rng.Intn(256))
			head, empty, full := d.step(push, val, pop)
			// Validate view against model *before* applying the step.
			if (len(model) == 0) != empty {
				return false
			}
			if (len(model) == 8) != full {
				return false
			}
			if len(model) > 0 && head != model[0] {
				return false
			}
			// Apply semantics: flags computed from pre-step occupancy.
			doPush := push && len(model) < 8
			doPop := pop && len(model) > 0
			if doPop {
				model = model[1:]
			}
			if doPush {
				model = append(model, val)
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two depth")
		}
	}()
	b := netlist.NewBuilder("bad")
	din := b.InputBus("d", 4)
	circuit.NewFIFO(b, "f", 3, din, b.Input("push"), b.Input("pop"))
}
