package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// CounterCircuit generates a standalone width-bit counter design with enable
// and clear inputs and the count as output. Used by examples and tests.
func CounterCircuit(width int) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(fmt.Sprintf("counter%d", width))
	en := b.Input("en")
	clear := b.Input("clear")
	q := Counter(b, "cnt", width, en, clear)
	b.OutputBus("q", q)
	return b.Finish()
}

// LFSRCircuit generates a maximal-length 16-bit LFSR design (taps 16,15,13,4
// → indices 15,14,12,3) with a run enable input.
func LFSRCircuit() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("lfsr16")
	en := b.Input("en")
	q := make(Word, 16)
	setters := make([]func(netlist.NetID), 16)
	for i := range q {
		q[i], setters[i] = b.DFFDecl(fmt.Sprintf("lfsr[%d]", i), i == 0) // init 0x0001
	}
	fb := b.Xor(b.Xor(q[15], q[14]), b.Xor(q[12], q[3]))
	setters[0](b.Mux(q[0], fb, en))
	for i := 1; i < 16; i++ {
		setters[i](b.Mux(q[i], q[i-1], en))
	}
	b.OutputBus("q", q)
	return b.Finish()
}

// ParityPipeline generates a small three-stage pipeline that accumulates the
// parity of a data byte stream: stage 1 registers the input byte, stage 2
// reduces it to a parity bit, stage 3 accumulates parity over time. It is the
// quickstart example circuit.
func ParityPipeline() (*netlist.Netlist, error) {
	b := netlist.NewBuilder("paritypipe")
	valid := b.Input("valid")
	data := b.InputBus("data", 8)

	stage1 := Register(b, "s1/byte", data, valid, 0)
	v1 := b.DFF("s1/valid", valid, false)

	par := stage1[0]
	for i := 1; i < 8; i++ {
		par = b.Xor(par, stage1[i])
	}
	p2 := b.DFF("s2/parity", b.And(par, v1), false)
	v2 := b.DFF("s2/valid", v1, false)

	acc, setAcc := b.DFFDecl("s3/acc", false)
	setAcc(b.Mux(acc, b.Xor(acc, p2), v2))
	cnt := Counter(b, "s3/count", 8, v2, b.Const0())

	b.Output("parity", acc)
	b.OutputBus("count", cnt)
	return b.Finish()
}
