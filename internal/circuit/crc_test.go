package circuit_test

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

func TestCRC32BytesMatchesStdlib(t *testing.T) {
	prop := func(data []byte) bool {
		return circuit.CRC32Bytes(data) == crc32.ChecksumIEEE(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCRCResidueConstant(t *testing.T) {
	// Message followed by its little-endian complemented FCS must land the
	// register on CRCResidue — the property the RX datapath checks.
	prop := func(data []byte) bool {
		fcs := circuit.CRC32Bytes(data) // complemented checksum
		crc := circuit.CRCInit
		for _, d := range data {
			crc = circuit.CRC32UpdateByte(crc, d)
		}
		var fcsBytes [4]byte
		binary.LittleEndian.PutUint32(fcsBytes[:], fcs)
		for _, d := range fcsBytes {
			crc = circuit.CRC32UpdateByte(crc, d)
		}
		return crc == circuit.CRCResidue
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// crcHarness is a tiny circuit exposing the CRC engine for direct testing.
func crcHarness(t *testing.T) *sim.Program {
	t.Helper()
	b := netlist.NewBuilder("crcharness")
	en := b.Input("en")
	clear := b.Input("clear")
	data := b.InputBus("data", 8)
	eng := circuit.NewCRCEngine(b, "crc", data, en, clear)
	b.OutputBus("crc", eng.Value)
	b.OutputBus("fcs", eng.FCS(b))
	b.Output("residue_ok", eng.ResidueOK(b))
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func TestCRCEngineGateLevelMatchesReference(t *testing.T) {
	p := crcHarness(t)
	e := sim.NewEngine(p)
	en, _ := p.InputIndex("en")
	clear, _ := p.InputIndex("clear")
	data, _ := p.InputBusIndices("data", 8)
	crcOut, _ := p.OutputBusIndices("crc", 32)

	rng := rand.New(rand.NewSource(42))
	msg := make([]byte, 23)
	for i := range msg {
		msg[i] = byte(rng.Intn(256))
	}

	read32 := func() uint32 {
		var v uint32
		for i := 0; i < 32; i++ {
			v |= uint32(e.Output(crcOut[i])&1) << uint(i)
		}
		return v
	}

	e.SetInputBool(en, false)
	e.SetInputBool(clear, false)
	e.Eval()
	if got := read32(); got != circuit.CRCInit {
		t.Fatalf("reset crc = %#x, want %#x", got, circuit.CRCInit)
	}

	want := circuit.CRCInit
	e.SetInputBool(en, true)
	for _, bv := range msg {
		for i := 0; i < 8; i++ {
			e.SetInputBool(data[i], bv>>uint(i)&1 == 1)
		}
		e.Eval()
		e.Commit()
		want = circuit.CRC32UpdateByte(want, bv)
		e.SetInputBool(en, false)
		e.Eval()
		if got := read32(); got != want {
			t.Fatalf("after byte %#x: crc = %#x, want %#x", bv, got, want)
		}
		e.SetInputBool(en, true)
	}
	if got, ref := read32()^0xFFFFFFFF, crc32.ChecksumIEEE(msg); got != ref {
		t.Fatalf("final checksum = %#x, stdlib = %#x", got, ref)
	}

	// Clear must reload init even with enable high.
	e.SetInputBool(clear, true)
	e.Eval()
	e.Commit()
	e.SetInputBool(clear, false)
	e.SetInputBool(en, false)
	e.Eval()
	if got := read32(); got != circuit.CRCInit {
		t.Fatalf("after clear: crc = %#x, want %#x", got, circuit.CRCInit)
	}
}

func TestCRCEngineResidueDetector(t *testing.T) {
	p := crcHarness(t)
	e := sim.NewEngine(p)
	en, _ := p.InputIndex("en")
	data, _ := p.InputBusIndices("data", 8)
	resOK, _ := p.OutputIndex("residue_ok")

	msg := []byte("frame payload!")
	fcs := circuit.CRC32Bytes(msg)
	var stream []byte
	stream = append(stream, msg...)
	var fcsBytes [4]byte
	binary.LittleEndian.PutUint32(fcsBytes[:], fcs)
	stream = append(stream, fcsBytes[:]...)

	e.SetInputBool(en, true)
	for _, bv := range stream {
		for i := 0; i < 8; i++ {
			e.SetInputBool(data[i], bv>>uint(i)&1 == 1)
		}
		e.Eval()
		e.Commit()
	}
	e.SetInputBool(en, false)
	e.Eval()
	if e.Output(resOK)&1 != 1 {
		t.Fatal("residue_ok must be high after intact frame")
	}

	// Corrupt one byte: residue must fail.
	e.Reset()
	stream[3] ^= 0x10
	e.SetInputBool(en, true)
	for _, bv := range stream {
		for i := 0; i < 8; i++ {
			e.SetInputBool(data[i], bv>>uint(i)&1 == 1)
		}
		e.Eval()
		e.Commit()
	}
	e.SetInputBool(en, false)
	e.Eval()
	if e.Output(resOK)&1 != 0 {
		t.Fatal("residue_ok must be low after corrupted frame")
	}
}
