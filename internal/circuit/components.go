package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// Word is a multi-bit bus, LSB first.
type Word = []netlist.NetID

// WordConst drives a constant value onto a width-bit bus using tie cells.
func WordConst(b *netlist.Builder, width int, value uint64) Word {
	w := make(Word, width)
	for i := 0; i < width; i++ {
		if value>>uint(i)&1 == 1 {
			w[i] = b.Const1()
		} else {
			w[i] = b.Const0()
		}
	}
	return w
}

// WordMux selects d1 when sel is high, else d0, bit-wise.
// The operands must have equal width.
func WordMux(b *netlist.Builder, d0, d1 Word, sel netlist.NetID) Word {
	w := make(Word, len(d0))
	for i := range d0 {
		w[i] = b.Mux(d0[i], d1[i], sel)
	}
	return w
}

// WordXor returns the bit-wise XOR of equally sized buses.
func WordXor(b *netlist.Builder, x, y Word) Word {
	w := make(Word, len(x))
	for i := range x {
		w[i] = b.Xor(x[i], y[i])
	}
	return w
}

// WordAnd1 gates every bit of x with the enable net.
func WordAnd1(b *netlist.Builder, x Word, en netlist.NetID) Word {
	w := make(Word, len(x))
	for i := range x {
		w[i] = b.And(x[i], en)
	}
	return w
}

// WordInv inverts every bit of x.
func WordInv(b *netlist.Builder, x Word) Word {
	w := make(Word, len(x))
	for i := range x {
		w[i] = b.Not(x[i])
	}
	return w
}

// Adder builds a ripple-carry adder and returns sum (same width as a) and
// carry out. Operands must have equal width.
func Adder(b *netlist.Builder, a, y Word, cin netlist.NetID) (Word, netlist.NetID) {
	sum := make(Word, len(a))
	carry := cin
	for i := range a {
		axy := b.Xor(a[i], y[i])
		sum[i] = b.Xor(axy, carry)
		// carry' = (a&y) | (carry & (a^y))
		carry = b.Or(b.And(a[i], y[i]), b.And(carry, axy))
	}
	return sum, carry
}

// Incrementer returns x+1 (half-adder chain) and the final carry.
func Incrementer(b *netlist.Builder, x Word) (Word, netlist.NetID) {
	sum := make(Word, len(x))
	carry := b.Const1()
	for i := range x {
		sum[i] = b.Xor(x[i], carry)
		carry = b.And(x[i], carry)
	}
	return sum, carry
}

// EqualConst returns a net that is high when bus x equals the constant k.
func EqualConst(b *netlist.Builder, x Word, k uint64) netlist.NetID {
	terms := make([]netlist.NetID, len(x))
	for i := range x {
		if k>>uint(i)&1 == 1 {
			terms[i] = x[i]
		} else {
			terms[i] = b.Not(x[i])
		}
	}
	return b.And(terms...)
}

// Equal returns a net that is high when buses x and y are equal.
func Equal(b *netlist.Builder, x, y Word) netlist.NetID {
	terms := make([]netlist.NetID, len(x))
	for i := range x {
		terms[i] = b.Xnor(x[i], y[i])
	}
	return b.And(terms...)
}

// Decoder returns the one-hot decode of sel: out[i] is high iff sel == i.
// It produces 2^len(sel) outputs.
func Decoder(b *netlist.Builder, sel Word) []netlist.NetID {
	n := 1 << uint(len(sel))
	out := make([]netlist.NetID, n)
	for i := 0; i < n; i++ {
		out[i] = EqualConst(b, sel, uint64(i))
	}
	return out
}

// MuxTree selects inputs[sel] from a power-of-two input list, bit by bit.
// len(inputs) must equal 1<<len(sel).
func MuxTree(b *netlist.Builder, inputs []netlist.NetID, sel Word) netlist.NetID {
	if len(inputs) != 1<<uint(len(sel)) {
		// Builder sticky errors keep generator code clean; reuse that: an
		// impossible mux arity is a programming error in the generator.
		panic(fmt.Sprintf("circuit: MuxTree with %d inputs, %d select bits", len(inputs), len(sel)))
	}
	layer := append([]netlist.NetID(nil), inputs...)
	for s := 0; s < len(sel); s++ {
		next := make([]netlist.NetID, len(layer)/2)
		for i := range next {
			next[i] = b.Mux(layer[2*i], layer[2*i+1], sel[s])
		}
		layer = next
	}
	return layer[0]
}

// WordMuxTree applies MuxTree across equally wide words.
func WordMuxTree(b *netlist.Builder, words []Word, sel Word) Word {
	width := len(words[0])
	out := make(Word, width)
	column := make([]netlist.NetID, len(words))
	for bit := 0; bit < width; bit++ {
		for w := range words {
			column[w] = words[w][bit]
		}
		out[bit] = MuxTree(b, column, sel)
	}
	return out
}

// Register builds a width-bit register with synchronous enable: when en is
// high the register loads d, otherwise it holds. Bits are named
// name[0..width-1] and initialized from init (bit i of init).
func Register(b *netlist.Builder, name string, d Word, en netlist.NetID, init uint64) Word {
	q := make(Word, len(d))
	for i := range d {
		qi, setD := b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), init>>uint(i)&1 == 1)
		setD(b.Mux(qi, d[i], en))
		q[i] = qi
	}
	return q
}

// RegisterAlways builds a register that loads d every cycle (no enable).
func RegisterAlways(b *netlist.Builder, name string, d Word, init uint64) Word {
	q := make(Word, len(d))
	for i := range d {
		q[i] = b.DFF(fmt.Sprintf("%s[%d]", name, i), d[i], init>>uint(i)&1 == 1)
	}
	return q
}

// Counter builds a width-bit up counter with enable and synchronous clear
// (clear wins over enable). It returns the counter value.
func Counter(b *netlist.Builder, name string, width int, en, clear netlist.NetID) Word {
	q := make(Word, width)
	setters := make([]func(netlist.NetID), width)
	for i := 0; i < width; i++ {
		q[i], setters[i] = b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), false)
	}
	next := counterNext(b, q, en, clear)
	for i := 0; i < width; i++ {
		setters[i](next[i])
	}
	return q
}

// TMRCounter is Counter with triplicated, majority-voted state — the
// hardened twin used by the selective-hardening study.
func TMRCounter(b *netlist.Builder, name string, width int, en, clear netlist.NetID) Word {
	return TMRWord(b, name, width, 0, func(cur Word) Word {
		return counterNext(b, cur, en, clear)
	})
}

func counterNext(b *netlist.Builder, cur Word, en, clear netlist.NetID) Word {
	inc, _ := Incrementer(b, cur)
	out := make(Word, len(cur))
	for i := range cur {
		v := b.Mux(cur[i], inc[i], en)  // hold or count
		out[i] = b.And(v, b.Not(clear)) // synchronous clear to 0
	}
	return out
}

// ShiftRegister builds a chain of width single-bit stages; in enters stage 0
// and the return value lists every stage output, stage width-1 being the
// oldest bit. Shifting is gated by en.
func ShiftRegister(b *netlist.Builder, name string, width int, in netlist.NetID, en netlist.NetID) []netlist.NetID {
	stages := make([]netlist.NetID, width)
	prev := in
	for i := 0; i < width; i++ {
		qi, setD := b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), false)
		setD(b.Mux(qi, prev, en))
		stages[i] = qi
		prev = qi
	}
	return stages
}

// ByteDelayLine builds a depth-stage, width-bit delay line with enable; it
// returns the output of the final stage and every intermediate stage.
// Stage 0 holds the most recent word.
func ByteDelayLine(b *netlist.Builder, name string, depth int, d Word, en netlist.NetID) []Word {
	stages := make([]Word, depth)
	cur := d
	for s := 0; s < depth; s++ {
		cur = Register(b, fmt.Sprintf("%s%d", name, s), cur, en, 0)
		stages[s] = cur
	}
	return stages
}

// DiagTraceBuffer builds the corpus DUTs' shared FF-budget padding: a live
// shift register sampling `in` whose XOR parity is the returned net (expose
// it through an output so trace faults stay functionally relevant). With
// targetFFs > 0 the depth is chosen to land the builder's flip-flop count
// exactly on targetFFs; otherwise defaultDepth is used. It fails when the
// budget is already exceeded.
func DiagTraceBuffer(b *netlist.Builder, targetFFs, defaultDepth int, in netlist.NetID) (netlist.NetID, error) {
	depth := defaultDepth
	if targetFFs > 0 {
		remaining := targetFFs - b.FFCount()
		if remaining < 1 {
			return 0, fmt.Errorf("circuit: TargetFFs %d below structural minimum %d",
				targetFFs, b.FFCount()+1)
		}
		depth = remaining
	}
	trace := ShiftRegister(b, "diag/trace", depth, in, b.Const1())
	parity := trace[0]
	for _, t := range trace[1:] {
		parity = b.Xor(parity, t)
	}
	return parity, nil
}

// Majority returns the two-of-three majority vote of a, b, c.
func Majority(bd *netlist.Builder, a, b, c netlist.NetID) netlist.NetID {
	return bd.Or(bd.And(a, b), bd.And(a, c), bd.And(b, c))
}

// TMRWord builds a triplicated, majority-voted register bank — the
// selective-hardening structure of the paper's references [3]-[5], in its
// classic full-TMR form: voters and next-state logic are triplicated too,
// so no single voter (or logic cone) is a single point of failure. Each
// replica r loads next(vote_r(a,b,c)), where vote_r is that replica's own
// voter instance; any single upset is out-voted within one cycle. The
// returned word is one voter's output (which downstream logic consumes).
// Replicas are named name_a/_b/_c.
func TMRWord(bd *netlist.Builder, name string, width int, init uint64, next func(cur Word) Word) Word {
	replicas := [3]Word{}
	setters := [3][]func(netlist.NetID){}
	suffix := []string{"a", "b", "c"}
	for r := 0; r < 3; r++ {
		replicas[r] = make(Word, width)
		setters[r] = make([]func(netlist.NetID), width)
		for i := 0; i < width; i++ {
			replicas[r][i], setters[r][i] = bd.DFFDecl(
				fmt.Sprintf("%s_%s[%d]", name, suffix[r], i), init>>uint(i)&1 == 1)
		}
	}
	var firstVote Word
	for r := 0; r < 3; r++ {
		voted := make(Word, width)
		for i := 0; i < width; i++ {
			voted[i] = Majority(bd, replicas[0][i], replicas[1][i], replicas[2][i])
		}
		if r == 0 {
			firstVote = voted
		}
		nxt := next(voted)
		for i := 0; i < width; i++ {
			setters[r][i](nxt[i])
		}
	}
	return firstVote
}

// LFSR builds a Fibonacci linear-feedback shift register with the given tap
// positions (bit indices XORed into the feedback). A non-zero init keeps it
// from locking up in the all-zero state.
func LFSR(b *netlist.Builder, name string, width int, taps []int, init uint64) Word {
	q := make(Word, width)
	setters := make([]func(netlist.NetID), width)
	for i := 0; i < width; i++ {
		q[i], setters[i] = b.DFFDecl(fmt.Sprintf("%s[%d]", name, i), init>>uint(i)&1 == 1)
	}
	fb := q[taps[0]]
	for _, t := range taps[1:] {
		fb = b.Xor(fb, q[t])
	}
	setters[0](fb)
	for i := 1; i < width; i++ {
		setters[i](q[i-1])
	}
	return q
}
