package circuit

import (
	"fmt"

	"repro/internal/netlist"
)

// ALUPipe is a three-stage pipelined ALU datapath — the classic processor
// execution-unit slice, and the corpus's pure-datapath DUT family: operand
// registers, an eight-operation execute stage, and a writeback stage with a
// hardened accumulator, an unhardened operation counter and a MISR-style
// signature register that makes transient datapath corruption observable at
// the outputs long after it happened.
//
// Port summary:
//
//	inputs:  in_valid, op[3], a[W], b[W]
//	outputs: out_valid, result[W], zero, carry
//	         acc[W]    running accumulated sum of results (TMR hardened)
//	         sig[W]    rotate-XOR signature of the result stream
//	         ops[8]    completed-operation counter (unhardened)
//
// Opcodes: 0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shift left, 6 shift right,
// 7 pass-through of operand a.

// ALU opcodes.
const (
	ALUAdd = iota
	ALUSub
	ALUAnd
	ALUOr
	ALUXor
	ALUShl
	ALUShr
	ALUPass
)

// ALUConfig parameterizes the ALUPipe generator. Generation is fully
// deterministic: the same configuration always produces a
// fingerprint-identical netlist (there is no randomized structure).
type ALUConfig struct {
	// Width is the datapath width in bits (4..32).
	Width int
	// TargetFFs, when non-zero, pads the design with a live diagnostic
	// trace buffer until the flip-flop count reaches exactly this value.
	TargetFFs int
}

// DefaultALUConfig is the corpus default: a 16-bit datapath padded to a
// mid-size sequential budget.
func DefaultALUConfig() ALUConfig {
	return ALUConfig{Width: 16, TargetFFs: 256}
}

// SmallALUConfig is the smoke-test scale.
func SmallALUConfig() ALUConfig {
	return ALUConfig{Width: 8}
}

// Validate checks the configuration.
func (c ALUConfig) Validate() error {
	if c.Width < 4 || c.Width > 32 {
		return fmt.Errorf("circuit: ALU width %d out of range [4,32]", c.Width)
	}
	if c.TargetFFs < 0 {
		return fmt.Errorf("circuit: negative TargetFFs %d", c.TargetFFs)
	}
	return nil
}

// NewALUPipe generates the pipelined-ALU netlist.
func NewALUPipe(cfg ALUConfig) (*netlist.Netlist, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	W := cfg.Width
	b := netlist.NewBuilder("alupipe")

	inValid := b.Input("in_valid")
	opIn := b.InputBus("op", 3)
	aIn := b.InputBus("a", W)
	bIn := b.InputBus("b", W)

	// ---- Stage 1: operand fetch ------------------------------------------
	aReg := Register(b, "s1/a", aIn, inValid, 0)
	bReg := Register(b, "s1/b", bIn, inValid, 0)
	opReg := Register(b, "s1/op", opIn, inValid, 0)
	v1 := b.DFF("s1/valid", inValid, false)

	// ---- Stage 2: execute -------------------------------------------------
	sum, carryAdd := Adder(b, aReg, bReg, b.Const0())
	diff, carrySub := Adder(b, aReg, WordInv(b, bReg), b.Const1())
	shl := append(Word{b.Const0()}, aReg[:W-1]...)
	shr := append(append(Word{}, aReg[1:]...), b.Const0())
	results := []Word{
		ALUAdd:  sum,
		ALUSub:  diff,
		ALUAnd:  wordAnd(b, aReg, bReg),
		ALUOr:   wordOr(b, aReg, bReg),
		ALUXor:  WordXor(b, aReg, bReg),
		ALUShl:  shl,
		ALUShr:  shr,
		ALUPass: aReg,
	}
	selected := WordMuxTree(b, results, opReg)
	isAdd := EqualConst(b, opReg, ALUAdd)
	isSub := EqualConst(b, opReg, ALUSub)
	carryRaw := b.Or(b.And(isAdd, carryAdd), b.And(isSub, carrySub))

	res2 := Register(b, "s2/res", selected, v1, 0)
	carry2 := b.DFF("s2/carry", b.And(carryRaw, v1), false)
	v2 := b.DFF("s2/valid", v1, false)

	// ---- Stage 3: writeback ----------------------------------------------
	rOut := Register(b, "s3/res", res2, v2, 0)
	carryOut := b.DFF("s3/carry", carry2, false)
	v3 := b.DFF("s3/valid", v2, false)
	zero := b.DFF("s3/zero", b.And(EqualConst(b, res2, 0), v2), false)

	// Hardened running accumulator: results keep adding up, so a single
	// upset here corrupts every later readout — worth protecting, and the
	// protected/unprotected contrast is the population the models learn.
	acc := TMRWord(b, "s3/acc", W, 0, func(cur Word) Word {
		s, _ := Adder(b, cur, res2, b.Const0())
		return WordMux(b, cur, s, v2)
	})

	// MISR-style signature: rotate left, XOR in the result. Any corrupted
	// result permanently scrambles the signature.
	sig := StateWord(b, "s3/sig", W, 1, func(cur Word) Word {
		rot := append(append(Word{}, cur[W-1:]...), cur[:W-1]...)
		return WordMux(b, cur, WordXor(b, rot, res2), v2)
	})

	// Unhardened operation counter (the twin contrast to the accumulator).
	ops := Counter(b, "s3/ops", 8, v2, b.Const0())

	// ---- Diagnostic trace buffer (pads to the target FF budget) -----------
	tracePar, err := DiagTraceBuffer(b, cfg.TargetFFs, 4, b.Xor(rOut[0], v3))
	if err != nil {
		return nil, err
	}

	b.Output("out_valid", v3)
	b.OutputBus("result", rOut)
	b.Output("zero", zero)
	b.Output("carry", carryOut)
	b.OutputBus("acc", acc)
	b.OutputBus("sig", sig)
	b.OutputBus("ops", ops)
	b.Output("trace_par", tracePar)

	nl, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("circuit: building ALUPipe: %w", err)
	}
	return nl, nil
}

// wordAnd returns the bit-wise AND of equally sized buses.
func wordAnd(b *netlist.Builder, x, y Word) Word {
	w := make(Word, len(x))
	for i := range x {
		w[i] = b.And(x[i], y[i])
	}
	return w
}

// wordOr returns the bit-wise OR of equally sized buses.
func wordOr(b *netlist.Builder, x, y Word) Word {
	w := make(Word, len(x))
	for i := range x {
		w[i] = b.Or(x[i], y[i])
	}
	return w
}

// ALUModel is the software reference for one ALU operation at the given
// datapath width; it returns the result and the carry flag (meaningful for
// add/sub only). Testbenches and unit tests check the gate-level pipeline
// against it.
func ALUModel(width, op int, a, bv uint64) (uint64, bool) {
	mask := uint64(1)<<uint(width) - 1
	a &= mask
	bv &= mask
	switch op {
	case ALUAdd:
		s := a + bv
		return s & mask, s>>uint(width)&1 == 1
	case ALUSub:
		s := a + (^bv & mask) + 1
		return s & mask, s>>uint(width)&1 == 1
	case ALUAnd:
		return a & bv, false
	case ALUOr:
		return a | bv, false
	case ALUXor:
		return a ^ bv, false
	case ALUShl:
		return a << 1 & mask, false
	case ALUShr:
		return a >> 1, false
	default:
		return a, false
	}
}
