// Package circuit contains structural generators that emit gate-level
// netlists: word-level datapath primitives (adders, muxes, counters,
// registers), a synchronous FIFO, a byte-wide CRC-32 engine, small demo
// circuits, a random-circuit generator used by property tests, the
// MAC10GE-lite design that substitutes for the paper's OpenCores 10GE MAC
// core, and a mini synthesis pass that assigns drive strengths (the paper's
// Synopsys-derived features).
//
// All word buses are slices of nets, least-significant bit first.
package circuit
