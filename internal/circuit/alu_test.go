package circuit_test

import (
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// aluDriver drives a compiled ALUPipe cycle by cycle.
type aluDriver struct {
	e        *sim.Engine
	inValid  int
	op       []int
	a, b     []int
	outValid int
	result   []int
	carry    int
	zero     int
	width    int
}

func newALUDriver(t *testing.T, cfg circuit.ALUConfig) *aluDriver {
	t.Helper()
	nl, err := circuit.NewALUPipe(cfg)
	if err != nil {
		t.Fatalf("NewALUPipe: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	d := &aluDriver{e: sim.NewEngine(p), width: cfg.Width}
	if d.inValid, err = p.InputIndex("in_valid"); err != nil {
		t.Fatal(err)
	}
	if d.op, err = p.InputBusIndices("op", 3); err != nil {
		t.Fatal(err)
	}
	if d.a, err = p.InputBusIndices("a", cfg.Width); err != nil {
		t.Fatal(err)
	}
	if d.b, err = p.InputBusIndices("b", cfg.Width); err != nil {
		t.Fatal(err)
	}
	if d.outValid, err = p.OutputIndex("out_valid"); err != nil {
		t.Fatal(err)
	}
	if d.result, err = p.OutputBusIndices("result", cfg.Width); err != nil {
		t.Fatal(err)
	}
	if d.carry, err = p.OutputIndex("carry"); err != nil {
		t.Fatal(err)
	}
	if d.zero, err = p.OutputIndex("zero"); err != nil {
		t.Fatal(err)
	}
	return d
}

func (d *aluDriver) setBus(ports []int, v uint64) {
	for i, port := range ports {
		d.e.SetInputBool(port, v>>uint(i)&1 == 1)
	}
}

func (d *aluDriver) readBus(ports []int) uint64 {
	var v uint64
	for i, port := range ports {
		if d.e.Output(port)&1 == 1 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// step clocks one cycle with the given inputs and returns the post-Eval
// output sample.
func (d *aluDriver) step(valid bool, op int, a, b uint64) (outValid bool, result uint64, carry, zero bool) {
	d.e.SetInputBool(d.inValid, valid)
	d.setBus(d.op, uint64(op))
	d.setBus(d.a, a)
	d.setBus(d.b, b)
	d.e.Eval()
	outValid = d.e.Output(d.outValid)&1 == 1
	result = d.readBus(d.result)
	carry = d.e.Output(d.carry)&1 == 1
	zero = d.e.Output(d.zero)&1 == 1
	d.e.Commit()
	return
}

// The pipeline must reproduce the software model for every opcode with a
// three-cycle latency, including the carry and zero flags.
func TestALUPipeMatchesModel(t *testing.T) {
	for _, cfg := range []circuit.ALUConfig{circuit.SmallALUConfig(), circuit.DefaultALUConfig()} {
		d := newALUDriver(t, cfg)
		rng := rand.New(rand.NewSource(7))
		type input struct {
			op   int
			a, b uint64
		}
		var sent []input
		var got []struct {
			result      uint64
			carry, zero bool
		}
		const n = 200
		mask := uint64(1)<<uint(cfg.Width) - 1
		for c := 0; c < n+8; c++ {
			valid := c < n && rng.Intn(4) != 0 // ~75% duty cycle
			in := input{op: rng.Intn(8), a: rng.Uint64() & mask, b: rng.Uint64() & mask}
			if rng.Intn(8) == 0 {
				in.b = in.a // force zero results through sub/xor
			}
			ov, res, carry, zero := d.step(valid, in.op, in.a, in.b)
			if valid {
				sent = append(sent, in)
			}
			if ov {
				got = append(got, struct {
					result      uint64
					carry, zero bool
				}{res, carry, zero})
			}
		}
		if len(got) != len(sent) {
			t.Fatalf("width %d: %d inputs produced %d outputs", cfg.Width, len(sent), len(got))
		}
		for i, in := range sent {
			wantRes, wantCarry := circuit.ALUModel(cfg.Width, in.op, in.a, in.b)
			if got[i].result != wantRes {
				t.Fatalf("width %d op %d: a=%#x b=%#x → %#x, want %#x",
					cfg.Width, in.op, in.a, in.b, got[i].result, wantRes)
			}
			if in.op <= circuit.ALUSub && got[i].carry != wantCarry {
				t.Fatalf("width %d op %d: a=%#x b=%#x → carry %v, want %v",
					cfg.Width, in.op, in.a, in.b, got[i].carry, wantCarry)
			}
			if got[i].zero != (wantRes == 0) {
				t.Fatalf("width %d op %d: a=%#x b=%#x → zero %v for result %#x",
					cfg.Width, in.op, in.a, in.b, got[i].zero, wantRes)
			}
		}
	}
}

// The default configuration must hit its FF budget exactly, and generation
// must be deterministic.
func TestALUPipeBudgetAndDeterminism(t *testing.T) {
	cfg := circuit.DefaultALUConfig()
	nl, err := circuit.NewALUPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := nl.NumFFs(); got != cfg.TargetFFs {
		t.Fatalf("FF count %d, want %d", got, cfg.TargetFFs)
	}
	nl2, err := circuit.NewALUPipe(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Fingerprint() != nl2.Fingerprint() {
		t.Fatal("two generations with the same config differ")
	}
}

func TestALUConfigValidate(t *testing.T) {
	for _, cfg := range []circuit.ALUConfig{
		{Width: 2}, {Width: 64}, {Width: 8, TargetFFs: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
	if _, err := circuit.NewALUPipe(circuit.ALUConfig{Width: 8, TargetFFs: 3}); err == nil {
		t.Error("unreachable TargetFFs accepted")
	}
}
