package circuit_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// harness compiles a freshly built combinational/sequential fixture.
func compileFixture(t *testing.T, build func(b *netlist.Builder)) *sim.Program {
	t.Helper()
	b := netlist.NewBuilder("fixture")
	build(b)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func driveBus(e *sim.Engine, ports []int, v uint64) {
	for i, p := range ports {
		e.SetInputBool(p, v>>uint(i)&1 == 1)
	}
}

func readBusLane0(e *sim.Engine, ports []int) uint64 {
	var v uint64
	for i, p := range ports {
		v |= (e.Output(p) & 1) << uint(i)
	}
	return v
}

// Property: the ripple-carry adder implements addition mod 2^w.
func TestAdderMatchesIntegerAddition(t *testing.T) {
	const w = 8
	p := compileFixture(t, func(b *netlist.Builder) {
		x := b.InputBus("x", w)
		y := b.InputBus("y", w)
		cin := b.Input("cin")
		sum, cout := circuit.Adder(b, x, y, cin)
		b.OutputBus("sum", sum)
		b.Output("cout", cout)
	})
	e := sim.NewEngine(p)
	xs, _ := p.InputBusIndices("x", w)
	ys, _ := p.InputBusIndices("y", w)
	cin, _ := p.InputIndex("cin")
	sums, _ := p.OutputBusIndices("sum", w)
	cout, _ := p.OutputIndex("cout")

	prop := func(a, bb uint8, c bool) bool {
		driveBus(e, xs, uint64(a))
		driveBus(e, ys, uint64(bb))
		e.SetInputBool(cin, c)
		e.Eval()
		want := uint64(a) + uint64(bb)
		if c {
			want++
		}
		gotSum := readBusLane0(e, sums)
		gotCout := e.Output(cout) & 1
		return gotSum == want&0xFF && gotCout == want>>w
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementerAndEqualConst(t *testing.T) {
	const w = 6
	p := compileFixture(t, func(b *netlist.Builder) {
		x := b.InputBus("x", w)
		inc, carry := circuit.Incrementer(b, x)
		b.OutputBus("inc", inc)
		b.Output("carry", carry)
		b.Output("is42", circuit.EqualConst(b, x, 42))
	})
	e := sim.NewEngine(p)
	xs, _ := p.InputBusIndices("x", w)
	incs, _ := p.OutputBusIndices("inc", w)
	carry, _ := p.OutputIndex("carry")
	is42, _ := p.OutputIndex("is42")
	for v := uint64(0); v < 64; v++ {
		driveBus(e, xs, v)
		e.Eval()
		if got := readBusLane0(e, incs); got != (v+1)&63 {
			t.Fatalf("inc(%d) = %d", v, got)
		}
		if got := e.Output(carry) & 1; got != (v+1)>>w {
			t.Fatalf("carry(%d) = %d", v, got)
		}
		if got := e.Output(is42)&1 == 1; got != (v == 42) {
			t.Fatalf("is42(%d) = %v", v, got)
		}
	}
}

func TestDecoderAndMuxTree(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		sel := b.InputBus("sel", 3)
		data := b.InputBus("data", 8)
		dec := circuit.Decoder(b, sel)
		for i, d := range dec {
			b.Output(fmt.Sprintf("dec[%d]", i), d)
		}
		b.Output("picked", circuit.MuxTree(b, data, sel))
	})
	e := sim.NewEngine(p)
	sels, _ := p.InputBusIndices("sel", 3)
	datas, _ := p.InputBusIndices("data", 8)
	decs, _ := p.OutputBusIndices("dec", 8)
	picked, _ := p.OutputIndex("picked")

	driveBus(e, datas, 0b10110010)
	for s := uint64(0); s < 8; s++ {
		driveBus(e, sels, s)
		e.Eval()
		if got := readBusLane0(e, decs); got != 1<<s {
			t.Fatalf("decoder(%d) = %08b", s, got)
		}
		want := 0b10110010 >> s & 1
		if got := e.Output(picked) & 1; got != uint64(want) {
			t.Fatalf("muxtree(%d) = %d, want %d", s, got, want)
		}
	}
}

func TestMuxTreePanicsOnBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := netlist.NewBuilder("bad")
	circuit.MuxTree(b, make([]netlist.NetID, 3), b.InputBus("s", 2))
}

func TestShiftRegisterAndDelayLine(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		in := b.Input("in")
		en := b.Input("en")
		st := circuit.ShiftRegister(b, "sr", 4, in, en)
		for i, s := range st {
			b.Output(fmt.Sprintf("sr[%d]", i), s)
		}
	})
	e := sim.NewEngine(p)
	in, _ := p.InputIndex("in")
	en, _ := p.InputIndex("en")
	srs, _ := p.OutputBusIndices("sr", 4)

	e.SetInputBool(en, true)
	pattern := []bool{true, false, true, true}
	for _, bit := range pattern {
		e.SetInputBool(in, bit)
		e.Eval()
		e.Commit()
	}
	e.Eval()
	// Stage 0 holds the newest bit.
	if got := readBusLane0(e, srs); got != 0b1011 {
		t.Fatalf("shift register = %04b, want 1011", got)
	}
	// Disable: contents must freeze.
	e.SetInputBool(en, false)
	e.SetInputBool(in, false)
	e.Eval()
	e.Commit()
	e.Eval()
	if got := readBusLane0(e, srs); got != 0b1011 {
		t.Fatalf("frozen shift register = %04b", got)
	}
}

func TestUpdownAndRegister(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		d := b.InputBus("d", 4)
		en := b.Input("en")
		q := circuit.Register(b, "r", d, en, 0b1010)
		b.OutputBus("q", q)
	})
	e := sim.NewEngine(p)
	ds, _ := p.InputBusIndices("d", 4)
	en, _ := p.InputIndex("en")
	qs, _ := p.OutputBusIndices("q", 4)

	e.Eval()
	if got := readBusLane0(e, qs); got != 0b1010 {
		t.Fatalf("init = %04b, want 1010", got)
	}
	driveBus(e, ds, 0b0110)
	e.SetInputBool(en, false)
	e.Eval()
	e.Commit()
	e.Eval()
	if got := readBusLane0(e, qs); got != 0b1010 {
		t.Fatalf("hold failed: %04b", got)
	}
	e.SetInputBool(en, true)
	e.Eval()
	e.Commit()
	e.Eval()
	if got := readBusLane0(e, qs); got != 0b0110 {
		t.Fatalf("load failed: %04b", got)
	}
}

// TestTMRMasksSingleUpsets is the core hardening property: flipping any
// single replica bit of a TMR word never changes the voted output or the
// long-run behavior.
func TestTMRMasksSingleUpsets(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		en := b.Input("en")
		clear := b.Input("clear")
		q := circuit.TMRCounter(b, "cnt", 6, en, clear)
		b.OutputBus("q", q)
	})
	nFFs := p.NumFFs()
	if nFFs != 18 { // 3 replicas × 6 bits
		t.Fatalf("TMR counter has %d FFs, want 18", nFFs)
	}
	en, _ := p.InputIndex("en")
	clear, _ := p.InputIndex("clear")
	qs, _ := p.OutputBusIndices("q", 6)

	// Golden: count for 20 cycles.
	run := func(flipFF, flipCycle int) uint64 {
		e := sim.NewEngine(p)
		e.SetInputBool(en, true)
		e.SetInputBool(clear, false)
		for c := 0; c < 20; c++ {
			if c == flipCycle && flipFF >= 0 {
				e.FlipFF(flipFF, 1)
			}
			e.Eval()
			e.Commit()
		}
		e.Eval()
		return readBusLane0(e, qs)
	}
	golden := run(-1, 0)
	if golden != 20 {
		t.Fatalf("golden count = %d, want 20", golden)
	}
	for ff := 0; ff < nFFs; ff++ {
		for _, cycle := range []int{0, 7, 19} {
			if got := run(ff, cycle); got != golden {
				t.Fatalf("TMR failed to mask upset in FF %d at cycle %d: %d != %d",
					ff, cycle, got, golden)
			}
		}
	}
}

// TestUnprotectedCounterUpsetsPersist is the contrast case: the same upset
// in a plain counter corrupts the final count.
func TestUnprotectedCounterUpsetsPersist(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		en := b.Input("en")
		clear := b.Input("clear")
		q := circuit.Counter(b, "cnt", 6, en, clear)
		b.OutputBus("q", q)
	})
	en, _ := p.InputIndex("en")
	clear, _ := p.InputIndex("clear")
	qs, _ := p.OutputBusIndices("q", 6)
	e := sim.NewEngine(p)
	e.SetInputBool(en, true)
	e.SetInputBool(clear, false)
	for c := 0; c < 20; c++ {
		if c == 7 {
			e.FlipFF(5, 1) // flip the MSB
		}
		e.Eval()
		e.Commit()
	}
	e.Eval()
	if got := readBusLane0(e, qs); got == 20 {
		t.Fatal("unprotected counter silently absorbed an upset")
	}
}

// TestScramblerRoundTrip: scrambling then descrambling with synchronized
// LFSRs is the identity — verified end-to-end through the MAC loopback in
// mac_test.go; here we pin the LFSR step itself.
func TestScramblerStepPeriod(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		q := circuit.StateWord(b, "s", 8, circuit.ScramblerSeed, func(cur circuit.Word) circuit.Word {
			return scramblerStepForTest(b, cur)
		})
		b.OutputBus("q", q)
	})
	qs, _ := p.OutputBusIndices("q", 8)
	e := sim.NewEngine(p)
	seen := map[uint64]bool{}
	period := 0
	for c := 0; c < 300; c++ {
		e.Eval()
		v := readBusLane0(e, qs)
		if v == 0 {
			t.Fatal("scrambler reached all-zero lockup")
		}
		if seen[v] {
			period = c
			break
		}
		seen[v] = true
		e.Commit()
	}
	if period < 60 {
		t.Fatalf("scrambler period %d too short for whitening", period)
	}
}

// scramblerStepForTest mirrors the MAC's internal LFSR step (taps 8,6,5,4).
func scramblerStepForTest(b *netlist.Builder, cur circuit.Word) circuit.Word {
	fb := b.Xor(b.Xor(cur[7], cur[5]), b.Xor(cur[4], cur[3]))
	next := make(circuit.Word, 8)
	next[0] = fb
	for i := 1; i < 8; i++ {
		next[i] = cur[i-1]
	}
	return next
}

// TestBufferInsertionLimitsFanout verifies the synthesis DRC pass.
func TestBufferInsertionLimitsFanout(t *testing.T) {
	// One net feeding 40 inverters grossly violates MaxFanout.
	b := netlist.NewBuilder("fan")
	in := b.Input("a")
	for i := 0; i < 40; i++ {
		b.Output(fmt.Sprintf("o%d", i), b.Not(in))
	}
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	fanout := circuit.Fanout(nl)
	for i, f := range fanout {
		drv := nl.Nets[i].Driver
		if drv >= 0 {
			fn := nl.Cells[drv].Type.Func
			if fn == netlist.FuncConst0 || fn == netlist.FuncConst1 {
				continue
			}
		}
		if f > circuit.MaxFanout {
			t.Fatalf("net %q fanout %d exceeds %d after synthesis",
				nl.Nets[i].Name, f, circuit.MaxFanout)
		}
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid after buffering: %v", err)
	}
	// Behavior must be unchanged: all outputs still equal !a.
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := sim.NewEngine(p)
	a, _ := p.InputIndex("a")
	e.SetInputBool(a, true)
	e.Eval()
	for i := 0; i < 40; i++ {
		o, _ := p.OutputIndex(fmt.Sprintf("o%d", i))
		if e.Output(o)&1 != 0 {
			t.Fatalf("output %d wrong after buffering", i)
		}
	}
}

func TestWordHelpers(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		x := b.InputBus("x", 4)
		y := b.InputBus("y", 4)
		sel := b.Input("sel")
		b.OutputBus("xor", circuit.WordXor(b, x, y))
		b.OutputBus("mux", circuit.WordMux(b, x, y, sel))
		b.OutputBus("inv", circuit.WordInv(b, x))
		b.OutputBus("and1", circuit.WordAnd1(b, x, sel))
		b.OutputBus("konst", circuit.WordConst(b, 4, 0b0101))
		eq := circuit.Equal(b, x, y)
		b.Output("eq", eq)
	})
	e := sim.NewEngine(p)
	xs, _ := p.InputBusIndices("x", 4)
	ys, _ := p.InputBusIndices("y", 4)
	sel, _ := p.InputIndex("sel")
	get := func(name string) uint64 {
		ports, err := p.OutputBusIndices(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		return readBusLane0(e, ports)
	}
	driveBus(e, xs, 0b1100)
	driveBus(e, ys, 0b1010)
	e.SetInputBool(sel, false)
	e.Eval()
	if get("xor") != 0b0110 || get("mux") != 0b1100 || get("inv") != 0b0011 ||
		get("and1") != 0 || get("konst") != 0b0101 {
		t.Fatalf("word helpers wrong: xor=%04b mux=%04b inv=%04b and1=%04b konst=%04b",
			get("xor"), get("mux"), get("inv"), get("and1"), get("konst"))
	}
	eqPort, _ := p.OutputIndex("eq")
	if e.Output(eqPort)&1 != 0 {
		t.Fatal("Equal(1100,1010) must be false")
	}
	e.SetInputBool(sel, true)
	driveBus(e, ys, 0b1100)
	e.Eval()
	if get("mux") != 0b1100 || get("and1") != 0b1100 {
		t.Fatal("sel=1 helpers wrong")
	}
	if e.Output(eqPort)&1 != 1 {
		t.Fatal("Equal(x,x) must be true")
	}
}

func TestLFSRComponentNonZero(t *testing.T) {
	p := compileFixture(t, func(b *netlist.Builder) {
		q := circuit.LFSR(b, "l", 8, []int{7, 5, 4, 3}, 1)
		b.OutputBus("q", q)
	})
	qs, _ := p.OutputBusIndices("q", 8)
	e := sim.NewEngine(p)
	rng := rand.New(rand.NewSource(1))
	_ = rng
	for c := 0; c < 100; c++ {
		e.Eval()
		if readBusLane0(e, qs) == 0 {
			t.Fatal("LFSR locked up at zero")
		}
		e.Commit()
	}
}
