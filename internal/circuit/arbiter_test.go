package circuit_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

type arbDriver struct {
	e        *sim.Engine
	req      []int
	data     []int
	outValid int
	outData  []int
	outPort  []int
	cfg      circuit.ArbConfig
}

func newArbDriver(t *testing.T, cfg circuit.ArbConfig) *arbDriver {
	t.Helper()
	nl, err := circuit.NewRRArb(cfg)
	if err != nil {
		t.Fatalf("NewRRArb: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	d := &arbDriver{e: sim.NewEngine(p), cfg: cfg}
	d.req = make([]int, cfg.Ports)
	for i := range d.req {
		if d.req[i], err = p.InputIndex(fmt.Sprintf("req[%d]", i)); err != nil {
			t.Fatal(err)
		}
	}
	if d.data, err = p.InputBusIndices("data", cfg.DataWidth); err != nil {
		t.Fatal(err)
	}
	if d.outValid, err = p.OutputIndex("out_valid"); err != nil {
		t.Fatal(err)
	}
	if d.outData, err = p.OutputBusIndices("out_data", cfg.DataWidth); err != nil {
		t.Fatal(err)
	}
	ptrBits := 0
	for 1<<uint(ptrBits) < cfg.Ports {
		ptrBits++
	}
	if d.outPort, err = p.OutputBusIndices("out_port", ptrBits); err != nil {
		t.Fatal(err)
	}
	return d
}

// step clocks one cycle: bit i of reqMask pushes the data byte into port i
// (the data bus is shared), then samples the registered output.
func (d *arbDriver) step(reqMask uint64, data uint64) (valid bool, port, out uint64) {
	for i, p := range d.req {
		d.e.SetInputBool(p, reqMask>>uint(i)&1 == 1)
	}
	for i, p := range d.data {
		d.e.SetInputBool(p, data>>uint(i)&1 == 1)
	}
	d.e.Eval()
	valid = d.e.Output(d.outValid)&1 == 1
	for i, p := range d.outPort {
		if d.e.Output(p)&1 == 1 {
			port |= 1 << uint(i)
		}
	}
	for i, p := range d.outData {
		if d.e.Output(p)&1 == 1 {
			out |= 1 << uint(i)
		}
	}
	d.e.Commit()
	return
}

// Pushed bytes must come out exactly once, tagged with the right port, in
// per-port FIFO order.
func TestRRArbDataIntegrity(t *testing.T) {
	cfg := circuit.SmallArbConfig()
	d := newArbDriver(t, cfg)
	rng := rand.New(rand.NewSource(11))

	pushed := make([][]uint64, cfg.Ports)
	delivered := make([][]uint64, cfg.Ports)
	mask := uint64(1)<<uint(cfg.DataWidth) - 1
	occupancy := make([]int, cfg.Ports)

	const cycles = 400
	total := 0
	for c := 0; c < cycles; c++ {
		data := rng.Uint64() & mask
		var reqMask uint64
		if c < cycles-4*cfg.Ports*cfg.QueueDepth { // drain at the end
			for p := 0; p < cfg.Ports; p++ {
				if rng.Intn(3) == 0 && occupancy[p] < cfg.QueueDepth {
					reqMask |= 1 << uint(p)
					pushed[p] = append(pushed[p], data)
					occupancy[p]++
				}
			}
		}
		valid, gport, gdata := d.step(reqMask, data)
		if valid {
			delivered[gport] = append(delivered[gport], gdata)
			occupancy[gport]--
			total++
		}
	}
	for p := 0; p < cfg.Ports; p++ {
		if len(delivered[p]) != len(pushed[p]) {
			t.Fatalf("port %d: pushed %d bytes, delivered %d", p, len(pushed[p]), len(delivered[p]))
		}
		for i := range pushed[p] {
			if delivered[p][i] != pushed[p][i] {
				t.Fatalf("port %d byte %d: got %#x, want %#x", p, i, delivered[p][i], pushed[p][i])
			}
		}
	}
	if total == 0 {
		t.Fatal("no traffic delivered; fixture is broken")
	}
}

// The gate-level arbiter must reproduce a cycle-exact software model of
// round-robin arbitration: same grant sequence, same payloads, and strict
// +1 rotation whenever every queue has backlog (the fairness property).
func TestRRArbMatchesModel(t *testing.T) {
	cfg := circuit.SmallArbConfig()
	d := newArbDriver(t, cfg)
	rng := rand.New(rand.NewSource(23))
	P := cfg.Ports
	mask := uint64(1)<<uint(cfg.DataWidth) - 1

	queues := make([][]uint64, P)
	ptr := 0
	type grant struct {
		port      int
		data      uint64
		saturated bool // every queue non-empty at decision time
	}
	var want []grant
	var got []grant

	const cycles = 500
	for c := 0; c < cycles; c++ {
		// Model the grant and the push gating from cycle-start state
		// (same-cycle pushes are invisible to the hardware's registered
		// occupancy, and a same-cycle pop does not free space).
		startLen := make([]int, P)
		saturated := true
		for i, q := range queues {
			startLen[i] = len(q)
			if len(q) == 0 {
				saturated = false
			}
		}
		gp := -1
		for o := 0; o < P; o++ {
			i := (ptr + o) % P
			if len(queues[i]) > 0 {
				gp = i
				break
			}
		}
		if gp >= 0 {
			want = append(want, grant{port: gp, data: queues[gp][0], saturated: saturated})
			queues[gp] = queues[gp][1:]
			ptr = (gp + 1) % P
		}
		data := rng.Uint64() & mask
		var reqMask uint64
		if c < cycles-3*P*cfg.QueueDepth {
			for i := 0; i < P; i++ {
				if rng.Intn(2) == 0 {
					reqMask |= 1 << uint(i)
				}
			}
		}
		valid, hwPort, hwData := d.step(reqMask, data)
		for i := 0; i < P; i++ {
			if reqMask>>uint(i)&1 == 1 && startLen[i] < cfg.QueueDepth {
				queues[i] = append(queues[i], data)
			}
		}
		if valid {
			got = append(got, grant{port: int(hwPort), data: hwData})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("model grants %d, hardware grants %d", len(want), len(got))
	}
	if len(got) < 50 {
		t.Fatalf("only %d grants; fixture too idle", len(got))
	}
	sawSaturated := 0
	for i := range want {
		if got[i].port != want[i].port || got[i].data != want[i].data {
			t.Fatalf("grant %d: hardware port %d data %#x, model port %d data %#x",
				i, got[i].port, got[i].data, want[i].port, want[i].data)
		}
		if i > 0 && want[i].saturated {
			sawSaturated++
			if exp := (want[i-1].port + 1) % P; want[i].port != exp {
				t.Fatalf("grant %d under saturation: port %d after %d, want %d",
					i, want[i].port, want[i-1].port, exp)
			}
		}
	}
	if sawSaturated == 0 {
		t.Fatal("saturation never reached; fairness property untested")
	}
}

// Default config hits its FF budget; generation is deterministic.
func TestRRArbBudgetAndDeterminism(t *testing.T) {
	cfg := circuit.DefaultArbConfig()
	nl, err := circuit.NewRRArb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := nl.NumFFs(); got != cfg.TargetFFs {
		t.Fatalf("FF count %d, want %d", got, cfg.TargetFFs)
	}
	nl2, err := circuit.NewRRArb(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Fingerprint() != nl2.Fingerprint() {
		t.Fatal("two generations with the same config differ")
	}
}

func TestArbConfigValidate(t *testing.T) {
	for _, cfg := range []circuit.ArbConfig{
		{Ports: 3, QueueDepth: 4, DataWidth: 8},
		{Ports: 4, QueueDepth: 3, DataWidth: 8},
		{Ports: 4, QueueDepth: 4, DataWidth: 2},
		{Ports: 4, QueueDepth: 4, DataWidth: 8, TargetFFs: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v validated", cfg)
		}
	}
}
