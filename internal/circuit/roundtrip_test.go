package circuit_test

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// Property: Write→Parse round-trips random circuits structurally, and the
// parsed netlist simulates identically to the original.
func TestNetlistRoundTripPreservesBehavior(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := circuit.RandomConfig{
			Inputs:  1 + rng.Intn(3),
			FFs:     1 + rng.Intn(6),
			Gates:   4 + rng.Intn(25),
			Outputs: 1 + rng.Intn(3),
		}
		orig, err := circuit.RandomCircuit(cfg, seed)
		if err != nil {
			t.Logf("RandomCircuit: %v", err)
			return false
		}
		if err := circuit.Synthesize(orig); err != nil {
			t.Logf("Synthesize: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := netlist.Write(&buf, orig); err != nil {
			t.Logf("Write: %v", err)
			return false
		}
		parsed, err := netlist.Parse(&buf)
		if err != nil {
			t.Logf("Parse: %v", err)
			return false
		}
		if len(parsed.Cells) != len(orig.Cells) || len(parsed.Nets) != len(orig.Nets) {
			return false
		}

		pOrig, err := sim.Compile(orig)
		if err != nil {
			return false
		}
		pParsed, err := sim.Compile(parsed)
		if err != nil {
			return false
		}
		cycles := 5 + rng.Intn(15)
		buildStim := func() *sim.Stimulus {
			s := sim.NewStimulus(cycles)
			inRng := rand.New(rand.NewSource(seed + 1))
			for i := 0; i < cfg.Inputs; i++ {
				set := s.DrivePort(i)
				for c := 0; c < cycles; c++ {
					set(c, inRng.Intn(2) == 1)
				}
			}
			return s
		}
		monitors := make([]int, cfg.Outputs)
		for i := range monitors {
			monitors[i] = i
		}
		e1 := sim.NewEngine(pOrig)
		tr1, _ := sim.Run(e1, buildStim(), sim.RunConfig{Monitors: monitors})
		e2 := sim.NewEngine(pParsed)
		tr2, _ := sim.Run(e2, buildStim(), sim.RunConfig{Monitors: monitors})
		for c := 0; c < cycles; c++ {
			for m := range monitors {
				if tr1.Word(c, m) != tr2.Word(c, m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
