package fault_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// TestCampaignMetrics pins the ffr_campaign_* families: an instrumented
// campaign must report consistent chunk/batch/job counts, a plausible
// fast-forward hit rate, and early-exit accounting that covers every
// batch.
func TestCampaignMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r, jobs := newRunner(t, fault.RunnerConfig{
		ChunkJobs: sim.Lanes,
		Workers:   2,
		Metrics:   reg,
	})
	res, err := r.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	reg.WriteText(&b)
	text := b.String()
	for _, fam := range []string{
		"ffr_campaign_chunks_completed_total",
		"ffr_campaign_chunk_seconds_count",
		"ffr_campaign_batches_total",
		"ffr_campaign_simulated_cycles_total",
		"ffr_campaign_replay_cycles_total",
		"ffr_campaign_early_exits_total",
		"ffr_campaign_jobs_done",
		"ffr_campaign_jobs_total",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("exposition missing %s:\n%s", fam, text)
		}
	}

	get := func(name string) float64 {
		t.Helper()
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, name+" ") {
				v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
				if err != nil {
					t.Fatalf("parsing %q: %v", line, err)
				}
				return v
			}
		}
		t.Fatalf("exposition has no sample %s:\n%s", name, text)
		return 0
	}
	if got := get("ffr_campaign_chunks_completed_total"); got != float64(res.Chunks) {
		t.Fatalf("chunks completed %v, result says %d", got, res.Chunks)
	}
	if got := get("ffr_campaign_batches_total"); got != float64(res.Batches) {
		t.Fatalf("batches %v, result says %d", got, res.Batches)
	}
	if got := get("ffr_campaign_jobs_done"); got != float64(res.TotalRuns) {
		t.Fatalf("jobs done gauge %v, result says %d", got, res.TotalRuns)
	}
	if got := get("ffr_campaign_simulated_cycles_total"); got != float64(res.SimulatedCycles) {
		t.Fatalf("simulated cycles %v, result says %d", got, res.SimulatedCycles)
	}
	if got := get("ffr_campaign_replay_cycles_total"); got != float64(res.ReplayCycles) {
		t.Fatalf("replay cycles %v, result says %d", got, res.ReplayCycles)
	}
}

// TestCampaignMetricsBackendLabel pins the kernel-path telemetry: the
// chunk wall-time histogram carries the resolved backend as a label, the
// lanes-per-batch gauge reports each backend's batch width (64 interpreter
// lanes, 64·DefaultKernelWords kernel lanes), and the combined exposition
// passes scripts/metrics-lint.sh — the same gate CI runs against live
// /metrics endpoints.
func TestCampaignMetricsBackendLabel(t *testing.T) {
	cases := []struct {
		backend fault.Backend
		label   string
		lanes   int
	}{
		{fault.BackendInterp, "interp", sim.Lanes},
		{fault.BackendKernel, "kernel", sim.Lanes * sim.DefaultKernelWords},
	}
	for _, c := range cases {
		c := c
		t.Run(c.label, func(t *testing.T) {
			reg := obs.NewRegistry()
			r, jobs := newRunner(t, fault.RunnerConfig{
				ChunkJobs: sim.Lanes,
				Workers:   2,
				Backend:   c.backend,
				Metrics:   reg,
			})
			if _, err := r.Run(jobs); err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			reg.WriteText(&b)
			text := b.String()
			labeled := `ffr_campaign_chunk_seconds_count{backend="` + c.label + `"}`
			if !strings.Contains(text, labeled) {
				t.Fatalf("exposition missing %s:\n%s", labeled, text)
			}
			gauge := "ffr_campaign_lanes_per_batch " + strconv.Itoa(c.lanes)
			if !strings.Contains(text, gauge) {
				t.Fatalf("exposition missing %q:\n%s", gauge, text)
			}
			lintExposition(t, text)
		})
	}
}

// lintExposition runs scripts/metrics-lint.sh over a rendered exposition,
// so the repo's Prometheus-text gate covers the campaign families without
// standing up an HTTP listener.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	script := filepath.Join("..", "..", "scripts", "metrics-lint.sh")
	if _, err := os.Stat(script); err != nil {
		t.Fatalf("metrics-lint script: %v", err)
	}
	if _, err := exec.LookPath("sh"); err != nil {
		t.Skipf("sh unavailable: %v", err)
	}
	cmd := exec.Command("sh", script)
	cmd.Stdin = strings.NewReader(text)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("metrics-lint failed: %v\n%s\nexposition:\n%s", err, out, text)
	}
}

// TestCampaignMetricsUnchangedResults pins that instrumentation is
// observation-only: the same campaign with and without a metrics registry
// produces identical failure counts.
func TestCampaignMetricsUnchangedResults(t *testing.T) {
	plain, jobs := newRunner(t, fault.RunnerConfig{ChunkJobs: sim.Lanes, Workers: 2})
	want, err := plain.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	metered, jobs2 := newRunner(t, fault.RunnerConfig{
		ChunkJobs: sim.Lanes, Workers: 2, Metrics: obs.NewRegistry(),
	})
	got, err := metered.Run(jobs2)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Failures) != len(got.Failures) {
		t.Fatalf("failure vector length %d vs %d", len(want.Failures), len(got.Failures))
	}
	for ff := range want.Failures {
		if want.Failures[ff] != got.Failures[ff] {
			t.Fatalf("FF %d: %d failures without metrics, %d with", ff, want.Failures[ff], got.Failures[ff])
		}
	}
}
