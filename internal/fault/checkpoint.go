package fault

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
)

// Checkpoint persistence: a campaign checkpoint is a single file holding a
// human-readable JSON header line (format identification, version, campaign
// fingerprints, shard geometry) followed by a gob-encoded payload mapping
// completed chunk indices to their per-batch failure masks. The header makes
// files inspectable and lets loaders reject foreign or stale checkpoints
// before touching the binary payload; gob keeps the (potentially large) mask
// payload compact. Saves are atomic: the file is written to a temp sibling
// and renamed into place, so an interrupted save never corrupts an earlier
// good checkpoint.

const (
	// checkpointMagic identifies the file format.
	checkpointMagic = "repro/fault campaign checkpoint"
	// CheckpointVersion is the current on-disk format version. Loaders
	// reject any other version with ErrCheckpointVersion.
	CheckpointVersion = 1
)

// Checkpoint errors, matchable with errors.Is.
var (
	// ErrCheckpointCorrupt marks files that are not parseable checkpoints.
	ErrCheckpointCorrupt = errors.New("fault: corrupt checkpoint")
	// ErrCheckpointVersion marks a parseable checkpoint of an unsupported
	// format version.
	ErrCheckpointVersion = errors.New("fault: unsupported checkpoint version")
	// ErrCheckpointMismatch marks a well-formed checkpoint that belongs to
	// a different campaign (plan, golden trace or shard geometry differ).
	ErrCheckpointMismatch = errors.New("fault: checkpoint does not match campaign")
)

// Checkpoint is the on-disk state of a partially (or fully) completed
// campaign: which shard chunks are done and what their failure masks were,
// plus fingerprints pinning the exact campaign they belong to.
type Checkpoint struct {
	// PlanHash fingerprints the injection plan (see PlanFingerprint).
	PlanHash uint64
	// GoldenHash fingerprints the golden trace the masks were classified
	// against (see sim.Trace.Fingerprint).
	GoldenHash uint64
	// ClassifierHash fingerprints the failure criterion (see
	// ConfigFingerprinter); 0 when the classifier does not identify
	// itself.
	ClassifierHash uint64
	// Schedule names the batch-packing schedule the masks were recorded
	// under (see Schedule). "" marks files from before schedules existed,
	// which were packed in plan order. Resuming under a different schedule
	// is rejected: the same mask bit maps to a different job.
	Schedule string
	// Model is the canonical fault-model string the masks were recorded
	// under (see Model.String). "" marks files from before fault models
	// existed, which were all SEU campaigns. Resuming under a different
	// model is rejected: the same job injects a different fault.
	Model string
	// TotalJobs is the plan length.
	TotalJobs int
	// ChunkJobs is the shard chunk size in jobs (a multiple of sim.Lanes).
	ChunkJobs int
	// NumChunks is the total shard count of the campaign.
	NumChunks int
	// Chunks maps completed chunk index -> per-batch failure masks.
	Chunks map[int][]uint64
}

// checkpointHeader is the JSON first line of a checkpoint file.
type checkpointHeader struct {
	Magic          string `json:"magic"`
	Version        int    `json:"version"`
	PlanHash       string `json:"plan_hash"`
	GoldenHash     string `json:"golden_hash"`
	ClassifierHash string `json:"classifier_hash"`
	Schedule       string `json:"schedule,omitempty"`
	FaultModel     string `json:"fault_model,omitempty"`
	TotalJobs      int    `json:"total_jobs"`
	ChunkJobs      int    `json:"chunk_jobs"`
	NumChunks      int    `json:"num_chunks"`
	Completed      int    `json:"completed_chunks"`
}

// Fingerprint returns a canonical 64-bit digest of the checkpoint's
// content: campaign fingerprints, shard geometry, normalized schedule and
// every completed chunk's masks, visited in ascending chunk order. Two
// checkpoints fingerprint equal iff they represent the same campaign state
// — regardless of file-level encoding details (gob serializes the chunk
// map in nondeterministic order, so comparing file bytes would not work).
// This is how the distributed fabric proves a merged multi-worker campaign
// is bit-identical to a single-node run.
func (c *Checkpoint) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	write(c.PlanHash)
	write(c.GoldenHash)
	write(c.ClassifierHash)
	sched := normalizeCheckpointSchedule(c.Schedule)
	write(uint64(len(sched)))
	h.Write([]byte(sched))
	model := normalizeCheckpointModel(c.Model)
	write(uint64(len(model)))
	h.Write([]byte(model))
	write(uint64(c.TotalJobs))
	write(uint64(c.ChunkJobs))
	write(uint64(c.NumChunks))
	write(uint64(len(c.Chunks)))
	for _, ci := range sortedChunkIndices(c.Chunks) {
		masks := c.Chunks[ci]
		write(uint64(ci))
		write(uint64(len(masks)))
		for _, m := range masks {
			write(m)
		}
	}
	return h.Sum64()
}

// normalizeCheckpointModel resolves a checkpoint's recorded fault model:
// "" marks files from before fault models existed, which were all SEU
// campaigns, so they normalize to — and fingerprint identically with — the
// canonical SEU string.
func normalizeCheckpointModel(s string) string {
	if s == "" {
		return Model{}.String()
	}
	return s
}

// PlanFingerprint returns a stable 64-bit digest of an injection plan. Two
// plans fingerprint equal iff they contain the same jobs in the same order,
// which is how checkpoints detect being resumed against a different seed,
// budget or flip-flop population.
func PlanFingerprint(jobs []Job) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	write(uint64(len(jobs)))
	for _, j := range jobs {
		write(uint64(j.FF))
		write(uint64(j.Cycle))
	}
	return h.Sum64()
}

// SaveCheckpoint atomically writes c to path: the payload lands in a temp
// file in the same directory first and is renamed over path only after a
// successful flush, so readers never observe a torn file.
func SaveCheckpoint(path string, c *Checkpoint) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriter(tmp)
	hdr := checkpointHeader{
		Magic:          checkpointMagic,
		Version:        CheckpointVersion,
		PlanHash:       strconv.FormatUint(c.PlanHash, 16),
		GoldenHash:     strconv.FormatUint(c.GoldenHash, 16),
		ClassifierHash: strconv.FormatUint(c.ClassifierHash, 16),
		Schedule:       c.Schedule,
		FaultModel:     c.Model,
		TotalJobs:      c.TotalJobs,
		ChunkJobs:      c.ChunkJobs,
		NumChunks:      c.NumChunks,
		Completed:      len(c.Chunks),
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	if _, err = w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	if err = gob.NewEncoder(w).Encode(c.Chunks); err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("fault: saving checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads and structurally validates a checkpoint file. It
// returns ErrCheckpointCorrupt for unparseable files, ErrCheckpointVersion
// for foreign format versions, and fs.ErrNotExist (via os.Open) when no
// checkpoint exists. Campaign-level matching (does this checkpoint belong to
// the plan being run?) is the caller's job.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %s: missing header", ErrCheckpointCorrupt, path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: bad header: %v", ErrCheckpointCorrupt, path, err)
	}
	if hdr.Magic != checkpointMagic {
		return nil, fmt.Errorf("%w: %s: magic %q", ErrCheckpointCorrupt, path, hdr.Magic)
	}
	if hdr.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: %s: version %d, supported %d",
			ErrCheckpointVersion, path, hdr.Version, CheckpointVersion)
	}
	planHash, err := strconv.ParseUint(hdr.PlanHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad plan hash %q", ErrCheckpointCorrupt, path, hdr.PlanHash)
	}
	goldenHash, err := strconv.ParseUint(hdr.GoldenHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad golden hash %q", ErrCheckpointCorrupt, path, hdr.GoldenHash)
	}
	classifierHash, err := strconv.ParseUint(hdr.ClassifierHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad classifier hash %q", ErrCheckpointCorrupt, path, hdr.ClassifierHash)
	}

	c := &Checkpoint{
		PlanHash:       planHash,
		GoldenHash:     goldenHash,
		ClassifierHash: classifierHash,
		Schedule:       hdr.Schedule,
		Model:          hdr.FaultModel,
		TotalJobs:      hdr.TotalJobs,
		ChunkJobs:      hdr.ChunkJobs,
		NumChunks:      hdr.NumChunks,
	}
	if err := gob.NewDecoder(r).Decode(&c.Chunks); err != nil {
		return nil, fmt.Errorf("%w: %s: bad payload: %v", ErrCheckpointCorrupt, path, err)
	}

	sh, err := newSharding(c.TotalJobs, c.ChunkJobs)
	if err != nil || sh.chunkJobs != c.ChunkJobs || sh.numChunks != c.NumChunks {
		return nil, fmt.Errorf("%w: %s: inconsistent shard geometry (%d jobs, %d/chunk, %d chunks)",
			ErrCheckpointCorrupt, path, c.TotalJobs, c.ChunkJobs, c.NumChunks)
	}
	for ci, masks := range c.Chunks {
		if ci < 0 || ci >= c.NumChunks {
			return nil, fmt.Errorf("%w: %s: chunk %d of %d", ErrCheckpointCorrupt, path, ci, c.NumChunks)
		}
		if len(masks) != sh.chunkBatches(ci) {
			return nil, fmt.Errorf("%w: %s: chunk %d has %d batches, want %d",
				ErrCheckpointCorrupt, path, ci, len(masks), sh.chunkBatches(ci))
		}
	}
	return c, nil
}
