package fault_test

import (
	"strings"
	"testing"

	"repro/internal/fault"
)

// TestModelParseStringRoundTrip pins the canonical grammar: every parseable
// spelling resolves to a normalized model whose String() re-parses to the
// same model.
func TestModelParseStringRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "seu"},
		{"seu", "seu"},
		{"SEU", "seu"},
		{" seu ", "seu"},
		{"mbu", "mbu:2"},
		{"mbu:2", "mbu:2"},
		{"mbu:3", "mbu:3"},
		{"mbu:4", "mbu:4"},
		{"stuck0", "stuck0:1"},
		{"stuck0:8", "stuck0:8"},
		{"stuck1:4", "stuck1:4"},
		{"set", "set"},
		{"seu@0.25-0.75", "seu@0.25-0.75"},
		{"seu@0-1", "seu"},
		{"mbu:3@0.5-1", "mbu:3@0.5-1"},
		{"stuck0:8@0.25-0.75", "stuck0:8@0.25-0.75"},
		{"set@0.5-1", "set@0.5-1"},
	}
	for _, c := range cases {
		m, err := fault.ParseModel(c.in)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", c.in, err)
		}
		if got := m.String(); got != c.want {
			t.Errorf("ParseModel(%q).String() = %q, want %q", c.in, got, c.want)
		}
		again, err := fault.ParseModel(m.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", m.String(), err)
		}
		if again != m {
			t.Errorf("round trip of %q: %+v != %+v", c.in, again, m)
		}
	}
}

// TestModelParseRejects pins the error surface of the grammar.
func TestModelParseRejects(t *testing.T) {
	bad := []string{
		"sbu",         // unknown kind
		"mbu:1",       // cluster below 2
		"mbu:5",       // cluster above 4
		"mbu:x",       // non-numeric parameter
		"seu:3",       // SEU takes no parameter
		"set:2",       // SET takes no parameter
		"stuck0:0",    // zero duration
		"stuck0:-1",   // negative duration
		"seu@0.5",     // window missing the end
		"seu@a-b",     // non-numeric window
		"seu@0.5-0.5", // empty window
		"seu@0.9-0.1", // inverted window
		"seu@-0.1-1",  // start below 0 (parses as empty start)
		"seu@0-1.5",   // end above 1
	}
	for _, s := range bad {
		if m, err := fault.ParseModel(s); err == nil {
			t.Errorf("ParseModel(%q) accepted as %q", s, m)
		}
	}
}

// TestModelValidate covers struct-literal validation, including the
// parameters the string grammar cannot express.
func TestModelValidate(t *testing.T) {
	if err := (fault.Model{}).Validate(); err != nil {
		t.Errorf("zero model rejected: %v", err)
	}
	if err := (fault.Model{Kind: fault.KindMBU}).Validate(); err != nil {
		t.Errorf("MBU default size rejected: %v", err)
	}
	bad := []fault.Model{
		{Kind: "flip"},
		{Kind: fault.KindSEU, Size: 2},
		{Kind: fault.KindSEU, Duration: 3},
		{Kind: fault.KindMBU, Size: 7},
		{Kind: fault.KindMBU, Duration: 2},
		{Kind: fault.KindStuck0, Duration: -1},
		{Kind: fault.KindStuck1, Size: 2},
		{Kind: fault.KindSET, Size: 3},
		{Kind: fault.KindSEU, WindowStart: -0.1, WindowEnd: 1},
		{Kind: fault.KindSEU, WindowStart: 0.6, WindowEnd: 0.4},
		{Kind: fault.KindSEU, WindowStart: 0, WindowEnd: 1.1},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
}

// TestModelKindsComplete keeps ModelKinds in sync with the grammar.
func TestModelKindsComplete(t *testing.T) {
	kinds := fault.ModelKinds()
	if len(kinds) != 5 {
		t.Fatalf("ModelKinds() has %d entries, want 5", len(kinds))
	}
	for _, k := range kinds {
		m, err := fault.ParseModel(string(k))
		if err != nil {
			t.Errorf("kind %q does not parse: %v", k, err)
			continue
		}
		if m.Kind != k {
			t.Errorf("kind %q parsed as %q", k, m.Kind)
		}
	}
}

// TestNewModelPlanSEUMatchesNewPlan is the bit-compatibility contract at the
// plan level: the SEU reference model samples the exact plan NewPlan does,
// for any spelling of the SEU default.
func TestNewModelPlanSEUMatchesNewPlan(t *testing.T) {
	const ffs, per, active, seed = 37, 5, 913, 2019
	want := fault.NewPlan(ffs, per, active, seed)
	for _, m := range []fault.Model{{}, {Kind: fault.KindSEU}, {Kind: fault.KindSEU, WindowEnd: 1}} {
		got := fault.NewModelPlan(m, ffs, per, active, seed)
		if len(got) != len(want) {
			t.Fatalf("%+v: %d jobs, want %d", m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: job %d = %+v, want %+v", m, i, got[i], want[i])
			}
		}
	}
}

// TestNewModelPlanWindow pins the window arithmetic: every sampled cycle
// falls inside [start*active, end*active), and degenerate windows still
// produce one legal cycle per job.
func TestNewModelPlanWindow(t *testing.T) {
	const ffs, per, active = 11, 20, 400
	m, err := fault.ParseModel("seu@0.25-0.75")
	if err != nil {
		t.Fatal(err)
	}
	jobs := fault.NewModelPlan(m, ffs, per, active, 7)
	lo, hi := active/4, 3*active/4
	for _, j := range jobs {
		if j.Cycle < lo || j.Cycle >= hi {
			t.Fatalf("cycle %d outside window [%d,%d)", j.Cycle, lo, hi)
		}
	}
	// A window narrower than one cycle of a tiny active phase still yields
	// in-range cycles.
	narrow, err := fault.ParseModel("seu@0.99-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range fault.NewModelPlan(narrow, ffs, per, 3, 7) {
		if j.Cycle < 0 || j.Cycle >= 3 {
			t.Fatalf("narrow window sampled cycle %d outside [0,3)", j.Cycle)
		}
	}
}

// TestModelTargetSpaces pins TargetsFFs and NumTargets per kind.
func TestModelTargetSpaces(t *testing.T) {
	p, _ := smallMAC(t)
	for _, k := range fault.ModelKinds() {
		m := fault.Model{Kind: k}
		wantFFs := k != fault.KindSET
		if m.TargetsFFs() != wantFFs {
			t.Errorf("%s: TargetsFFs() = %v, want %v", k, m.TargetsFFs(), wantFFs)
		}
		want := p.NumFFs()
		if !wantFFs {
			want = p.NumCombTargets()
		}
		if got := m.NumTargets(p); got != want {
			t.Errorf("%s: NumTargets = %d, want %d", k, got, want)
		}
	}
	if p.NumCombTargets() == 0 {
		t.Fatal("MAC program has no combinational targets")
	}
}

// TestRunnerRejectsBadModel covers NewRunner's model validation.
func TestRunnerRejectsBadModel(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	_, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls,
		fault.RunnerConfig{Model: fault.Model{Kind: "gamma-ray"}})
	if err == nil || !strings.Contains(err.Error(), "model") {
		t.Fatalf("NewRunner accepted an unknown fault model (err %v)", err)
	}
}
