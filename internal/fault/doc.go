// Package fault implements the paper's flat statistical fault-injection
// campaign (Section IV-A) and generalizes it over pluggable fault models:
// faults are injected at random times during the active simulation phase,
// runs are classified at the applicative level against a golden reference,
// and the per-target Functional De-Rating factor is the fraction of failing
// runs.
//
// The Model type selects what one injection physically is. The zero value —
// and the paper's reference — is the SEU: invert the value stored in one
// flip-flop for one cycle. The other models reuse the exact same plan,
// scheduling, sharding and checkpoint machinery: MBU flips a spatial cluster
// of flip-flops (netlist proximity standing in for placement), stuck-at-0/1
// holds a flip-flop at a value for a duration, SET pulses a combinational
// cell's output for one evaluation (latching only where a downstream
// flip-flop samples it), and any model can be windowed to a fraction of the
// active phase. Every model is bit-identical across backends and schedules,
// and the SEU model is bit-identical to the pre-model campaign — both
// properties are pinned by the equivalence suite.
//
// The campaign exploits the 64-lane bit-parallel engine: 64 independent
// injection runs execute per simulation pass. Execution is owned by Runner,
// which shards the plan into fixed-size chunks, fans them out across a
// bounded worker pool, merges partial results deterministically (worker
// count and chunk size never change the outcome), and can checkpoint
// completed-chunk state to disk for exact resume. Checkpoints record the
// fault model and refuse to resume under a different one. RunCampaign and
// RunJobs are thin convenience wrappers over Runner.
//
// The same machinery serves partial campaigns: the core estimation flow
// injects only a training subset, and the active-learning planner (package
// plan) runs every adaptive round on a checkpointed Runner, whose plan
// fingerprints are what make interrupted loops resume bit-identically.
package fault
