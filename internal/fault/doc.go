// Package fault implements the paper's flat statistical fault-injection
// campaign (Section IV-A): SEUs are injected by inverting the value stored
// in flip-flops at random times during the active simulation phase, runs are
// classified at the applicative level against a golden reference, and the
// per-flip-flop Functional De-Rating factor is the fraction of failing runs.
//
// The campaign exploits the 64-lane bit-parallel engine: 64 independent
// injection runs execute per simulation pass. Execution is owned by Runner,
// which shards the plan into fixed-size chunks, fans them out across a
// bounded worker pool, merges partial results deterministically (worker
// count and chunk size never change the outcome), and can checkpoint
// completed-chunk state to disk for exact resume. RunCampaign and RunJobs
// are thin convenience wrappers over Runner.
//
// The same machinery serves partial campaigns: the core estimation flow
// injects only a training subset, and the active-learning planner (package
// plan) runs every adaptive round on a checkpointed Runner, whose plan
// fingerprints are what make interrupted loops resume bit-identically.
package fault
