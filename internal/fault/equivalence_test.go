package fault_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// The campaign-equivalence suite: the incremental engine (golden-snapshot
// fast-forward + streaming early exit + cycle-clustered scheduling) and the
// compiled-kernel backend (gate fusion + dead-fanout pruning + wide batches)
// must produce bit-identical failure masks, FDR vectors and
// checkpoint/resume behavior versus the naive full-replay path, across the
// MAC, every registered corpus scenario (which includes the random netlist
// family), a TMR-hardened netlist and the edge cycles where off-by-one bugs
// would hide: flips at cycle 0, the last active cycle, the last stimulus
// cycle and snapshot boundaries.

// runConfigs are the backend × schedule combinations every plan is run
// under; all of them must agree with the first (the naive plan-order
// reference).
var runConfigs = []struct {
	name string
	cfg  fault.RunnerConfig
}{
	{"naive/plan", fault.RunnerConfig{Naive: true, Schedule: fault.SchedulePlan}},
	{"naive/clustered", fault.RunnerConfig{Naive: true, Schedule: fault.ScheduleClustered}},
	{"interp/plan", fault.RunnerConfig{Schedule: fault.SchedulePlan, Backend: fault.BackendInterp}},
	{"interp/clustered", fault.RunnerConfig{Schedule: fault.ScheduleClustered, Backend: fault.BackendInterp}},
	{"kernel/plan", fault.RunnerConfig{Schedule: fault.SchedulePlan, Backend: fault.BackendKernel}},
	{"kernel/clustered", fault.RunnerConfig{Schedule: fault.ScheduleClustered, Backend: fault.BackendKernel}},
}

func assertEquivalent(t *testing.T, p *sim.Program, stim *sim.Stimulus, monitors []int,
	cls fault.Classifier, jobs []fault.Job) {
	t.Helper()
	var ref *fault.Result
	for _, rc := range runConfigs {
		cfg := rc.cfg
		cfg.Workers = 2
		res, err := fault.RunJobs(p, stim, monitors, cls, jobs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		if cfg.Naive {
			if res.SimulatedCycles != res.ReplayCycles {
				t.Fatalf("%s: naive path simulated %d of %d replay cycles",
					rc.name, res.SimulatedCycles, res.ReplayCycles)
			}
		} else if res.SimulatedCycles > res.ReplayCycles {
			t.Fatalf("%s: incremental path simulated %d > %d replay cycles",
				rc.name, res.SimulatedCycles, res.ReplayCycles)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.TotalRuns != ref.TotalRuns || res.Batches != ref.Batches {
			t.Fatalf("%s: shape differs from reference", rc.name)
		}
		for ff := range ref.FDR {
			if res.Failures[ff] != ref.Failures[ff] || res.Injections[ff] != ref.Injections[ff] ||
				res.FDR[ff] != ref.FDR[ff] {
				t.Fatalf("%s: FF %d = %d/%d failures, reference %d/%d",
					rc.name, ff, res.Failures[ff], res.Injections[ff],
					ref.Failures[ff], ref.Injections[ff])
			}
		}
	}
}

// TestEquivalenceMAC pins the incremental path on the MAC classifier (the
// paper's packet-level criterion, streaming-capable).
func TestEquivalenceMAC(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	jobs := fault.NewPlan(p.NumFFs(), 3, bench.ActiveCycles, 77)
	assertEquivalent(t, p, bench.Stim, bench.Monitors, cls, jobs)
}

// TestEquivalenceMACNoStats covers the criterion variant without the
// statistics readout.
func TestEquivalenceMACNoStats(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, false)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 78)
	assertEquivalent(t, p, bench.Stim, bench.Monitors, cls, jobs)
}

// TestEquivalenceCorpus sweeps every registered scenario — the structured
// DUT families and the random netlist family, under both the exact and the
// MAC classifier (whatever each workload registers).
func TestEquivalenceCorpus(t *testing.T) {
	for _, sc := range corpus.List() {
		sc := sc
		t.Run(sc.ID(), func(t *testing.T) {
			m, err := sc.Materialize(corpus.ScaleSmall, 1)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			jobs := fault.NewPlan(m.NumFFs(), 2, m.Bench.ActiveCycles, 9)
			assertEquivalent(t, m.Program, m.Bench.Stim, m.Bench.Monitors, m.Bench.Classifier, jobs)
		})
	}
}

// TestEquivalenceTMRHardened runs the suite on a TMR-hardened
// materialization of a corpus scenario: the rewrite triples flip-flops and
// inserts majority voters, so the kernel compiler sees the voter's AOI/OAI
// structure and the pruner a changed fanout cone — the hardened netlist
// must classify identically on every backend × schedule combination.
func TestEquivalenceTMRHardened(t *testing.T) {
	sc, err := corpus.Find("mac10ge/loopback")
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	mh, err := sc.MaterializeWith(corpus.ScaleSmall, 1, func(nl *netlist.Netlist) error {
		return circuit.ApplyTMR(nl, []int{0, 1, 2, 3})
	})
	if err != nil {
		t.Fatalf("materialize hardened: %v", err)
	}
	jobs := fault.NewPlan(mh.NumFFs(), 2, mh.Bench.ActiveCycles, 9)
	assertEquivalent(t, mh.Program, mh.Bench.Stim, mh.Bench.Monitors, mh.Bench.Classifier, jobs)
}

// TestEquivalenceEdgeCycles targets the boundary cases: flips at cycle 0,
// at snapshot boundaries (and their neighbours), at the last active cycle
// and at the very last stimulus cycle.
func TestEquivalenceEdgeCycles(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	every := sim.DefaultSnapshotEvery
	edges := []int{0, 1, every - 1, every, every + 1, 2 * every,
		bench.ActiveCycles - 1, bench.Stim.Cycles() - 1}
	var jobs []fault.Job
	for i := 0; i < 3*64; i++ {
		jobs = append(jobs, fault.Job{
			FF:    (i * 7) % p.NumFFs(),
			Cycle: edges[i%len(edges)],
		})
	}
	assertEquivalent(t, p, bench.Stim, bench.Monitors, cls, jobs)
}

// TestEquivalenceSnapshotCadence pins that the snapshot cadence never
// changes results, only cost.
func TestEquivalenceSnapshotCadence(t *testing.T) {
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 13)
	var ref *fault.Result
	for _, every := range []int{1, 3, sim.DefaultSnapshotEvery, 64, 1 << 20} {
		cls := fault.NewMACClassifier(bench, true)
		res, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls, jobs,
			fault.RunnerConfig{SnapshotEvery: every, Workers: 2})
		if err != nil {
			t.Fatalf("cadence %d: %v", every, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for ff := range ref.FDR {
			if res.FDR[ff] != ref.FDR[ff] {
				t.Fatalf("cadence %d changes FDR[%d]: %v vs %v", every, ff, res.FDR[ff], ref.FDR[ff])
			}
		}
	}
}

// TestEquivalenceCheckpointResumeIncremental is the resume half of the
// acceptance criterion: an interrupted incremental clustered campaign
// resumed from its checkpoint matches the uninterrupted naive reference
// bit for bit, and reports the cycles it did not re-simulate as resumed.
func TestEquivalenceCheckpointResumeIncremental(t *testing.T) {
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")

	newCls := func() fault.Classifier { return fault.NewMACClassifier(bench, true) }

	want, err := fault.RunJobs(p, bench.Stim, bench.Monitors, newCls(), jobs,
		fault.RunnerConfig{Naive: true, Schedule: fault.SchedulePlan, ChunkJobs: sim.Lanes})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	// Interrupt the incremental clustered run after two chunks.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ri, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
		ChunkJobs:       sim.Lanes,
		Workers:         2,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1,
		OnProgress: func(pr fault.Progress) {
			if pr.ChunksDone >= 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := ri.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v", err)
	}
	ck, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if got := ck.Schedule; got != string(fault.ScheduleClustered) {
		t.Fatalf("checkpoint schedule %q, want clustered", got)
	}
	if len(ck.Chunks) == 0 || len(ck.Chunks) >= want.Chunks {
		t.Fatalf("interrupt did not land mid-run (%d of %d chunks)", len(ck.Chunks), want.Chunks)
	}

	rr, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		Workers:        2,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	got, err := rr.Run(jobs)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got.ResumedChunks != len(ck.Chunks) {
		t.Fatalf("resumed %d chunks, checkpoint held %d", got.ResumedChunks, len(ck.Chunks))
	}
	sameResult(t, want, got)
	// Resumed chunks contribute no simulated cycles.
	if got.ReplayCycles != int64(want.Batches-got.ResumedChunks)*int64(bench.Stim.Cycles()) {
		t.Fatalf("replay cycles %d do not match %d computed batches",
			got.ReplayCycles, want.Batches-got.ResumedChunks)
	}
}

// TestEquivalenceCheckpointCrossBackend: checkpoints record plan geometry
// and schedule but deliberately not the backend — results are bit-identical
// across backends, so a checkpoint written under one backend must resume
// under the other and still match the uninterrupted naive reference bit for
// bit (a heterogeneous fleet can share one campaign).
func TestEquivalenceCheckpointCrossBackend(t *testing.T) {
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)
	newCls := func() fault.Classifier { return fault.NewMACClassifier(bench, true) }

	want, err := fault.RunJobs(p, bench.Stim, bench.Monitors, newCls(), jobs,
		fault.RunnerConfig{Naive: true, Schedule: fault.SchedulePlan, ChunkJobs: sim.Lanes})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	dirs := []struct {
		name          string
		first, second fault.Backend
	}{
		{"interp-to-kernel", fault.BackendInterp, fault.BackendKernel},
		{"kernel-to-interp", fault.BackendKernel, fault.BackendInterp},
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir.name, func(t *testing.T) {
			ckpt := filepath.Join(t.TempDir(), "campaign.ffr")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ri, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
				ChunkJobs:       sim.Lanes,
				Workers:         2,
				Backend:         dir.first,
				CheckpointPath:  ckpt,
				CheckpointEvery: 1,
				OnProgress: func(pr fault.Progress) {
					if pr.ChunksDone >= 2 {
						cancel()
					}
				},
			})
			if err != nil {
				t.Fatalf("NewRunner: %v", err)
			}
			if _, err := ri.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
				t.Fatalf("interrupted run returned %v", err)
			}
			ck, err := fault.LoadCheckpoint(ckpt)
			if err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			if len(ck.Chunks) == 0 || len(ck.Chunks) >= want.Chunks {
				t.Fatalf("interrupt did not land mid-run (%d of %d chunks)", len(ck.Chunks), want.Chunks)
			}

			rr, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
				ChunkJobs:      sim.Lanes,
				Workers:        2,
				Backend:        dir.second,
				CheckpointPath: ckpt,
				Resume:         true,
			})
			if err != nil {
				t.Fatalf("NewRunner: %v", err)
			}
			got, err := rr.Run(jobs)
			if err != nil {
				t.Fatalf("cross-backend resume: %v", err)
			}
			if got.ResumedChunks != len(ck.Chunks) {
				t.Fatalf("resumed %d chunks, checkpoint held %d", got.ResumedChunks, len(ck.Chunks))
			}
			sameResult(t, want, got)
		})
	}
}

// TestScheduleMismatchRejected: masks are packed per schedule, so resuming a
// clustered checkpoint under plan order (or vice versa) must be refused.
func TestScheduleMismatchRejected(t *testing.T) {
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")

	seed, err := fault.NewRunner(p, bench.Stim, bench.Monitors,
		fault.NewMACClassifier(bench, true),
		fault.RunnerConfig{ChunkJobs: sim.Lanes, CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := seed.Run(jobs); err != nil {
		t.Fatalf("seeding checkpoint: %v", err)
	}

	other, err := fault.NewRunner(p, bench.Stim, bench.Monitors,
		fault.NewMACClassifier(bench, true),
		fault.RunnerConfig{ChunkJobs: sim.Lanes, CheckpointPath: ckpt,
			Resume: true, Schedule: fault.SchedulePlan})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := other.Run(jobs); !errors.Is(err, fault.ErrCheckpointMismatch) {
		t.Fatalf("plan-order resume of a clustered checkpoint returned %v", err)
	}
}

// TestLegacyScheduleAdoptedOnResume: a plan-order checkpoint — including a
// seed-era file whose header predates the schedule field — must resume on a
// default-configured runner: with no explicit schedule preference the runner
// adopts the checkpoint's packing instead of rejecting it, and the finished
// campaign still matches the reference bit for bit.
func TestLegacyScheduleAdoptedOnResume(t *testing.T) {
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")

	newCls := func() fault.Classifier { return fault.NewMACClassifier(bench, true) }
	want, err := fault.RunJobs(p, bench.Stim, bench.Monitors, newCls(), jobs,
		fault.RunnerConfig{Naive: true, Schedule: fault.SchedulePlan, ChunkJobs: sim.Lanes})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	// Interrupt an explicitly plan-order run to get a partial checkpoint.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ri, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
		ChunkJobs:       sim.Lanes,
		Workers:         1,
		Schedule:        fault.SchedulePlan,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1,
		OnProgress: func(pr fault.Progress) {
			if pr.ChunksDone >= 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := ri.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v", err)
	}

	// Rewrite the header as a seed-era file: no schedule recorded.
	ck, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if len(ck.Chunks) == 0 || len(ck.Chunks) >= want.Chunks {
		t.Fatalf("interrupt did not land mid-run (%d of %d chunks)", len(ck.Chunks), want.Chunks)
	}
	ck.Schedule = ""
	if err := fault.SaveCheckpoint(ckpt, ck); err != nil {
		t.Fatalf("rewriting checkpoint: %v", err)
	}

	// A default-configured runner (no explicit schedule) adopts plan order.
	rr, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		Workers:        2,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	got, err := rr.Run(jobs)
	if err != nil {
		t.Fatalf("legacy resume rejected: %v", err)
	}
	if got.ResumedChunks != len(ck.Chunks) {
		t.Fatalf("resumed %d chunks, checkpoint held %d", got.ResumedChunks, len(ck.Chunks))
	}
	sameResult(t, want, got)

	// The finished checkpoint keeps the adopted schedule, not the default.
	final, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if final.Schedule != string(fault.SchedulePlan) {
		t.Fatalf("final checkpoint schedule %q, want adopted %q", final.Schedule, fault.SchedulePlan)
	}
}

// TestRunnerValidatesIncrementalConfig covers the new config surface.
func TestRunnerValidatesIncrementalConfig(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)

	if _, err := fault.NewRunner(p, bench.Stim, nil, cls, fault.RunnerConfig{}); err == nil {
		t.Fatal("runner accepted an empty monitor set")
	}
	if _, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls,
		fault.RunnerConfig{Schedule: "zigzag"}); err == nil {
		t.Fatal("runner accepted an unknown schedule")
	}
	if _, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls,
		fault.RunnerConfig{SnapshotEvery: -1}); err == nil {
		t.Fatal("runner accepted a negative snapshot cadence")
	}
	// An unfilled snapshot set must be rejected up front.
	empty := sim.NewSnapshots(p, bench.Stim, 8)
	if _, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls,
		fault.RunnerConfig{Snapshots: empty}); err == nil {
		t.Fatal("runner accepted incomplete snapshots")
	}
	// A cadence conflicting with supplied snapshots must be rejected.
	filled := sim.NewSnapshots(p, bench.Stim, 8)
	e := sim.NewEngine(p)
	sim.Run(e, bench.Stim, sim.RunConfig{Snapshots: filled})
	if _, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls,
		fault.RunnerConfig{Snapshots: filled, SnapshotEvery: 16}); err == nil {
		t.Fatal("runner accepted a conflicting snapshot cadence")
	}
	if _, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls,
		fault.RunnerConfig{Snapshots: filled, SnapshotEvery: 8}); err != nil {
		t.Fatalf("matching cadence rejected: %v", err)
	}
}
