package fault

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sim"
)

// Distributed-campaign support: the coordinator/worker fabric
// (internal/fabric) splits a plan along the same deterministic chunk
// geometry a single-node Runner uses, leases chunks to remote workers, and
// merges their per-chunk failure masks back into the exact checkpoint
// format and Result a single-node run would have produced. Everything here
// is a re-exposure of existing Runner internals at chunk granularity —
// no new simulation semantics, so the bit-identical guarantees of the
// equivalence suite carry over.

// Shards is the exported deterministic chunk geometry of a plan: the same
// splitting RunContext applies internally, shared with remote coordinators
// so every node agrees which jobs chunk ci covers.
type Shards struct {
	s sharding
}

// PlanShards computes the chunk geometry for a plan of totalJobs jobs with
// the given chunk size (0 means DefaultChunkJobs; rounded up to whole
// 64-lane batches).
func PlanShards(totalJobs, chunkJobs int) (Shards, error) {
	sh, err := newSharding(totalJobs, chunkJobs)
	return Shards{s: sh}, err
}

// TotalJobs is the plan length.
func (s Shards) TotalJobs() int { return s.s.totalJobs }

// ChunkJobs is the chunk size in jobs (a whole number of 64-lane batches).
func (s Shards) ChunkJobs() int { return s.s.chunkJobs }

// NumChunks is the total chunk count.
func (s Shards) NumChunks() int { return s.s.numChunks }

// ChunkRange returns the half-open job interval of chunk ci.
func (s Shards) ChunkRange(ci int) (lo, hi int) { return s.s.chunkRange(ci) }

// ChunkBatches returns the number of 64-lane batches in chunk ci — the
// expected failure-mask count of a completed chunk.
func (s Shards) ChunkBatches(ci int) int { return s.s.chunkBatches(ci) }

// Schedule returns the batch-packing schedule the runner's masks are
// recorded under (the resolved default when the config left it empty).
func (r *Runner) Schedule() Schedule { return r.schedule }

// ChunkJobs returns the runner's resolved chunk size.
func (r *Runner) ChunkJobs() int {
	sh, _ := newSharding(0, r.cfg.ChunkJobs)
	return sh.chunkJobs
}

// validateJobs bounds-checks a plan against the program, stimulus and fault
// model (which defines the target index space — flip-flops, or combinational
// cells for SET).
func (r *Runner) validateJobs(jobs []Job) error {
	numTargets := r.model.NumTargets(r.p)
	noun := "FF"
	if !r.model.TargetsFFs() {
		noun = "comb target"
	}
	for _, j := range jobs {
		if j.FF < 0 || j.FF >= numTargets {
			return fmt.Errorf("fault: job targets %s %d of %d", noun, j.FF, numTargets)
		}
		if j.Cycle < 0 || j.Cycle >= r.stim.Cycles() {
			return fmt.Errorf("fault: job at cycle %d of %d", j.Cycle, r.stim.Cycles())
		}
	}
	return nil
}

// RunChunks simulates exactly the given shard chunks of the plan and
// returns their per-batch failure masks, keyed by chunk index — the unit
// of work a fabric worker executes under one lease. The masks are
// bit-identical to what a full single-node Run would record for the same
// chunks: same golden trace, same schedule permutation, same incremental
// fast-forward path.
//
// On context cancellation the chunks already finished are returned
// alongside an error wrapping ErrInterrupted, so callers can still report
// completed work before abandoning the lease.
func (r *Runner) RunChunks(ctx context.Context, jobs []Job, chunkIdx []int) (map[int][]uint64, error) {
	if err := r.validateJobs(jobs); err != nil {
		return nil, err
	}
	sh, err := newSharding(len(jobs), r.cfg.ChunkJobs)
	if err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(chunkIdx))
	for _, ci := range chunkIdx {
		if ci < 0 || ci >= sh.numChunks {
			return nil, fmt.Errorf("fault: chunk %d of %d", ci, sh.numChunks)
		}
		if seen[ci] {
			return nil, fmt.Errorf("fault: chunk %d requested twice", ci)
		}
		seen[ci] = true
	}
	golden, err := r.Golden()
	if err != nil {
		return nil, err
	}
	var snaps *sim.Snapshots
	if !r.cfg.Naive {
		snaps = r.snapshots()
	}
	order, err := scheduleOrder(jobs, r.schedule)
	if err != nil {
		return nil, err
	}
	// Model-dependent precomputation, shared read-only by all workers. The
	// SET effect table derives from the golden run alone, so every fabric
	// worker computes identical effects for its leased chunks.
	setFX := r.setEffects(jobs)
	if r.model.Kind == KindMBU {
		r.ffClusters()
	}

	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(chunkIdx) {
		workers = len(chunkIdx)
	}

	type chunkResult struct {
		index int
		masks []uint64
	}
	chunks := make(chan int)
	results := make(chan chunkResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := newWorkerState(r, snaps, setFX)
			for ci := range chunks {
				masks, _ := r.runChunk(ws, golden, jobs, order, sh, ci)
				results <- chunkResult{index: ci, masks: masks}
			}
		}()
	}
	go func() {
		defer close(chunks)
		for _, ci := range chunkIdx {
			select {
			case <-ctx.Done():
				return
			case chunks <- ci:
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	done := make(map[int][]uint64, len(chunkIdx))
	for cr := range results {
		done[cr.index] = cr.masks
	}
	if len(done) < len(chunkIdx) {
		return done, fmt.Errorf("%w after %d of %d chunks: %v",
			ErrInterrupted, len(done), len(chunkIdx), context.Cause(ctx))
	}
	return done, nil
}

// MergeChunks folds a complete set of per-chunk failure masks — every
// chunk of the plan, e.g. gathered from distributed workers — into the
// final campaign Result, exactly as a single-node Run would have. The fold
// is order-independent, so it does not matter which worker produced which
// chunk or in what order they arrived.
func (r *Runner) MergeChunks(jobs []Job, done map[int][]uint64) (*Result, error) {
	if err := r.validateJobs(jobs); err != nil {
		return nil, err
	}
	sh, err := newSharding(len(jobs), r.cfg.ChunkJobs)
	if err != nil {
		return nil, err
	}
	if len(done) != sh.numChunks {
		return nil, fmt.Errorf("fault: merging %d of %d chunks", len(done), sh.numChunks)
	}
	for ci, masks := range done {
		if ci < 0 || ci >= sh.numChunks {
			return nil, fmt.Errorf("fault: merging unknown chunk %d of %d", ci, sh.numChunks)
		}
		if len(masks) != sh.chunkBatches(ci) {
			return nil, fmt.Errorf("fault: chunk %d carries %d batch masks, want %d",
				ci, len(masks), sh.chunkBatches(ci))
		}
	}
	order, err := scheduleOrder(jobs, r.schedule)
	if err != nil {
		return nil, err
	}
	return r.merge(jobs, order, sh, done, 0), nil
}

// CampaignCheckpoint assembles the versioned checkpoint a campaign with
// the given completed chunks would persist — the coordinator writes merged
// worker results through this, so distributed checkpoints are loadable by
// every existing single-node consumer and fingerprint-comparable against
// single-node runs.
func (r *Runner) CampaignCheckpoint(jobs []Job, done map[int][]uint64) (*Checkpoint, error) {
	golden, err := r.Golden()
	if err != nil {
		return nil, err
	}
	sh, err := newSharding(len(jobs), r.cfg.ChunkJobs)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{
		PlanHash:       PlanFingerprint(jobs),
		GoldenHash:     golden.Fingerprint(),
		ClassifierHash: r.classifierFingerprint(),
		Schedule:       string(r.schedule),
		Model:          r.model.String(),
		TotalJobs:      sh.totalJobs,
		ChunkJobs:      sh.chunkJobs,
		NumChunks:      sh.numChunks,
		Chunks:         done,
	}, nil
}

// sortedChunkIndices returns the completed chunk indices in ascending
// order, for canonical iteration.
func sortedChunkIndices(chunks map[int][]uint64) []int {
	idx := make([]int, 0, len(chunks))
	for ci := range chunks {
		idx = append(idx, ci)
	}
	sort.Ints(idx)
	return idx
}
