package fault_test

import (
	"bytes"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// goldenTrace runs the small MAC fixture cleanly and returns its trace.
func goldenTrace(t *testing.T) *sim.Trace {
	t.Helper()
	p, bench := smallMAC(t)
	e := sim.NewEngine(p)
	golden, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})
	return golden
}

// A fault-free trace must never be classified as failing, whatever the used
// mask says.
func TestMACClassifierGoldenIsClean(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	for _, checkStats := range []bool{false, true} {
		cls := fault.NewMACClassifier(bench, checkStats)
		for _, used := range []uint64{0, 1, 0xff, ^uint64(0)} {
			if got := cls.FailingLanes(golden, golden, used); got != 0 {
				t.Fatalf("checkStats=%v used=%#x: golden classified failing: %#x", checkStats, used, got)
			}
		}
	}
}

// faultyTrace simulates one 64-lane batch of real injections and returns the
// faulty trace plus the jobs, one per lane.
func faultyTrace(t *testing.T, seed int64) (*sim.Trace, []fault.Job) {
	t.Helper()
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 1, bench.ActiveCycles, seed)[:sim.Lanes]
	e := sim.NewEngine(p)
	faulty, _ := sim.Run(e, bench.Stim, sim.RunConfig{
		Monitors: bench.Monitors,
		PreEval: func(c int) {
			for lane, j := range jobs {
				if j.Cycle == c {
					e.FlipFF(j.FF, 1<<uint(lane))
				}
			}
		},
	})
	return faulty, jobs
}

// The used mask gates classification: lanes outside it must never be
// reported, and restricting the mask must restrict the failing set.
func TestMACClassifierRespectsUsedMask(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	faulty, _ := faultyTrace(t, 5)
	cls := fault.NewMACClassifier(bench, true)

	all := cls.FailingLanes(golden, faulty, ^uint64(0))
	if all == 0 {
		t.Fatal("fixture produced no failing lanes; classifier untestable")
	}
	for _, used := range []uint64{0, 1, 0xffff, 0xaaaaaaaaaaaaaaaa} {
		got := cls.FailingLanes(golden, faulty, used)
		if got&^used != 0 {
			t.Fatalf("used=%#x: failing lanes %#x outside used mask", used, got)
		}
		if got != all&used {
			t.Fatalf("used=%#x: failing = %#x, want %#x (restriction of full mask)", used, got, all&used)
		}
	}
}

// Classification must be pure: the same traces always produce the same mask,
// including across classifier instances (the golden unpacking is cached but
// must not be stateful beyond that).
func TestMACClassifierDeterministic(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	faulty, _ := faultyTrace(t, 6)

	cls := fault.NewMACClassifier(bench, true)
	first := cls.FailingLanes(golden, faulty, ^uint64(0))
	for i := 0; i < 3; i++ {
		if got := cls.FailingLanes(golden, faulty, ^uint64(0)); got != first {
			t.Fatalf("call %d: %#x, first %#x", i, got, first)
		}
	}
	fresh := fault.NewMACClassifier(bench, true)
	if got := fresh.FailingLanes(golden, faulty, ^uint64(0)); got != first {
		t.Fatalf("fresh classifier: %#x, want %#x", got, first)
	}
}

// Every lane the classifier flags must show a concrete applicative
// difference (packet count, payload, error flag, or statistics readout), and
// every unflagged used lane must not.
func TestMACClassifierAgreesWithPacketComparison(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	faulty, _ := faultyTrace(t, 7)
	goldenPkts := bench.LanePackets(golden, 0)
	goldenStats := bench.LaneStats(golden, 0)

	cls := fault.NewMACClassifier(bench, true)
	failing := cls.FailingLanes(golden, faulty, ^uint64(0))
	for lane := 0; lane < sim.Lanes; lane++ {
		pkts := bench.LanePackets(faulty, lane)
		stats := bench.LaneStats(faulty, lane)
		wantFail := len(pkts) != len(goldenPkts)
		if !wantFail {
			for i := range pkts {
				if pkts[i].Err != goldenPkts[i].Err || !bytes.Equal(pkts[i].Payload, goldenPkts[i].Payload) {
					wantFail = true
					break
				}
			}
		}
		if !wantFail && !bytes.Equal(stats, goldenStats) {
			wantFail = true
		}
		if got := failing>>uint(lane)&1 == 1; got != wantFail {
			t.Fatalf("lane %d: classified fail=%v, packet comparison says %v", lane, got, wantFail)
		}
	}
}

// The failure-criterion fingerprint must distinguish configurations and be
// stable across instances.
func TestMACClassifierConfigFingerprint(t *testing.T) {
	_, bench := smallMAC(t)
	strict := fault.NewMACClassifier(bench, true)
	lax := fault.NewMACClassifier(bench, false)
	if strict.ConfigFingerprint() == lax.ConfigFingerprint() {
		t.Fatal("checkStats variants share a fingerprint")
	}
	if strict.ConfigFingerprint() != fault.NewMACClassifier(bench, true).ConfigFingerprint() {
		t.Fatal("fingerprint not stable across instances")
	}
	if strict.ConfigFingerprint() == 0 || lax.ConfigFingerprint() == 0 {
		t.Fatal("fingerprint must be nonzero (0 means anonymous classifier)")
	}
}

// CheckStats only widens the failure criterion: every lane failing without
// the statistics readout also fails with it.
func TestMACClassifierCheckStatsWidens(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	faulty, _ := faultyTrace(t, 8)

	noStats := fault.NewMACClassifier(bench, false).FailingLanes(golden, faulty, ^uint64(0))
	withStats := fault.NewMACClassifier(bench, true).FailingLanes(golden, faulty, ^uint64(0))
	if noStats&^withStats != 0 {
		t.Fatalf("lanes %#x fail without stats but pass with stats", noStats&^withStats)
	}
}

// ExactClassifier: a clean trace never fails, any monitored divergence in
// the check window fails, divergence before CheckFrom is ignored, and the
// used mask gates the result.
func TestExactClassifier(t *testing.T) {
	golden := goldenTrace(t)
	faulty, _ := faultyTrace(t, 8)
	cls := &fault.ExactClassifier{}

	for _, used := range []uint64{0, 1, ^uint64(0)} {
		if got := cls.FailingLanes(golden, golden, used); got != 0 {
			t.Fatalf("used=%#x: golden classified failing: %#x", used, got)
		}
	}
	all := cls.FailingLanes(golden, faulty, ^uint64(0))
	if all == 0 {
		t.Fatal("fixture produced no divergent lanes; classifier untestable")
	}
	for _, used := range []uint64{1, 0xffff, 0xaaaaaaaaaaaaaaaa} {
		if got := cls.FailingLanes(golden, faulty, used); got != all&used {
			t.Fatalf("used=%#x: failing = %#x, want %#x", used, got, all&used)
		}
	}
	// A window starting past the end of the trace sees no divergence.
	late := &fault.ExactClassifier{CheckFrom: golden.Cycles()}
	if got := late.FailingLanes(golden, faulty, ^uint64(0)); got != 0 {
		t.Fatalf("empty check window still fails lanes %#x", got)
	}
	// Exact classification is at least as strict as the MAC criterion: the
	// exact mask must cover every applicatively failing lane.
	_, bench := smallMAC(t)
	mac := fault.NewMACClassifier(bench, true).FailingLanes(golden, faulty, ^uint64(0))
	if mac&^all != 0 {
		t.Fatalf("lanes %#x fail applicatively but match golden exactly", mac&^all)
	}
}

// The exact-classifier fingerprint must distinguish check windows and be
// stable across instances.
func TestExactClassifierConfigFingerprint(t *testing.T) {
	a := &fault.ExactClassifier{CheckFrom: 0}
	b := &fault.ExactClassifier{CheckFrom: 10}
	if a.ConfigFingerprint() == b.ConfigFingerprint() {
		t.Fatal("check windows share a fingerprint")
	}
	if a.ConfigFingerprint() != (&fault.ExactClassifier{}).ConfigFingerprint() {
		t.Fatal("fingerprint not stable across instances")
	}
	if a.ConfigFingerprint() == 0 || b.ConfigFingerprint() == 0 {
		t.Fatal("fingerprint must be nonzero")
	}
}

// streamOverTrace replays a full faulty trace through a classifier stream
// starting at cycle from and returns the final confirmed-failed mask.
func streamOverTrace(sc fault.StreamClassifier, golden, faulty *sim.Trace, used uint64, from int) uint64 {
	st := sc.StartStream(golden, used, from)
	var failed uint64
	for c := from; c < golden.Cycles(); c++ {
		failed = st.Observe(c, golden.Row(c), faulty.Row(c))
	}
	return failed
}

// Streaming confirmations must be sound: every stream-confirmed lane is also
// failed by the trace-based verdict, for both classifiers and from every
// starting cycle (the fast-forward entry points).
func TestStreamConfirmationsAreSound(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	for _, seed := range []int64{3, 4, 5} {
		faulty, _ := faultyTrace(t, seed)
		for _, checkStats := range []bool{false, true} {
			mac := fault.NewMACClassifier(bench, checkStats)
			verdict := mac.FailingLanes(golden, faulty, ^uint64(0))
			for _, from := range []int{0, 8, 32} {
				confirmed := streamOverTrace(mac, golden, faulty, ^uint64(0), from)
				if confirmed&^verdict != 0 {
					t.Fatalf("seed %d stats=%v from=%d: stream confirmed non-failing lanes %#x",
						seed, checkStats, from, confirmed&^verdict)
				}
			}
		}
	}
}

// For the exact criterion, streaming over the whole trace is not just sound
// but complete: any in-window divergence is a failure, so the final stream
// mask equals the trace-based verdict exactly.
func TestExactStreamMatchesVerdict(t *testing.T) {
	golden := goldenTrace(t)
	for _, seed := range []int64{6, 7} {
		faulty, _ := faultyTrace(t, seed)
		for _, from := range []int{0, 5} {
			cls := &fault.ExactClassifier{CheckFrom: from}
			verdict := cls.FailingLanes(golden, faulty, ^uint64(0))
			confirmed := streamOverTrace(cls, golden, faulty, ^uint64(0), 0)
			if confirmed != verdict {
				t.Fatalf("seed %d CheckFrom=%d: stream %#x, verdict %#x", seed, from, confirmed, verdict)
			}
		}
	}
}

// The used mask must gate streaming confirmations like it gates the
// trace-based verdict.
func TestStreamRespectsUsedMask(t *testing.T) {
	_, bench := smallMAC(t)
	golden := goldenTrace(t)
	faulty, _ := faultyTrace(t, 8)
	mac := fault.NewMACClassifier(bench, true)
	const used = uint64(0xF0F0)
	if got := streamOverTrace(mac, golden, faulty, used, 0); got&^used != 0 {
		t.Fatalf("stream confirmed unused lanes: %#x", got&^used)
	}
	cls := &fault.ExactClassifier{}
	if got := streamOverTrace(cls, golden, faulty, used, 0); got&^used != 0 {
		t.Fatalf("exact stream confirmed unused lanes: %#x", got&^used)
	}
}
