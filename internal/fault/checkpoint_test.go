package fault_test

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

func sampleCheckpoint() *fault.Checkpoint {
	return &fault.Checkpoint{
		PlanHash:       0xdeadbeefcafe,
		GoldenHash:     0x1234567890ab,
		ClassifierHash: 0x42,
		Schedule:       string(fault.ScheduleClustered),
		TotalJobs:      5 * sim.Lanes,
		ChunkJobs:      2 * sim.Lanes,
		NumChunks:      3,
		Chunks: map[int][]uint64{
			0: {0xffffffffffffffff, 0},
			2: {42}, // tail chunk: one batch
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.ffr")
	want := sampleCheckpoint()
	if err := fault.SaveCheckpoint(path, want); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	got, err := fault.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip lost data:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestCheckpointSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.ffr")
	if err := fault.SaveCheckpoint(path, sampleCheckpoint()); err != nil {
		t.Fatalf("first save: %v", err)
	}
	// Overwrite with more chunks; no temp litter may remain.
	c := sampleCheckpoint()
	c.Chunks[1] = []uint64{1, 2}
	if err := fault.SaveCheckpoint(path, c); err != nil {
		t.Fatalf("second save: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "ck.ffr" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory litter after save: %v", names)
	}
	got, err := fault.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadCheckpoint: %v", err)
	}
	if len(got.Chunks) != 3 {
		t.Fatalf("overwrite lost chunks: %+v", got.Chunks)
	}
}

func TestCheckpointLoadMissingFile(t *testing.T) {
	_, err := fault.LoadCheckpoint(filepath.Join(t.TempDir(), "absent.ffr"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file: %v, want fs.ErrNotExist", err)
	}
}

func TestCheckpointRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	goodHeader := func(version int) string {
		return fmt.Sprintf(`{"magic":"repro/fault campaign checkpoint","version":%d,`+
			`"plan_hash":"1","golden_hash":"2","classifier_hash":"3",`+
			`"total_jobs":64,"chunk_jobs":64,"num_chunks":1,"completed_chunks":0}`,
			version)
	}
	gobOf := func(m map[int][]uint64) []byte {
		var sb strings.Builder
		if err := gob.NewEncoder(&sb).Encode(m); err != nil {
			t.Fatal(err)
		}
		return []byte(sb.String())
	}

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, fault.ErrCheckpointCorrupt},
		{"no-newline", []byte(`{"magic":"x"}`), fault.ErrCheckpointCorrupt},
		{"not-json", []byte("garbage\n"), fault.ErrCheckpointCorrupt},
		{"wrong-magic", append([]byte(`{"magic":"something else","version":1,"plan_hash":"0","golden_hash":"0"}`+"\n"), gobOf(nil)...), fault.ErrCheckpointCorrupt},
		{"missing-classifier-hash", append([]byte(`{"magic":"repro/fault campaign checkpoint","version":1,"plan_hash":"1","golden_hash":"2","total_jobs":64,"chunk_jobs":64,"num_chunks":1}`+"\n"), gobOf(nil)...), fault.ErrCheckpointCorrupt},
		{"future-version", append([]byte(goodHeader(99)+"\n"), gobOf(nil)...), fault.ErrCheckpointVersion},
		{"truncated-payload", []byte(goodHeader(1) + "\n"), fault.ErrCheckpointCorrupt},
		{"payload-garbage", append([]byte(goodHeader(1)+"\n"), 'x', 'y', 'z'), fault.ErrCheckpointCorrupt},
		{"chunk-out-of-range", append([]byte(goodHeader(1)+"\n"), gobOf(map[int][]uint64{5: {0}})...), fault.ErrCheckpointCorrupt},
		{"mask-length-wrong", append([]byte(goodHeader(1)+"\n"), gobOf(map[int][]uint64{0: {0, 0, 0}})...), fault.ErrCheckpointCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := write(tc.name, tc.data)
			_, err := fault.LoadCheckpoint(p)
			if !errors.Is(err, tc.want) {
				t.Fatalf("LoadCheckpoint(%s) = %v, want %v", tc.name, err, tc.want)
			}
		})
	}
}

// A pre-schedule (seed-era) header without the schedule field must still
// load, carrying the empty schedule that the runner interprets as plan
// order — keeping old plan-order checkpoints resumable.
func TestCheckpointLoadsLegacyHeaderWithoutSchedule(t *testing.T) {
	hdr := `{"magic":"repro/fault campaign checkpoint","version":1,` +
		`"plan_hash":"1","golden_hash":"2","classifier_hash":"3",` +
		`"total_jobs":64,"chunk_jobs":64,"num_chunks":1,"completed_chunks":0}`
	var sb strings.Builder
	if err := gob.NewEncoder(&sb).Encode(map[int][]uint64(nil)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "legacy.ffr")
	if err := os.WriteFile(p, append([]byte(hdr+"\n"), sb.String()...), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, err := fault.LoadCheckpoint(p)
	if err != nil {
		t.Fatalf("legacy checkpoint rejected: %v", err)
	}
	if ck.Schedule != "" {
		t.Fatalf("legacy checkpoint schedule %q, want empty", ck.Schedule)
	}
}

func TestCheckpointRejectsBadGeometry(t *testing.T) {
	// ChunkJobs not a multiple of the lane count can never have been
	// written by the runner; a doctored header must not load.
	hdr := `{"magic":"repro/fault campaign checkpoint","version":1,` +
		`"plan_hash":"1","golden_hash":"2","classifier_hash":"3",` +
		`"total_jobs":100,"chunk_jobs":70,"num_chunks":2,"completed_chunks":0}`
	var sb strings.Builder
	if err := gob.NewEncoder(&sb).Encode(map[int][]uint64(nil)); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(t.TempDir(), "geom.ffr")
	if err := os.WriteFile(p, append([]byte(hdr+"\n"), sb.String()...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fault.LoadCheckpoint(p); !errors.Is(err, fault.ErrCheckpointCorrupt) {
		t.Fatalf("bad geometry loaded: %v", err)
	}
}

func TestPlanFingerprint(t *testing.T) {
	a := fault.NewPlan(5, 3, 50, 42)
	b := fault.NewPlan(5, 3, 50, 42)
	if fault.PlanFingerprint(a) != fault.PlanFingerprint(b) {
		t.Fatal("identical plans fingerprint differently")
	}
	c := fault.NewPlan(5, 3, 50, 43)
	if fault.PlanFingerprint(a) == fault.PlanFingerprint(c) {
		t.Fatal("different plans share a fingerprint")
	}
	// Order matters: a plan is not a multiset.
	d := append([]fault.Job(nil), a...)
	d[0], d[1] = d[1], d[0]
	if fault.PlanFingerprint(a) == fault.PlanFingerprint(d) {
		t.Fatal("reordered plan shares a fingerprint")
	}
	if fault.PlanFingerprint(nil) == fault.PlanFingerprint(a[:1]) {
		t.Fatal("empty and single-job plans collide")
	}
}
