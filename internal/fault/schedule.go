package fault

import "fmt"

// Schedule selects how an injection plan's jobs are packed into 64-lane
// batches. The packing never changes campaign results — the merge stage maps
// every lane back to its job — but it decides how much the incremental
// engine saves: golden fast-forward skips everything before a batch's
// earliest injection cycle, so a batch spanning a narrow cycle window skips
// nearly the whole shared prefix, while a batch mixing cycle-0 and late
// injections skips nothing.
type Schedule string

const (
	// ScheduleClustered packs jobs in ascending injection-cycle order, so
	// every batch covers a narrow cycle window. This is the default.
	ScheduleClustered Schedule = "clustered"
	// SchedulePlan packs jobs in plan order — the naive layout, and the
	// layout of checkpoints written before schedules existed.
	SchedulePlan Schedule = "plan"
)

// valid reports whether s names a known schedule ("" selects the default).
func (s Schedule) valid() bool {
	return s == "" || s == ScheduleClustered || s == SchedulePlan
}

// normalize resolves the runner-config zero value to the default schedule.
func (s Schedule) normalize() Schedule {
	if s == "" {
		return ScheduleClustered
	}
	return s
}

// normalizeCheckpointSchedule resolves the schedule recorded in a
// checkpoint. Files written before the field existed carry "" and were
// packed in plan order.
func normalizeCheckpointSchedule(s string) Schedule {
	if s == "" {
		return SchedulePlan
	}
	return Schedule(s)
}

// scheduleOrder returns the lane-packing permutation for a plan: scheduled
// position i carries job order[i]. A nil return means the identity (plan
// order). The permutation is a pure, deterministic function of (jobs,
// schedule) — resumes recompute it, so checkpointed masks stay aligned.
func scheduleOrder(jobs []Job, s Schedule) ([]int, error) {
	switch s.normalize() {
	case SchedulePlan:
		return nil, nil
	case ScheduleClustered:
		// Stable counting sort by injection cycle: plans are large (FFs ×
		// injections) and cycles are dense, so this is O(jobs + cycles)
		// and keeps equal-cycle jobs in plan order.
		maxCycle := 0
		for _, j := range jobs {
			if j.Cycle > maxCycle {
				maxCycle = j.Cycle
			}
		}
		counts := make([]int, maxCycle+2)
		for _, j := range jobs {
			counts[j.Cycle+1]++
		}
		for c := 1; c < len(counts); c++ {
			counts[c] += counts[c-1]
		}
		order := make([]int, len(jobs))
		for i, j := range jobs {
			order[counts[j.Cycle]] = i
			counts[j.Cycle]++
		}
		return order, nil
	default:
		return nil, fmt.Errorf("fault: unknown schedule %q", s)
	}
}

// jobIndex maps a scheduled position to its plan index.
func jobIndex(order []int, pos int) int {
	if order == nil {
		return pos
	}
	return order[pos]
}
