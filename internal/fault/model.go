package fault

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Model describes the physical fault a campaign injects. The zero value is
// the paper's reference model — a single-event upset flipping one flip-flop
// for one cycle over the full active window — and every other model reuses
// the same Job/plan/runner machinery:
//
//   - SEU: flip the target flip-flop once at the job's cycle.
//   - MBU: flip the target flip-flop and its Size-1 spatially nearest
//     neighbours (netlist.FFProximityClusters) in the same cycle.
//   - Stuck-at-0/1: force the target flip-flop to 0/1 for Duration
//     consecutive cycles starting at the job's cycle (clamped to the end of
//     the stimulus).
//   - SET: pulse the target combinational cell's output for exactly one
//     evaluation. The transient latches only where a downstream flip-flop
//     samples it that cycle (applied as state flips on the following
//     cycle), and glitches the monitored outputs it reaches for the pulse
//     cycle itself. SET jobs index combinational targets
//     (sim.Program.NumCombTargets), not flip-flops.
//
// Any model may additionally be windowed: WindowStart/WindowEnd restrict
// plan sampling to a fraction of the active window, modelling injection
// conditioned on a workload phase. The window is a plan-time property;
// execution is identical.
//
// Models are part of a campaign's identity: checkpoints record the
// canonical String form and refuse to resume under a different model.
type Model struct {
	// Kind selects the fault mechanism; "" means KindSEU.
	Kind ModelKind
	// Size is the MBU cluster size (2–4); 0 elsewhere.
	Size int
	// Duration is the stuck-at hold time in cycles (>= 1); 0 elsewhere.
	Duration int
	// WindowStart and WindowEnd bound plan sampling to the
	// [WindowStart, WindowEnd) fraction of the active window; (0, 0) means
	// the full window.
	WindowStart, WindowEnd float64
}

// ModelKind names a fault mechanism.
type ModelKind string

// Fault mechanisms.
const (
	KindSEU    ModelKind = "seu"
	KindMBU    ModelKind = "mbu"
	KindStuck0 ModelKind = "stuck0"
	KindStuck1 ModelKind = "stuck1"
	KindSET    ModelKind = "set"
)

// ModelKinds lists every fault mechanism in canonical order.
func ModelKinds() []ModelKind {
	return []ModelKind{KindSEU, KindMBU, KindStuck0, KindStuck1, KindSET}
}

// normalize fills the zero-value defaults in: empty kind is SEU, an MBU
// without a size flips 2 flip-flops, a stuck-at without a duration holds
// for 1 cycle, and a zero window is the full active window.
func (m Model) normalize() Model {
	if m.Kind == "" {
		m.Kind = KindSEU
	}
	if m.Kind == KindMBU && m.Size == 0 {
		m.Size = 2
	}
	if (m.Kind == KindStuck0 || m.Kind == KindStuck1) && m.Duration == 0 {
		m.Duration = 1
	}
	if m.WindowStart == 0 && m.WindowEnd == 0 {
		m.WindowEnd = 1
	}
	return m
}

// Validate rejects malformed models.
func (m Model) Validate() error {
	n := m.normalize()
	switch n.Kind {
	case KindSEU, KindMBU, KindStuck0, KindStuck1, KindSET:
	default:
		return fmt.Errorf("fault: unknown model kind %q", m.Kind)
	}
	if n.Kind == KindMBU {
		if n.Size < 2 || n.Size > 4 {
			return fmt.Errorf("fault: MBU cluster size %d out of [2,4]", n.Size)
		}
	} else if m.Size != 0 {
		return fmt.Errorf("fault: model %q does not take a cluster size", n.Kind)
	}
	if n.Kind == KindStuck0 || n.Kind == KindStuck1 {
		if n.Duration < 1 {
			return fmt.Errorf("fault: stuck-at duration %d < 1", n.Duration)
		}
	} else if m.Duration != 0 {
		return fmt.Errorf("fault: model %q does not take a duration", n.Kind)
	}
	if n.WindowStart < 0 || n.WindowEnd > 1 || n.WindowStart >= n.WindowEnd {
		return fmt.Errorf("fault: injection window [%g,%g) out of order or outside [0,1]",
			n.WindowStart, n.WindowEnd)
	}
	return nil
}

// String renders the canonical form parsed by ParseModel: the kind, a
// parameter where the kind takes one ("mbu:3", "stuck0:8"), and an
// "@start-end" suffix when windowed ("seu@0.25-0.75").
func (m Model) String() string {
	n := m.normalize()
	var b strings.Builder
	b.WriteString(string(n.Kind))
	switch n.Kind {
	case KindMBU:
		fmt.Fprintf(&b, ":%d", n.Size)
	case KindStuck0, KindStuck1:
		fmt.Fprintf(&b, ":%d", n.Duration)
	}
	if n.WindowStart != 0 || n.WindowEnd != 1 {
		fmt.Fprintf(&b, "@%g-%g", n.WindowStart, n.WindowEnd)
	}
	return b.String()
}

// ParseModel resolves a -fault-model flag value. The empty string means the
// SEU reference model; otherwise the syntax is
// kind[:param][@start-end] — e.g. "seu", "mbu:3", "stuck0:8",
// "set@0.5-1". The result is validated.
func ParseModel(s string) (Model, error) {
	var m Model
	rest := strings.TrimSpace(strings.ToLower(s))
	if at := strings.IndexByte(rest, '@'); at >= 0 {
		win := rest[at+1:]
		rest = rest[:at]
		lohi := strings.SplitN(win, "-", 2)
		if len(lohi) != 2 {
			return Model{}, fmt.Errorf("fault: model window %q is not start-end", win)
		}
		var err error
		if m.WindowStart, err = strconv.ParseFloat(lohi[0], 64); err != nil {
			return Model{}, fmt.Errorf("fault: model window start %q: %v", lohi[0], err)
		}
		if m.WindowEnd, err = strconv.ParseFloat(lohi[1], 64); err != nil {
			return Model{}, fmt.Errorf("fault: model window end %q: %v", lohi[1], err)
		}
	}
	kind, param, hasParam := strings.Cut(rest, ":")
	m.Kind = ModelKind(kind)
	if hasParam {
		v, err := strconv.Atoi(param)
		if err != nil {
			return Model{}, fmt.Errorf("fault: model parameter %q: %v", param, err)
		}
		// An explicit parameter must be meaningful: 0 would silently adopt
		// the kind's default, which the grammar spells by omission instead.
		if v < 1 {
			return Model{}, fmt.Errorf("fault: model parameter %d < 1", v)
		}
		switch m.Kind {
		case KindMBU:
			m.Size = v
		case KindStuck0, KindStuck1:
			m.Duration = v
		default:
			return Model{}, fmt.Errorf("fault: model %q does not take a parameter", kind)
		}
	}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m.normalize(), nil
}

// TargetsFFs reports whether the model's jobs index flip-flops. SET jobs
// index combinational cells instead.
func (m Model) TargetsFFs() bool { return m.normalize().Kind != KindSET }

// NumTargets returns the model's injection-target count for a program:
// flip-flops for FF-targeted models, combinational cells for SET.
func (m Model) NumTargets(p *sim.Program) int {
	if m.TargetsFFs() {
		return p.NumFFs()
	}
	return p.NumCombTargets()
}

// window resolves the sampling window to concrete cycles [lo, hi) within
// [0, activeCycles).
func (m Model) window(activeCycles int) (lo, hi int) {
	n := m.normalize()
	lo = int(n.WindowStart * float64(activeCycles))
	hi = int(n.WindowEnd * float64(activeCycles))
	if hi > activeCycles {
		hi = activeCycles
	}
	if lo >= activeCycles {
		lo = activeCycles - 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return lo, hi
}

// NewModelPlan samples the statistical injection plan for a fault model:
// for every target, perTarget uniformly random cycles inside the model's
// window of [0, activeCycles). For the SEU reference model (full window)
// the sampling — and therefore the plan — is identical to NewPlan, which
// is what keeps the model abstraction bit-compatible with the paper's
// original campaign.
func NewModelPlan(m Model, numTargets, perTarget, activeCycles int, seed int64) []Job {
	lo, hi := m.window(activeCycles)
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, 0, numTargets*perTarget)
	for t := 0; t < numTargets; t++ {
		for k := 0; k < perTarget; k++ {
			jobs = append(jobs, Job{FF: t, Cycle: lo + rng.Intn(hi-lo)})
		}
	}
	return jobs
}
