package fault

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// ExactClassifier is the generic applicative failure criterion used by the
// non-MAC corpus circuits: a lane fails when any monitored output word
// differs from the golden run at any cycle of the check window
// [CheckFrom, cycles). CheckFrom lets a scenario ignore a settle prefix
// (e.g. pipeline fill); 0 checks the whole run.
//
// Unlike MACClassifier it has no notion of frame reconstruction, so a pure
// latency shift counts as a failure — the right criterion for circuits whose
// outputs are continuously meaningful (datapath results, grant vectors,
// serial lines).
type ExactClassifier struct {
	// CheckFrom is the first checked cycle.
	CheckFrom int
}

// ConfigFingerprint implements ConfigFingerprinter.
func (e *ExactClassifier) ConfigFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "exact-classifier/from=%d", e.CheckFrom)
	return h.Sum64()
}

// FailingLanes implements Classifier: XOR of the packed monitor words flags
// every divergent lane directly (the golden trace is lane-uniform).
func (e *ExactClassifier) FailingLanes(golden, faulty *sim.Trace, used uint64) uint64 {
	var diff uint64
	cycles := golden.Cycles()
	nm := len(golden.Monitors)
	for c := e.CheckFrom; c < cycles; c++ {
		for w := 0; w < nm; w++ {
			diff |= golden.Word(c, w) ^ faulty.Word(c, w)
		}
	}
	return diff & used
}

// StartStream implements StreamClassifier. The exact criterion is ideal for
// streaming: any monitored divergence inside the check window is final, so a
// lane is confirmed failed the cycle it first diverges. The skipped prefix
// needs no replay — it is divergence-free by construction.
func (e *ExactClassifier) StartStream(golden *sim.Trace, used uint64, from int) Stream {
	return &exactStream{from: e.CheckFrom, used: used}
}

type exactStream struct {
	from   int
	used   uint64
	failed uint64
}

func (s *exactStream) Observe(cycle int, golden, faulty []uint64) uint64 {
	if cycle >= s.from {
		var diff uint64
		for w := range golden {
			diff |= golden[w] ^ faulty[w]
		}
		s.failed |= diff & s.used
	}
	return s.failed
}

// MACClassifier implements the paper's applicative failure criterion for the
// MAC loopback testbench: "the simulation run was considered a functional
// failure when the final received packages contained payload corruption or
// the circuit stopped sending or receiving data".
//
// Concretely, a lane fails when its reconstructed received-packet list
// differs from the golden run in count, payload bytes or error flags — a
// pure latency shift with intact frames is benign — or, when CheckStats is
// set, when the end-of-test statistics readout differs (the management
// plane of the application checking its RMON counters).
type MACClassifier struct {
	Bench *circuit.MACBench
	// CheckStats extends the failure criterion to the statistics readout.
	CheckStats bool

	goldenPkts  []circuit.LanePacket
	goldenStats []byte
	prepare     sync.Once
}

// NewMACClassifier returns a classifier for the given compiled testbench.
func NewMACClassifier(bench *circuit.MACBench, checkStats bool) *MACClassifier {
	return &MACClassifier{Bench: bench, CheckStats: checkStats}
}

// ConfigFingerprint implements ConfigFingerprinter: it digests the failure
// criterion (packet comparison, optionally widened by the statistics
// readout) so checkpoints reject resumes under a different criterion.
func (m *MACClassifier) ConfigFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "mac-classifier/checkstats=%v", m.CheckStats)
	return h.Sum64()
}

// FailingLanes implements Classifier.
func (m *MACClassifier) FailingLanes(golden, faulty *sim.Trace, used uint64) uint64 {
	m.prepare.Do(func() {
		// Golden is lane-uniform; lane 0 is canonical.
		m.goldenPkts = m.Bench.LanePackets(golden, 0)
		m.goldenStats = m.Bench.LaneStats(golden, 0)
	})

	// Fast path: lanes whose monitored trace is bit-identical to golden
	// cannot fail. Golden lanes are uniform, so XOR of packed words flags
	// every divergent lane directly.
	var diff uint64
	cycles := golden.Cycles()
	nm := len(golden.Monitors)
	for c := 0; c < cycles; c++ {
		for w := 0; w < nm; w++ {
			diff |= golden.Word(c, w) ^ faulty.Word(c, w)
		}
	}
	diff &= used

	var failing uint64
	for lane := 0; lane < sim.Lanes; lane++ {
		if diff>>uint(lane)&1 == 0 {
			continue
		}
		if m.laneFails(faulty, lane) {
			failing |= 1 << uint(lane)
		}
	}
	return failing
}

// StartStream implements StreamClassifier with an incremental frame decoder:
// every lane whose receive-side monitor bits ever diverge from golden gets a
// private packet reconstruction, compared frame-by-frame against the golden
// packet list as bytes arrive. A lane is confirmed failed as soon as it
// receives a wrong or surplus payload byte, closes a frame with the wrong
// length or error flag, opens more frames than the golden run ever received,
// or (with CheckStats) shows any statistics-readout divergence. These are
// exactly the monotone components of the criterion: once observed they hold
// whatever the remaining cycles deliver, so FailingLanes must agree.
//
// Under-delivery ("the circuit stopped sending or receiving data") is NOT
// confirmable mid-run — a missing frame may still arrive late and benign —
// so lanes that fail only by frame count are decided by the trace-based
// verdict when the batch ends or every lane re-converges.
func (m *MACClassifier) StartStream(golden *sim.Trace, used uint64, from int) Stream {
	m.prepare.Do(func() {
		m.goldenPkts = m.Bench.LanePackets(golden, 0)
		m.goldenStats = m.Bench.LaneStats(golden, 0)
	})
	s := &macStream{m: m, used: used}
	// Fold the skipped prefix into the golden decoder: lanes are
	// bit-identical to golden before from, so their reconstruction state is
	// the golden run's state at from.
	b := m.Bench
	for c := 0; c < from; c++ {
		s.advanceGolden(golden.Bit(c, b.MonRxValid, 0), golden.Bit(c, b.MonRxEOP, 0))
	}
	return s
}

type macStream struct {
	m        *MACClassifier
	used     uint64
	failed   uint64
	diverged uint64 // lanes whose rx monitor bits ever differed from golden

	gk, gpos int32 // golden frame decoder: frame index, byte position
	k, pos   [sim.Lanes]int32
}

func (s *macStream) Observe(cycle int, golden, faulty []uint64) uint64 {
	b := s.m.Bench

	// Statistics readout: golden is lane-uniform, so a word-level XOR of the
	// readout monitors flags every divergent lane directly, and any readout
	// divergence is a final failure under CheckStats.
	if s.m.CheckStats && cycle >= b.ReadoutStart {
		var diff uint64
		for _, w := range b.MonStatData {
			diff |= golden[w] ^ faulty[w]
		}
		s.failed |= diff & s.used
	}

	// Newly diverged lanes inherit the golden decoder state: until its rx
	// bits first differ, a lane's reconstruction is identical to golden's.
	rxDiff := (golden[b.MonRxValid] ^ faulty[b.MonRxValid]) |
		(golden[b.MonRxEOP] ^ faulty[b.MonRxEOP]) |
		(golden[b.MonRxErr] ^ faulty[b.MonRxErr])
	for _, w := range b.MonRxData {
		rxDiff |= golden[w] ^ faulty[w]
	}
	if newlyDiverged := rxDiff & s.used &^ s.diverged; newlyDiverged != 0 {
		for w := newlyDiverged; w != 0; w &= w - 1 {
			lane := bits.TrailingZeros64(w)
			s.k[lane], s.pos[lane] = s.gk, s.gpos
		}
		s.diverged |= newlyDiverged
	}

	// Per-lane decode for diverged, not-yet-failed lanes.
	for w := faulty[b.MonRxValid] & s.diverged &^ s.failed; w != 0; w &= w - 1 {
		lane := bits.TrailingZeros64(w)
		bit := uint64(1) << uint(lane)
		k := int(s.k[lane])
		if faulty[b.MonRxEOP]&bit != 0 {
			// A frame completes. A surplus frame (beyond the golden total)
			// or one with the wrong length or error flag is a final
			// failure: completed frames never leave the lane's packet list.
			if k >= len(s.m.goldenPkts) {
				s.failed |= bit
				continue
			}
			want := s.m.goldenPkts[k]
			if int(s.pos[lane]) != len(want.Payload) || (faulty[b.MonRxErr]&bit != 0) != want.Err {
				s.failed |= bit
				continue
			}
			s.k[lane]++
			s.pos[lane] = 0
			continue
		}
		if k >= len(s.m.goldenPkts) {
			// Dangling data bytes past the golden frame count: benign
			// unless a surplus frame ever completes (they never enter the
			// packet list on their own), so not confirmable here.
			continue
		}
		// A data byte of frame k. A wrong or surplus byte is final either
		// way the frame ends: if it completes, frame k's payload differs
		// from golden's; if it never does, the lane under-delivers.
		want := s.m.goldenPkts[k]
		pos := int(s.pos[lane])
		if pos >= len(want.Payload) {
			s.failed |= bit
			continue
		}
		var bv byte
		for i, w := range b.MonRxData {
			if faulty[w]&bit != 0 {
				bv |= 1 << uint(i)
			}
		}
		if bv != want.Payload[pos] {
			s.failed |= bit
			continue
		}
		s.pos[lane]++
	}

	// Advance the golden decoder (uniform: bit 0 is canonical).
	s.advanceGolden(golden[b.MonRxValid]&1 == 1, golden[b.MonRxEOP]&1 == 1)
	return s.failed
}

// advanceGolden steps the golden frame decoder by one cycle's receive-side
// monitor bits — the one copy of the advance rule MACBench.LanePackets
// applies per lane, shared by the StartStream prefix fold and Observe.
func (s *macStream) advanceGolden(valid, eop bool) {
	if !valid {
		return
	}
	if eop {
		s.gk++
		s.gpos = 0
	} else {
		s.gpos++
	}
}

func (m *MACClassifier) laneFails(faulty *sim.Trace, lane int) bool {
	pkts := m.Bench.LanePackets(faulty, lane)
	if len(pkts) != len(m.goldenPkts) {
		return true // stopped receiving, or spurious frames
	}
	for i := range pkts {
		if pkts[i].Err != m.goldenPkts[i].Err {
			return true
		}
		if !bytes.Equal(pkts[i].Payload, m.goldenPkts[i].Payload) {
			return true // payload corruption
		}
	}
	if m.CheckStats {
		if !bytes.Equal(m.Bench.LaneStats(faulty, lane), m.goldenStats) {
			return true
		}
	}
	return false
}
