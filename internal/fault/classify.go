package fault

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// ExactClassifier is the generic applicative failure criterion used by the
// non-MAC corpus circuits: a lane fails when any monitored output word
// differs from the golden run at any cycle of the check window
// [CheckFrom, cycles). CheckFrom lets a scenario ignore a settle prefix
// (e.g. pipeline fill); 0 checks the whole run.
//
// Unlike MACClassifier it has no notion of frame reconstruction, so a pure
// latency shift counts as a failure — the right criterion for circuits whose
// outputs are continuously meaningful (datapath results, grant vectors,
// serial lines).
type ExactClassifier struct {
	// CheckFrom is the first checked cycle.
	CheckFrom int
}

// ConfigFingerprint implements ConfigFingerprinter.
func (e *ExactClassifier) ConfigFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "exact-classifier/from=%d", e.CheckFrom)
	return h.Sum64()
}

// FailingLanes implements Classifier: XOR of the packed monitor words flags
// every divergent lane directly (the golden trace is lane-uniform).
func (e *ExactClassifier) FailingLanes(golden, faulty *sim.Trace, used uint64) uint64 {
	var diff uint64
	cycles := golden.Cycles()
	nm := len(golden.Monitors)
	for c := e.CheckFrom; c < cycles; c++ {
		for w := 0; w < nm; w++ {
			diff |= golden.Word(c, w) ^ faulty.Word(c, w)
		}
	}
	return diff & used
}

// MACClassifier implements the paper's applicative failure criterion for the
// MAC loopback testbench: "the simulation run was considered a functional
// failure when the final received packages contained payload corruption or
// the circuit stopped sending or receiving data".
//
// Concretely, a lane fails when its reconstructed received-packet list
// differs from the golden run in count, payload bytes or error flags — a
// pure latency shift with intact frames is benign — or, when CheckStats is
// set, when the end-of-test statistics readout differs (the management
// plane of the application checking its RMON counters).
type MACClassifier struct {
	Bench *circuit.MACBench
	// CheckStats extends the failure criterion to the statistics readout.
	CheckStats bool

	goldenPkts  []circuit.LanePacket
	goldenStats []byte
	prepare     sync.Once
}

// NewMACClassifier returns a classifier for the given compiled testbench.
func NewMACClassifier(bench *circuit.MACBench, checkStats bool) *MACClassifier {
	return &MACClassifier{Bench: bench, CheckStats: checkStats}
}

// ConfigFingerprint implements ConfigFingerprinter: it digests the failure
// criterion (packet comparison, optionally widened by the statistics
// readout) so checkpoints reject resumes under a different criterion.
func (m *MACClassifier) ConfigFingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "mac-classifier/checkstats=%v", m.CheckStats)
	return h.Sum64()
}

// FailingLanes implements Classifier.
func (m *MACClassifier) FailingLanes(golden, faulty *sim.Trace, used uint64) uint64 {
	m.prepare.Do(func() {
		// Golden is lane-uniform; lane 0 is canonical.
		m.goldenPkts = m.Bench.LanePackets(golden, 0)
		m.goldenStats = m.Bench.LaneStats(golden, 0)
	})

	// Fast path: lanes whose monitored trace is bit-identical to golden
	// cannot fail. Golden lanes are uniform, so XOR of packed words flags
	// every divergent lane directly.
	var diff uint64
	cycles := golden.Cycles()
	nm := len(golden.Monitors)
	for c := 0; c < cycles; c++ {
		for w := 0; w < nm; w++ {
			diff |= golden.Word(c, w) ^ faulty.Word(c, w)
		}
	}
	diff &= used

	var failing uint64
	for lane := 0; lane < sim.Lanes; lane++ {
		if diff>>uint(lane)&1 == 0 {
			continue
		}
		if m.laneFails(faulty, lane) {
			failing |= 1 << uint(lane)
		}
	}
	return failing
}

func (m *MACClassifier) laneFails(faulty *sim.Trace, lane int) bool {
	pkts := m.Bench.LanePackets(faulty, lane)
	if len(pkts) != len(m.goldenPkts) {
		return true // stopped receiving, or spurious frames
	}
	for i := range pkts {
		if pkts[i].Err != m.goldenPkts[i].Err {
			return true
		}
		if !bytes.Equal(pkts[i].Payload, m.goldenPkts[i].Payload) {
			return true // payload corruption
		}
	}
	if m.CheckStats {
		if !bytes.Equal(m.Bench.LaneStats(faulty, lane), m.goldenStats) {
			return true
		}
	}
	return false
}
