package fault_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// TestRunChunksMergeMatchesRun pins the distributed substrate: splitting a
// plan's chunks across two independent Runners (as two fabric workers
// would), merging the masks and assembling a checkpoint must be
// bit-identical — same Result, same checkpoint fingerprint — to one
// single-node Run of the same plan.
func TestRunChunksMergeMatchesRun(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	jobs := fault.NewPlan(p.NumFFs(), 3, bench.ActiveCycles, 41)
	cfg := fault.RunnerConfig{ChunkJobs: 2 * 64, Workers: 2}

	// Single-node reference, checkpointed.
	ckPath := filepath.Join(t.TempDir(), "single.ckpt")
	refCfg := cfg
	refCfg.CheckpointPath = ckPath
	ref, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls, jobs, refCfg)
	if err != nil {
		t.Fatal(err)
	}
	singleCk, err := fault.LoadCheckpoint(ckPath)
	if err != nil {
		t.Fatal(err)
	}

	// Two "workers": independent runners, disjoint chunk sets.
	sh, err := fault.PlanShards(len(jobs), cfg.ChunkJobs)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumChunks() < 2 {
		t.Fatalf("plan too small: %d chunks", sh.NumChunks())
	}
	var even, odd []int
	for ci := 0; ci < sh.NumChunks(); ci++ {
		if ci%2 == 0 {
			even = append(even, ci)
		} else {
			odd = append(odd, ci)
		}
	}
	merged := make(map[int][]uint64)
	for _, chunkSet := range [][]int{even, odd} {
		w, err := fault.NewRunner(p, bench.Stim, bench.Monitors, fault.NewMACClassifier(bench, true), cfg)
		if err != nil {
			t.Fatal(err)
		}
		masks, err := w.RunChunks(context.Background(), jobs, chunkSet)
		if err != nil {
			t.Fatal(err)
		}
		if len(masks) != len(chunkSet) {
			t.Fatalf("worker returned %d of %d chunks", len(masks), len(chunkSet))
		}
		for ci, m := range masks {
			merged[ci] = m
		}
	}

	// Coordinator-side merge: Result and checkpoint must match the
	// single-node run exactly.
	coord, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.MergeChunks(jobs, merged)
	if err != nil {
		t.Fatal(err)
	}
	for ff := range ref.FDR {
		if res.Failures[ff] != ref.Failures[ff] || res.Injections[ff] != ref.Injections[ff] {
			t.Fatalf("FF %d: distributed %d/%d, single-node %d/%d", ff,
				res.Failures[ff], res.Injections[ff], ref.Failures[ff], ref.Injections[ff])
		}
	}
	distCk, err := coord.CampaignCheckpoint(jobs, merged)
	if err != nil {
		t.Fatal(err)
	}
	if distCk.Fingerprint() != singleCk.Fingerprint() {
		t.Fatalf("checkpoint fingerprints differ: distributed %x, single-node %x",
			distCk.Fingerprint(), singleCk.Fingerprint())
	}

	// The merged checkpoint must round-trip through the existing on-disk
	// format and keep its fingerprint.
	distPath := filepath.Join(t.TempDir(), "merged.ckpt")
	if err := fault.SaveCheckpoint(distPath, distCk); err != nil {
		t.Fatal(err)
	}
	loaded, err := fault.LoadCheckpoint(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != singleCk.Fingerprint() {
		t.Fatalf("fingerprint changed across save/load: %x != %x",
			loaded.Fingerprint(), singleCk.Fingerprint())
	}
}

// TestRunChunksValidation covers the error paths workers depend on.
func TestRunChunksValidation(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	jobs := fault.NewPlan(p.NumFFs(), 1, bench.ActiveCycles, 5)
	r, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls, fault.RunnerConfig{ChunkJobs: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunChunks(context.Background(), jobs, []int{-1}); err == nil {
		t.Fatal("negative chunk accepted")
	}
	if _, err := r.RunChunks(context.Background(), jobs, []int{1 << 30}); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	if _, err := r.RunChunks(context.Background(), jobs, []int{0, 0}); err == nil {
		t.Fatal("duplicate chunk accepted")
	}
	if _, err := r.MergeChunks(jobs, map[int][]uint64{}); err == nil {
		t.Fatal("incomplete merge accepted")
	}
	if _, err := r.MergeChunks(jobs, map[int][]uint64{0: {0}, 1: {0}, 1 << 20: {0}}); err == nil {
		t.Fatal("foreign chunk index accepted")
	}
}

// TestRunChunksInterrupted pins the lease-abandon path: cancellation
// returns the finished chunks plus ErrInterrupted.
func TestRunChunksInterrupted(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 7)
	r, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls, fault.RunnerConfig{ChunkJobs: 64, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := fault.PlanShards(len(jobs), 64)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, sh.NumChunks())
	for i := range all {
		all[i] = i
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: nothing should be dispatched
	done, err := r.RunChunks(ctx, jobs, all)
	if !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("err %v, want ErrInterrupted", err)
	}
	if len(done) >= len(all) {
		t.Fatalf("canceled run completed all %d chunks", len(done))
	}
}

// TestPlanShardsGeometry pins the exported geometry against the internal
// splitting (whole 64-lane batches, short last chunk).
func TestPlanShardsGeometry(t *testing.T) {
	sh, err := fault.PlanShards(300, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sh.ChunkJobs() != 128 { // 100 rounded up to 2 batches
		t.Fatalf("chunk jobs %d, want 128", sh.ChunkJobs())
	}
	if sh.NumChunks() != 3 || sh.TotalJobs() != 300 {
		t.Fatalf("geometry %d chunks / %d jobs", sh.NumChunks(), sh.TotalJobs())
	}
	if lo, hi := sh.ChunkRange(2); lo != 256 || hi != 300 {
		t.Fatalf("last chunk [%d,%d)", lo, hi)
	}
	if sh.ChunkBatches(2) != 1 {
		t.Fatalf("last chunk batches %d", sh.ChunkBatches(2))
	}
	if _, err := fault.PlanShards(-1, 0); err == nil {
		t.Fatal("negative plan accepted")
	}
}
