package fault_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/circuit"
	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// The fault-model equivalence suite: every model — MBU clusters, stuck-at
// holds, SET pulses, windowed variants — must produce bit-identical failure
// masks, per-target tallies and checkpoints across the same backend ×
// schedule matrix the SEU suite pins (naive replay, incremental interpreter,
// compiled wide kernel; plan-order and clustered packing), plus the model
// edge cases where off-by-one bugs would hide: clusters clamped at the FF
// count, stuck-at holds running past the last stimulus cycle, and SET
// pulses on combinational cells the kernel's dead-fanout pruner discards.

// equivModels is the model matrix the suites sweep: every kind, the
// parameter extremes, and windowed variants of each mechanism.
var equivModels = []string{
	"seu",
	"mbu:2", "mbu:4",
	"stuck0:2", "stuck1:3", "stuck0:8",
	"set",
	"seu@0.25-0.75", "mbu:3@0.5-1", "stuck1:2@0-0.5", "set@0.5-1",
}

// assertModelEquivalent runs one plan under every backend × schedule
// combination with the given model and requires bit-identical results
// against the naive plan-order reference.
func assertModelEquivalent(t *testing.T, p *sim.Program, stim *sim.Stimulus, monitors []int,
	cls fault.Classifier, model fault.Model, jobs []fault.Job) *fault.Result {
	t.Helper()
	var ref *fault.Result
	for _, rc := range runConfigs {
		cfg := rc.cfg
		cfg.Workers = 2
		cfg.Model = model
		res, err := fault.RunJobs(p, stim, monitors, cls, jobs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", rc.name, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.TotalRuns != ref.TotalRuns || res.Batches != ref.Batches {
			t.Fatalf("%s: shape differs from reference", rc.name)
		}
		for i := range ref.FDR {
			if res.Failures[i] != ref.Failures[i] || res.Injections[i] != ref.Injections[i] ||
				res.FDR[i] != ref.FDR[i] {
				t.Fatalf("%s: target %d = %d/%d failures, reference %d/%d",
					rc.name, i, res.Failures[i], res.Injections[i],
					ref.Failures[i], ref.Injections[i])
			}
		}
	}
	return ref
}

// TestModelEquivalenceMAC sweeps the model matrix on the MAC under its
// packet-level classifier.
func TestModelEquivalenceMAC(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	for _, spec := range equivModels {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			model, err := fault.ParseModel(spec)
			if err != nil {
				t.Fatalf("ParseModel: %v", err)
			}
			jobs := fault.NewModelPlan(model, model.NumTargets(p), 2, bench.ActiveCycles, 77)
			res := assertModelEquivalent(t, p, bench.Stim, bench.Monitors, cls, model, jobs)
			if want := model.NumTargets(p); len(res.FDR) != want {
				t.Fatalf("result sized for %d targets, want %d", len(res.FDR), want)
			}
			if res.TotalRuns != len(jobs) {
				t.Fatalf("ran %d of %d jobs", res.TotalRuns, len(jobs))
			}
		})
	}
}

// TestModelEquivalenceCorpus runs the matrix on a corpus scenario with the
// exact classifier — a different DUT family and failure criterion than the
// MAC fixture.
func TestModelEquivalenceCorpus(t *testing.T) {
	sc, err := corpus.Find("alupipe/randomops")
	if err != nil {
		t.Fatalf("scenario: %v", err)
	}
	m, err := sc.Materialize(corpus.ScaleSmall, 1)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	for _, spec := range []string{"mbu:3", "stuck0:4", "set", "stuck1:2@0.25-1"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			model, err := fault.ParseModel(spec)
			if err != nil {
				t.Fatalf("ParseModel: %v", err)
			}
			jobs := fault.NewModelPlan(model, model.NumTargets(m.Program), 2, m.Bench.ActiveCycles, 9)
			assertModelEquivalent(t, m.Program, m.Bench.Stim, m.Bench.Monitors, m.Bench.Classifier, model, jobs)
		})
	}
}

// tinyFixture compiles a hand-built 3-FF shift chain with a deliberately
// dead inverter (driven, read by nothing) — small enough that MBU clusters
// clamp at the device size, and with a combinational cell the kernel's
// dead-fanout pruner drops.
func tinyFixture(t *testing.T) (*sim.Program, *sim.Stimulus, []int, int) {
	t.Helper()
	b := netlist.NewBuilder("tiny")
	din := b.Input("din")
	d := din
	var q netlist.NetID
	for i := 0; i < 3; i++ {
		pop := b.Scope(string(rune('a' + i)))
		q = b.DFF("s", d, false)
		pop()
		d = b.Not(q)
	}
	dead := b.Not(din) // no reader: pruned by the kernel compiler
	_ = dead
	b.Output("q", q)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Locate the dead inverter's comb-target index for targeted SET jobs.
	deadTarget := -1
	for ti := 0; ti < p.NumCombTargets(); ti++ {
		ci := p.CombTargetCell(ti)
		read := false
		out := nl.Cells[ci].Output
		for cj := range nl.Cells {
			for _, in := range nl.Cells[cj].Inputs {
				if in == out {
					read = true
				}
			}
		}
		for _, o := range nl.Outputs {
			if o == out {
				read = true
			}
		}
		if !read {
			deadTarget = ti
		}
	}
	if deadTarget < 0 {
		t.Fatal("fixture lost its dead inverter")
	}
	stim := sim.NewStimulus(48)
	set := stim.DrivePort(0)
	for c := 0; c < 48; c++ {
		set(c, c%3 == 0)
	}
	return p, stim, []int{0}, deadTarget
}

// TestModelEquivalenceMBUClusterClamp: an MBU larger than the device must
// clamp its clusters to every flip-flop and still agree across backends.
func TestModelEquivalenceMBUClusterClamp(t *testing.T) {
	p, stim, monitors, _ := tinyFixture(t)
	if p.NumFFs() >= 4 {
		t.Fatalf("fixture has %d FFs, want < 4 to exercise the clamp", p.NumFFs())
	}
	model, err := fault.ParseModel("mbu:4")
	if err != nil {
		t.Fatal(err)
	}
	jobs := fault.NewModelPlan(model, p.NumFFs(), 4, stim.Cycles(), 5)
	res := assertModelEquivalent(t, p, stim, monitors, &fault.ExactClassifier{}, model, jobs)
	// Flipping the whole 3-FF state is a heavy fault; the shift chain's
	// output must diverge somewhere or the fixture is not exercising MBU.
	total := 0
	for _, f := range res.Failures {
		total += f
	}
	if total == 0 {
		t.Fatal("full-device MBU produced no failures")
	}
}

// TestModelEquivalenceStuckPastEnd: a stuck-at hold whose duration runs past
// the last stimulus cycle must clamp identically on every path.
func TestModelEquivalenceStuckPastEnd(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	model, err := fault.ParseModel("stuck1:8")
	if err != nil {
		t.Fatal(err)
	}
	last := bench.Stim.Cycles() - 1
	var jobs []fault.Job
	for i := 0; i < 2*64; i++ {
		// Alternate between the very last cycle (duration clamps to 1
		// effective cycle) and a cycle whose hold straddles the end.
		c := last
		if i%2 == 1 {
			c = last - 3
		}
		jobs = append(jobs, fault.Job{FF: (i * 5) % p.NumFFs(), Cycle: c})
	}
	assertModelEquivalent(t, p, bench.Stim, bench.Monitors, cls, model, jobs)
}

// TestModelEquivalenceSETDeadFanout: a SET pulse on a combinational cell the
// kernel compiler prunes must classify as a clean run on every backend —
// the transient has nowhere to latch — while pulses on live cells agree
// bit for bit.
func TestModelEquivalenceSETDeadFanout(t *testing.T) {
	p, stim, monitors, deadTarget := tinyFixture(t)
	model, err := fault.ParseModel("set")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []fault.Job
	for i := 0; i < 64; i++ {
		jobs = append(jobs, fault.Job{FF: deadTarget, Cycle: i % (stim.Cycles() - 1)})
	}
	// A second batch hits every comb target, dead one included.
	for i := 0; i < 64; i++ {
		jobs = append(jobs, fault.Job{FF: i % p.NumCombTargets(), Cycle: (i * 3) % (stim.Cycles() - 1)})
	}
	res := assertModelEquivalent(t, p, stim, monitors, &fault.ExactClassifier{}, model, jobs)
	if res.Failures[deadTarget] != 0 {
		t.Fatalf("SET on a dead-fanout cell reported %d failures", res.Failures[deadTarget])
	}
}

// TestSEUModelPreservesResults is the backward-compatibility property: the
// explicit SEU model must reproduce the zero-config campaign exactly —
// same result, same checkpoint fingerprint — on the MAC ground-truth
// campaign and on every registered corpus scenario. A checkpoint whose
// header predates the model field ("" model) must fingerprint identically
// too, so legacy files remain resumable.
func TestSEUModelPreservesResults(t *testing.T) {
	check := func(t *testing.T, p *sim.Program, stim *sim.Stimulus, monitors []int,
		cls fault.Classifier, active int, seed int64) {
		t.Helper()
		dir := t.TempDir()
		legacyJobs := fault.NewPlan(p.NumFFs(), 2, active, seed)
		seu, err := fault.ParseModel("seu")
		if err != nil {
			t.Fatal(err)
		}
		modelJobs := fault.NewModelPlan(seu, seu.NumTargets(p), 2, active, seed)
		if len(legacyJobs) != len(modelJobs) {
			t.Fatalf("plan sizes differ: %d vs %d", len(legacyJobs), len(modelJobs))
		}
		for i := range legacyJobs {
			if legacyJobs[i] != modelJobs[i] {
				t.Fatalf("job %d differs: %+v vs %+v", i, legacyJobs[i], modelJobs[i])
			}
		}

		ckLegacy := filepath.Join(dir, "legacy.ffr")
		want, err := fault.RunJobs(p, stim, monitors, cls, legacyJobs,
			fault.RunnerConfig{Workers: 2, CheckpointPath: ckLegacy})
		if err != nil {
			t.Fatalf("legacy run: %v", err)
		}
		ckModel := filepath.Join(dir, "model.ffr")
		got, err := fault.RunJobs(p, stim, monitors, cls, modelJobs,
			fault.RunnerConfig{Workers: 2, Model: seu, CheckpointPath: ckModel})
		if err != nil {
			t.Fatalf("SEU-model run: %v", err)
		}
		sameResult(t, want, got)

		a, err := fault.LoadCheckpoint(ckLegacy)
		if err != nil {
			t.Fatalf("legacy checkpoint: %v", err)
		}
		b, err := fault.LoadCheckpoint(ckModel)
		if err != nil {
			t.Fatalf("model checkpoint: %v", err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("checkpoint fingerprints differ: %016x vs %016x", a.Fingerprint(), b.Fingerprint())
		}
		// A pre-model header spells the model as "" — same fingerprint.
		b.Model = ""
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("legacy \"\" model changes the fingerprint: %016x vs %016x",
				a.Fingerprint(), b.Fingerprint())
		}
	}

	t.Run("mac-ground-truth", func(t *testing.T) {
		p, bench := smallMAC(t)
		check(t, p, bench.Stim, bench.Monitors, fault.NewMACClassifier(bench, true),
			bench.ActiveCycles, 2019)
	})
	for _, sc := range corpus.List() {
		sc := sc
		t.Run(sc.ID(), func(t *testing.T) {
			m, err := sc.Materialize(corpus.ScaleSmall, 1)
			if err != nil {
				t.Fatalf("materialize: %v", err)
			}
			check(t, m.Program, m.Bench.Stim, m.Bench.Monitors, m.Bench.Classifier,
				m.Bench.ActiveCycles, sc.Entry.Defaults.CampaignSeed)
		})
	}
}

// TestModelCheckpointCrossBackendResume: for every fault model, a campaign
// interrupted under one backend must resume under the other — in both
// directions — and match the uninterrupted naive reference bit for bit.
func TestModelCheckpointCrossBackendResume(t *testing.T) {
	p, bench := smallMAC(t)
	newCls := func() fault.Classifier { return fault.NewMACClassifier(bench, true) }

	dirs := []struct {
		name          string
		first, second fault.Backend
	}{
		{"interp-to-kernel", fault.BackendInterp, fault.BackendKernel},
		{"kernel-to-interp", fault.BackendKernel, fault.BackendInterp},
	}
	for _, spec := range []string{"mbu:2", "stuck0:2", "set", "seu@0.25-0.75"} {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			model, err := fault.ParseModel(spec)
			if err != nil {
				t.Fatalf("ParseModel: %v", err)
			}
			jobs := fault.NewModelPlan(model, model.NumTargets(p), 2, bench.ActiveCycles, 21)
			want, err := fault.RunJobs(p, bench.Stim, bench.Monitors, newCls(), jobs,
				fault.RunnerConfig{Naive: true, Schedule: fault.SchedulePlan,
					ChunkJobs: sim.Lanes, Model: model})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, dir := range dirs {
				dir := dir
				t.Run(dir.name, func(t *testing.T) {
					ckpt := filepath.Join(t.TempDir(), "campaign.ffr")
					ctx, cancel := context.WithCancel(context.Background())
					defer cancel()
					ri, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
						Model:           model,
						ChunkJobs:       sim.Lanes,
						Workers:         2,
						Backend:         dir.first,
						CheckpointPath:  ckpt,
						CheckpointEvery: 1,
						OnProgress: func(pr fault.Progress) {
							if pr.ChunksDone >= 2 {
								cancel()
							}
						},
					})
					if err != nil {
						t.Fatalf("NewRunner: %v", err)
					}
					if _, err := ri.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
						t.Fatalf("interrupted run returned %v", err)
					}
					ck, err := fault.LoadCheckpoint(ckpt)
					if err != nil {
						t.Fatalf("checkpoint: %v", err)
					}
					if ck.Model != model.String() {
						t.Fatalf("checkpoint records model %q, want %q", ck.Model, model)
					}
					if len(ck.Chunks) == 0 || len(ck.Chunks) >= want.Chunks {
						t.Fatalf("interrupt did not land mid-run (%d of %d chunks)", len(ck.Chunks), want.Chunks)
					}

					rr, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
						Model:          model,
						ChunkJobs:      sim.Lanes,
						Workers:        2,
						Backend:        dir.second,
						CheckpointPath: ckpt,
						Resume:         true,
					})
					if err != nil {
						t.Fatalf("NewRunner: %v", err)
					}
					got, err := rr.Run(jobs)
					if err != nil {
						t.Fatalf("cross-backend resume: %v", err)
					}
					if got.ResumedChunks != len(ck.Chunks) {
						t.Fatalf("resumed %d chunks, checkpoint held %d", got.ResumedChunks, len(ck.Chunks))
					}
					sameResult(t, want, got)
				})
			}
		})
	}
}

// TestModelMismatchRejected: masks are only meaningful under the model that
// produced them, so resuming a checkpoint under a different fault model must
// be refused with ErrCheckpointMismatch.
func TestModelMismatchRejected(t *testing.T) {
	p, bench := smallMAC(t)
	mbu, err := fault.ParseModel("mbu:2")
	if err != nil {
		t.Fatal(err)
	}
	jobs := fault.NewModelPlan(mbu, p.NumFFs(), 2, bench.ActiveCycles, 21)
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")

	seed, err := fault.NewRunner(p, bench.Stim, bench.Monitors,
		fault.NewMACClassifier(bench, true),
		fault.RunnerConfig{Model: mbu, ChunkJobs: sim.Lanes, CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := seed.Run(jobs); err != nil {
		t.Fatalf("seeding checkpoint: %v", err)
	}

	other, err := fault.NewRunner(p, bench.Stim, bench.Monitors,
		fault.NewMACClassifier(bench, true),
		fault.RunnerConfig{ChunkJobs: sim.Lanes, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := other.Run(jobs); !errors.Is(err, fault.ErrCheckpointMismatch) {
		t.Fatalf("SEU resume of an MBU checkpoint returned %v", err)
	}
}

// TestLegacyModelCheckpointResume: a checkpoint whose header predates the
// fault-model field must resume under the default SEU runner and finish
// bit-identically — pre-model campaign files stay usable.
func TestLegacyModelCheckpointResume(t *testing.T) {
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")
	newCls := func() fault.Classifier { return fault.NewMACClassifier(bench, true) }

	want, err := fault.RunJobs(p, bench.Stim, bench.Monitors, newCls(), jobs,
		fault.RunnerConfig{Naive: true, Schedule: fault.SchedulePlan, ChunkJobs: sim.Lanes})
	if err != nil {
		t.Fatalf("reference: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ri, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
		ChunkJobs:       sim.Lanes,
		Workers:         2,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1,
		OnProgress: func(pr fault.Progress) {
			if pr.ChunksDone >= 2 {
				cancel()
			}
		},
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := ri.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v", err)
	}

	// Rewrite the header as a pre-model file: no fault model recorded.
	ck, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if len(ck.Chunks) == 0 || len(ck.Chunks) >= want.Chunks {
		t.Fatalf("interrupt did not land mid-run (%d of %d chunks)", len(ck.Chunks), want.Chunks)
	}
	ck.Model = ""
	if err := fault.SaveCheckpoint(ckpt, ck); err != nil {
		t.Fatalf("rewriting checkpoint: %v", err)
	}

	rr, err := fault.NewRunner(p, bench.Stim, bench.Monitors, newCls(), fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		Workers:        2,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	got, err := rr.Run(jobs)
	if err != nil {
		t.Fatalf("legacy resume rejected: %v", err)
	}
	sameResult(t, want, got)

	// The finished checkpoint records the canonical model string.
	final, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("final checkpoint: %v", err)
	}
	if final.Model != "seu" {
		t.Fatalf("final checkpoint model %q, want %q", final.Model, "seu")
	}
}

// TestFaultModelDistinctProfiles is the faultmodel-smoke target: the point
// of the abstraction is that different physics produce different failure
// profiles, so a heavier model must not collapse onto the SEU reference.
func TestFaultModelDistinctProfiles(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	run := func(spec string) *fault.Result {
		t.Helper()
		model, err := fault.ParseModel(spec)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", spec, err)
		}
		jobs := fault.NewModelPlan(model, model.NumTargets(p), 3, bench.ActiveCycles, 2019)
		res, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls, jobs,
			fault.RunnerConfig{Workers: 2, Model: model})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		return res
	}
	seu := run("seu")
	for _, spec := range []string{"mbu:4", "stuck0:8", "stuck1:8"} {
		res := run(spec)
		same := true
		for ff := range seu.Failures {
			if res.Failures[ff] != seu.Failures[ff] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s produced the exact SEU failure profile — model has no effect", spec)
		}
	}
	set := run("set")
	if len(set.FDR) != p.NumCombTargets() {
		t.Fatalf("SET result sized %d, want one slot per comb target (%d)",
			len(set.FDR), p.NumCombTargets())
	}
	if set.TotalRuns != 3*p.NumCombTargets() {
		t.Fatalf("SET ran %d jobs, want %d", set.TotalRuns, 3*p.NumCombTargets())
	}
}

// Keep the circuit import live even if fixtures change shape.
var _ = circuit.MACConfig{}
