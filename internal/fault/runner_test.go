package fault_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// runnerFixture returns a runner over the small MAC with the given config
// filled in.
func newRunner(t *testing.T, cfg fault.RunnerConfig) (*fault.Runner, []fault.Job) {
	t.Helper()
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	r, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls, cfg)
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)
	return r, jobs
}

func sameResult(t *testing.T, a, b *fault.Result) {
	t.Helper()
	if a.TotalRuns != b.TotalRuns || a.Batches != b.Batches {
		t.Fatalf("shape differs: %d/%d runs, %d/%d batches", a.TotalRuns, b.TotalRuns, a.Batches, b.Batches)
	}
	for ff := range a.FDR {
		if a.Failures[ff] != b.Failures[ff] || a.Injections[ff] != b.Injections[ff] || a.FDR[ff] != b.FDR[ff] {
			t.Fatalf("FF %d differs: %d/%d failures, %d/%d injections, %v/%v FDR",
				ff, a.Failures[ff], b.Failures[ff], a.Injections[ff], b.Injections[ff], a.FDR[ff], b.FDR[ff])
		}
	}
}

func TestRunnerConfigValidation(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	bad := []fault.RunnerConfig{
		{ChunkJobs: -1},
		{Workers: -1},
		{CheckpointEvery: -1},
		{Resume: true}, // resume without a checkpoint path
	}
	for i, cfg := range bad {
		if _, err := fault.NewRunner(p, bench.Stim, bench.Monitors, cls, cfg); err == nil {
			t.Fatalf("case %d must fail: %+v", i, cfg)
		}
	}
	if _, err := fault.NewRunner(nil, bench.Stim, bench.Monitors, cls, fault.RunnerConfig{}); err == nil {
		t.Fatal("nil program accepted")
	}
}

func TestRunnerRejectsBadJobs(t *testing.T) {
	r, _ := newRunner(t, fault.RunnerConfig{})
	if _, err := r.Run([]fault.Job{{FF: -1, Cycle: 0}}); err == nil {
		t.Fatal("negative FF accepted")
	}
	if _, err := r.Run([]fault.Job{{FF: 0, Cycle: 99999}}); err == nil {
		t.Fatal("out-of-range cycle accepted")
	}
}

// The runner must agree bit-for-bit with the legacy single-shot entry point
// regardless of chunk size or worker count.
func TestRunnerMatchesRunCampaign(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	want, err := fault.RunCampaign(p, bench.Stim, bench.Monitors, cls, fault.CampaignConfig{
		InjectionsPerFF: 2, ActiveCycles: bench.ActiveCycles, Seed: 21,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	for _, chunk := range []int{sim.Lanes, 3 * sim.Lanes, 1 << 20} {
		for _, workers := range []int{1, 3} {
			r, jobs := newRunner(t, fault.RunnerConfig{ChunkJobs: chunk, Workers: workers})
			got, err := r.Run(jobs)
			if err != nil {
				t.Fatalf("Run(chunk=%d,workers=%d): %v", chunk, workers, err)
			}
			sameResult(t, want, got)
		}
	}
}

func TestRunnerChunkGeometry(t *testing.T) {
	// 100 jobs in chunks of 70 → rounded to 2 batches (128 jobs) per
	// chunk → a single chunk of 2 batches.
	r, jobs := newRunner(t, fault.RunnerConfig{ChunkJobs: 70, Workers: 1})
	res, err := r.Run(jobs[:100])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Chunks != 1 || res.Batches != 2 {
		t.Fatalf("geometry = %d chunks, %d batches; want 1, 2", res.Chunks, res.Batches)
	}
	// One-batch chunks.
	r2, _ := newRunner(t, fault.RunnerConfig{ChunkJobs: sim.Lanes, Workers: 2})
	res2, err := r2.Run(jobs[:100])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res2.Chunks != 2 || res2.Batches != 2 {
		t.Fatalf("geometry = %d chunks, %d batches; want 2, 2", res2.Chunks, res2.Batches)
	}
}

func TestRunnerGoldenReuse(t *testing.T) {
	p, bench := smallMAC(t)
	e := sim.NewEngine(p)
	golden, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})

	// A supplied golden trace is used as-is.
	r, jobs := newRunner(t, fault.RunnerConfig{Golden: golden})
	if g, err := r.Golden(); err != nil || g != golden {
		t.Fatalf("supplied golden trace not reused (err %v)", err)
	}
	// Without one, it is simulated once and cached across calls.
	r2, _ := newRunner(t, fault.RunnerConfig{})
	g1, err := r2.Golden()
	if err != nil || g1 == nil {
		t.Fatalf("no golden trace computed: %v", err)
	}
	if g2, err := r2.Golden(); err != nil || g2 != g1 {
		t.Fatalf("golden trace recomputed (err %v)", err)
	}
	if !g1.Equal(golden) {
		t.Fatal("computed golden trace differs from reference run")
	}
	if _, err := r.Run(jobs[:sim.Lanes]); err != nil {
		t.Fatalf("Run with shared golden: %v", err)
	}
}

func TestRunnerProgress(t *testing.T) {
	var seen []fault.Progress
	r, jobs := newRunner(t, fault.RunnerConfig{
		ChunkJobs: sim.Lanes,
		Workers:   2,
		OnProgress: func(p fault.Progress) {
			seen = append(seen, p)
		},
	})
	res, err := r.Run(jobs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != res.Chunks {
		t.Fatalf("%d progress reports for %d chunks", len(seen), res.Chunks)
	}
	for i, p := range seen {
		if p.ChunksTotal != res.Chunks || p.JobsTotal != res.TotalRuns {
			t.Fatalf("report %d totals = %+v", i, p)
		}
		if i > 0 && p.ChunksDone <= seen[i-1].ChunksDone {
			t.Fatalf("progress not monotonic: %d then %d", seen[i-1].ChunksDone, p.ChunksDone)
		}
	}
	last := seen[len(seen)-1]
	if last.ChunksDone != res.Chunks || last.JobsDone != res.TotalRuns {
		t.Fatalf("final report incomplete: %+v", last)
	}
}

// The acceptance-criterion test: a campaign killed mid-run and resumed from
// its checkpoint produces bit-identical per-FF results to the same campaign
// run uninterrupted.
func TestRunnerInterruptResumeBitIdentical(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")

	// Reference: uninterrupted run.
	r, jobs := newRunner(t, fault.RunnerConfig{ChunkJobs: sim.Lanes, Workers: 2})
	want, err := r.Run(jobs)
	if err != nil {
		t.Fatalf("uninterrupted run: %v", err)
	}
	if want.Chunks < 4 {
		t.Fatalf("fixture too small to interrupt meaningfully: %d chunks", want.Chunks)
	}

	// Interrupted run: cancel after the second completed chunk, flushing
	// the checkpoint on every chunk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ri, _ := newRunner(t, fault.RunnerConfig{
		ChunkJobs:       sim.Lanes,
		Workers:         2,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1,
		OnProgress: func(p fault.Progress) {
			if p.ChunksDone >= 2 {
				cancel()
			}
		},
	})
	if _, err := ri.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want ErrInterrupted", err)
	}
	ck, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("checkpoint after interrupt: %v", err)
	}
	if len(ck.Chunks) == 0 || len(ck.Chunks) >= want.Chunks {
		t.Fatalf("checkpoint has %d of %d chunks; interrupt did not land mid-run", len(ck.Chunks), want.Chunks)
	}

	// Resume and compare bit-for-bit.
	rr, _ := newRunner(t, fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		Workers:        2,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	got, err := rr.Run(jobs)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got.ResumedChunks != len(ck.Chunks) {
		t.Fatalf("resumed %d chunks, checkpoint held %d", got.ResumedChunks, len(ck.Chunks))
	}
	sameResult(t, want, got)

	// A second resume of the now-complete checkpoint restores everything.
	again, err := rr.Run(jobs)
	if err != nil {
		t.Fatalf("re-run from complete checkpoint: %v", err)
	}
	if again.ResumedChunks != want.Chunks {
		t.Fatalf("complete checkpoint resumed %d of %d chunks", again.ResumedChunks, want.Chunks)
	}
	sameResult(t, want, again)
}

func TestRunnerResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "campaign.ffr")

	r, jobs := newRunner(t, fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		CheckpointPath: ckpt,
	})
	if _, err := r.Run(jobs); err != nil {
		t.Fatalf("seeding checkpoint: %v", err)
	}

	// A different plan (different seed) must be rejected.
	p, bench := smallMAC(t)
	other := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 22)
	rr, _ := newRunner(t, fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if _, err := rr.Run(other); !errors.Is(err, fault.ErrCheckpointMismatch) {
		t.Fatalf("foreign plan resumed: %v", err)
	}

	// Different shard geometry must be rejected too.
	rg, _ := newRunner(t, fault.RunnerConfig{
		ChunkJobs:      2 * sim.Lanes,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	if _, err := rg.Run(jobs); !errors.Is(err, fault.ErrCheckpointMismatch) {
		t.Fatalf("mismatched geometry resumed: %v", err)
	}
}

// Resuming under a different failure criterion must be rejected: failure
// masks classified with and without the statistics readout are not
// mergeable.
func TestRunnerResumeRejectsDifferentCriterion(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")
	p, bench := smallMAC(t)
	jobs := fault.NewPlan(p.NumFFs(), 2, bench.ActiveCycles, 21)

	strict, err := fault.NewRunner(p, bench.Stim, bench.Monitors,
		fault.NewMACClassifier(bench, true),
		fault.RunnerConfig{ChunkJobs: sim.Lanes, CheckpointPath: ckpt})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := strict.Run(jobs); err != nil {
		t.Fatalf("seeding checkpoint: %v", err)
	}

	lax, err := fault.NewRunner(p, bench.Stim, bench.Monitors,
		fault.NewMACClassifier(bench, false),
		fault.RunnerConfig{ChunkJobs: sim.Lanes, CheckpointPath: ckpt, Resume: true})
	if err != nil {
		t.Fatalf("NewRunner: %v", err)
	}
	if _, err := lax.Run(jobs); !errors.Is(err, fault.ErrCheckpointMismatch) {
		t.Fatalf("different criterion resumed: %v", err)
	}
}

// An interrupt landing before the first periodic flush must still leave a
// resumable checkpoint behind.
func TestRunnerInterruptBeforeFirstFlushWritesCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ffr")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r, jobs := newRunner(t, fault.RunnerConfig{
		ChunkJobs:       sim.Lanes,
		Workers:         1,
		CheckpointPath:  ckpt,
		CheckpointEvery: 1 << 20, // never flush periodically
		OnProgress: func(p fault.Progress) {
			cancel()
		},
	})
	if _, err := r.RunContext(ctx, jobs); !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("run returned %v, want ErrInterrupted", err)
	}
	ck, err := fault.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatalf("no checkpoint after early interrupt: %v", err)
	}
	if len(ck.Chunks) == 0 {
		t.Fatal("checkpoint holds no completed chunks")
	}
}

func TestRunnerResumeWithoutCheckpointFileStartsFresh(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "never-written.ffr")
	r, jobs := newRunner(t, fault.RunnerConfig{
		ChunkJobs:      sim.Lanes,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	res, err := r.Run(jobs[:sim.Lanes])
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.ResumedChunks != 0 {
		t.Fatalf("resumed %d chunks from a nonexistent checkpoint", res.ResumedChunks)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written on completion: %v", err)
	}
}
