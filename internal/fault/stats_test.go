package fault_test

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/fault"
)

func TestWilsonInterval(t *testing.T) {
	lo, hi := fault.WilsonInterval(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Fatalf("empty interval = [%v,%v]", lo, hi)
	}
	lo, hi = fault.WilsonInterval(0, 170, 1.96)
	if lo != 0 {
		t.Fatalf("lo = %v, want 0", lo)
	}
	if hi <= 0 || hi > 0.05 {
		t.Fatalf("hi = %v, want small positive", hi)
	}
	lo, hi = fault.WilsonInterval(170, 170, 1.96)
	if hi != 1 || lo < 0.95 {
		t.Fatalf("interval at p=1: [%v,%v]", lo, hi)
	}
	lo, hi = fault.WilsonInterval(85, 170, 1.96)
	if math.Abs((lo+hi)/2-0.5) > 0.01 {
		t.Fatalf("interval at p=0.5 not centered: [%v,%v]", lo, hi)
	}
}

// Property: Wilson interval always contains the point estimate and stays in
// [0,1]; width shrinks with n.
func TestWilsonIntervalProperties(t *testing.T) {
	prop := func(failures, n uint8) bool {
		f := int(failures)
		trials := int(n)
		if trials == 0 {
			trials = 1
		}
		f %= trials + 1
		lo, hi := fault.WilsonInterval(f, trials, 1.96)
		p := float64(f) / float64(trials)
		if lo < 0 || hi > 1 || lo > hi {
			return false
		}
		if p < lo-1e-12 || p > hi+1e-12 {
			return false
		}
		lo2, hi2 := fault.WilsonInterval(f*10, trials*10, 1.96)
		return hi2-lo2 <= hi-lo+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// A wider confidence level must give a wider interval.
func TestWilsonIntervalWidensWithZ(t *testing.T) {
	lo95, hi95 := fault.WilsonInterval(17, 170, 1.96)
	lo99, hi99 := fault.WilsonInterval(17, 170, 2.576)
	if hi99-lo99 <= hi95-lo95 {
		t.Fatalf("99%% interval [%v,%v] not wider than 95%% [%v,%v]", lo99, hi99, lo95, hi95)
	}
}

func TestHistogram(t *testing.T) {
	h := fault.Histogram([]float64{0, 0.05, 0.5, 0.99, 1.0, -0.1, 1.1}, 10)
	if h[0] != 3 { // 0, 0.05, clamped -0.1
		t.Fatalf("bin0 = %d, want 3", h[0])
	}
	if h[5] != 1 {
		t.Fatalf("bin5 = %d, want 1", h[5])
	}
	if h[9] != 3 { // 0.99, 1.0 and clamped 1.1
		t.Fatalf("bin9 = %d, want 3", h[9])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != 7 {
		t.Fatalf("histogram loses samples: %d", total)
	}
}

func TestHistogramEdges(t *testing.T) {
	if h := fault.Histogram(nil, 4); len(h) != 4 {
		t.Fatalf("empty input histogram = %v", h)
	}
	h := fault.Histogram([]float64{0, 0.5, 1}, 1)
	if h[0] != 3 {
		t.Fatalf("single-bin histogram = %v", h)
	}
}

func TestSummarize(t *testing.T) {
	r := &fault.Result{
		FDR:       []float64{0, 0.2, 0.8, 1.0},
		TotalRuns: 40,
	}
	s := fault.Summarize(r)
	if s.FFs != 4 || s.ZeroFDR != 1 || s.HighFDR != 2 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.MeanFDR-0.5) > 1e-12 || s.MaxFDR != 1.0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	empty := fault.Summarize(&fault.Result{})
	if empty.FFs != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestSummarizeMedianAndString(t *testing.T) {
	r := &fault.Result{FDR: []float64{0.9, 0.1, 0.5}, TotalRuns: 30}
	s := fault.Summarize(r)
	if s.MedianFDR != 0.5 {
		t.Fatalf("median = %v, want 0.5 (must sort, not take middle input)", s.MedianFDR)
	}
	for _, want := range []string{"ffs=3", "runs=30", "maxFDR=0.900"} {
		if !strings.Contains(s.String(), want) {
			t.Fatalf("String() = %q missing %q", s.String(), want)
		}
	}
}
