package fault

import (
	"fmt"
	"math"
	"sort"
)

// WilsonInterval returns the Wilson score confidence interval for a binomial
// proportion with the given number of failures out of n trials at confidence
// z (z = 1.96 for 95 %). It is well behaved at p = 0 and p = 1, which flat
// campaigns hit constantly.
func WilsonInterval(failures, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(failures) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	margin := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = center - margin
	hi = center + margin
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Histogram bins FDR values into equally wide bins over [0,1] and returns
// the per-bin counts.
func Histogram(fdr []float64, bins int) []int {
	counts := make([]int, bins)
	for _, v := range fdr {
		b := int(v * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts
}

// Summary aggregates a campaign for reports.
type Summary struct {
	FFs        int
	Injections int
	MeanFDR    float64
	MedianFDR  float64
	MaxFDR     float64
	ZeroFDR    int // flip-flops with no observed failures
	HighFDR    int // flip-flops with FDR >= 0.5
}

// Summarize computes campaign-level statistics.
func Summarize(r *Result) Summary {
	s := Summary{FFs: len(r.FDR), Injections: r.TotalRuns}
	if len(r.FDR) == 0 {
		return s
	}
	sorted := append([]float64(nil), r.FDR...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range r.FDR {
		sum += v
		if v == 0 {
			s.ZeroFDR++
		}
		if v >= 0.5 {
			s.HighFDR++
		}
		if v > s.MaxFDR {
			s.MaxFDR = v
		}
	}
	s.MeanFDR = sum / float64(len(r.FDR))
	s.MedianFDR = sorted[len(sorted)/2]
	return s
}

// String renders the summary as a one-line report.
func (s Summary) String() string {
	return fmt.Sprintf("ffs=%d runs=%d meanFDR=%.4f medianFDR=%.4f maxFDR=%.3f zero=%d high=%d",
		s.FFs, s.Injections, s.MeanFDR, s.MedianFDR, s.MaxFDR, s.ZeroFDR, s.HighFDR)
}
