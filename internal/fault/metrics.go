package fault

import (
	"time"

	"repro/internal/obs"
)

// Early-exit reasons of the incremental batch path, the label values of
// ffr_campaign_early_exits_total.
const (
	// exitAllFailed: every undecided lane was confirmed failed by the
	// streaming classifier.
	exitAllFailed = "all_failed"
	// exitAllSettled: every undecided lane re-converged to golden state.
	exitAllSettled = "all_settled"
	// exitMixed: the batch stopped on a mix of failed and settled lanes.
	exitMixed = "mixed"
	// exitWindowEnd: the batch ran to the end of the stimulus window (no
	// early exit).
	exitWindowEnd = "window_end"
)

// campaignMetrics is the campaign engine's observability surface
// (ffr_campaign_*). A nil *campaignMetrics is a valid no-op, so the hot
// simulation path pays one pointer check when telemetry is off.
type campaignMetrics struct {
	chunksCompleted *obs.Counter
	chunkSeconds    *obs.Histogram
	batches         *obs.Counter
	simCycles       *obs.Counter
	replayCycles    *obs.Counter
	ffHits          *obs.Counter
	ffCycles        *obs.Counter
	earlyExits      *obs.CounterVec
	ckSeconds       *obs.Histogram
	jobsDone        *obs.Gauge
	jobsTotal       *obs.Gauge
	lanesPerBatch   *obs.Gauge
}

// newCampaignMetrics precomputes the backend-labeled children for the
// runner's resolved backend, so the hot path observes plain metrics.
func newCampaignMetrics(reg *obs.Registry, backend string) *campaignMetrics {
	return &campaignMetrics{
		chunksCompleted: reg.Counter("ffr_campaign_chunks_completed_total",
			"shard chunks simulated and merged (excludes chunks restored from a checkpoint)"),
		chunkSeconds: reg.HistogramVec("ffr_campaign_chunk_seconds",
			"per-chunk simulation wall time in seconds by simulation backend",
			obs.DefBuckets, "backend").With(backend),
		batches: reg.Counter("ffr_campaign_batches_total",
			"64-lane batches simulated"),
		simCycles: reg.Counter("ffr_campaign_simulated_cycles_total",
			"engine cycles actually simulated"),
		replayCycles: reg.Counter("ffr_campaign_replay_cycles_total",
			"engine cycles a naive full-replay campaign would have simulated"),
		ffHits: reg.Counter("ffr_campaign_fastforward_hits_total",
			"batches whose golden-state snapshot fast-forward skipped a non-empty prefix"),
		ffCycles: reg.Counter("ffr_campaign_fastforward_cycles_total",
			"engine cycles skipped by golden-state snapshot fast-forward"),
		earlyExits: reg.CounterVec("ffr_campaign_early_exits_total",
			"incremental batches by how their simulation window ended", "reason"),
		ckSeconds: reg.Histogram("ffr_campaign_checkpoint_seconds",
			"checkpoint save latency in seconds", obs.DefBuckets),
		jobsDone: reg.Gauge("ffr_campaign_jobs_done",
			"injection jobs completed (including jobs restored from a checkpoint)"),
		jobsTotal: reg.Gauge("ffr_campaign_jobs_total",
			"injection jobs in the campaign plan"),
		lanesPerBatch: reg.Gauge("ffr_campaign_lanes_per_batch",
			"independent fault-simulation lanes per engine batch (64 on the interpreter, 64 per kernel batch word)"),
	}
}

func (m *campaignMetrics) startCampaign(jobsDone, jobsTotal, lanes int) {
	if m == nil {
		return
	}
	m.jobsDone.Set(float64(jobsDone))
	m.jobsTotal.Set(float64(jobsTotal))
	m.lanesPerBatch.Set(float64(lanes))
}

func (m *campaignMetrics) observeChunk(elapsed time.Duration) {
	if m == nil {
		return
	}
	m.chunksCompleted.Inc()
	m.chunkSeconds.Observe(elapsed.Seconds())
}

func (m *campaignMetrics) mergeChunk(jobsDone int, simCycles, replayCycles int64) {
	if m == nil {
		return
	}
	m.jobsDone.Set(float64(jobsDone))
	m.simCycles.Add(float64(simCycles))
	m.replayCycles.Add(float64(replayCycles))
}

// observeBatch records one incremental batch: the fast-forwarded prefix
// [0, start) and how the simulation window ended at stop of total cycles.
func (m *campaignMetrics) observeBatch(start, stop, cycles int, used, failed, settled uint64) {
	if m == nil {
		return
	}
	m.batches.Inc()
	if start > 0 {
		m.ffHits.Inc()
		m.ffCycles.Add(float64(start))
	}
	reason := exitWindowEnd
	if stop < cycles {
		switch {
		case used&^failed == 0:
			reason = exitAllFailed
		case used&^settled == 0:
			reason = exitAllSettled
		default:
			reason = exitMixed
		}
	}
	m.earlyExits.With(reason).Inc()
}

func (m *campaignMetrics) observeNaiveBatch() {
	if m == nil {
		return
	}
	m.batches.Inc()
	m.earlyExits.With(exitWindowEnd).Inc()
}

func (m *campaignMetrics) observeCheckpoint(elapsed time.Duration) {
	if m == nil {
		return
	}
	m.ckSeconds.Observe(elapsed.Seconds())
}
