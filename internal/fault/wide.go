package fault

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
)

// wide.go is the kernel backend's batch path: chunks are simulated as wide
// batches of W consecutive 64-lane groups (W = sim.DefaultKernelWords) on
// compiled fused-op bytecode instead of one group at a time on the
// interpreter. Group g of a wide batch covers exactly the jobs narrow
// batch wb+g would, in the same scheduled order, and emits its failure
// mask at the same position of the chunk's mask slice — so chunk masks,
// checkpoints and merged results are bit-identical to the interpreter path
// and wide batches never cross chunk boundaries.
//
// Early exit runs per group over the shared window: the wide batch stops
// once EVERY group's lanes are decided (confirmed failed or settled back
// to golden). Groups that decide early keep simulating until the last
// straggler, which is sound because settled lanes evolve identically to
// golden (their recorded rows equal the golden fill the narrow path uses)
// and stream-confirmed failures are final regardless of the trace suffix —
// the per-batch classification below is post hoc over the reconstructed
// trace, exactly like the narrow path.

// wideFlip is one scheduled engine event of a wide batch: apply kind to ff
// in the lanes of mask within batch word `word` at the given cycle. Like
// flipOp, fin marks the lanes' final event.
type wideFlip struct {
	cycle int
	ff    int
	word  int
	mask  uint64
	kind  effKind
	fin   bool
}

// sortWideFlips orders the flip schedule by cycle; same rationale as
// sortFlips (small, mostly sorted under the clustered schedule).
func sortWideFlips(flips []wideFlip) {
	for i := 1; i < len(flips); i++ {
		f := flips[i]
		j := i - 1
		for j >= 0 && flips[j].cycle > f.cycle {
			flips[j+1] = flips[j]
			j--
		}
		flips[j+1] = f
	}
}

// kernelCache memoizes compiled kernels process-wide, keyed by program
// identity and the kept-port signature. Studies build an ephemeral Runner
// per partial campaign over the same program; without the cache every one
// of those would re-run the compiler pipeline. Kernels are immutable after
// BuildKernel (all mutable state lives in KernelEngine), so sharing across
// runners and goroutines is safe. Entries live until process exit, bounded
// by the number of distinct (program, monitor-set) pairs.
var kernelCache sync.Map // kernelKey -> *kernelEntry

type kernelKey struct {
	p     *sim.Program
	ports string
}

type kernelEntry struct {
	once sync.Once
	k    *sim.Kernel
	err  error
}

// kernel compiles the program once per (program, observed ports), keeping
// exactly the output ports the campaign observes: the monitored ports and
// every loopback source (the stimulus reads those back each cycle).
// Everything else is dead fanout to the campaign and is pruned.
func (r *Runner) kernel() (*sim.Kernel, error) {
	r.kernOnce.Do(func() {
		keep := make(map[int]bool, len(r.monitors))
		for _, m := range r.monitors {
			keep[m] = true
		}
		for _, lb := range r.stim.Loopbacks() {
			keep[lb.Out] = true
		}
		ports := make([]int, 0, len(keep))
		for p := range keep {
			ports = append(ports, p)
		}
		sort.Ints(ports)
		key := kernelKey{p: r.p, ports: fmt.Sprint(ports)}
		ent, _ := kernelCache.LoadOrStore(key, &kernelEntry{})
		e := ent.(*kernelEntry)
		e.once.Do(func() {
			e.k, e.err = sim.BuildKernel(r.p, sim.KernelConfig{KeepOutputs: ports})
		})
		r.kern, r.kernErr = e.k, e.err
	})
	return r.kern, r.kernErr
}

// wideWorkerState is the reusable per-worker state of the kernel path: the
// wide engine, one faulty-trace buffer and stream per batch word, and the
// per-word lane bookkeeping, all recycled across wide batches.
type wideWorkerState struct {
	e       *sim.KernelEngine
	traces  []*sim.Trace
	flips   []wideFlip
	scratch []flipOp // expandJob staging, re-tagged with the batch word
	// glitches collects the batch's SET output glitches per word.
	glitches [][]laneGlitch
	streams  []Stream
	used     []uint64
	pending  []uint64
	failed   []uint64
	settled  []uint64
	// fx is the read-only SET effect table of the current plan; nil for
	// other models.
	fx map[int64]setEffect
}

func newWideWorkerState(r *Runner, kern *sim.Kernel, fx map[int64]setEffect) *wideWorkerState {
	W := sim.DefaultKernelWords
	ws := &wideWorkerState{
		e:        sim.NewKernelEngine(kern, W),
		traces:   make([]*sim.Trace, W),
		flips:    make([]wideFlip, 0, W*sim.Lanes),
		scratch:  make([]flipOp, 0, sim.Lanes),
		glitches: make([][]laneGlitch, W),
		streams:  make([]Stream, W),
		used:     make([]uint64, W),
		pending:  make([]uint64, W),
		failed:   make([]uint64, W),
		settled:  make([]uint64, W),
		fx:       fx,
	}
	for i := range ws.traces {
		ws.traces[i] = sim.NewTrace(r.monitors, r.stim.Cycles())
	}
	return ws
}

// runChunkWide simulates chunk ci as wide batches and returns the same
// per-64-lane-batch failure masks runChunk would, in the same order.
func (r *Runner) runChunkWide(ws *wideWorkerState, golden *sim.Trace, jobs []Job, order []int, sh sharding, ci int) ([]uint64, int64) {
	lo, hi := sh.chunkRange(ci)
	nb := sh.chunkBatches(ci)
	masks := make([]uint64, 0, nb)
	var simCycles int64
	W := ws.e.Words()
	for wb := 0; wb < nb; wb += W {
		groups := W
		if wb+groups > nb {
			groups = nb - wb
		}
		var cycles int
		masks, cycles = r.runBatchWide(ws, golden, jobs, order, lo, hi, wb, groups, masks)
		simCycles += int64(cycles)
	}
	return masks, simCycles
}

// runBatchWide simulates one wide batch of `groups` 64-lane groups
// (narrow-batch indices wb..wb+groups-1 of the chunk at job range
// [lo,hi)), appends one failure mask per group to masks and returns the
// window length simulated. The window is counted once per wide batch —
// each additional word rides the same combinational passes — so the
// simulated-cycle totals reflect the widening win.
func (r *Runner) runBatchWide(ws *wideWorkerState, golden *sim.Trace, jobs []Job, order []int, lo, hi, wb, groups int, masks []uint64) ([]uint64, int) {
	snaps := r.snaps
	ws.flips = ws.flips[:0]
	used := ws.used[:groups]
	pending := ws.pending[:groups]
	failed := ws.failed[:groups]
	settled := ws.settled[:groups]
	for g := 0; g < groups; g++ {
		used[g], failed[g], settled[g] = 0, 0, 0
		ws.glitches[g] = ws.glitches[g][:0]
		blo := lo + (wb+g)*sim.Lanes
		bhi := blo + sim.Lanes
		if bhi > hi {
			bhi = hi
		}
		var eventless uint64
		for lane, pos := 0, blo; pos < bhi; lane, pos = lane+1, pos+1 {
			job := jobs[jobIndex(order, pos)]
			laneMask := uint64(1) << uint(lane)
			ws.scratch = r.expandJob(ws.scratch[:0], ws.fx, job, laneMask)
			if len(ws.scratch) == 0 {
				eventless |= laneMask
			}
			for _, f := range ws.scratch {
				ws.flips = append(ws.flips, wideFlip{
					cycle: f.cycle, ff: f.ff, word: g, mask: f.mask, kind: f.kind, fin: f.fin,
				})
			}
			ws.glitches[g] = r.appendGlitches(ws.glitches[g], ws.fx, job, laneMask)
			used[g] |= laneMask
		}
		// Eventless lanes are never pending: their state is golden forever.
		pending[g] = used[g] &^ eventless
	}
	sortWideFlips(ws.flips)

	// A wide batch with no events at all (possible under SET) needs no
	// simulation: every group's trace is the golden trace plus glitches.
	var start, stop int
	if len(ws.flips) > 0 {
		minCycle := ws.flips[0].cycle
		start = snaps.SnapCycle(snaps.IndexAtOrBefore(minCycle))

		streams := ws.streams[:groups]
		sc, isStream := r.cls.(StreamClassifier)
		for g := range streams {
			if isStream {
				streams[g] = sc.StartStream(golden, used[g], start)
			} else {
				streams[g] = nil
			}
		}
		undecided := func() bool {
			for g := 0; g < groups; g++ {
				if used[g]&^(settled[g]|failed[g]) != 0 {
					return true
				}
			}
			return false
		}

		ptr := 0
		stop = sim.RunWindowWide(ws.e, r.stim, snaps, minCycle, sim.WideWindowConfig{
			Monitors: r.monitors,
			Traces:   ws.traces[:groups],
			PreEval: func(c int) {
				for ptr < len(ws.flips) && ws.flips[ptr].cycle == c {
					f := &ws.flips[ptr]
					applyWideOp(ws.e, f)
					if f.fin {
						pending[f.word] &^= f.mask
					}
					ptr++
				}
			},
			OnCycle: func(c int) bool {
				if !isStream {
					return false
				}
				gr := golden.Row(c)
				for g := 0; g < groups; g++ {
					failed[g] = streams[g].Observe(c, gr, ws.traces[g].Row(c))
				}
				return !undecided()
			},
			OnSnapshot: func(c int, diverged []uint64) bool {
				for g := 0; g < groups; g++ {
					settled[g] = used[g] &^ diverged[g] &^ pending[g]
				}
				return !undecided()
			},
		})
	}
	for g := 0; g < groups; g++ {
		tr := ws.traces[g]
		tr.CopyCycles(golden, 0, start)
		tr.CopyCycles(golden, stop, r.stim.Cycles())
		for i := range ws.glitches[g] {
			gl := &ws.glitches[g][i]
			tr.XORWord(gl.cycle, gl.mon, gl.mask)
		}
		r.metrics.observeBatch(start, stop, r.stim.Cycles(), used[g], failed[g], settled[g])
		masks = append(masks, r.cls.FailingLanes(golden, tr, used[g]))
	}
	return masks, stop - start
}
