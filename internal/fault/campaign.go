package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Job is one scheduled injection of a campaign: inject a fault at target FF
// at the given cycle. What "inject" means — and what index space FF draws
// from — is defined by the campaign's fault Model: under the FF-targeted
// models (SEU, MBU, stuck-at) FF indexes flip-flops and the fault is a flip,
// a cluster flip or a forced hold; under SET it indexes combinational cells
// and the fault is a one-evaluation output pulse. The name FF is kept for
// compatibility with serialized plans from SEU-only versions.
type Job struct {
	FF    int
	Cycle int
}

// Classifier inspects one faulty lane of a monitored trace against the
// golden trace and reports whether the lane exhibits a functional failure.
// Implementations define the applicative failure criterion.
type Classifier interface {
	// FailingLanes returns a bitmask of lanes in faulty that fail against
	// golden. used is the mask of lanes carrying real jobs.
	FailingLanes(golden, faulty *sim.Trace, used uint64) uint64
}

// ConfigFingerprinter is an optional Classifier extension: a stable digest
// of the failure criterion's configuration. Checkpoints record it so a
// campaign cannot be resumed under a different criterion than it was
// started with (failure masks from two criteria must never be merged).
type ConfigFingerprinter interface {
	ConfigFingerprint() uint64
}

// StreamClassifier is an optional Classifier extension for streaming
// early-exit classification: instead of waiting for the full faulty trace,
// the classifier observes the batch cycle by cycle and reports lanes whose
// failure is already certain. The runner stops a batch as soon as every used
// lane is either stream-confirmed failed or has re-converged to the golden
// engine state (the fault effect expired), because no remaining cycle can
// change either verdict.
//
// Soundness contract: a lane reported failed by Observe MUST be classified
// as failing by FailingLanes no matter what the remaining cycles hold —
// whether they are the lane's real future or the golden suffix the runner
// substitutes after an early exit. Classifiers whose criterion cannot
// confirm failures mid-run simply don't implement this interface and still
// benefit from golden fast-forward and re-convergence exits; their verdict
// always comes from the trace-based FailingLanes path.
type StreamClassifier interface {
	Classifier
	// StartStream begins streaming classification of one 64-lane batch
	// against the golden trace. used masks the lanes carrying real jobs;
	// from is the first cycle Observe will see — every earlier cycle is
	// bit-identical to golden (the batch's fast-forwarded prefix), which
	// stateful streams fold in by replaying the golden trace up to from.
	StartStream(golden *sim.Trace, used uint64, from int) Stream
}

// Stream observes consecutive simulated cycles of one faulty batch. Streams
// are single-batch, single-goroutine state machines; StartStream returns a
// fresh one per batch.
type Stream interface {
	// Observe consumes cycle c's packed monitor words (golden and faulty,
	// one word per monitor in recording order) and returns the cumulative
	// mask of lanes already certain to fail. Cycles arrive in order, but
	// Observe may not see every cycle from 0: the runner starts at the
	// batch's fast-forward point, where every lane is still bit-identical
	// to golden.
	Observe(cycle int, golden, faulty []uint64) uint64
}

// CampaignConfig parameterizes RunCampaign.
type CampaignConfig struct {
	// Model selects the fault model; the zero value is the SEU reference
	// model (one flip-flop flip, full active window).
	Model Model
	// InjectionsPerFF is the number of injection runs per target (the
	// paper uses 170 per flip-flop).
	InjectionsPerFF int
	// ActiveCycles bounds injection times: cycles are drawn uniformly
	// from [0, ActiveCycles), restricted further by a windowed Model.
	ActiveCycles int
	// Seed drives injection-time sampling.
	Seed int64
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
}

// Validate checks the configuration against the stimulus.
func (c CampaignConfig) Validate(stimCycles int) error {
	if c.InjectionsPerFF < 1 {
		return fmt.Errorf("fault: InjectionsPerFF %d < 1", c.InjectionsPerFF)
	}
	if c.ActiveCycles < 1 || c.ActiveCycles > stimCycles {
		return fmt.Errorf("fault: ActiveCycles %d out of (0,%d]", c.ActiveCycles, stimCycles)
	}
	if c.Workers < 0 {
		return fmt.Errorf("fault: negative Workers %d", c.Workers)
	}
	return nil
}

// Result is the outcome of a campaign. The per-target arrays are indexed by
// the campaign model's target space: flip-flop index for SEU, MBU and
// stuck-at (an MBU is counted against its anchor flip-flop), combinational
// target index for SET.
type Result struct {
	// FDR is the per-target Functional De-Rating factor:
	// failures / injections.
	FDR []float64
	// Failures and Injections are the per-target raw counts.
	Failures   []int
	Injections []int
	// TotalRuns is the number of injection runs simulated.
	TotalRuns int
	// Batches is the number of 64-lane simulation passes.
	Batches int
	// Chunks is the number of shard chunks the plan was split into.
	Chunks int
	// ResumedChunks is how many chunks were restored from a checkpoint
	// instead of simulated.
	ResumedChunks int
	// SimulatedCycles counts the engine cycles actually simulated in this
	// run (chunks restored from a checkpoint contribute nothing).
	SimulatedCycles int64
	// ReplayCycles is what the naive full-replay path would have simulated
	// for the same chunks: computed batches × stimulus cycles. On the
	// naive path SimulatedCycles == ReplayCycles; their ratio is the
	// incremental engine's cycle saving.
	ReplayCycles int64
}

// NewPlan samples the paper's injection plan: for every flip-flop of p,
// injectionsPerFF uniformly random cycles in [0, activeCycles). The plan is
// ordered by flip-flop, matching how the paper reports per-instance results.
func NewPlan(numFFs, injectionsPerFF, activeCycles int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, 0, numFFs*injectionsPerFF)
	for ff := 0; ff < numFFs; ff++ {
		for k := 0; k < injectionsPerFF; k++ {
			jobs = append(jobs, Job{FF: ff, Cycle: rng.Intn(activeCycles)})
		}
	}
	return jobs
}

// RunCampaign executes the full flat statistical campaign: a golden run,
// then every job of the plan in 64-lane batches, classified by cls. The
// zero-valued cfg.Model runs the paper's SEU campaign, whose plan and
// results are bit-identical to the pre-model NewPlan path.
func RunCampaign(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, cfg CampaignConfig) (*Result, error) {
	if err := cfg.Validate(stim.Cycles()); err != nil {
		return nil, err
	}
	r, err := NewRunner(p, stim, monitors, cls, RunnerConfig{Workers: cfg.Workers, Model: cfg.Model})
	if err != nil {
		return nil, err
	}
	jobs := NewModelPlan(cfg.Model, cfg.Model.NumTargets(p), cfg.InjectionsPerFF, cfg.ActiveCycles, cfg.Seed)
	return r.Run(jobs)
}

// RunJobs executes an explicit injection plan on an ephemeral runner with
// the given configuration. The core estimation flow uses it to fault-inject
// only the training subset of flip-flops, passing the study's golden trace
// and snapshots through cfg so partial campaigns ride the incremental path
// without re-simulating either.
func RunJobs(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, jobs []Job, cfg RunnerConfig) (*Result, error) {
	r, err := NewRunner(p, stim, monitors, cls, cfg)
	if err != nil {
		return nil, err
	}
	return r.Run(jobs)
}
