// Package fault implements the paper's flat statistical fault-injection
// campaign (Section IV-A): SEUs are injected by inverting the value stored
// in flip-flops at random times during the active simulation phase, runs are
// classified at the applicative level against a golden reference, and the
// per-flip-flop Functional De-Rating factor is the fraction of failing runs.
//
// The campaign exploits the 64-lane bit-parallel engine: 64 independent
// injection runs execute per simulation pass, and batches fan out across a
// bounded worker pool. Results are merged deterministically, so worker count
// never changes the outcome.
package fault

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/sim"
)

// Job is a single injection: flip flip-flop FF at the given cycle.
type Job struct {
	FF    int
	Cycle int
}

// Classifier inspects one faulty lane of a monitored trace against the
// golden trace and reports whether the lane exhibits a functional failure.
// Implementations define the applicative failure criterion.
type Classifier interface {
	// FailingLanes returns a bitmask of lanes in faulty that fail against
	// golden. used is the mask of lanes carrying real jobs.
	FailingLanes(golden, faulty *sim.Trace, used uint64) uint64
}

// CampaignConfig parameterizes RunCampaign.
type CampaignConfig struct {
	// InjectionsPerFF is the number of SEU runs per flip-flop (the paper
	// uses 170).
	InjectionsPerFF int
	// ActiveCycles bounds injection times: cycles are drawn uniformly
	// from [0, ActiveCycles).
	ActiveCycles int
	// Seed drives injection-time sampling.
	Seed int64
	// Workers is the worker-pool size; 0 means GOMAXPROCS.
	Workers int
}

// Validate checks the configuration against the stimulus.
func (c CampaignConfig) Validate(stimCycles int) error {
	if c.InjectionsPerFF < 1 {
		return fmt.Errorf("fault: InjectionsPerFF %d < 1", c.InjectionsPerFF)
	}
	if c.ActiveCycles < 1 || c.ActiveCycles > stimCycles {
		return fmt.Errorf("fault: ActiveCycles %d out of (0,%d]", c.ActiveCycles, stimCycles)
	}
	if c.Workers < 0 {
		return fmt.Errorf("fault: negative Workers %d", c.Workers)
	}
	return nil
}

// Result is the outcome of a campaign.
type Result struct {
	// FDR is the per-flip-flop Functional De-Rating factor:
	// failures / injections.
	FDR []float64
	// Failures and Injections are the per-flip-flop raw counts.
	Failures   []int
	Injections []int
	// TotalRuns is the number of injection runs simulated.
	TotalRuns int
	// Batches is the number of 64-lane simulation passes.
	Batches int
}

// NewPlan samples the paper's injection plan: for every flip-flop of p,
// injectionsPerFF uniformly random cycles in [0, activeCycles). The plan is
// ordered by flip-flop, matching how the paper reports per-instance results.
func NewPlan(numFFs, injectionsPerFF, activeCycles int, seed int64) []Job {
	rng := rand.New(rand.NewSource(seed))
	jobs := make([]Job, 0, numFFs*injectionsPerFF)
	for ff := 0; ff < numFFs; ff++ {
		for k := 0; k < injectionsPerFF; k++ {
			jobs = append(jobs, Job{FF: ff, Cycle: rng.Intn(activeCycles)})
		}
	}
	return jobs
}

// batchResult carries per-batch failure outcomes back to the merger.
type batchResult struct {
	index   int
	failing uint64
}

// RunCampaign executes the full flat statistical campaign: a golden run,
// then every job of the plan in 64-lane batches, classified by cls.
func RunCampaign(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, cfg CampaignConfig) (*Result, error) {
	if err := cfg.Validate(stim.Cycles()); err != nil {
		return nil, err
	}
	goldenEngine := sim.NewEngine(p)
	golden, _ := sim.Run(goldenEngine, stim, sim.RunConfig{Monitors: monitors})

	jobs := NewPlan(p.NumFFs(), cfg.InjectionsPerFF, cfg.ActiveCycles, cfg.Seed)
	return runJobs(p, stim, monitors, cls, golden, jobs, cfg.Workers)
}

// RunJobs executes an explicit injection plan against a provided golden
// trace. The core estimation flow uses it to fault-inject only the training
// subset of flip-flops.
func RunJobs(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, golden *sim.Trace, jobs []Job, workers int) (*Result, error) {
	for _, j := range jobs {
		if j.FF < 0 || j.FF >= p.NumFFs() {
			return nil, fmt.Errorf("fault: job targets FF %d of %d", j.FF, p.NumFFs())
		}
		if j.Cycle < 0 || j.Cycle >= stim.Cycles() {
			return nil, fmt.Errorf("fault: job at cycle %d of %d", j.Cycle, stim.Cycles())
		}
	}
	return runJobs(p, stim, monitors, cls, golden, jobs, workers)
}

func runJobs(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, golden *sim.Trace, jobs []Job, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numBatches := (len(jobs) + sim.Lanes - 1) / sim.Lanes
	failMasks := make([]uint64, numBatches)

	indices := make(chan int)
	results := make(chan batchResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := sim.NewEngine(p)
			// Per-cycle flip schedule, rebuilt per batch.
			type flip struct {
				ff   int
				mask uint64
			}
			byCycle := make(map[int][]flip)
			for bi := range indices {
				lo := bi * sim.Lanes
				hi := lo + sim.Lanes
				if hi > len(jobs) {
					hi = len(jobs)
				}
				batch := jobs[lo:hi]
				for c := range byCycle {
					delete(byCycle, c)
				}
				var used uint64
				for lane, job := range batch {
					byCycle[job.Cycle] = append(byCycle[job.Cycle], flip{ff: job.FF, mask: 1 << uint(lane)})
					used |= 1 << uint(lane)
				}
				faulty, _ := sim.Run(e, stim, sim.RunConfig{
					Monitors: monitors,
					PreEval: func(c int) {
						for _, f := range byCycle[c] {
							e.FlipFF(f.ff, f.mask)
						}
					},
				})
				results <- batchResult{index: bi, failing: cls.FailingLanes(golden, faulty, used)}
			}
		}()
	}
	go func() {
		for bi := 0; bi < numBatches; bi++ {
			indices <- bi
		}
		close(indices)
		wg.Wait()
		close(results)
	}()
	for r := range results {
		failMasks[r.index] = r.failing
	}

	res := &Result{
		FDR:        make([]float64, p.NumFFs()),
		Failures:   make([]int, p.NumFFs()),
		Injections: make([]int, p.NumFFs()),
		TotalRuns:  len(jobs),
		Batches:    numBatches,
	}
	for bi, mask := range failMasks {
		lo := bi * sim.Lanes
		hi := lo + sim.Lanes
		if hi > len(jobs) {
			hi = len(jobs)
		}
		for lane, job := range jobs[lo:hi] {
			res.Injections[job.FF]++
			if mask>>uint(lane)&1 == 1 {
				res.Failures[job.FF]++
			}
		}
	}
	for ff := range res.FDR {
		if res.Injections[ff] > 0 {
			res.FDR[ff] = float64(res.Failures[ff]) / float64(res.Injections[ff])
		}
	}
	return res, nil
}
