package fault

import "fmt"

// Backend selects the simulation engine a campaign's faulty runs execute
// on. Results are bit-identical across backends — the choice trades
// nothing but throughput — so checkpoints do not record it and a campaign
// may resume under a different backend than it started on (the
// equivalence suite pins both properties).
type Backend string

const (
	// BackendAuto (the zero value) selects the fastest available backend,
	// currently the compiled kernel.
	BackendAuto Backend = ""
	// BackendInterp forces the per-op interpreter (sim.Engine) with narrow
	// 64-lane batches — the reference implementation.
	BackendInterp Backend = "interp"
	// BackendKernel runs faulty batches on compiled fused-op bytecode
	// (sim.BuildKernel) over wide batches of 64·sim.DefaultKernelWords
	// lanes per combinational pass.
	BackendKernel Backend = "kernel"
)

// Backends lists the accepted RunnerConfig.Backend spellings, for CLI
// flag validation.
var Backends = []string{string(BackendAuto), string(BackendInterp), string(BackendKernel)}

// ValidBackend reports whether b is an accepted Backend value; CLI and
// environment plumbing validate user spellings with it.
func ValidBackend(b Backend) bool { return b.valid() }

// ParseBackend maps a user spelling to a Backend: "auto" and "" select
// BackendAuto, "interp" and "kernel" their backends; anything else errors.
func ParseBackend(s string) (Backend, error) {
	if s == "auto" {
		s = ""
	}
	b := Backend(s)
	if !b.valid() {
		return "", fmt.Errorf("fault: unknown backend %q (want auto, interp or kernel)", s)
	}
	return b, nil
}

func (b Backend) valid() bool {
	switch b {
	case BackendAuto, BackendInterp, BackendKernel:
		return true
	}
	return false
}

// normalize resolves BackendAuto to the concrete default.
func (b Backend) normalize() Backend {
	if b == BackendAuto {
		return BackendKernel
	}
	return b
}
