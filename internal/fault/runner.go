package fault

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Runner is the sharded, resumable campaign runtime. It deterministically
// splits an injection plan into fixed-size chunks of whole 64-lane batches,
// fans the chunks out across a bounded worker pool, streams per-chunk
// partial results through a merge stage, and (when configured) periodically
// checkpoints completed-chunk state to disk so an interrupted campaign can
// resume exactly where it stopped.
//
// Simulation is incremental by default. Three mechanisms compose, all of
// them result-preserving (the equivalence suite pins bit-identical failure
// masks against the naive full-replay path):
//
//   - Golden fast-forward: the golden run captures periodic engine-state
//     snapshots (sim.Snapshots); every faulty batch restores the snapshot at
//     or before its earliest injection cycle instead of re-simulating the
//     prefix, which is provably identical to golden because lanes only
//     diverge at their first flip.
//   - Streaming early exit: a batch stops as soon as every used lane is
//     either confirmed failed by a streaming classifier (StreamClassifier)
//     or has re-converged to the golden engine state — in both cases the
//     remaining cycles cannot change the verdict, so the trace suffix is
//     filled from the golden run and classified as usual.
//   - Cycle-clustered scheduling: jobs are packed into batches in ascending
//     injection-cycle order (see Schedule), so each batch spans a narrow
//     cycle window and the prefix skip actually bites.
//
// Determinism is structural: a chunk's failure masks depend only on the
// plan, the schedule and the golden trace, never on scheduling of workers,
// worker count, chunk size, snapshot cadence or how often the run was
// interrupted. Resuming from a checkpoint therefore produces bit-identical
// per-FF failure counts to an uninterrupted run — a property the tests pin.
//
// The golden trace is simulated at most once per Runner and reused across
// all shards and Run calls (and can be supplied up front when the caller
// already has it, as the core study does — ideally together with the
// snapshots captured during that same run).

// Default shard geometry and checkpoint cadence.
const (
	// DefaultChunkJobs is the default shard chunk size: 16 batches.
	DefaultChunkJobs = 16 * sim.Lanes
	// DefaultCheckpointEvery is the default number of completed chunks
	// between checkpoint flushes.
	DefaultCheckpointEvery = 4
)

// ErrInterrupted reports a campaign stopped by context cancellation. The
// checkpoint (when configured) has been flushed with all completed chunks.
var ErrInterrupted = errors.New("fault: campaign interrupted")

// Progress is a point-in-time view of a running campaign, delivered to
// RunnerConfig.OnProgress after every completed chunk.
type Progress struct {
	// JobsDone and JobsTotal count injection runs, including runs
	// restored from a checkpoint.
	JobsDone, JobsTotal int
	// ChunksDone and ChunksTotal count shard chunks.
	ChunksDone, ChunksTotal int
	// ChunksResumed is how many of ChunksDone were restored from the
	// checkpoint rather than simulated in this run.
	ChunksResumed int
	// Elapsed is the wall time since Run started.
	Elapsed time.Duration
	// ETA estimates the remaining wall time from this run's own
	// throughput; it is zero until at least one chunk has been simulated.
	ETA time.Duration
}

// RunnerConfig parameterizes a Runner.
type RunnerConfig struct {
	// Model selects the fault model jobs are executed under; the zero
	// value is the SEU reference model. The model defines what a job's
	// target index means (flip-flop, or combinational cell for SET) and
	// what engine events a job expands into — see Model. Checkpoints
	// record the model and refuse to resume under a different one.
	Model Model
	// ChunkJobs is the shard chunk size in jobs; it is rounded up to a
	// whole number of 64-lane batches. 0 means DefaultChunkJobs.
	ChunkJobs int
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Golden optionally supplies a precomputed golden trace. When nil the
	// Runner simulates it once on first use.
	Golden *sim.Trace
	// Snapshots optionally supplies the golden engine-state restore points
	// captured during the caller's golden run (sim.RunConfig.Snapshots).
	// When nil the Runner captures its own on first use — during its own
	// golden run when it simulates one, otherwise via one extra golden-rate
	// replay, amortized over the campaign.
	Snapshots *sim.Snapshots
	// SnapshotEvery is the snapshot cadence in cycles for Runner-captured
	// snapshots; 0 means sim.DefaultSnapshotEvery. It must be 0 or match
	// the cadence of a supplied Snapshots set. The cadence never changes
	// results, only the fast-forward and early-exit granularity.
	SnapshotEvery int
	// Schedule selects how jobs are packed into 64-lane batches; ""
	// means ScheduleClustered. Checkpoints record the schedule their
	// masks were packed under: resuming under an explicitly different
	// schedule is rejected, while the "" default adopts the checkpoint's
	// schedule — so plan-order checkpoints from before schedules existed
	// stay resumable without any configuration.
	Schedule Schedule
	// Backend selects the engine faulty batches run on: the compiled
	// fused-op kernel over wide batches (BackendKernel, the BackendAuto
	// default) or the per-op interpreter over 64-lane batches
	// (BackendInterp). Results are bit-identical either way, so
	// checkpoints don't record the backend and resume across it. The
	// golden run always uses the interpreter. Naive forces BackendInterp:
	// the kernel path is incremental by construction.
	Backend Backend
	// Naive forces the non-incremental reference path: every batch
	// replays the stimulus from cycle 0 and is classified post hoc over
	// the full trace. Results are bit-identical to the incremental path;
	// the equivalence suite and before/after benchmarks rely on that.
	Naive bool
	// CheckpointPath enables checkpointing to this file; "" disables it.
	CheckpointPath string
	// CheckpointEvery is the number of completed chunks between flushes;
	// 0 means DefaultCheckpointEvery.
	CheckpointEvery int
	// Resume loads CheckpointPath (if it exists) before running and skips
	// its completed chunks. Requires CheckpointPath.
	Resume bool
	// OnProgress, when non-nil, is invoked from the merge stage after
	// every completed chunk.
	OnProgress func(Progress)
	// Metrics optionally receives the ffr_campaign_* metric families
	// (per-chunk wall time, simulated-vs-replay cycles, fast-forward hit
	// rate, early-exit reasons, checkpoint latency, job progress gauges);
	// nil disables campaign metrics.
	Metrics *obs.Registry
	// Logger optionally receives structured campaign records (start,
	// per-chunk completions, checkpoint flushes); nil disables logging.
	Logger *obs.Logger
}

// Runner executes injection plans; see the package comment above.
type Runner struct {
	p        *sim.Program
	stim     *sim.Stimulus
	monitors []int
	cls      Classifier
	cfg      RunnerConfig
	schedule Schedule
	// scheduleSet records whether the schedule was an explicit choice;
	// the zero value adopts a resumed checkpoint's schedule instead of
	// rejecting it, keeping pre-schedule (plan-order) checkpoints usable.
	scheduleSet bool
	// backend is the resolved concrete backend (never BackendAuto).
	backend Backend
	// model is the resolved fault model (normalized; never zero-valued).
	model Model

	metrics *campaignMetrics
	log     *obs.Logger

	// clusters are the lazily computed MBU proximity clusters.
	clusterOnce sync.Once
	clusters    [][]int

	kernOnce sync.Once
	kern     *sim.Kernel
	kernErr  error

	goldenOnce sync.Once
	golden     *sim.Trace
	goldenErr  error

	snapOnce sync.Once
	snaps    *sim.Snapshots
}

// NewRunner validates the configuration and returns a Runner.
func NewRunner(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, cfg RunnerConfig) (*Runner, error) {
	if p == nil || stim == nil || cls == nil {
		return nil, fmt.Errorf("fault: runner needs a program, stimulus and classifier")
	}
	if len(monitors) == 0 {
		return nil, fmt.Errorf("fault: runner needs at least one monitored output")
	}
	if cfg.ChunkJobs < 0 {
		return nil, fmt.Errorf("fault: negative ChunkJobs %d", cfg.ChunkJobs)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("fault: negative Workers %d", cfg.Workers)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("fault: negative CheckpointEvery %d", cfg.CheckpointEvery)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("fault: negative SnapshotEvery %d", cfg.SnapshotEvery)
	}
	if cfg.Resume && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("fault: Resume requires a CheckpointPath")
	}
	if !cfg.Schedule.valid() {
		return nil, fmt.Errorf("fault: unknown schedule %q", cfg.Schedule)
	}
	if !cfg.Backend.valid() {
		return nil, fmt.Errorf("fault: unknown backend %q", cfg.Backend)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Snapshots != nil {
		if err := cfg.Snapshots.Matches(p, stim); err != nil {
			return nil, fmt.Errorf("fault: supplied snapshots: %w", err)
		}
		if cfg.SnapshotEvery != 0 && cfg.SnapshotEvery != cfg.Snapshots.Every() {
			return nil, fmt.Errorf("fault: SnapshotEvery %d conflicts with supplied snapshot cadence %d",
				cfg.SnapshotEvery, cfg.Snapshots.Every())
		}
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	backend := cfg.Backend.normalize()
	if cfg.Naive {
		backend = BackendInterp
	}
	r := &Runner{
		p: p, stim: stim, monitors: monitors, cls: cls, cfg: cfg,
		schedule:    cfg.Schedule.normalize(),
		scheduleSet: cfg.Schedule != "",
		backend:     backend,
		model:       cfg.Model.normalize(),
		golden:      cfg.Golden,
		snaps:       cfg.Snapshots,
		log:         cfg.Logger.Component("campaign"),
	}
	if cfg.Metrics != nil {
		r.metrics = newCampaignMetrics(cfg.Metrics, string(backend))
	}
	return r, nil
}

// Golden returns the golden reference trace, simulating it on first use.
// Every shard of every Run call classifies against this one trace. A
// supplied trace is validated against the stimulus geometry; a mismatched
// golden would silently misclassify every lane.
func (r *Runner) Golden() (*sim.Trace, error) {
	r.goldenOnce.Do(func() {
		if r.golden == nil {
			// Capture snapshots during this one golden run when the
			// incremental path will need them and none were supplied.
			var snaps *sim.Snapshots
			if r.snaps == nil && !r.cfg.Naive {
				snaps = sim.NewSnapshots(r.p, r.stim, r.cfg.SnapshotEvery)
			}
			e := sim.NewEngine(r.p)
			r.golden, _ = sim.Run(e, r.stim, sim.RunConfig{Monitors: r.monitors, Snapshots: snaps})
			if snaps != nil {
				r.snaps = snaps
			}
		}
		if r.golden == nil {
			r.goldenErr = fmt.Errorf("fault: golden simulation produced no trace")
			return
		}
		if r.golden.Cycles() != r.stim.Cycles() {
			r.goldenErr = fmt.Errorf("fault: golden trace covers %d cycles, stimulus has %d",
				r.golden.Cycles(), r.stim.Cycles())
			return
		}
		if len(r.golden.Monitors) != len(r.monitors) {
			r.goldenErr = fmt.Errorf("fault: golden trace records %d monitors, campaign monitors %d",
				len(r.golden.Monitors), len(r.monitors))
			return
		}
		for i, m := range r.monitors {
			if r.golden.Monitors[i] != m {
				r.goldenErr = fmt.Errorf("fault: golden trace monitor %d is port %d, campaign monitors port %d",
					i, r.golden.Monitors[i], m)
				return
			}
		}
	})
	return r.golden, r.goldenErr
}

// snapshots returns the golden restore points, capturing them with one
// golden-rate replay if neither the config nor Golden() produced them.
func (r *Runner) snapshots() *sim.Snapshots {
	r.snapOnce.Do(func() {
		if r.snaps != nil {
			return
		}
		snaps := sim.NewSnapshots(r.p, r.stim, r.cfg.SnapshotEvery)
		e := sim.NewEngine(r.p)
		sim.Run(e, r.stim, sim.RunConfig{Snapshots: snaps})
		r.snaps = snaps
	})
	return r.snaps
}

// Run executes the plan to completion (or until the checkpoint says it
// already completed). It is RunContext with a background context.
func (r *Runner) Run(jobs []Job) (*Result, error) {
	return r.RunContext(context.Background(), jobs)
}

// RunContext executes the plan. On context cancellation it finishes the
// chunks already in flight, flushes the checkpoint (when configured) and
// returns an error wrapping ErrInterrupted; a later call with Resume set
// picks up from the flushed state.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) (*Result, error) {
	// Internal cancellation lets the merge stage stop dispatching new
	// chunks as soon as a checkpoint save fails.
	ctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	if err := r.validateJobs(jobs); err != nil {
		return nil, err
	}
	sh, err := newSharding(len(jobs), r.cfg.ChunkJobs)
	if err != nil {
		return nil, err
	}
	golden, err := r.Golden()
	if err != nil {
		return nil, err
	}
	var snaps *sim.Snapshots
	if !r.cfg.Naive {
		snaps = r.snapshots()
	}
	var kern *sim.Kernel
	if r.backend == BackendKernel {
		if kern, err = r.kernel(); err != nil {
			return nil, err
		}
	}
	// Model-dependent precomputation, shared read-only by all workers.
	setFX := r.setEffects(jobs)
	if r.model.Kind == KindMBU {
		r.ffClusters()
	}

	// Restore completed chunks from the checkpoint, if resuming. This may
	// adopt the checkpoint's schedule (see matchCheckpoint), so the
	// lane-packing permutation is computed after it.
	done := make(map[int][]uint64, sh.numChunks)
	if r.cfg.Resume {
		ck, err := LoadCheckpoint(r.cfg.CheckpointPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume; run from scratch.
		case err != nil:
			return nil, err
		default:
			if err := r.matchCheckpoint(ck, jobs, sh, golden); err != nil {
				return nil, err
			}
			for ci, masks := range ck.Chunks {
				done[ci] = masks
			}
		}
	}
	order, err := scheduleOrder(jobs, r.schedule)
	if err != nil {
		return nil, err
	}
	resumed := len(done)
	jobsDone := 0
	for ci := range done {
		lo, hi := sh.chunkRange(ci)
		jobsDone += hi - lo
	}

	pending := make([]int, 0, sh.numChunks-resumed)
	for ci := 0; ci < sh.numChunks; ci++ {
		if _, ok := done[ci]; !ok {
			pending = append(pending, ci)
		}
	}

	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	lanes := sim.Lanes
	if kern != nil {
		lanes = sim.Lanes * sim.DefaultKernelWords
	}
	r.metrics.startCampaign(jobsDone, sh.totalJobs, lanes)
	r.log.Info("campaign start",
		obs.F("jobs", sh.totalJobs),
		obs.F("chunks", sh.numChunks),
		obs.F("resumed", resumed),
		obs.F("workers", workers),
		obs.F("schedule", string(r.schedule)),
		obs.F("backend", string(r.backend)),
		obs.F("lanes_per_batch", lanes),
		obs.F("naive", r.cfg.Naive))
	if workers > len(pending) {
		// Zero pending (fully resumed) means zero workers: wg.Wait
		// returns immediately and the merge loop is a no-op.
		workers = len(pending)
	}

	type chunkResult struct {
		index     int
		masks     []uint64
		simCycles int64
	}
	chunks := make(chan int)
	results := make(chan chunkResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var ws *workerState
			var wws *wideWorkerState
			if kern != nil {
				wws = newWideWorkerState(r, kern, setFX)
			} else {
				ws = newWorkerState(r, snaps, setFX)
			}
			for ci := range chunks {
				chunkStart := time.Now()
				var masks []uint64
				var simCycles int64
				if wws != nil {
					masks, simCycles = r.runChunkWide(wws, golden, jobs, order, sh, ci)
				} else {
					masks, simCycles = r.runChunk(ws, golden, jobs, order, sh, ci)
				}
				r.metrics.observeChunk(time.Since(chunkStart))
				results <- chunkResult{index: ci, masks: masks, simCycles: simCycles}
			}
		}()
	}
	go func() {
		defer close(chunks)
		for _, ci := range pending {
			select {
			case <-ctx.Done():
				return
			case chunks <- ci:
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merge stage: collect chunk results, report progress, checkpoint.
	start := time.Now()
	sinceFlush := 0
	var saveErr error
	var simCycles, replayCycles int64
	for cr := range results {
		done[cr.index] = cr.masks
		lo, hi := sh.chunkRange(cr.index)
		jobsDone += hi - lo
		crReplay := int64(sh.chunkBatches(cr.index)) * int64(r.stim.Cycles())
		simCycles += cr.simCycles
		replayCycles += crReplay
		sinceFlush++
		r.metrics.mergeChunk(jobsDone, cr.simCycles, crReplay)
		if r.log.Enabled(obs.LevelDebug) {
			r.log.Debug("chunk merged",
				obs.F("chunk", cr.index),
				obs.F("jobs_done", jobsDone),
				obs.F("sim_cycles", cr.simCycles))
		}
		r.reportProgress(sh, jobsDone, len(done), resumed, len(done)-resumed, start)
		if r.cfg.CheckpointPath != "" && sinceFlush >= r.cfg.CheckpointEvery && saveErr == nil {
			if saveErr = r.saveCheckpoint(jobs, sh, golden, done); saveErr != nil {
				// Fail fast: a broken checkpoint sink would silently
				// turn the campaign non-resumable, so stop dispatching
				// instead of simulating chunks that can't be persisted.
				cancelRun()
			}
			sinceFlush = 0
		}
	}
	if saveErr != nil {
		return nil, saveErr
	}

	if len(done) < sh.numChunks {
		// Interrupted: flush everything completed so far and bail. The
		// flush is unconditional so a resumable file exists even when
		// the interrupt landed before the first periodic save.
		if r.cfg.CheckpointPath != "" {
			if err := r.saveCheckpoint(jobs, sh, golden, done); err != nil {
				return nil, err
			}
		}
		return nil, fmt.Errorf("%w after %d of %d chunks: %v",
			ErrInterrupted, len(done), sh.numChunks, context.Cause(ctx))
	}
	if r.cfg.CheckpointPath != "" && sinceFlush > 0 {
		if err := r.saveCheckpoint(jobs, sh, golden, done); err != nil {
			return nil, err
		}
	}
	res := r.merge(jobs, order, sh, done, resumed)
	res.SimulatedCycles = simCycles
	res.ReplayCycles = replayCycles
	r.log.Info("campaign complete",
		obs.F("jobs", sh.totalJobs),
		obs.F("chunks", sh.numChunks),
		obs.F("resumed", resumed),
		obs.F("sim_cycles", simCycles),
		obs.F("replay_cycles", replayCycles),
		obs.F("elapsed", time.Since(start)))
	return res, nil
}

// flipOp is one scheduled engine event of a batch: apply kind to ff in the
// lanes of mask at the given cycle. fin marks the lanes' final event (see
// modelexec.go); under the SEU reference model every job is exactly one
// effFlip with fin set.
type flipOp struct {
	cycle int
	ff    int
	mask  uint64
	kind  effKind
	fin   bool
}

// workerState is the reusable per-worker simulation state: the engine, the
// faulty-trace buffer of the incremental path, the event schedule and the
// SET glitch list, all recycled across batches so the hot loop allocates
// nothing per batch.
type workerState struct {
	e        *sim.Engine
	trace    *sim.Trace
	flips    []flipOp
	glitches []laneGlitch
	// fx is the read-only SET effect table of the current plan; nil for
	// other models.
	fx map[int64]setEffect
}

func newWorkerState(r *Runner, snaps *sim.Snapshots, fx map[int64]setEffect) *workerState {
	ws := &workerState{
		e:     sim.NewEngine(r.p),
		flips: make([]flipOp, 0, sim.Lanes),
		fx:    fx,
	}
	if snaps != nil {
		ws.trace = sim.NewTrace(r.monitors, r.stim.Cycles())
	}
	return ws
}

// sortFlips orders the flip schedule by cycle. Batches are at most 64 flips
// and already sorted under the clustered schedule, so insertion sort beats
// the allocation and indirection of sort.Slice here.
func sortFlips(flips []flipOp) {
	for i := 1; i < len(flips); i++ {
		f := flips[i]
		j := i - 1
		for j >= 0 && flips[j].cycle > f.cycle {
			flips[j+1] = flips[j]
			j--
		}
		flips[j+1] = f
	}
}

// runChunk simulates every 64-lane batch of chunk ci and returns the
// per-batch failure masks plus the number of engine cycles simulated.
func (r *Runner) runChunk(ws *workerState, golden *sim.Trace, jobs []Job, order []int, sh sharding, ci int) ([]uint64, int64) {
	lo, hi := sh.chunkRange(ci)
	masks := make([]uint64, 0, sh.chunkBatches(ci))
	var simCycles int64
	for blo := lo; blo < hi; blo += sim.Lanes {
		bhi := blo + sim.Lanes
		if bhi > hi {
			bhi = hi
		}
		ws.flips = ws.flips[:0]
		ws.glitches = ws.glitches[:0]
		var used, eventless uint64
		for lane, pos := 0, blo; pos < bhi; lane, pos = lane+1, pos+1 {
			job := jobs[jobIndex(order, pos)]
			laneMask := uint64(1) << uint(lane)
			n := len(ws.flips)
			ws.flips = r.expandJob(ws.flips, ws.fx, job, laneMask)
			if len(ws.flips) == n {
				eventless |= laneMask
			}
			ws.glitches = r.appendGlitches(ws.glitches, ws.fx, job, laneMask)
			used |= laneMask
		}
		sortFlips(ws.flips)

		var mask uint64
		var cycles int
		if ws.trace != nil {
			mask, cycles = r.runBatchIncremental(ws, golden, used, eventless)
		} else {
			mask, cycles = r.runBatchNaive(ws, golden, used)
			r.metrics.observeNaiveBatch()
		}
		masks = append(masks, mask)
		simCycles += int64(cycles)
	}
	return masks, simCycles
}

// runBatchNaive is the reference path: full replay from cycle 0, post-hoc
// classification over the complete faulty trace.
func (r *Runner) runBatchNaive(ws *workerState, golden *sim.Trace, used uint64) (uint64, int) {
	ptr := 0
	faulty, _ := sim.Run(ws.e, r.stim, sim.RunConfig{
		Monitors: r.monitors,
		PreEval: func(c int) {
			for ptr < len(ws.flips) && ws.flips[ptr].cycle == c {
				applyOp(ws.e, &ws.flips[ptr])
				ptr++
			}
		},
	})
	for i := range ws.glitches {
		g := &ws.glitches[i]
		faulty.XORWord(g.cycle, g.mon, g.mask)
	}
	return r.cls.FailingLanes(golden, faulty, used), r.stim.Cycles()
}

// runBatchIncremental fast-forwards to the golden snapshot at or before the
// batch's earliest injection, simulates forward recording into the reusable
// trace, stops as soon as every used lane's verdict is decided, fills the
// skipped prefix and suffix from the golden trace (both provably identical
// to it) and classifies the reconstructed trace exactly like the naive path.
func (r *Runner) runBatchIncremental(ws *workerState, golden *sim.Trace, used, eventless uint64) (uint64, int) {
	if len(ws.flips) == 0 {
		// No lane has any engine event (possible under SET): the faulty
		// trace is the golden trace plus glitches, no simulation needed.
		ws.trace.CopyCycles(golden, 0, r.stim.Cycles())
		for i := range ws.glitches {
			g := &ws.glitches[i]
			ws.trace.XORWord(g.cycle, g.mon, g.mask)
		}
		r.metrics.observeBatch(0, 0, r.stim.Cycles(), used, 0, used)
		return r.cls.FailingLanes(golden, ws.trace, used), 0
	}
	snaps := r.snaps
	minCycle := ws.flips[0].cycle
	start := snaps.SnapCycle(snaps.IndexAtOrBefore(minCycle))

	var stream Stream
	if sc, ok := r.cls.(StreamClassifier); ok {
		stream = sc.StartStream(golden, used, start)
	}

	ws.trace.CopyCycles(golden, 0, start)
	ptr := 0
	// Lanes stay pending until their final event has been applied; lanes
	// with no events at all are never pending (their state is golden).
	pending := used &^ eventless
	var failed, settled uint64
	stop := sim.RunWindow(ws.e, r.stim, snaps, minCycle, sim.WindowConfig{
		Monitors: r.monitors,
		Trace:    ws.trace,
		PreEval: func(c int) {
			for ptr < len(ws.flips) && ws.flips[ptr].cycle == c {
				f := &ws.flips[ptr]
				applyOp(ws.e, f)
				if f.fin {
					pending &^= f.mask
				}
				ptr++
			}
		},
		OnCycle: func(c int) bool {
			if stream == nil {
				return false
			}
			// Confirmed failures are final, and settlement is sticky (a
			// settled lane evolves identically to golden forever), so the
			// batch can stop the very cycle the last straggler confirms
			// instead of waiting for the next snapshot boundary.
			failed = stream.Observe(c, golden.Row(c), ws.trace.Row(c))
			return used&^(settled|failed) == 0
		},
		OnSnapshot: func(c int, diverged uint64) bool {
			// Settled lanes have fully re-converged to golden state with
			// no flip still pending: their remaining trace is the golden
			// trace, so their verdict is decided too.
			settled = used &^ diverged &^ pending
			return used&^(settled|failed) == 0
		},
	})
	ws.trace.CopyCycles(golden, stop, r.stim.Cycles())
	for i := range ws.glitches {
		g := &ws.glitches[i]
		ws.trace.XORWord(g.cycle, g.mon, g.mask)
	}
	r.metrics.observeBatch(start, stop, r.stim.Cycles(), used, failed, settled)
	return r.cls.FailingLanes(golden, ws.trace, used), stop - start
}

// merge folds completed chunk masks into the final per-target Result (per
// flip-flop for FF-targeted models, per combinational cell for SET). The
// fold visits chunks in index order and maps every lane back to its job
// through the schedule, so the outcome is independent of completion order,
// schedule and of which chunks came from a checkpoint.
func (r *Runner) merge(jobs []Job, order []int, sh sharding, done map[int][]uint64, resumed int) *Result {
	numTargets := r.model.NumTargets(r.p)
	res := &Result{
		FDR:           make([]float64, numTargets),
		Failures:      make([]int, numTargets),
		Injections:    make([]int, numTargets),
		TotalRuns:     len(jobs),
		Batches:       sh.numBatches(),
		Chunks:        sh.numChunks,
		ResumedChunks: resumed,
	}
	for ci := 0; ci < sh.numChunks; ci++ {
		lo, hi := sh.chunkRange(ci)
		for bi, mask := range done[ci] {
			blo := lo + bi*sim.Lanes
			bhi := blo + sim.Lanes
			if bhi > hi {
				bhi = hi
			}
			for lane, pos := 0, blo; pos < bhi; lane, pos = lane+1, pos+1 {
				job := jobs[jobIndex(order, pos)]
				res.Injections[job.FF]++
				if mask>>uint(lane)&1 == 1 {
					res.Failures[job.FF]++
				}
			}
		}
	}
	for ff := range res.FDR {
		if res.Injections[ff] > 0 {
			res.FDR[ff] = float64(res.Failures[ff]) / float64(res.Injections[ff])
		}
	}
	return res
}

func (r *Runner) reportProgress(sh sharding, jobsDone, chunksDone, resumed, computed int, start time.Time) {
	if r.cfg.OnProgress == nil {
		return
	}
	p := Progress{
		JobsDone:      jobsDone,
		JobsTotal:     sh.totalJobs,
		ChunksDone:    chunksDone,
		ChunksTotal:   sh.numChunks,
		ChunksResumed: resumed,
		Elapsed:       time.Since(start),
	}
	if computed > 0 && chunksDone < sh.numChunks {
		perChunk := p.Elapsed / time.Duration(computed)
		p.ETA = perChunk * time.Duration(sh.numChunks-chunksDone)
	}
	r.cfg.OnProgress(p)
}

// classifierFingerprint digests the failure criterion when the classifier
// identifies itself; 0 otherwise.
func (r *Runner) classifierFingerprint() uint64 {
	if cf, ok := r.cls.(ConfigFingerprinter); ok {
		return cf.ConfigFingerprint()
	}
	return 0
}

// matchCheckpoint verifies that a loaded checkpoint belongs to exactly this
// campaign: same plan, same golden trace, same failure criterion, same
// fault model, same shard geometry, same batch-packing schedule.
func (r *Runner) matchCheckpoint(ck *Checkpoint, jobs []Job, sh sharding, golden *sim.Trace) error {
	if ck.PlanHash != PlanFingerprint(jobs) {
		return fmt.Errorf("%w: plan fingerprint differs (checkpoint %x)", ErrCheckpointMismatch, ck.PlanHash)
	}
	if got := normalizeCheckpointModel(ck.Model); got != r.model.String() {
		// Masks depend on what each job injected, so models must agree. ""
		// marks files from before fault models existed, which were all SEU.
		return fmt.Errorf("%w: fault model differs (checkpoint %q, campaign %q)",
			ErrCheckpointMismatch, got, r.model)
	}
	if ck.GoldenHash != golden.Fingerprint() {
		return fmt.Errorf("%w: golden trace fingerprint differs (checkpoint %x)", ErrCheckpointMismatch, ck.GoldenHash)
	}
	if ck.ClassifierHash != r.classifierFingerprint() {
		return fmt.Errorf("%w: failure-criterion fingerprint differs (checkpoint %x)", ErrCheckpointMismatch, ck.ClassifierHash)
	}
	if got := normalizeCheckpointSchedule(ck.Schedule); got != r.schedule {
		// Masks are packed per schedule, so the two must agree. When the
		// caller expressed no preference (the zero-value default), adopt
		// the checkpoint's schedule instead of rejecting — this is what
		// keeps plan-order checkpoints from before schedules existed
		// resumable on a default-configured runner.
		if r.scheduleSet || !got.valid() {
			return fmt.Errorf("%w: schedule differs (checkpoint %q, campaign %q — masks are packed per schedule)",
				ErrCheckpointMismatch, got, r.schedule)
		}
		r.schedule = got
	}
	if ck.TotalJobs != sh.totalJobs || ck.ChunkJobs != sh.chunkJobs || ck.NumChunks != sh.numChunks {
		return fmt.Errorf("%w: shard geometry differs (checkpoint %d jobs in %d chunks of %d, campaign %d/%d/%d)",
			ErrCheckpointMismatch, ck.TotalJobs, ck.NumChunks, ck.ChunkJobs,
			sh.totalJobs, sh.numChunks, sh.chunkJobs)
	}
	return nil
}

func (r *Runner) saveCheckpoint(jobs []Job, sh sharding, golden *sim.Trace, done map[int][]uint64) error {
	saveStart := time.Now()
	err := SaveCheckpoint(r.cfg.CheckpointPath, &Checkpoint{
		PlanHash:       PlanFingerprint(jobs),
		GoldenHash:     golden.Fingerprint(),
		ClassifierHash: r.classifierFingerprint(),
		Schedule:       string(r.schedule),
		Model:          r.model.String(),
		TotalJobs:      sh.totalJobs,
		ChunkJobs:      sh.chunkJobs,
		NumChunks:      sh.numChunks,
		Chunks:         done,
	})
	elapsed := time.Since(saveStart)
	r.metrics.observeCheckpoint(elapsed)
	if err != nil {
		r.log.Error("checkpoint save failed",
			obs.F("path", r.cfg.CheckpointPath), obs.F("error", err))
	} else if r.log.Enabled(obs.LevelDebug) {
		r.log.Debug("checkpoint saved",
			obs.F("path", r.cfg.CheckpointPath),
			obs.F("chunks", len(done)),
			obs.F("elapsed", elapsed))
	}
	return err
}

// sharding is the deterministic chunk geometry of a plan: totalJobs jobs in
// numChunks chunks of chunkJobs jobs each (the last possibly short), every
// chunk a whole number of 64-lane batches.
type sharding struct {
	totalJobs int
	chunkJobs int
	numChunks int
}

func newSharding(totalJobs, chunkJobs int) (sharding, error) {
	if totalJobs < 0 {
		return sharding{}, fmt.Errorf("fault: negative job count %d", totalJobs)
	}
	if chunkJobs <= 0 {
		chunkJobs = DefaultChunkJobs
	}
	// Round up to whole batches so chunk boundaries never split a batch.
	chunkJobs = (chunkJobs + sim.Lanes - 1) / sim.Lanes * sim.Lanes
	return sharding{
		totalJobs: totalJobs,
		chunkJobs: chunkJobs,
		numChunks: (totalJobs + chunkJobs - 1) / chunkJobs,
	}, nil
}

// chunkRange returns the half-open job interval of chunk ci.
func (s sharding) chunkRange(ci int) (lo, hi int) {
	lo = ci * s.chunkJobs
	hi = lo + s.chunkJobs
	if hi > s.totalJobs {
		hi = s.totalJobs
	}
	return lo, hi
}

// chunkBatches returns the number of 64-lane batches in chunk ci.
func (s sharding) chunkBatches(ci int) int {
	lo, hi := s.chunkRange(ci)
	return (hi - lo + sim.Lanes - 1) / sim.Lanes
}

// numBatches returns the total number of 64-lane batches across all chunks.
func (s sharding) numBatches() int {
	return (s.totalJobs + sim.Lanes - 1) / sim.Lanes
}
