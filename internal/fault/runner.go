package fault

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sync"
	"time"

	"repro/internal/sim"
)

// Runner is the sharded, resumable campaign runtime. It deterministically
// splits an injection plan into fixed-size chunks of whole 64-lane batches,
// fans the chunks out across a bounded worker pool, streams per-chunk
// partial results through a merge stage, and (when configured) periodically
// checkpoints completed-chunk state to disk so an interrupted campaign can
// resume exactly where it stopped.
//
// Determinism is structural: a chunk's failure masks depend only on the plan
// slice it covers and the golden trace, never on scheduling, worker count,
// chunk size or how often the run was interrupted. Resuming from a
// checkpoint therefore produces bit-identical per-FF failure counts to an
// uninterrupted run — a property the tests pin.
//
// The golden trace is simulated at most once per Runner and reused across
// all shards and Run calls (and can be supplied up front when the caller
// already has it, as the core study does).

// Default shard geometry and checkpoint cadence.
const (
	// DefaultChunkJobs is the default shard chunk size: 16 batches.
	DefaultChunkJobs = 16 * sim.Lanes
	// DefaultCheckpointEvery is the default number of completed chunks
	// between checkpoint flushes.
	DefaultCheckpointEvery = 4
)

// ErrInterrupted reports a campaign stopped by context cancellation. The
// checkpoint (when configured) has been flushed with all completed chunks.
var ErrInterrupted = errors.New("fault: campaign interrupted")

// Progress is a point-in-time view of a running campaign, delivered to
// RunnerConfig.OnProgress after every completed chunk.
type Progress struct {
	// JobsDone and JobsTotal count injection runs, including runs
	// restored from a checkpoint.
	JobsDone, JobsTotal int
	// ChunksDone and ChunksTotal count shard chunks.
	ChunksDone, ChunksTotal int
	// ChunksResumed is how many of ChunksDone were restored from the
	// checkpoint rather than simulated in this run.
	ChunksResumed int
	// Elapsed is the wall time since Run started.
	Elapsed time.Duration
	// ETA estimates the remaining wall time from this run's own
	// throughput; it is zero until at least one chunk has been simulated.
	ETA time.Duration
}

// RunnerConfig parameterizes a Runner.
type RunnerConfig struct {
	// ChunkJobs is the shard chunk size in jobs; it is rounded up to a
	// whole number of 64-lane batches. 0 means DefaultChunkJobs.
	ChunkJobs int
	// Workers bounds the worker pool; 0 means GOMAXPROCS.
	Workers int
	// Golden optionally supplies a precomputed golden trace. When nil the
	// Runner simulates it once on first use.
	Golden *sim.Trace
	// CheckpointPath enables checkpointing to this file; "" disables it.
	CheckpointPath string
	// CheckpointEvery is the number of completed chunks between flushes;
	// 0 means DefaultCheckpointEvery.
	CheckpointEvery int
	// Resume loads CheckpointPath (if it exists) before running and skips
	// its completed chunks. Requires CheckpointPath.
	Resume bool
	// OnProgress, when non-nil, is invoked from the merge stage after
	// every completed chunk.
	OnProgress func(Progress)
}

// Runner executes injection plans; see the package comment above.
type Runner struct {
	p        *sim.Program
	stim     *sim.Stimulus
	monitors []int
	cls      Classifier
	cfg      RunnerConfig

	goldenOnce sync.Once
	golden     *sim.Trace
}

// NewRunner validates the configuration and returns a Runner.
func NewRunner(p *sim.Program, stim *sim.Stimulus, monitors []int, cls Classifier, cfg RunnerConfig) (*Runner, error) {
	if p == nil || stim == nil || cls == nil {
		return nil, fmt.Errorf("fault: runner needs a program, stimulus and classifier")
	}
	if cfg.ChunkJobs < 0 {
		return nil, fmt.Errorf("fault: negative ChunkJobs %d", cfg.ChunkJobs)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("fault: negative Workers %d", cfg.Workers)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("fault: negative CheckpointEvery %d", cfg.CheckpointEvery)
	}
	if cfg.Resume && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("fault: Resume requires a CheckpointPath")
	}
	if cfg.CheckpointEvery == 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	return &Runner{p: p, stim: stim, monitors: monitors, cls: cls, cfg: cfg, golden: cfg.Golden}, nil
}

// Golden returns the golden reference trace, simulating it on first use.
// Every shard of every Run call classifies against this one trace.
func (r *Runner) Golden() *sim.Trace {
	r.goldenOnce.Do(func() {
		if r.golden == nil {
			e := sim.NewEngine(r.p)
			r.golden, _ = sim.Run(e, r.stim, sim.RunConfig{Monitors: r.monitors})
		}
	})
	return r.golden
}

// Run executes the plan to completion (or until the checkpoint says it
// already completed). It is RunContext with a background context.
func (r *Runner) Run(jobs []Job) (*Result, error) {
	return r.RunContext(context.Background(), jobs)
}

// RunContext executes the plan. On context cancellation it finishes the
// chunks already in flight, flushes the checkpoint (when configured) and
// returns an error wrapping ErrInterrupted; a later call with Resume set
// picks up from the flushed state.
func (r *Runner) RunContext(ctx context.Context, jobs []Job) (*Result, error) {
	// Internal cancellation lets the merge stage stop dispatching new
	// chunks as soon as a checkpoint save fails.
	ctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	for _, j := range jobs {
		if j.FF < 0 || j.FF >= r.p.NumFFs() {
			return nil, fmt.Errorf("fault: job targets FF %d of %d", j.FF, r.p.NumFFs())
		}
		if j.Cycle < 0 || j.Cycle >= r.stim.Cycles() {
			return nil, fmt.Errorf("fault: job at cycle %d of %d", j.Cycle, r.stim.Cycles())
		}
	}
	sh, err := newSharding(len(jobs), r.cfg.ChunkJobs)
	if err != nil {
		return nil, err
	}
	golden := r.Golden()

	// Restore completed chunks from the checkpoint, if resuming.
	done := make(map[int][]uint64, sh.numChunks)
	if r.cfg.Resume {
		ck, err := LoadCheckpoint(r.cfg.CheckpointPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume; run from scratch.
		case err != nil:
			return nil, err
		default:
			if err := r.matchCheckpoint(ck, jobs, sh, golden); err != nil {
				return nil, err
			}
			for ci, masks := range ck.Chunks {
				done[ci] = masks
			}
		}
	}
	resumed := len(done)

	pending := make([]int, 0, sh.numChunks-resumed)
	for ci := 0; ci < sh.numChunks; ci++ {
		if _, ok := done[ci]; !ok {
			pending = append(pending, ci)
		}
	}

	workers := r.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		// Zero pending (fully resumed) means zero workers: wg.Wait
		// returns immediately and the merge loop is a no-op.
		workers = len(pending)
	}

	type chunkResult struct {
		index int
		masks []uint64
	}
	chunks := make(chan int)
	results := make(chan chunkResult)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := sim.NewEngine(r.p)
			for ci := range chunks {
				results <- chunkResult{index: ci, masks: r.runChunk(e, golden, jobs, sh, ci)}
			}
		}()
	}
	go func() {
		defer close(chunks)
		for _, ci := range pending {
			select {
			case <-ctx.Done():
				return
			case chunks <- ci:
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Merge stage: collect chunk results, report progress, checkpoint.
	start := time.Now()
	sinceFlush := 0
	var saveErr error
	for cr := range results {
		done[cr.index] = cr.masks
		sinceFlush++
		r.reportProgress(sh, done, resumed, len(done)-resumed, start)
		if r.cfg.CheckpointPath != "" && sinceFlush >= r.cfg.CheckpointEvery && saveErr == nil {
			if saveErr = r.saveCheckpoint(jobs, sh, golden, done); saveErr != nil {
				// Fail fast: a broken checkpoint sink would silently
				// turn the campaign non-resumable, so stop dispatching
				// instead of simulating chunks that can't be persisted.
				cancelRun()
			}
			sinceFlush = 0
		}
	}
	if saveErr != nil {
		return nil, saveErr
	}

	if len(done) < sh.numChunks {
		// Interrupted: flush everything completed so far and bail. The
		// flush is unconditional so a resumable file exists even when
		// the interrupt landed before the first periodic save.
		if r.cfg.CheckpointPath != "" {
			if err := r.saveCheckpoint(jobs, sh, golden, done); err != nil {
				return nil, err
			}
		}
		return nil, fmt.Errorf("%w after %d of %d chunks: %v",
			ErrInterrupted, len(done), sh.numChunks, context.Cause(ctx))
	}
	if r.cfg.CheckpointPath != "" && sinceFlush > 0 {
		if err := r.saveCheckpoint(jobs, sh, golden, done); err != nil {
			return nil, err
		}
	}
	return r.merge(jobs, sh, done, resumed), nil
}

// runChunk simulates every 64-lane batch of chunk ci and returns the
// per-batch failure masks.
func (r *Runner) runChunk(e *sim.Engine, golden *sim.Trace, jobs []Job, sh sharding, ci int) []uint64 {
	lo, hi := sh.chunkRange(ci)
	masks := make([]uint64, 0, sh.chunkBatches(ci))
	// Per-cycle flip schedule, rebuilt per batch.
	type flip struct {
		ff   int
		mask uint64
	}
	byCycle := make(map[int][]flip)
	for blo := lo; blo < hi; blo += sim.Lanes {
		bhi := blo + sim.Lanes
		if bhi > hi {
			bhi = hi
		}
		batch := jobs[blo:bhi]
		for c := range byCycle {
			delete(byCycle, c)
		}
		var used uint64
		for lane, job := range batch {
			byCycle[job.Cycle] = append(byCycle[job.Cycle], flip{ff: job.FF, mask: 1 << uint(lane)})
			used |= 1 << uint(lane)
		}
		faulty, _ := sim.Run(e, r.stim, sim.RunConfig{
			Monitors: r.monitors,
			PreEval: func(c int) {
				for _, f := range byCycle[c] {
					e.FlipFF(f.ff, f.mask)
				}
			},
		})
		masks = append(masks, r.cls.FailingLanes(golden, faulty, used))
	}
	return masks
}

// merge folds completed chunk masks into the final per-FF Result. The fold
// visits chunks in index order, so the outcome is independent of completion
// order and of which chunks came from a checkpoint.
func (r *Runner) merge(jobs []Job, sh sharding, done map[int][]uint64, resumed int) *Result {
	res := &Result{
		FDR:           make([]float64, r.p.NumFFs()),
		Failures:      make([]int, r.p.NumFFs()),
		Injections:    make([]int, r.p.NumFFs()),
		TotalRuns:     len(jobs),
		Batches:       sh.numBatches(),
		Chunks:        sh.numChunks,
		ResumedChunks: resumed,
	}
	for ci := 0; ci < sh.numChunks; ci++ {
		lo, hi := sh.chunkRange(ci)
		for bi, mask := range done[ci] {
			blo := lo + bi*sim.Lanes
			bhi := blo + sim.Lanes
			if bhi > hi {
				bhi = hi
			}
			for lane, job := range jobs[blo:bhi] {
				res.Injections[job.FF]++
				if mask>>uint(lane)&1 == 1 {
					res.Failures[job.FF]++
				}
			}
		}
	}
	for ff := range res.FDR {
		if res.Injections[ff] > 0 {
			res.FDR[ff] = float64(res.Failures[ff]) / float64(res.Injections[ff])
		}
	}
	return res
}

func (r *Runner) reportProgress(sh sharding, done map[int][]uint64, resumed, computed int, start time.Time) {
	if r.cfg.OnProgress == nil {
		return
	}
	jobsDone := 0
	for ci := range done {
		lo, hi := sh.chunkRange(ci)
		jobsDone += hi - lo
	}
	p := Progress{
		JobsDone:      jobsDone,
		JobsTotal:     sh.totalJobs,
		ChunksDone:    len(done),
		ChunksTotal:   sh.numChunks,
		ChunksResumed: resumed,
		Elapsed:       time.Since(start),
	}
	if computed > 0 && len(done) < sh.numChunks {
		perChunk := p.Elapsed / time.Duration(computed)
		p.ETA = perChunk * time.Duration(sh.numChunks-len(done))
	}
	r.cfg.OnProgress(p)
}

// classifierFingerprint digests the failure criterion when the classifier
// identifies itself; 0 otherwise.
func (r *Runner) classifierFingerprint() uint64 {
	if cf, ok := r.cls.(ConfigFingerprinter); ok {
		return cf.ConfigFingerprint()
	}
	return 0
}

// matchCheckpoint verifies that a loaded checkpoint belongs to exactly this
// campaign: same plan, same golden trace, same failure criterion, same
// shard geometry.
func (r *Runner) matchCheckpoint(ck *Checkpoint, jobs []Job, sh sharding, golden *sim.Trace) error {
	if ck.PlanHash != PlanFingerprint(jobs) {
		return fmt.Errorf("%w: plan fingerprint differs (checkpoint %x)", ErrCheckpointMismatch, ck.PlanHash)
	}
	if ck.GoldenHash != golden.Fingerprint() {
		return fmt.Errorf("%w: golden trace fingerprint differs (checkpoint %x)", ErrCheckpointMismatch, ck.GoldenHash)
	}
	if ck.ClassifierHash != r.classifierFingerprint() {
		return fmt.Errorf("%w: failure-criterion fingerprint differs (checkpoint %x)", ErrCheckpointMismatch, ck.ClassifierHash)
	}
	if ck.TotalJobs != sh.totalJobs || ck.ChunkJobs != sh.chunkJobs || ck.NumChunks != sh.numChunks {
		return fmt.Errorf("%w: shard geometry differs (checkpoint %d jobs in %d chunks of %d, campaign %d/%d/%d)",
			ErrCheckpointMismatch, ck.TotalJobs, ck.NumChunks, ck.ChunkJobs,
			sh.totalJobs, sh.numChunks, sh.chunkJobs)
	}
	return nil
}

func (r *Runner) saveCheckpoint(jobs []Job, sh sharding, golden *sim.Trace, done map[int][]uint64) error {
	return SaveCheckpoint(r.cfg.CheckpointPath, &Checkpoint{
		PlanHash:       PlanFingerprint(jobs),
		GoldenHash:     golden.Fingerprint(),
		ClassifierHash: r.classifierFingerprint(),
		TotalJobs:      sh.totalJobs,
		ChunkJobs:      sh.chunkJobs,
		NumChunks:      sh.numChunks,
		Chunks:         done,
	})
}

// sharding is the deterministic chunk geometry of a plan: totalJobs jobs in
// numChunks chunks of chunkJobs jobs each (the last possibly short), every
// chunk a whole number of 64-lane batches.
type sharding struct {
	totalJobs int
	chunkJobs int
	numChunks int
}

func newSharding(totalJobs, chunkJobs int) (sharding, error) {
	if totalJobs < 0 {
		return sharding{}, fmt.Errorf("fault: negative job count %d", totalJobs)
	}
	if chunkJobs <= 0 {
		chunkJobs = DefaultChunkJobs
	}
	// Round up to whole batches so chunk boundaries never split a batch.
	chunkJobs = (chunkJobs + sim.Lanes - 1) / sim.Lanes * sim.Lanes
	return sharding{
		totalJobs: totalJobs,
		chunkJobs: chunkJobs,
		numChunks: (totalJobs + chunkJobs - 1) / chunkJobs,
	}, nil
}

// chunkRange returns the half-open job interval of chunk ci.
func (s sharding) chunkRange(ci int) (lo, hi int) {
	lo = ci * s.chunkJobs
	hi = lo + s.chunkJobs
	if hi > s.totalJobs {
		hi = s.totalJobs
	}
	return lo, hi
}

// chunkBatches returns the number of 64-lane batches in chunk ci.
func (s sharding) chunkBatches(ci int) int {
	lo, hi := s.chunkRange(ci)
	return (hi - lo + sim.Lanes - 1) / sim.Lanes
}

// numBatches returns the total number of 64-lane batches across all chunks.
func (s sharding) numBatches() int {
	return (s.totalJobs + sim.Lanes - 1) / sim.Lanes
}
