package fault

import (
	"sort"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// modelexec.go lowers fault models onto the runner's batch machinery. A
// scheduled Job stays one lane of one batch regardless of model; what the
// model changes is the list of engine events the lane replays. expandJob
// maps a job to its events:
//
//   - SEU:       one flip at the job cycle (the original behavior).
//   - MBU:       one flip per cluster member at the job cycle.
//   - stuck-at:  one force per held cycle, clamped to the stimulus end.
//   - SET:       one flip at cycle+1 per flip-flop that latched the pulse,
//     plus post-hoc output glitches for the pulse cycle itself.
//
// Every event carries a fin marker on the lane's last event: the
// incremental paths keep a lane "pending" — ineligible for settling — until
// its final event has been applied, which is what keeps streaming early
// exit sound for multi-event models (a stuck-at lane that still has forces
// coming, or a SET lane whose capture lands next cycle, can re-diverge and
// must not be declared re-converged yet). Lanes with no events at all are
// never pending, and a batch with no events skips simulation entirely —
// its trace is the golden trace (plus glitches).

// effKind is the engine operation of one scheduled event.
type effKind uint8

const (
	// effFlip XORs the flip-flop state (SEU, MBU, SET capture).
	effFlip effKind = iota
	// effForce0 and effForce1 overwrite the flip-flop state (stuck-at).
	effForce0
	effForce1
)

// laneGlitch is one SET output glitch: toggle monitor mon's sample at the
// given cycle in the lanes of mask. Glitches are applied to the
// reconstructed trace after simulation, never to engine state — the pulse
// is combinational and leaves no state behind beyond what expandJob already
// schedules as capture flips.
type laneGlitch struct {
	cycle int
	mon   int
	mask  uint64
}

// setEffect is the precomputed consequence of pulsing one combinational
// target at one golden cycle: the flip-flops whose captured next-state
// toggles, and the monitor indices whose sampled output toggles.
type setEffect struct {
	ffs  []int
	mons []int
}

// setKey indexes setEffect maps by (target, cycle).
func setKey(target, cycle int) int64 { return int64(target)<<32 | int64(cycle) }

// ffClusters lazily computes the MBU proximity clusters for the runner's
// cluster size. Clusters depend only on the netlist and the model, so they
// are shared across all workers, Run calls and resumes.
func (r *Runner) ffClusters() [][]int {
	r.clusterOnce.Do(func() {
		r.clusters = netlist.FFProximityClusters(r.p.Netlist(), r.model.Size)
	})
	return r.clusters
}

// setEffects precomputes the effect of every distinct (target, cycle) pulse
// in the plan with one golden-rate interpreter replay, and returns nil for
// non-SET models. The replay exploits that every SET job is its lane's
// first and only fault: lane state at the pulse cycle equals golden, so the
// pulse outcome is a pure function of (target, cycle) and can be derived
// once on a lane-uniform engine — per cycle of interest, evaluate the
// baseline, then re-evaluate the suffix with each target's output inverted
// (sim.Engine.EvalPulse) and diff the captured D pins and monitored
// outputs. Backends then replay only the resulting state flips, which is
// what keeps SET campaigns bit-identical across interpreter and kernel: the
// kernel never needs the pruned combinational node itself. A pulse on a
// node whose fanout is entirely dead (unmonitored, no downstream FF)
// produces an empty effect — the transient is masked, matching hardware.
//
// The pulse is modeled for exactly one evaluation: a pulse that reaches a
// loopback output is observed by the monitors (when monitored) but is not
// re-injected into the next cycle's inputs.
func (r *Runner) setEffects(jobs []Job) map[int64]setEffect {
	if r.model.Kind != KindSET {
		return nil
	}
	byCycle := make(map[int][]int)
	fx := make(map[int64]setEffect, len(jobs))
	for _, j := range jobs {
		key := setKey(j.FF, j.Cycle)
		if _, dup := fx[key]; dup {
			continue
		}
		fx[key] = setEffect{}
		byCycle[j.Cycle] = append(byCycle[j.Cycle], j.FF)
	}
	for _, targets := range byCycle {
		sort.Ints(targets)
	}
	numFFs := r.p.NumFFs()
	baseD := make([]uint64, numFFs)
	baseOut := make([]uint64, len(r.monitors))
	e := sim.NewEngine(r.p)
	sim.Run(e, r.stim, sim.RunConfig{PreEval: func(c int) {
		targets := byCycle[c]
		if len(targets) == 0 {
			return
		}
		// Inputs for cycle c are driven; evaluate the baseline. sim.Run
		// re-evaluates right after PreEval returns, so the extra passes
		// here are invisible to the replay.
		e.Eval()
		for ff := 0; ff < numFFs; ff++ {
			baseD[ff] = e.FFD(ff)
		}
		for mi, port := range r.monitors {
			baseOut[mi] = e.Output(port)
		}
		for _, t := range targets {
			e.EvalPulse(t)
			var eff setEffect
			for ff := 0; ff < numFFs; ff++ {
				if e.FFD(ff) != baseD[ff] {
					eff.ffs = append(eff.ffs, ff)
				}
			}
			for mi, port := range r.monitors {
				if e.Output(port) != baseOut[mi] {
					eff.mons = append(eff.mons, mi)
				}
			}
			fx[setKey(t, c)] = eff
		}
	}})
	return fx
}

// expandJob appends the engine events realizing one scheduled job under the
// runner's fault model, targeting the lanes of mask. It returns dst
// unchanged when the job has no engine effect (a fully masked SET pulse, or
// one at the last cycle with nothing left to capture it).
func (r *Runner) expandJob(dst []flipOp, fx map[int64]setEffect, j Job, mask uint64) []flipOp {
	switch r.model.Kind {
	case KindMBU:
		cluster := r.ffClusters()[j.FF]
		for i, ff := range cluster {
			dst = append(dst, flipOp{cycle: j.Cycle, ff: ff, mask: mask, fin: i == len(cluster)-1})
		}
	case KindStuck0, KindStuck1:
		kind := effForce0
		if r.model.Kind == KindStuck1 {
			kind = effForce1
		}
		last := j.Cycle + r.model.Duration - 1
		if end := r.stim.Cycles() - 1; last > end {
			last = end
		}
		for c := j.Cycle; c <= last; c++ {
			dst = append(dst, flipOp{cycle: c, ff: j.FF, mask: mask, kind: kind, fin: c == last})
		}
	case KindSET:
		// The pulse latches into the following cycle's state; a pulse at
		// the final cycle has no following cycle to latch into.
		if j.Cycle+1 < r.stim.Cycles() {
			eff := fx[setKey(j.FF, j.Cycle)]
			for i, ff := range eff.ffs {
				dst = append(dst, flipOp{cycle: j.Cycle + 1, ff: ff, mask: mask, fin: i == len(eff.ffs)-1})
			}
		}
	default: // SEU
		dst = append(dst, flipOp{cycle: j.Cycle, ff: j.FF, mask: mask, fin: true})
	}
	return dst
}

// appendGlitches appends the job's SET output glitches to dst; a no-op for
// every other model.
func (r *Runner) appendGlitches(dst []laneGlitch, fx map[int64]setEffect, j Job, mask uint64) []laneGlitch {
	if r.model.Kind != KindSET {
		return dst
	}
	for _, mi := range fx[setKey(j.FF, j.Cycle)].mons {
		dst = append(dst, laneGlitch{cycle: j.Cycle, mon: mi, mask: mask})
	}
	return dst
}

// applyOp performs one scheduled event on the interpreter engine.
func applyOp(e *sim.Engine, f *flipOp) {
	switch f.kind {
	case effForce0:
		e.ForceFF(f.ff, f.mask, false)
	case effForce1:
		e.ForceFF(f.ff, f.mask, true)
	default:
		e.FlipFF(f.ff, f.mask)
	}
}

// applyWideOp performs one scheduled event on the kernel engine.
func applyWideOp(e *sim.KernelEngine, f *wideFlip) {
	switch f.kind {
	case effForce0:
		e.ForceFF(f.ff, f.word, f.mask, false)
	case effForce1:
		e.ForceFF(f.ff, f.word, f.mask, true)
	default:
		e.FlipFF(f.ff, f.word, f.mask)
	}
}
