package fault_test

import (
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/sim"
)

// macFixture builds a small (not paper-scale) MAC and bench for fast tests.
var macFixture struct {
	once  sync.Once
	p     *sim.Program
	bench *circuit.MACBench
	err   error
}

func smallMAC(t *testing.T) (*sim.Program, *circuit.MACBench) {
	t.Helper()
	macFixture.once.Do(func() {
		nl, err := circuit.NewMAC10GE(circuit.MACConfig{FIFODepth: 16, StatWidth: 16, TargetFFs: 0})
		if err != nil {
			macFixture.err = err
			return
		}
		if err := circuit.Synthesize(nl); err != nil {
			macFixture.err = err
			return
		}
		p, err := sim.Compile(nl)
		if err != nil {
			macFixture.err = err
			return
		}
		cfg := circuit.MACBenchConfig{
			Packets: 4, MinPayload: 4, MaxPayload: 6, Gap: 10,
			DrainCycles: 40, Seed: 99, FIFODepth: 16,
		}
		bench, err := circuit.BuildMACBench(p, cfg)
		if err != nil {
			macFixture.err = err
			return
		}
		macFixture.p, macFixture.bench = p, bench
	})
	if macFixture.err != nil {
		t.Fatalf("fixture: %v", macFixture.err)
	}
	return macFixture.p, macFixture.bench
}

func TestNewPlanShape(t *testing.T) {
	jobs := fault.NewPlan(10, 7, 100, 1)
	if len(jobs) != 70 {
		t.Fatalf("len = %d, want 70", len(jobs))
	}
	perFF := map[int]int{}
	for _, j := range jobs {
		perFF[j.FF]++
		if j.Cycle < 0 || j.Cycle >= 100 {
			t.Fatalf("cycle %d out of range", j.Cycle)
		}
	}
	for ff := 0; ff < 10; ff++ {
		if perFF[ff] != 7 {
			t.Fatalf("FF %d has %d jobs, want 7", ff, perFF[ff])
		}
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	a := fault.NewPlan(5, 3, 50, 42)
	b := fault.NewPlan(5, 3, 50, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("plans with equal seeds must match")
		}
	}
	c := fault.NewPlan(5, 3, 50, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different plans")
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	cases := []fault.CampaignConfig{
		{InjectionsPerFF: 0, ActiveCycles: 10},
		{InjectionsPerFF: 1, ActiveCycles: 0},
		{InjectionsPerFF: 1, ActiveCycles: 1000},
		{InjectionsPerFF: 1, ActiveCycles: 10, Workers: -1},
	}
	for i, cfg := range cases {
		if err := cfg.Validate(100); err == nil {
			t.Fatalf("case %d must fail: %+v", i, cfg)
		}
	}
	ok := fault.CampaignConfig{InjectionsPerFF: 1, ActiveCycles: 100}
	if err := ok.Validate(100); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestCampaignOnSmallMAC(t *testing.T) {
	p, bench := smallMAC(t)
	cls := fault.NewMACClassifier(bench, true)
	res, err := fault.RunCampaign(p, bench.Stim, bench.Monitors, cls, fault.CampaignConfig{
		InjectionsPerFF: 4,
		ActiveCycles:    bench.ActiveCycles,
		Seed:            7,
	})
	if err != nil {
		t.Fatalf("RunCampaign: %v", err)
	}
	if len(res.FDR) != p.NumFFs() {
		t.Fatalf("FDR length %d, want %d", len(res.FDR), p.NumFFs())
	}
	if res.TotalRuns != p.NumFFs()*4 {
		t.Fatalf("TotalRuns = %d", res.TotalRuns)
	}
	var nonZero, outOfRange int
	for ff, v := range res.FDR {
		if v < 0 || v > 1 {
			outOfRange++
		}
		if v > 0 {
			nonZero++
		}
		if res.Injections[ff] != 4 {
			t.Fatalf("FF %d got %d injections, want 4", ff, res.Injections[ff])
		}
		if res.Failures[ff] > res.Injections[ff] {
			t.Fatalf("FF %d failures %d > injections", ff, res.Failures[ff])
		}
	}
	if outOfRange != 0 {
		t.Fatalf("%d FDR values out of [0,1]", outOfRange)
	}
	// The campaign must find both sensitive and robust flip-flops,
	// otherwise the regression problem is degenerate.
	if nonZero < p.NumFFs()/20 {
		t.Fatalf("only %d of %d FFs ever failed — classifier too lax?", nonZero, p.NumFFs())
	}
	if nonZero == p.NumFFs() {
		t.Fatal("every FF failed — classifier too strict?")
	}
	t.Logf("campaign: %v", fault.Summarize(res))
}

func TestCampaignDeterministicAcrossWorkerCounts(t *testing.T) {
	p, bench := smallMAC(t)
	run := func(workers int) *fault.Result {
		cls := fault.NewMACClassifier(bench, true)
		res, err := fault.RunCampaign(p, bench.Stim, bench.Monitors, cls, fault.CampaignConfig{
			InjectionsPerFF: 2,
			ActiveCycles:    bench.ActiveCycles,
			Seed:            11,
			Workers:         workers,
		})
		if err != nil {
			t.Fatalf("RunCampaign(%d workers): %v", workers, err)
		}
		return res
	}
	a, b := run(1), run(4)
	for ff := range a.FDR {
		if a.FDR[ff] != b.FDR[ff] {
			t.Fatalf("FDR[%d] differs across worker counts: %v vs %v", ff, a.FDR[ff], b.FDR[ff])
		}
	}
}

func TestRunJobsExplicitPlan(t *testing.T) {
	p, bench := smallMAC(t)
	e := sim.NewEngine(p)
	golden, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})
	cls := fault.NewMACClassifier(bench, true)
	jobs := []fault.Job{{FF: 0, Cycle: 1}, {FF: 1, Cycle: 2}, {FF: 0, Cycle: 3}}
	res, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls, jobs,
		fault.RunnerConfig{Workers: 2, Golden: golden})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}
	if res.Injections[0] != 2 || res.Injections[1] != 1 {
		t.Fatalf("injections = %v", res.Injections[:2])
	}
	// Out-of-range jobs must be rejected.
	if _, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls,
		[]fault.Job{{FF: -1, Cycle: 0}}, fault.RunnerConfig{Golden: golden}); err == nil {
		t.Fatal("negative FF accepted")
	}
	if _, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls,
		[]fault.Job{{FF: 0, Cycle: 99999}}, fault.RunnerConfig{Golden: golden}); err == nil {
		t.Fatal("out-of-range cycle accepted")
	}
}

func TestClassifierBenignTimingShiftIgnored(t *testing.T) {
	// An injection into the IFG counter can delay frames without
	// corrupting them; such lanes must not be classified as failures
	// even though their traces differ from golden. We verify the weaker,
	// structural property: every classified failure has a concrete
	// packet/stat difference.
	p, bench := smallMAC(t)
	e := sim.NewEngine(p)
	golden, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})
	goldenPkts := bench.LanePackets(golden, 0)
	goldenStats := bench.LaneStats(golden, 0)

	cls := fault.NewMACClassifier(bench, true)
	jobs := fault.NewPlan(p.NumFFs(), 1, bench.ActiveCycles, 3)[:64]
	res, err := fault.RunJobs(p, bench.Stim, bench.Monitors, cls, jobs,
		fault.RunnerConfig{Workers: 1, Golden: golden})
	if err != nil {
		t.Fatalf("RunJobs: %v", err)
	}

	// Re-run the same batch manually and verify classification agrees
	// with a from-scratch packet comparison.
	e2 := sim.NewEngine(p)
	faulty, _ := sim.Run(e2, bench.Stim, sim.RunConfig{
		Monitors: bench.Monitors,
		PreEval: func(c int) {
			for lane, j := range jobs {
				if j.Cycle == c {
					e2.FlipFF(j.FF, 1<<uint(lane))
				}
			}
		},
	})
	for lane, j := range jobs {
		pkts := bench.LanePackets(faulty, lane)
		stats := bench.LaneStats(faulty, lane)
		wantFail := len(pkts) != len(goldenPkts)
		if !wantFail {
			for i := range pkts {
				if pkts[i].Err != goldenPkts[i].Err ||
					string(pkts[i].Payload) != string(goldenPkts[i].Payload) {
					wantFail = true
					break
				}
			}
		}
		if !wantFail && string(stats) != string(goldenStats) {
			wantFail = true
		}
		gotFail := res.Failures[j.FF] > 0
		// Multiple jobs can share an FF within the slice; only compare
		// when this FF appears once.
		count := 0
		for _, jj := range jobs {
			if jj.FF == j.FF {
				count++
			}
		}
		if count == 1 && gotFail != wantFail {
			t.Fatalf("lane %d (FF %d): classified fail=%v, reference says %v",
				lane, j.FF, gotFail, wantFail)
		}
	}
}
