package features

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// chainCircuit builds: in → ff0 → inv → ff1 → and(in2) → out, plus a
// self-feedback register ff2 (enable loop) for loop features.
//
//	in ─────────────► ff0 ──inv──► ff1 ──and──► out
//	                                      ▲
//	in2 ──────────────────────────────────┘
//	ff2 ◄──mux(ff2, in2)  (feedback loop, depth 1)
func chainCircuit(t *testing.T) *netlist.Netlist {
	t.Helper()
	b := netlist.NewBuilder("chain")
	in := b.Input("in")
	in2 := b.Input("in2")
	ff0 := b.DFF("ff0", in, false)
	ff1 := b.DFF("ff1", b.Not(ff0), false)
	y := b.And(ff1, in2)
	b.Output("out", y)
	ff2, set := b.DFFDecl("ff2", false)
	set(b.Mux(ff2, in2, in))
	b.Output("dbg", ff2)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return nl
}

func vectorOf(t *testing.T, m *Matrix, name string) Vector {
	t.Helper()
	for i, n := range m.InstanceNames {
		if n == name {
			row := m.Rows[i]
			var v Vector
			s := v.Slice()
			if len(s) != len(row) {
				t.Fatalf("schema drift: %d vs %d", len(s), len(row))
			}
			// Reconstruct via field order.
			return Vector{
				FFFanIn: row[0], FFFanOut: row[1], TotalFFsFrom: row[2], TotalFFsTo: row[3],
				ConnFromPI: row[4], ConnToPO: row[5],
				ProxPIMax: row[6], ProxPIAvg: row[7], ProxPIMin: row[8],
				ProxPOMax: row[9], ProxPOAvg: row[10], ProxPOMin: row[11],
				PartOfBus: row[12], BusPosition: row[13], BusLength: row[14],
				ConnConst: row[15], HasFeedback: row[16], FeedbackDep: row[17],
				DriveStrength: row[18], CombFanIn: row[19], CombFanOut: row[20], CombDepth: row[21],
				At0: row[22], At1: row[23], StateChanges: row[24],
			}
		}
	}
	t.Fatalf("instance %q not found in %v", name, m.InstanceNames)
	return Vector{}
}

func extract(t *testing.T, nl *netlist.Netlist) *Matrix {
	t.Helper()
	ex, err := NewExtractor(nl)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	m, err := ex.Extract(nil)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	return m
}

func TestChainStructuralFeatures(t *testing.T) {
	m := extract(t, chainCircuit(t))

	ff0 := vectorOf(t, m, "ff0")
	if ff0.FFFanIn != 0 || ff0.ConnFromPI != 1 {
		t.Fatalf("ff0 fan-in: %+v", ff0)
	}
	if ff0.FFFanOut != 1 {
		t.Fatalf("ff0 fan-out = %v, want 1 (ff1)", ff0.FFFanOut)
	}
	if ff0.TotalFFsFrom != 0 || ff0.TotalFFsTo != 1 {
		t.Fatalf("ff0 totals: %+v", ff0)
	}
	if ff0.ProxPIMin != 1 || ff0.ProxPIMax != 1 || ff0.ProxPIAvg != 1 {
		t.Fatalf("ff0 PI proximity: %+v", ff0)
	}
	// ff0 → ff1 → out: two stages to the PO.
	if ff0.ProxPOMin != 2 {
		t.Fatalf("ff0 ProxPOMin = %v, want 2", ff0.ProxPOMin)
	}
	if ff0.HasFeedback != 0 || ff0.FeedbackDep != -1 {
		t.Fatalf("ff0 feedback: %+v", ff0)
	}
	if ff0.CombFanIn != 0 {
		t.Fatalf("ff0 CombFanIn = %v, want 0 (direct input)", ff0.CombFanIn)
	}
	if ff0.CombFanOut != 1 {
		t.Fatalf("ff0 CombFanOut = %v, want 1 (the inverter)", ff0.CombFanOut)
	}
	if ff0.CombDepth != 1 {
		t.Fatalf("ff0 CombDepth = %v, want 1", ff0.CombDepth)
	}

	ff1 := vectorOf(t, m, "ff1")
	if ff1.FFFanIn != 1 || ff1.FFFanOut != 0 {
		t.Fatalf("ff1 fans: %+v", ff1)
	}
	if ff1.TotalFFsFrom != 1 || ff1.TotalFFsTo != 0 {
		t.Fatalf("ff1 totals: %+v", ff1)
	}
	if ff1.ConnToPO != 1 {
		t.Fatalf("ff1 ConnToPO = %v, want 1", ff1.ConnToPO)
	}
	if ff1.ProxPOMin != 1 || ff1.ProxPIMin != 2 {
		t.Fatalf("ff1 proximity: %+v", ff1)
	}
	if ff1.CombFanIn != 1 || ff1.CombFanOut != 1 || ff1.CombDepth != 1 {
		t.Fatalf("ff1 comb: %+v", ff1)
	}

	ff2 := vectorOf(t, m, "ff2")
	if ff2.HasFeedback != 1 || ff2.FeedbackDep != 1 {
		t.Fatalf("ff2 feedback: %+v", ff2)
	}
	if ff2.ConnToPO != 1 {
		t.Fatalf("ff2 ConnToPO = %v, want 1 (dbg)", ff2.ConnToPO)
	}
}

func TestBusDetection(t *testing.T) {
	b := netlist.NewBuilder("bus")
	in := b.Input("in")
	for i := 0; i < 4; i++ {
		b.Output(fmt.Sprintf("o%d", i), b.DFF(fmt.Sprintf("regs/data[%d]", i), in, false))
	}
	b.Output("single", b.DFF("lonely[0]", in, false))
	b.Output("plain", b.DFF("ctrl", in, false))
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	m := extract(t, nl)

	v := vectorOf(t, m, "regs/data[2]")
	if v.PartOfBus != 1 || v.BusPosition != 2 || v.BusLength != 4 {
		t.Fatalf("bus member features: %+v", v)
	}
	lone := vectorOf(t, m, "lonely[0]")
	if lone.PartOfBus != 0 || lone.BusPosition != -1 || lone.BusLength != 0 {
		t.Fatalf("singleton bus must not count: %+v", lone)
	}
	plain := vectorOf(t, m, "ctrl")
	if plain.PartOfBus != 0 {
		t.Fatalf("plain name not a bus: %+v", plain)
	}
}

func TestSplitBusName(t *testing.T) {
	cases := []struct {
		in   string
		base string
		pos  int
	}{
		{"regs/data[7]", "regs/data", 7},
		{"x[0]", "x", 0},
		{"plain", "plain", -1},
		{"weird]", "weird]", -1},
		{"bad[x]", "bad[x]", -1},
		{"neg[-2]", "neg[-2]", -1},
	}
	for _, c := range cases {
		base, pos := splitBusName(c.in)
		if base != c.base || pos != c.pos {
			t.Fatalf("splitBusName(%q) = %q,%d want %q,%d", c.in, base, pos, c.base, c.pos)
		}
	}
}

func TestConstantDriverFeature(t *testing.T) {
	b := netlist.NewBuilder("consts")
	in := b.Input("in")
	d := b.And(in, b.Const1())
	d = b.Or(d, b.Const0())
	q := b.DFF("ff", d, false)
	b.Output("o", q)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	v := vectorOf(t, extract(t, nl), "ff")
	if v.ConnConst != 2 {
		t.Fatalf("ConnConst = %v, want 2", v.ConnConst)
	}
}

func TestDynamicFeatures(t *testing.T) {
	nl := chainCircuit(t)
	ex, err := NewExtractor(nl)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := sim.NewEngine(p)
	inIdx, _ := p.InputIndex("in")
	stim := sim.NewStimulus(8)
	set := stim.DrivePort(inIdx)
	for c := 0; c < 8; c++ {
		set(c, c%2 == 0) // alternate each cycle
	}
	_, act := sim.Run(e, stim, sim.RunConfig{CollectActivity: true})
	m, err := ex.Extract(act)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	ff0 := vectorOf(t, m, "ff0")
	if ff0.StateChanges == 0 {
		t.Fatal("ff0 must toggle under alternating input")
	}
	if ff0.At0+ff0.At1 < 0.999 || ff0.At0+ff0.At1 > 1.001 {
		t.Fatalf("at0+at1 = %v, want 1", ff0.At0+ff0.At1)
	}
	// Activity size mismatch must error.
	bad := &sim.Activity{Ones: []int64{1}, Toggles: []int64{1}, Cycles: 4}
	if _, err := ex.Extract(bad); err == nil {
		t.Fatal("size mismatch must fail")
	}
}

func TestFeatureSchemaConsistency(t *testing.T) {
	if len(Names()) != NumFeatures {
		t.Fatal("Names/NumFeatures drift")
	}
	var v Vector
	if len(v.Slice()) != NumFeatures {
		t.Fatalf("Vector.Slice has %d fields, schema %d", len(v.Slice()), NumFeatures)
	}
	g := Groups()
	if len(g) != NumFeatures {
		t.Fatalf("Groups has %d entries", len(g))
	}
	if g[0] != GroupStructural || g[18] != GroupSynthesis || g[24] != GroupDynamic {
		t.Fatalf("group layout wrong: %v", g)
	}
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestMACFeatureExtraction(t *testing.T) {
	nl, err := circuit.NewMAC10GE(circuit.MACConfig{FIFODepth: 8, StatWidth: 8})
	if err != nil {
		t.Fatalf("NewMAC10GE: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	ex, err := NewExtractor(nl)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	m, err := ex.Extract(nil)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(m.Rows) != nl.NumFFs() {
		t.Fatalf("rows = %d, want %d", len(m.Rows), nl.NumFFs())
	}
	// Sanity: features vary across the population (a constant column
	// would be useless for regression); count distinct values per column.
	varying := 0
	for col := 0; col < NumFeatures; col++ {
		vals := map[float64]bool{}
		for _, row := range m.Rows {
			vals[row[col]] = true
		}
		if len(vals) > 1 {
			varying++
		}
	}
	if varying < NumFeatures-5 {
		t.Fatalf("only %d of %d features vary on the MAC", varying, NumFeatures)
	}
	// Bus membership must be common in a datapath design.
	busMembers := 0
	for _, row := range m.Rows {
		if row[12] == 1 {
			busMembers++
		}
	}
	if busMembers < len(m.Rows)/2 {
		t.Fatalf("only %d of %d FFs in buses", busMembers, len(m.Rows))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	nl := chainCircuit(t)
	m := extract(t, nl)
	target := make([]float64, len(m.Rows))
	for i := range target {
		target[i] = float64(i) / 10
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, target); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	m2, t2, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if len(m2.Rows) != len(m.Rows) || len(t2) != len(target) {
		t.Fatal("shape mismatch after round trip")
	}
	for i := range m.Rows {
		if m2.InstanceNames[i] != m.InstanceNames[i] {
			t.Fatal("instance names differ")
		}
		for j := range m.Rows[i] {
			if m2.Rows[i][j] != m.Rows[i][j] {
				t.Fatalf("cell %d,%d differs: %v vs %v", i, j, m2.Rows[i][j], m.Rows[i][j])
			}
		}
		if t2[i] != target[i] {
			t.Fatal("targets differ")
		}
	}
}

func TestCSVWithoutTarget(t *testing.T) {
	m := extract(t, chainCircuit(t))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, nil); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "fdr") {
		t.Fatal("no-target CSV must not have fdr column")
	}
	_, tgt, err := ReadCSV(&buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tgt != nil {
		t.Fatal("target must be nil")
	}
}

func TestCSVErrors(t *testing.T) {
	if _, _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty CSV must fail")
	}
	if _, _, err := ReadCSV(strings.NewReader("a,b\n")); err == nil {
		t.Fatal("wrong column count must fail")
	}
	header := "instance," + strings.Join(Names(), ",")
	bad := header + "\nx," + strings.Repeat("z,", NumFeatures-1) + "z\n"
	if _, _, err := ReadCSV(strings.NewReader(bad)); err == nil {
		t.Fatal("non-numeric cell must fail")
	}
	m := extract(t, chainCircuit(t))
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, []float64{1}); err == nil {
		t.Fatal("target length mismatch must fail")
	}
}
