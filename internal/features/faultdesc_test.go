package features

import "testing"

func TestFaultDescriptorSliceMatchesNames(t *testing.T) {
	names := FaultDescriptorNames()
	if len(names) != NumFaultDescriptorFeatures {
		t.Fatalf("%d names, want %d", len(names), NumFaultDescriptorFeatures)
	}
	d := FaultDescriptor{
		MBU: 1, ClusterSize: 3, WindowStart: 0.25, WindowSpan: 0.5,
	}
	row := d.Slice()
	if len(row) != NumFaultDescriptorFeatures {
		t.Fatalf("slice has %d entries, want %d", len(row), NumFaultDescriptorFeatures)
	}
	byName := map[string]float64{}
	for i, n := range names {
		byName[n] = row[i]
	}
	want := map[string]float64{
		"fault_seu": 0, "fault_mbu": 1, "fault_stuck0": 0, "fault_stuck1": 0,
		"fault_set": 0, "fault_cluster_size": 3, "fault_duration": 0,
		"fault_window_start": 0.25, "fault_window_span": 0.5,
	}
	for n, v := range want {
		if byName[n] != v {
			t.Errorf("%s = %g, want %g", n, byName[n], v)
		}
	}
}

func TestFaultDescriptorNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range FaultDescriptorNames() {
		if seen[n] {
			t.Fatalf("duplicate descriptor name %q", n)
		}
		seen[n] = true
	}
}
