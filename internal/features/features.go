package features

// Vector holds all features of one flip-flop, in the paper's order.
type Vector struct {
	// Structural features (gate-level netlist graph).
	FFFanIn      float64 // flip-flops directly feeding the input cone
	FFFanOut     float64 // flip-flops directly fed by the output cone
	TotalFFsFrom float64 // flip-flops transitively influencing the input
	TotalFFsTo   float64 // flip-flops transitively influenced by the output
	ConnFromPI   float64 // primary inputs in the direct input cone
	ConnToPO     float64 // primary outputs in the direct output cone
	ProxPIMax    float64 // max stages from any connected primary input (-1 if none)
	ProxPIAvg    float64 // average stages from connected primary inputs (-1 if none)
	ProxPIMin    float64 // min stages from any connected primary input (-1 if none)
	ProxPOMax    float64 // max stages to any connected primary output (-1 if none)
	ProxPOAvg    float64 // average stages to connected primary outputs (-1 if none)
	ProxPOMin    float64 // min stages to any connected primary output (-1 if none)
	PartOfBus    float64 // 1 when the instance belongs to a register bus
	BusPosition  float64 // index within the bus, -1 otherwise
	BusLength    float64 // members in the bus, 0 otherwise
	ConnConst    float64 // constant drivers in the direct input cone
	HasFeedback  float64 // 1 when the output loops back to the input
	FeedbackDep  float64 // minimum loop length in stages, -1 without loop

	// Synthesis features (mini technology mapper).
	DriveStrength float64 // X1/X2/X4 drive of the flip-flop cell
	CombFanIn     float64 // combinational cells in the input cone
	CombFanOut    float64 // combinational cells in the output cone
	CombDepth     float64 // longest combinational chain at the output

	// Dynamic features (testbench signal activity).
	At0          float64 // fraction of cycles at logic 0
	At1          float64 // fraction of cycles at logic 1
	StateChanges float64 // number of output transitions
}

// Names lists the feature names in Vector order; it is the CSV header and
// the canonical schema used by reports and ablations.
func Names() []string {
	return []string{
		"ff_fan_in", "ff_fan_out", "total_ffs_from", "total_ffs_to",
		"conn_from_pi", "conn_to_po",
		"prox_pi_max", "prox_pi_avg", "prox_pi_min",
		"prox_po_max", "prox_po_avg", "prox_po_min",
		"part_of_bus", "bus_position", "bus_length",
		"conn_const", "has_feedback", "feedback_depth",
		"drive_strength", "comb_fan_in", "comb_fan_out", "comb_depth",
		"at0", "at1", "state_changes",
	}
}

// NumFeatures is the dimensionality of the feature space.
var NumFeatures = len(Names())

// Group identifies the provenance of a feature, for ablation studies.
type Group int

// Feature groups.
const (
	GroupStructural Group = iota + 1
	GroupSynthesis
	GroupDynamic
)

// Groups returns the group of each feature, aligned with Names.
func Groups() []Group {
	g := make([]Group, 0, NumFeatures)
	for i := 0; i < 18; i++ {
		g = append(g, GroupStructural)
	}
	for i := 0; i < 4; i++ {
		g = append(g, GroupSynthesis)
	}
	for i := 0; i < 3; i++ {
		g = append(g, GroupDynamic)
	}
	return g
}

// Slice flattens the vector in Names order.
func (v *Vector) Slice() []float64 {
	return []float64{
		v.FFFanIn, v.FFFanOut, v.TotalFFsFrom, v.TotalFFsTo,
		v.ConnFromPI, v.ConnToPO,
		v.ProxPIMax, v.ProxPIAvg, v.ProxPIMin,
		v.ProxPOMax, v.ProxPOAvg, v.ProxPOMin,
		v.PartOfBus, v.BusPosition, v.BusLength,
		v.ConnConst, v.HasFeedback, v.FeedbackDep,
		v.DriveStrength, v.CombFanIn, v.CombFanOut, v.CombDepth,
		v.At0, v.At1, v.StateChanges,
	}
}

// Matrix is the extracted dataset: one row per flip-flop, columns in Names
// order, plus the instance names for reporting.
type Matrix struct {
	InstanceNames []string
	Rows          [][]float64
}
