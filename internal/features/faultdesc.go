package features

// FaultDescriptor is the numeric feature block describing a fault model —
// the campaign-side counterpart of the per-flip-flop structural and dynamic
// features. Models are categorical-plus-parameters, so the encoding is a
// kind one-hot followed by the model's parameters; descriptors let learned
// estimators condition on (or be compared across) the fault model a
// campaign was measured under without the features package knowing the
// fault package's types. The zero value describes nothing; build one per
// model in the layer that owns the model type (core.FaultDescriptorFor).
type FaultDescriptor struct {
	// Kind one-hot: exactly one of these is 1.
	SEU, MBU, Stuck0, Stuck1, SET float64
	// ClusterSize is the MBU cluster size; 0 for other kinds.
	ClusterSize float64
	// Duration is the stuck-at hold time in cycles; 0 for other kinds.
	Duration float64
	// WindowStart and WindowSpan locate the injection window as fractions
	// of the active phase (full window: start 0, span 1).
	WindowStart, WindowSpan float64
}

// NumFaultDescriptorFeatures is the length of a descriptor slice.
const NumFaultDescriptorFeatures = 9

// FaultDescriptorNames returns the column names of Slice, in order.
func FaultDescriptorNames() []string {
	return []string{
		"fault_seu", "fault_mbu", "fault_stuck0", "fault_stuck1", "fault_set",
		"fault_cluster_size", "fault_duration",
		"fault_window_start", "fault_window_span",
	}
}

// Slice returns the descriptor as a flat feature row matching
// FaultDescriptorNames.
func (d FaultDescriptor) Slice() []float64 {
	return []float64{
		d.SEU, d.MBU, d.Stuck0, d.Stuck1, d.SET,
		d.ClusterSize, d.Duration,
		d.WindowStart, d.WindowSpan,
	}
}
