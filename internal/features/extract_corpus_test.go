package features

import (
	"strings"
	"testing"

	"repro/internal/circuit"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// extractDUT synthesizes a generated netlist, runs the given stimulus-free
// activity collection (every input idle), and extracts the full matrix —
// the shared fixture of the corpus-topology feature tests.
func extractDUT(t *testing.T, nl *netlist.Netlist, cycles int) *Matrix {
	t.Helper()
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	var act *sim.Activity
	if cycles > 0 {
		p, err := sim.Compile(nl)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		e := sim.NewEngine(p)
		stim := sim.NewStimulus(cycles)
		_, act = sim.Run(e, stim, sim.RunConfig{CollectActivity: true})
	}
	ex, err := NewExtractor(nl)
	if err != nil {
		t.Fatalf("NewExtractor: %v", err)
	}
	m, err := ex.Extract(act)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(m.Rows) != nl.NumFFs() {
		t.Fatalf("rows = %d, want %d", len(m.Rows), nl.NumFFs())
	}
	return m
}

// meanOf averages a feature column over instances whose name matches the
// given prefix.
func meanOf(t *testing.T, m *Matrix, prefix string, col int) float64 {
	t.Helper()
	var sum float64
	n := 0
	for i, name := range m.InstanceNames {
		if strings.HasPrefix(name, prefix) {
			sum += m.Rows[i][col]
			n++
		}
	}
	if n == 0 {
		t.Fatalf("no instances with prefix %q", prefix)
	}
	return sum / float64(n)
}

// Feature columns, by Names() order.
const (
	colFFFanIn    = 0
	colFFFanOut   = 1
	colPartOfBus  = 12
	colHasFB      = 16
	colFeedback   = 17
	colCombDepth  = 21
	colAt0        = 22
	colAt1        = 23
	colStateChg   = 24
	colTotalFFsTo = 3
)

// Arbiter topology: the round-robin pointer replicas close a feedback loop
// through the grant network; queue memory words are buses; grant counters
// feed back onto themselves.
func TestArbiterFeatureExtraction(t *testing.T) {
	nl, err := circuit.NewRRArb(circuit.SmallArbConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := extractDUT(t, nl, 0)

	// Pointer replicas sit on a sequential loop (ptr → grant → ptr).
	if got := meanOf(t, m, "rr/ptr", colHasFB); got != 1 {
		t.Errorf("pointer replicas not flagged as feedback: %v", got)
	}
	// Queue memory words are register buses.
	if got := meanOf(t, m, "q0/mem0", colPartOfBus); got != 1 {
		t.Errorf("queue memory not detected as bus: %v", got)
	}
	// Counters accumulate: every counter bit loops back to itself.
	if got := meanOf(t, m, "gnt1", colHasFB); got != 1 {
		t.Errorf("grant counter without feedback: %v", got)
	}
	// The arbiter pointer influences downstream state (queues pop, output
	// registers load): its transitive fan-out must dwarf its direct one.
	ptrTo := meanOf(t, m, "rr/ptr", colTotalFFsTo)
	if ptrTo < 20 {
		t.Errorf("pointer transitively reaches only %v FFs", ptrTo)
	}
	// Fan-in/fan-out must be populated and vary across the design.
	vals := map[float64]bool{}
	for _, row := range m.Rows {
		if row[colFFFanIn] < 0 || row[colFFFanOut] < 0 {
			t.Fatalf("negative fan degree")
		}
		vals[row[colFFFanIn]] = true
	}
	if len(vals) < 3 {
		t.Errorf("FF fan-in takes only %d distinct values across the arbiter", len(vals))
	}
}

// Serializer topology: the baud divider is free-running (it toggles with no
// stimulus at all, unlike the data path), the shift register forms a chain,
// and the frame counter loops.
func TestUARTFeatureExtraction(t *testing.T) {
	nl, err := circuit.NewUARTSer(circuit.SmallUARTConfig())
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 64
	m := extractDUT(t, nl, cycles)

	// The timer runs with idle inputs: state changes on the divider bits
	// must be nonzero while the FIFO memory stays frozen.
	if got := meanOf(t, m, "baud/div", colStateChg); got == 0 {
		t.Error("free-running baud divider shows no state changes")
	}
	if got := meanOf(t, m, "txfifo/mem", colStateChg); got != 0 {
		t.Errorf("idle FIFO memory toggled %v times", got)
	}
	// At0/At1 are complementary fractions.
	for i, row := range m.Rows {
		if at0, at1 := row[colAt0], row[colAt1]; at0+at1 < 0.999 || at0+at1 > 1.001 {
			t.Fatalf("FF %d: at0+at1 = %v", i, at0+at1)
		}
	}
	// The divider loops on itself (counter feedback).
	if got := meanOf(t, m, "baud/div", colHasFB); got != 1 {
		t.Error("baud divider not flagged as feedback")
	}
	// TMR frame-counter replicas exist and carry feedback through voters.
	if got := meanOf(t, m, "stat/frames_a", colHasFB); got != 1 {
		t.Error("hardened frame counter not flagged as feedback")
	}
}

// ALU topology: a feed-forward pipeline — stage-1 operand registers must
// show no feedback but deep combinational output cones, while the
// accumulator loops back with depth 1.
func TestALUFeatureExtraction(t *testing.T) {
	nl, err := circuit.NewALUPipe(circuit.SmallALUConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := extractDUT(t, nl, 0)

	// The valid-bit chain is pure feed-forward (plain DFFs); the operand
	// registers, by contrast, hold through an enable mux, which is a real
	// structural self-loop and must be flagged.
	if got := meanOf(t, m, "s1/valid", colHasFB); got != 0 {
		t.Errorf("feed-forward valid bit flagged as feedback: %v", got)
	}
	if got := meanOf(t, m, "s1/a", colHasFB); got != 1 {
		t.Errorf("enable-mux hold loop not flagged as feedback: %v", got)
	}
	if got := meanOf(t, m, "s3/acc", colHasFB); got != 1 {
		t.Error("accumulator not flagged as feedback")
	}
	if got := meanOf(t, m, "s3/acc", colFeedback); got != 1 {
		t.Errorf("accumulator loop depth %v, want 1 (self-loop through the adder)", got)
	}
	// Operand bits feed the ALU's ripple/mux network: the combinational
	// depth at stage-1 outputs must exceed the writeback register's.
	d1 := meanOf(t, m, "s1/a", colCombDepth)
	d3 := meanOf(t, m, "s3/res", colCombDepth)
	if d1 <= d3 {
		t.Errorf("execute-stage comb depth %v not deeper than writeback %v", d1, d3)
	}
	// Operand registers are buses.
	if got := meanOf(t, m, "s1/a", colPartOfBus); got != 1 {
		t.Error("operand register not detected as bus")
	}
}
