package features

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/sim"
)

// cone is the result of walking the combinational logic attached to one
// flip-flop pin: which sequential/port elements terminate the walk and how
// much logic lies in between.
type cone struct {
	ffs     []int   // FF indices at the cone frontier
	piNets  []int32 // distinct primary input nets reached (backward cones)
	poPorts []int32 // distinct primary output ports reached (forward cones)
	consts  int     // constant driver cells reached
	cells   int     // combinational cells traversed
}

// Extractor computes feature vectors for every flip-flop of a netlist.
// Structure analysis happens once in NewExtractor; Extract combines it with
// per-run activity data.
type Extractor struct {
	nl    *netlist.Netlist
	ffs   []netlist.CellID
	ffIdx map[netlist.CellID]int

	readers  [][]int32 // net → cell IDs reading it
	outPorts [][]int32 // net → primary output port indices
	isPI     []bool    // net → driven by primary input

	inCones  []cone
	outCones []cone

	// ffGraph is the FF-stage graph: nodes [0,n) are FFs, then PIs, then
	// POs. Edges: PI→FF, FF→FF, FF→PO, each crossing one stage.
	ffGraph *graph.Digraph
	numPI   int
	numPO   int

	depthMemo []int32 // net → longest comb chain forward (-1 unknown)
}

// NewExtractor analyzes the netlist structure.
func NewExtractor(nl *netlist.Netlist) (*Extractor, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("features: %w", err)
	}
	e := &Extractor{nl: nl, ffs: nl.FFs(), numPI: len(nl.Inputs), numPO: len(nl.Outputs)}
	e.ffIdx = make(map[netlist.CellID]int, len(e.ffs))
	for i, cid := range e.ffs {
		e.ffIdx[cid] = i
	}
	e.readers = make([][]int32, len(nl.Nets))
	for ci := range nl.Cells {
		for _, in := range nl.Cells[ci].Inputs {
			e.readers[in] = append(e.readers[in], int32(ci))
		}
	}
	e.outPorts = make([][]int32, len(nl.Nets))
	for pi, net := range nl.Outputs {
		e.outPorts[net] = append(e.outPorts[net], int32(pi))
	}
	e.isPI = make([]bool, len(nl.Nets))
	for _, net := range nl.Inputs {
		e.isPI[net] = true
	}

	e.inCones = make([]cone, len(e.ffs))
	e.outCones = make([]cone, len(e.ffs))
	for i, cid := range e.ffs {
		e.inCones[i] = e.backwardCone(nl.Cells[cid].Inputs[0])
		e.outCones[i] = e.forwardCone(nl.Cells[cid].Output)
	}

	n := len(e.ffs)
	e.ffGraph = graph.New(n + e.numPI + e.numPO)
	piNode := make(map[netlist.NetID]int, e.numPI)
	for k, net := range nl.Inputs {
		piNode[net] = n + k
	}
	for i := range e.ffs {
		for _, src := range e.inCones[i].ffs {
			if err := e.ffGraph.AddEdge(src, i); err != nil {
				return nil, fmt.Errorf("features: %w", err)
			}
		}
		for _, piNet := range e.inCones[i].piNets {
			if err := e.ffGraph.AddEdge(piNode[netlist.NetID(piNet)], i); err != nil {
				return nil, fmt.Errorf("features: %w", err)
			}
		}
		for _, port := range e.outCones[i].poPorts {
			if err := e.ffGraph.AddEdge(i, n+e.numPI+int(port)); err != nil {
				return nil, fmt.Errorf("features: %w", err)
			}
		}
	}
	e.depthMemo = make([]int32, len(nl.Nets))
	for i := range e.depthMemo {
		e.depthMemo[i] = -1
	}
	return e, nil
}

// backwardCone walks from a net backwards through combinational cells,
// stopping at flip-flop outputs, primary inputs and constant drivers.
func (e *Extractor) backwardCone(start netlist.NetID) cone {
	var c cone
	seenNet := map[netlist.NetID]bool{start: true}
	seenFF := map[int]bool{}
	stack := []netlist.NetID{start}
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if e.isPI[net] {
			c.piNets = append(c.piNets, int32(net))
			continue
		}
		drv := e.nl.Nets[net].Driver
		cell := &e.nl.Cells[drv]
		switch {
		case cell.Type.IsSequential():
			if idx := e.ffIdx[drv]; !seenFF[idx] {
				seenFF[idx] = true
				c.ffs = append(c.ffs, idx)
			}
		case cell.Type.Func == netlist.FuncConst0 || cell.Type.Func == netlist.FuncConst1:
			c.consts++
		default:
			c.cells++
			for _, in := range cell.Inputs {
				if !seenNet[in] {
					seenNet[in] = true
					stack = append(stack, in)
				}
			}
		}
	}
	return c
}

// forwardCone walks from a net forward through combinational cells,
// stopping at flip-flop D pins and collecting primary output ports.
func (e *Extractor) forwardCone(start netlist.NetID) cone {
	var c cone
	seenNet := map[netlist.NetID]bool{start: true}
	seenFF := map[int]bool{}
	seenCell := map[int32]bool{}
	seenPO := map[int32]bool{}
	stack := []netlist.NetID{start}
	for len(stack) > 0 {
		net := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, port := range e.outPorts[net] {
			if !seenPO[port] {
				seenPO[port] = true
				c.poPorts = append(c.poPorts, port)
			}
		}
		for _, rd := range e.readers[net] {
			cell := &e.nl.Cells[rd]
			if cell.Type.IsSequential() {
				if idx := e.ffIdx[netlist.CellID(rd)]; !seenFF[idx] {
					seenFF[idx] = true
					c.ffs = append(c.ffs, idx)
				}
				continue
			}
			if seenCell[rd] {
				continue
			}
			seenCell[rd] = true
			c.cells++
			if out := cell.Output; !seenNet[out] {
				seenNet[out] = true
				stack = append(stack, out)
			}
		}
	}
	return c
}

// combDepthFrom returns the longest chain of combinational cells reachable
// forward from net (0 when the net only feeds FFs/outputs directly).
func (e *Extractor) combDepthFrom(net netlist.NetID) int {
	if d := e.depthMemo[net]; d >= 0 {
		return int(d)
	}
	best := 0
	for _, rd := range e.readers[net] {
		cell := &e.nl.Cells[rd]
		if cell.Type.IsSequential() {
			continue
		}
		if d := 1 + e.combDepthFrom(cell.Output); d > best {
			best = d
		}
	}
	e.depthMemo[net] = int32(best)
	return best
}

// busInfo derives bus membership from instance names of the form
// "scope/name[index]"; a bus needs at least two members.
type busInfo struct {
	member bool
	pos    int
	length int
}

func (e *Extractor) busTable() []busInfo {
	type entry struct {
		base string
		pos  int
	}
	entries := make([]entry, len(e.ffs))
	counts := make(map[string]int)
	for i, cid := range e.ffs {
		base, pos := splitBusName(e.nl.Cells[cid].Name)
		entries[i] = entry{base: base, pos: pos}
		if pos >= 0 {
			counts[base]++
		}
	}
	out := make([]busInfo, len(e.ffs))
	for i, en := range entries {
		if en.pos >= 0 && counts[en.base] >= 2 {
			out[i] = busInfo{member: true, pos: en.pos, length: counts[en.base]}
		} else {
			out[i] = busInfo{member: false, pos: -1, length: 0}
		}
	}
	return out
}

// splitBusName splits "regs/data[7]" into ("regs/data", 7); pos is -1 for
// non-bus names.
func splitBusName(name string) (string, int) {
	if !strings.HasSuffix(name, "]") {
		return name, -1
	}
	open := strings.LastIndexByte(name, '[')
	if open < 0 {
		return name, -1
	}
	idx, err := strconv.Atoi(name[open+1 : len(name)-1])
	if err != nil || idx < 0 {
		return name, -1
	}
	return name[:open], idx
}

// proximity aggregates per-FF min/avg/max stage distances from a set of
// port nodes; unreached FFs get -1 across the board.
type proximity struct {
	min, max, avg []float64
}

func (e *Extractor) portProximity(first, count int, dir graph.Direction) proximity {
	n := len(e.ffs)
	p := proximity{
		min: make([]float64, n),
		max: make([]float64, n),
		avg: make([]float64, n),
	}
	sum := make([]float64, n)
	cnt := make([]int, n)
	for i := 0; i < n; i++ {
		p.min[i] = -1
		p.max[i] = -1
		p.avg[i] = -1
	}
	for k := 0; k < count; k++ {
		dist := e.ffGraph.Dijkstra([]int{first + k}, dir, graph.UnitWeight)
		for f := 0; f < n; f++ {
			v := dist[f]
			if v == graph.Inf {
				continue
			}
			if cnt[f] == 0 || v < p.min[f] {
				p.min[f] = v
			}
			if cnt[f] == 0 || v > p.max[f] {
				p.max[f] = v
			}
			sum[f] += v
			cnt[f]++
		}
	}
	for f := 0; f < n; f++ {
		if cnt[f] > 0 {
			p.avg[f] = sum[f] / float64(cnt[f])
		}
	}
	return p
}

// Extract computes the full feature matrix. act supplies the dynamic
// features and must come from a simulation of the same netlist; it may be
// nil, zeroing the dynamic columns.
func (e *Extractor) Extract(act *sim.Activity) (*Matrix, error) {
	n := len(e.ffs)
	if act != nil && len(act.Ones) != n {
		return nil, fmt.Errorf("features: activity covers %d FFs, netlist has %d", len(act.Ones), n)
	}
	buses := e.busTable()
	// PI nodes forward to FFs; PO nodes backward to FFs.
	proxPI := e.portProximity(n, e.numPI, graph.Forward)
	proxPO := e.portProximity(n+e.numPI, e.numPO, graph.Backward)

	rows := make([][]float64, n)
	names := make([]string, n)
	for i, cid := range e.ffs {
		cell := &e.nl.Cells[cid]
		names[i] = cell.Name
		in := e.inCones[i]
		out := e.outCones[i]

		fbDepth := e.ffGraph.ShortestCycleThrough(i)
		hasFB := 0.0
		if fbDepth > 0 {
			hasFB = 1.0
		}

		v := Vector{
			FFFanIn:       float64(len(in.ffs)),
			FFFanOut:      float64(len(out.ffs)),
			TotalFFsFrom:  float64(e.countReachableFFs(i, graph.Backward)),
			TotalFFsTo:    float64(e.countReachableFFs(i, graph.Forward)),
			ConnFromPI:    float64(len(in.piNets)),
			ConnToPO:      float64(len(out.poPorts)),
			ProxPIMax:     proxPI.max[i],
			ProxPIAvg:     proxPI.avg[i],
			ProxPIMin:     proxPI.min[i],
			ProxPOMax:     proxPO.max[i],
			ProxPOAvg:     proxPO.avg[i],
			ProxPOMin:     proxPO.min[i],
			ConnConst:     float64(in.consts),
			HasFeedback:   hasFB,
			FeedbackDep:   float64(fbDepth),
			DriveStrength: float64(cell.Type.Drive),
			CombFanIn:     float64(in.cells),
			CombFanOut:    float64(out.cells),
			CombDepth:     float64(e.combDepthFrom(cell.Output)),
		}
		b := buses[i]
		if b.member {
			v.PartOfBus = 1
			v.BusPosition = float64(b.pos)
			v.BusLength = float64(b.length)
		} else {
			v.BusPosition = -1
		}
		if act != nil && act.Cycles > 0 {
			cyc := float64(act.Cycles)
			v.At1 = float64(act.Ones[i]) / cyc
			v.At0 = 1 - v.At1
			v.StateChanges = float64(act.Toggles[i])
		}
		rows[i] = v.Slice()
	}
	return &Matrix{InstanceNames: names, Rows: rows}, nil
}

// countReachableFFs counts flip-flop nodes reachable from FF i in the stage
// graph (excluding port nodes, and excluding i itself unless it sits on a
// cycle).
func (e *Extractor) countReachableFFs(i int, dir graph.Direction) int {
	n := len(e.ffs)
	count := 0
	for _, u := range e.ffGraph.Reachable(i, dir) {
		if u < n {
			count++
		}
	}
	return count
}
