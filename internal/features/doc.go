// Package features extracts the paper's per-flip-flop feature set
// (Section III-B): structural features from the netlist graph, synthesis
// features from the mapped cell types, and dynamic features from simulated
// signal activity. It also serializes feature matrices to/from CSV.
package features
