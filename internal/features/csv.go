package features

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV serializes a feature matrix, optionally with a target column
// (the FDR values) appended. Column 0 is the instance name.
func WriteCSV(w io.Writer, m *Matrix, target []float64) error {
	if target != nil && len(target) != len(m.Rows) {
		return fmt.Errorf("features: %d targets for %d rows", len(target), len(m.Rows))
	}
	cw := csv.NewWriter(w)
	header := append([]string{"instance"}, Names()...)
	if target != nil {
		header = append(header, "fdr")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("features: write header: %w", err)
	}
	record := make([]string, 0, len(header))
	for i, row := range m.Rows {
		if len(row) != NumFeatures {
			return fmt.Errorf("features: row %d has %d columns, want %d", i, len(row), NumFeatures)
		}
		record = record[:0]
		record = append(record, m.InstanceNames[i])
		for _, v := range row {
			record = append(record, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if target != nil {
			record = append(record, strconv.FormatFloat(target[i], 'g', -1, 64))
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("features: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("features: flush: %w", err)
	}
	return nil
}

// ReadCSV parses a matrix written by WriteCSV. It returns the matrix and the
// target column when present (nil otherwise).
func ReadCSV(r io.Reader) (*Matrix, []float64, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("features: read: %w", err)
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("features: empty CSV")
	}
	header := records[0]
	wantPlain := 1 + NumFeatures
	hasTarget := false
	switch len(header) {
	case wantPlain:
	case wantPlain + 1:
		if header[len(header)-1] != "fdr" {
			return nil, nil, fmt.Errorf("features: last column %q, want fdr", header[len(header)-1])
		}
		hasTarget = true
	default:
		return nil, nil, fmt.Errorf("features: %d columns, want %d or %d", len(header), wantPlain, wantPlain+1)
	}
	for i, name := range Names() {
		if header[i+1] != name {
			return nil, nil, fmt.Errorf("features: column %d is %q, want %q", i+1, header[i+1], name)
		}
	}
	m := &Matrix{
		InstanceNames: make([]string, 0, len(records)-1),
		Rows:          make([][]float64, 0, len(records)-1),
	}
	var target []float64
	if hasTarget {
		target = make([]float64, 0, len(records)-1)
	}
	for li, rec := range records[1:] {
		m.InstanceNames = append(m.InstanceNames, rec[0])
		row := make([]float64, NumFeatures)
		for j := 0; j < NumFeatures; j++ {
			v, err := strconv.ParseFloat(rec[j+1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("features: line %d column %d: %w", li+2, j+1, err)
			}
			row[j] = v
		}
		m.Rows = append(m.Rows, row)
		if hasTarget {
			v, err := strconv.ParseFloat(rec[len(rec)-1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("features: line %d target: %w", li+2, err)
			}
			target = append(target, v)
		}
	}
	return m, target, nil
}
