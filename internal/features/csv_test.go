package features

// Focused csv.go tests complementing the extractor-driven round trip in
// extract_test.go: the artifact feature schema (internal/persist) embeds
// Names() and assumes a CSV write→read cycle preserves names, column order
// and exact float bits, so those properties are pinned here on values an
// extractor never produces (sentinels, off-grid fractions, ULP neighbours).

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// awkwardMatrix builds a small matrix exercising the values CSV must carry
// exactly: non-terminating binary fractions, ULP-adjacent floats, and the
// -1 sentinels the proximity features use.
func awkwardMatrix() (*Matrix, []float64) {
	m := &Matrix{InstanceNames: []string{"u_mac/ff_0", "u_fifo/ff_1", "ff[2]"}}
	for i := 0; i < 3; i++ {
		row := make([]float64, NumFeatures)
		for j := range row {
			row[j] = float64(i*NumFeatures+j) / 7
		}
		row[6] = -1 // prox_pi_max "no connected PI" sentinel
		row[NumFeatures-1] = math.Nextafter(0.1, 1) * float64(i+1)
		m.Rows = append(m.Rows, row)
	}
	return m, []float64{0, math.Nextafter(0.25, 1), 1}
}

// TestCSVRoundTripBitExact pins value fidelity at the bit level, with and
// without the target column.
func TestCSVRoundTripBitExact(t *testing.T) {
	for _, withTarget := range []bool{false, true} {
		name := "without_target"
		if withTarget {
			name = "with_target"
		}
		t.Run(name, func(t *testing.T) {
			m, target := awkwardMatrix()
			if !withTarget {
				target = nil
			}
			var buf bytes.Buffer
			if err := WriteCSV(&buf, m, target); err != nil {
				t.Fatalf("write: %v", err)
			}
			got, gotTarget, err := ReadCSV(&buf)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if len(got.Rows) != len(m.Rows) {
				t.Fatalf("%d rows, want %d", len(got.Rows), len(m.Rows))
			}
			for i := range m.Rows {
				if got.InstanceNames[i] != m.InstanceNames[i] {
					t.Errorf("row %d instance %q, want %q", i, got.InstanceNames[i], m.InstanceNames[i])
				}
				for j := range m.Rows[i] {
					if math.Float64bits(got.Rows[i][j]) != math.Float64bits(m.Rows[i][j]) {
						t.Errorf("row %d col %d: %v, want %v (bits differ)",
							i, j, got.Rows[i][j], m.Rows[i][j])
					}
				}
			}
			if withTarget {
				if gotTarget == nil {
					t.Fatal("target column lost")
				}
				for i := range target {
					if math.Float64bits(gotTarget[i]) != math.Float64bits(target[i]) {
						t.Errorf("target %d: %v, want %v", i, gotTarget[i], target[i])
					}
				}
			} else if gotTarget != nil {
				t.Fatalf("unexpected target column %v", gotTarget)
			}
		})
	}
}

// TestCSVHeaderMatchesSchema pins the on-disk column order to Names().
func TestCSVHeaderMatchesSchema(t *testing.T) {
	m, _ := awkwardMatrix()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(buf.String(), "\n", 2)[0]
	cols := strings.Split(header, ",")
	if len(cols) != 1+NumFeatures {
		t.Fatalf("%d header columns, want %d", len(cols), 1+NumFeatures)
	}
	if cols[0] != "instance" {
		t.Errorf("first column %q, want instance", cols[0])
	}
	for j, want := range Names() {
		if cols[j+1] != want {
			t.Errorf("column %d is %q, want %q", j+1, cols[j+1], want)
		}
	}
}

// TestReadCSVRejectsForeignSchema pins that a renamed column — a schema
// drift an artifact consumer must never silently accept — fails loudly.
func TestReadCSVRejectsForeignSchema(t *testing.T) {
	m, _ := awkwardMatrix()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	renamed := strings.Replace(buf.String(), "ff_fan_in", "not_a_feature", 1)
	if _, _, err := ReadCSV(strings.NewReader(renamed)); err == nil {
		t.Error("renamed column accepted")
	}
}

func TestWriteCSVRejectsRaggedRows(t *testing.T) {
	m, _ := awkwardMatrix()
	m.Rows[1] = m.Rows[1][:3]
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, nil); err == nil {
		t.Error("ragged row accepted")
	}
}
