// Package graph implements the directed-graph algorithms used for circuit
// analysis: breadth-first search, Dijkstra's shortest path (the algorithm the
// paper names for stage counting), transitive reachability, shortest cycles,
// and topological sorting (used to levelize netlists for simulation).
//
// Nodes are dense integer IDs in [0, Order()); callers map their own entities
// (cells, flip-flops, ports) onto IDs.
package graph
