package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// diamond builds 0→1, 0→2, 1→3, 2→3.
func diamond(t *testing.T) *Digraph {
	t.Helper()
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestOrderSizeDegrees(t *testing.T) {
	g := diamond(t)
	if g.Order() != 4 || g.Size() != 4 {
		t.Fatalf("order=%d size=%d, want 4,4", g.Order(), g.Size())
	}
	if g.OutDegree(0) != 2 || g.InDegree(3) != 2 {
		t.Fatalf("degrees wrong: out0=%d in3=%d", g.OutDegree(0), g.InDegree(3))
	}
	if g.OutDegree(3) != 0 || g.InDegree(0) != 0 {
		t.Fatal("sink/source degrees wrong")
	}
}

func TestAddNode(t *testing.T) {
	g := New(0)
	id := g.AddNode()
	if id != 0 || g.Order() != 1 {
		t.Fatalf("AddNode = %d, order = %d", id, g.Order())
	}
}

func TestAddEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("expected range error")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestBFSDistances(t *testing.T) {
	g := diamond(t)
	d := g.BFSDistances([]int{0}, Forward)
	want := []int{0, 1, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
	back := g.BFSDistances([]int{3}, Backward)
	wantBack := []int{2, 1, 1, 0}
	for i := range wantBack {
		if back[i] != wantBack[i] {
			t.Fatalf("back dist[%d] = %d, want %d", i, back[i], wantBack[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	_ = g.AddEdge(0, 1)
	d := g.BFSDistances([]int{0}, Forward)
	if d[2] != -1 {
		t.Fatalf("dist to isolated node = %d, want -1", d[2])
	}
}

func TestBFSMultiSource(t *testing.T) {
	g := New(5)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(1, 3)
	_ = g.AddEdge(3, 4)
	d := g.BFSDistances([]int{0, 1}, Forward)
	if d[2] != 1 || d[3] != 1 || d[4] != 2 {
		t.Fatalf("multi-source BFS wrong: %v", d)
	}
}

func TestReachable(t *testing.T) {
	g := diamond(t)
	r := g.Reachable(0, Forward)
	if len(r) != 3 {
		t.Fatalf("reachable from 0 = %v, want 3 nodes", r)
	}
	r = g.Reachable(3, Forward)
	if len(r) != 0 {
		t.Fatalf("reachable from sink = %v, want none", r)
	}
	r = g.Reachable(3, Backward)
	if len(r) != 3 {
		t.Fatalf("backward reachable from 3 = %v, want 3 nodes", r)
	}
}

func TestReachableCountMatchesReachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for e := 0; e < n*2; e++ {
			_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		scratch := make([]bool, n)
		var queue []int32
		for v := 0; v < n; v++ {
			want := len(g.Reachable(v, Forward))
			got := g.ReachableCount(v, Forward, scratch, queue)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestShortestCycleThrough(t *testing.T) {
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 0)
	_ = g.AddEdge(3, 3) // self loop
	if got := g.ShortestCycleThrough(0); got != 3 {
		t.Fatalf("cycle through 0 = %d, want 3", got)
	}
	if got := g.ShortestCycleThrough(3); got != 1 {
		t.Fatalf("self-loop cycle = %d, want 1", got)
	}
	h := diamond(t)
	if got := h.ShortestCycleThrough(0); got != -1 {
		t.Fatalf("acyclic cycle = %d, want -1", got)
	}
}

func TestTopoSort(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := make([]int, g.Order())
	for i, u := range order {
		pos[u] = i
	}
	for u := 0; u < g.Order(); u++ {
		for _, v := range g.Succ(u) {
			if pos[u] >= pos[int(v)] {
				t.Fatalf("topo violated: %d before %d", v, u)
			}
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New(2)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 0)
	if _, err := g.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Fatalf("err = %v, want ErrCycle", err)
	}
}

func TestLevels(t *testing.T) {
	g := diamond(t)
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}

func TestLevelsLongestPath(t *testing.T) {
	// 0→1→2→3 plus shortcut 0→3: level of 3 must be 3 (longest path).
	g := New(4)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(1, 2)
	_ = g.AddEdge(2, 3)
	_ = g.AddEdge(0, 3)
	lv, err := g.Levels()
	if err != nil {
		t.Fatalf("Levels: %v", err)
	}
	if lv[3] != 3 {
		t.Fatalf("level[3] = %d, want 3", lv[3])
	}
}

func TestReverse(t *testing.T) {
	g := diamond(t)
	r := g.Reverse()
	if r.Size() != g.Size() {
		t.Fatalf("reverse size = %d, want %d", r.Size(), g.Size())
	}
	d := r.BFSDistances([]int{3}, Forward)
	if d[0] != 2 {
		t.Fatalf("reverse BFS dist = %d, want 2", d[0])
	}
}

func TestDijkstraUnitEqualsBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		g := New(n)
		for e := 0; e < n*3; e++ {
			_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		src := rng.Intn(n)
		bfs := g.BFSDistances([]int{src}, Forward)
		dij := g.Dijkstra([]int{src}, Forward, UnitWeight)
		for i := range bfs {
			if bfs[i] == -1 {
				if !math.IsInf(dij[i], 1) {
					return false
				}
			} else if dij[i] != float64(bfs[i]) {
				return false
			}
		}
		// Backward too.
		bfsB := g.BFSDistances([]int{src}, Backward)
		dijB := g.Dijkstra([]int{src}, Backward, UnitWeight)
		for i := range bfsB {
			if bfsB[i] == -1 {
				if !math.IsInf(dijB[i], 1) {
					return false
				}
			} else if dijB[i] != float64(bfsB[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraWeighted(t *testing.T) {
	// 0→1 (w=5), 0→2 (w=1), 2→1 (w=1): shortest 0→1 is 2 via node 2.
	g := New(3)
	_ = g.AddEdge(0, 1)
	_ = g.AddEdge(0, 2)
	_ = g.AddEdge(2, 1)
	w := func(u, v int) float64 {
		if u == 0 && v == 1 {
			return 5
		}
		return 1
	}
	d := g.Dijkstra([]int{0}, Forward, w)
	if d[1] != 2 {
		t.Fatalf("dist to 1 = %v, want 2", d[1])
	}
}

func TestDijkstraIgnoresBadSources(t *testing.T) {
	g := New(2)
	d := g.Dijkstra([]int{-5, 7, 0}, Forward, UnitWeight)
	if d[0] != 0 || !math.IsInf(d[1], 1) {
		t.Fatalf("bad-source handling wrong: %v", d)
	}
}

// Property: reachability sets only grow when edges are added.
func TestReachabilityMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New(n)
		counts := make([]int, n)
		scratch := make([]bool, n)
		var queue []int32
		for v := 0; v < n; v++ {
			counts[v] = g.ReachableCount(v, Forward, scratch, queue)
		}
		for e := 0; e < 10; e++ {
			_ = g.AddEdge(rng.Intn(n), rng.Intn(n))
			for v := 0; v < n; v++ {
				c := g.ReachableCount(v, Forward, scratch, queue)
				if c < counts[v] {
					return false
				}
				counts[v] = c
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
