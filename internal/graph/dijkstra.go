package graph

import (
	"container/heap"
	"math"
)

// WeightFunc returns the non-negative weight of the edge u→v.
type WeightFunc func(u, v int) float64

// UnitWeight assigns weight 1 to every edge, making Dijkstra equivalent to
// BFS. The paper's feature extraction counts "stages" with unit weights.
func UnitWeight(_, _ int) float64 { return 1 }

// Inf marks an unreachable node in Dijkstra results.
var Inf = math.Inf(1)

type heapItem struct {
	node int32
	dist float64
}

type distHeap []heapItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Dijkstra computes single-source (or multi-source) shortest path distances
// from sources following dir, using w for edge weights. Unreachable nodes
// receive Inf. Negative weights are not supported; w must be non-negative.
func (g *Digraph) Dijkstra(sources []int, dir Direction, w WeightFunc) []float64 {
	dist := make([]float64, g.Order())
	for i := range dist {
		dist[i] = Inf
	}
	h := make(distHeap, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.Order() {
			continue
		}
		if dist[s] > 0 {
			dist[s] = 0
			h = append(h, heapItem{node: int32(s)})
		}
	}
	heap.Init(&h)
	adj := g.adj(dir)
	for h.Len() > 0 {
		it := heap.Pop(&h).(heapItem)
		u := it.node
		if it.dist > dist[u] {
			continue // stale entry
		}
		for _, v := range adj[u] {
			var ew float64
			if dir == Backward {
				ew = w(int(v), int(u))
			} else {
				ew = w(int(u), int(v))
			}
			nd := dist[u] + ew
			if nd < dist[v] {
				dist[v] = nd
				heap.Push(&h, heapItem{node: v, dist: nd})
			}
		}
	}
	return dist
}
