package graph

import (
	"errors"
	"fmt"
)

// ErrCycle is returned by TopoSort when the graph contains a directed cycle.
var ErrCycle = errors.New("graph: cycle detected")

// Digraph is a directed graph over dense node IDs with adjacency lists.
// The zero value is an empty graph; use New or AddNode to grow it.
type Digraph struct {
	succ [][]int32
	pred [][]int32
	arcs int
}

// New returns a digraph with n nodes and no edges.
func New(n int) *Digraph {
	return &Digraph{succ: make([][]int32, n), pred: make([][]int32, n)}
}

// Order returns the number of nodes.
func (g *Digraph) Order() int { return len(g.succ) }

// Size returns the number of edges.
func (g *Digraph) Size() int { return g.arcs }

// AddNode appends a node and returns its ID.
func (g *Digraph) AddNode() int {
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return len(g.succ) - 1
}

// AddEdge inserts the directed edge u→v. Parallel edges are kept (circuits
// legitimately have multiple connections between the same pair of cells).
// It returns an error if either endpoint is out of range.
func (g *Digraph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.succ) || v < 0 || v >= len(g.succ) {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.succ))
	}
	g.succ[u] = append(g.succ[u], int32(v))
	g.pred[v] = append(g.pred[v], int32(u))
	g.arcs++
	return nil
}

// Succ returns the successor list of u (aliased, do not modify).
func (g *Digraph) Succ(u int) []int32 { return g.succ[u] }

// Pred returns the predecessor list of u (aliased, do not modify).
func (g *Digraph) Pred(u int) []int32 { return g.pred[u] }

// OutDegree returns the number of outgoing edges of u.
func (g *Digraph) OutDegree(u int) int { return len(g.succ[u]) }

// InDegree returns the number of incoming edges of u.
func (g *Digraph) InDegree(u int) int { return len(g.pred[u]) }

// Reverse returns a new digraph with every edge Direction flipped.
func (g *Digraph) Reverse() *Digraph {
	r := New(g.Order())
	for u, vs := range g.succ {
		for _, v := range vs {
			// Error is impossible: nodes are in range by construction.
			_ = r.AddEdge(int(v), u)
		}
	}
	return r
}

// Direction selects which adjacency a traversal follows.
type Direction int

// Traversal directions.
const (
	// Forward follows successor edges.
	Forward Direction = iota + 1
	// Backward follows predecessor edges.
	Backward
)

func (g *Digraph) adj(d Direction) [][]int32 {
	if d == Backward {
		return g.pred
	}
	return g.succ
}

// BFSDistances returns the unweighted shortest distance (in edges) from each
// source to every node, following the given Direction. Unreachable nodes get
// distance -1. Sources themselves get 0.
func (g *Digraph) BFSDistances(sources []int, dir Direction) []int {
	dist := make([]int, g.Order())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(sources))
	for _, s := range sources {
		if s < 0 || s >= g.Order() || dist[s] == 0 {
			continue
		}
		dist[s] = 0
		queue = append(queue, int32(s))
	}
	adj := g.adj(dir)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Reachable returns the set of nodes reachable from start (excluding start
// itself unless it lies on a cycle back to itself) following dir.
func (g *Digraph) Reachable(start int, dir Direction) []int {
	seen := make([]bool, g.Order())
	adj := g.adj(dir)
	queue := []int32{int32(start)}
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				out = append(out, int(v))
				queue = append(queue, v)
			}
		}
	}
	return out
}

// ReachableCount returns len(Reachable(start, dir)) without materializing the
// node list allocation per call when the caller supplies a scratch buffer.
// scratch must be a []bool of length Order() (it is reset on entry).
func (g *Digraph) ReachableCount(start int, dir Direction, scratch []bool, queue []int32) int {
	for i := range scratch {
		scratch[i] = false
	}
	adj := g.adj(dir)
	queue = append(queue[:0], int32(start))
	count := 0
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, v := range adj[u] {
			if !scratch[v] {
				scratch[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count
}

// ShortestCycleThrough returns the length (in edges) of the shortest directed
// cycle passing through node v, or -1 if v lies on no cycle. A self-loop has
// length 1.
func (g *Digraph) ShortestCycleThrough(v int) int {
	// BFS from the successors of v back to v.
	dist := make([]int, g.Order())
	for i := range dist {
		dist[i] = -1
	}
	var queue []int32
	for _, s := range g.succ[v] {
		if int(s) == v {
			return 1
		}
		if dist[s] == -1 {
			dist[s] = 1
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.succ[u] {
			if int(w) == v {
				return dist[u] + 1
			}
			if dist[w] == -1 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return -1
}

// TopoSort returns a topological ordering of the graph, or ErrCycle if the
// graph has a directed cycle. Kahn's algorithm; ties resolve in node order so
// the result is deterministic.
func (g *Digraph) TopoSort() ([]int, error) {
	n := g.Order()
	indeg := make([]int, n)
	for u := 0; u < n; u++ {
		indeg[u] = g.InDegree(u)
	}
	order := make([]int, 0, n)
	frontier := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			frontier = append(frontier, u)
		}
	}
	for len(frontier) > 0 {
		u := frontier[0]
		frontier = frontier[1:]
		order = append(order, u)
		for _, v := range g.succ[u] {
			indeg[v]--
			if indeg[v] == 0 {
				frontier = append(frontier, int(v))
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("%w: %d of %d nodes ordered", ErrCycle, len(order), n)
	}
	return order, nil
}

// Levels assigns each node its longest-path depth from any zero-in-degree
// node (level 0). Returns ErrCycle for cyclic graphs. Used to levelize
// combinational netlists for cycle-based simulation.
func (g *Digraph) Levels() ([]int, error) {
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	level := make([]int, g.Order())
	for _, u := range order {
		for _, v := range g.succ[u] {
			if level[u]+1 > level[v] {
				level[v] = level[u] + 1
			}
		}
	}
	return level, nil
}
