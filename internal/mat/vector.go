package mat

import (
	"fmt"
	"math"
	"sort"
)

// Dot returns the inner product of x and y.
// It panics if the lengths differ; vector helpers are hot paths and callers
// control both operands.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large magnitudes.
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// AXPY computes y += alpha*x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (dividing by n, matching the
// paper's Explained Variance definition), or 0 for fewer than one element.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// MinMax returns the minimum and maximum of x.
// For an empty slice it returns (0, 0).
func MinMax(x []float64) (min, max float64) {
	if len(x) == 0 {
		return 0, 0
	}
	min, max = x[0], x[0]
	for _, v := range x[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of x using linear
// interpolation between order statistics. x is not modified.
// For an empty slice it returns 0.
func Quantile(x []float64, q float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}
