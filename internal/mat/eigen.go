package mat

import (
	"fmt"
	"math"
	"sort"
)

// SymEigen computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the corresponding eigenvectors as matrix columns. The input is not
// modified; symmetry is assumed (the strictly lower triangle is ignored in
// the sense that a[i][j] and a[j][i] are averaged).
func SymEigen(a *Matrix) ([]float64, *Matrix, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, nil, fmt.Errorf("%w: SymEigen needs square, got %dx%d", ErrShape, a.Rows(), a.Cols())
	}
	// Working copy, symmetrized.
	w := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, (a.At(i, j)+a.At(j, i))/2)
		}
	}
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Sort eigenpairs by descending eigenvalue.
	type pair struct {
		val float64
		col int
	}
	pairs := make([]pair, n)
	for i := range pairs {
		pairs[i] = pair{val: w.At(i, i), col: i}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })
	values := make([]float64, n)
	vectors := New(n, n)
	for out, pr := range pairs {
		values[out] = pr.val
		for k := 0; k < n; k++ {
			vectors.Set(k, out, v.At(k, pr.col))
		}
	}
	return values, vectors, nil
}
