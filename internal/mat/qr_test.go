package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, m, n int) *Matrix {
	a := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	return a
}

// Property: A == Q*R for random tall matrices.
func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(6)
		a := randomMatrix(rng, m, n)
		qr, err := Factorize(a)
		if err != nil {
			return false
		}
		prod, err := Mul(qr.Q(), qr.R())
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(prod, a)
		return err == nil && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Qᵀ*Q == I (thin Q has orthonormal columns).
func TestQROrthonormal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(5)
		a := randomMatrix(rng, m, n)
		qr, err := Factorize(a)
		if err != nil {
			return false
		}
		q := qr.Q()
		qtq, err := Mul(q.T(), q)
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(qtq, Identity(n))
		return err == nil && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQRWideMatrixRejected(t *testing.T) {
	if _, err := Factorize(New(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, well-conditioned system: solution must be exact.
	a, _ := FromRows([][]float64{
		{2, 1, 0},
		{1, 3, 1},
		{0, 1, 4},
	})
	want := []float64{1, -2, 3}
	b, _ := MulVec(a, want)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

// Property: for overdetermined consistent systems (b = A*x0), the LS solution
// recovers x0.
func TestLeastSquaresConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + 1 + rng.Intn(6)
		a := randomMatrix(rng, m, n)
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b, err := MulVec(a, x0)
		if err != nil {
			return false
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			// Randomly singular matrices are possible but vanishingly rare
			// for Gaussian entries; treat as failure.
			return false
		}
		for i := range x0 {
			if !almostEqual(x[i], x0[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: LS residual is orthogonal to the column space: Aᵀ(b − Ax) ≈ 0.
func TestLeastSquaresNormalEquations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := n + 2 + rng.Intn(6)
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return false
		}
		ax, err := MulVec(a, x)
		if err != nil {
			return false
		}
		res := make([]float64, m)
		for i := range res {
			res[i] = b[i] - ax[i]
		}
		atr, err := MulVec(a.T(), res)
		if err != nil {
			return false
		}
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	// Two identical columns: rank deficient.
	a, _ := FromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	_, err := LeastSquares(a, []float64{1, 2, 3})
	if !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveRHSLengthMismatch(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	qr, err := Factorize(a)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	if _, err := qr.Solve([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestRidgeSolveShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 20, 4)
	b := make([]float64, 20)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x0, err := RidgeSolve(a, b, 0)
	if err != nil {
		t.Fatalf("RidgeSolve(0): %v", err)
	}
	x1, err := RidgeSolve(a, b, 10)
	if err != nil {
		t.Fatalf("RidgeSolve(10): %v", err)
	}
	if Norm2(x1) >= Norm2(x0) {
		t.Fatalf("ridge must shrink solution: ||x1||=%v >= ||x0||=%v", Norm2(x1), Norm2(x0))
	}
}

func TestRidgeSolveHandlesRankDeficiency(t *testing.T) {
	a, _ := FromRows([][]float64{
		{1, 1},
		{2, 2},
		{3, 3},
	})
	x, err := RidgeSolve(a, []float64{1, 2, 3}, 1e-3)
	if err != nil {
		t.Fatalf("ridge on singular system should succeed: %v", err)
	}
	if len(x) != 2 {
		t.Fatalf("len(x) = %d, want 2", len(x))
	}
}

func TestRidgeNegativeLambda(t *testing.T) {
	if _, err := RidgeSolve(New(2, 2), []float64{0, 0}, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestQRZeroColumn(t *testing.T) {
	// A zero column exercises the tau==0 path.
	a, _ := FromRows([][]float64{
		{1, 0},
		{2, 0},
		{3, 0},
	})
	qr, err := Factorize(a)
	if err != nil {
		t.Fatalf("Factorize: %v", err)
	}
	prod, err := Mul(qr.Q(), qr.R())
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if d, _ := MaxAbsDiff(prod, a); d > 1e-12 {
		t.Fatalf("QR reconstruction with zero column, diff=%v", d)
	}
	if _, err := qr.Solve([]float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("solve with zero column: err = %v, want ErrSingular", err)
	}
}
