package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization of an m×n matrix A (m ≥ n):
// A = Q*R with Q orthogonal (m×m, stored implicitly) and R upper triangular.
type QR struct {
	qr   *Matrix   // packed factors: R in the upper triangle, reflectors below
	tau  []float64 // Householder scalars
	rows int
	cols int
}

// Factorize computes the Householder QR factorization of a.
// a is not modified. It returns an error if a has fewer rows than columns.
func Factorize(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("%w: QR needs rows >= cols, got %dx%d", ErrShape, m, n)
	}
	qr := a.Clone()
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		// Compute the norm of the k-th column below the diagonal.
		var norm float64
		for i := k; i < m; i++ {
			norm = math.Hypot(norm, qr.At(i, k))
		}
		if norm == 0 {
			tau[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			norm = -norm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/norm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		tau[k] = norm

		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
	}
	return &QR{qr: qr, tau: tau, rows: m, cols: n}, nil
}

// R returns the n×n upper-triangular factor.
func (f *QR) R() *Matrix {
	n := f.cols
	r := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if i == j {
				r.Set(i, j, -f.tau[i])
			} else {
				r.Set(i, j, f.qr.At(i, j))
			}
		}
	}
	return r
}

// Q returns the thin m×n orthonormal factor.
func (f *QR) Q() *Matrix {
	m, n := f.rows, f.cols
	q := New(m, n)
	for k := n - 1; k >= 0; k-- {
		q.Set(k, k, 1)
		if f.qr.At(k, k) == 0 {
			continue
		}
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += f.qr.At(i, k) * q.At(i, j)
			}
			s = -s / f.qr.At(k, k)
			for i := k; i < m; i++ {
				q.Set(i, j, q.At(i, j)+s*f.qr.At(i, k))
			}
		}
	}
	return q
}

// Solve computes the least-squares solution x minimizing ||A*x - b||₂ using
// the factorization. It returns ErrSingular when R has a (near-)zero diagonal
// element, meaning A is rank deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.rows, f.cols
	if len(b) != m {
		return nil, fmt.Errorf("%w: rhs length %d, want %d", ErrShape, len(b), m)
	}
	// y = Qᵀ b, computed by applying the reflectors in order.
	y := make([]float64, m)
	copy(y, b)
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution on R x = y[:n]. Diagonal of R is -tau.
	x := make([]float64, n)
	const eps = 1e-12
	for i := n - 1; i >= 0; i-- {
		d := -f.tau[i]
		if math.Abs(d) < eps {
			return nil, fmt.Errorf("%w: R[%d,%d]=%g", ErrSingular, i, i, d)
		}
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min ||A*x − b||₂ via QR.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeSolve solves the Tikhonov-regularized least squares problem
// min ||A*x − b||₂² + lambda*||x||₂² by augmenting A with sqrt(lambda)*I.
// lambda must be non-negative; lambda == 0 reduces to LeastSquares.
func RidgeSolve(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("mat: ridge lambda must be >= 0, got %g", lambda)
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows(), a.Cols()
	aug := New(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.RawRow(i), a.RawRow(i))
	}
	sl := math.Sqrt(lambda)
	for j := 0; j < n; j++ {
		aug.Set(m+j, j, sl)
	}
	rhs := make([]float64, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}
