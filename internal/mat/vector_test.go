package mat

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !almostEqual(got, 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Fatalf("Norm2(nil) = %v, want 0", got)
	}
	// Values that would overflow a naive sum of squares.
	big := []float64{1e200, 1e200}
	if got := Norm2(big); math.IsInf(got, 0) {
		t.Fatal("Norm2 overflowed")
	}
}

func TestAXPY(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("AXPY = %v, want [7 9]", y)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	AXPY(1, []float64{1}, []float64{1, 2})
}

func TestMeanVarianceStdDev(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(x); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(x); got != 4 {
		t.Fatalf("Variance = %v, want 4", got)
	}
	if got := StdDev(x); got != 2 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-slice statistics must be 0")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Fatalf("MinMax = %v,%v want -1,7", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("MinMax(nil) must be 0,0")
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(x, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) must be 0")
	}
	// Interpolated quantile.
	if got := Quantile([]float64{0, 10}, 0.75); !almostEqual(got, 7.5, 1e-12) {
		t.Fatalf("Quantile interp = %v, want 7.5", got)
	}
}

// Property: Quantile does not modify its input and is monotone in q.
func TestQuantileProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		orig := append([]float64(nil), x...)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(x, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		for i := range x {
			if x[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is invariant under shifts and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		v := Variance(x)
		shifted := make([]float64, n)
		scaled := make([]float64, n)
		for i := range x {
			shifted[i] = x[i] + 13.5
			scaled[i] = 3 * x[i]
		}
		if !almostEqual(Variance(shifted), v, 1e-9*(1+v)) {
			return false
		}
		return almostEqual(Variance(scaled), 9*v, 1e-9*(1+9*v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Quantile(x, k/(n-1)) of sorted data hits the k-th order statistic.
func TestQuantileOrderStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 11
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	s := append([]float64(nil), x...)
	sort.Float64s(s)
	for k := 0; k < n; k++ {
		q := float64(k) / float64(n-1)
		if got := Quantile(x, q); !almostEqual(got, s[k], 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", q, got, s[k])
		}
	}
}
