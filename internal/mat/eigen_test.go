package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a, _ := FromRows([][]float64{
		{3, 0, 0},
		{0, 1, 0},
		{0, 0, 2},
	})
	vals, vecs, err := SymEigen(a)
	if err != nil {
		t.Fatalf("SymEigen: %v", err)
	}
	want := []float64{3, 2, 1}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-10) {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are unit vectors.
	for c := 0; c < 3; c++ {
		var norm float64
		for r := 0; r < 3; r++ {
			norm += vecs.At(r, c) * vecs.At(r, c)
		}
		if !almostEqual(norm, 1, 1e-10) {
			t.Fatalf("eigenvector %d not unit: %v", c, norm)
		}
	}
}

func TestSymEigenRejectsNonSquare(t *testing.T) {
	if _, _, err := SymEigen(New(2, 3)); err == nil {
		t.Fatal("non-square must fail")
	}
}

// Property: A v_i = λ_i v_i and V is orthonormal, for random symmetric A.
func TestSymEigenDecomposition(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := SymEigen(a)
		if err != nil {
			return false
		}
		// Descending eigenvalues.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		// A v = λ v per column.
		for c := 0; c < n; c++ {
			col := vecs.Col(c)
			av, err := MulVec(a, col)
			if err != nil {
				return false
			}
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-vals[c]*col[r]) > 1e-7 {
					return false
				}
			}
		}
		// Orthonormality.
		for c1 := 0; c1 < n; c1++ {
			for c2 := c1; c2 < n; c2++ {
				d := Dot(vecs.Col(c1), vecs.Col(c2))
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if math.Abs(d-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: trace(A) equals the eigenvalue sum (invariant check).
func TestSymEigenTrace(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		a := New(n, n)
		var trace float64
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
			trace += a.At(i, i)
		}
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-trace) < 1e-8
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
