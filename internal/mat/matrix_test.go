package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value At(0,0) = %v, want 0", got)
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows() != 3 || m.Cols() != 2 {
		t.Fatalf("dims = %dx%d, want 3x2", m.Rows(), m.Cols())
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestFromRowsRagged(t *testing.T) {
	_, err := FromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m, err := FromRows(nil)
	if err != nil {
		t.Fatalf("FromRows(nil): %v", err)
	}
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("dims = %dx%d, want 0x0", m.Rows(), m.Cols())
	}
}

func TestRowColCopySemantics(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row must return a copy")
	}
	c := m.Col(1)
	c[0] = 99
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
	rr := m.RawRow(1)
	rr[0] = 42
	if m.At(1, 0) != 42 {
		t.Fatal("RawRow must alias storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y, err := MulVec(a, []float64{1, 1, 1})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("y = %v, want [6 15]", y)
	}
	if _, err := MulVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	s, err := Add(a, b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if s.At(0, 0) != 5 || s.At(1, 1) != 5 {
		t.Fatalf("Add wrong: %v", s)
	}
	d, err := Sub(s, b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if diff, _ := MaxAbsDiff(d, a); diff != 0 {
		t.Fatalf("Sub(Add(a,b),b) != a, diff=%v", diff)
	}
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatalf("Scale wrong: %v", a.At(1, 1))
	}
	if _, err := Add(a, New(1, 1)); !errors.Is(err, ErrShape) {
		t.Fatal("Add shape error expected")
	}
	if _, err := Sub(a, New(1, 1)); !errors.Is(err, ErrShape) {
		t.Fatal("Sub shape error expected")
	}
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	id := Identity(4)
	left, _ := Mul(id, a)
	right, _ := Mul(a, id)
	if d, _ := MaxAbsDiff(left, a); d != 0 {
		t.Fatal("I*A != A")
	}
	if d, _ := MaxAbsDiff(right, a); d != 0 {
		t.Fatal("A*I != A")
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(m, k), New(k, n)
		for i := range a.data {
			a.data[i] = rng.NormFloat64()
		}
		for i := range b.data {
			b.data[i] = rng.NormFloat64()
		}
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		btat, err := Mul(b.T(), a.T())
		if err != nil {
			return false
		}
		d, err := MaxAbsDiff(ab.T(), btat)
		return err == nil && d < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	if s := m.String(); s == "" {
		t.Fatal("String() empty")
	}
}
