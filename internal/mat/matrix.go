package mat

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: incompatible dimensions")

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("mat: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols
}

// New returns a zero-initialized rows×cols matrix.
// It panics if rows or cols is negative; a 0×0 matrix is valid and useful as
// an empty placeholder.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows.
// The data is copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), cols)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i as a slice aliasing the matrix storage.
// Mutating the returned slice mutates the matrix.
func (m *Matrix) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulVec returns a*x for a column vector x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v + b.data[i]
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i, v := range a.data {
		out.data[i] = v - b.data[i]
	}
	return out, nil
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// MaxAbsDiff returns the largest absolute element-wise difference between a
// and b, or an error if the shapes differ.
func MaxAbsDiff(a, b *Matrix) (float64, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return 0, fmt.Errorf("%w: %dx%d vs %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	var max float64
	for i, v := range a.data {
		d := math.Abs(v - b.data[i])
		if d > max {
			max = d
		}
	}
	return max, nil
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "mat %dx%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&sb, "% .6g ", m.At(i, j))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
