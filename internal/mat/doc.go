// Package mat provides the small dense linear-algebra kernel used by the
// machine-learning packages: vectors, row-major matrices, Householder QR
// factorization, least-squares and ridge solvers, and summary statistics.
//
// The package is deliberately minimal — it implements exactly what the
// regression models in internal/ml need, with no external dependencies.
package mat
