package core

import (
	"repro/internal/fault"
	"repro/internal/features"
)

// FaultDescriptorFor encodes a fault model as its feature descriptor. The
// mapping lives here rather than in either leaf package: features stays
// free of fault-model types and fault stays free of feature schemas, with
// core owning the correspondence (as it does for every other cross-layer
// assembly).
func FaultDescriptorFor(m fault.Model) features.FaultDescriptor {
	canonical, err := fault.ParseModel(m.String())
	if err == nil {
		// Round-tripping through the canonical string fills normalized
		// defaults (kind, cluster size, duration, window) so equal models
		// produce equal descriptors regardless of zero-value spelling.
		m = canonical
	}
	var d features.FaultDescriptor
	switch m.Kind {
	case fault.KindMBU:
		d.MBU = 1
		d.ClusterSize = float64(m.Size)
	case fault.KindStuck0:
		d.Stuck0 = 1
		d.Duration = float64(m.Duration)
	case fault.KindStuck1:
		d.Stuck1 = 1
		d.Duration = float64(m.Duration)
	case fault.KindSET:
		d.SET = 1
	default:
		d.SEU = 1
	}
	d.WindowStart = m.WindowStart
	d.WindowSpan = m.WindowEnd - m.WindowStart
	return d
}
