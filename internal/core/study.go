package core

import (
	"context"
	"fmt"

	"repro/internal/circuit"
	"repro/internal/fault"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/sim"
)

// StudyConfig assembles one end-to-end study.
type StudyConfig struct {
	// MAC is the device-under-test configuration.
	MAC circuit.MACConfig
	// Bench is the testbench workload.
	Bench circuit.MACBenchConfig
	// InjectionsPerFF is the flat-campaign budget (the paper uses 170).
	InjectionsPerFF int
	// CampaignSeed drives injection-time sampling.
	CampaignSeed int64
	// Model selects the campaign fault model (see fault.Model); the zero
	// value is the paper's SEU reference model. Studies require an
	// FF-targeted model — SEU, MBU, stuck-at, optionally windowed — because
	// the estimation flow regresses per-flip-flop features onto per-target
	// FDR; SET targets combinational cells and is rejected (run SET
	// campaigns directly via fault.RunJobs).
	Model fault.Model
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int
	// CheckStats includes the statistics readout in the failure
	// criterion (see fault.MACClassifier).
	CheckStats bool

	// Campaign runtime knobs (see fault.RunnerConfig).

	// ChunkJobs is the shard chunk size for the ground-truth campaign;
	// 0 uses the runner default.
	ChunkJobs int
	// Shards, when positive, overrides ChunkJobs by splitting the
	// ground-truth plan into about this many equal shard chunks. The
	// derived chunk size is rounded up to whole 64-lane batches, so the
	// actual chunk count can be lower than requested; resuming a
	// checkpoint requires the same shard geometry.
	Shards int
	// Checkpoint enables periodic campaign checkpointing to this file.
	Checkpoint string
	// Resume restarts an interrupted ground-truth campaign from
	// Checkpoint instead of from scratch.
	Resume bool
	// CheckpointEvery is the number of completed chunks between
	// checkpoint flushes (0 = runner default).
	CheckpointEvery int
	// Progress, when non-nil, receives campaign progress updates.
	Progress func(fault.Progress)
	// SnapshotEvery is the golden-snapshot cadence in cycles for the
	// incremental campaign engine (0 = sim.DefaultSnapshotEvery). The
	// cadence never changes results, only how much prefix a faulty batch
	// can skip and how often early exit is checked.
	SnapshotEvery int
	// NaiveCampaign forces the non-incremental full-replay campaign path —
	// the before/after baseline for benchmarks (FFR_NAIVE=1). Results are
	// bit-identical either way.
	NaiveCampaign bool
	// Schedule selects the campaign batch-packing schedule (see
	// fault.Schedule). The "" default packs clustered and adopts a
	// resumed checkpoint's recorded schedule, keeping pre-schedule
	// plan-order checkpoints resumable.
	Schedule fault.Schedule
	// Backend selects the campaign simulation backend (see fault.Backend):
	// compiled wide-batch kernels by default, the 64-lane interpreter with
	// FFR_BACKEND=interp. Results are bit-identical either way.
	Backend fault.Backend
	// Metrics optionally receives the ffr_campaign_* metric families of
	// every campaign this study runs (ground truth and partial); nil
	// disables campaign metrics.
	Metrics *obs.Registry
	// Logger optionally receives structured campaign records; nil
	// disables logging.
	Logger *obs.Logger
}

// DefaultStudyConfig reproduces the paper's setup: the 1054-FF circuit and
// 170 injections per flip-flop.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		MAC:             circuit.DefaultMACConfig(),
		Bench:           circuit.DefaultMACBenchConfig(),
		InjectionsPerFF: 170,
		CampaignSeed:    2019, // DSN 2019
		CheckStats:      true,
	}
}

// Study is a materialized experiment context: the synthesized netlist, its
// compiled simulation program, the testbench, extracted features, and —
// after RunGroundTruth — the per-flip-flop FDR reference.
//
// Two constructors produce studies: NewStudy builds the paper's MAC
// loopback flow (Bench is then the compiled MAC testbench), and
// NewCorpusStudy materializes any registered corpus scenario (Bench is nil;
// the workload is reachable through Stim/Monitors/ActiveCycles). Every
// method works identically on both.
type Study struct {
	Config   StudyConfig
	Netlist  *netlist.Netlist
	Program  *sim.Program
	Bench    *circuit.MACBench // MAC studies only; nil for corpus studies
	Activity *sim.Activity
	Features *features.Matrix

	// CircuitName and WorkloadName tag the scenario this study measures
	// ("mac10ge"/"loopback" for NewStudy); they flow into saved model
	// artifacts so the prediction service can tell models apart.
	CircuitName  string
	WorkloadName string

	// Ground truth, populated by RunGroundTruth.
	Campaign *fault.Result

	classifier   fault.Classifier
	golden       *sim.Trace
	snapshots    *sim.Snapshots
	runner       *fault.Runner
	stim         *sim.Stimulus
	monitors     []int
	activeCycles int
}

// NewStudy builds the device, synthesizes it, compiles the simulator,
// builds the testbench, runs the golden simulation (capturing activity) and
// extracts all per-flip-flop features. It does not run the fault campaign;
// call RunGroundTruth for the reference FDR data.
func NewStudy(cfg StudyConfig) (*Study, error) {
	if err := validateStudyModel(cfg.Model); err != nil {
		return nil, err
	}
	nl, err := circuit.NewMAC10GE(cfg.MAC)
	if err != nil {
		return nil, fmt.Errorf("core: building circuit: %w", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		return nil, fmt.Errorf("core: synthesis: %w", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		return nil, fmt.Errorf("core: compiling simulator: %w", err)
	}
	cfg.Bench.FIFODepth = cfg.MAC.FIFODepth
	bench, err := circuit.BuildMACBench(p, cfg.Bench)
	if err != nil {
		return nil, fmt.Errorf("core: building testbench: %w", err)
	}

	// The one golden run yields the reference trace, the activity
	// statistics and the periodic engine-state snapshots the incremental
	// campaign engine fast-forwards from (skipped on the naive baseline,
	// which never restores them).
	engine := sim.NewEngine(p)
	var snaps *sim.Snapshots
	if !cfg.NaiveCampaign {
		snaps = sim.NewSnapshots(p, bench.Stim, cfg.SnapshotEvery)
	}
	golden, act := sim.Run(engine, bench.Stim, sim.RunConfig{
		Monitors:        bench.Monitors,
		CollectActivity: true,
		Snapshots:       snaps,
	})

	ex, err := features.NewExtractor(nl)
	if err != nil {
		return nil, fmt.Errorf("core: feature extraction: %w", err)
	}
	fm, err := ex.Extract(act)
	if err != nil {
		return nil, fmt.Errorf("core: feature extraction: %w", err)
	}

	classifier := fault.NewMACClassifier(bench, cfg.CheckStats)
	chunkJobs := chunkJobsFor(p.NumFFs()*cfg.InjectionsPerFF, cfg.Shards, cfg.ChunkJobs)
	// The ground-truth runner reuses the study's golden trace and
	// snapshots across all shards and calls instead of re-simulating them
	// per campaign.
	runner, err := fault.NewRunner(p, bench.Stim, bench.Monitors, classifier, fault.RunnerConfig{
		Model:           cfg.Model,
		ChunkJobs:       chunkJobs,
		Workers:         cfg.Workers,
		Golden:          golden,
		Snapshots:       snaps,
		Naive:           cfg.NaiveCampaign,
		Schedule:        cfg.Schedule,
		Backend:         cfg.Backend,
		CheckpointPath:  cfg.Checkpoint,
		CheckpointEvery: cfg.CheckpointEvery,
		Resume:          cfg.Resume,
		OnProgress:      cfg.Progress,
		Metrics:         cfg.Metrics,
		Logger:          cfg.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("core: campaign runner: %w", err)
	}

	return &Study{
		Config:       cfg,
		Netlist:      nl,
		Program:      p,
		Bench:        bench,
		Activity:     act,
		Features:     fm,
		CircuitName:  "mac10ge",
		WorkloadName: "loopback",
		classifier:   classifier,
		golden:       golden,
		snapshots:    snaps,
		runner:       runner,
		stim:         bench.Stim,
		monitors:     bench.Monitors,
		activeCycles: bench.ActiveCycles,
	}, nil
}

// validateStudyModel enforces the studies' FF-targeted model requirement.
func validateStudyModel(m fault.Model) error {
	if err := m.Validate(); err != nil {
		return fmt.Errorf("core: study fault model: %w", err)
	}
	if !m.TargetsFFs() {
		return fmt.Errorf("core: study fault model %q targets combinational cells; "+
			"studies need an FF-targeted model (per-FF features cannot describe comb targets) — "+
			"run SET campaigns directly via fault.RunJobs", m)
	}
	return nil
}

// chunkJobsFor derives the runner chunk size: a requested shard count
// splits the full plan into about that many equal chunks (rounded up to
// whole 64-lane batches by the runner); otherwise the explicit chunk size
// passes through. Both study constructors share this policy so the same
// -shards flag shards MAC and corpus campaigns identically.
func chunkJobsFor(totalJobs, shards, chunkJobs int) int {
	if shards > 0 {
		return (totalJobs + shards - 1) / shards
	}
	return chunkJobs
}

// NumFFs returns the number of flip-flops under study.
func (s *Study) NumFFs() int { return s.Program.NumFFs() }

// ScenarioID returns the "circuit/workload" tag of the study.
func (s *Study) ScenarioID() string { return s.CircuitName + "/" + s.WorkloadName }

// Stim returns the workload stimulus.
func (s *Study) Stim() *sim.Stimulus { return s.stim }

// ActiveCycles returns the injection window [0, ActiveCycles).
func (s *Study) ActiveCycles() int { return s.activeCycles }

// GoldenTrace returns the fault-free reference trace every campaign of this
// study classifies against.
func (s *Study) GoldenTrace() *sim.Trace { return s.golden }

// RunGroundTruth executes the paper's full flat statistical fault-injection
// campaign (Section IV-A) on the sharded runner and stores the resulting
// per-FF FDR reference. When the study is configured with a checkpoint it
// periodically persists campaign state and can resume an interrupted run.
// It is idempotent: repeated calls reuse the first result.
func (s *Study) RunGroundTruth() (*fault.Result, error) {
	return s.RunGroundTruthContext(context.Background())
}

// RunGroundTruthContext is RunGroundTruth with cancellation: on ctx
// cancellation the campaign flushes its checkpoint (when configured) and
// returns an error wrapping fault.ErrInterrupted.
func (s *Study) RunGroundTruthContext(ctx context.Context) (*fault.Result, error) {
	if s.Campaign != nil {
		return s.Campaign, nil
	}
	cfg := fault.CampaignConfig{
		Model:           s.Config.Model,
		InjectionsPerFF: s.Config.InjectionsPerFF,
		ActiveCycles:    s.activeCycles,
		Seed:            s.Config.CampaignSeed,
		Workers:         s.Config.Workers,
	}
	if err := cfg.Validate(s.stim.Cycles()); err != nil {
		return nil, fmt.Errorf("core: ground-truth campaign: %w", err)
	}
	jobs := fault.NewModelPlan(cfg.Model, s.NumFFs(), cfg.InjectionsPerFF, cfg.ActiveCycles, cfg.Seed)
	res, err := s.runner.RunContext(ctx, jobs)
	if err != nil {
		return nil, fmt.Errorf("core: ground-truth campaign: %w", err)
	}
	s.Campaign = res
	return res, nil
}

// RunPartialCampaign fault-injects only the given flip-flops — the flow's
// cost-saving mode: the training subset is measured, the rest predicted.
// Partial plans run on an ephemeral uncheckpointed runner (their plan
// fingerprint differs from the ground truth's) but still reuse the study's
// golden trace and snapshots, so they ride the same incremental path.
func (s *Study) RunPartialCampaign(ffs []int) (*fault.Result, error) {
	res, err := fault.RunJobs(s.Program, s.stim, s.monitors, s.classifier, s.planFor(ffs),
		fault.RunnerConfig{
			Model:     s.Config.Model,
			Workers:   s.Config.Workers,
			Golden:    s.golden,
			Snapshots: s.snapshots,
			Naive:     s.Config.NaiveCampaign,
			Schedule:  s.Config.Schedule,
			Backend:   s.Config.Backend,
			Metrics:   s.Config.Metrics,
			Logger:    s.Config.Logger,
		})
	if err != nil {
		return nil, fmt.Errorf("core: partial campaign: %w", err)
	}
	return res, nil
}

// FeatureRows returns the feature matrix as plain rows (aliased, callers
// must not modify).
func (s *Study) FeatureRows() [][]float64 { return s.Features.Rows }

// FDR returns the ground-truth targets; it fails if RunGroundTruth has not
// completed.
func (s *Study) FDR() ([]float64, error) {
	if s.Campaign == nil {
		return nil, fmt.Errorf("core: ground truth not computed; call RunGroundTruth")
	}
	return s.Campaign.FDR, nil
}

// MaskFeatureGroups returns a copy of the feature rows keeping only the
// columns of the requested groups (ablation studies).
func (s *Study) MaskFeatureGroups(keep ...features.Group) [][]float64 {
	groups := features.Groups()
	var cols []int
	for j, g := range groups {
		for _, k := range keep {
			if g == k {
				cols = append(cols, j)
				break
			}
		}
	}
	out := make([][]float64, len(s.Features.Rows))
	for i, row := range s.Features.Rows {
		r := make([]float64, len(cols))
		for k, j := range cols {
			r[k] = row[j]
		}
		out[i] = r
	}
	return out
}

// EstimateResult is one execution of the Fig. 1 flow on a single split:
// fault injection on the training flip-flops, model training, prediction of
// the remaining flip-flops.
type EstimateResult struct {
	TrainIdx, TestIdx    []int
	TrainTrue, TrainPred []float64
	TestTrue, TestPred   []float64
}

// EstimateFDR runs the paper's flow once: draw a stratified training subset
// of the given fraction, run the (partial) campaign for those flip-flops,
// train the model on their measured FDR, and predict every remaining
// flip-flop. The ground truth must be available for evaluation.
func (s *Study) EstimateFDR(factory ml.Factory, trainFrac float64, seed int64) (*EstimateResult, error) {
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, 1, trainFrac, 10, seed)
	if err != nil {
		return nil, fmt.Errorf("core: estimate split: %w", err)
	}
	sp := splits[0]
	X := s.FeatureRows()
	trX, trY := ml.Gather(X, y, sp.Train)
	teX, teY := ml.Gather(X, y, sp.Test)
	model := factory()
	if err := model.Fit(trX, trY); err != nil {
		return nil, fmt.Errorf("core: estimate fit: %w", err)
	}
	return &EstimateResult{
		TrainIdx:  sp.Train,
		TestIdx:   sp.Test,
		TrainTrue: trY,
		TrainPred: ml.PredictAll(model, trX),
		TestTrue:  teY,
		TestPred:  ml.PredictAll(model, teX),
	}, nil
}
