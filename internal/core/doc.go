// Package core implements the paper's contribution: the Functional
// De-Rating estimation flow of Fig. 1. It wires the substrates together —
// circuit generation and synthesis (or any corpus scenario), testbench
// simulation and activity tracing, feature extraction, the flat statistical
// fault-injection campaign — and exposes the machine-learning estimation
// protocol used by every experiment in Section IV (Table I, Figures 2–4),
// the cross-circuit transfer study, and the active-learning extension:
// NewAdaptiveStudy couples a Study with the plan package's campaign planner
// so the model chooses where to inject next, and CompareAdaptiveStrategies
// measures the resulting budget-vs-quality win against full-campaign
// training.
package core
