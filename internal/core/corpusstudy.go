package core

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/obs"
)

// CorpusStudyConfig assembles a study from a registered corpus scenario.
// The zero value is usable: default scale, seed 1, and the scenario's own
// campaign geometry.
type CorpusStudyConfig struct {
	// Scale selects the circuit/workload size (ScaleSmall for smoke runs).
	Scale corpus.Scale
	// Seed drives circuit generation (randomized families) and workload
	// stimulus; 0 means 1.
	Seed int64
	// InjectionsPerFF overrides the scenario's default budget when > 0.
	InjectionsPerFF int
	// CampaignSeed overrides the scenario's default campaign seed when
	// non-zero.
	CampaignSeed int64
	// Model selects the campaign fault model; the zero value is SEU. As in
	// StudyConfig, the model must be FF-targeted (SET is rejected).
	Model fault.Model
	// Workers bounds campaign parallelism (0 = GOMAXPROCS).
	Workers int

	// Campaign runtime knobs, as in StudyConfig.
	ChunkJobs       int
	Shards          int
	Checkpoint      string
	Resume          bool
	CheckpointEvery int
	Progress        func(fault.Progress)
	// NaiveCampaign forces the non-incremental full-replay campaign path
	// (see StudyConfig.NaiveCampaign).
	NaiveCampaign bool
	// Schedule selects the campaign batch-packing schedule (see
	// StudyConfig.Schedule).
	Schedule fault.Schedule
	// Backend selects the campaign simulation backend (see
	// StudyConfig.Backend).
	Backend fault.Backend
	// Metrics optionally receives campaign metric families (see
	// StudyConfig.Metrics).
	Metrics *obs.Registry
	// Logger optionally receives structured campaign records (see
	// StudyConfig.Logger).
	Logger *obs.Logger
}

// NewCorpusStudy materializes a corpus scenario into a Study: the full
// generate → synthesize → compile → workload → golden → features front end,
// plus a sharded campaign runner wired to the scenario's failure criterion
// and reusing the materialization's golden trace. Every Study method —
// ground truth, Table I protocols, learning curves, cross-circuit transfer —
// then works on the scenario exactly as on the paper's MAC.
func NewCorpusStudy(sc corpus.Scenario, cfg CorpusStudyConfig) (*Study, error) {
	if err := validateStudyModel(cfg.Model); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	m, err := sc.Materialize(cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: corpus study: %w", err)
	}
	injections := cfg.InjectionsPerFF
	if injections <= 0 {
		injections = sc.Entry.Defaults.InjectionsPerFF
	}
	campaignSeed := cfg.CampaignSeed
	if campaignSeed == 0 {
		campaignSeed = sc.Entry.Defaults.CampaignSeed
	}
	chunkJobs := chunkJobsFor(m.NumFFs()*injections, cfg.Shards, cfg.ChunkJobs)
	runner, err := fault.NewRunner(m.Program, m.Bench.Stim, m.Bench.Monitors,
		m.Bench.Classifier, fault.RunnerConfig{
			Model:           cfg.Model,
			ChunkJobs:       chunkJobs,
			Workers:         cfg.Workers,
			Golden:          m.Golden,
			Snapshots:       m.Snapshots,
			Naive:           cfg.NaiveCampaign,
			Schedule:        cfg.Schedule,
			Backend:         cfg.Backend,
			CheckpointPath:  cfg.Checkpoint,
			CheckpointEvery: cfg.CheckpointEvery,
			Resume:          cfg.Resume,
			OnProgress:      cfg.Progress,
			Metrics:         cfg.Metrics,
			Logger:          cfg.Logger,
		})
	if err != nil {
		return nil, fmt.Errorf("core: corpus study runner: %w", err)
	}
	return &Study{
		Config: StudyConfig{
			InjectionsPerFF: injections,
			CampaignSeed:    campaignSeed,
			Model:           cfg.Model,
			Workers:         cfg.Workers,
			ChunkJobs:       cfg.ChunkJobs,
			Shards:          cfg.Shards,
			Checkpoint:      cfg.Checkpoint,
			Resume:          cfg.Resume,
			CheckpointEvery: cfg.CheckpointEvery,
			Progress:        cfg.Progress,
			NaiveCampaign:   cfg.NaiveCampaign,
			Schedule:        cfg.Schedule,
			Backend:         cfg.Backend,
			Metrics:         cfg.Metrics,
			Logger:          cfg.Logger,
		},
		Netlist:      m.Netlist,
		Program:      m.Program,
		Activity:     m.Activity,
		Features:     m.Features,
		CircuitName:  sc.Entry.Name,
		WorkloadName: sc.Workload.Name,
		classifier:   m.Bench.Classifier,
		golden:       m.Golden,
		snapshots:    m.Snapshots,
		runner:       runner,
		stim:         m.Bench.Stim,
		monitors:     m.Bench.Monitors,
		activeCycles: m.Bench.ActiveCycles,
	}, nil
}
