package core

import (
	"context"
	"fmt"

	"repro/internal/fault"
	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/plan"
)

// AdaptiveConfig assembles an active-learning campaign over a Study. The
// zero value is usable: committee strategy, paper k-NN estimate model, and
// the plan package's default budgets (half the pool at ~1/16-pool rounds).
type AdaptiveConfig struct {
	// Strategy is the acquisition strategy name (plan.StrategyNames);
	// "" means committee.
	Strategy string
	// Model is the estimate model retrained every round and returned in
	// the result; the zero value selects the paper's k-NN.
	Model ModelSpec
	// Seed drives the initial draw, bootstrap resamples and cluster
	// seeding.
	Seed int64
	// Pool restricts measurement to these flip-flops; nil means all.
	Pool []int
	// Per-round budgets and convergence criteria, as in plan.Config.
	InitFFs    int
	RoundFFs   int
	MaxRounds  int
	BudgetFFs  int
	DeltaTol   float64
	CIWidthTol float64
	Patience   int
	// Checkpoint enables loop checkpointing to this file (rounds in flight
	// checkpoint to "<Checkpoint>.round<N>" on the campaign runner); Resume
	// picks an interrupted loop back up bit-identically.
	Checkpoint string
	Resume     bool
	// OnRound, when non-nil, receives every completed round.
	OnRound func(plan.Round)
}

// AdaptiveStudy couples a Study with an active-learning campaign planner:
// instead of RunGroundTruth's exhaustive flat campaign, Run measures only
// the flip-flops the acquisition strategy asks for, round by round, until
// the circuit-level FFR estimate converges or the budget is spent.
type AdaptiveStudy struct {
	*Study
	// Planner is the configured loop; most callers just Run it.
	Planner *plan.Loop
	// StrategyName records the resolved acquisition strategy.
	StrategyName string
}

// CommitteeFactories returns the model zoo the committee strategy measures
// disagreement across: the paper's linear least squares and k-NN plus the
// Section V decision tree — three cheap, deterministic, structurally
// different learners.
func CommitteeFactories() []ml.Factory {
	tree := ExtendedModels()[0].Factory // "Decision Tree"
	return []ml.Factory{LinearModel, KNNModel, tree}
}

// NewAdaptiveStudy wires an active-learning planner onto a study. The study
// does not need ground truth: rounds run real partial campaigns on the
// study's incremental runner path (golden trace and snapshots reused).
func NewAdaptiveStudy(s *Study, cfg AdaptiveConfig) (*AdaptiveStudy, error) {
	spec := cfg.Model
	if spec.Name == "" {
		spec = PaperModels()[1] // the paper's best model, k-NN
	}
	name := cfg.Strategy
	if name == "" {
		name = plan.StrategyCommittee
	}
	strategy, err := plan.New(name, spec.Factory, CommitteeFactories())
	if err != nil {
		return nil, fmt.Errorf("core: adaptive study: %w", err)
	}
	loop, err := plan.NewLoop(plan.Config{
		Target:         &studyTarget{study: s},
		Strategy:       strategy,
		Model:          spec.Factory,
		ModelName:      spec.Name,
		Seed:           cfg.Seed,
		Pool:           cfg.Pool,
		InitFFs:        cfg.InitFFs,
		RoundFFs:       cfg.RoundFFs,
		MaxRounds:      cfg.MaxRounds,
		BudgetFFs:      cfg.BudgetFFs,
		DeltaTol:       cfg.DeltaTol,
		CIWidthTol:     cfg.CIWidthTol,
		Patience:       cfg.Patience,
		CheckpointPath: cfg.Checkpoint,
		Resume:         cfg.Resume,
		OnRound:        cfg.OnRound,
		Metrics:        s.Config.Metrics,
		Logger:         s.Config.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("core: adaptive study: %w", err)
	}
	return &AdaptiveStudy{Study: s, Planner: loop, StrategyName: name}, nil
}

// Run executes the adaptive campaign to completion.
func (a *AdaptiveStudy) Run() (*plan.Result, error) {
	return a.Planner.Run()
}

// RunContext is Run with cancellation: an interrupted loop flushes its
// checkpoints (when configured) and can be resumed bit-identically.
func (a *AdaptiveStudy) RunContext(ctx context.Context) (*plan.Result, error) {
	return a.Planner.RunContext(ctx)
}

// studyTarget adapts a Study to the planner's injection backend: every round
// is a partial campaign on the study's incremental runner path, and — when
// the loop checkpoints — on a checkpointed fault.Runner, so a mid-round
// interruption resumes from the runner's own chunk state and a re-derived
// round plan must fingerprint-match it.
type studyTarget struct {
	study *Study
}

func (t *studyTarget) NumFFs() int                 { return t.study.NumFFs() }
func (t *studyTarget) FeatureRows() [][]float64    { return t.study.FeatureRows() }
func (t *studyTarget) InjectionsPerFF() int        { return t.study.Config.InjectionsPerFF }
func (t *studyTarget) CampaignFingerprint() uint64 { return t.study.golden.Fingerprint() }

func (t *studyTarget) RunRound(ctx context.Context, ffs []int, checkpointPath string, resume bool) (*fault.Result, error) {
	s := t.study
	jobs := s.planFor(ffs)
	runner, err := fault.NewRunner(s.Program, s.stim, s.monitors, s.classifier, fault.RunnerConfig{
		Model:           s.Config.Model,
		ChunkJobs:       s.Config.ChunkJobs,
		Workers:         s.Config.Workers,
		Golden:          s.golden,
		Snapshots:       s.snapshots,
		Naive:           s.Config.NaiveCampaign,
		Schedule:        s.Config.Schedule,
		Backend:         s.Config.Backend,
		CheckpointPath:  checkpointPath,
		CheckpointEvery: s.Config.CheckpointEvery,
		Resume:          resume && checkpointPath != "",
		OnProgress:      s.Config.Progress,
		Metrics:         s.Config.Metrics,
		Logger:          s.Config.Logger,
	})
	if err != nil {
		return nil, err
	}
	return runner.RunContext(ctx, jobs)
}

// planFor extracts the given flip-flops' jobs from the study's full
// injection plan — the same subset rule RunPartialCampaign applies, so a
// flip-flop's measured counts are bit-identical no matter which round (or
// which campaign) measures it.
func (s *Study) planFor(ffs []int) []fault.Job {
	full := fault.NewModelPlan(s.Config.Model, s.NumFFs(), s.Config.InjectionsPerFF, s.activeCycles, s.Config.CampaignSeed)
	want := make(map[int]bool, len(ffs))
	for _, ff := range ffs {
		want[ff] = true
	}
	jobs := make([]fault.Job, 0, len(ffs)*s.Config.InjectionsPerFF)
	for _, j := range full {
		if want[j.FF] {
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// replayTarget serves round measurements straight from a completed
// ground-truth campaign instead of re-simulating them. This is exact, not an
// approximation: a round's plan is the per-FF subset of the full plan
// (planFor), every job's outcome is a deterministic function of (job, golden
// trace), and the equivalence suite pins that partial campaigns reproduce
// ground-truth counts bit-identically. Evaluation protocols use it to sweep
// many strategies against one already-measured campaign at zero simulation
// cost.
type replayTarget struct {
	study    *Study
	campaign *fault.Result
}

func (t *replayTarget) NumFFs() int                 { return t.study.NumFFs() }
func (t *replayTarget) FeatureRows() [][]float64    { return t.study.FeatureRows() }
func (t *replayTarget) InjectionsPerFF() int        { return t.study.Config.InjectionsPerFF }
func (t *replayTarget) CampaignFingerprint() uint64 { return t.study.golden.Fingerprint() }

func (t *replayTarget) RunRound(ctx context.Context, ffs []int, checkpointPath string, resume bool) (*fault.Result, error) {
	res := &fault.Result{
		FDR:        make([]float64, t.study.NumFFs()),
		Failures:   make([]int, t.study.NumFFs()),
		Injections: make([]int, t.study.NumFFs()),
	}
	for _, ff := range ffs {
		res.Failures[ff] = t.campaign.Failures[ff]
		res.Injections[ff] = t.campaign.Injections[ff]
		res.FDR[ff] = t.campaign.FDR[ff]
		res.TotalRuns += t.campaign.Injections[ff]
	}
	return res, nil
}

// AdaptiveOutcome is one strategy's result in an adaptive-vs-full
// comparison.
type AdaptiveOutcome struct {
	// Strategy is the acquisition strategy name.
	Strategy string
	// Rounds, Converged, MeasuredFFs and Injections describe the loop run.
	Rounds      int
	Converged   bool
	MeasuredFFs int
	Injections  int
	// InjectionFrac is Injections over the full-campaign pool cost — the
	// paper-level headline is reaching full-campaign quality at ≤ 0.5.
	InjectionFrac float64
	// R2 and Tau score the loop's final model on the held-out evaluation
	// flip-flops against their ground-truth FDR.
	R2  float64
	Tau float64
	// FFR is the loop's final circuit-level estimate.
	FFR float64
}

// AdaptiveComparison is the outcome of CompareAdaptiveStrategies: a shared
// full-campaign baseline plus one outcome per strategy.
type AdaptiveComparison struct {
	// PoolFFs and EvalFFs are the sizes of the measurable pool and the
	// held-out evaluation set.
	PoolFFs, EvalFFs int
	// FullR2 and FullTau score the full-campaign baseline: the same model
	// trained on every pool flip-flop, evaluated on the held-out set.
	FullR2, FullTau float64
	// TrueFFR is the ground-truth circuit FFR (mean per-FF FDR).
	TrueFFR float64
	// Outcomes holds one entry per requested strategy, in request order.
	Outcomes []AdaptiveOutcome
}

// CompareAdaptiveStrategies measures whether active selection reaches
// full-campaign estimation quality at a fraction of the injections. The
// protocol: draw one stratified 50 % split; the train side is the pool the
// planner may measure, the test side is held out for evaluation. The
// baseline trains spec on the whole pool (the "full campaign"); each
// strategy gets budgetFrac of the pool, spread over `rounds` adaptive rounds
// after an initial half-budget draw. Rounds replay measurements from the
// ground-truth campaign (see replayTarget), so the comparison is exact and
// cheap. Ground truth must be available.
func (s *Study) CompareAdaptiveStrategies(strategies []string, spec ModelSpec, budgetFrac float64, rounds int, seed int64) (*AdaptiveComparison, error) {
	if budgetFrac <= 0 || budgetFrac > 1 {
		return nil, fmt.Errorf("core: adaptive budget fraction %v out of (0,1]", budgetFrac)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("core: adaptive comparison needs >= 1 round, got %d", rounds)
	}
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, 1, PaperTrainFrac, PaperStratifyBins, seed)
	if err != nil {
		return nil, fmt.Errorf("core: adaptive comparison split: %w", err)
	}
	pool, eval := splits[0].Train, splits[0].Test
	X := s.FeatureRows()
	evalX, evalY := ml.Gather(X, y, eval)

	full := spec.Factory()
	poolX, poolY := ml.Gather(X, y, pool)
	if err := full.Fit(poolX, poolY); err != nil {
		return nil, fmt.Errorf("core: full-campaign baseline fit: %w", err)
	}
	fullPred := ml.PredictAll(full, evalX)

	var trueFFR float64
	for _, v := range y {
		trueFFR += v
	}
	cmp := &AdaptiveComparison{
		PoolFFs: len(pool),
		EvalFFs: len(eval),
		FullR2:  metrics.R2(evalY, fullPred),
		FullTau: metrics.KendallTau(evalY, fullPred),
		TrueFFR: trueFFR / float64(len(y)),
	}

	// Floor, so the spent fraction never exceeds the requested one.
	budget := int(budgetFrac * float64(len(pool)))
	if budget < 2 {
		budget = 2
	}
	// A third of the budget seeds the model, the rest is spent adaptively —
	// the more rounds, the more often the acquisition re-aims.
	init := (budget + 2) / 3
	perRound := (budget - init + rounds - 1) / rounds
	if perRound < 1 {
		perRound = 1
	}
	for _, name := range strategies {
		strategy, err := plan.New(name, spec.Factory, CommitteeFactories())
		if err != nil {
			return nil, err
		}
		loop, err := plan.NewLoop(plan.Config{
			Target:    &replayTarget{study: s, campaign: s.Campaign},
			Strategy:  strategy,
			Model:     spec.Factory,
			ModelName: spec.Name,
			Seed:      seed,
			Pool:      pool,
			InitFFs:   init,
			RoundFFs:  perRound,
			MaxRounds: rounds + 1,
			BudgetFFs: budget,
		})
		if err != nil {
			return nil, fmt.Errorf("core: %s loop: %w", name, err)
		}
		res, err := loop.Run()
		if err != nil {
			return nil, fmt.Errorf("core: %s loop: %w", name, err)
		}
		pred := ml.PredictAll(res.Model, evalX)
		cmp.Outcomes = append(cmp.Outcomes, AdaptiveOutcome{
			Strategy:      name,
			Rounds:        len(res.Rounds),
			Converged:     res.Converged,
			MeasuredFFs:   len(res.Measured),
			Injections:    res.TotalInjections,
			InjectionFrac: float64(res.TotalInjections) / float64(len(pool)*s.Config.InjectionsPerFF),
			R2:            metrics.R2(evalY, pred),
			Tau:           metrics.KendallTau(evalY, pred),
			FFR:           res.FFR,
		})
	}
	return cmp, nil
}
