package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/fault"
	"repro/internal/ml/modelsel"
)

// RenderTable1 writes Table I in the paper's layout.
func RenderTable1(w io.Writer, rows []TableRow) error {
	var sb strings.Builder
	sb.WriteString("PERFORMANCE RESULTS FOR DIFFERENT REGRESSION MODELS\n")
	fmt.Fprintf(&sb, "(cross validation = %d, training size = %.0f %%)\n\n",
		PaperCVSplits, PaperTrainFrac*100)
	fmt.Fprintf(&sb, "%-24s %8s %8s %8s %8s %8s\n", "Model", "MAE", "MAX", "RMSE", "EV", "R2")
	sb.WriteString(strings.Repeat("-", 70))
	sb.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-24s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			r.Model, r.MAE, r.MAX, r.RMSE, r.EV, r.R2)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderLearningCurve writes a Fig. 2b/3b/4b series as rows of
// train-size %, train R², test R².
func RenderLearningCurve(w io.Writer, model string, points []modelsel.LearningPoint) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "LEARNING CURVE — %s (cross validation fold = %d)\n\n", model, PaperCVSplits)
	fmt.Fprintf(&sb, "%-18s %12s %12s\n", "Training Size %", "Train R2", "Test R2")
	sb.WriteString(strings.Repeat("-", 45))
	sb.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&sb, "%-18.0f %12.3f %12.3f\n", p.TrainFrac*100, p.TrainScore, p.TestScore)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderFoldPrediction summarizes a Fig. 2a/3a/4a fold: per-partition
// scores and an FDR-vs-error digest (full series are written by the CSV
// exporters in cmd/ffrexp).
func RenderFoldPrediction(w io.Writer, model string, est *EstimateResult) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, "FOLD PREDICTION — %s (training size = %.0f %%)\n\n", model, PaperTrainFrac*100)
	fmt.Fprintf(&sb, "train instances: %d, test instances: %d\n", len(est.TrainIdx), len(est.TestIdx))
	var worst float64
	var worstIdx int
	for i := range est.TestTrue {
		if d := abs(est.TestTrue[i] - est.TestPred[i]); d > worst {
			worst = d
			worstIdx = est.TestIdx[i]
		}
	}
	fmt.Fprintf(&sb, "largest test error: %.3f at flip-flop index %d\n", worst, worstIdx)
	_, err := io.WriteString(w, sb.String())
	return err
}

// RenderCampaign summarizes the flat statistical campaign (Section IV-A).
func RenderCampaign(w io.Writer, res *fault.Result) error {
	var sb strings.Builder
	sb.WriteString("FLAT STATISTICAL FAULT INJECTION CAMPAIGN\n\n")
	s := fault.Summarize(res)
	fmt.Fprintf(&sb, "flip-flops:           %d\n", s.FFs)
	fmt.Fprintf(&sb, "injection runs:       %d (%d per flip-flop)\n", s.Injections, res.Injections[0])
	fmt.Fprintf(&sb, "simulation batches:   %d (64-lane bit-parallel)\n", res.Batches)
	fmt.Fprintf(&sb, "mean FDR:             %.4f\n", s.MeanFDR)
	fmt.Fprintf(&sb, "median FDR:           %.4f\n", s.MedianFDR)
	fmt.Fprintf(&sb, "max FDR:              %.3f\n", s.MaxFDR)
	fmt.Fprintf(&sb, "FDR == 0 flip-flops:  %d\n", s.ZeroFDR)
	fmt.Fprintf(&sb, "FDR >= 0.5 flip-flops:%d\n", s.HighFDR)
	hist := fault.Histogram(res.FDR, 10)
	sb.WriteString("\nFDR histogram (10 bins over [0,1]):\n")
	maxCount := 0
	for _, c := range hist {
		if c > maxCount {
			maxCount = c
		}
	}
	for b, c := range hist {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*50/maxCount)
		}
		fmt.Fprintf(&sb, "  [%.1f,%.1f) %5d %s\n", float64(b)/10, float64(b+1)/10, c, bar)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
