package core

import (
	"fmt"
	"io"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
)

// Cross-circuit generalization: the question the follow-up literature asks
// of the paper's compact models — does an FDR regressor trained on one
// circuit/workload transfer to another? CrossCircuit measures every ordered
// (train, test) pair of a study set and reports a transfer matrix of R²,
// Kendall τ and MAE. The feature schema is circuit-independent (the same 25
// per-flip-flop features extract from any netlist), which is what makes the
// experiment well-posed.

// TransferCell is one (train → test) measurement.
type TransferCell struct {
	// TrainID and TestID are the scenario tags of the pair.
	TrainID, TestID string
	// R2 is the coefficient of determination of the predictions on the
	// test study's ground truth.
	R2 float64
	// Tau is the Kendall rank correlation — the ranking quality, which is
	// what selective-hardening decisions consume and which often survives
	// a circuit change even when calibration (R²) does not.
	Tau float64
	// MAE is the mean absolute error.
	MAE float64
	// Diagonal marks a self-transfer cell (measured on a held-out split
	// rather than on the training rows).
	Diagonal bool
}

// TransferMatrix is the full cross-circuit experiment result: Cells[i][j]
// transfers from IDs[i] to IDs[j].
type TransferMatrix struct {
	Model string
	// FaultModel is the canonical fault-model string the studies' ground
	// truths were measured under (fault.Model.String); set by CrossCircuit
	// from the studies' shared configuration.
	FaultModel string
	IDs        []string
	Cells      [][]TransferCell
}

// CrossCircuit trains spec on each study's full measured dataset and
// evaluates it on every other study's ground truth. Diagonal cells are the
// within-circuit baseline, measured with the paper's 50 % stratified
// protocol (training on all rows and scoring the same rows would report fit,
// not generalization). Every study must have its ground truth computed.
func CrossCircuit(studies []*Study, spec ModelSpec, seed int64) (*TransferMatrix, error) {
	if len(studies) < 2 {
		return nil, fmt.Errorf("core: cross-circuit transfer needs at least 2 studies, got %d", len(studies))
	}
	n := len(studies)
	tm := &TransferMatrix{
		Model:      spec.Name,
		FaultModel: studies[0].Config.Model.String(),
		IDs:        make([]string, n),
		Cells:      make([][]TransferCell, n),
	}
	seen := map[string]bool{}
	for i, s := range studies {
		id := s.ScenarioID()
		if seen[id] {
			return nil, fmt.Errorf("core: cross-circuit transfer: duplicate scenario %q", id)
		}
		seen[id] = true
		tm.IDs[i] = id
		if fm := s.Config.Model.String(); fm != tm.FaultModel {
			return nil, fmt.Errorf("core: cross-circuit transfer: %s measured under fault model %q, %s under %q",
				tm.IDs[0], tm.FaultModel, id, fm)
		}
	}

	// Train once per source study, score everywhere.
	for i, train := range studies {
		tm.Cells[i] = make([]TransferCell, n)
		yTrain, err := train.FDR()
		if err != nil {
			return nil, fmt.Errorf("core: cross-circuit transfer, train %s: %w", tm.IDs[i], err)
		}
		model := spec.Factory()
		if err := model.Fit(train.FeatureRows(), yTrain); err != nil {
			return nil, fmt.Errorf("core: cross-circuit transfer, fit on %s: %w", tm.IDs[i], err)
		}
		for j, test := range studies {
			cell := TransferCell{TrainID: tm.IDs[i], TestID: tm.IDs[j]}
			if i == j {
				est, err := train.EstimateFDR(spec.Factory, PaperTrainFrac, seed)
				if err != nil {
					return nil, fmt.Errorf("core: cross-circuit transfer, diagonal %s: %w", tm.IDs[i], err)
				}
				cell.Diagonal = true
				cell.R2 = metrics.R2(est.TestTrue, est.TestPred)
				cell.Tau = metrics.KendallTau(est.TestTrue, est.TestPred)
				cell.MAE = metrics.MAE(est.TestTrue, est.TestPred)
			} else {
				yTest, err := test.FDR()
				if err != nil {
					return nil, fmt.Errorf("core: cross-circuit transfer, test %s: %w", tm.IDs[j], err)
				}
				pred := ml.PredictAll(model, test.FeatureRows())
				cell.R2 = metrics.R2(yTest, pred)
				cell.Tau = metrics.KendallTau(yTest, pred)
				cell.MAE = metrics.MAE(yTest, pred)
			}
			tm.Cells[i][j] = cell
		}
	}
	return tm, nil
}

// Cell looks up the transfer from trainID to testID.
func (tm *TransferMatrix) Cell(trainID, testID string) (TransferCell, error) {
	ti, tj := -1, -1
	for k, id := range tm.IDs {
		if id == trainID {
			ti = k
		}
		if id == testID {
			tj = k
		}
	}
	if ti < 0 || tj < 0 {
		return TransferCell{}, fmt.Errorf("core: transfer matrix has no pair %q → %q", trainID, testID)
	}
	return tm.Cells[ti][tj], nil
}

// RenderTransferMatrix writes the train-on-row/predict-on-column matrices
// (R² and Kendall τ; diagonal cells marked with * as held-out
// within-circuit baselines).
func RenderTransferMatrix(w io.Writer, tm *TransferMatrix) error {
	render := func(title string, value func(TransferCell) float64) error {
		label := tm.Model
		if tm.FaultModel != "" {
			label += ", fault model " + tm.FaultModel
		}
		if _, err := fmt.Fprintf(w, "%s (%s), train row → test column:\n", title, label); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%-20s", ""); err != nil {
			return err
		}
		for _, id := range tm.IDs {
			if _, err := fmt.Fprintf(w, " %18s", id); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
		for i, id := range tm.IDs {
			if _, err := fmt.Fprintf(w, "%-20s", id); err != nil {
				return err
			}
			for j := range tm.IDs {
				mark := " "
				if tm.Cells[i][j].Diagonal {
					mark = "*"
				}
				if _, err := fmt.Fprintf(w, " %17.3f%s", value(tm.Cells[i][j]), mark); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	if err := render("R²", func(c TransferCell) float64 { return c.R2 }); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return render("Kendall τ", func(c TransferCell) float64 { return c.Tau })
}
