package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/ml/modelsel"
)

// Paper evaluation protocol constants (Section IV-B).
const (
	// PaperCVSplits is the paper's "cross validation fold of 10".
	PaperCVSplits = 10
	// PaperTrainFrac is the paper's "training size of 50 %".
	PaperTrainFrac = 0.5
	// PaperStratifyBins quantile-bins the FDR target for stratification.
	PaperStratifyBins = 10
)

// TableRow is one row of Table I.
type TableRow struct {
	Model string
	metrics.Scores
}

// Table1 reproduces Table I: every model evaluated over stratified shuffle
// splits at the given training size, scores averaged over splits.
func (s *Study) Table1(models []ModelSpec, nSplits int, trainFrac float64, seed int64) ([]TableRow, error) {
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, nSplits, trainFrac, PaperStratifyBins, seed)
	if err != nil {
		return nil, fmt.Errorf("core: table1 splits: %w", err)
	}
	X := s.FeatureRows()
	rows := make([]TableRow, 0, len(models))
	for _, spec := range models {
		res, err := modelsel.CrossValidate(spec.Factory, X, y, splits)
		if err != nil {
			return nil, fmt.Errorf("core: table1 %s: %w", spec.Name, err)
		}
		rows = append(rows, TableRow{Model: spec.Name, Scores: res.MeanTest()})
	}
	return rows, nil
}

// Table1Ablation evaluates one model on a reduced feature matrix (the
// feature-group ablation bench).
func (s *Study) Table1Ablation(spec ModelSpec, X [][]float64, nSplits int, trainFrac float64, seed int64) (TableRow, error) {
	y, err := s.FDR()
	if err != nil {
		return TableRow{}, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, nSplits, trainFrac, PaperStratifyBins, seed)
	if err != nil {
		return TableRow{}, fmt.Errorf("core: ablation splits: %w", err)
	}
	res, err := modelsel.CrossValidate(spec.Factory, X, y, splits)
	if err != nil {
		return TableRow{}, fmt.Errorf("core: ablation %s: %w", spec.Name, err)
	}
	return TableRow{Model: spec.Name, Scores: res.MeanTest()}, nil
}

// LearningCurve reproduces Figures 2b/3b/4b for one model: train and test
// R² as a function of the training size.
func (s *Study) LearningCurve(spec ModelSpec, fracs []float64, nSplits int, seed int64) ([]modelsel.LearningPoint, error) {
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	// The learning-curve protocol subsamples each split's training
	// portion, so start from splits with a large training side.
	splits, err := ml.StratifiedKFoldSplits(y, nSplits, PaperStratifyBins, seed)
	if err != nil {
		return nil, fmt.Errorf("core: learning-curve splits: %w", err)
	}
	points, err := modelsel.LearningCurve(spec.Factory, s.FeatureRows(), y, fracs, splits, seed)
	if err != nil {
		return nil, fmt.Errorf("core: learning curve %s: %w", spec.Name, err)
	}
	return points, nil
}

// PaperLearningFracs are the training fractions swept in Figures 2b-4b.
func PaperLearningFracs() []float64 {
	return []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}
}

// FoldPrediction reproduces Figures 2a/3a/4a: one 50 % split, the model's
// prediction on the train and test partitions, and the per-instance errors.
func (s *Study) FoldPrediction(spec ModelSpec, seed int64) (*EstimateResult, metrics.Scores, metrics.Scores, error) {
	est, err := s.EstimateFDR(spec.Factory, PaperTrainFrac, seed)
	if err != nil {
		return nil, metrics.Scores{}, metrics.Scores{}, err
	}
	trainScores := metrics.Evaluate(est.TrainTrue, est.TrainPred)
	testScores := metrics.Evaluate(est.TestTrue, est.TestPred)
	return est, trainScores, testScores, nil
}

// SearchOutcome reports a hyperparameter search (Section III-A protocol).
type SearchOutcome struct {
	Model  string
	Random modelsel.SearchResult
	Grid   modelsel.SearchResult
}

// TuneModel runs the paper's random-search-then-grid-refinement procedure
// for a tunable model, using the ground-truth targets.
func (s *Study) TuneModel(spec ModelSpec, nRandom int, seed int64) (*SearchOutcome, error) {
	if spec.Tunable == nil {
		return nil, fmt.Errorf("core: model %q has no tunable hyperparameters", spec.Name)
	}
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, 5, PaperTrainFrac, PaperStratifyBins, seed)
	if err != nil {
		return nil, err
	}
	X := s.FeatureRows()
	random, err := modelsel.RandomSearch(spec.Tunable.Build, spec.Tunable.Space, nRandom, X, y, splits, seed)
	if err != nil {
		return nil, fmt.Errorf("core: random search %s: %w", spec.Name, err)
	}
	grid := modelsel.RefineGrid(random.Best, spec.Tunable.Log, 5, 1.5)
	// Integer parameters refine on a unit grid.
	for name, r := range spec.Tunable.Space {
		if r.Integer {
			c := random.Best[name]
			vals := make([]float64, 0, 5)
			for d := -2.0; d <= 2; d++ {
				if v := c + d; v >= r.Min && v <= r.Max {
					vals = append(vals, v)
				}
			}
			grid[name] = vals
		}
	}
	refined, err := modelsel.GridSearch(spec.Tunable.Build, grid, X, y, splits)
	if err != nil {
		return nil, fmt.Errorf("core: grid search %s: %w", spec.Name, err)
	}
	return &SearchOutcome{Model: spec.Name, Random: random, Grid: refined}, nil
}

// FeatureValue runs the permutation-importance analysis the paper's future
// work calls for ("the value of each feature needs to be evaluated
// separately", Section V) using the given model on a 50 % split. The result
// is ordered by feature index, aligned with features.Names().
func (s *Study) FeatureValue(spec ModelSpec, repeats int, seed int64) ([]modelsel.FeatureImportance, error) {
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, 1, PaperTrainFrac, PaperStratifyBins, seed)
	if err != nil {
		return nil, err
	}
	imp, err := modelsel.PermutationImportance(spec.Factory, s.FeatureRows(), y, splits[0], repeats, seed)
	if err != nil {
		return nil, fmt.Errorf("core: feature value: %w", err)
	}
	return imp, nil
}

// PCAPoint is one dimensionality-reduction measurement: the Table I
// protocol with a PCA front end keeping k components.
type PCAPoint struct {
	Components int
	R2         float64
}

// PCASweep evaluates the dimensionality-reduction direction of Section V:
// the given base model behind a standardize+PCA pipeline at several kept
// dimensionalities.
func (s *Study) PCASweep(spec ModelSpec, components []int, nSplits int, seed int64) ([]PCAPoint, error) {
	y, err := s.FDR()
	if err != nil {
		return nil, err
	}
	splits, err := ml.StratifiedShuffleSplits(y, nSplits, PaperTrainFrac, PaperStratifyBins, seed)
	if err != nil {
		return nil, err
	}
	X := s.FeatureRows()
	out := make([]PCAPoint, 0, len(components))
	for _, k := range components {
		k := k
		factory := func() ml.Regressor {
			return &ml.Pipeline{
				Scaler: &pcaChain{std: &ml.StandardScaler{}, pca: ml.NewPCA(k)},
				Model:  spec.Factory(),
			}
		}
		res, err := modelsel.CrossValidate(factory, X, y, splits)
		if err != nil {
			return nil, fmt.Errorf("core: PCA sweep k=%d: %w", k, err)
		}
		out = append(out, PCAPoint{Components: k, R2: res.MeanTest().R2})
	}
	return out, nil
}

// pcaChain standardizes then projects — PCA on raw features would be
// dominated by large-scale columns such as state_changes.
type pcaChain struct {
	std *ml.StandardScaler
	pca *ml.PCA
}

func (c *pcaChain) Fit(X [][]float64) error {
	if err := c.std.Fit(X); err != nil {
		return err
	}
	return c.pca.Fit(c.std.Transform(X))
}

func (c *pcaChain) Transform(X [][]float64) [][]float64 {
	return c.pca.Transform(c.std.Transform(X))
}

func (c *pcaChain) TransformRow(x []float64) []float64 {
	return c.pca.TransformRow(c.std.TransformRow(x))
}

// BudgetPoint is one injection-budget ablation measurement.
type BudgetPoint struct {
	InjectionsPerFF int
	MeanCI95        float64 // mean Wilson 95% interval width of the targets
	KNNR2           float64 // Table I protocol test R² for the k-NN model
}

// InjectionBudgetAblation re-derives the training targets from campaigns
// with smaller per-FF injection budgets and measures how target noise
// propagates into model quality. The ground-truth (full-budget) campaign
// remains the evaluation reference.
func (s *Study) InjectionBudgetAblation(budgets []int, spec ModelSpec, nSplits int, seed int64) ([]BudgetPoint, error) {
	yRef, err := s.FDR()
	if err != nil {
		return nil, err
	}
	X := s.FeatureRows()
	out := make([]BudgetPoint, 0, len(budgets))
	for _, budget := range budgets {
		plan := fault.NewPlan(s.NumFFs(), budget, s.activeCycles, s.Config.CampaignSeed+int64(budget))
		res, err := fault.RunJobs(s.Program, s.stim, s.monitors, s.classifier, plan, fault.RunnerConfig{
			Workers:   s.Config.Workers,
			Golden:    s.golden,
			Snapshots: s.snapshots,
			Naive:     s.Config.NaiveCampaign,
			Schedule:  s.Config.Schedule,
			Backend:   s.Config.Backend,
		})
		if err != nil {
			return nil, fmt.Errorf("core: budget %d campaign: %w", budget, err)
		}
		var widthSum float64
		for ff := range res.FDR {
			lo, hi := fault.WilsonInterval(res.Failures[ff], res.Injections[ff], 1.96)
			widthSum += hi - lo
		}
		// Train on noisy targets, evaluate against the reference.
		splits, err := ml.StratifiedShuffleSplits(res.FDR, nSplits, PaperTrainFrac, PaperStratifyBins, seed)
		if err != nil {
			return nil, err
		}
		var r2sum float64
		for _, sp := range splits {
			trX, trY := ml.Gather(X, res.FDR, sp.Train)
			teX, _ := ml.Gather(X, res.FDR, sp.Test)
			_, teRef := ml.Gather(X, yRef, sp.Test)
			model := spec.Factory()
			if err := model.Fit(trX, trY); err != nil {
				return nil, fmt.Errorf("core: budget %d fit: %w", budget, err)
			}
			r2sum += metrics.R2(teRef, ml.PredictAll(model, teX))
		}
		out = append(out, BudgetPoint{
			InjectionsPerFF: budget,
			MeanCI95:        widthSum / float64(s.NumFFs()),
			KNNR2:           r2sum / float64(len(splits)),
		})
	}
	return out, nil
}
