package core_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// corpusStudyWithTruth materializes a small corpus scenario and runs a tiny
// ground-truth campaign.
func corpusStudyWithTruth(t *testing.T, id string, injections int) *core.Study {
	t.Helper()
	sc, err := corpus.Find(id)
	if err != nil {
		t.Fatal(err)
	}
	study, err := core.NewCorpusStudy(sc, core.CorpusStudyConfig{
		Scale:           corpus.ScaleSmall,
		InjectionsPerFF: injections,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := study.RunGroundTruth(); err != nil {
		t.Fatal(err)
	}
	return study
}

func TestNewCorpusStudyEndToEnd(t *testing.T) {
	study := corpusStudyWithTruth(t, "alupipe/randomops", 4)
	if study.ScenarioID() != "alupipe/randomops" {
		t.Fatalf("scenario tag %q", study.ScenarioID())
	}
	if study.Bench != nil {
		t.Fatal("corpus study carries a MAC bench")
	}
	y, err := study.FDR()
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != study.NumFFs() {
		t.Fatalf("FDR for %d FFs, want %d", len(y), study.NumFFs())
	}
	var sum float64
	for _, v := range y {
		if v < 0 || v > 1 {
			t.Fatalf("FDR %v out of range", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Fatal("campaign found no failures at all; scenario is inert")
	}
	if got := len(study.FeatureRows()); got != study.NumFFs() {
		t.Fatalf("%d feature rows for %d FFs", got, study.NumFFs())
	}
	// The generic study drives the estimation protocol too.
	est, err := study.EstimateFDR(core.PaperModels()[1].Factory, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.TestPred) == 0 {
		t.Fatal("no test predictions")
	}
}

func TestCrossCircuitTransferMatrix(t *testing.T) {
	studies := []*core.Study{
		corpusStudyWithTruth(t, "alupipe/randomops", 4),
		corpusStudyWithTruth(t, "uartser/paced", 4),
		corpusStudyWithTruth(t, "random/noise", 4),
	}
	spec := core.PaperModels()[1] // k-NN
	tm, err := core.CrossCircuit(studies, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tm.IDs) != 3 || len(tm.Cells) != 3 {
		t.Fatalf("matrix is %dx%d, want 3x3", len(tm.IDs), len(tm.Cells))
	}
	for i := range tm.Cells {
		if len(tm.Cells[i]) != 3 {
			t.Fatalf("row %d has %d cells", i, len(tm.Cells[i]))
		}
		for j, c := range tm.Cells[i] {
			if c.TrainID != tm.IDs[i] || c.TestID != tm.IDs[j] {
				t.Fatalf("cell %d,%d labeled %s→%s", i, j, c.TrainID, c.TestID)
			}
			if c.Diagonal != (i == j) {
				t.Fatalf("cell %d,%d diagonal=%v", i, j, c.Diagonal)
			}
			if c.R2 > 1+1e-9 {
				t.Fatalf("cell %s→%s has R² %v > 1", c.TrainID, c.TestID, c.R2)
			}
			if c.Tau < -1-1e-9 || c.Tau > 1+1e-9 {
				t.Fatalf("cell %s→%s has τ %v outside [-1,1]", c.TrainID, c.TestID, c.Tau)
			}
			if c.MAE < 0 {
				t.Fatalf("cell %s→%s has negative MAE", c.TrainID, c.TestID)
			}
		}
	}
	cell, err := tm.Cell("alupipe/randomops", "uartser/paced")
	if err != nil {
		t.Fatal(err)
	}
	if cell.TrainID != "alupipe/randomops" || cell.TestID != "uartser/paced" {
		t.Fatalf("Cell lookup returned %s→%s", cell.TrainID, cell.TestID)
	}
	if _, err := tm.Cell("nope", "uartser/paced"); err == nil {
		t.Fatal("unknown pair resolved")
	}

	var buf bytes.Buffer
	if err := core.RenderTransferMatrix(&buf, tm); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range tm.IDs {
		if !strings.Contains(out, id) {
			t.Fatalf("rendered matrix missing %q:\n%s", id, out)
		}
	}
	if !strings.Contains(out, "Kendall") {
		t.Fatalf("rendered matrix missing the τ block:\n%s", out)
	}
}

func TestCrossCircuitRejectsDegenerateInputs(t *testing.T) {
	spec := core.PaperModels()[0]
	one := corpusStudyWithTruth(t, "random/noise", 2)
	if _, err := core.CrossCircuit([]*core.Study{one}, spec, 1); err == nil {
		t.Fatal("single-study matrix accepted")
	}
	dup := corpusStudyWithTruth(t, "random/noise", 2)
	if _, err := core.CrossCircuit([]*core.Study{one, dup}, spec, 1); err == nil {
		t.Fatal("duplicate scenarios accepted")
	}
}
