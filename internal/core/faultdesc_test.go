package core

import (
	"testing"

	"repro/internal/corpus"
	"repro/internal/fault"
)

func TestFaultDescriptorFor(t *testing.T) {
	seu := FaultDescriptorFor(fault.Model{})
	if seu.SEU != 1 || seu.MBU != 0 || seu.WindowStart != 0 || seu.WindowSpan != 1 {
		t.Fatalf("zero model descriptor = %+v", seu)
	}
	m, err := fault.ParseModel("mbu:3@0.25-0.75")
	if err != nil {
		t.Fatal(err)
	}
	mbu := FaultDescriptorFor(m)
	if mbu.MBU != 1 || mbu.ClusterSize != 3 || mbu.WindowStart != 0.25 || mbu.WindowSpan != 0.5 {
		t.Fatalf("MBU descriptor = %+v", mbu)
	}
	m, err = fault.ParseModel("stuck1:8")
	if err != nil {
		t.Fatal(err)
	}
	st := FaultDescriptorFor(m)
	if st.Stuck1 != 1 || st.Duration != 8 || st.WindowSpan != 1 {
		t.Fatalf("stuck-at descriptor = %+v", st)
	}
	set := FaultDescriptorFor(fault.Model{Kind: fault.KindSET})
	if set.SET != 1 || set.ClusterSize != 0 || set.Duration != 0 {
		t.Fatalf("SET descriptor = %+v", set)
	}
	// Exactly one one-hot bit per model.
	for _, d := range []interface{ Slice() []float64 }{seu, mbu, st, set} {
		row := d.Slice()
		hot := row[0] + row[1] + row[2] + row[3] + row[4]
		if hot != 1 {
			t.Fatalf("kind one-hot sums to %g in %v", hot, row)
		}
	}
}

// TestStudyRejectsSET: per-flip-flop FDR features are meaningless for
// combinational targets, so study construction must refuse the SET model on
// both the MAC and corpus fronts.
func TestStudyRejectsSET(t *testing.T) {
	set := fault.Model{Kind: fault.KindSET}
	cfg := DefaultStudyConfig()
	cfg.Model = set
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("NewStudy accepted the SET model")
	}
	sc, err := corpus.Find("mac10ge/loopback")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCorpusStudy(sc, CorpusStudyConfig{Model: set}); err == nil {
		t.Fatal("NewCorpusStudy accepted the SET model")
	}
	bad := fault.Model{Kind: "neutrino"}
	cfg = DefaultStudyConfig()
	cfg.Model = bad
	if _, err := NewStudy(cfg); err == nil {
		t.Fatal("NewStudy accepted an unknown model kind")
	}
}

// TestCorpusStudyModelChangesGroundTruth: the model threads all the way
// through a corpus study's ground truth — an MBU campaign must not
// reproduce the SEU failure profile.
func TestCorpusStudyModelChangesGroundTruth(t *testing.T) {
	sc, err := corpus.Find("alupipe/randomops")
	if err != nil {
		t.Fatal(err)
	}
	run := func(spec string) []int {
		t.Helper()
		m, err := fault.ParseModel(spec)
		if err != nil {
			t.Fatal(err)
		}
		study, err := NewCorpusStudy(sc, CorpusStudyConfig{InjectionsPerFF: 3, Model: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := study.RunGroundTruth()
		if err != nil {
			t.Fatal(err)
		}
		return res.Failures
	}
	seu := run("seu")
	mbu := run("mbu:4")
	same := len(seu) == len(mbu)
	if same {
		for i := range seu {
			if seu[i] != mbu[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("MBU ground truth equals SEU ground truth — model not threaded")
	}
}
