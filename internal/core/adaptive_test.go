package core

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
	"repro/internal/fault"
	"repro/internal/plan"
)

// checkAdaptiveHeadline asserts the paper-level claim on one study: the
// committee or uncertainty strategy reaches R² within 0.02 of full-campaign
// training while spending at most half the pool's injections, with the
// random baseline measured alongside for comparison.
func checkAdaptiveHeadline(t *testing.T, s *Study, label string, seed int64) {
	t.Helper()
	cmp, err := s.CompareAdaptiveStrategies(
		[]string{plan.StrategyRandom, plan.StrategyCommittee, plan.StrategyUncertainty},
		PaperModels()[1], 0.5, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Outcomes) != 3 || cmp.Outcomes[0].Strategy != plan.StrategyRandom {
		t.Fatalf("%s: comparison missing the random baseline: %+v", label, cmp.Outcomes)
	}
	best := -1.0
	for _, o := range cmp.Outcomes {
		t.Logf("%s: %-12s measured %d/%d FFs (%.1f%% of injections) R²=%.4f vs full %.4f (gap %+.4f)",
			label, o.Strategy, o.MeasuredFFs, cmp.PoolFFs, 100*o.InjectionFrac, o.R2, cmp.FullR2, cmp.FullR2-o.R2)
		if o.InjectionFrac > 0.5 {
			t.Errorf("%s: %s spent %.3f of the full-campaign injections, budget 0.5",
				label, o.Strategy, o.InjectionFrac)
		}
		if o.Strategy != plan.StrategyRandom && o.R2 > best {
			best = o.R2
		}
	}
	if gap := cmp.FullR2 - best; gap > 0.02 {
		t.Errorf("%s: best informed strategy R²=%.4f is %.4f below full-campaign R²=%.4f (tolerance 0.02)",
			label, best, gap, cmp.FullR2)
	}
}

// TestAdaptiveReachesFullCampaignQualityMAC is the headline on the paper's
// DUT: active selection matches full-campaign estimation quality at half the
// injections.
func TestAdaptiveReachesFullCampaignQualityMAC(t *testing.T) {
	checkAdaptiveHeadline(t, smallStudy(t), "mac10ge/loopback", 2)
}

// TestAdaptiveReachesFullCampaignQualityCorpus repeats the headline on two
// corpus scenarios, pinning that the budget win is not a MAC artifact.
func TestAdaptiveReachesFullCampaignQualityCorpus(t *testing.T) {
	for _, id := range []string{"rrarb/uniform", "uartser/paced"} {
		sc, err := corpus.Find(id)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewCorpusStudy(sc, CorpusStudyConfig{Scale: corpus.ScaleSmall, InjectionsPerFF: 32})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunGroundTruth(); err != nil {
			t.Fatal(err)
		}
		checkAdaptiveHeadline(t, s, id, 1)
	}
}

// adaptiveResumeStudy builds the fixture of the interruption tests: a small
// corpus study with fine-grained campaign chunking so rounds span several
// checkpointable chunks.
func adaptiveResumeStudy(t *testing.T) *Study {
	t.Helper()
	sc, err := corpus.Find("alupipe/randomops")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewCorpusStudy(sc, CorpusStudyConfig{
		Scale:           corpus.ScaleSmall,
		InjectionsPerFF: 8,
		ChunkJobs:       64,
		CheckpointEvery: 1,
		Workers:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func adaptiveResumeConfig(ckpt string, resume bool) AdaptiveConfig {
	return AdaptiveConfig{
		Strategy: plan.StrategyCommittee, Seed: 9,
		InitFFs: 12, RoundFFs: 12, BudgetFFs: 36,
		Checkpoint: ckpt, Resume: resume,
	}
}

// TestAdaptiveStudyResumeBitIdentical interrupts a real adaptive campaign
// mid-round (context cancellation while the round's fault.Runner is between
// chunks) and checks the resumed loop selects bit-identical jobs and lands
// on the same final model fingerprint as an uninterrupted twin.
func TestAdaptiveStudyResumeBitIdentical(t *testing.T) {
	// Uninterrupted reference on its own (deterministically materialized)
	// study.
	refStudy := adaptiveResumeStudy(t)
	refAdaptive, err := NewAdaptiveStudy(refStudy, adaptiveResumeConfig("", false))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refAdaptive.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Rounds) < 3 {
		t.Fatalf("fixture too small: %d rounds", len(ref.Rounds))
	}

	// Interrupted run: cancel from the campaign progress callback once
	// round 0 has completed — i.e. in the middle of round 1's campaign.
	ckpt := filepath.Join(t.TempDir(), "adaptive.ffrp")
	s := adaptiveResumeStudy(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var armed atomic.Bool
	s.Config.Progress = func(fault.Progress) {
		if armed.Load() {
			cancel()
		}
	}
	cfg := adaptiveResumeConfig(ckpt, true)
	cfg.OnRound = func(plan.Round) { armed.Store(true) }
	interrupted, err := NewAdaptiveStudy(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := interrupted.RunContext(ctx); !errors.Is(err, fault.ErrInterrupted) {
		t.Fatalf("interrupted run returned %v, want fault.ErrInterrupted", err)
	}

	// Resume on the same study, interference removed.
	s.Config.Progress = nil
	resumed, err := NewAdaptiveStudy(s, adaptiveResumeConfig(ckpt, true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(res.Rounds) != len(ref.Rounds) {
		t.Fatalf("resumed loop ran %d rounds, reference %d", len(res.Rounds), len(ref.Rounds))
	}
	for i := range ref.Rounds {
		if !reflect.DeepEqual(res.Rounds[i].Selected, ref.Rounds[i].Selected) {
			t.Errorf("round %d selected %v, reference %v", i, res.Rounds[i].Selected, ref.Rounds[i].Selected)
		}
		if res.Rounds[i].FFR != ref.Rounds[i].FFR {
			t.Errorf("round %d FFR %v, reference %v", i, res.Rounds[i].FFR, ref.Rounds[i].FFR)
		}
	}
	if !reflect.DeepEqual(res.Measured, ref.Measured) {
		t.Error("resumed loop measured a different flip-flop set")
	}
	if res.ModelFingerprint != ref.ModelFingerprint {
		t.Errorf("final model fingerprint %x, reference %x", res.ModelFingerprint, ref.ModelFingerprint)
	}
	if res.EstimateFingerprint != ref.EstimateFingerprint {
		t.Errorf("estimate fingerprint %x, reference %x", res.EstimateFingerprint, ref.EstimateFingerprint)
	}
	if res.FFR != ref.FFR {
		t.Errorf("final FFR %v, reference %v", res.FFR, ref.FFR)
	}
}

// TestReplayTargetMatchesPartialCampaign pins the equivalence the comparison
// protocol relies on: serving round counts from the ground-truth campaign is
// bit-identical to actually re-injecting the round's flip-flops.
func TestReplayTargetMatchesPartialCampaign(t *testing.T) {
	s := smallStudy(t)
	ffs := []int{0, 7, 31, 100, s.NumFFs() - 1}
	measured, err := s.RunPartialCampaign(ffs)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := (&replayTarget{study: s, campaign: s.Campaign}).RunRound(context.Background(), ffs, "", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ff := range ffs {
		if measured.Failures[ff] != replay.Failures[ff] || measured.Injections[ff] != replay.Injections[ff] {
			t.Errorf("FF %d: measured %d/%d, replay %d/%d",
				ff, measured.Failures[ff], measured.Injections[ff], replay.Failures[ff], replay.Injections[ff])
		}
	}
}

// TestStudyTargetRunsRealCampaign checks the production adapter measures the
// same counts as the study's partial-campaign path.
func TestStudyTargetRunsRealCampaign(t *testing.T) {
	s := smallStudy(t)
	ffs := []int{3, 17, 42}
	want, err := s.RunPartialCampaign(ffs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&studyTarget{study: s}).RunRound(context.Background(), ffs, "", false)
	if err != nil {
		t.Fatal(err)
	}
	for _, ff := range ffs {
		if want.Failures[ff] != got.Failures[ff] || want.Injections[ff] != got.Injections[ff] {
			t.Errorf("FF %d: partial %d/%d, target %d/%d",
				ff, want.Failures[ff], want.Injections[ff], got.Failures[ff], got.Injections[ff])
		}
	}
}

func TestNewAdaptiveStudyValidation(t *testing.T) {
	s := smallStudy(t)
	if _, err := NewAdaptiveStudy(s, AdaptiveConfig{Strategy: "nope"}); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := NewAdaptiveStudy(s, AdaptiveConfig{Resume: true}); err == nil {
		t.Error("Resume without Checkpoint accepted")
	}
	a, err := NewAdaptiveStudy(s, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a.StrategyName != plan.StrategyCommittee {
		t.Errorf("default strategy %q, want committee", a.StrategyName)
	}
	if len(CommitteeFactories()) < 3 {
		t.Errorf("committee zoo has %d members", len(CommitteeFactories()))
	}
}

func TestCompareAdaptiveValidation(t *testing.T) {
	s := smallStudy(t)
	if _, err := s.CompareAdaptiveStrategies([]string{"random"}, PaperModels()[1], 0, 4, 1); err == nil {
		t.Error("zero budget fraction accepted")
	}
	if _, err := s.CompareAdaptiveStrategies([]string{"random"}, PaperModels()[1], 0.5, 0, 1); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := s.CompareAdaptiveStrategies([]string{"bogus"}, PaperModels()[1], 0.5, 4, 1); err == nil {
		t.Error("unknown strategy accepted")
	}
}
