package core

import (
	"fmt"
	"strings"

	"repro/internal/ml"
	"repro/internal/ml/ensemble"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
	"repro/internal/ml/mlp"
	"repro/internal/ml/modelsel"
	"repro/internal/ml/svr"
	"repro/internal/ml/tree"
)

// ModelSpec names a regression model with its paper hyperparameters and the
// scaling it requires.
type ModelSpec struct {
	// Name matches the paper's Table I row labels.
	Name string
	// Factory builds a fresh pipeline instance.
	Factory ml.Factory
	// Tunable describes the hyperparameter space for the random+grid
	// search experiment; nil for models without hyperparameters.
	Tunable *TunableSpec
}

// TunableSpec defines a model's search space (Section III-A's random search
// followed by grid refinement).
type TunableSpec struct {
	Space map[string]modelsel.Range
	Build modelsel.Build
	// Log marks parameters refined on a log scale by the grid stage.
	Log map[string]bool
}

// scaled wraps a model in a standardization pipeline; k-NN and SVR need it,
// and it does not hurt the linear model.
func scaled(m ml.Regressor) ml.Regressor {
	return &ml.Pipeline{Scaler: &ml.StandardScaler{}, Model: m}
}

// LinearModel is the paper's Linear Least Squares regressor; ridge with a
// tiny lambda keeps rank-deficient training subsets (constant columns in a
// small stratified draw) solvable without changing the fit measurably.
func LinearModel() ml.Regressor { return scaled(linreg.NewRidge(1e-8)) }

// KNNModel is the paper's tuned k-NN: k=3, Manhattan distance,
// inverse-distance weighting.
func KNNModel() ml.Regressor { return scaled(knn.New(3, knn.Manhattan)) }

// SVRModel is the paper's tuned SVR: RBF kernel, C=3.5, γ=0.055, ε=0.025.
func SVRModel() ml.Regressor { return scaled(svr.New(3.5, 0.055, 0.025)) }

// PaperModels returns the three Table I rows in paper order.
func PaperModels() []ModelSpec {
	return []ModelSpec{
		{
			Name:    "Linear Least Squares",
			Factory: LinearModel,
		},
		{
			Name:    "k-NN",
			Factory: KNNModel,
			Tunable: &TunableSpec{
				Space: map[string]modelsel.Range{
					"k": {Min: 1, Max: 20, Integer: true},
				},
				Build: func(p modelsel.Params) ml.Regressor {
					return scaled(knn.New(int(p["k"]), knn.Manhattan))
				},
			},
		},
		{
			Name:    "SVR w/ RBF Kernel",
			Factory: SVRModel,
			Tunable: &TunableSpec{
				Space: map[string]modelsel.Range{
					"C":     {Min: 0.1, Max: 100, Log: true},
					"gamma": {Min: 1e-3, Max: 1, Log: true},
				},
				Build: func(p modelsel.Params) ml.Regressor {
					return scaled(svr.New(p["C"], p["gamma"], 0.025))
				},
				Log: map[string]bool{"C": true, "gamma": true},
			},
		},
	}
}

// ExtendedModels returns the future-work models of Section V, configured
// with study defaults.
func ExtendedModels() []ModelSpec {
	return []ModelSpec{
		{
			Name:    "Decision Tree",
			Factory: func() ml.Regressor { return scaled(tree.New(8)) },
		},
		{
			Name:    "Random Forest",
			Factory: func() ml.Regressor { return scaled(ensemble.NewForest(80, 12, 1)) },
		},
		{
			Name:    "Gradient Boosting",
			Factory: func() ml.Regressor { return scaled(ensemble.NewBoosting(150, 0.1, 3)) },
		},
		{
			Name: "MLP",
			Factory: func() ml.Regressor {
				m := mlp.New([]int{64, 32}, 7)
				m.Epochs = 150
				return scaled(m)
			},
		},
	}
}

// ModelNames lists every resolvable model name (paper order, then the
// Section V extensions) — the valid -model values of the cmd tools.
func ModelNames() []string {
	specs := append(PaperModels(), ExtendedModels()...)
	names := make([]string, len(specs))
	for i, spec := range specs {
		names[i] = spec.Name
	}
	return names
}

// FindModel resolves a model by Table I name across paper and extended
// specs.
func FindModel(name string) (ModelSpec, error) {
	for _, spec := range append(PaperModels(), ExtendedModels()...) {
		if spec.Name == name {
			return spec, nil
		}
	}
	return ModelSpec{}, fmt.Errorf("core: unknown model %q (valid: %s)",
		name, strings.Join(ModelNames(), ", "))
}
