package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"repro/internal/circuit"
	"repro/internal/features"
)

// testStudy is a shared, scaled-down study fixture (small FIFOs, few
// packets, light injection budget) so the full flow stays fast in tests.
var testStudy struct {
	once  sync.Once
	study *Study
	err   error
}

func smallStudy(t *testing.T) *Study {
	t.Helper()
	testStudy.once.Do(func() {
		cfg := StudyConfig{
			MAC: circuit.MACConfig{FIFODepth: 16, StatWidth: 8, TargetFFs: 0},
			Bench: circuit.MACBenchConfig{
				Packets: 6, MinPayload: 4, MaxPayload: 6, Gap: 10,
				DrainCycles: 40, Seed: 5, FIFODepth: 16,
			},
			InjectionsPerFF: 8,
			CampaignSeed:    1,
			CheckStats:      true,
		}
		testStudy.study, testStudy.err = NewStudy(cfg)
		if testStudy.err == nil {
			_, testStudy.err = testStudy.study.RunGroundTruth()
		}
	})
	if testStudy.err != nil {
		t.Fatalf("fixture: %v", testStudy.err)
	}
	return testStudy.study
}

func TestStudyConstruction(t *testing.T) {
	s := smallStudy(t)
	if s.NumFFs() < 300 {
		t.Fatalf("unexpectedly small study: %d FFs", s.NumFFs())
	}
	if len(s.Features.Rows) != s.NumFFs() {
		t.Fatalf("feature rows %d != FFs %d", len(s.Features.Rows), s.NumFFs())
	}
	if len(s.Activity.Ones) != s.NumFFs() {
		t.Fatal("activity shape wrong")
	}
	y, err := s.FDR()
	if err != nil {
		t.Fatalf("FDR: %v", err)
	}
	if len(y) != s.NumFFs() {
		t.Fatal("FDR shape wrong")
	}
}

func TestGroundTruthIdempotent(t *testing.T) {
	s := smallStudy(t)
	a, err := s.RunGroundTruth()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.RunGroundTruth()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("RunGroundTruth must cache its result")
	}
}

func TestPartialCampaignMatchesFull(t *testing.T) {
	s := smallStudy(t)
	full, _ := s.RunGroundTruth()
	subset := []int{0, 5, 17, 42}
	part, err := s.RunPartialCampaign(subset)
	if err != nil {
		t.Fatalf("RunPartialCampaign: %v", err)
	}
	for _, ff := range subset {
		if part.FDR[ff] != full.FDR[ff] {
			t.Fatalf("FF %d: partial %v != full %v (same plan and seed)",
				ff, part.FDR[ff], full.FDR[ff])
		}
		if part.Injections[ff] != s.Config.InjectionsPerFF {
			t.Fatalf("FF %d injections %d", ff, part.Injections[ff])
		}
	}
	// Untouched FFs have no injections.
	if part.Injections[1] != 0 {
		t.Fatal("partial campaign leaked to unselected FFs")
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	s := smallStudy(t)
	rows, err := s.Table1(PaperModels(), 4, PaperTrainFrac, 3)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	lls, knn, svr := rows[0], rows[1], rows[2]
	if lls.Model != "Linear Least Squares" || knn.Model != "k-NN" || svr.Model != "SVR w/ RBF Kernel" {
		t.Fatalf("row order wrong: %v %v %v", lls.Model, knn.Model, svr.Model)
	}
	// The paper's headline: the linear model is rated worst on R².
	if lls.R2 >= knn.R2 || lls.R2 >= svr.R2 {
		t.Fatalf("linear model must lose: LLS=%.3f kNN=%.3f SVR=%.3f", lls.R2, knn.R2, svr.R2)
	}
	// And the non-linear models do well in absolute terms.
	if knn.R2 < 0.6 || svr.R2 < 0.6 {
		t.Fatalf("non-linear models too weak: kNN=%.3f SVR=%.3f", knn.R2, svr.R2)
	}
	for _, r := range rows {
		if r.MAE < 0 || r.RMSE < r.MAE-1e-9 || r.MAX < r.MAE-1e-9 {
			t.Fatalf("inconsistent metrics: %+v", r)
		}
	}
}

func TestEstimateFDRFlow(t *testing.T) {
	s := smallStudy(t)
	est, err := s.EstimateFDR(KNNModel, 0.5, 9)
	if err != nil {
		t.Fatalf("EstimateFDR: %v", err)
	}
	n := s.NumFFs()
	if len(est.TrainIdx)+len(est.TestIdx) != n {
		t.Fatal("split must cover all FFs")
	}
	frac := float64(len(est.TrainIdx)) / float64(n)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("train fraction %v far from 0.5", frac)
	}
	if len(est.TestPred) != len(est.TestTrue) {
		t.Fatal("prediction shape wrong")
	}
	for _, p := range est.TestPred {
		if math.IsNaN(p) || math.IsInf(p, 0) {
			t.Fatal("non-finite prediction")
		}
	}
}

func TestFoldPrediction(t *testing.T) {
	s := smallStudy(t)
	est, trainScores, testScores, err := s.FoldPrediction(PaperModels()[1], 2)
	if err != nil {
		t.Fatalf("FoldPrediction: %v", err)
	}
	if trainScores.R2 < testScores.R2-0.05 {
		t.Fatalf("k-NN train score (%v) should not trail test (%v)", trainScores.R2, testScores.R2)
	}
	var buf bytes.Buffer
	if err := RenderFoldPrediction(&buf, "k-NN", est); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty rendering")
	}
}

func TestLearningCurvePlateau(t *testing.T) {
	s := smallStudy(t)
	points, err := s.LearningCurve(PaperModels()[1], []float64{0.1, 0.3, 0.5, 0.9}, 4, 3)
	if err != nil {
		t.Fatalf("LearningCurve: %v", err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// The paper's conclusion: performance does not improve much past 50 %.
	last, mid := points[3], points[2]
	if mid.TestScore < last.TestScore-0.15 {
		t.Fatalf("no plateau: 50%%=%v vs 90%%=%v", mid.TestScore, last.TestScore)
	}
	var buf bytes.Buffer
	if err := RenderLearningCurve(&buf, "k-NN", points); err != nil {
		t.Fatal(err)
	}
}

func TestMaskFeatureGroups(t *testing.T) {
	s := smallStudy(t)
	dyn := s.MaskFeatureGroups(features.GroupDynamic)
	if len(dyn) != s.NumFFs() || len(dyn[0]) != 3 {
		t.Fatalf("dynamic mask shape: %dx%d", len(dyn), len(dyn[0]))
	}
	all := s.MaskFeatureGroups(features.GroupStructural, features.GroupSynthesis, features.GroupDynamic)
	if len(all[0]) != features.NumFeatures {
		t.Fatalf("full mask width %d", len(all[0]))
	}
}

func TestTable1Ablation(t *testing.T) {
	s := smallStudy(t)
	row, err := s.Table1Ablation(PaperModels()[1], s.MaskFeatureGroups(features.GroupStructural), 3, 0.5, 4)
	if err != nil {
		t.Fatalf("Table1Ablation: %v", err)
	}
	if row.R2 <= -1 || row.R2 > 1 {
		t.Fatalf("ablation R² out of range: %v", row.R2)
	}
}

func TestTuneModel(t *testing.T) {
	s := smallStudy(t)
	spec := PaperModels()[1] // k-NN
	out, err := s.TuneModel(spec, 4, 5)
	if err != nil {
		t.Fatalf("TuneModel: %v", err)
	}
	if out.Random.Evaluated != 4 {
		t.Fatalf("random evaluated %d", out.Random.Evaluated)
	}
	if out.Grid.BestScore < out.Random.BestScore-1e-9 {
		t.Fatalf("grid refinement must not regress: %v < %v",
			out.Grid.BestScore, out.Random.BestScore)
	}
	k := out.Grid.Best["k"]
	if k < 1 || k > 20 {
		t.Fatalf("tuned k = %v out of space", k)
	}
	// The linear model has no hyperparameters.
	if _, err := s.TuneModel(PaperModels()[0], 2, 1); err == nil {
		t.Fatal("tuning a non-tunable model must fail")
	}
}

func TestInjectionBudgetAblation(t *testing.T) {
	s := smallStudy(t)
	points, err := s.InjectionBudgetAblation([]int{2, 8}, PaperModels()[1], 2, 6)
	if err != nil {
		t.Fatalf("InjectionBudgetAblation: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// More injections → narrower confidence intervals.
	if points[1].MeanCI95 >= points[0].MeanCI95 {
		t.Fatalf("CI width must shrink with budget: %v vs %v",
			points[1].MeanCI95, points[0].MeanCI95)
	}
}

func TestFeatureValue(t *testing.T) {
	s := smallStudy(t)
	imp, err := s.FeatureValue(PaperModels()[1], 2, 3)
	if err != nil {
		t.Fatalf("FeatureValue: %v", err)
	}
	if len(imp) != features.NumFeatures {
		t.Fatalf("importances = %d, want %d", len(imp), features.NumFeatures)
	}
	any := false
	for _, fi := range imp {
		if fi.MeanDrop > 0.01 {
			any = true
		}
	}
	if !any {
		t.Fatal("no feature carries importance — implausible")
	}
}

func TestPCASweep(t *testing.T) {
	s := smallStudy(t)
	points, err := s.PCASweep(PaperModels()[1], []int{3, 10}, 2, 4)
	if err != nil {
		t.Fatalf("PCASweep: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.R2 > 1 {
			t.Fatalf("R² out of range: %+v", p)
		}
	}
	// More components should not be dramatically worse.
	if points[1].R2 < points[0].R2-0.3 {
		t.Fatalf("PCA sweep implausible: %+v", points)
	}
}

func TestRenderers(t *testing.T) {
	s := smallStudy(t)
	res, _ := s.RunGroundTruth()
	var buf bytes.Buffer
	if err := RenderCampaign(&buf, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() < 100 {
		t.Fatal("campaign rendering too short")
	}
	rows, err := s.Table1(PaperModels()[:1], 2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := RenderTable1(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("Linear Least Squares")) {
		t.Fatal("table missing model row")
	}
}

func TestFindModel(t *testing.T) {
	if _, err := FindModel("k-NN"); err != nil {
		t.Fatalf("FindModel: %v", err)
	}
	if _, err := FindModel("Gradient Boosting"); err != nil {
		t.Fatalf("FindModel extended: %v", err)
	}
	if _, err := FindModel("nope"); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestFDRBeforeGroundTruth(t *testing.T) {
	cfg := StudyConfig{
		MAC: circuit.MACConfig{FIFODepth: 8, StatWidth: 8},
		Bench: circuit.MACBenchConfig{
			Packets: 1, MinPayload: 2, MaxPayload: 2, Gap: 8,
			DrainCycles: 30, Seed: 1, FIFODepth: 8,
		},
		InjectionsPerFF: 1,
	}
	s, err := NewStudy(cfg)
	if err != nil {
		t.Fatalf("NewStudy: %v", err)
	}
	if _, err := s.FDR(); err == nil {
		t.Fatal("FDR before RunGroundTruth must fail")
	}
	if _, err := s.EstimateFDR(KNNModel, 0.5, 1); err == nil {
		t.Fatal("EstimateFDR before ground truth must fail")
	}
}
