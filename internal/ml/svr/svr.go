package svr

import (
	"fmt"
	"math"

	"repro/internal/ml"
)

// Kernel identifies the kernel function.
type Kernel int

// Supported kernels.
const (
	RBF Kernel = iota + 1 // exp(-γ‖a−b‖²), the paper's choice
	Linear
	Poly // (γ a·b + coef0)^degree
)

// String names the kernel.
func (k Kernel) String() string {
	switch k {
	case RBF:
		return "rbf"
	case Linear:
		return "linear"
	case Poly:
		return "poly"
	default:
		return fmt.Sprintf("Kernel(%d)", int(k))
	}
}

// Regressor is the ε-SVR model. Configure before Fit (use New for the
// paper's RBF setup).
type Regressor struct {
	Kernel  Kernel
	C       float64 // box constraint (paper: 3.5)
	Epsilon float64 // ε-tube half-width (paper: 0.025)
	Gamma   float64 // RBF/poly scale (paper: 0.055)
	Coef0   float64 // poly offset
	Degree  int     // poly degree
	// MaxIter bounds coordinate-descent epochs (default 1000).
	MaxIter int
	// Tol is the convergence threshold on the largest coefficient change
	// in one epoch (default 1e-4).
	Tol float64

	sv     [][]float64 // support vectors (training rows with β ≠ 0)
	beta   []float64   // dual coefficients of the support vectors
	fitted bool
}

// New returns an RBF ε-SVR with the given hyperparameters.
func New(c, gamma, epsilon float64) *Regressor {
	return &Regressor{Kernel: RBF, C: c, Gamma: gamma, Epsilon: epsilon}
}

func (r *Regressor) kernel(a, b []float64) float64 {
	switch r.Kernel {
	case Linear:
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	case Poly:
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return math.Pow(r.Gamma*s+r.Coef0, float64(r.Degree))
	default: // RBF
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Exp(-r.Gamma * s)
	}
}

func soft(z, eps float64) float64 {
	switch {
	case z > eps:
		return z - eps
	case z < -eps:
		return z + eps
	default:
		return 0
	}
}

// Fit trains the dual problem to convergence.
func (r *Regressor) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	if r.C <= 0 {
		return fmt.Errorf("ml/svr: C=%v must be > 0", r.C)
	}
	if r.Epsilon < 0 {
		return fmt.Errorf("ml/svr: epsilon=%v must be >= 0", r.Epsilon)
	}
	if r.Kernel == RBF && r.Gamma <= 0 {
		return fmt.Errorf("ml/svr: gamma=%v must be > 0 for RBF", r.Gamma)
	}
	maxIter := r.MaxIter
	if maxIter <= 0 {
		maxIter = 1000
	}
	tol := r.Tol
	if tol <= 0 {
		tol = 1e-4
	}

	n := len(X)
	// Augmented kernel matrix K' = K + 1 (regularized bias).
	k := make([]float64, n*n)
	for i := 0; i < n; i++ {
		k[i*n+i] = r.kernel(X[i], X[i]) + 1
		for j := i + 1; j < n; j++ {
			v := r.kernel(X[i], X[j]) + 1
			k[i*n+j] = v
			k[j*n+i] = v
		}
	}
	beta := make([]float64, n)
	f := make([]float64, n) // f = K'β, maintained incrementally
	for epoch := 0; epoch < maxIter; epoch++ {
		var maxDelta float64
		for i := 0; i < n; i++ {
			kii := k[i*n+i]
			si := f[i] - kii*beta[i] // Σ_{j≠i} βⱼK'ᵢⱼ
			next := soft(y[i]-si, r.Epsilon) / kii
			if next > r.C {
				next = r.C
			} else if next < -r.C {
				next = -r.C
			}
			delta := next - beta[i]
			if delta == 0 {
				continue
			}
			beta[i] = next
			row := k[i*n : (i+1)*n]
			for j := range f {
				f[j] += delta * row[j]
			}
			if d := math.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < tol {
			break
		}
	}

	// Keep only support vectors.
	r.sv = r.sv[:0]
	r.beta = r.beta[:0]
	for i, b := range beta {
		if b != 0 {
			r.sv = append(r.sv, append([]float64(nil), X[i]...))
			r.beta = append(r.beta, b)
		}
	}
	r.fitted = true
	return nil
}

// Predict evaluates f(x) = Σ βᵢ (K(xᵢ,x) + 1).
func (r *Regressor) Predict(x []float64) float64 {
	if !r.fitted {
		return 0
	}
	var s float64
	for i, sv := range r.sv {
		s += r.beta[i] * (r.kernel(sv, x) + 1)
	}
	return s
}

// NumSupportVectors reports the size of the learned expansion.
func (r *Regressor) NumSupportVectors() int { return len(r.sv) }

var _ ml.Regressor = (*Regressor)(nil)
