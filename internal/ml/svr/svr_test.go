package svr

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/metrics"
)

func TestFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		y[i] = 2*X[i][0] + 1
	}
	m := &Regressor{Kernel: Linear, C: 10, Epsilon: 0.01}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, q := range []float64{-1, 0, 0.5, 1.5} {
		got := m.Predict([]float64{q})
		want := 2*q + 1
		if math.Abs(got-want) > 0.1 {
			t.Fatalf("Predict(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestFitsNonlinearFunctionWithRBF(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 120
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()*4 - 2
		X[i] = []float64{x}
		y[i] = math.Sin(2*x) + 0.5*x
	}
	m := New(10, 1.0, 0.01)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// R² on the training domain must be high for a nonlinear fit.
	yhat := make([]float64, n)
	for i := range X {
		yhat[i] = m.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 < 0.95 {
		t.Fatalf("RBF SVR train R² = %v, want > 0.95", r2)
	}
	// A linear kernel cannot fit this.
	lin := &Regressor{Kernel: Linear, C: 10, Epsilon: 0.01}
	if err := lin.Fit(X, y); err != nil {
		t.Fatalf("Fit linear: %v", err)
	}
	for i := range X {
		yhat[i] = lin.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 > 0.9 {
		t.Fatalf("linear kernel fit sin unexpectedly well: R² = %v", r2)
	}
}

func TestEpsilonInsensitivity(t *testing.T) {
	// With a huge ε the tube swallows the data: β stays zero and the
	// prediction is 0 everywhere (no support vectors).
	X := [][]float64{{0}, {1}, {2}}
	y := []float64{0.1, 0.2, 0.15}
	m := New(1, 1, 10)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.NumSupportVectors() != 0 {
		t.Fatalf("sv = %d, want 0 with giant epsilon", m.NumSupportVectors())
	}
	if got := m.Predict([]float64{1}); got != 0 {
		t.Fatalf("Predict = %v, want 0", got)
	}
}

func TestBoxConstraintLimitsCoefficients(t *testing.T) {
	// One extreme outlier: with a small C its influence is bounded.
	X := [][]float64{{0}, {0.5}, {1}, {1.5}, {2}, {1}}
	y := []float64{0, 0.5, 1, 1.5, 2, 100}
	small := New(0.5, 1, 0.01)
	if err := small.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// The outlier row would need |β| ≈ 50 to fit; C=0.5 forbids it, so
	// prediction at x=1 stays near the inlier trend.
	if got := small.Predict([]float64{1}); got > 10 {
		t.Fatalf("Predict = %v; box constraint failed to cap outlier", got)
	}
}

func TestPolyKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 80
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()*2 - 1
		X[i] = []float64{x}
		y[i] = x * x
	}
	m := &Regressor{Kernel: Poly, C: 10, Epsilon: 0.01, Gamma: 1, Coef0: 1, Degree: 2}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	yhat := make([]float64, n)
	for i := range X {
		yhat[i] = m.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 < 0.95 {
		t.Fatalf("poly SVR R² = %v, want > 0.95", r2)
	}
}

func TestValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	if err := (&Regressor{Kernel: RBF, C: 0, Gamma: 1}).Fit(X, y); err == nil {
		t.Fatal("C=0 must fail")
	}
	if err := (&Regressor{Kernel: RBF, C: 1, Gamma: 0}).Fit(X, y); err == nil {
		t.Fatal("gamma=0 RBF must fail")
	}
	if err := (&Regressor{Kernel: RBF, C: 1, Gamma: 1, Epsilon: -1}).Fit(X, y); err == nil {
		t.Fatal("negative epsilon must fail")
	}
	if err := New(1, 1, 0).Fit(nil, nil); err == nil {
		t.Fatal("empty data must fail")
	}
	m := New(1, 1, 0.1)
	if got := m.Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted Predict = %v, want 0", got)
	}
}

func TestKernelString(t *testing.T) {
	if RBF.String() != "rbf" || Linear.String() != "linear" || Poly.String() != "poly" {
		t.Fatal("Kernel.String wrong")
	}
	if Kernel(9).String() == "" {
		t.Fatal("unknown kernel must stringify")
	}
}

func TestDeterministicFit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = X[i][0] - X[i][1]
	}
	a, b := New(3.5, 0.055, 0.025), New(3.5, 0.055, 0.025)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.3, -0.2}
	if a.Predict(q) != b.Predict(q) {
		t.Fatal("SVR training must be deterministic")
	}
}
