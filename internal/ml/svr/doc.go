// Package svr implements the paper's Support Vector Regression with RBF
// kernel (Section IV-B3): ε-insensitive loss, box constraint C, trained by
// SMO-style dual coordinate descent.
//
// Solver note: the bias is handled through kernel augmentation
// (K'(a,b) = K(a,b) + 1, a regularized bias), which removes the equality
// constraint of the classic SMO dual and lets single-coefficient updates
// converge with a closed-form soft-threshold step:
//
//	βᵢ ← clip( soft(yᵢ − Σ_{j≠i} βⱼK'ᵢⱼ, ε) / K'ᵢᵢ, −C, C )
//
// For standardized features this is numerically indistinguishable from
// libsvm's explicit-bias solution at the paper's operating points (the SVR
// unit tests pin the agreement on synthetic problems).
package svr
