package svr

import (
	"encoding/gob"

	"repro/internal/ml"
)

func init() {
	gob.RegisterName("ffr/svr.Regressor", &Regressor{})
}

// svrState is the explicit wire format of a fitted SVR: the hyperparameters
// plus the support-vector expansion.
type svrState struct {
	Kernel  Kernel
	C       float64
	Epsilon float64
	Gamma   float64
	Coef0   float64
	Degree  int
	MaxIter int
	Tol     float64
	SV      [][]float64
	Beta    []float64
	Fitted  bool
}

// GobEncode exports the hyperparameters and the support-vector expansion.
func (r *Regressor) GobEncode() ([]byte, error) {
	return ml.GobState(svrState{
		Kernel:  r.Kernel,
		C:       r.C,
		Epsilon: r.Epsilon,
		Gamma:   r.Gamma,
		Coef0:   r.Coef0,
		Degree:  r.Degree,
		MaxIter: r.MaxIter,
		Tol:     r.Tol,
		SV:      r.sv,
		Beta:    r.beta,
		Fitted:  r.fitted,
	})
}

// GobDecode restores a fitted SVR.
func (r *Regressor) GobDecode(data []byte) error {
	var st svrState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	r.Kernel = st.Kernel
	r.C = st.C
	r.Epsilon = st.Epsilon
	r.Gamma = st.Gamma
	r.Coef0 = st.Coef0
	r.Degree = st.Degree
	r.MaxIter = st.MaxIter
	r.Tol = st.Tol
	r.sv = st.SV
	r.beta = st.Beta
	r.fitted = st.Fitted
	return nil
}
