package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeans is a deterministic Lloyd's-algorithm k-means clusterer with
// k-means++ seeding. All randomness derives from the seed passed to Fit, so
// the same (data, k, seed) always yields identical clusters — the property
// the cluster-coverage acquisition strategy and the hardening advisor need
// for bit-identical checkpoint resume. Ties (equidistant centers, empty
// clusters) break toward the lowest index.
//
// Edge cases are part of the contract: K is capped at the number of rows;
// a cluster left empty by a Lloyd step is re-seated on the point farthest
// from its assigned center, each simultaneous empty cluster claiming a
// distinct point; when the data holds fewer distinct points than K, the
// surplus centers converge onto duplicates of existing ones. These are
// pinned by regression tests.
type KMeans struct {
	// K is the number of clusters; Fit caps it at the number of rows.
	K int
	// MaxIter bounds the Lloyd iterations; 0 means DefaultKMeansIter.
	MaxIter int
	// Centers holds the fitted centroids after Fit, one row per cluster.
	Centers [][]float64
}

// DefaultKMeansIter is the default Lloyd iteration cap; runs almost always
// converge (assignments stop changing) much earlier.
const DefaultKMeansIter = 50

// NewKMeans returns a k-cluster KMeans with default iteration cap.
func NewKMeans(k int) *KMeans { return &KMeans{K: k} }

// Fit clusters the rows of X. It is deterministic in (X, K, seed).
func (km *KMeans) Fit(X [][]float64, seed int64) error {
	if km.K < 1 {
		return fmt.Errorf("%w: k-means needs K >= 1, have %d", ErrBadData, km.K)
	}
	if len(X) == 0 || len(X[0]) == 0 {
		return fmt.Errorf("%w: empty matrix", ErrBadData)
	}
	cols := len(X[0])
	for i, row := range X {
		if len(row) != cols {
			return fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadData, i, len(row), cols)
		}
	}
	k := km.K
	if k > len(X) {
		k = len(X)
	}
	maxIter := km.MaxIter
	if maxIter <= 0 {
		maxIter = DefaultKMeansIter
	}

	km.Centers = kmeansppInit(X, k, rand.New(rand.NewSource(seed)))
	assign := make([]int, len(X))
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, cols)
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, row := range X {
			if c := km.Assign(row); c != assign[i] {
				changed = true
				assign[i] = c
			}
		}
		if iter > 0 && !changed {
			break
		}
		for c := 0; c < k; c++ {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, row := range X {
			c := assign[i]
			counts[c]++
			for j, v := range row {
				sums[c][j] += v
			}
		}
		empties := false
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				empties = true
				continue
			}
			for j := range km.Centers[c] {
				km.Centers[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if empties {
			reseatEmptyClusters(km.Centers, X, assign, counts)
		}
	}
	return nil
}

// reseatEmptyClusters re-seats every empty cluster on the point farthest
// from its currently assigned center (deterministic: first maximum). Each
// re-seated point is claimed — assign is updated and later empty clusters
// skip it — so simultaneous empty clusters land on distinct points instead
// of all copying the same one.
func reseatEmptyClusters(centers, X [][]float64, assign, counts []int) {
	var taken []int
	for c := range counts {
		if counts[c] != 0 {
			continue
		}
		far, farDist := 0, -1.0
	scan:
		for i, row := range X {
			for _, t := range taken {
				if t == i {
					continue scan
				}
			}
			if d := sqDist(row, centers[assign[i]]); d > farDist {
				far, farDist = i, d
			}
		}
		copy(centers[c], X[far])
		assign[far] = c
		taken = append(taken, far)
	}
}

// Assign returns the index of the fitted center nearest to x (lowest index
// on ties). It requires a successful Fit.
func (km *KMeans) Assign(x []float64) int {
	best, bestDist := 0, math.Inf(1)
	for c, center := range km.Centers {
		if d := sqDist(x, center); d < bestDist {
			best, bestDist = c, d
		}
	}
	return best
}

// Labels assigns every row of X to its nearest fitted center.
func (km *KMeans) Labels(X [][]float64) []int {
	out := make([]int, len(X))
	for i, row := range X {
		out[i] = km.Assign(row)
	}
	return out
}

// kmeansppInit seeds k centers with the k-means++ scheme: the first center
// uniformly at random, each next one with probability proportional to its
// squared distance from the nearest already-chosen center.
func kmeansppInit(X [][]float64, k int, rng *rand.Rand) [][]float64 {
	centers := make([][]float64, 0, k)
	first := rng.Intn(len(X))
	centers = append(centers, append([]float64(nil), X[first]...))
	dist := make([]float64, len(X))
	for i, row := range X {
		dist[i] = sqDist(row, centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range dist {
			total += d
		}
		next := 0
		if total > 0 {
			r := rng.Float64() * total
			acc := 0.0
			for i, d := range dist {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		} else {
			// All remaining points coincide with a center; any choice works
			// and the duplicate center simply stays empty.
			next = rng.Intn(len(X))
		}
		centers = append(centers, append([]float64(nil), X[next]...))
		for i, row := range X {
			if d := sqDist(row, centers[len(centers)-1]); d < dist[i] {
				dist[i] = d
			}
		}
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}
