package knn

import (
	"encoding/gob"

	"repro/internal/ml"
)

func init() {
	gob.RegisterName("ffr/knn.Regressor", &Regressor{})
}

// knnState is the explicit wire format of a fitted k-NN model: the
// configuration plus the memorized training set.
type knnState struct {
	K       int
	Metric  Metric
	P       float64
	Weights Weighting
	X       [][]float64
	Y       []float64
	Fitted  bool
}

// GobEncode exports the configuration and the memorized training set.
func (r *Regressor) GobEncode() ([]byte, error) {
	return ml.GobState(knnState{
		K:       r.K,
		Metric:  r.Metric,
		P:       r.P,
		Weights: r.Weights,
		X:       r.x,
		Y:       r.y,
		Fitted:  r.fitted,
	})
}

// GobDecode restores a fitted k-NN model.
func (r *Regressor) GobDecode(data []byte) error {
	var st knnState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	r.K = st.K
	r.Metric = st.Metric
	r.P = st.P
	r.Weights = st.Weights
	r.x = st.X
	r.y = st.Y
	r.fitted = st.Fitted
	return nil
}
