package knn

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/ml"
)

// Metric identifies the distance function.
type Metric int

// Supported metrics.
const (
	Manhattan Metric = iota + 1 // L1, the paper's tuned choice
	Euclidean                   // L2
	Minkowski                   // Lp with configurable P
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Manhattan:
		return "manhattan"
	case Euclidean:
		return "euclidean"
	case Minkowski:
		return "minkowski"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Weighting selects how neighbor targets are combined.
type Weighting int

// Supported weightings.
const (
	// WeightDistance uses inverse-distance weights (the paper's choice);
	// an exact feature match returns that training target directly.
	WeightDistance Weighting = iota + 1
	// WeightUniform averages the k neighbors equally.
	WeightUniform
)

// Regressor is the k-NN model. Configure before Fit; the zero value is
// k=0 and invalid (use New).
type Regressor struct {
	K      int
	Metric Metric
	// P is the Minkowski exponent, used only when Metric == Minkowski.
	P float64
	// Weights defaults to WeightDistance when left zero.
	Weights Weighting

	x      [][]float64
	y      []float64
	fitted bool
}

// New returns the paper's configuration: weighted k-NN with the given k and
// metric.
func New(k int, metric Metric) *Regressor {
	return &Regressor{K: k, Metric: metric, P: 2, Weights: WeightDistance}
}

// Fit memorizes the training set.
func (r *Regressor) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	if r.K < 1 {
		return fmt.Errorf("ml/knn: k=%d must be >= 1", r.K)
	}
	if r.K > len(X) {
		return fmt.Errorf("ml/knn: k=%d exceeds %d training samples", r.K, len(X))
	}
	if r.Metric == Minkowski && r.P <= 0 {
		return fmt.Errorf("ml/knn: minkowski p=%v must be > 0", r.P)
	}
	if r.Weights == 0 {
		r.Weights = WeightDistance
	}
	// Copy: the contract says callers may reuse their slices.
	r.x = make([][]float64, len(X))
	for i, row := range X {
		r.x[i] = append([]float64(nil), row...)
	}
	r.y = append([]float64(nil), y...)
	r.fitted = true
	return nil
}

func (r *Regressor) distance(a, b []float64) float64 {
	switch r.Metric {
	case Euclidean:
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
		}
		return math.Sqrt(s)
	case Minkowski:
		var s float64
		for i := range a {
			s += math.Pow(math.Abs(a[i]-b[i]), r.P)
		}
		return math.Pow(s, 1/r.P)
	default: // Manhattan
		var s float64
		for i := range a {
			s += math.Abs(a[i] - b[i])
		}
		return s
	}
}

// neighborHeap is a max-heap on distance holding the current best k.
type neighborHeap []neighbor

type neighbor struct {
	dist float64
	idx  int
}

func (h neighborHeap) Len() int            { return len(h) }
func (h neighborHeap) Less(i, j int) bool  { return h[i].dist > h[j].dist }
func (h neighborHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x interface{}) { *h = append(*h, x.(neighbor)) }
func (h *neighborHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Neighbors returns the indices and distances of the k nearest training
// points, nearest first.
func (r *Regressor) Neighbors(x []float64) ([]int, []float64, error) {
	if !r.fitted {
		return nil, nil, ml.ErrNotFitted
	}
	h := make(neighborHeap, 0, r.K)
	for i, row := range r.x {
		d := r.distance(x, row)
		if len(h) < r.K {
			heap.Push(&h, neighbor{dist: d, idx: i})
		} else if d < h[0].dist {
			h[0] = neighbor{dist: d, idx: i}
			heap.Fix(&h, 0)
		}
	}
	// Extract ascending.
	idx := make([]int, len(h))
	dist := make([]float64, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		nb := heap.Pop(&h).(neighbor)
		idx[i] = nb.idx
		dist[i] = nb.dist
	}
	return idx, dist, nil
}

// Predict returns the weighted average of the k nearest targets.
func (r *Regressor) Predict(x []float64) float64 {
	idx, dist, err := r.Neighbors(x)
	if err != nil {
		return 0
	}
	if r.Weights == WeightUniform {
		var s float64
		for _, i := range idx {
			s += r.y[i]
		}
		return s / float64(len(idx))
	}
	// Inverse-distance weights; exact matches dominate (scikit-learn
	// semantics: if any neighbor is at distance 0, average those).
	var exactSum float64
	exactCnt := 0
	for k, d := range dist {
		if d == 0 {
			exactSum += r.y[idx[k]]
			exactCnt++
		}
	}
	if exactCnt > 0 {
		return exactSum / float64(exactCnt)
	}
	var num, den float64
	for k, d := range dist {
		w := 1 / d
		num += w * r.y[idx[k]]
		den += w
	}
	return num / den
}

var _ ml.Regressor = (*Regressor)(nil)
