package knn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func grid2D() ([][]float64, []float64) {
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {5, 5}}
	y := []float64{1, 2, 3, 4, 50}
	return X, y
}

func TestK1RecallsTrainingPoints(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64()
		}
		m := New(1, Euclidean)
		if err := m.Fit(X, y); err != nil {
			return false
		}
		for i := range X {
			got := m.Predict(X[i])
			// Duplicate points may average; accept any training target
			// at distance 0.
			ok := false
			for j := range X {
				if X[j][0] == X[i][0] && X[j][1] == X[i][1] && math.Abs(got-y[j]) < 1e-9 {
					ok = true
				}
			}
			// Averaged duplicates are fine too.
			if !ok && math.Abs(got-y[i]) > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExactMatchDominates(t *testing.T) {
	X, y := grid2D()
	m := New(3, Manhattan)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Predict([]float64{0, 0}); got != 1 {
		t.Fatalf("exact match Predict = %v, want 1", got)
	}
}

func TestUniformWeights(t *testing.T) {
	X, y := grid2D()
	m := &Regressor{K: 4, Metric: Manhattan, Weights: WeightUniform}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Query at the center of the unit square: 4 nearest are the corners.
	got := m.Predict([]float64{0.5, 0.5})
	if math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("uniform Predict = %v, want 2.5", got)
	}
}

func TestInverseDistanceWeighting(t *testing.T) {
	X := [][]float64{{0}, {3}}
	y := []float64{0, 1}
	m := New(2, Manhattan)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Query at 1: distances 1 and 2 → weights 1, 0.5 → (0*1+1*0.5)/1.5.
	got := m.Predict([]float64{1})
	want := 0.5 / 1.5
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted Predict = %v, want %v", got, want)
	}
}

func TestMetricsDiffer(t *testing.T) {
	// Points chosen so Manhattan and Euclidean rank neighbors differently.
	X := [][]float64{{2.2, 0}, {1.3, 1.3}, {9, 9}}
	y := []float64{1, 2, 99}
	man := New(1, Manhattan)
	euc := New(1, Euclidean)
	if err := man.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := euc.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := []float64{0, 0}
	// Manhattan: |2.2| = 2.2 vs 2.6 → picks y=1. Euclidean: 2.2 vs 1.84 → y=2.
	if got := man.Predict(q); got != 1 {
		t.Fatalf("manhattan pick = %v, want 1", got)
	}
	if got := euc.Predict(q); got != 2 {
		t.Fatalf("euclidean pick = %v, want 2", got)
	}
}

func TestMinkowskiGeneralizes(t *testing.T) {
	X, y := grid2D()
	m2 := &Regressor{K: 2, Metric: Minkowski, P: 2, Weights: WeightDistance}
	e := New(2, Euclidean)
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := []float64{0.2, 0.7}
	if math.Abs(m2.Predict(q)-e.Predict(q)) > 1e-12 {
		t.Fatal("minkowski p=2 must equal euclidean")
	}
}

func TestNeighborsSorted(t *testing.T) {
	X, y := grid2D()
	m := New(3, Euclidean)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	_, dist, err := m.Neighbors([]float64{0.1, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dist); i++ {
		if dist[i-1] > dist[i] {
			t.Fatalf("distances not ascending: %v", dist)
		}
	}
}

func TestValidation(t *testing.T) {
	X, y := grid2D()
	if err := New(0, Manhattan).Fit(X, y); err == nil {
		t.Fatal("k=0 must fail")
	}
	if err := New(99, Manhattan).Fit(X, y); err == nil {
		t.Fatal("k>n must fail")
	}
	bad := &Regressor{K: 1, Metric: Minkowski, P: 0}
	if err := bad.Fit(X, y); err == nil {
		t.Fatal("p=0 minkowski must fail")
	}
	m := New(1, Manhattan)
	if got := m.Predict([]float64{0, 0}); got != 0 {
		t.Fatalf("unfitted Predict = %v, want 0", got)
	}
	if _, _, err := m.Neighbors([]float64{0, 0}); err == nil {
		t.Fatal("unfitted Neighbors must fail")
	}
}

func TestFitCopiesData(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []float64{1, 2}
	m := New(1, Manhattan)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	X[0][0] = 99
	y[0] = 99
	if got := m.Predict([]float64{1}); got != 1 {
		t.Fatalf("model must be insulated from caller mutation, got %v", got)
	}
}

func TestMetricString(t *testing.T) {
	if Manhattan.String() != "manhattan" || Euclidean.String() != "euclidean" ||
		Minkowski.String() != "minkowski" || Metric(9).String() == "" {
		t.Fatal("Metric.String wrong")
	}
}
