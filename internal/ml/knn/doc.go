// Package knn implements the paper's k-Nearest Neighbors regressor
// (Section IV-B2): predictions are the inverse-distance weighted average of
// the k closest training points, under Manhattan, Euclidean or general
// Minkowski distance. The paper's tuned model is k=3 with Manhattan
// distance.
package knn
