package ensemble

import (
	"encoding/gob"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

func init() {
	gob.RegisterName("ffr/ensemble.RandomForest", &RandomForest{})
	gob.RegisterName("ffr/ensemble.GradientBoosting", &GradientBoosting{})
}

// forestState is the explicit wire format of a fitted random forest; the
// member trees serialize through tree.Regressor's own codec.
type forestState struct {
	Trees          int
	MaxDepth       int
	MinSamplesLeaf int
	FeatureFrac    float64
	Seed           int64
	Members        []*tree.Regressor
	Fitted         bool
}

// GobEncode exports the configuration and every member tree.
func (f *RandomForest) GobEncode() ([]byte, error) {
	return ml.GobState(forestState{
		Trees:          f.Trees,
		MaxDepth:       f.MaxDepth,
		MinSamplesLeaf: f.MinSamplesLeaf,
		FeatureFrac:    f.FeatureFrac,
		Seed:           f.Seed,
		Members:        f.members,
		Fitted:         f.fitted,
	})
}

// GobDecode restores a fitted random forest.
func (f *RandomForest) GobDecode(data []byte) error {
	var st forestState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	f.Trees = st.Trees
	f.MaxDepth = st.MaxDepth
	f.MinSamplesLeaf = st.MinSamplesLeaf
	f.FeatureFrac = st.FeatureFrac
	f.Seed = st.Seed
	f.members = st.Members
	f.fitted = st.Fitted
	return nil
}

// boostingState is the explicit wire format of a fitted gradient-boosting
// ensemble: configuration, base value, and the residual stage trees.
type boostingState struct {
	Stages         int
	LearningRate   float64
	MaxDepth       int
	MinSamplesLeaf int
	Subsample      float64
	Seed           int64
	Base           float64
	StageTrees     []*tree.Regressor
	Fitted         bool
}

// GobEncode exports the configuration, base value and stage trees.
func (g *GradientBoosting) GobEncode() ([]byte, error) {
	return ml.GobState(boostingState{
		Stages:         g.Stages,
		LearningRate:   g.LearningRate,
		MaxDepth:       g.MaxDepth,
		MinSamplesLeaf: g.MinSamplesLeaf,
		Subsample:      g.Subsample,
		Seed:           g.Seed,
		Base:           g.base,
		StageTrees:     g.stages,
		Fitted:         g.fitted,
	})
}

// GobDecode restores a fitted gradient-boosting ensemble.
func (g *GradientBoosting) GobDecode(data []byte) error {
	var st boostingState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	g.Stages = st.Stages
	g.LearningRate = st.LearningRate
	g.MaxDepth = st.MaxDepth
	g.MinSamplesLeaf = st.MinSamplesLeaf
	g.Subsample = st.Subsample
	g.Seed = st.Seed
	g.base = st.Base
	g.stages = st.StageTrees
	g.fitted = st.Fitted
	return nil
}
