// Package ensemble implements the boosting/bagging regressors the paper
// lists as future work (Section V): a random forest (bootstrap-aggregated
// CART trees with feature subsampling) and least-squares gradient boosting
// (shallow trees fitted to residuals with shrinkage).
package ensemble
