package ensemble

import (
	"fmt"
	"math/rand"

	"repro/internal/ml"
	"repro/internal/ml/tree"
)

// RandomForest averages bootstrap-trained CART trees.
type RandomForest struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds each tree (0 = unbounded).
	MaxDepth int
	// MinSamplesLeaf forwards to the base trees (default 1).
	MinSamplesLeaf int
	// FeatureFrac is the fraction of features examined per split
	// (default 1/3, the regression folklore default).
	FeatureFrac float64
	// Seed drives bootstrap sampling and feature subsampling.
	Seed int64

	members []*tree.Regressor
	fitted  bool
}

// NewForest returns a forest with the given size and depth bound.
func NewForest(trees, maxDepth int, seed int64) *RandomForest {
	return &RandomForest{Trees: trees, MaxDepth: maxDepth, Seed: seed}
}

// Fit trains every member on a bootstrap resample.
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	if f.Trees <= 0 {
		f.Trees = 100
	}
	if f.FeatureFrac <= 0 || f.FeatureFrac > 1 {
		f.FeatureFrac = 1.0 / 3
	}
	rng := rand.New(rand.NewSource(f.Seed))
	n := len(X)
	numFeat := len(X[0])
	subset := int(f.FeatureFrac * float64(numFeat))
	if subset < 1 {
		subset = 1
	}
	f.members = make([]*tree.Regressor, f.Trees)
	bx := make([][]float64, n)
	by := make([]float64, n)
	for t := 0; t < f.Trees; t++ {
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		treeRng := rand.New(rand.NewSource(rng.Int63()))
		member := &tree.Regressor{
			MaxDepth:       f.MaxDepth,
			MinSamplesLeaf: f.MinSamplesLeaf,
			FeatureOrder: func(nf int) []int {
				perm := treeRng.Perm(nf)
				return perm[:subset]
			},
		}
		if err := member.Fit(bx, by); err != nil {
			return fmt.Errorf("ml/ensemble: tree %d: %w", t, err)
		}
		f.members[t] = member
	}
	f.fitted = true
	return nil
}

// Predict averages the member predictions.
func (f *RandomForest) Predict(x []float64) float64 {
	if !f.fitted {
		return 0
	}
	var s float64
	for _, m := range f.members {
		s += m.Predict(x)
	}
	return s / float64(len(f.members))
}

// GradientBoosting fits shallow trees to residuals with shrinkage — the
// "boosting algorithms" the paper's future work names, in its least-squares
// form.
type GradientBoosting struct {
	// Stages is the number of boosting rounds (default 200).
	Stages int
	// LearningRate is the shrinkage factor (default 0.1).
	LearningRate float64
	// MaxDepth bounds each stage's tree (default 3).
	MaxDepth int
	// MinSamplesLeaf forwards to the stage trees (default 1).
	MinSamplesLeaf int
	// Subsample, in (0,1], trains each stage on a random row fraction
	// (stochastic gradient boosting); 1 uses all rows. Default 1.
	Subsample float64
	// Seed drives subsampling.
	Seed int64

	base   float64
	stages []*tree.Regressor
	fitted bool
}

// NewBoosting returns a boosted ensemble with the given configuration.
func NewBoosting(stages int, learningRate float64, maxDepth int) *GradientBoosting {
	return &GradientBoosting{Stages: stages, LearningRate: learningRate, MaxDepth: maxDepth}
}

// Fit runs the boosting iterations.
func (g *GradientBoosting) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	if g.Stages <= 0 {
		g.Stages = 200
	}
	if g.LearningRate <= 0 {
		g.LearningRate = 0.1
	}
	if g.MaxDepth <= 0 {
		g.MaxDepth = 3
	}
	if g.Subsample <= 0 || g.Subsample > 1 {
		g.Subsample = 1
	}
	rng := rand.New(rand.NewSource(g.Seed))
	n := len(X)

	var s float64
	for _, v := range y {
		s += v
	}
	g.base = s / float64(n)

	pred := make([]float64, n)
	for i := range pred {
		pred[i] = g.base
	}
	resid := make([]float64, n)
	g.stages = make([]*tree.Regressor, 0, g.Stages)
	rows := int(g.Subsample * float64(n))
	if rows < 1 {
		rows = 1
	}
	sx := make([][]float64, rows)
	sy := make([]float64, rows)
	for t := 0; t < g.Stages; t++ {
		for i := range resid {
			resid[i] = y[i] - pred[i]
		}
		stage := &tree.Regressor{MaxDepth: g.MaxDepth, MinSamplesLeaf: g.MinSamplesLeaf}
		if rows == n {
			if err := stage.Fit(X, resid); err != nil {
				return fmt.Errorf("ml/ensemble: stage %d: %w", t, err)
			}
		} else {
			for i := 0; i < rows; i++ {
				j := rng.Intn(n)
				sx[i] = X[j]
				sy[i] = resid[j]
			}
			if err := stage.Fit(sx, sy); err != nil {
				return fmt.Errorf("ml/ensemble: stage %d: %w", t, err)
			}
		}
		for i := range pred {
			pred[i] += g.LearningRate * stage.Predict(X[i])
		}
		g.stages = append(g.stages, stage)
	}
	g.fitted = true
	return nil
}

// Predict sums the base value and shrunken stage contributions.
func (g *GradientBoosting) Predict(x []float64) float64 {
	if !g.fitted {
		return 0
	}
	s := g.base
	for _, stage := range g.stages {
		s += g.LearningRate * stage.Predict(x)
	}
	return s
}

var (
	_ ml.Regressor = (*RandomForest)(nil)
	_ ml.Regressor = (*GradientBoosting)(nil)
)
