package ensemble

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/metrics"
	"repro/internal/ml/tree"
)

// friedmanLike generates a nonlinear regression problem.
func friedmanLike(rng *rand.Rand, n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = make([]float64, 5)
		for j := range X[i] {
			X[i][j] = rng.Float64()
		}
		y[i] = 10*math.Sin(math.Pi*X[i][0]*X[i][1]) +
			20*(X[i][2]-0.5)*(X[i][2]-0.5) + 10*X[i][3] + 5*X[i][4]
	}
	return X, y
}

func trainTestR2(t *testing.T, fit func(X [][]float64, y []float64) interface {
	Predict([]float64) float64
}) (float64, float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	X, y := friedmanLike(rng, 300)
	teX, teY := friedmanLike(rng, 100)
	m := fit(X, y)
	trHat := make([]float64, len(X))
	for i := range X {
		trHat[i] = m.Predict(X[i])
	}
	teHat := make([]float64, len(teX))
	for i := range teX {
		teHat[i] = m.Predict(teX[i])
	}
	return metrics.R2(y, trHat), metrics.R2(teY, teHat)
}

func TestForestBeatsStump(t *testing.T) {
	_, forestTest := trainTestR2(t, func(X [][]float64, y []float64) interface {
		Predict([]float64) float64
	} {
		f := NewForest(60, 8, 1)
		if err := f.Fit(X, y); err != nil {
			t.Fatalf("forest Fit: %v", err)
		}
		return f
	})
	_, stumpTest := trainTestR2(t, func(X [][]float64, y []float64) interface {
		Predict([]float64) float64
	} {
		s := tree.New(1)
		if err := s.Fit(X, y); err != nil {
			t.Fatalf("stump Fit: %v", err)
		}
		return s
	})
	if forestTest < 0.7 {
		t.Fatalf("forest test R² = %v, want > 0.7", forestTest)
	}
	if forestTest <= stumpTest {
		t.Fatalf("forest (%v) must beat a stump (%v)", forestTest, stumpTest)
	}
}

func TestBoostingBeatsStump(t *testing.T) {
	_, boostTest := trainTestR2(t, func(X [][]float64, y []float64) interface {
		Predict([]float64) float64
	} {
		g := NewBoosting(150, 0.1, 3)
		if err := g.Fit(X, y); err != nil {
			t.Fatalf("boosting Fit: %v", err)
		}
		return g
	})
	if boostTest < 0.85 {
		t.Fatalf("boosting test R² = %v, want > 0.85", boostTest)
	}
}

func TestBoostingMoreStagesFitTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X, y := friedmanLike(rng, 150)
	prev := math.Inf(1)
	for _, stages := range []int{5, 25, 100} {
		g := NewBoosting(stages, 0.2, 3)
		if err := g.Fit(X, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		yhat := make([]float64, len(X))
		for i := range X {
			yhat[i] = g.Predict(X[i])
		}
		rmse := metrics.RMSE(y, yhat)
		if rmse > prev+1e-9 {
			t.Fatalf("%d stages RMSE %v worse than fewer (%v)", stages, rmse, prev)
		}
		prev = rmse
	}
}

func TestForestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	X, y := friedmanLike(rng, 80)
	a, b := NewForest(10, 5, 42), NewForest(10, 5, 42)
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	q := X[3]
	if a.Predict(q) != b.Predict(q) {
		t.Fatal("same seed must give identical forests")
	}
	c := NewForest(10, 5, 43)
	if err := c.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.Predict(q) == c.Predict(q) {
		t.Log("different seed gave same prediction (possible but unlikely)")
	}
}

func TestSubsampledBoosting(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	X, y := friedmanLike(rng, 120)
	g := &GradientBoosting{Stages: 80, LearningRate: 0.1, MaxDepth: 3, Subsample: 0.5, Seed: 1}
	if err := g.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	yhat := make([]float64, len(X))
	for i := range X {
		yhat[i] = g.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 < 0.8 {
		t.Fatalf("stochastic boosting R² = %v, want > 0.8", r2)
	}
}

func TestEnsembleValidation(t *testing.T) {
	if err := NewForest(5, 2, 1).Fit(nil, nil); err == nil {
		t.Fatal("forest empty data must fail")
	}
	if err := NewBoosting(5, 0.1, 2).Fit(nil, nil); err == nil {
		t.Fatal("boosting empty data must fail")
	}
	f := NewForest(5, 2, 1)
	if got := f.Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted forest Predict = %v", got)
	}
	g := NewBoosting(5, 0.1, 2)
	if got := g.Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted boosting Predict = %v", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	X, y := friedmanLike(rng, 30)
	f := &RandomForest{} // all defaults
	if err := f.Fit(X, y); err != nil {
		t.Fatalf("default forest Fit: %v", err)
	}
	if f.Trees != 100 {
		t.Fatalf("default Trees = %d, want 100", f.Trees)
	}
	g := &GradientBoosting{}
	if err := g.Fit(X, y); err != nil {
		t.Fatalf("default boosting Fit: %v", err)
	}
	if g.Stages != 200 || g.LearningRate != 0.1 || g.MaxDepth != 3 {
		t.Fatalf("boosting defaults wrong: %+v", g)
	}
}
