package ml

import (
	"fmt"

	"repro/internal/mat"
)

// PCA is principal component analysis — the dimensionality reduction the
// paper's future work calls for to "avoid the curse of dimensionality"
// (Section V). Fit learns the component basis from training data;
// Transform projects rows onto the leading components.
type PCA struct {
	// Components is the number of dimensions to keep; 0 keeps all.
	Components int

	mean     []float64
	basis    *mat.Matrix // columns = principal axes (feature-space)
	variance []float64   // eigenvalues (descending)
	fitted   bool
}

// NewPCA returns a PCA keeping k components.
func NewPCA(k int) *PCA { return &PCA{Components: k} }

// Fit computes the covariance eigendecomposition of X.
func (p *PCA) Fit(X [][]float64) error {
	if len(X) < 2 || len(X[0]) == 0 {
		return fmt.Errorf("%w: PCA needs at least 2 samples", ErrBadData)
	}
	d := len(X[0])
	if p.Components < 0 || p.Components > d {
		return fmt.Errorf("%w: PCA components %d out of [0,%d]", ErrBadData, p.Components, d)
	}
	p.mean = make([]float64, d)
	for _, row := range X {
		if len(row) != d {
			return fmt.Errorf("%w: ragged matrix", ErrBadData)
		}
		for j, v := range row {
			p.mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range p.mean {
		p.mean[j] /= n
	}
	cov := mat.New(d, d)
	for _, row := range X {
		for i := 0; i < d; i++ {
			di := row[i] - p.mean[i]
			for j := i; j < d; j++ {
				cov.Set(i, j, cov.At(i, j)+di*(row[j]-p.mean[j]))
			}
		}
	}
	for i := 0; i < d; i++ {
		for j := i; j < d; j++ {
			v := cov.At(i, j) / (n - 1)
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	values, vectors, err := mat.SymEigen(cov)
	if err != nil {
		return fmt.Errorf("ml: PCA: %w", err)
	}
	p.variance = values
	p.basis = vectors
	p.fitted = true
	return nil
}

func (p *PCA) keep() int {
	if p.Components == 0 {
		return len(p.variance)
	}
	return p.Components
}

// TransformRow projects one row onto the leading components.
func (p *PCA) TransformRow(x []float64) []float64 {
	k := p.keep()
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		var s float64
		for j := range x {
			s += (x[j] - p.mean[j]) * p.basis.At(j, c)
		}
		out[c] = s
	}
	return out
}

// Transform projects every row.
func (p *PCA) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = p.TransformRow(row)
	}
	return out
}

// ExplainedVarianceRatio returns, per kept component, the fraction of total
// variance it carries.
func (p *PCA) ExplainedVarianceRatio() []float64 {
	var total float64
	for _, v := range p.variance {
		total += v
	}
	k := p.keep()
	out := make([]float64, k)
	if total == 0 {
		return out
	}
	for i := 0; i < k; i++ {
		out[i] = p.variance[i] / total
	}
	return out
}

var _ Scaler = (*PCA)(nil)
