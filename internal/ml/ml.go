package ml

import (
	"errors"
	"fmt"
)

// ErrNotFitted is returned by Predict before a successful Fit.
var ErrNotFitted = errors.New("ml: model not fitted")

// ErrBadData is returned for malformed training data.
var ErrBadData = errors.New("ml: bad data")

// Regressor is the supervised regression contract: learn a mapping from
// feature vectors to a continuous target, then predict on new vectors.
// Predict on an unfitted model returns NaN-free garbage only if the
// implementation documents it; callers should Fit first.
type Regressor interface {
	// Fit trains on rows X with targets y (len(X) == len(y), all rows
	// equally wide). Implementations must copy what they need; callers
	// may reuse the slices.
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	//
	// Concurrency contract: once Fit has returned, the fitted state is
	// read-only and Predict must be safe to call from multiple goroutines
	// simultaneously (the prediction service and the parallel batch
	// evaluators rely on this). Fit itself is not safe to run concurrently
	// with Predict on the same instance.
	Predict(x []float64) float64
}

// Factory creates fresh, identically configured models; cross-validation
// trains one instance per fold.
type Factory func() Regressor

// PredictAll runs Predict over every row.
func PredictAll(m Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}

// CheckXY validates training data shape.
func CheckXY(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("%w: empty training set", ErrBadData)
	}
	if len(X) != len(y) {
		return fmt.Errorf("%w: %d rows vs %d targets", ErrBadData, len(X), len(y))
	}
	w := len(X[0])
	if w == 0 {
		return fmt.Errorf("%w: zero-width rows", ErrBadData)
	}
	for i, row := range X {
		if len(row) != w {
			return fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadData, i, len(row), w)
		}
	}
	return nil
}

// Gather selects rows of X (and entries of y) by index.
func Gather(X [][]float64, y []float64, idx []int) ([][]float64, []float64) {
	gx := make([][]float64, len(idx))
	gy := make([]float64, len(idx))
	for k, i := range idx {
		gx[k] = X[i]
		gy[k] = y[i]
	}
	return gx, gy
}
