package ml

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestCheckXY(t *testing.T) {
	if err := CheckXY(nil, nil); !errors.Is(err, ErrBadData) {
		t.Fatal("empty must fail")
	}
	if err := CheckXY([][]float64{{1}}, []float64{1, 2}); !errors.Is(err, ErrBadData) {
		t.Fatal("length mismatch must fail")
	}
	if err := CheckXY([][]float64{{1}, {1, 2}}, []float64{1, 2}); !errors.Is(err, ErrBadData) {
		t.Fatal("ragged must fail")
	}
	if err := CheckXY([][]float64{{}}, []float64{1}); !errors.Is(err, ErrBadData) {
		t.Fatal("zero width must fail")
	}
	if err := CheckXY([][]float64{{1, 2}, {3, 4}}, []float64{1, 2}); err != nil {
		t.Fatalf("valid data rejected: %v", err)
	}
}

func TestGather(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{10, 20, 30}
	gx, gy := Gather(X, y, []int{2, 0})
	if gx[0][0] != 3 || gx[1][0] != 1 || gy[0] != 30 || gy[1] != 10 {
		t.Fatalf("gather wrong: %v %v", gx, gy)
	}
}

func TestStandardScaler(t *testing.T) {
	X := [][]float64{{1, 10, 5}, {3, 10, 7}, {5, 10, 9}}
	var s StandardScaler
	if err := s.Fit(X); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out := s.Transform(X)
	// Column 0: mean 3, std sqrt(8/3).
	for j := 0; j < 3; j++ {
		var mean float64
		for i := range out {
			mean += out[i][j]
		}
		if math.Abs(mean) > 1e-12 {
			t.Fatalf("column %d mean = %v, want 0", j, mean/3)
		}
	}
	// Constant column must not blow up.
	if out[0][1] != 0 || out[2][1] != 0 {
		t.Fatalf("constant column transformed to %v", out[0][1])
	}
	// Unit variance on varying columns.
	var ss float64
	for i := range out {
		ss += out[i][0] * out[i][0]
	}
	if math.Abs(ss/3-1) > 1e-12 {
		t.Fatalf("column 0 variance = %v, want 1", ss/3)
	}
	// Original data untouched.
	if X[0][0] != 1 {
		t.Fatal("Transform must not modify input")
	}
}

func TestStandardScalerErrors(t *testing.T) {
	var s StandardScaler
	if err := s.Fit(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if err := s.Fit([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged must fail")
	}
}

func TestMinMaxScaler(t *testing.T) {
	X := [][]float64{{0, 5}, {10, 5}}
	var s MinMaxScaler
	if err := s.Fit(X); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out := s.Transform([][]float64{{5, 5}, {0, 5}, {10, 5}})
	if out[0][0] != 0.5 || out[1][0] != 0 || out[2][0] != 1 {
		t.Fatalf("minmax wrong: %v", out)
	}
	if out[0][1] != 0 {
		t.Fatalf("constant column must map to 0, got %v", out[0][1])
	}
	if err := s.Fit(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if err := s.Fit([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged must fail")
	}
}

// Property: standard scaling is idempotent on already-scaled data.
func TestStandardScalerIdempotent(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 3+rng.Intn(20), 1+rng.Intn(5)
		X := make([][]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()*5 + 3
			}
		}
		var s1 StandardScaler
		if err := s1.Fit(X); err != nil {
			return false
		}
		once := s1.Transform(X)
		var s2 StandardScaler
		if err := s2.Fit(once); err != nil {
			return false
		}
		twice := s2.Transform(once)
		for i := range once {
			for j := range once[i] {
				if math.Abs(once[i][j]-twice[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainTestSplit(t *testing.T) {
	sp, err := TrainTestSplit(10, 0.5, 1)
	if err != nil {
		t.Fatalf("TrainTestSplit: %v", err)
	}
	if len(sp.Train) != 5 || len(sp.Test) != 5 {
		t.Fatalf("split sizes %d/%d", len(sp.Train), len(sp.Test))
	}
	seen := map[int]bool{}
	for _, i := range append(append([]int{}, sp.Train...), sp.Test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Fatal("split must cover all indices")
	}
	if _, err := TrainTestSplit(1, 0.5, 1); err == nil {
		t.Fatal("n=1 must fail")
	}
	if _, err := TrainTestSplit(10, 0, 1); err == nil {
		t.Fatal("frac=0 must fail")
	}
	if _, err := TrainTestSplit(10, 1, 1); err == nil {
		t.Fatal("frac=1 must fail")
	}
}

func TestKFoldSplits(t *testing.T) {
	splits, err := KFoldSplits(10, 3, 2)
	if err != nil {
		t.Fatalf("KFoldSplits: %v", err)
	}
	if len(splits) != 3 {
		t.Fatalf("folds = %d", len(splits))
	}
	testCount := map[int]int{}
	for _, sp := range splits {
		if len(sp.Train)+len(sp.Test) != 10 {
			t.Fatal("fold must cover all samples")
		}
		for _, i := range sp.Test {
			testCount[i]++
		}
	}
	for i := 0; i < 10; i++ {
		if testCount[i] != 1 {
			t.Fatalf("index %d tested %d times, want 1", i, testCount[i])
		}
	}
	if _, err := KFoldSplits(3, 5, 1); err == nil {
		t.Fatal("k>n must fail")
	}
	if _, err := KFoldSplits(10, 1, 1); err == nil {
		t.Fatal("k=1 must fail")
	}
}

func TestStratifiedShuffleSplits(t *testing.T) {
	// Bimodal target: half at 0, half at 1.
	y := make([]float64, 40)
	for i := 20; i < 40; i++ {
		y[i] = 1
	}
	splits, err := StratifiedShuffleSplits(y, 10, 0.5, 4, 7)
	if err != nil {
		t.Fatalf("StratifiedShuffleSplits: %v", err)
	}
	if len(splits) != 10 {
		t.Fatalf("splits = %d", len(splits))
	}
	for si, sp := range splits {
		if len(sp.Train)+len(sp.Test) != 40 {
			t.Fatalf("split %d loses samples", si)
		}
		// Stratification: training set must hold ~half of each mode.
		var lowTrain, highTrain int
		for _, i := range sp.Train {
			if y[i] == 0 {
				lowTrain++
			} else {
				highTrain++
			}
		}
		if lowTrain < 8 || lowTrain > 12 || highTrain < 8 || highTrain > 12 {
			t.Fatalf("split %d unbalanced: low=%d high=%d", si, lowTrain, highTrain)
		}
	}
}

func TestStratifiedShuffleSplitsErrors(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if _, err := StratifiedShuffleSplits(y[:1], 2, 0.5, 2, 1); err == nil {
		t.Fatal("n<2 must fail")
	}
	if _, err := StratifiedShuffleSplits(y, 0, 0.5, 2, 1); err == nil {
		t.Fatal("nSplits=0 must fail")
	}
	if _, err := StratifiedShuffleSplits(y, 2, 0, 2, 1); err == nil {
		t.Fatal("frac=0 must fail")
	}
	if _, err := StratifiedShuffleSplits(y, 2, 0.5, 0, 1); err == nil {
		t.Fatal("bins=0 must fail")
	}
	// bins > n is clamped, not an error.
	if _, err := StratifiedShuffleSplits(y, 2, 0.5, 100, 1); err != nil {
		t.Fatalf("bins>n must clamp: %v", err)
	}
}

func TestStratifiedKFoldSplits(t *testing.T) {
	y := make([]float64, 30)
	for i := range y {
		y[i] = float64(i)
	}
	splits, err := StratifiedKFoldSplits(y, 5, 5, 3)
	if err != nil {
		t.Fatalf("StratifiedKFoldSplits: %v", err)
	}
	testCount := map[int]int{}
	for _, sp := range splits {
		for _, i := range sp.Test {
			testCount[i]++
		}
	}
	for i := range y {
		if testCount[i] != 1 {
			t.Fatalf("index %d tested %d times", i, testCount[i])
		}
	}
	if _, err := StratifiedKFoldSplits(y, 1, 5, 3); err == nil {
		t.Fatal("k=1 must fail")
	}
	if _, err := StratifiedKFoldSplits(y, 5, 0, 3); err == nil {
		t.Fatal("bins=0 must fail")
	}
}

func TestTargetBins(t *testing.T) {
	y := []float64{5, 1, 3, 2, 4} // ranks: 4,0,2,1,3
	bins := targetBins(y, 5)
	want := []int{4, 0, 2, 1, 3}
	for i := range want {
		if bins[i] != want[i] {
			t.Fatalf("bins = %v, want %v", bins, want)
		}
	}
	// Two bins split low/high halves.
	b2 := targetBins(y, 2)
	sort.Ints(b2)
	if b2[0] != 0 || b2[4] != 1 {
		t.Fatalf("2-bin split wrong: %v", b2)
	}
}

// fakeModel predicts a constant; used to test Pipeline wiring.
type fakeModel struct {
	fitRows int
	sawX    [][]float64
}

func (f *fakeModel) Fit(X [][]float64, y []float64) error {
	f.fitRows = len(X)
	f.sawX = X
	return nil
}
func (f *fakeModel) Predict(x []float64) float64 { return x[0] }

func TestPipelineScalesBeforeModel(t *testing.T) {
	fm := &fakeModel{}
	p := &Pipeline{Scaler: &StandardScaler{}, Model: fm}
	X := [][]float64{{10}, {20}, {30}}
	y := []float64{1, 2, 3}
	if err := p.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if fm.fitRows != 3 {
		t.Fatal("model not fitted")
	}
	// The model must have seen standardized rows (mean 0).
	var mean float64
	for _, r := range fm.sawX {
		mean += r[0]
	}
	if math.Abs(mean) > 1e-12 {
		t.Fatalf("model saw unscaled data, mean=%v", mean)
	}
	// Predict(20) (the column mean) → standardized 0.
	if got := p.Predict([]float64{20}); math.Abs(got) > 1e-12 {
		t.Fatalf("Predict = %v, want 0", got)
	}
}

func TestPipelineNilScaler(t *testing.T) {
	fm := &fakeModel{}
	p := &Pipeline{Model: fm}
	if err := p.Fit([][]float64{{7}}, []float64{1}); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := p.Predict([]float64{7}); got != 7 {
		t.Fatalf("Predict = %v, want passthrough 7", got)
	}
}

func TestPredictAll(t *testing.T) {
	fm := &fakeModel{}
	out := PredictAll(fm, [][]float64{{1}, {2}})
	if out[0] != 1 || out[1] != 2 {
		t.Fatalf("PredictAll = %v", out)
	}
}
