package ml

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob serialization of the scalers and the pipeline, the glue that lets a
// fitted model leave the process that trained it (internal/persist wraps
// this in the versioned artifact format). Every learned field — including
// the unexported ones — is mirrored into an exported state struct, so the
// wire format is explicit and survives refactors of the in-memory layout.
// Floats travel as raw IEEE-754 bits under gob, which is what makes
// save → load → Predict bit-identical.
//
// The concrete types are registered under stable names (not Go import
// paths) so artifacts remain readable if packages move. Interface-typed
// fields (Pipeline.Scaler, Pipeline.Model) decode only when the concrete
// type's package has been linked in; internal/persist imports every model
// package and is the intended entry point.

func init() {
	gob.RegisterName("ffr/ml.StandardScaler", &StandardScaler{})
	gob.RegisterName("ffr/ml.MinMaxScaler", &MinMaxScaler{})
	gob.RegisterName("ffr/ml.Pipeline", &Pipeline{})
}

// GobState encodes any exported state struct into a gob byte slice; the
// model packages share it to keep their GobEncode implementations uniform.
func GobState(state any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(state); err != nil {
		return nil, fmt.Errorf("ml: encoding state: %w", err)
	}
	return buf.Bytes(), nil
}

// UngobState decodes a GobState byte slice back into the state struct.
func UngobState(data []byte, state any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(state); err != nil {
		return fmt.Errorf("ml: decoding state: %w", err)
	}
	return nil
}

type standardScalerState struct {
	Mean  []float64
	Scale []float64
}

// GobEncode exports the learned column statistics.
func (s *StandardScaler) GobEncode() ([]byte, error) {
	return GobState(standardScalerState{Mean: s.mean, Scale: s.scale})
}

// GobDecode restores the learned column statistics.
func (s *StandardScaler) GobDecode(data []byte) error {
	var st standardScalerState
	if err := UngobState(data, &st); err != nil {
		return err
	}
	s.mean, s.scale = st.Mean, st.Scale
	return nil
}

type minMaxScalerState struct {
	Min  []float64
	Span []float64
}

// GobEncode exports the learned column ranges.
func (s *MinMaxScaler) GobEncode() ([]byte, error) {
	return GobState(minMaxScalerState{Min: s.min, Span: s.span})
}

// GobDecode restores the learned column ranges.
func (s *MinMaxScaler) GobDecode(data []byte) error {
	var st minMaxScalerState
	if err := UngobState(data, &st); err != nil {
		return err
	}
	s.min, s.span = st.Min, st.Span
	return nil
}

type pipelineState struct {
	Scaler Scaler
	Model  Regressor
	Fitted bool
}

// GobEncode serializes the scaler, the wrapped model and the fitted flag.
// The concrete scaler and model types must be gob-registered; the built-in
// ones register themselves in their package init.
func (p *Pipeline) GobEncode() ([]byte, error) {
	return GobState(pipelineState{Scaler: p.Scaler, Model: p.Model, Fitted: p.fitted})
}

// GobDecode restores the pipeline.
func (p *Pipeline) GobDecode(data []byte) error {
	var st pipelineState
	if err := UngobState(data, &st); err != nil {
		return err
	}
	p.Scaler, p.Model, p.fitted = st.Scaler, st.Model, st.Fitted
	return nil
}
