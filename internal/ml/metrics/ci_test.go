package metrics

import (
	"math"
	"testing"
)

func TestMeanCIEmpty(t *testing.T) {
	mean, lo, hi := MeanCI(nil, 1.96)
	if !math.IsNaN(mean) {
		t.Errorf("mean of empty sample = %v, want NaN", mean)
	}
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("CI of empty sample = (%v, %v), want (-Inf, +Inf)", lo, hi)
	}
}

func TestMeanCISingleton(t *testing.T) {
	mean, lo, hi := MeanCI([]float64{0.25}, 1.96)
	if mean != 0.25 {
		t.Errorf("mean = %v, want 0.25", mean)
	}
	if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
		t.Errorf("CI of singleton = (%v, %v), want (-Inf, +Inf): one sample must not look converged", lo, hi)
	}
}

func TestMeanCIAllEqual(t *testing.T) {
	mean, lo, hi := MeanCI([]float64{0.5, 0.5, 0.5, 0.5}, 1.96)
	if mean != 0.5 || lo != 0.5 || hi != 0.5 {
		t.Errorf("all-equal sample: mean=%v CI=(%v, %v), want the interval collapsed at 0.5", mean, lo, hi)
	}
}

func TestMeanCIKnownValue(t *testing.T) {
	// Sample {0, 1}: mean 0.5, s = √0.5, margin = z·s/√2 = z/2.
	mean, lo, hi := MeanCI([]float64{0, 1}, 1.96)
	if mean != 0.5 {
		t.Errorf("mean = %v, want 0.5", mean)
	}
	if want := 0.5 - 0.98; math.Abs(lo-want) > 1e-12 {
		t.Errorf("lo = %v, want %v", lo, want)
	}
	if want := 0.5 + 0.98; math.Abs(hi-want) > 1e-12 {
		t.Errorf("hi = %v, want %v", hi, want)
	}
}

func TestMeanCIWidthShrinksWithN(t *testing.T) {
	small := []float64{0, 1, 0, 1}
	large := make([]float64, 64)
	for i := range large {
		large[i] = float64(i % 2)
	}
	_, lo1, hi1 := MeanCI(small, 1.96)
	_, lo2, hi2 := MeanCI(large, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("width did not shrink with n: %v (n=4) vs %v (n=64)", hi1-lo1, hi2-lo2)
	}
}
