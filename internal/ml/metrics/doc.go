// Package metrics implements the paper's regression evaluation metrics
// (Section III-C, Equations 1-5): Mean Absolute Error, Maximum Absolute
// Error, Root Mean Squared Error, Explained Variance and the Coefficient of
// Determination R².
package metrics
