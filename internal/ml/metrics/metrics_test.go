package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestMAE(t *testing.T) {
	y := []float64{1, 2, 3}
	yhat := []float64{2, 2, 1}
	if got := MAE(y, yhat); !almost(got, 1) {
		t.Fatalf("MAE = %v, want 1", got)
	}
}

func TestMaxAbs(t *testing.T) {
	if got := MaxAbs([]float64{1, 5, 3}, []float64{1, 1, 4}); !almost(got, 4) {
		t.Fatalf("MaxAbs = %v, want 4", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almost(got, math.Sqrt(12.5)) {
		t.Fatalf("RMSE = %v, want sqrt(12.5)", got)
	}
}

func TestPerfectPrediction(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	s := Evaluate(y, y)
	if s.MAE != 0 || s.MAX != 0 || s.RMSE != 0 || s.EV != 1 || s.R2 != 1 {
		t.Fatalf("perfect prediction scores = %+v", s)
	}
}

func TestMeanPredictorR2Zero(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); !almost(got, 0) {
		t.Fatalf("R2(mean) = %v, want 0", got)
	}
	if got := ExplainedVariance(y, mean); !almost(got, 0) {
		t.Fatalf("EV(mean) = %v, want 0", got)
	}
}

func TestR2CanBeNegative(t *testing.T) {
	y := []float64{1, 2, 3}
	bad := []float64{10, -10, 10}
	if got := R2(y, bad); got >= 0 {
		t.Fatalf("R2 of terrible model = %v, want negative", got)
	}
}

func TestConstantTruth(t *testing.T) {
	y := []float64{2, 2, 2}
	if got := R2(y, y); got != 1 {
		t.Fatalf("R2 constant exact = %v", got)
	}
	if got := R2(y, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("R2 constant inexact = %v", got)
	}
	if got := ExplainedVariance(y, y); got != 1 {
		t.Fatalf("EV constant exact = %v", got)
	}
	if got := ExplainedVariance(y, []float64{1, 2, 3}); got != 0 {
		t.Fatalf("EV constant inexact = %v", got)
	}
}

// TestBiasGapBetweenEVAndR2 pins the defining difference of Eq. 4 vs Eq. 5:
// a constant bias leaves EV untouched but hurts R².
func TestBiasGapBetweenEVAndR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	biased := []float64{2, 3, 4, 5}
	if got := ExplainedVariance(y, biased); !almost(got, 1) {
		t.Fatalf("EV(biased) = %v, want 1", got)
	}
	if got := R2(y, biased); got >= 0.99 {
		t.Fatalf("R2(biased) = %v, want < 1", got)
	}
}

func TestPanicsOnBadLengths(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAE([]float64{1}, []float64{1, 2})
}

// Properties that hold for any prediction vector:
// RMSE ≥ MAE, MAX ≥ MAE, EV ≥ R2, R2 ≤ 1, EV ≤ 1.
func TestMetricInequalities(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		y := make([]float64, n)
		yhat := make([]float64, n)
		for i := range y {
			y[i] = rng.NormFloat64()
			yhat[i] = rng.NormFloat64()
		}
		s := Evaluate(y, yhat)
		const tol = 1e-12
		if s.RMSE < s.MAE-tol {
			return false
		}
		if s.MAX < s.MAE-tol {
			return false
		}
		if s.R2 > 1+tol || s.EV > 1+tol {
			return false
		}
		// EV − R2 = mean(residual)² / Var(y) ≥ 0.
		return s.EV >= s.R2-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScoresAddScaleString(t *testing.T) {
	a := Scores{MAE: 1, MAX: 2, RMSE: 3, EV: 4, R2: 5}
	b := a.Add(a).Scale(0.5)
	if b != a {
		t.Fatalf("Add/Scale roundtrip = %+v", b)
	}
	if !strings.Contains(a.String(), "MAE=") {
		t.Fatal("String missing fields")
	}
}

// Table I sanity: metrics computed on the paper's example orderings behave
// as documented ("values closer to zero are better" vs "best value 1").
func TestDirectionality(t *testing.T) {
	y := []float64{0, 0.5, 1, 0.2, 0.9}
	good := []float64{0.05, 0.45, 0.95, 0.25, 0.85}
	bad := []float64{0.9, 0.1, 0.2, 0.8, 0.1}
	sg, sb := Evaluate(y, good), Evaluate(y, bad)
	if sg.MAE >= sb.MAE || sg.RMSE >= sb.RMSE || sg.MAX >= sb.MAX {
		t.Fatal("error metrics must rank good < bad")
	}
	if sg.R2 <= sb.R2 || sg.EV <= sb.EV {
		t.Fatal("score metrics must rank good > bad")
	}
}
