package metrics

import "math"

// MeanCI returns the sample mean of xs together with its normal-approximation
// confidence interval at critical value z (z = 1.96 for 95 %):
// mean ± z·s/√n with s the sample standard deviation (n−1 denominator).
//
// The adaptive campaign planner uses the interval width as a convergence
// criterion, so the edge cases are defined conservatively — they must never
// report false certainty:
//
//   - n == 0: mean is NaN and the interval is (-Inf, +Inf).
//   - n == 1: the mean is exact but the spread is unknowable; the interval
//     is (-Inf, +Inf).
//   - all values equal (s == 0): the interval collapses to [mean, mean].
func MeanCI(xs []float64, z float64) (mean, lo, hi float64) {
	n := float64(len(xs))
	if len(xs) == 0 {
		return math.NaN(), math.Inf(-1), math.Inf(1)
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean = sum / n
	if len(xs) < 2 {
		return mean, math.Inf(-1), math.Inf(1)
	}
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	margin := z * math.Sqrt(ss/(n-1)) / math.Sqrt(n)
	return mean, mean - margin, mean + margin
}
