package metrics

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestKendallTauPerfectOrders(t *testing.T) {
	y := []float64{0.1, 0.2, 0.3, 0.4}
	if got := KendallTau(y, []float64{1, 2, 3, 4}); !almostEq(got, 1) {
		t.Errorf("concordant tau = %v, want 1", got)
	}
	if got := KendallTau(y, []float64{4, 3, 2, 1}); !almostEq(got, -1) {
		t.Errorf("reversed tau = %v, want -1", got)
	}
}

func TestKendallTauConstantSide(t *testing.T) {
	y := []float64{1, 2, 3}
	if got := KendallTau(y, []float64{5, 5, 5}); got != 0 {
		t.Errorf("constant prediction tau = %v, want 0", got)
	}
	if got := KendallTau([]float64{7, 7, 7}, y); got != 0 {
		t.Errorf("constant truth tau = %v, want 0", got)
	}
}

func TestKendallTauTieCorrection(t *testing.T) {
	// y: one tie (pairs: 6 total, 1 tied in y). yhat strictly increasing.
	y := []float64{1, 1, 2, 3}
	yhat := []float64{1, 2, 3, 4}
	// Pairs: (0,1) tie in y; the other 5 concordant.
	// tau-b = 5 / sqrt((5+0+1)*(5+0+0)) = 5/sqrt(30)
	want := 5 / math.Sqrt(30)
	if got := KendallTau(y, yhat); !almostEq(got, want) {
		t.Errorf("tau-b = %v, want %v", got, want)
	}
}

func TestKendallTauSingleton(t *testing.T) {
	// n = 1: no pairs at all, so there is no rank information — 0, not a
	// panic. The planner's convergence bookkeeping hits this on the first
	// round of a one-FF pool.
	if got := KendallTau([]float64{0.5}, []float64{0.9}); got != 0 {
		t.Errorf("singleton tau = %v, want 0", got)
	}
}

func TestKendallTauAllTied(t *testing.T) {
	// Every pair tied on both sides: neither concordance nor rank
	// information exists on either side.
	y := []float64{0.5, 0.5, 0.5}
	if got := KendallTau(y, y); got != 0 {
		t.Errorf("all-tied tau = %v, want 0", got)
	}
}

func TestKendallTauAllEqualPredictions(t *testing.T) {
	// A model predicting one constant for a varying truth has preserved no
	// ordering whatsoever — exactly 0, even though the truth has full rank
	// information.
	y := []float64{0.1, 0.4, 0.2, 0.9}
	if got := KendallTau(y, []float64{0.3, 0.3, 0.3, 0.3}); got != 0 {
		t.Errorf("all-equal-prediction tau = %v, want 0", got)
	}
}

func TestKendallTauTiesBothSides(t *testing.T) {
	// One pair tied in y only, one tied in yhat only, rest concordant:
	// y: {1,1,2,3}, yhat: {1,2,3,3}.
	// Pairs: (0,1) tie in y; (2,3) tie in yhat; other 4 concordant.
	// tau-b = 4 / sqrt((4+0+1)*(4+0+1)) = 4/5.
	y := []float64{1, 1, 2, 3}
	yhat := []float64{1, 2, 3, 3}
	if got, want := KendallTau(y, yhat), 0.8; !almostEq(got, want) {
		t.Errorf("tau-b with ties on both sides = %v, want %v", got, want)
	}
}

func TestKendallTauMixed(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	yhat := []float64{1, 3, 2, 4}
	// 5 concordant, 1 discordant → (5-1)/6
	want := 4.0 / 6.0
	if got := KendallTau(y, yhat); !almostEq(got, want) {
		t.Errorf("tau = %v, want %v", got, want)
	}
}
