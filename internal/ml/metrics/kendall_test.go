package metrics

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestKendallTauPerfectOrders(t *testing.T) {
	y := []float64{0.1, 0.2, 0.3, 0.4}
	if got := KendallTau(y, []float64{1, 2, 3, 4}); !almostEq(got, 1) {
		t.Errorf("concordant tau = %v, want 1", got)
	}
	if got := KendallTau(y, []float64{4, 3, 2, 1}); !almostEq(got, -1) {
		t.Errorf("reversed tau = %v, want -1", got)
	}
}

func TestKendallTauConstantSide(t *testing.T) {
	y := []float64{1, 2, 3}
	if got := KendallTau(y, []float64{5, 5, 5}); got != 0 {
		t.Errorf("constant prediction tau = %v, want 0", got)
	}
	if got := KendallTau([]float64{7, 7, 7}, y); got != 0 {
		t.Errorf("constant truth tau = %v, want 0", got)
	}
}

func TestKendallTauTieCorrection(t *testing.T) {
	// y: one tie (pairs: 6 total, 1 tied in y). yhat strictly increasing.
	y := []float64{1, 1, 2, 3}
	yhat := []float64{1, 2, 3, 4}
	// Pairs: (0,1) tie in y; the other 5 concordant.
	// tau-b = 5 / sqrt((5+0+1)*(5+0+0)) = 5/sqrt(30)
	want := 5 / math.Sqrt(30)
	if got := KendallTau(y, yhat); !almostEq(got, want) {
		t.Errorf("tau-b = %v, want %v", got, want)
	}
}

func TestKendallTauMixed(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	yhat := []float64{1, 3, 2, 4}
	// 5 concordant, 1 discordant → (5-1)/6
	want := 4.0 / 6.0
	if got := KendallTau(y, yhat); !almostEq(got, want) {
		t.Errorf("tau = %v, want %v", got, want)
	}
}
