package metrics

import (
	"fmt"
	"math"
)

func check(y, yhat []float64) {
	if len(y) != len(yhat) || len(y) == 0 {
		panic(fmt.Sprintf("metrics: bad lengths %d vs %d", len(y), len(yhat)))
	}
}

// MAE is the mean absolute error (Eq. 1); closer to zero is better.
func MAE(y, yhat []float64) float64 {
	check(y, yhat)
	var s float64
	for i := range y {
		s += math.Abs(y[i] - yhat[i])
	}
	return s / float64(len(y))
}

// MaxAbs is the maximum absolute error (Eq. 2); closer to zero is better.
func MaxAbs(y, yhat []float64) float64 {
	check(y, yhat)
	var m float64
	for i := range y {
		if d := math.Abs(y[i] - yhat[i]); d > m {
			m = d
		}
	}
	return m
}

// RMSE is the root mean squared error (Eq. 3); closer to zero is better.
func RMSE(y, yhat []float64) float64 {
	check(y, yhat)
	var s float64
	for i := range y {
		d := y[i] - yhat[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(y)))
}

// ExplainedVariance is Eq. 4: 1 − Var(y−ŷ)/Var(y). Best value 1.
// A constant truth vector yields 1 for perfect predictions, else -Inf is
// avoided by returning 0 when Var(y) == 0 and the residual varies.
func ExplainedVariance(y, yhat []float64) float64 {
	check(y, yhat)
	n := float64(len(y))
	var meanY, meanR float64
	for i := range y {
		meanY += y[i]
		meanR += y[i] - yhat[i]
	}
	meanY /= n
	meanR /= n
	var varY, varR float64
	for i := range y {
		dy := y[i] - meanY
		dr := (y[i] - yhat[i]) - meanR
		varY += dy * dy
		varR += dr * dr
	}
	if varY == 0 {
		if varR == 0 {
			return 1
		}
		return 0
	}
	return 1 - varR/varY
}

// R2 is the coefficient of determination (Eq. 5). Best value 1; can be
// negative for models worse than predicting the mean. A constant truth
// vector yields 1 for exact predictions and 0 otherwise.
func R2(y, yhat []float64) float64 {
	check(y, yhat)
	n := float64(len(y))
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= n
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - meanY
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Scores bundles all five paper metrics, in Table I column order.
type Scores struct {
	MAE  float64
	MAX  float64
	RMSE float64
	EV   float64
	R2   float64
}

// Evaluate computes all five metrics at once.
func Evaluate(y, yhat []float64) Scores {
	return Scores{
		MAE:  MAE(y, yhat),
		MAX:  MaxAbs(y, yhat),
		RMSE: RMSE(y, yhat),
		EV:   ExplainedVariance(y, yhat),
		R2:   R2(y, yhat),
	}
}

// Add accumulates s2 into s (for fold averaging).
func (s Scores) Add(s2 Scores) Scores {
	return Scores{
		MAE:  s.MAE + s2.MAE,
		MAX:  s.MAX + s2.MAX,
		RMSE: s.RMSE + s2.RMSE,
		EV:   s.EV + s2.EV,
		R2:   s.R2 + s2.R2,
	}
}

// Scale multiplies every metric by f.
func (s Scores) Scale(f float64) Scores {
	return Scores{MAE: s.MAE * f, MAX: s.MAX * f, RMSE: s.RMSE * f, EV: s.EV * f, R2: s.R2 * f}
}

// String renders the scores as a Table I row fragment.
func (s Scores) String() string {
	return fmt.Sprintf("MAE=%.3f MAX=%.3f RMSE=%.3f EV=%.3f R2=%.3f", s.MAE, s.MAX, s.RMSE, s.EV, s.R2)
}
