package metrics

import "math"

// KendallTau is the Kendall rank correlation coefficient in its tau-b form,
// which corrects for ties on either side. It measures how well a prediction
// preserves the *ordering* of the truth — the quantity that matters when an
// FDR model is used to rank flip-flops for selective hardening, where exact
// magnitudes transfer poorly across circuits but rankings can survive.
//
// Range [-1, 1]; 1 is perfect concordance. When one side is constant
// (no rank information) the coefficient is 0.
func KendallTau(y, yhat []float64) float64 {
	check(y, yhat)
	n := len(y)
	var concordant, discordant, tiesY, tiesYhat float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dy := y[i] - y[j]
			dp := yhat[i] - yhat[j]
			switch {
			case dy == 0 && dp == 0:
				// Tied on both sides: contributes to neither.
			case dy == 0:
				tiesY++
			case dp == 0:
				tiesYhat++
			case (dy > 0) == (dp > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denomY := concordant + discordant + tiesY
	denomP := concordant + discordant + tiesYhat
	if denomY == 0 || denomP == 0 {
		return 0
	}
	return (concordant - discordant) / math.Sqrt(denomY*denomP)
}
