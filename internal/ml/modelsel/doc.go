// Package modelsel implements the paper's evaluation protocol: repeated
// train/test evaluation over splits, hyperparameter tuning by random search
// refined by grid search (Section III-A), and learning curves over the
// training size (Figures 2b, 3b, 4b).
package modelsel
