package modelsel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
)

func linearData(seed int64, n int) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 2*X[i][0] - X[i][1] + 0.1*rng.NormFloat64()
	}
	return X, y
}

func TestCrossValidate(t *testing.T) {
	X, y := linearData(1, 100)
	splits, err := ml.KFoldSplits(len(X), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CrossValidate(func() ml.Regressor { return linreg.New() }, X, y, splits)
	if err != nil {
		t.Fatalf("CrossValidate: %v", err)
	}
	if len(res.TestScores) != 5 || len(res.TrainScores) != 5 {
		t.Fatalf("scores per split: %d/%d", len(res.TestScores), len(res.TrainScores))
	}
	if r2 := res.MeanTest().R2; r2 < 0.95 {
		t.Fatalf("linear model on linear data R² = %v, want > 0.95", r2)
	}
	if res.MeanTrain().R2 < res.MeanTest().R2-0.1 {
		t.Fatal("train score should not trail test score badly")
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, y := linearData(1, 10)
	if _, err := CrossValidate(func() ml.Regressor { return linreg.New() }, X, y, nil); err == nil {
		t.Fatal("no splits must fail")
	}
	if _, err := CrossValidate(func() ml.Regressor { return linreg.New() }, nil, nil, nil); err == nil {
		t.Fatal("empty data must fail")
	}
	// A fold too small for OLS surfaces the model error.
	bad := []ml.Split{{Train: []int{0}, Test: []int{1}}}
	if _, err := CrossValidate(func() ml.Regressor { return linreg.New() }, X, y, bad); err == nil {
		t.Fatal("model failure must propagate")
	}
}

func TestRangeSample(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lin := Range{Min: 1, Max: 9}
	logr := Range{Min: 0.001, Max: 1000, Log: true}
	intr := Range{Min: 1, Max: 10, Integer: true}
	var sawLowDecade bool
	for i := 0; i < 200; i++ {
		if v := lin.Sample(rng); v < 1 || v > 9 {
			t.Fatalf("linear sample %v out of range", v)
		}
		v := logr.Sample(rng)
		if v < 0.001 || v > 1000 {
			t.Fatalf("log sample %v out of range", v)
		}
		if v < 0.01 {
			sawLowDecade = true
		}
		iv := intr.Sample(rng)
		if iv != math.Round(iv) {
			t.Fatalf("integer sample %v not integral", iv)
		}
	}
	if !sawLowDecade {
		t.Fatal("log sampling never hit the low decades — not log-uniform")
	}
}

func TestRandomSearchFindsGoodK(t *testing.T) {
	// k-NN on smooth data: very large k underfits badly, small k works.
	rng := rand.New(rand.NewSource(4))
	n := 120
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64() * 10
		X[i] = []float64{x}
		y[i] = math.Sin(x)
	}
	splits, err := ml.KFoldSplits(n, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	build := func(p Params) ml.Regressor { return knn.New(int(p["k"]), knn.Manhattan) }
	res, err := RandomSearch(build, map[string]Range{
		"k": {Min: 1, Max: 60, Integer: true},
	}, 15, X, y, splits, 9)
	if err != nil {
		t.Fatalf("RandomSearch: %v", err)
	}
	if res.Evaluated != 15 {
		t.Fatalf("evaluated %d, want 15", res.Evaluated)
	}
	if res.Best["k"] > 20 {
		t.Fatalf("best k = %v, expected something small", res.Best["k"])
	}
	if res.BestScore < 0.9 {
		t.Fatalf("best score %v too low", res.BestScore)
	}
}

func TestRandomSearchValidation(t *testing.T) {
	if _, err := RandomSearch(nil, nil, 0, nil, nil, nil, 1); err == nil {
		t.Fatal("n=0 must fail")
	}
}

func TestGridSearchExhaustive(t *testing.T) {
	X, y := linearData(5, 60)
	splits, _ := ml.KFoldSplits(len(X), 4, 6)
	calls := 0
	build := func(p Params) ml.Regressor {
		calls++
		return linreg.NewRidge(p["lambda"])
	}
	res, err := GridSearch(build, map[string][]float64{
		"lambda": {0.001, 0.01, 0.1, 1},
		"unused": {1, 2, 3},
	}, X, y, splits)
	if err != nil {
		t.Fatalf("GridSearch: %v", err)
	}
	if res.Evaluated != 12 {
		t.Fatalf("evaluated %d combinations, want 12", res.Evaluated)
	}
	if calls != 12*len(splits) {
		t.Fatalf("model built %d times, want %d", calls, 12*len(splits))
	}
	if res.Best["lambda"] > 0.5 {
		t.Fatalf("best lambda %v suspiciously large for clean linear data", res.Best["lambda"])
	}
}

func TestGridSearchValidation(t *testing.T) {
	if _, err := GridSearch(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("empty grid must fail")
	}
	if _, err := GridSearch(nil, map[string][]float64{"a": {}}, nil, nil, nil); err == nil {
		t.Fatal("empty grid values must fail")
	}
}

func TestRefineGrid(t *testing.T) {
	grid := RefineGrid(Params{"c": 10, "k": 5}, map[string]bool{"c": true}, 5, 2)
	if len(grid["c"]) != 5 || len(grid["k"]) != 5 {
		t.Fatalf("grid sizes wrong: %v", grid)
	}
	if grid["c"][0] != 2.5 || grid["c"][4] != 40 {
		t.Fatalf("log refinement wrong: %v", grid["c"])
	}
	if grid["k"][0] != 1 || grid["k"][4] != 9 {
		t.Fatalf("linear refinement wrong: %v", grid["k"])
	}
}

func TestLearningCurveShape(t *testing.T) {
	X, y := linearData(6, 200)
	splits, _ := ml.KFoldSplits(len(X), 5, 7)
	fracs := []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	points, err := LearningCurve(func() ml.Regressor { return linreg.New() }, X, y, fracs, splits, 8)
	if err != nil {
		t.Fatalf("LearningCurve: %v", err)
	}
	if len(points) != len(fracs) {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.TrainFrac != fracs[i] {
			t.Fatalf("point %d frac %v", i, p.TrainFrac)
		}
	}
	// On clean linear data the test score must be high at full size and
	// not decrease dramatically from half size (plateau behavior).
	last := points[len(points)-1]
	if last.TestScore < 0.95 {
		t.Fatalf("final test score %v too low", last.TestScore)
	}
	mid := points[2]
	if mid.TestScore < last.TestScore-0.05 {
		t.Fatalf("score at 50%% (%v) far below final (%v) — no plateau", mid.TestScore, last.TestScore)
	}
}

func TestLearningCurveValidation(t *testing.T) {
	X, y := linearData(7, 20)
	splits, _ := ml.KFoldSplits(len(X), 4, 1)
	if _, err := LearningCurve(func() ml.Regressor { return linreg.New() }, X, y, nil, splits, 1); err == nil {
		t.Fatal("no fractions must fail")
	}
	if _, err := LearningCurve(func() ml.Regressor { return linreg.New() }, X, y, []float64{2}, splits, 1); err == nil {
		t.Fatal("fraction > 1 must fail")
	}
	if _, err := LearningCurve(func() ml.Regressor { return linreg.New() }, X, y, []float64{0.5}, nil, 1); err == nil {
		t.Fatal("no splits must fail")
	}
}

func TestMeanScoresEmpty(t *testing.T) {
	var r CVResult
	if r.MeanTest().R2 != 0 {
		t.Fatal("empty mean must be zero value")
	}
}
