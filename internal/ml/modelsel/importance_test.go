package modelsel

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
)

func TestPermutationImportanceFindsSignal(t *testing.T) {
	// y depends only on features 0 and 2; feature 1 is noise.
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 3*X[i][0] - 2*X[i][2]
	}
	split, err := ml.TrainTestSplit(n, 0.6, 2)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(func() ml.Regressor { return linreg.New() },
		X, y, split, 5, 3)
	if err != nil {
		t.Fatalf("PermutationImportance: %v", err)
	}
	if len(imp) != 3 {
		t.Fatalf("importances = %d", len(imp))
	}
	if imp[0].MeanDrop < 0.1 || imp[2].MeanDrop < 0.1 {
		t.Fatalf("informative features not detected: %+v", imp)
	}
	if imp[1].MeanDrop > imp[0].MeanDrop/10 || imp[1].MeanDrop > imp[2].MeanDrop/10 {
		t.Fatalf("noise feature ranked too high: %+v", imp)
	}
	// Feature 0 (coefficient 3) should beat feature 2 (coefficient -2).
	if imp[0].MeanDrop <= imp[2].MeanDrop {
		t.Fatalf("importance ordering wrong: %+v", imp)
	}
}

func TestPermutationImportanceWithKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 150
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64()}
		y[i] = X[i][0] * X[i][0] // nonlinear, feature 0 only
	}
	split, _ := ml.TrainTestSplit(n, 0.5, 1)
	imp, err := PermutationImportance(func() ml.Regressor { return knn.New(3, knn.Manhattan) },
		X, y, split, 3, 7)
	if err != nil {
		t.Fatalf("PermutationImportance: %v", err)
	}
	sorted := append([]FeatureImportance(nil), imp...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].MeanDrop > sorted[b].MeanDrop })
	if sorted[0].Feature != 0 {
		t.Fatalf("feature 0 must rank first: %+v", imp)
	}
}

func TestPermutationImportanceValidation(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	factory := func() ml.Regressor { return knn.New(1, knn.Manhattan) }
	if _, err := PermutationImportance(factory, nil, nil, ml.Split{}, 1, 1); err == nil {
		t.Fatal("empty data must fail")
	}
	if _, err := PermutationImportance(factory, X, y, ml.Split{Train: []int{0, 1}, Test: []int{2, 3}}, 0, 1); err == nil {
		t.Fatal("repeats=0 must fail")
	}
	if _, err := PermutationImportance(factory, X, y, ml.Split{}, 1, 1); err == nil {
		t.Fatal("empty split must fail")
	}
}
