package modelsel

import (
	"fmt"
	"math/rand"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
)

// FeatureImportance is one feature's permutation-importance measurement.
type FeatureImportance struct {
	Feature int
	// MeanDrop is the average R² decrease when the feature column is
	// shuffled on the evaluation set; larger means more valuable.
	MeanDrop float64
}

// PermutationImportance implements the feature-value analysis the paper's
// future work calls for ("the value of each feature needs to be evaluated
// separately", Section V): for a model trained on the training split, each
// feature column of the evaluation split is randomly permuted `repeats`
// times and the mean R² drop recorded.
func PermutationImportance(factory ml.Factory, X [][]float64, y []float64, split ml.Split, repeats int, seed int64) ([]FeatureImportance, error) {
	if err := ml.CheckXY(X, y); err != nil {
		return nil, err
	}
	if repeats < 1 {
		return nil, fmt.Errorf("%w: repeats=%d", ml.ErrBadData, repeats)
	}
	if len(split.Train) == 0 || len(split.Test) == 0 {
		return nil, fmt.Errorf("%w: empty split", ml.ErrBadData)
	}
	trX, trY := ml.Gather(X, y, split.Train)
	teX, teY := ml.Gather(X, y, split.Test)
	model := factory()
	if err := model.Fit(trX, trY); err != nil {
		return nil, fmt.Errorf("modelsel: importance fit: %w", err)
	}
	base := metrics.R2(teY, ml.PredictAll(model, teX))

	rng := rand.New(rand.NewSource(seed))
	d := len(X[0])
	n := len(teX)
	// Mutable copy of the evaluation rows.
	work := make([][]float64, n)
	for i, row := range teX {
		work[i] = append([]float64(nil), row...)
	}
	out := make([]FeatureImportance, d)
	perm := make([]int, n)
	column := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := range work {
			column[i] = work[i][j]
		}
		var dropSum float64
		for r := 0; r < repeats; r++ {
			copy(perm, rng.Perm(n))
			for i := range work {
				work[i][j] = column[perm[i]]
			}
			score := metrics.R2(teY, ml.PredictAll(model, work))
			dropSum += base - score
		}
		for i := range work {
			work[i][j] = column[i] // restore
		}
		out[j] = FeatureImportance{Feature: j, MeanDrop: dropSum / float64(repeats)}
	}
	return out, nil
}
