package modelsel

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
)

// CVResult aggregates per-split evaluation.
type CVResult struct {
	// TrainScores and TestScores hold one entry per split.
	TrainScores []metrics.Scores
	TestScores  []metrics.Scores
}

// MeanTest averages the test scores over splits.
func (r CVResult) MeanTest() metrics.Scores { return meanScores(r.TestScores) }

// MeanTrain averages the train scores over splits.
func (r CVResult) MeanTrain() metrics.Scores { return meanScores(r.TrainScores) }

func meanScores(ss []metrics.Scores) metrics.Scores {
	var acc metrics.Scores
	if len(ss) == 0 {
		return acc
	}
	for _, s := range ss {
		acc = acc.Add(s)
	}
	return acc.Scale(1 / float64(len(ss)))
}

// CrossValidate trains a fresh model per split and evaluates all five paper
// metrics on both partitions.
func CrossValidate(factory ml.Factory, X [][]float64, y []float64, splits []ml.Split) (CVResult, error) {
	if err := ml.CheckXY(X, y); err != nil {
		return CVResult{}, err
	}
	if len(splits) == 0 {
		return CVResult{}, fmt.Errorf("%w: no splits", ml.ErrBadData)
	}
	res := CVResult{
		TrainScores: make([]metrics.Scores, len(splits)),
		TestScores:  make([]metrics.Scores, len(splits)),
	}
	for si, sp := range splits {
		trX, trY := ml.Gather(X, y, sp.Train)
		teX, teY := ml.Gather(X, y, sp.Test)
		model := factory()
		if err := model.Fit(trX, trY); err != nil {
			return CVResult{}, fmt.Errorf("modelsel: split %d: %w", si, err)
		}
		res.TrainScores[si] = metrics.Evaluate(trY, ml.PredictAll(model, trX))
		res.TestScores[si] = metrics.Evaluate(teY, ml.PredictAll(model, teX))
	}
	return res, nil
}

// Params is a hyperparameter assignment.
type Params map[string]float64

// Clone copies the assignment.
func (p Params) Clone() Params {
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// Range is a sampling interval for one hyperparameter.
type Range struct {
	Min, Max float64
	// Log samples log-uniformly (for scale parameters like C and gamma).
	Log bool
	// Integer rounds samples to integers (for k, depth, ...).
	Integer bool
}

// Sample draws one value.
func (r Range) Sample(rng *rand.Rand) float64 {
	var v float64
	if r.Log {
		lo, hi := math.Log(r.Min), math.Log(r.Max)
		v = math.Exp(lo + rng.Float64()*(hi-lo))
	} else {
		v = r.Min + rng.Float64()*(r.Max-r.Min)
	}
	if r.Integer {
		v = math.Round(v)
	}
	return v
}

// Build constructs a model from a hyperparameter assignment.
type Build func(Params) ml.Regressor

// SearchResult is the outcome of a hyperparameter search.
type SearchResult struct {
	Best      Params
	BestScore float64 // mean test R² of the best assignment
	Evaluated int
}

// score evaluates an assignment by mean test R² over the splits.
func score(build Build, p Params, X [][]float64, y []float64, splits []ml.Split) (float64, error) {
	res, err := CrossValidate(func() ml.Regressor { return build(p) }, X, y, splits)
	if err != nil {
		return 0, err
	}
	return res.MeanTest().R2, nil
}

// RandomSearch samples n assignments from the space and returns the best by
// mean test R² (the paper's first tuning stage).
func RandomSearch(build Build, space map[string]Range, n int, X [][]float64, y []float64, splits []ml.Split, seed int64) (SearchResult, error) {
	if n < 1 {
		return SearchResult{}, fmt.Errorf("%w: n=%d", ml.ErrBadData, n)
	}
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 0, len(space))
	for k := range space {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic sampling order
	best := SearchResult{BestScore: math.Inf(-1)}
	for i := 0; i < n; i++ {
		p := make(Params, len(space))
		for _, k := range names {
			p[k] = space[k].Sample(rng)
		}
		s, err := score(build, p, X, y, splits)
		if err != nil {
			return SearchResult{}, err
		}
		best.Evaluated++
		if s > best.BestScore {
			best.BestScore = s
			best.Best = p
		}
	}
	return best, nil
}

// GridSearch exhaustively evaluates the cartesian product of the given
// value lists (the paper's refinement stage around the random-search
// optimum).
func GridSearch(build Build, grid map[string][]float64, X [][]float64, y []float64, splits []ml.Split) (SearchResult, error) {
	names := make([]string, 0, len(grid))
	for k := range grid {
		if len(grid[k]) == 0 {
			return SearchResult{}, fmt.Errorf("%w: empty grid for %q", ml.ErrBadData, k)
		}
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return SearchResult{}, fmt.Errorf("%w: empty grid", ml.ErrBadData)
	}
	best := SearchResult{BestScore: math.Inf(-1)}
	idx := make([]int, len(names))
	for {
		p := make(Params, len(names))
		for i, k := range names {
			p[k] = grid[k][idx[i]]
		}
		s, err := score(build, p, X, y, splits)
		if err != nil {
			return SearchResult{}, err
		}
		best.Evaluated++
		if s > best.BestScore {
			best.BestScore = s
			best.Best = p
		}
		// Advance the mixed-radix counter.
		carry := len(names) - 1
		for carry >= 0 {
			idx[carry]++
			if idx[carry] < len(grid[names[carry]]) {
				break
			}
			idx[carry] = 0
			carry--
		}
		if carry < 0 {
			return best, nil
		}
	}
}

// RefineGrid builds a grid around a center value for the paper's
// random-then-grid procedure: points per parameter spaced by factor (log
// scale) or step (linear), clipped to positive values for log scales.
func RefineGrid(center Params, logScale map[string]bool, points int, factor float64) map[string][]float64 {
	grid := make(map[string][]float64, len(center))
	half := points / 2
	for k, c := range center {
		vals := make([]float64, 0, points)
		for i := -half; i <= half; i++ {
			if logScale[k] {
				vals = append(vals, c*math.Pow(factor, float64(i)))
			} else {
				vals = append(vals, c+float64(i)*factor)
			}
		}
		grid[k] = vals
	}
	return grid
}

// LearningPoint is one training-size measurement of a learning curve.
type LearningPoint struct {
	TrainFrac  float64
	TrainScore float64 // mean train R² over splits
	TestScore  float64 // mean test R² over splits
}

// LearningCurve reproduces the paper's Figures 2b/3b/4b: for every training
// fraction, each split's training portion is subsampled to the fraction,
// the model retrained, and train/test R² recorded (scikit-learn
// learning_curve semantics).
func LearningCurve(factory ml.Factory, X [][]float64, y []float64, fracs []float64, splits []ml.Split, seed int64) ([]LearningPoint, error) {
	if err := ml.CheckXY(X, y); err != nil {
		return nil, err
	}
	if len(fracs) == 0 || len(splits) == 0 {
		return nil, fmt.Errorf("%w: empty fractions or splits", ml.ErrBadData)
	}
	rng := rand.New(rand.NewSource(seed))
	points := make([]LearningPoint, 0, len(fracs))
	for _, frac := range fracs {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("%w: fraction %v out of (0,1]", ml.ErrBadData, frac)
		}
		var trainSum, testSum float64
		folds := 0
		for _, sp := range splits {
			k := int(frac*float64(len(sp.Train)) + 0.5)
			if k < 2 {
				k = 2
			}
			if k > len(sp.Train) {
				k = len(sp.Train)
			}
			sub := append([]int(nil), sp.Train...)
			rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
			sub = sub[:k]
			trX, trY := ml.Gather(X, y, sub)
			teX, teY := ml.Gather(X, y, sp.Test)
			model := factory()
			if err := model.Fit(trX, trY); err != nil {
				return nil, fmt.Errorf("modelsel: learning curve frac %v: %w", frac, err)
			}
			trainSum += metrics.R2(trY, ml.PredictAll(model, trX))
			testSum += metrics.R2(teY, ml.PredictAll(model, teX))
			folds++
		}
		points = append(points, LearningPoint{
			TrainFrac:  frac,
			TrainScore: trainSum / float64(folds),
			TestScore:  testSum / float64(folds),
		})
	}
	return points, nil
}
