package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// Split is one train/test partition, as row indices into the dataset.
type Split struct {
	Train []int
	Test  []int
}

// TrainTestSplit shuffles [0,n) and partitions it with the given training
// fraction (0 < trainFrac < 1). The training part has at least one element,
// as does the test part.
func TrainTestSplit(n int, trainFrac float64, seed int64) (Split, error) {
	if n < 2 {
		return Split{}, fmt.Errorf("%w: need at least 2 samples, have %d", ErrBadData, n)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return Split{}, fmt.Errorf("%w: train fraction %v out of (0,1)", ErrBadData, trainFrac)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	k := int(trainFrac * float64(n))
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	return Split{Train: perm[:k], Test: perm[k:]}, nil
}

// KFoldSplits returns k shuffled folds over [0,n); fold i is the test set of
// split i and the remaining rows train.
func KFoldSplits(n, k int, seed int64) ([]Split, error) {
	if k < 2 || k > n {
		return nil, fmt.Errorf("%w: k=%d for n=%d", ErrBadData, k, n)
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	splits := make([]Split, k)
	for i := 0; i < k; i++ {
		lo := i * n / k
		hi := (i + 1) * n / k
		test := append([]int(nil), perm[lo:hi]...)
		train := make([]int, 0, n-len(test))
		train = append(train, perm[:lo]...)
		train = append(train, perm[hi:]...)
		splits[i] = Split{Train: train, Test: test}
	}
	return splits, nil
}

// targetBins assigns each sample a quantile bin of its target value; used to
// stratify regression splits (the paper's "stratified cross validation" on a
// continuous FDR target).
func targetBins(y []float64, bins int) []int {
	type pair struct {
		v float64
		i int
	}
	ps := make([]pair, len(y))
	for i, v := range y {
		ps[i] = pair{v: v, i: i}
	}
	sort.SliceStable(ps, func(a, b int) bool { return ps[a].v < ps[b].v })
	out := make([]int, len(y))
	for rank, p := range ps {
		out[p.i] = rank * bins / len(y)
	}
	return out
}

// StratifiedShuffleSplits reproduces the paper's evaluation protocol
// (Section IV: "cross validation fold of 10 and a training size of 50 %"):
// nSplits independent shuffle splits, each drawing trainFrac of the samples
// for training, stratified over quantile bins of the target so every split
// sees the full FDR range.
func StratifiedShuffleSplits(y []float64, nSplits int, trainFrac float64, bins int, seed int64) ([]Split, error) {
	n := len(y)
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 samples", ErrBadData)
	}
	if nSplits < 1 {
		return nil, fmt.Errorf("%w: nSplits=%d", ErrBadData, nSplits)
	}
	if trainFrac <= 0 || trainFrac >= 1 {
		return nil, fmt.Errorf("%w: train fraction %v out of (0,1)", ErrBadData, trainFrac)
	}
	if bins < 1 {
		return nil, fmt.Errorf("%w: bins=%d", ErrBadData, bins)
	}
	if bins > n {
		bins = n
	}
	binOf := targetBins(y, bins)
	byBin := make([][]int, bins)
	for i, b := range binOf {
		byBin[b] = append(byBin[b], i)
	}
	rng := rand.New(rand.NewSource(seed))
	splits := make([]Split, nSplits)
	for s := range splits {
		var train, test []int
		for _, members := range byBin {
			if len(members) == 0 {
				continue
			}
			shuffled := append([]int(nil), members...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			k := int(trainFrac*float64(len(shuffled)) + 0.5)
			if k < 1 {
				k = 1
			}
			if k > len(shuffled)-1 {
				k = len(shuffled) - 1
			}
			train = append(train, shuffled[:k]...)
			test = append(test, shuffled[k:]...)
		}
		sort.Ints(train)
		sort.Ints(test)
		splits[s] = Split{Train: train, Test: test}
	}
	return splits, nil
}

// StratifiedKFoldSplits builds k folds balanced over target quantile bins.
func StratifiedKFoldSplits(y []float64, k, bins int, seed int64) ([]Split, error) {
	n := len(y)
	if k < 2 || k > n {
		return nil, fmt.Errorf("%w: k=%d for n=%d", ErrBadData, k, n)
	}
	if bins < 1 {
		return nil, fmt.Errorf("%w: bins=%d", ErrBadData, bins)
	}
	if bins > n {
		bins = n
	}
	binOf := targetBins(y, bins)
	byBin := make([][]int, bins)
	for i, b := range binOf {
		byBin[b] = append(byBin[b], i)
	}
	rng := rand.New(rand.NewSource(seed))
	folds := make([][]int, k)
	for _, members := range byBin {
		shuffled := append([]int(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		for i, idx := range shuffled {
			f := i % k
			folds[f] = append(folds[f], idx)
		}
	}
	splits := make([]Split, k)
	for i := 0; i < k; i++ {
		test := append([]int(nil), folds[i]...)
		var train []int
		for j := 0; j < k; j++ {
			if j != i {
				train = append(train, folds[j]...)
			}
		}
		sort.Ints(train)
		sort.Ints(test)
		splits[i] = Split{Train: train, Test: test}
	}
	return splits, nil
}
