package tree

import (
	"encoding/gob"
	"fmt"

	"repro/internal/ml"
)

func init() {
	gob.RegisterName("ffr/tree.Regressor", &Regressor{})
}

// flatNode is one node of the fitted tree in the wire format: the tree is
// flattened into a preorder slice with child indices (-1 = none), which
// avoids deep recursive gob structures and keeps the format inspectable.
type flatNode struct {
	Feature     int
	Thresh      float64
	Value       float64
	Left, Right int
}

// treeState is the explicit wire format of a fitted CART tree. FeatureOrder
// is fit-time-only state (ensembles inject it for feature subsampling) and
// intentionally does not survive serialization; a reloaded tree predicts
// identically but cannot be refitted with the same subsampling closure.
type treeState struct {
	MaxDepth        int
	MinSamplesLeaf  int
	MinSamplesSplit int
	MaxFeatures     int
	Nodes           []flatNode
	Fitted          bool
}

func flatten(n *node, out *[]flatNode) int {
	if n == nil {
		return -1
	}
	idx := len(*out)
	*out = append(*out, flatNode{Feature: n.feature, Thresh: n.thresh, Value: n.value, Left: -1, Right: -1})
	(*out)[idx].Left = flatten(n.left, out)
	(*out)[idx].Right = flatten(n.right, out)
	return idx
}

func unflatten(nodes []flatNode, idx int) (*node, error) {
	if idx == -1 {
		return nil, nil
	}
	if idx < 0 || idx >= len(nodes) {
		return nil, fmt.Errorf("ml/tree: node index %d out of %d", idx, len(nodes))
	}
	fn := nodes[idx]
	n := &node{feature: fn.Feature, thresh: fn.Thresh, value: fn.Value}
	if fn.Feature >= 0 { // internal node: both children must exist
		var err error
		if n.left, err = unflatten(nodes, fn.Left); err != nil {
			return nil, err
		}
		if n.right, err = unflatten(nodes, fn.Right); err != nil {
			return nil, err
		}
		if n.left == nil || n.right == nil {
			return nil, fmt.Errorf("ml/tree: internal node %d missing a child", idx)
		}
	}
	return n, nil
}

// GobEncode exports the configuration and the flattened fitted tree.
func (r *Regressor) GobEncode() ([]byte, error) {
	st := treeState{
		MaxDepth:        r.MaxDepth,
		MinSamplesLeaf:  r.MinSamplesLeaf,
		MinSamplesSplit: r.MinSamplesSplit,
		MaxFeatures:     r.MaxFeatures,
		Fitted:          r.fitted,
	}
	flatten(r.root, &st.Nodes)
	return ml.GobState(st)
}

// GobDecode restores a fitted tree.
func (r *Regressor) GobDecode(data []byte) error {
	var st treeState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	root, err := unflatten(st.Nodes, rootIndex(st.Nodes))
	if err != nil {
		return err
	}
	if st.Fitted && root == nil {
		return fmt.Errorf("ml/tree: fitted tree without nodes")
	}
	r.MaxDepth = st.MaxDepth
	r.MinSamplesLeaf = st.MinSamplesLeaf
	r.MinSamplesSplit = st.MinSamplesSplit
	r.MaxFeatures = st.MaxFeatures
	r.FeatureOrder = nil
	r.root = root
	r.fitted = st.Fitted
	return nil
}

func rootIndex(nodes []flatNode) int {
	if len(nodes) == 0 {
		return -1
	}
	return 0
}
