package tree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ml"
)

// Regressor is a CART regression tree. The zero value uses sane defaults
// (unbounded depth, leaves of at least one sample).
type Regressor struct {
	// MaxDepth bounds the tree height; 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples in each child (default 1).
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum samples to attempt a split
	// (default 2).
	MinSamplesSplit int
	// MaxFeatures restricts the features examined per split; 0 examines
	// all. Random forests set this together with a per-tree RNG.
	MaxFeatures int
	// FeatureOrder, when non-nil, supplies the feature subset to examine
	// at each split (used by ensembles for feature subsampling).
	FeatureOrder func(numFeatures int) []int

	root   *node
	fitted bool
}

type node struct {
	feature int     // split feature, -1 for leaves
	thresh  float64 // go left when x[feature] <= thresh
	value   float64 // leaf prediction
	left    *node
	right   *node
}

// New returns a tree with the given depth bound.
func New(maxDepth int) *Regressor {
	return &Regressor{MaxDepth: maxDepth, MinSamplesLeaf: 1, MinSamplesSplit: 2}
}

// Fit grows the tree.
func (r *Regressor) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	if r.MinSamplesLeaf < 1 {
		r.MinSamplesLeaf = 1
	}
	if r.MinSamplesSplit < 2 {
		r.MinSamplesSplit = 2
	}
	if r.MaxFeatures < 0 {
		return fmt.Errorf("ml/tree: MaxFeatures=%d", r.MaxFeatures)
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	r.root = r.grow(X, y, idx, 0)
	r.fitted = true
	return nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

// sse returns the sum of squared errors around the mean for idx.
func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (r *Regressor) candidateFeatures(numFeatures int) []int {
	if r.FeatureOrder != nil {
		return r.FeatureOrder(numFeatures)
	}
	feats := make([]int, numFeatures)
	for i := range feats {
		feats[i] = i
	}
	if r.MaxFeatures > 0 && r.MaxFeatures < numFeatures {
		return feats[:r.MaxFeatures]
	}
	return feats
}

func (r *Regressor) grow(X [][]float64, y []float64, idx []int, depth int) *node {
	leaf := &node{feature: -1, value: mean(y, idx)}
	if len(idx) < r.MinSamplesSplit {
		return leaf
	}
	if r.MaxDepth > 0 && depth >= r.MaxDepth {
		return leaf
	}
	parentSSE := sse(y, idx)
	if parentSSE == 0 {
		return leaf // pure node
	}

	bestGain := 0.0
	bestFeature := -1
	var bestThresh float64
	order := make([]int, len(idx))
	for _, f := range r.candidateFeatures(len(X[0])) {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		// Prefix sums over the sorted order for O(n) split evaluation.
		var sumL, sumSqL float64
		var sumR, sumSqR float64
		for _, i := range order {
			sumR += y[i]
			sumSqR += y[i] * y[i]
		}
		nL := 0
		nR := len(order)
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			sumL += y[i]
			sumSqL += y[i] * y[i]
			sumR -= y[i]
			sumSqR -= y[i] * y[i]
			nL++
			nR--
			// Can't split between equal feature values.
			if X[order[k]][f] == X[order[k+1]][f] {
				continue
			}
			if nL < r.MinSamplesLeaf || nR < r.MinSamplesLeaf {
				continue
			}
			sseL := sumSqL - sumL*sumL/float64(nL)
			sseR := sumSqR - sumR*sumR/float64(nR)
			gain := parentSSE - (sseL + sseR)
			if gain > bestGain+1e-12 {
				bestGain = gain
				bestFeature = f
				bestThresh = (X[order[k]][f] + X[order[k+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return leaf
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return leaf // numerical degeneracy
	}
	return &node{
		feature: bestFeature,
		thresh:  bestThresh,
		value:   leaf.value,
		left:    r.grow(X, y, leftIdx, depth+1),
		right:   r.grow(X, y, rightIdx, depth+1),
	}
}

// Predict walks the tree.
func (r *Regressor) Predict(x []float64) float64 {
	if !r.fitted {
		return 0
	}
	n := r.root
	for n.feature >= 0 {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Depth returns the height of the fitted tree (a leaf-only tree has
// depth 0); -1 before Fit.
func (r *Regressor) Depth() int {
	if !r.fitted {
		return -1
	}
	var rec func(*node) int
	rec = func(n *node) int {
		if n.feature < 0 {
			return 0
		}
		l, rr := rec(n.left), rec(n.right)
		return 1 + int(math.Max(float64(l), float64(rr)))
	}
	return rec(r.root)
}

var _ ml.Regressor = (*Regressor)(nil)
