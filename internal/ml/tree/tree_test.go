package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml/metrics"
)

func stepData() ([][]float64, []float64) {
	// Piecewise constant: y = 1 when x0 > 0.5, else 0; second feature is noise.
	X := [][]float64{
		{0.1, 5}, {0.2, -3}, {0.3, 1}, {0.4, 0},
		{0.6, 2}, {0.7, -1}, {0.8, 4}, {0.9, 9},
	}
	y := []float64{0, 0, 0, 0, 1, 1, 1, 1}
	return X, y
}

func TestFitsStepFunctionExactly(t *testing.T) {
	X, y := stepData()
	m := New(3)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for i := range X {
		if got := m.Predict(X[i]); got != y[i] {
			t.Fatalf("Predict(%v) = %v, want %v", X[i], got, y[i])
		}
	}
	if got := m.Predict([]float64{0.45, 0}); got != 0 {
		t.Fatalf("left side = %v, want 0", got)
	}
	if got := m.Predict([]float64{0.55, 0}); got != 1 {
		t.Fatalf("right side = %v, want 1", got)
	}
	if d := m.Depth(); d != 1 {
		t.Fatalf("depth = %d, want 1 (single split suffices)", d)
	}
}

func TestMaxDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		y[i] = rng.Float64()
	}
	for _, depth := range []int{1, 2, 3, 5} {
		m := New(depth)
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		if got := m.Depth(); got > depth {
			t.Fatalf("tree depth %d exceeds bound %d", got, depth)
		}
	}
}

func TestMinSamplesLeaf(t *testing.T) {
	X, y := stepData()
	m := &Regressor{MaxDepth: 10, MinSamplesLeaf: 5}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// 8 samples with min leaf 5 → no legal split → a single leaf.
	if m.Depth() != 0 {
		t.Fatalf("depth = %d, want 0 leaf-only", m.Depth())
	}
	if got := m.Predict(X[0]); got != 0.5 {
		t.Fatalf("leaf mean = %v, want 0.5", got)
	}
}

func TestPureNodeStopsSplitting(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	m := New(0)
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if m.Depth() != 0 {
		t.Fatalf("pure data must give leaf, depth=%d", m.Depth())
	}
}

// Property: predictions are always within [min(y), max(y)] — leaves predict
// means of training subsets.
func TestPredictionRange(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		X := make([][]float64, n)
		y := make([]float64, n)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64()
			if y[i] < minY {
				minY = y[i]
			}
			if y[i] > maxY {
				maxY = y[i]
			}
		}
		m := New(6)
		if err := m.Fit(X, y); err != nil {
			return false
		}
		for k := 0; k < 20; k++ {
			q := []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
			p := m.Predict(q)
			if p < minY-1e-9 || p > maxY+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: deeper trees never fit the training set worse.
func TestDeeperTreesFitBetter(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 100
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64() * 10}
		y[i] = math.Sin(X[i][0])
	}
	var prev float64 = math.Inf(1)
	for _, depth := range []int{1, 2, 4, 8} {
		m := New(depth)
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		yhat := make([]float64, n)
		for i := range X {
			yhat[i] = m.Predict(X[i])
		}
		rmse := metrics.RMSE(y, yhat)
		if rmse > prev+1e-9 {
			t.Fatalf("depth %d RMSE %v worse than shallower %v", depth, rmse, prev)
		}
		prev = rmse
	}
}

func TestValidation(t *testing.T) {
	if err := New(1).Fit(nil, nil); err == nil {
		t.Fatal("empty data must fail")
	}
	m := &Regressor{MaxFeatures: -1}
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("negative MaxFeatures must fail")
	}
	fresh := New(1)
	if got := fresh.Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted Predict = %v", got)
	}
	if fresh.Depth() != -1 {
		t.Fatal("unfitted Depth must be -1")
	}
}

func TestMaxFeaturesSubsetting(t *testing.T) {
	// With MaxFeatures=1 only feature 0 is examined (deterministic prefix),
	// so a function of feature 1 cannot be fit.
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []float64{0, 1, 0, 1} // y = x1
	m := &Regressor{MaxDepth: 3, MaxFeatures: 1}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	// Feature 0 carries no signal → tree stays a leaf predicting 0.5.
	if got := m.Predict([]float64{0, 1}); got != 0.5 {
		t.Fatalf("Predict = %v, want 0.5 (cannot see feature 1)", got)
	}
}
