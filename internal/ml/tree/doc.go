// Package tree implements a CART regression tree — the Decision Tree
// Regressor the paper lists as future work (Section V). Splits minimize the
// weighted variance of the children (equivalently, maximize variance
// reduction); leaves predict the mean target of their samples.
package tree
