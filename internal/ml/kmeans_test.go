package ml

import (
	"math/rand"
	"reflect"
	"testing"
)

// threeBlobs builds a dataset with three well-separated clusters.
func threeBlobs(perCluster int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 8}}
	var X [][]float64
	var truth []int
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			X = append(X, []float64{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return X, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	X, truth := threeBlobs(20, 7)
	km := NewKMeans(3)
	if err := km.Fit(X, 1); err != nil {
		t.Fatal(err)
	}
	labels := km.Labels(X)
	// Every true cluster must map onto exactly one fitted cluster.
	mapping := map[int]int{}
	for i, l := range labels {
		if prev, ok := mapping[truth[i]]; ok && prev != l {
			t.Fatalf("true cluster %d split across fitted clusters %d and %d", truth[i], prev, l)
		}
		mapping[truth[i]] = l
	}
	if len(mapping) != 3 {
		t.Fatalf("recovered %d clusters, want 3", len(mapping))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	X, _ := threeBlobs(15, 3)
	fit := func() ([][]float64, []int) {
		km := NewKMeans(4)
		if err := km.Fit(X, 42); err != nil {
			t.Fatal(err)
		}
		return km.Centers, km.Labels(X)
	}
	c1, l1 := fit()
	c2, l2 := fit()
	if !reflect.DeepEqual(c1, c2) {
		t.Error("same (data, k, seed) produced different centers")
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Error("same (data, k, seed) produced different labels")
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	km := NewKMeans(10)
	if err := km.Fit(X, 1); err != nil {
		t.Fatal(err)
	}
	if len(km.Centers) != 2 {
		t.Errorf("K capped at %d centers, want 2", len(km.Centers))
	}
}

func TestKMeansDegenerateData(t *testing.T) {
	// All points identical: every center collapses onto the point and
	// assignment is still well defined.
	X := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	km := NewKMeans(2)
	if err := km.Fit(X, 9); err != nil {
		t.Fatal(err)
	}
	for _, l := range km.Labels(X) {
		if l < 0 || l >= len(km.Centers) {
			t.Errorf("label %d out of range", l)
		}
	}
}

func TestKMeansBadInput(t *testing.T) {
	if err := NewKMeans(0).Fit([][]float64{{1}}, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if err := NewKMeans(2).Fit(nil, 1); err == nil {
		t.Error("empty matrix accepted")
	}
	if err := NewKMeans(2).Fit([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
}
