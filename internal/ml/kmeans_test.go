package ml

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// threeBlobs builds a dataset with three well-separated clusters.
func threeBlobs(perCluster int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 8}}
	var X [][]float64
	var truth []int
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			X = append(X, []float64{
				center[0] + rng.NormFloat64()*0.5,
				center[1] + rng.NormFloat64()*0.5,
			})
			truth = append(truth, c)
		}
	}
	return X, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	X, truth := threeBlobs(20, 7)
	km := NewKMeans(3)
	if err := km.Fit(X, 1); err != nil {
		t.Fatal(err)
	}
	labels := km.Labels(X)
	// Every true cluster must map onto exactly one fitted cluster.
	mapping := map[int]int{}
	for i, l := range labels {
		if prev, ok := mapping[truth[i]]; ok && prev != l {
			t.Fatalf("true cluster %d split across fitted clusters %d and %d", truth[i], prev, l)
		}
		mapping[truth[i]] = l
	}
	if len(mapping) != 3 {
		t.Fatalf("recovered %d clusters, want 3", len(mapping))
	}
}

func TestKMeansDeterministic(t *testing.T) {
	X, _ := threeBlobs(15, 3)
	fit := func() ([][]float64, []int) {
		km := NewKMeans(4)
		if err := km.Fit(X, 42); err != nil {
			t.Fatal(err)
		}
		return km.Centers, km.Labels(X)
	}
	c1, l1 := fit()
	c2, l2 := fit()
	if !reflect.DeepEqual(c1, c2) {
		t.Error("same (data, k, seed) produced different centers")
	}
	if !reflect.DeepEqual(l1, l2) {
		t.Error("same (data, k, seed) produced different labels")
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	km := NewKMeans(10)
	if err := km.Fit(X, 1); err != nil {
		t.Fatal(err)
	}
	if len(km.Centers) != 2 {
		t.Errorf("K capped at %d centers, want 2", len(km.Centers))
	}
}

func TestKMeansDegenerateData(t *testing.T) {
	// All points identical: every center collapses onto the point and
	// assignment is still well defined.
	X := [][]float64{{5, 5}, {5, 5}, {5, 5}}
	km := NewKMeans(2)
	if err := km.Fit(X, 9); err != nil {
		t.Fatal(err)
	}
	for _, l := range km.Labels(X) {
		if l < 0 || l >= len(km.Centers) {
			t.Errorf("label %d out of range", l)
		}
	}
}

// TestKMeansPinnedRegression pins the exact fitted centers for one
// (data, K, seed) triple: the deterministic-seeding contract says these may
// only change with an intentional algorithm change, never across reruns,
// architectures or map-iteration orders.
func TestKMeansPinnedRegression(t *testing.T) {
	X := [][]float64{
		{0}, {0.1}, {0.2}, {4.9}, {5}, {5.1}, {9.8}, {10}, {10.2},
	}
	km := NewKMeans(3)
	if err := km.Fit(X, 2019); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.1}, {10}, {5}}
	if len(km.Centers) != len(want) {
		t.Fatalf("got %d centers, want %d", len(km.Centers), len(want))
	}
	for c := range want {
		if math.Abs(km.Centers[c][0]-want[c][0]) > 1e-9 {
			t.Errorf("center %d = %v, want %v", c, km.Centers[c], want[c])
		}
	}
}

// TestKMeansEmptyClusterConvergence exercises the empty-cluster path: with
// more clusters than distinct values, surplus clusters go empty every Lloyd
// step and must be re-seated without breaking termination or label validity.
func TestKMeansEmptyClusterConvergence(t *testing.T) {
	var X [][]float64
	for i := 0; i < 5; i++ {
		X = append(X, []float64{0}, []float64{50}, []float64{100})
	}
	for seed := int64(0); seed < 10; seed++ {
		km := NewKMeans(5)
		if err := km.Fit(X, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(km.Centers) != 5 {
			t.Fatalf("seed %d: %d centers", seed, len(km.Centers))
		}
		for _, c := range km.Centers {
			if c[0] != 0 && c[0] != 50 && c[0] != 100 {
				t.Errorf("seed %d: center %v is not a data value", seed, c)
			}
		}
		for i, l := range km.Labels(X) {
			if l < 0 || l >= 5 {
				t.Errorf("seed %d: label %d of row %d out of range", seed, l, i)
			}
			if km.Centers[l][0] != X[i][0] {
				t.Errorf("seed %d: row %d (%v) labeled to center %v", seed, i, X[i], km.Centers[l])
			}
		}
	}
}

// TestReseatEmptyClustersDistinctPoints pins the fix for simultaneous empty
// clusters: each must claim its own farthest point. Before the fix both
// empty clusters copied the same point, leaving duplicate centers.
func TestReseatEmptyClustersDistinctPoints(t *testing.T) {
	centers := [][]float64{{0}, {999}, {999}}
	X := [][]float64{{0}, {10}, {20}}
	assign := []int{0, 0, 0}
	counts := []int{3, 0, 0}
	reseatEmptyClusters(centers, X, assign, counts)
	if centers[1][0] != 20 {
		t.Errorf("first empty cluster re-seated on %v, want the farthest point {20}", centers[1])
	}
	if centers[2][0] != 10 {
		t.Errorf("second empty cluster re-seated on %v, want the next farthest {10}", centers[2])
	}
	if assign[2] != 1 || assign[1] != 2 {
		t.Errorf("assign not updated for re-seated points: %v", assign)
	}
}

func TestKMeansBadInput(t *testing.T) {
	if err := NewKMeans(0).Fit([][]float64{{1}}, 1); err == nil {
		t.Error("K=0 accepted")
	}
	if err := NewKMeans(2).Fit(nil, 1); err == nil {
		t.Error("empty matrix accepted")
	}
	if err := NewKMeans(2).Fit([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged matrix accepted")
	}
}
