package ml

import (
	"math"
	"math/rand"
	"testing"
)

// anisotropicData generates points stretched along a known direction.
func anisotropicData(rng *rand.Rand, n int) [][]float64 {
	// Main axis (1,1)/√2 with σ=5, secondary (1,-1)/√2 with σ=0.5.
	out := make([][]float64, n)
	s := 1 / math.Sqrt2
	for i := range out {
		a := rng.NormFloat64() * 5
		b := rng.NormFloat64() * 0.5
		out[i] = []float64{a*s + b*s + 10, a*s - b*s - 3}
	}
	return out
}

func TestPCARecoversPrincipalAxis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X := anisotropicData(rng, 500)
	p := NewPCA(2)
	if err := p.Fit(X); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	ratio := p.ExplainedVarianceRatio()
	if ratio[0] < 0.95 {
		t.Fatalf("first component carries %v of variance, want > 0.95", ratio[0])
	}
	if math.Abs(ratio[0]+ratio[1]-1) > 1e-9 {
		t.Fatalf("ratios must sum to 1: %v", ratio)
	}
	// The projection onto component 0 must have much larger spread.
	proj := p.Transform(X)
	var v0, v1 float64
	for _, r := range proj {
		v0 += r[0] * r[0]
		v1 += r[1] * r[1]
	}
	if v0 < 50*v1 {
		t.Fatalf("projected variances %v vs %v — axis not recovered", v0, v1)
	}
}

func TestPCAReducesDimensions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X := anisotropicData(rng, 100)
	p := NewPCA(1)
	if err := p.Fit(X); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out := p.Transform(X)
	if len(out[0]) != 1 {
		t.Fatalf("kept %d dims, want 1", len(out[0]))
	}
	// Centering: projections of the mean point are 0.
	mean := []float64{0, 0}
	for _, r := range X {
		mean[0] += r[0]
		mean[1] += r[1]
	}
	mean[0] /= float64(len(X))
	mean[1] /= float64(len(X))
	pm := p.TransformRow(mean)
	if math.Abs(pm[0]) > 1e-9 {
		t.Fatalf("mean must project to origin, got %v", pm[0])
	}
}

func TestPCAKeepAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	X := anisotropicData(rng, 50)
	p := NewPCA(0)
	if err := p.Fit(X); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := len(p.Transform(X)[0]); got != 2 {
		t.Fatalf("components kept = %d, want 2", got)
	}
}

func TestPCAInPipeline(t *testing.T) {
	// PCA satisfies the Scaler contract, so it can front a pipeline.
	rng := rand.New(rand.NewSource(4))
	X := anisotropicData(rng, 120)
	y := make([]float64, len(X))
	for i, r := range X {
		y[i] = r[0] + r[1]
	}
	fm := &fakeModel{}
	pipe := &Pipeline{Scaler: NewPCA(1), Model: fm}
	if err := pipe.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(fm.sawX[0]) != 1 {
		t.Fatalf("model saw %d dims, want 1", len(fm.sawX[0]))
	}
	_ = pipe.Predict(X[0])
}

func TestPCAValidation(t *testing.T) {
	p := NewPCA(1)
	if err := p.Fit(nil); err == nil {
		t.Fatal("empty must fail")
	}
	if err := p.Fit([][]float64{{1, 2}}); err == nil {
		t.Fatal("single sample must fail")
	}
	if err := p.Fit([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged must fail")
	}
	bad := NewPCA(5)
	if err := bad.Fit([][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("components > dims must fail")
	}
}
