// Package ml is the supervised-regression toolkit the reproduction uses in
// place of scikit-learn: the Regressor contract, feature scaling, dataset
// splitting (plain, k-fold, and the paper's stratified shuffle splits), a
// scaler+model pipeline, PCA, and a deterministic k-means (KMeans) used by
// the planner's cluster-coverage acquisition strategy. Concrete models live
// in the subpackages linreg, knn, svr, tree, ensemble and mlp; evaluation
// metrics (including Kendall τ and the mean-confidence-interval helper the
// planner's convergence criteria use) in metrics; and cross-validation/
// hyperparameter search/learning curves in modelsel.
package ml
