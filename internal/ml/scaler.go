package ml

import (
	"fmt"
	"math"
)

// Scaler learns a column-wise transformation on training data and applies it
// to new rows. Implementations never modify their inputs.
type Scaler interface {
	Fit(X [][]float64) error
	Transform(X [][]float64) [][]float64
	TransformRow(x []float64) []float64
}

// StandardScaler centers each column to zero mean and scales to unit
// variance (constant columns are centered only), matching scikit-learn's
// StandardScaler. The zero value is ready for Fit.
type StandardScaler struct {
	mean  []float64
	scale []float64
}

// Fit learns per-column means and standard deviations.
func (s *StandardScaler) Fit(X [][]float64) error {
	if len(X) == 0 || len(X[0]) == 0 {
		return fmt.Errorf("%w: empty matrix", ErrBadData)
	}
	cols := len(X[0])
	s.mean = make([]float64, cols)
	s.scale = make([]float64, cols)
	n := float64(len(X))
	for _, row := range X {
		if len(row) != cols {
			return fmt.Errorf("%w: ragged matrix", ErrBadData)
		}
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.scale[j] += d * d
		}
	}
	for j := range s.scale {
		sd := math.Sqrt(s.scale[j] / n)
		if sd == 0 {
			sd = 1 // constant column: center only
		}
		s.scale[j] = sd
	}
	return nil
}

// TransformRow scales a single row.
func (s *StandardScaler) TransformRow(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.scale[j]
	}
	return out
}

// Transform scales every row.
func (s *StandardScaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.TransformRow(row)
	}
	return out
}

// MinMaxScaler maps each column linearly onto [0,1] (constant columns map
// to 0), matching scikit-learn's MinMaxScaler.
type MinMaxScaler struct {
	min  []float64
	span []float64
}

// Fit learns per-column minima and ranges.
func (s *MinMaxScaler) Fit(X [][]float64) error {
	if len(X) == 0 || len(X[0]) == 0 {
		return fmt.Errorf("%w: empty matrix", ErrBadData)
	}
	cols := len(X[0])
	s.min = make([]float64, cols)
	max := make([]float64, cols)
	copy(s.min, X[0])
	copy(max, X[0])
	for _, row := range X {
		if len(row) != cols {
			return fmt.Errorf("%w: ragged matrix", ErrBadData)
		}
		for j, v := range row {
			if v < s.min[j] {
				s.min[j] = v
			}
			if v > max[j] {
				max[j] = v
			}
		}
	}
	s.span = make([]float64, cols)
	for j := range s.span {
		d := max[j] - s.min[j]
		if d == 0 {
			d = 1
		}
		s.span[j] = d
	}
	return nil
}

// TransformRow scales a single row.
func (s *MinMaxScaler) TransformRow(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.min[j]) / s.span[j]
	}
	return out
}

// Transform scales every row.
func (s *MinMaxScaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.TransformRow(row)
	}
	return out
}

// Pipeline chains a scaler with a model; the scaler is fitted on the
// training rows only, so cross-validation folds never leak statistics.
// A nil Scaler passes features through unchanged.
type Pipeline struct {
	Scaler Scaler
	Model  Regressor
	fitted bool
}

// Fit fits the scaler, transforms the training rows and fits the model.
func (p *Pipeline) Fit(X [][]float64, y []float64) error {
	if err := CheckXY(X, y); err != nil {
		return err
	}
	rows := X
	if p.Scaler != nil {
		if err := p.Scaler.Fit(X); err != nil {
			return err
		}
		rows = p.Scaler.Transform(X)
	}
	if err := p.Model.Fit(rows, y); err != nil {
		return err
	}
	p.fitted = true
	return nil
}

// Predict transforms and predicts one row.
func (p *Pipeline) Predict(x []float64) float64 {
	if p.Scaler != nil {
		x = p.Scaler.TransformRow(x)
	}
	return p.Model.Predict(x)
}

var _ Regressor = (*Pipeline)(nil)
