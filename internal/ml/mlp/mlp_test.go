package mlp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ml/metrics"
)

func TestFitsLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		y[i] = 3*X[i][0] - 2*X[i][1] + 0.5
	}
	m := New([]int{16}, 7)
	m.Epochs = 200
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	yhat := make([]float64, n)
	for i := range X {
		yhat[i] = m.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 < 0.98 {
		t.Fatalf("MLP linear R² = %v, want > 0.98", r2)
	}
}

func TestFitsNonlinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()*4 - 2
		X[i] = []float64{x}
		y[i] = math.Sin(2 * x)
	}
	m := New([]int{32, 16}, 3)
	m.Epochs = 400
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	yhat := make([]float64, n)
	for i := range X {
		yhat[i] = m.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 < 0.9 {
		t.Fatalf("MLP sin R² = %v, want > 0.9", r2)
	}
}

func TestTanhActivation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 150
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := rng.Float64()*2 - 1
		X[i] = []float64{x}
		y[i] = x * x
	}
	m := New([]int{24}, 4)
	m.Act = Tanh
	m.Epochs = 400
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	yhat := make([]float64, n)
	for i := range X {
		yhat[i] = m.Predict(X[i])
	}
	if r2 := metrics.R2(y, yhat); r2 < 0.9 {
		t.Fatalf("tanh MLP R² = %v, want > 0.9", r2)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		y[i] = X[i][0]
	}
	a, b := New([]int{8}, 5), New([]int{8}, 5)
	a.Epochs, b.Epochs = 50, 50
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if a.Predict([]float64{0.5}) != b.Predict([]float64{0.5}) {
		t.Fatal("same seed must give identical networks")
	}
}

func TestValidation(t *testing.T) {
	if err := New(nil, 1).Fit(nil, nil); err == nil {
		t.Fatal("empty data must fail")
	}
	m := New([]int{0}, 1)
	if err := m.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("zero-width hidden layer must fail")
	}
	fresh := New([]int{4}, 1)
	if got := fresh.Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted Predict = %v", got)
	}
}

func TestDefaults(t *testing.T) {
	m := &Regressor{}
	if err := m.Fit([][]float64{{1}, {2}, {3}, {4}}, []float64{1, 2, 3, 4}); err != nil {
		t.Fatalf("Fit with defaults: %v", err)
	}
	if len(m.Hidden) != 2 || m.Epochs != 300 || m.BatchSize != 32 {
		t.Fatalf("defaults not applied: %+v", m)
	}
}
