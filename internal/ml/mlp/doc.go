// Package mlp implements the Multi-Layer Perceptron regressor the paper
// lists as future work (Section V): fully connected hidden layers with tanh
// or ReLU activations, trained by mini-batch Adam on squared error.
package mlp
