package mlp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Activation selects the hidden-layer nonlinearity.
type Activation int

// Supported activations.
const (
	ReLU Activation = iota + 1
	Tanh
)

// Regressor is a feed-forward network with a linear output unit.
type Regressor struct {
	// Hidden lists the hidden layer widths (default [64, 32]).
	Hidden []int
	// Act is the hidden activation (default ReLU).
	Act Activation
	// Epochs is the number of passes over the data (default 300).
	Epochs int
	// BatchSize for mini-batch updates (default 32).
	BatchSize int
	// LearningRate for Adam (default 1e-3).
	LearningRate float64
	// L2 is the weight decay (default 1e-4).
	L2 float64
	// Seed drives initialization and shuffling.
	Seed int64

	weights [][]float64 // per layer, row-major (out × in)
	biases  [][]float64
	dims    []int
	fitted  bool
}

// New returns an MLP with the given hidden layout and seed.
func New(hidden []int, seed int64) *Regressor {
	return &Regressor{Hidden: hidden, Seed: seed}
}

func (m *Regressor) defaults() {
	if len(m.Hidden) == 0 {
		m.Hidden = []int{64, 32}
	}
	if m.Act == 0 {
		m.Act = ReLU
	}
	if m.Epochs <= 0 {
		m.Epochs = 300
	}
	if m.BatchSize <= 0 {
		m.BatchSize = 32
	}
	if m.LearningRate <= 0 {
		m.LearningRate = 1e-3
	}
	if m.L2 < 0 {
		m.L2 = 0
	}
}

func (m *Regressor) act(v float64) float64 {
	if m.Act == Tanh {
		return math.Tanh(v)
	}
	if v < 0 {
		return 0
	}
	return v
}

func (m *Regressor) actGrad(pre float64) float64 {
	if m.Act == Tanh {
		t := math.Tanh(pre)
		return 1 - t*t
	}
	if pre < 0 {
		return 0
	}
	return 1
}

// Fit trains the network with Adam.
func (m *Regressor) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	m.defaults()
	for _, h := range m.Hidden {
		if h < 1 {
			return fmt.Errorf("ml/mlp: hidden width %d", h)
		}
	}
	rng := rand.New(rand.NewSource(m.Seed))
	in := len(X[0])
	m.dims = append(append([]int{in}, m.Hidden...), 1)
	L := len(m.dims) - 1
	m.weights = make([][]float64, L)
	m.biases = make([][]float64, L)
	for l := 0; l < L; l++ {
		fanIn, fanOut := m.dims[l], m.dims[l+1]
		scale := math.Sqrt(2 / float64(fanIn)) // He init; fine for tanh too
		w := make([]float64, fanIn*fanOut)
		for i := range w {
			w[i] = rng.NormFloat64() * scale
		}
		m.weights[l] = w
		m.biases[l] = make([]float64, fanOut)
	}

	// Adam state.
	mw := make([][]float64, L)
	vw := make([][]float64, L)
	mb := make([][]float64, L)
	vb := make([][]float64, L)
	for l := 0; l < L; l++ {
		mw[l] = make([]float64, len(m.weights[l]))
		vw[l] = make([]float64, len(m.weights[l]))
		mb[l] = make([]float64, len(m.biases[l]))
		vb[l] = make([]float64, len(m.biases[l]))
	}
	const beta1, beta2, eps = 0.9, 0.999, 1e-8

	n := len(X)
	order := rng.Perm(n)
	// Forward/backward scratch.
	pre := make([][]float64, L) // pre-activations per layer
	out := make([][]float64, L+1)
	for l := 0; l < L; l++ {
		pre[l] = make([]float64, m.dims[l+1])
		out[l+1] = make([]float64, m.dims[l+1])
	}
	delta := make([][]float64, L)
	for l := 0; l < L; l++ {
		delta[l] = make([]float64, m.dims[l+1])
	}
	gw := make([][]float64, L)
	gb := make([][]float64, L)
	for l := 0; l < L; l++ {
		gw[l] = make([]float64, len(m.weights[l]))
		gb[l] = make([]float64, len(m.biases[l]))
	}

	step := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for lo := 0; lo < n; lo += m.BatchSize {
			hi := lo + m.BatchSize
			if hi > n {
				hi = n
			}
			batch := order[lo:hi]
			for l := 0; l < L; l++ {
				for i := range gw[l] {
					gw[l][i] = 0
				}
				for i := range gb[l] {
					gb[l][i] = 0
				}
			}
			for _, idx := range batch {
				// Forward.
				out[0] = X[idx]
				for l := 0; l < L; l++ {
					fanIn := m.dims[l]
					for j := 0; j < m.dims[l+1]; j++ {
						s := m.biases[l][j]
						wrow := m.weights[l][j*fanIn : (j+1)*fanIn]
						for i2, v := range out[l] {
							s += wrow[i2] * v
						}
						pre[l][j] = s
						if l == L-1 {
							out[l+1][j] = s // linear output
						} else {
							out[l+1][j] = m.act(s)
						}
					}
				}
				// Backward.
				diff := out[L][0] - y[idx]
				delta[L-1][0] = diff
				for l := L - 2; l >= 0; l-- {
					fanIn := m.dims[l+1]
					for j := 0; j < m.dims[l+1]; j++ {
						var s float64
						for k2 := 0; k2 < m.dims[l+2]; k2++ {
							s += m.weights[l+1][k2*fanIn+j] * delta[l+1][k2]
						}
						delta[l][j] = s * m.actGrad(pre[l][j])
					}
				}
				for l := 0; l < L; l++ {
					fanIn := m.dims[l]
					for j := 0; j < m.dims[l+1]; j++ {
						d := delta[l][j]
						grow := gw[l][j*fanIn : (j+1)*fanIn]
						for i2, v := range out[l] {
							grow[i2] += d * v
						}
						gb[l][j] += d
					}
				}
			}
			// Adam update.
			step++
			bs := float64(len(batch))
			corr1 := 1 - math.Pow(beta1, float64(step))
			corr2 := 1 - math.Pow(beta2, float64(step))
			for l := 0; l < L; l++ {
				for i := range m.weights[l] {
					g := gw[l][i]/bs + m.L2*m.weights[l][i]
					mw[l][i] = beta1*mw[l][i] + (1-beta1)*g
					vw[l][i] = beta2*vw[l][i] + (1-beta2)*g*g
					m.weights[l][i] -= m.LearningRate * (mw[l][i] / corr1) / (math.Sqrt(vw[l][i]/corr2) + eps)
				}
				for i := range m.biases[l] {
					g := gb[l][i] / bs
					mb[l][i] = beta1*mb[l][i] + (1-beta1)*g
					vb[l][i] = beta2*vb[l][i] + (1-beta2)*g*g
					m.biases[l][i] -= m.LearningRate * (mb[l][i] / corr1) / (math.Sqrt(vb[l][i]/corr2) + eps)
				}
			}
		}
	}
	m.fitted = true
	return nil
}

// Predict runs a forward pass.
func (m *Regressor) Predict(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	cur := x
	L := len(m.dims) - 1
	for l := 0; l < L; l++ {
		fanIn := m.dims[l]
		next := make([]float64, m.dims[l+1])
		for j := range next {
			s := m.biases[l][j]
			wrow := m.weights[l][j*fanIn : (j+1)*fanIn]
			for i, v := range cur {
				s += wrow[i] * v
			}
			if l == L-1 {
				next[j] = s
			} else {
				next[j] = m.act(s)
			}
		}
		cur = next
	}
	return cur[0]
}

var _ ml.Regressor = (*Regressor)(nil)
