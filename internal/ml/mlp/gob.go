package mlp

import (
	"encoding/gob"

	"repro/internal/ml"
)

func init() {
	gob.RegisterName("ffr/mlp.Regressor", &Regressor{})
}

// mlpState is the explicit wire format of a fitted MLP: the architecture
// and training configuration plus the learned weight matrices and biases.
type mlpState struct {
	Hidden       []int
	Act          Activation
	Epochs       int
	BatchSize    int
	LearningRate float64
	L2           float64
	Seed         int64
	Weights      [][]float64
	Biases       [][]float64
	Dims         []int
	Fitted       bool
}

// GobEncode exports the configuration and the learned parameters.
func (m *Regressor) GobEncode() ([]byte, error) {
	return ml.GobState(mlpState{
		Hidden:       m.Hidden,
		Act:          m.Act,
		Epochs:       m.Epochs,
		BatchSize:    m.BatchSize,
		LearningRate: m.LearningRate,
		L2:           m.L2,
		Seed:         m.Seed,
		Weights:      m.weights,
		Biases:       m.biases,
		Dims:         m.dims,
		Fitted:       m.fitted,
	})
}

// GobDecode restores a fitted MLP.
func (m *Regressor) GobDecode(data []byte) error {
	var st mlpState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	m.Hidden = st.Hidden
	m.Act = st.Act
	m.Epochs = st.Epochs
	m.BatchSize = st.BatchSize
	m.LearningRate = st.LearningRate
	m.L2 = st.L2
	m.Seed = st.Seed
	m.weights = st.Weights
	m.biases = st.Biases
	m.dims = st.Dims
	m.fitted = st.Fitted
	return nil
}
