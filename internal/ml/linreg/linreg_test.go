package linreg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

func TestRecoversLinearFunction(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		n := d + 2 + rng.Intn(30)
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		b := rng.NormFloat64()
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = make([]float64, d)
			s := b
			for j := range X[i] {
				X[i][j] = rng.NormFloat64()
				s += w[j] * X[i][j]
			}
			y[i] = s
		}
		m := New()
		if err := m.Fit(X, y); err != nil {
			return false
		}
		coef, intercept, err := m.Coefficients()
		if err != nil {
			return false
		}
		for j := range w {
			if math.Abs(coef[j]-w[j]) > 1e-7 {
				return false
			}
		}
		return math.Abs(intercept-b) < 1e-7
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestInterceptOnlyData(t *testing.T) {
	// Constant target: weights 0, intercept = constant.
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{5, 5, 5, 5}
	m := New()
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if got := m.Predict([]float64{99}); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Predict = %v, want 5", got)
	}
}

func TestNoIntercept(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{2, 4, 6}
	m := &LinearRegression{NoIntercept: true}
	if err := m.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	coef, intercept, _ := m.Coefficients()
	if math.Abs(coef[0]-2) > 1e-9 || intercept != 0 {
		t.Fatalf("coef=%v intercept=%v", coef, intercept)
	}
}

func TestUnderdeterminedRejected(t *testing.T) {
	X := [][]float64{{1, 2, 3}}
	y := []float64{1}
	if err := New().Fit(X, y); err == nil {
		t.Fatal("underdetermined OLS must fail")
	}
}

func TestDuplicateColumnRejectedByOLSAcceptedByRidge(t *testing.T) {
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	y := []float64{1, 2, 3, 4}
	if err := New().Fit(X, y); err == nil {
		t.Fatal("collinear OLS must fail")
	}
	r := NewRidge(1e-6)
	if err := r.Fit(X, y); err != nil {
		t.Fatalf("ridge must handle collinearity: %v", err)
	}
	if got := r.Predict([]float64{2.5, 2.5}); math.Abs(got-2.5) > 1e-3 {
		t.Fatalf("ridge Predict = %v, want ~2.5", got)
	}
}

func TestUnfittedBehaviour(t *testing.T) {
	m := New()
	if got := m.Predict([]float64{1}); got != 0 {
		t.Fatalf("unfitted Predict = %v, want 0", got)
	}
	if _, _, err := m.Coefficients(); err != ml.ErrNotFitted {
		t.Fatalf("Coefficients err = %v, want ErrNotFitted", err)
	}
}

func TestBadData(t *testing.T) {
	if err := New().Fit(nil, nil); err == nil {
		t.Fatal("empty data must fail")
	}
}
