// Package linreg implements the paper's Linear Least Squares regressor
// (Section IV-B1): an ordinary least squares fit of a linear model, solved
// by Householder QR, plus an optional ridge penalty for rank-deficient
// feature matrices.
package linreg
