package linreg

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/ml"
)

// LinearRegression fits y ≈ w·x + b by minimizing the residual sum of
// squares. The zero value is a plain OLS model; set Lambda for ridge
// regularization (the intercept is never penalized in spirit — with
// standardized features the distinction is immaterial, and the augmented
// column trick keeps the solver simple).
type LinearRegression struct {
	// Lambda is the L2 penalty; 0 means ordinary least squares.
	Lambda float64
	// FitIntercept controls the bias term; the zero value fits one.
	NoIntercept bool

	weights   []float64 // learned coefficients (without intercept)
	intercept float64
	fitted    bool
}

// New returns an OLS regressor.
func New() *LinearRegression { return &LinearRegression{} }

// NewRidge returns a ridge regressor with the given penalty.
func NewRidge(lambda float64) *LinearRegression { return &LinearRegression{Lambda: lambda} }

// Fit solves the least squares problem.
func (l *LinearRegression) Fit(X [][]float64, y []float64) error {
	if err := ml.CheckXY(X, y); err != nil {
		return err
	}
	rows, cols := len(X), len(X[0])
	aug := cols
	if !l.NoIntercept {
		aug++
	}
	if rows < aug && l.Lambda == 0 {
		return fmt.Errorf("ml/linreg: %d samples cannot determine %d coefficients", rows, aug)
	}
	a := mat.New(rows, aug)
	for i, row := range X {
		r := a.RawRow(i)
		copy(r, row)
		if !l.NoIntercept {
			r[cols] = 1
		}
	}
	sol, err := mat.RidgeSolve(a, y, l.Lambda)
	if err != nil {
		return fmt.Errorf("ml/linreg: %w", err)
	}
	l.weights = sol[:cols]
	if !l.NoIntercept {
		l.intercept = sol[cols]
	} else {
		l.intercept = 0
	}
	l.fitted = true
	return nil
}

// Predict evaluates the linear model.
func (l *LinearRegression) Predict(x []float64) float64 {
	if !l.fitted {
		return 0
	}
	return mat.Dot(l.weights, x) + l.intercept
}

// Coefficients returns a copy of the learned weights and the intercept.
func (l *LinearRegression) Coefficients() ([]float64, float64, error) {
	if !l.fitted {
		return nil, 0, ml.ErrNotFitted
	}
	w := make([]float64, len(l.weights))
	copy(w, l.weights)
	return w, l.intercept, nil
}

var _ ml.Regressor = (*LinearRegression)(nil)
