package linreg

import (
	"encoding/gob"

	"repro/internal/ml"
)

func init() {
	gob.RegisterName("ffr/linreg.LinearRegression", &LinearRegression{})
}

// linregState is the explicit wire format of a fitted linear model.
type linregState struct {
	Lambda      float64
	NoIntercept bool
	Weights     []float64
	Intercept   float64
	Fitted      bool
}

// GobEncode exports the configuration and learned coefficients.
func (l *LinearRegression) GobEncode() ([]byte, error) {
	return ml.GobState(linregState{
		Lambda:      l.Lambda,
		NoIntercept: l.NoIntercept,
		Weights:     l.weights,
		Intercept:   l.intercept,
		Fitted:      l.fitted,
	})
}

// GobDecode restores a fitted linear model.
func (l *LinearRegression) GobDecode(data []byte) error {
	var st linregState
	if err := ml.UngobState(data, &st); err != nil {
		return err
	}
	l.Lambda = st.Lambda
	l.NoIntercept = st.NoIntercept
	l.weights = st.Weights
	l.intercept = st.Intercept
	l.fitted = st.Fitted
	return nil
}
