package api

import "time"

// PredictRequest is the body of POST /v1/predict. Exactly one of Vector
// (single) or Vectors (batch) must be set.
type PredictRequest struct {
	Model   string      `json:"model"`
	Vector  []float64   `json:"vector,omitempty"`
	Vectors [][]float64 `json:"vectors,omitempty"`
}

// PredictResponse is the success body of POST /v1/predict. The field set
// and names are wire-compatible with the pre-envelope server; Coalesced is
// additive.
type PredictResponse struct {
	Model       string    `json:"model"`
	Predictions []float64 `json:"predictions"`
	// Prediction mirrors Predictions[0] for single-vector requests.
	Prediction *float64 `json:"prediction,omitempty"`
	// CacheHits counts vectors served from the response cache.
	CacheHits int `json:"cache_hits"`
	// Coalesced counts vectors whose evaluation was deduplicated onto an
	// identical in-flight computation instead of re-evaluated.
	Coalesced int `json:"coalesced,omitempty"`
}

// ModelInfo is one /v1/models entry: the artifact header, minus the model.
// Circuit and Workload identify the corpus scenario the model was trained
// on, letting clients of a multi-scenario deployment route predictions to
// the right model.
type ModelInfo struct {
	Name        string             `json:"name"`
	Kind        string             `json:"kind"`
	Circuit     string             `json:"circuit,omitempty"`
	Workload    string             `json:"workload,omitempty"`
	NumFeatures int                `json:"num_features"`
	Features    []string           `json:"features"`
	TrainRows   int                `json:"train_rows"`
	TrainHash   string             `json:"train_hash"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	CreatedAt   time.Time          `json:"created_at"`
	// Fingerprint digests the whole artifact (see persist.Artifact
	// Fingerprint); it changes whenever a hot reload swaps the model.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Source is the artifact file the model was loaded from; empty for
	// models registered in-process.
	Source string `json:"source,omitempty"`
}

// ModelsResponse is the success body of GET /v1/models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// HealthResponse is the success body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Models int    `json:"models"`
	Cached int    `json:"cached"`
}

// ReloadRequest is the body of POST /v1/models/reload. An empty or absent
// Models list reloads every file-backed model.
type ReloadRequest struct {
	Models []string `json:"models,omitempty"`
}

// ReloadEntry reports one model's hot-reload outcome.
type ReloadEntry struct {
	Model string `json:"model"`
	// Path is the artifact file the model was (re)loaded from; empty for
	// in-process registrations, which cannot be reloaded.
	Path string `json:"path,omitempty"`
	// Reloaded reports whether a fresh artifact replaced the served one.
	Reloaded bool `json:"reloaded"`
	// Changed reports whether the fresh artifact differed (by fingerprint)
	// from the one it replaced; an unchanged file reloads as a no-op.
	Changed bool `json:"changed"`
	// Error carries the per-model failure, if any; other models still
	// reload.
	Error string `json:"error,omitempty"`
}

// ReloadResponse is the success body of POST /v1/models/reload.
type ReloadResponse struct {
	Results []ReloadEntry `json:"results"`
	// Reloaded counts entries that reloaded successfully.
	Reloaded int `json:"reloaded"`
}
