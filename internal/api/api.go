package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Stable error codes of the common envelope. Clients match on these, never
// on message text.
const (
	// CodeBadRequest marks malformed or invalid request payloads.
	CodeBadRequest = "bad_request"
	// CodeNotFound marks references to unknown resources (models, chunks).
	CodeNotFound = "not_found"
	// CodeOverloaded marks admission-control rejections; the response
	// carries a Retry-After header.
	CodeOverloaded = "overloaded"
	// CodeUnavailable marks a service that cannot serve yet (no models
	// loaded, campaign not started).
	CodeUnavailable = "unavailable"
	// CodeConflict marks requests that contradict server state (foreign
	// campaign fingerprints, duplicate registrations).
	CodeConflict = "conflict"
	// CodeInternal marks server-side failures.
	CodeInternal = "internal"
)

// Error is the common error envelope carried by every non-2xx response.
// It implements the error interface so clients can return it directly.
type Error struct {
	// Code is a stable machine-matchable identifier (Code* constants).
	Code string `json:"code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
	// Detail optionally carries additional context (offending field,
	// expected value).
	Detail string `json:"detail,omitempty"`
	// TraceID correlates the failure with server-side structured logs and
	// span journals. Filled by WriteError when the Traced middleware has
	// stamped the request.
	TraceID string `json:"trace_id,omitempty"`
	// Status is the HTTP status the envelope traveled under; clients fill
	// it on decode. It is not part of the wire format.
	Status int `json:"-"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("%s: %s (%s)", e.Code, e.Message, e.Detail)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorResponse is the wire shape of a failed request: the envelope under
// an "error" key, mirroring the pre-envelope servers' {"error": ...} layout
// so clients keep finding failures in the same place.
type ErrorResponse struct {
	Error *Error `json:"error"`
}

// WriteJSON writes v as the JSON response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// WriteError writes the common error envelope with the given status and
// code. When the Traced middleware handled the request, the trace ID it
// stamped onto the response headers is echoed into the envelope so a
// client-reported failure can be matched to server logs.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	WriteJSON(w, status, ErrorResponse{Error: &Error{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
		TraceID: w.Header().Get(HeaderTraceID),
		Status:  status,
	}})
}

// WriteOverloaded writes a 429 rejection with a Retry-After header of the
// given number of seconds (minimum 1 — a zero Retry-After invites an
// immediate, equally doomed retry).
func WriteOverloaded(w http.ResponseWriter, retryAfterSeconds int, format string, args ...any) {
	if retryAfterSeconds < 1 {
		retryAfterSeconds = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
	WriteError(w, http.StatusTooManyRequests, CodeOverloaded, format, args...)
}

// DecodeError extracts the error envelope from a failed response body. It
// always returns a non-nil *Error: bodies that are not envelopes (proxies,
// panics) degrade to a CodeInternal envelope quoting the raw body.
func DecodeError(status int, body []byte) *Error {
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err == nil && er.Error != nil && er.Error.Code != "" {
		er.Error.Status = status
		return er.Error
	}
	msg := string(body)
	if len(msg) > 256 {
		msg = msg[:256] + "..."
	}
	return &Error{Code: CodeInternal, Message: fmt.Sprintf("http %d: %s", status, msg), Status: status}
}

// ReadJSON decodes a request body into v, bounding the body size.
func ReadJSON(r *http.Request, w http.ResponseWriter, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	return json.NewDecoder(r.Body).Decode(v)
}

// drainBody reads at most n bytes of a response body, for error envelopes.
func drainBody(r io.Reader, n int64) []byte {
	b, _ := io.ReadAll(io.LimitReader(r, n))
	return b
}
