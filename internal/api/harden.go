package api

// HardenRequest is the body of POST /v1/harden: ask a served model for a
// selective-TMR hardening plan under an area budget.
//
// The flip-flop population comes from one of two places. Explicit mode sets
// Vectors (one feature row per flip-flop) plus Costs (per-FF TMR area) and
// optionally Names; the server scores exactly what it was given. Scenario
// mode leaves Vectors empty: the server materializes Scenario (or, when
// that is empty too, the corpus scenario the artifact is tagged with) and
// derives rows, costs and names itself.
type HardenRequest struct {
	// Model names the served artifact that scores criticality.
	Model string `json:"model"`
	// Budget is the area budget as a fraction of the full-TMR area;
	// negative is rejected, anything >= 1 plans full TMR.
	Budget float64 `json:"budget"`
	// Clusters is the number of criticality bands; 0 means the advisor
	// default.
	Clusters int `json:"clusters,omitempty"`
	// Seed drives the clustering; plans are deterministic in it.
	Seed int64 `json:"seed,omitempty"`

	// Vectors, Costs and Names select explicit mode (see type comment).
	Vectors [][]float64 `json:"vectors,omitempty"`
	Costs   []float64   `json:"costs,omitempty"`
	Names   []string    `json:"names,omitempty"`

	// Scenario, Scale and ScenarioSeed select scenario mode.
	Scenario     string `json:"scenario,omitempty"`
	Scale        string `json:"scale,omitempty"`
	ScenarioSeed int64  `json:"scenario_seed,omitempty"`
}

// HardenCandidate is one ranked flip-flop of a hardening plan.
type HardenCandidate struct {
	FF      int     `json:"ff"`
	Name    string  `json:"name,omitempty"`
	Score   float64 `json:"score"`
	Cluster int     `json:"cluster"`
	Area    float64 `json:"area"`
}

// HardenBudgetPoint is one point of the budget-vs-residual curve.
type HardenBudgetPoint struct {
	Budget      float64 `json:"budget"`
	Area        float64 `json:"area"`
	FFs         int     `json:"ffs"`
	ResidualFFR float64 `json:"residual_ffr"`
}

// HardenResponse is the success body of POST /v1/harden: the plan, ready
// to feed into a campaign spec's Harden list for verification.
type HardenResponse struct {
	Model    string `json:"model"`
	Circuit  string `json:"circuit,omitempty"`
	Workload string `json:"workload,omitempty"`
	Clusters int    `json:"clusters"`

	Budget      float64 `json:"budget"`
	TotalArea   float64 `json:"total_area"`
	UsedArea    float64 `json:"used_area"`
	BaseFFR     float64 `json:"base_ffr"`
	ResidualFFR float64 `json:"residual_ffr"`

	// Selected is the hardening set, most critical first; SelectedFFs is
	// the same set as ascending indices — the shape CampaignSpec.Harden
	// wants.
	Selected    []HardenCandidate   `json:"selected"`
	SelectedFFs []int               `json:"selected_ffs"`
	Rest        []HardenCandidate   `json:"rest,omitempty"`
	Curve       []HardenBudgetPoint `json:"curve,omitempty"`
}
