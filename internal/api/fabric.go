package api

import (
	"fmt"
	"strconv"
)

// CampaignSpec identifies a distributed fault-injection campaign completely
// and deterministically: every node that materializes the spec derives the
// same netlist, workload, golden trace, injection plan and shard geometry,
// which is what lets workers simulate chunks independently and the
// coordinator merge them into a checkpoint bit-identical to a single-node
// run.
type CampaignSpec struct {
	// Scenario is the corpus scenario identifier ("family/workload").
	Scenario string `json:"scenario"`
	// Scale is the corpus scale name ("small", "default").
	Scale string `json:"scale"`
	// Seed drives netlist generation and workload construction.
	Seed int64 `json:"seed"`
	// InjectionsPerFF is the per-flip-flop SEU budget; 0 adopts the
	// scenario's default geometry.
	InjectionsPerFF int `json:"injections_per_ff,omitempty"`
	// CampaignSeed drives injection-time sampling; 0 adopts the scenario's
	// default.
	CampaignSeed int64 `json:"campaign_seed,omitempty"`
	// ChunkJobs is the shard chunk size in jobs; 0 means the runner
	// default.
	ChunkJobs int `json:"chunk_jobs,omitempty"`
	// Schedule is the batch-packing schedule name; "" means the runner
	// default (clustered).
	Schedule string `json:"schedule,omitempty"`
	// FaultModel is the canonical fault-model string ("seu", "mbu:3",
	// "stuck0:8@0.25-0.75", "set", ...); "" means SEU. The model is part
	// of the campaign identity: it shapes the injection plan, the target
	// space and the per-lane fault effects, and every node must agree on
	// it for the fingerprints to match.
	FaultModel string `json:"fault_model,omitempty"`
	// Harden lists flip-flop indices to TMR-rewrite before the campaign
	// runs (see internal/harden); empty runs the unhardened design. The
	// indices refer to the unhardened netlist's FF order and are part of
	// the campaign identity — workers materialize the same rewrite and
	// the fingerprints prove it.
	Harden []int `json:"harden,omitempty"`
}

// JoinRequest is the body of POST /v1/fabric/join: a worker announcing
// itself.
type JoinRequest struct {
	Worker string `json:"worker"`
}

// JoinResponse hands a joining worker the campaign spec plus the
// fingerprints its local materialization must reproduce before it may
// lease work.
type JoinResponse struct {
	Spec CampaignSpec `json:"spec"`
	// PlanHash and GoldenHash fingerprint the injection plan and golden
	// trace (hex); a worker whose local build disagrees must not
	// contribute masks.
	PlanHash   string `json:"plan_hash"`
	GoldenHash string `json:"golden_hash"`
	// TotalJobs, ChunkJobs and NumChunks are the shard geometry.
	TotalJobs int `json:"total_jobs"`
	ChunkJobs int `json:"chunk_jobs"`
	NumChunks int `json:"num_chunks"`
	// LeaseTTLMillis is how long a lease stays valid without a heartbeat.
	LeaseTTLMillis int64 `json:"lease_ttl_millis"`
}

// LeaseRequest is the body of POST /v1/fabric/lease: a worker asking for
// up to Max chunks of work.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max,omitempty"`
}

// LeaseResponse grants chunks, asks the worker to retry later, or reports
// the campaign done.
type LeaseResponse struct {
	// Chunks are the shard chunk indices now leased to the worker.
	Chunks []int `json:"chunks,omitempty"`
	// Stolen counts how many of Chunks were work-stolen from another
	// worker's outstanding lease (straggler shards); informational.
	Stolen int `json:"stolen,omitempty"`
	// Done reports that every chunk is complete; the worker can exit.
	Done bool `json:"done,omitempty"`
	// RetryMillis asks the worker to poll again after this delay when no
	// chunks are currently available.
	RetryMillis int64 `json:"retry_millis,omitempty"`
}

// HeartbeatRequest is the body of POST /v1/fabric/heartbeat: the chunks a
// worker is still computing.
type HeartbeatRequest struct {
	Worker string `json:"worker"`
	Chunks []int  `json:"chunks,omitempty"`
}

// HeartbeatResponse extends the worker's leases and lists chunks the
// coordinator no longer considers leased to it (expired and re-leased, or
// already completed by another worker) — the worker may abandon those.
type HeartbeatResponse struct {
	Canceled []int `json:"canceled,omitempty"`
}

// CompleteRequest is the body of POST /v1/fabric/complete: one finished
// chunk's failure masks. Masks travel hex-encoded because JSON numbers
// cannot carry 64-bit masks exactly.
type CompleteRequest struct {
	Worker string `json:"worker"`
	Chunk  int    `json:"chunk"`
	// PlanHash re-states the campaign fingerprint so a coordinator can
	// reject masks from a worker that drifted (hex).
	PlanHash string `json:"plan_hash"`
	// Masks are the per-batch failure masks of the chunk, hex-encoded.
	Masks []string `json:"masks"`
}

// CompleteResponse acknowledges a chunk result.
type CompleteResponse struct {
	Accepted bool `json:"accepted"`
	// Duplicate reports the chunk was already complete (work stealing or a
	// re-lease raced); the masks were verified identical and discarded.
	Duplicate bool `json:"duplicate,omitempty"`
}

// FabricWorkerStatus is one worker's row in the coordinator status.
type FabricWorkerStatus struct {
	Worker string `json:"worker"`
	// Leased lists the chunks currently leased to the worker.
	Leased []int `json:"leased,omitempty"`
	// Completed counts chunks this worker delivered first.
	Completed int `json:"completed"`
	// LastSeenMillisAgo is the time since the worker's last request.
	LastSeenMillisAgo int64 `json:"last_seen_millis_ago"`
}

// FabricStatus is the success body of GET /v1/fabric/status.
type FabricStatus struct {
	Scenario    string `json:"scenario"`
	TotalChunks int    `json:"total_chunks"`
	DoneChunks  int    `json:"done_chunks"`
	Pending     int    `json:"pending"`
	Leased      int    `json:"leased"`
	Done        bool   `json:"done"`
	// JobsDone and JobsTotal express progress in injection jobs rather than
	// chunks (the last chunk may be short).
	JobsDone  int `json:"jobs_done"`
	JobsTotal int `json:"jobs_total"`
	// ProgressPercent is completed jobs over total, in [0,100].
	ProgressPercent float64 `json:"progress_percent"`
	// ETAMillis extrapolates the remaining wall time from the campaign's
	// completion rate so far; 0 until the first chunk lands or once done.
	ETAMillis int64                `json:"eta_millis,omitempty"`
	Workers   []FabricWorkerStatus `json:"workers,omitempty"`
	// LeaseExpirations and ShardsStolen count fault-tolerance events.
	LeaseExpirations int64 `json:"lease_expirations"`
	ShardsStolen     int64 `json:"shards_stolen"`
	// CheckpointFingerprint is the canonical digest of the merged
	// checkpoint once the campaign is done (hex); it equals the
	// fingerprint of a single-node run of the same spec.
	CheckpointFingerprint string `json:"checkpoint_fingerprint,omitempty"`
}

// EncodeMasks hex-encodes per-batch failure masks for the wire. JSON
// numbers are IEEE doubles and lose bits above 2^53, so masks never travel
// as numbers.
func EncodeMasks(masks []uint64) []string {
	out := make([]string, len(masks))
	for i, m := range masks {
		out[i] = strconv.FormatUint(m, 16)
	}
	return out
}

// DecodeMasks reverses EncodeMasks.
func DecodeMasks(enc []string) ([]uint64, error) {
	out := make([]uint64, len(enc))
	for i, s := range enc {
		m, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("api: bad mask %q at index %d", s, i)
		}
		out[i] = m
	}
	return out, nil
}
