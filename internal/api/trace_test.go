package api

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/obs"
)

func TestTracedExtractsPropagatedTrace(t *testing.T) {
	var got obs.Trace
	h := Traced(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ = obs.TraceFrom(r.Context())
		w.WriteHeader(http.StatusNoContent)
	}))
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	InjectTrace(req.Header, obs.Trace{TraceID: "cafecafecafecafe", SpanID: "12ab34cd"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got.TraceID != "cafecafecafecafe" || got.SpanID != "12ab34cd" {
		t.Fatalf("handler context trace %+v", got)
	}
	if rec.Header().Get(HeaderTraceID) != "cafecafecafecafe" {
		t.Fatalf("response header %q", rec.Header().Get(HeaderTraceID))
	}
}

func TestTracedMintsTraceWhenAbsent(t *testing.T) {
	h := Traced(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, ok := obs.TraceFrom(r.Context())
		if !ok || tc.TraceID == "" {
			t.Fatal("no trace minted for unstamped request")
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if len(rec.Header().Get(HeaderTraceID)) != 16 {
		t.Fatalf("minted trace header %q", rec.Header().Get(HeaderTraceID))
	}
}

func TestErrorEnvelopeCarriesTraceID(t *testing.T) {
	h := Traced(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusNotFound, CodeNotFound, "no such model")
	}))
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	InjectTrace(req.Header, obs.Trace{TraceID: "feedfacefeedface"})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error == nil {
		t.Fatalf("body %q: %v", rec.Body.String(), err)
	}
	if er.Error.TraceID != "feedfacefeedface" {
		t.Fatalf("envelope trace_id %q", er.Error.TraceID)
	}
	// Round-trip through the client decode path too.
	if e := DecodeError(rec.Code, rec.Body.Bytes()); e.TraceID != "feedfacefeedface" {
		t.Fatalf("decoded trace_id %q", e.TraceID)
	}
}

func TestClientDoCtxStampsHeaders(t *testing.T) {
	var gotTrace, gotSpan string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTrace = r.Header.Get(HeaderTraceID)
		gotSpan = r.Header.Get(HeaderSpanID)
		WriteJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
	}))
	defer srv.Close()

	ctx := obs.ContextWithTrace(context.Background(), obs.Trace{TraceID: "0123456789abcdef", SpanID: "deadbeef"})
	var resp HealthResponse
	if err := NewClient(srv.URL).DoCtx(ctx, http.MethodGet, "/healthz", nil, &resp); err != nil {
		t.Fatal(err)
	}
	if gotTrace != "0123456789abcdef" || gotSpan != "deadbeef" {
		t.Fatalf("server saw trace %q span %q", gotTrace, gotSpan)
	}
}
