package api

import (
	"net/http"

	"repro/internal/obs"
)

// Trace propagation headers. The client stamps them from the request
// context; the Traced middleware extracts them on the server side, so one
// trace ID follows a prediction or a leased chunk across processes.
const (
	// HeaderTraceID carries the operation's trace identifier.
	HeaderTraceID = "Ffr-Trace-Id"
	// HeaderSpanID carries the caller's current span identifier; spans the
	// server starts become its children.
	HeaderSpanID = "Ffr-Span-Id"
)

// InjectTrace stamps the trace onto outbound request headers.
func InjectTrace(h http.Header, tc obs.Trace) {
	if !tc.Valid() {
		return
	}
	h.Set(HeaderTraceID, tc.TraceID)
	if tc.SpanID != "" {
		h.Set(HeaderSpanID, tc.SpanID)
	}
}

// ExtractTrace reads the propagated trace from inbound request headers; ok
// is false when no trace was stamped.
func ExtractTrace(h http.Header) (obs.Trace, bool) {
	tc := obs.Trace{TraceID: h.Get(HeaderTraceID), SpanID: h.Get(HeaderSpanID)}
	return tc, tc.Valid()
}

// Traced is the server-side trace middleware: it extracts the propagated
// trace (or starts a fresh one, so every request is correlatable), attaches
// it to the request context, and echoes the trace ID as a response header —
// which is also how WriteError finds the trace_id for its error envelope.
func Traced(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tc, ok := ExtractTrace(r.Header)
		if !ok {
			tc = obs.Trace{TraceID: obs.NewTraceID()}
		}
		w.Header().Set(HeaderTraceID, tc.TraceID)
		next.ServeHTTP(w, r.WithContext(obs.ContextWithTrace(r.Context(), tc)))
	})
}
