package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/obs"
)

// Client speaks the /v1 wire surface against one base URL. The zero Base is
// invalid; a nil HTTP falls back to http.DefaultClient. Client is stateless
// and safe for concurrent use.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP optionally overrides the transport (timeouts, connection
	// pooling); nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the given base URL.
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Do round-trips one JSON request: method + path against Base, in as the
// body (nil for none), the response decoded into out (nil to discard). A
// non-2xx response decodes the error envelope and returns it as *Error.
func (c *Client) Do(method, path string, in, out any) error {
	return c.DoCtx(context.Background(), method, path, in, out)
}

// DoCtx is Do with a caller context: the request is cancellable, and a
// trace carried by the context (obs.ContextWithTrace) is stamped onto the
// outbound headers so the server joins the caller's trace.
func (c *Client) DoCtx(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("api: encoding %s %s: %w", method, path, err)
		}
		body = bytes.NewReader(b)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, body)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tc, ok := obs.TraceFrom(ctx); ok {
		InjectTrace(req.Header, tc)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return DecodeError(resp.StatusCode, drainBody(resp.Body, 1<<20))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// Predict posts one prediction request.
func (c *Client) Predict(req PredictRequest) (PredictResponse, error) {
	var resp PredictResponse
	err := c.Do(http.MethodPost, "/v1/predict", req, &resp)
	return resp, err
}

// Models lists the served models.
func (c *Client) Models() (ModelsResponse, error) {
	var resp ModelsResponse
	err := c.Do(http.MethodGet, "/v1/models", nil, &resp)
	return resp, err
}

// Health fetches the service health.
func (c *Client) Health() (HealthResponse, error) {
	var resp HealthResponse
	err := c.Do(http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}

// Harden posts one hardening-plan request.
func (c *Client) Harden(req HardenRequest) (HardenResponse, error) {
	var resp HardenResponse
	err := c.Do(http.MethodPost, "/v1/harden", req, &resp)
	return resp, err
}

// Reload triggers a hot reload of file-backed artifacts.
func (c *Client) Reload(req ReloadRequest) (ReloadResponse, error) {
	var resp ReloadResponse
	err := c.Do(http.MethodPost, "/v1/models/reload", req, &resp)
	return resp, err
}
