package api

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// mustJSON marshals v and compares against the exact expected wire bytes.
// These are schema regression tests: a failing case means the wire format
// changed and every deployed client would see it.
func mustJSON(t *testing.T, v any, want string) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != want {
		t.Fatalf("wire schema changed:\n got %s\nwant %s", b, want)
	}
}

func TestPredictWireSchema(t *testing.T) {
	one := 0.5
	// Single-vector success payload: field set and names are pinned to the
	// pre-envelope server's wire format.
	mustJSON(t, PredictResponse{Model: "k-NN", Predictions: []float64{0.5}, Prediction: &one, CacheHits: 1},
		`{"model":"k-NN","predictions":[0.5],"prediction":0.5,"cache_hits":1}`)
	// Batch payload omits the single-vector mirror and the additive
	// coalesced field stays invisible when zero.
	mustJSON(t, PredictResponse{Model: "m", Predictions: []float64{1, 2}, CacheHits: 0},
		`{"model":"m","predictions":[1,2],"cache_hits":0}`)
	mustJSON(t, PredictResponse{Model: "m", Predictions: []float64{1}, CacheHits: 0, Coalesced: 3},
		`{"model":"m","predictions":[1],"cache_hits":0,"coalesced":3}`)
	mustJSON(t, PredictRequest{Model: "m", Vector: []float64{1, 2}},
		`{"model":"m","vector":[1,2]}`)
	mustJSON(t, PredictRequest{Model: "m", Vectors: [][]float64{{1}, {2}}},
		`{"model":"m","vectors":[[1],[2]]}`)
}

func TestModelsWireSchema(t *testing.T) {
	at := time.Date(2026, 8, 7, 1, 2, 3, 0, time.UTC)
	info := ModelInfo{
		Name: "k-NN", Kind: "pipeline[std,knn]",
		Circuit: "alupipe", Workload: "randomops",
		NumFeatures: 2, Features: []string{"f0", "f1"},
		TrainRows: 10, TrainHash: "ff01",
		Metrics:   map[string]float64{"R2": 0.5},
		CreatedAt: at,
	}
	mustJSON(t, ModelsResponse{Models: []ModelInfo{info}},
		`{"models":[{"name":"k-NN","kind":"pipeline[std,knn]","circuit":"alupipe","workload":"randomops",`+
			`"num_features":2,"features":["f0","f1"],"train_rows":10,"train_hash":"ff01",`+
			`"metrics":{"R2":0.5},"created_at":"2026-08-07T01:02:03Z"}]}`)
	// Untagged models must omit the scenario keys entirely (additive,
	// backward-compatible schema) and the new fingerprint/source keys only
	// appear when set.
	info.Circuit, info.Workload, info.Metrics = "", "", nil
	info.Fingerprint, info.Source = "abcd", "/tmp/knn.ffrm"
	mustJSON(t, ModelsResponse{Models: []ModelInfo{info}},
		`{"models":[{"name":"k-NN","kind":"pipeline[std,knn]",`+
			`"num_features":2,"features":["f0","f1"],"train_rows":10,"train_hash":"ff01",`+
			`"created_at":"2026-08-07T01:02:03Z","fingerprint":"abcd","source":"/tmp/knn.ffrm"}]}`)
}

func TestHealthAndErrorWireSchema(t *testing.T) {
	mustJSON(t, HealthResponse{Status: "ok", Models: 2, Cached: 7},
		`{"status":"ok","models":2,"cached":7}`)
	mustJSON(t, ErrorResponse{Error: &Error{Code: CodeNotFound, Message: `unknown model "x"`}},
		`{"error":{"code":"not_found","message":"unknown model \"x\""}}`)
	mustJSON(t, ErrorResponse{Error: &Error{Code: CodeBadRequest, Message: "m", Detail: "d"}},
		`{"error":{"code":"bad_request","message":"m","detail":"d"}}`)
}

func TestReloadWireSchema(t *testing.T) {
	mustJSON(t, ReloadResponse{
		Results:  []ReloadEntry{{Model: "m", Path: "p", Reloaded: true, Changed: true}},
		Reloaded: 1,
	}, `{"results":[{"model":"m","path":"p","reloaded":true,"changed":true}],"reloaded":1}`)
	mustJSON(t, ReloadEntry{Model: "m", Error: "boom"},
		`{"model":"m","reloaded":false,"changed":false,"error":"boom"}`)
}

func TestFabricWireSchema(t *testing.T) {
	mustJSON(t, LeaseResponse{Chunks: []int{3, 4}, Stolen: 1},
		`{"chunks":[3,4],"stolen":1}`)
	mustJSON(t, LeaseResponse{Done: true}, `{"done":true}`)
	mustJSON(t, LeaseResponse{RetryMillis: 250}, `{"retry_millis":250}`)
	mustJSON(t, CompleteRequest{Worker: "w1", Chunk: 2, PlanHash: "aa", Masks: []string{"ffffffffffffffff", "0"}},
		`{"worker":"w1","chunk":2,"plan_hash":"aa","masks":["ffffffffffffffff","0"]}`)
	mustJSON(t, HeartbeatResponse{Canceled: []int{1}}, `{"canceled":[1]}`)
}

func TestMaskEncodingRoundTrip(t *testing.T) {
	in := []uint64{0, 1, math.MaxUint64, 1 << 53, 0xdeadbeefcafef00d}
	out, err := DecodeMasks(EncodeMasks(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("mask %d: %x != %x", i, out[i], in[i])
		}
	}
	if _, err := DecodeMasks([]string{"zz"}); err == nil {
		t.Fatal("bad hex mask accepted")
	}
	// The whole point of hex masks: a raw-number JSON encoding round-trips
	// through float64 and corrupts the low bits of large masks.
	var viaNumber uint64
	b, _ := json.Marshal(float64(uint64(math.MaxUint64)))
	if json.Unmarshal(b, &viaNumber) == nil && viaNumber == math.MaxUint64 {
		t.Fatal("sanity: JSON numbers should not carry MaxUint64 exactly")
	}
}

func TestWriteAndDecodeError(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusNotFound, CodeNotFound, "unknown model %q", "x")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("status %d", rec.Code)
	}
	e := DecodeError(rec.Code, rec.Body.Bytes())
	if e.Code != CodeNotFound || e.Status != http.StatusNotFound {
		t.Fatalf("decoded %+v", e)
	}
	if e.Message != `unknown model "x"` {
		t.Fatalf("message %q", e.Message)
	}
	// Non-envelope bodies degrade instead of failing.
	e = DecodeError(http.StatusBadGateway, []byte("<html>proxy error</html>"))
	if e.Code != CodeInternal || e.Status != http.StatusBadGateway {
		t.Fatalf("degraded decode %+v", e)
	}
}

func TestWriteOverloaded(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteOverloaded(rec, 0, "queue full")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want floor of 1", ra)
	}
	if e := DecodeError(rec.Code, rec.Body.Bytes()); e.Code != CodeOverloaded {
		t.Fatalf("code %q", e.Code)
	}
}

func TestClientRoundTrip(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", func(w http.ResponseWriter, r *http.Request) {
		var req PredictRequest
		if err := ReadJSON(r, w, 1<<20, &req); err != nil {
			WriteError(w, http.StatusBadRequest, CodeBadRequest, "bad body: %v", err)
			return
		}
		if req.Model == "missing" {
			WriteError(w, http.StatusNotFound, CodeNotFound, "unknown model %q", req.Model)
			return
		}
		WriteJSON(w, http.StatusOK, PredictResponse{Model: req.Model, Predictions: []float64{42}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ts.URL + "/")
	resp, err := c.Predict(PredictRequest{Model: "m", Vector: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Predictions[0] != 42 {
		t.Fatalf("predictions %v", resp.Predictions)
	}
	_, err = c.Predict(PredictRequest{Model: "missing", Vector: []float64{1}})
	var apiErr *Error
	if !errorsAs(err, &apiErr) || apiErr.Code != CodeNotFound || apiErr.Status != http.StatusNotFound {
		t.Fatalf("error %v not a typed envelope", err)
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}
