// Package api defines the unified, versioned wire surface of the FFR
// services: the request/response types of every /v1 endpoint, the common
// error envelope, and the HTTP client helpers that speak them.
//
// Every HTTP-facing component — the prediction service (internal/serve,
// cmd/ffrserve), the distributed campaign fabric (internal/fabric,
// cmd/ffrcoord, cmd/ffrwork) and the load harness (cmd/ffrload) — shares
// these types instead of declaring per-handler structs, so the wire format
// is defined exactly once and pinned by the schema regression tests in this
// package.
//
// Errors travel in one envelope on every endpoint:
//
//	{"error": {"code": "not_found", "message": "unknown model \"x\""}}
//
// The code is a stable, machine-matchable string (see the Code* constants);
// the message is human-readable; detail optionally carries context. Success
// payloads are wire-compatible with the pre-envelope servers: existing
// fields keep their names and types, new fields are additive and omitempty.
package api
