// Package cli holds the flag-validation helpers shared by every command
// under cmd/. All commands follow the same contract: main delegates to a
// run() error, and flag misuse produces a consistent one-line error ending
// in a pointer at -h — never a bare log.Fatal, never a full usage dump. The
// helpers return errors (instead of exiting) so they are unit-testable and
// composable with Check.
package cli
