package cli

import (
	"flag"
	"fmt"
	"strings"
)

// Check returns the first non-nil error, letting a command validate all of
// its flags in one expression.
func Check(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// UsageErrorf formats a flag-validation failure the standard way: the
// message, then a pointer at the command's -h.
func UsageErrorf(cmd, format string, args ...any) error {
	return fmt.Errorf("%s (run '%s -h' for usage)", fmt.Sprintf(format, args...), cmd)
}

// NoArgs rejects positional arguments — none of the ffr commands take any.
// Call it after flag.Parse.
func NoArgs(cmd string) error {
	if args := flag.Args(); len(args) > 0 {
		return UsageErrorf(cmd, "unexpected arguments: %v", args)
	}
	return nil
}

// MinInt requires flag -name to be at least min.
func MinInt(cmd, name string, v, min int) error {
	if v < min {
		return UsageErrorf(cmd, "-%s must be >= %d (got %d)", name, min, v)
	}
	return nil
}

// OpenUnit requires flag -name to lie strictly inside (0,1).
func OpenUnit(cmd, name string, v float64) error {
	if v <= 0 || v >= 1 {
		return UsageErrorf(cmd, "-%s must be in (0,1) exclusive (got %g)", name, v)
	}
	return nil
}

// NonNegFloat requires flag -name to be zero or positive.
func NonNegFloat(cmd, name string, v float64) error {
	if v < 0 {
		return UsageErrorf(cmd, "-%s must be >= 0 (got %g)", name, v)
	}
	return nil
}

// Requires enforces a flag dependency: when -name is used, -dependency must
// be set too. Pass the violation as ok == false.
func Requires(cmd, name, dependency string, ok bool) error {
	if !ok {
		return UsageErrorf(cmd, "-%s requires -%s", name, dependency)
	}
	return nil
}

// OneOf requires flag -name to be one of the valid values ("" is allowed
// only when listed).
func OneOf(cmd, name, v string, valid ...string) error {
	for _, ok := range valid {
		if v == ok {
			return nil
		}
	}
	shown := make([]string, 0, len(valid))
	for _, s := range valid {
		if s != "" {
			shown = append(shown, s)
		}
	}
	return UsageErrorf(cmd, "-%s must be one of %s (got %q)", name, strings.Join(shown, ", "), v)
}
