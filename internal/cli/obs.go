package cli

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/obs"
	"repro/internal/profiling"
)

// LogFlags carries the -log-level / -log-format pair every command
// registers. Defaults come from the FFR_LOG environment variable
// ("level" or "level,format", e.g. FFR_LOG=debug,json), so a whole
// fleet can be made chatty without touching each invocation.
type LogFlags struct {
	Level  string
	Format string
}

// RegisterLog registers -log-level and -log-format on the default flag
// set, seeding their defaults from FFR_LOG. Call before flag.Parse.
func RegisterLog() *LogFlags {
	level, format := logDefaults(os.Getenv("FFR_LOG"))
	f := &LogFlags{}
	flag.StringVar(&f.Level, "log-level", level, "log verbosity: debug, info, warn or error (default from FFR_LOG)")
	flag.StringVar(&f.Format, "log-format", format, "log encoding: text or json (default from FFR_LOG \"level,format\")")
	return f
}

// logDefaults decodes the FFR_LOG environment value ("level" or
// "level,format") into flag defaults, leaving the stock info/text pair
// for whatever the variable does not mention.
func logDefaults(env string) (level, format string) {
	level, format = "info", obs.FormatText
	if env == "" {
		return level, format
	}
	parts := strings.SplitN(env, ",", 2)
	if parts[0] != "" {
		level = parts[0]
	}
	if len(parts) == 2 && parts[1] != "" {
		format = parts[1]
	}
	return level, format
}

// Logger validates the parsed flags and builds the command's structured
// stderr logger, tagged with proc=<cmd> so interleaved fleet logs stay
// attributable.
func (f *LogFlags) Logger(cmd string) (*obs.Logger, error) {
	level, err := obs.ParseLevel(f.Level)
	if err != nil {
		return nil, UsageErrorf(cmd, "-log-level must be debug, info, warn or error (got %q)", f.Level)
	}
	format, err := obs.ParseFormat(f.Format)
	if err != nil {
		return nil, UsageErrorf(cmd, "-log-format must be text or json (got %q)", f.Format)
	}
	return obs.NewLogger(os.Stderr, level, format).With(obs.F("proc", cmd)), nil
}

// Profiling carries the -cpuprofile / -memprofile pair of the
// long-running commands; Start delegates to the profiling package.
type Profiling struct {
	CPU string
	Mem string
}

// RegisterProfiling registers -cpuprofile and -memprofile on the default
// flag set. Call before flag.Parse.
func RegisterProfiling() *Profiling {
	p := &Profiling{}
	flag.StringVar(&p.CPU, "cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	flag.StringVar(&p.Mem, "memprofile", "", "write a heap profile to this file on exit (go tool pprof)")
	return p
}

// Start begins CPU profiling when -cpuprofile was given; defer the
// returned stop function (it also dumps the -memprofile heap snapshot).
func (p *Profiling) Start(cmd string) (func(), error) {
	stop, err := profiling.Start(p.CPU, p.Mem)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", cmd, err)
	}
	return stop, nil
}

// OpenTrace opens the -trace span journal: spans journal as JSONL to
// path, tagged with the process name. An empty path returns a nil
// tracer (spans still propagate IDs, they just aren't journaled) and a
// no-op close.
func OpenTrace(cmd, path, process string) (*obs.Tracer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: -trace: %w", cmd, err)
	}
	return obs.NewTracer(f, process), f.Close, nil
}

// ServeMetrics starts the -metrics-addr debug listener (Prometheus
// /metrics plus /debug/pprof/) when addr is non-empty, logging the bound
// address. The returned stop function closes the listener; it is non-nil
// even when addr is empty.
func ServeMetrics(cmd, addr string, reg *obs.Registry, log *obs.Logger) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	bound, stop, err := obs.ServeDebug(addr, reg)
	if err != nil {
		return nil, fmt.Errorf("%s: -metrics-addr: %w", cmd, err)
	}
	log.Info("metrics listener up", obs.F("addr", bound))
	return stop, nil
}
