package cli

import (
	"errors"
	"strings"
	"testing"
)

func TestCheckReturnsFirstError(t *testing.T) {
	e1, e2 := errors.New("first"), errors.New("second")
	if got := Check(nil, e1, e2); got != e1 {
		t.Errorf("Check = %v, want the first error", got)
	}
	if got := Check(nil, nil); got != nil {
		t.Errorf("Check of nils = %v, want nil", got)
	}
}

func TestUsageErrorf(t *testing.T) {
	err := UsageErrorf("ffrx", "-n must be >= %d (got %d)", 1, 0)
	want := "-n must be >= 1 (got 0) (run 'ffrx -h' for usage)"
	if err.Error() != want {
		t.Errorf("UsageErrorf = %q, want %q", err.Error(), want)
	}
}

func TestMinInt(t *testing.T) {
	if err := MinInt("ffrx", "n", 5, 1); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	err := MinInt("ffrx", "n", 0, 1)
	if err == nil || !strings.Contains(err.Error(), "-n must be >= 1 (got 0)") {
		t.Errorf("MinInt violation = %v", err)
	}
}

func TestOpenUnit(t *testing.T) {
	if err := OpenUnit("ffrx", "train", 0.5); err != nil {
		t.Errorf("valid fraction rejected: %v", err)
	}
	for _, v := range []float64{0, 1, -0.1, 1.5} {
		if OpenUnit("ffrx", "train", v) == nil {
			t.Errorf("OpenUnit accepted %v", v)
		}
	}
}

func TestNonNegFloat(t *testing.T) {
	if err := NonNegFloat("ffrx", "delta", 0); err != nil {
		t.Errorf("zero rejected: %v", err)
	}
	if NonNegFloat("ffrx", "delta", -1) == nil {
		t.Error("negative accepted")
	}
}

func TestRequires(t *testing.T) {
	if err := Requires("ffrx", "resume", "checkpoint", true); err != nil {
		t.Errorf("satisfied dependency rejected: %v", err)
	}
	err := Requires("ffrx", "resume", "checkpoint", false)
	if err == nil || !strings.Contains(err.Error(), "-resume requires -checkpoint") {
		t.Errorf("Requires violation = %v", err)
	}
}

func TestOneOf(t *testing.T) {
	if err := OneOf("ffrx", "schedule", "clustered", "", "clustered", "plan"); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	if err := OneOf("ffrx", "schedule", "", "", "clustered", "plan"); err != nil {
		t.Errorf("allowed empty rejected: %v", err)
	}
	err := OneOf("ffrx", "schedule", "zigzag", "", "clustered", "plan")
	if err == nil || !strings.Contains(err.Error(), `must be one of clustered, plan (got "zigzag")`) {
		t.Errorf("OneOf violation = %v", err)
	}
}
