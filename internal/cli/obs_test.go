package cli

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestLogDefaults(t *testing.T) {
	cases := []struct {
		env, level, format string
	}{
		{"", "info", obs.FormatText},
		{"debug", "debug", obs.FormatText},
		{"debug,json", "debug", "json"},
		{",json", "info", "json"},
		{"warn,", "warn", obs.FormatText},
	}
	for _, c := range cases {
		level, format := logDefaults(c.env)
		if level != c.level || format != c.format {
			t.Errorf("logDefaults(%q) = %q, %q, want %q, %q",
				c.env, level, format, c.level, c.format)
		}
	}
}

func TestLogFlagsLogger(t *testing.T) {
	f := &LogFlags{Level: "debug", Format: "json"}
	logger, err := f.Logger("ffrx")
	if err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	if !logger.Enabled(obs.LevelDebug) {
		t.Error("debug level not applied")
	}

	f = &LogFlags{Level: "loud", Format: "text"}
	if _, err := f.Logger("ffrx"); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Errorf("bad level = %v, want -log-level usage error", err)
	}
	f = &LogFlags{Level: "info", Format: "xml"}
	if _, err := f.Logger("ffrx"); err == nil || !strings.Contains(err.Error(), "-log-format") {
		t.Errorf("bad format = %v, want -log-format usage error", err)
	}
}
