package plan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/ml"
	"repro/internal/ml/knn"
	"repro/internal/ml/linreg"
	"repro/internal/ml/tree"
)

// fakeTarget is a synthetic injection backend: per-FF FDR truth derived from
// a smooth function of two features plus seeded binomial measurement noise.
// RunRound serves counts without simulation, deterministically in the FF set.
type fakeTarget struct {
	X          [][]float64
	truth      []float64
	injections int
	rounds     [][]int // log of RunRound selections
	failAfter  int     // when > 0, RunRound errors after this many rounds
}

func newFakeTarget(numFFs, injections int, seed int64) *fakeTarget {
	rng := rand.New(rand.NewSource(seed))
	t := &fakeTarget{injections: injections}
	for i := 0; i < numFFs; i++ {
		a, b := rng.Float64(), rng.Float64()
		t.X = append(t.X, []float64{a, b, rng.Float64()})
		t.truth = append(t.truth, 0.5*a+0.4*b*b)
	}
	return t
}

func (t *fakeTarget) NumFFs() int                 { return len(t.X) }
func (t *fakeTarget) FeatureRows() [][]float64    { return t.X }
func (t *fakeTarget) InjectionsPerFF() int        { return t.injections }
func (t *fakeTarget) CampaignFingerprint() uint64 { return 0xFACE }

func (t *fakeTarget) RunRound(ctx context.Context, ffs []int, checkpointPath string, resume bool) (*fault.Result, error) {
	if t.failAfter > 0 && len(t.rounds) >= t.failAfter {
		return nil, errors.New("injection backend down")
	}
	t.rounds = append(t.rounds, append([]int(nil), ffs...))
	res := &fault.Result{
		FDR:        make([]float64, len(t.X)),
		Failures:   make([]int, len(t.X)),
		Injections: make([]int, len(t.X)),
	}
	for _, ff := range ffs {
		// Seeded per-FF binomial draw, independent of round partitioning.
		rng := rand.New(rand.NewSource(int64(ff) + 1))
		for k := 0; k < t.injections; k++ {
			if rng.Float64() < t.truth[ff] {
				res.Failures[ff]++
			}
		}
		res.Injections[ff] = t.injections
		res.FDR[ff] = float64(res.Failures[ff]) / float64(t.injections)
		res.TotalRuns += t.injections
	}
	return res, nil
}

func testModel() ml.Factory {
	return func() ml.Regressor {
		return &ml.Pipeline{Scaler: &ml.StandardScaler{}, Model: knn.New(3, knn.Manhattan)}
	}
}

func testCommittee() []ml.Factory {
	return []ml.Factory{
		func() ml.Regressor { return &ml.Pipeline{Scaler: &ml.StandardScaler{}, Model: linreg.NewRidge(1e-8)} },
		func() ml.Regressor {
			return &ml.Pipeline{Scaler: &ml.StandardScaler{}, Model: knn.New(3, knn.Manhattan)}
		},
		func() ml.Regressor { return &ml.Pipeline{Scaler: &ml.StandardScaler{}, Model: tree.New(8)} },
	}
}

func runLoop(t *testing.T, cfg Config) *Result {
	t.Helper()
	loop, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := loop.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLoopBudgetAndRounds(t *testing.T) {
	target := newFakeTarget(120, 20, 1)
	strategy, err := New(StrategyCommittee, testModel(), testCommittee())
	if err != nil {
		t.Fatal(err)
	}
	res := runLoop(t, Config{
		Target: target, Strategy: strategy, Model: testModel(), ModelName: "knn",
		Seed: 7, InitFFs: 20, RoundFFs: 10, BudgetFFs: 60,
	})
	if len(res.Measured) != 60 {
		t.Errorf("measured %d flip-flops, budget 60", len(res.Measured))
	}
	if res.TotalInjections != 60*20 {
		t.Errorf("spent %d injections, want %d", res.TotalInjections, 60*20)
	}
	if want := 1 + (60-20+9)/10; len(res.Rounds) != want {
		t.Errorf("ran %d rounds, want %d", len(res.Rounds), want)
	}
	if res.Converged {
		t.Error("loop without tolerances reported convergence")
	}
	last := res.Rounds[len(res.Rounds)-1]
	if last.MeasuredFFs != 60 || last.Injections != res.TotalInjections {
		t.Errorf("last round cumulative stats %d/%d do not match result %d/%d",
			last.MeasuredFFs, last.Injections, 60, res.TotalInjections)
	}
	if math.IsNaN(res.FFR) || res.FFR <= 0 || res.FFR >= 1 {
		t.Errorf("implausible FFR estimate %v", res.FFR)
	}
	if res.CIHi-res.CILo <= 0 {
		t.Errorf("degenerate CI (%v, %v)", res.CILo, res.CIHi)
	}
}

func TestLoopConvergenceStopsEarly(t *testing.T) {
	target := newFakeTarget(150, 30, 2)
	res := runLoop(t, Config{
		Target: target, Strategy: Random{}, Model: testModel(), ModelName: "knn",
		Seed: 3, InitFFs: 30, RoundFFs: 10, BudgetFFs: 150, MaxRounds: 16,
		DeltaTol: 0.05, Patience: 2,
	})
	if !res.Converged {
		t.Fatalf("loose tolerance did not converge in %d rounds", len(res.Rounds))
	}
	if len(res.Measured) >= 150 {
		t.Error("converged loop still spent the whole pool")
	}
	// The two last rounds must satisfy the criterion.
	for _, r := range res.Rounds[len(res.Rounds)-2:] {
		if r.Delta > 0.05 {
			t.Errorf("round %d delta %v exceeds tolerance yet loop converged", r.Index, r.Delta)
		}
	}
}

func TestLoopConvergenceCIWidthOnly(t *testing.T) {
	// CIWidthTol must work as the sole criterion (no DeltaTol): the CI of
	// the measured mean shrinks with every round, so a loose width bound
	// stops the loop before the budget runs out.
	target := newFakeTarget(150, 30, 2)
	res := runLoop(t, Config{
		Target: target, Strategy: Random{}, Model: testModel(), ModelName: "knn",
		Seed: 3, InitFFs: 30, RoundFFs: 10, BudgetFFs: 150, MaxRounds: 16,
		CIWidthTol: 0.2, Patience: 2,
	})
	if !res.Converged {
		t.Fatalf("CI-only tolerance did not converge in %d rounds", len(res.Rounds))
	}
	if len(res.Measured) >= 150 {
		t.Error("converged loop still spent the whole pool")
	}
	for _, r := range res.Rounds[len(res.Rounds)-2:] {
		if r.CIHi-r.CILo > 0.2 {
			t.Errorf("round %d CI width %v exceeds tolerance yet loop converged", r.Index, r.CIHi-r.CILo)
		}
	}
}

func TestLoopPoolRestriction(t *testing.T) {
	target := newFakeTarget(80, 10, 4)
	pool := []int{0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 22, 24, 26, 28, 30}
	res := runLoop(t, Config{
		Target: target, Strategy: Random{}, Model: testModel(), ModelName: "knn",
		Seed: 5, Pool: pool, InitFFs: 4, RoundFFs: 4, BudgetFFs: 8,
	})
	allowed := map[int]bool{}
	for _, ff := range pool {
		allowed[ff] = true
	}
	for _, ff := range res.Measured {
		if !allowed[ff] {
			t.Errorf("measured flip-flop %d outside the pool", ff)
		}
	}
	if len(res.Measured) != 8 {
		t.Errorf("measured %d, budget 8", len(res.Measured))
	}
	if len(res.Estimates) != 80 {
		t.Errorf("estimate vector covers %d FFs, want all 80", len(res.Estimates))
	}
}

func TestLoopDeterminism(t *testing.T) {
	for _, name := range StrategyNames() {
		t.Run(name, func(t *testing.T) {
			run := func() *Result {
				target := newFakeTarget(100, 15, 6)
				strategy, err := New(name, testModel(), testCommittee())
				if err != nil {
					t.Fatal(err)
				}
				return runLoop(t, Config{
					Target: target, Strategy: strategy, Model: testModel(), ModelName: "knn",
					Seed: 11, InitFFs: 16, RoundFFs: 8, BudgetFFs: 40,
				})
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a.Measured, b.Measured) {
				t.Error("same configuration measured different flip-flops")
			}
			if a.ModelFingerprint != b.ModelFingerprint {
				t.Error("same configuration produced different model fingerprints")
			}
			if a.EstimateFingerprint != b.EstimateFingerprint {
				t.Error("same configuration produced different estimate fingerprints")
			}
		})
	}
}

// TestLoopResumeBitIdentical interrupts a checkpointed loop between rounds
// and checks the resumed run selects the same jobs and lands on the same
// final model fingerprint as an uninterrupted twin.
func TestLoopResumeBitIdentical(t *testing.T) {
	cfgFor := func(target Target, ckpt string) Config {
		strategy, err := New(StrategyCommittee, testModel(), testCommittee())
		if err != nil {
			t.Fatal(err)
		}
		return Config{
			Target: target, Strategy: strategy, Model: testModel(), ModelName: "knn",
			Seed: 13, InitFFs: 16, RoundFFs: 8, BudgetFFs: 48,
			CheckpointPath: ckpt, Resume: ckpt != "",
		}
	}

	// Uninterrupted reference.
	ref := runLoop(t, cfgFor(newFakeTarget(100, 15, 6), ""))

	// Interrupted run: the backend dies after two rounds.
	ckpt := filepath.Join(t.TempDir(), "loop.ffrp")
	broken := newFakeTarget(100, 15, 6)
	broken.failAfter = 2
	loop, err := NewLoop(cfgFor(broken, ckpt))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Run(); err == nil {
		t.Fatal("interrupted loop reported success")
	}

	// Resume on a fresh backend and compare everything observable.
	resumedTarget := newFakeTarget(100, 15, 6)
	loop2, err := NewLoop(cfgFor(resumedTarget, ckpt))
	if err != nil {
		t.Fatal(err)
	}
	res, err := loop2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Measured, ref.Measured) {
		t.Error("resumed loop measured different flip-flops")
	}
	for i := range ref.Rounds {
		if !reflect.DeepEqual(res.Rounds[i].Selected, ref.Rounds[i].Selected) {
			t.Errorf("round %d selection differs after resume", i)
		}
		if res.Rounds[i].FFR != ref.Rounds[i].FFR {
			t.Errorf("round %d FFR %v differs from reference %v", i, res.Rounds[i].FFR, ref.Rounds[i].FFR)
		}
	}
	if res.ModelFingerprint != ref.ModelFingerprint {
		t.Error("resumed loop's final model fingerprint differs")
	}
	if res.EstimateFingerprint != ref.EstimateFingerprint {
		t.Error("resumed loop's estimate fingerprint differs")
	}
	// The resumed run must not have re-injected the checkpointed rounds.
	if got := len(resumedTarget.rounds); got != len(ref.Rounds)-2 {
		t.Errorf("resumed run injected %d rounds, want %d (2 of %d restored)",
			got, len(ref.Rounds)-2, len(ref.Rounds))
	}
	for i, r := range res.Rounds {
		if want := i < 2; r.Resumed != want {
			t.Errorf("round %d Resumed=%v, want %v", i, r.Resumed, want)
		}
	}
}

func TestLoopResumeRejectsForeignConfig(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "loop.ffrp")
	target := newFakeTarget(60, 10, 3)
	base := Config{
		Target: target, Strategy: Random{}, Model: testModel(), ModelName: "knn",
		Seed: 1, InitFFs: 8, RoundFFs: 8, BudgetFFs: 16, CheckpointPath: ckpt,
	}
	runLoop(t, base)
	for _, mutate := range []func(*Config){
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.ModelName = "other" },
		func(c *Config) { c.RoundFFs = 4 },
		func(c *Config) { c.BudgetFFs = 32 },
		func(c *Config) {
			s, err := New(StrategyCluster, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			c.Strategy = s
		},
	} {
		cfg := base
		cfg.Resume = true
		mutate(&cfg)
		loop, err := NewLoop(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loop.Run(); !errors.Is(err, ErrLoopCheckpointMismatch) {
			t.Errorf("foreign configuration resumed without mismatch error (got %v)", err)
		}
	}
}

func TestLoopCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "loop.ffrp")
	ck := &loopCheckpoint{
		Strategy: "committee", Model: "knn", Seed: 5, InjectionsPerFF: 17,
		NumFFs: 99, CampaignHash: 0xAB, FeaturesHash: 0xCD, PoolHash: 0xEF,
		InitFFs: 4, RoundFFs: 2, MaxRounds: 9, BudgetFFs: 40,
		DeltaTol: 0.01, CIWidthTol: 0.2, Patience: 3,
		Rounds: []roundRecord{
			{Selected: []int{1, 5}, Failures: []int{2, 0}, Injections: []int{17, 17}},
			{Selected: []int{9}, Failures: []int{17}, Injections: []int{17}},
		},
	}
	if err := saveLoopCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := loadLoopCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestLoopCheckpointRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":     "",
		"not-json":  "hello world\ngarbage",
		"bad-magic": `{"magic":"something else","version":1}` + "\n",
	}
	i := 0
	for name, content := range cases {
		path := filepath.Join(dir, fmt.Sprintf("ck%d", i))
		i++
		if err := writeFile(path, content); err != nil {
			t.Fatal(err)
		}
		if _, err := loadLoopCheckpoint(path); !errors.Is(err, ErrLoopCheckpointCorrupt) {
			t.Errorf("%s: got %v, want ErrLoopCheckpointCorrupt", name, err)
		}
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
