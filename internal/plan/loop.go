package plan

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"sort"

	"repro/internal/ml"
	"repro/internal/ml/metrics"
	"repro/internal/obs"
	"repro/internal/persist"
)

// Config parameterizes a Loop. Target, Strategy and Model are required;
// every budget knob has a sensible default.
type Config struct {
	// Target is the injection backend the loop drives.
	Target Target
	// Strategy picks where each round's batch is spent.
	Strategy Strategy
	// Model builds the FFR estimate model retrained after every round; it
	// is also the model the final Result carries.
	Model ml.Factory
	// ModelName tags the model in checkpoints; a resumed loop must be
	// configured with the same name.
	ModelName string
	// Seed drives every stochastic choice (initial draw, bootstrap
	// resamples, cluster seeding).
	Seed int64
	// Pool restricts measurement to these flip-flops (ascending, deduped by
	// the loop); nil means every flip-flop. Evaluation protocols use it to
	// hold out a test set the planner can never touch.
	Pool []int
	// InitFFs is the round-0 batch size; 0 means RoundFFs.
	InitFFs int
	// RoundFFs is the per-round batch size; 0 means ~1/16 of the pool
	// (at least 1).
	RoundFFs int
	// MaxRounds caps the number of rounds; 0 means DefaultMaxRounds.
	MaxRounds int
	// BudgetFFs caps the total measured flip-flops; 0 means half the pool —
	// the headline budget at which active selection should match
	// full-campaign quality.
	BudgetFFs int
	// DeltaTol and CIWidthTol are the convergence criteria; each is active
	// when > 0 and the loop stops early once every active criterion holds
	// for Patience consecutive rounds. DeltaTol bounds the round-over-round
	// change of the FFR estimate; CIWidthTol bounds the width of the
	// measured-FDR mean's confidence interval (metrics.MeanCI at 95 %).
	// With both zero the loop always runs to its budget.
	DeltaTol   float64
	CIWidthTol float64
	// Patience is how many consecutive rounds must satisfy the convergence
	// criteria; 0 means DefaultPatience.
	Patience int
	// CheckpointPath enables loop checkpointing: the loop state is saved
	// here after every round, and round r's in-flight campaign checkpoints
	// to "<CheckpointPath>.round<r>" via fault.Runner. "" disables both.
	CheckpointPath string
	// Resume loads CheckpointPath (if it exists) and fast-forwards the
	// completed rounds instead of re-injecting them. Requires
	// CheckpointPath.
	Resume bool
	// OnRound, when non-nil, is invoked after every completed (or resumed)
	// round.
	OnRound func(Round)
	// Metrics optionally receives the ffr_plan_* per-round gauges (round,
	// measured FFs, injections spent, FFR estimate, CI width, delta); nil
	// disables planner metrics.
	Metrics *obs.Registry
	// Logger optionally receives structured per-round records; nil
	// disables logging.
	Logger *obs.Logger
}

// DefaultMaxRounds caps adaptive loops that never meet their convergence
// criteria.
const DefaultMaxRounds = 32

// DefaultPatience is how many consecutive converged rounds end the loop.
const DefaultPatience = 2

// Round reports one completed planner round.
type Round struct {
	// Index is the zero-based round number.
	Index int
	// Selected are the flip-flops measured this round (ascending).
	Selected []int
	// Resumed marks rounds restored from a loop checkpoint.
	Resumed bool
	// MeasuredFFs and Injections are cumulative through this round.
	MeasuredFFs int
	Injections  int
	// FFR is the circuit-level estimate after retraining: the mean per-FF
	// FDR over every flip-flop, measured values where available and model
	// predictions (clamped to [0,1]) elsewhere.
	FFR float64
	// CILo and CIHi bound the mean measured FDR (metrics.MeanCI, 95 %).
	CILo, CIHi float64
	// Delta is |FFR − previous round's FFR|; +Inf on round 0.
	Delta float64
}

// Result is the outcome of an adaptive campaign.
type Result struct {
	// Rounds is the per-round trajectory.
	Rounds []Round
	// Converged reports whether the loop stopped on its convergence
	// criteria (as opposed to exhausting budget, rounds or pool).
	Converged bool
	// Measured lists every measured flip-flop (ascending).
	Measured []int
	// TotalInjections is the number of SEU runs spent.
	TotalInjections int
	// FFR, CILo and CIHi are the final estimate and its interval.
	FFR, CILo, CIHi float64
	// Estimates is the per-FF FDR estimate vector (measured values where
	// available, clamped predictions elsewhere).
	Estimates []float64
	// Model is the final estimate model, fitted on every measured FF.
	Model ml.Regressor
	// ModelFingerprint digests the final training set — two loops that
	// measured identical flip-flops with identical outcomes fingerprint
	// equal, which is how the resume tests pin bit-identical restarts.
	ModelFingerprint uint64
	// EstimateFingerprint digests the per-FF estimate vector (the model's
	// observable behavior).
	EstimateFingerprint uint64
}

// Loop is the active-learning campaign driver; see the package comment for
// the protocol. Build one with NewLoop, run it with Run.
type Loop struct {
	cfg     Config
	pool    []int
	metrics *planMetrics
	log     *obs.Logger
}

// NewLoop validates the configuration and applies defaults.
func NewLoop(cfg Config) (*Loop, error) {
	if cfg.Target == nil || cfg.Strategy == nil || cfg.Model == nil {
		return nil, fmt.Errorf("plan: loop needs a target, a strategy and a model factory")
	}
	if cfg.Resume && cfg.CheckpointPath == "" {
		return nil, fmt.Errorf("plan: Resume requires a CheckpointPath")
	}
	if cfg.DeltaTol < 0 || cfg.CIWidthTol < 0 {
		return nil, fmt.Errorf("plan: negative convergence tolerance")
	}
	numFFs := cfg.Target.NumFFs()
	pool := cfg.Pool
	if pool == nil {
		pool = make([]int, numFFs)
		for i := range pool {
			pool[i] = i
		}
	} else {
		pool = append([]int(nil), pool...)
		sort.Ints(pool)
		dedup := pool[:0]
		for i, ff := range pool {
			if ff < 0 || ff >= numFFs {
				return nil, fmt.Errorf("plan: pool flip-flop %d out of [0,%d)", ff, numFFs)
			}
			if i > 0 && ff == pool[i-1] {
				continue
			}
			dedup = append(dedup, ff)
		}
		pool = dedup
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("plan: empty flip-flop pool")
	}
	if cfg.RoundFFs <= 0 {
		cfg.RoundFFs = (len(pool) + 15) / 16
	}
	if cfg.InitFFs <= 0 {
		cfg.InitFFs = cfg.RoundFFs
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.BudgetFFs <= 0 {
		cfg.BudgetFFs = (len(pool) + 1) / 2
	}
	if cfg.BudgetFFs > len(pool) {
		cfg.BudgetFFs = len(pool)
	}
	if cfg.Patience <= 0 {
		cfg.Patience = DefaultPatience
	}
	l := &Loop{cfg: cfg, pool: pool, log: cfg.Logger.Component("plan")}
	if cfg.Metrics != nil {
		l.metrics = newPlanMetrics(cfg.Metrics)
	}
	return l, nil
}

// Run executes the loop to completion; Run is RunContext with a background
// context.
func (l *Loop) Run() (*Result, error) {
	return l.RunContext(context.Background())
}

// RunContext executes the loop: select → inject → retrain → converge?, one
// round at a time. On context cancellation the in-flight round's campaign
// checkpoint and the loop checkpoint (when configured) are flushed and the
// error wraps fault.ErrInterrupted; a later RunContext with Resume set picks
// up bit-identically.
func (l *Loop) RunContext(ctx context.Context) (*Result, error) {
	cfg := l.cfg
	st := &State{
		X:          cfg.Target.FeatureRows(),
		Pool:       l.pool,
		Measured:   make([]bool, cfg.Target.NumFFs()),
		FDR:        make([]float64, cfg.Target.NumFFs()),
		Failures:   make([]int, cfg.Target.NumFFs()),
		Injections: make([]int, cfg.Target.NumFFs()),
		Seed:       cfg.Seed,
	}
	if len(st.X) != cfg.Target.NumFFs() {
		return nil, fmt.Errorf("plan: %d feature rows for %d flip-flops", len(st.X), cfg.Target.NumFFs())
	}

	res := &Result{}
	var records []roundRecord
	if cfg.Resume {
		ck, err := loadLoopCheckpoint(cfg.CheckpointPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Nothing to resume; run from scratch.
		case err != nil:
			return nil, err
		default:
			if err := l.matchCheckpoint(ck); err != nil {
				return nil, err
			}
			records = ck.Rounds
		}
	}
	// The round after the replayed ones is the one a mid-round interruption
	// left in flight: only it may adopt an existing runner checkpoint.
	resumedRounds := len(records)

	// Replay checkpointed rounds, then keep selecting live ones.
	streak := 0
	prevFFR := math.NaN()
	for {
		st.Round = len(res.Rounds)
		converged := streak >= cfg.Patience && st.Round > 0
		if converged || st.Round >= cfg.MaxRounds {
			res.Converged = converged
			break
		}
		measured := st.MeasuredCount()
		n := cfg.RoundFFs
		if st.Round == 0 {
			n = cfg.InitFFs
		}
		if n > cfg.BudgetFFs-measured {
			n = cfg.BudgetFFs - measured
		}
		if n <= 0 {
			break
		}

		var rnd Round
		if st.Round < len(records) {
			rec := records[st.Round]
			if len(rec.Selected) != len(rec.Failures) || len(rec.Selected) != len(rec.Injections) {
				return nil, fmt.Errorf("plan: checkpoint round %d is inconsistent", st.Round)
			}
			for k, ff := range rec.Selected {
				if ff < 0 || ff >= len(st.Measured) || st.Measured[ff] {
					return nil, fmt.Errorf("plan: checkpoint round %d re-measures flip-flop %d", st.Round, ff)
				}
				l.applyMeasurement(st, ff, rec.Failures[k], rec.Injections[k])
			}
			rnd = Round{Index: st.Round, Selected: rec.Selected, Resumed: true}
		} else {
			sel, err := l.selectBatch(st, n)
			if err != nil {
				return nil, err
			}
			if len(sel) == 0 {
				break
			}
			fr, err := cfg.Target.RunRound(ctx, sel, l.roundCheckpointPath(st.Round),
				cfg.Resume && st.Round == resumedRounds)
			if err != nil {
				return nil, fmt.Errorf("plan: round %d: %w", st.Round, err)
			}
			rec := roundRecord{Selected: sel}
			for _, ff := range sel {
				rec.Failures = append(rec.Failures, fr.Failures[ff])
				rec.Injections = append(rec.Injections, fr.Injections[ff])
				l.applyMeasurement(st, ff, fr.Failures[ff], fr.Injections[ff])
			}
			records = append(records, rec)
			rnd = Round{Index: st.Round, Selected: sel}
		}

		// Retrain and estimate; the replayed path runs the identical code,
		// so a resumed trajectory is bit-identical to an uninterrupted one.
		ffr, lo, hi, err := l.estimate(st)
		if err != nil {
			return nil, fmt.Errorf("plan: round %d estimate: %w", st.Round, err)
		}
		rnd.MeasuredFFs = st.MeasuredCount()
		rnd.Injections = totalInjections(st)
		rnd.FFR, rnd.CILo, rnd.CIHi = ffr, lo, hi
		rnd.Delta = math.Inf(1)
		if !math.IsNaN(prevFFR) {
			rnd.Delta = math.Abs(ffr - prevFFR)
		}
		prevFFR = ffr
		res.Rounds = append(res.Rounds, rnd)

		if !rnd.Resumed && cfg.CheckpointPath != "" {
			if err := saveLoopCheckpoint(cfg.CheckpointPath, l.checkpoint(records)); err != nil {
				return nil, err
			}
			// The round's campaign checkpoint is folded into the loop
			// checkpoint now; drop the spent file.
			os.Remove(l.roundCheckpointPath(st.Round))
		}
		l.metrics.observeRound(rnd)
		l.log.Info("round complete",
			obs.F("round", rnd.Index),
			obs.F("selected", len(rnd.Selected)),
			obs.F("resumed", rnd.Resumed),
			obs.F("measured_ffs", rnd.MeasuredFFs),
			obs.F("injections", rnd.Injections),
			obs.F("ffr", rnd.FFR),
			obs.F("ci_width", rnd.CIHi-rnd.CILo),
			obs.F("delta", rnd.Delta))
		if cfg.OnRound != nil {
			cfg.OnRound(rnd)
		}

		active := cfg.DeltaTol > 0 || cfg.CIWidthTol > 0
		deltaOK := cfg.DeltaTol <= 0 || rnd.Delta <= cfg.DeltaTol
		ciOK := cfg.CIWidthTol <= 0 || rnd.CIHi-rnd.CILo <= cfg.CIWidthTol
		if active && deltaOK && ciOK {
			streak++
		} else {
			streak = 0
		}
	}

	if st.MeasuredCount() == 0 {
		return nil, fmt.Errorf("plan: loop measured no flip-flops (budget %d, rounds %d)",
			cfg.BudgetFFs, cfg.MaxRounds)
	}
	l.metrics.observeConverged(res.Converged)
	l.log.Info("loop finished",
		obs.F("rounds", len(res.Rounds)),
		obs.F("converged", res.Converged),
		obs.F("measured_ffs", st.MeasuredCount()),
		obs.F("injections", totalInjections(st)))
	return l.finalize(st, res)
}

// selectBatch applies the strategy and validates its output contract.
func (l *Loop) selectBatch(st *State, n int) ([]int, error) {
	sel, err := l.cfg.Strategy.Select(st, n)
	if err != nil {
		return nil, fmt.Errorf("plan: %s selection: %w", l.cfg.Strategy.Name(), err)
	}
	if len(sel) > n {
		return nil, fmt.Errorf("plan: %s selected %d flip-flops, budget %d", l.cfg.Strategy.Name(), len(sel), n)
	}
	for i, ff := range sel {
		if ff < 0 || ff >= len(st.Measured) || st.Measured[ff] {
			return nil, fmt.Errorf("plan: %s selected invalid or measured flip-flop %d", l.cfg.Strategy.Name(), ff)
		}
		if i > 0 && sel[i-1] >= ff {
			return nil, fmt.Errorf("plan: %s selection not strictly ascending", l.cfg.Strategy.Name())
		}
	}
	return sel, nil
}

func (l *Loop) applyMeasurement(st *State, ff, failures, injections int) {
	st.Measured[ff] = true
	st.Failures[ff] = failures
	st.Injections[ff] = injections
	if injections > 0 {
		st.FDR[ff] = float64(failures) / float64(injections)
	}
}

// estimate retrains the model on the measured flip-flops and produces the
// circuit FFR (mean of the per-FF estimate vector) and the measured-mean CI.
func (l *Loop) estimate(st *State) (ffr, lo, hi float64, err error) {
	trX, trY := st.TrainData()
	model := l.cfg.Model()
	if err := model.Fit(trX, trY); err != nil {
		return 0, 0, 0, err
	}
	est := estimateVector(st, model)
	var sum float64
	for _, v := range est {
		sum += v
	}
	ffr = sum / float64(len(est))
	_, lo, hi = metrics.MeanCI(trY, 1.96)
	return ffr, lo, hi, nil
}

// estimateVector is the per-FF FDR estimate: the measurement where one
// exists, the model's clamped prediction elsewhere.
func estimateVector(st *State, model ml.Regressor) []float64 {
	est := make([]float64, len(st.X))
	for ff := range st.X {
		if st.Measured[ff] {
			est[ff] = st.FDR[ff]
			continue
		}
		p := model.Predict(st.X[ff])
		if p < 0 {
			p = 0
		} else if p > 1 {
			p = 1
		}
		est[ff] = p
	}
	return est
}

func totalInjections(st *State) int {
	n := 0
	for _, ff := range st.Pool {
		n += st.Injections[ff]
	}
	return n
}

// finalize trains the final model and assembles the Result.
func (l *Loop) finalize(st *State, res *Result) (*Result, error) {
	trX, trY := st.TrainData()
	model := l.cfg.Model()
	if err := model.Fit(trX, trY); err != nil {
		return nil, fmt.Errorf("plan: final fit: %w", err)
	}
	res.Measured = st.MeasuredSet()
	res.TotalInjections = totalInjections(st)
	res.Model = model
	res.Estimates = estimateVector(st, model)
	var sum float64
	for _, v := range res.Estimates {
		sum += v
	}
	res.FFR = sum / float64(len(res.Estimates))
	_, res.CILo, res.CIHi = metrics.MeanCI(trY, 1.96)
	res.ModelFingerprint = persist.DataFingerprint(trX, trY)
	res.EstimateFingerprint = persist.DataFingerprint(nil, res.Estimates)
	return res, nil
}

// roundCheckpointPath names the fault.Runner checkpoint of one in-flight
// round; "" when loop checkpointing is disabled.
func (l *Loop) roundCheckpointPath(round int) string {
	if l.cfg.CheckpointPath == "" {
		return ""
	}
	return fmt.Sprintf("%s.round%d", l.cfg.CheckpointPath, round)
}
