package plan

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/persist"
)

// Loop checkpoint persistence, in the repository's standard artifact layout
// (fault/checkpoint.go, persist): one file with a human-readable JSON header
// line — format identification, version, the full loop configuration
// fingerprint — followed by a gob payload with the per-round measurement
// records. Saves are atomic (temp sibling + rename). The header pins
// everything a selection depends on, so a loop cannot silently resume under
// a different strategy, model, seed, budget, pool or campaign and drift from
// the run it checkpointed.

const (
	// loopCheckpointMagic identifies the file format.
	loopCheckpointMagic = "repro/plan adaptive-loop checkpoint"
	// LoopCheckpointVersion is the current on-disk format version.
	LoopCheckpointVersion = 1
)

// Loop checkpoint errors, matchable with errors.Is.
var (
	// ErrLoopCheckpointCorrupt marks files that are not parseable loop
	// checkpoints.
	ErrLoopCheckpointCorrupt = errors.New("plan: corrupt loop checkpoint")
	// ErrLoopCheckpointVersion marks a parseable checkpoint of an
	// unsupported format version.
	ErrLoopCheckpointVersion = errors.New("plan: unsupported loop checkpoint version")
	// ErrLoopCheckpointMismatch marks a well-formed checkpoint that belongs
	// to a differently configured loop.
	ErrLoopCheckpointMismatch = errors.New("plan: loop checkpoint does not match configuration")
)

// roundRecord is one completed round: which flip-flops were measured and
// what the campaign counted for each (aligned with Selected).
type roundRecord struct {
	Selected   []int
	Failures   []int
	Injections []int
}

// loopCheckpoint is the on-disk state of a partially completed loop.
type loopCheckpoint struct {
	Strategy        string
	Model           string
	Seed            int64
	InjectionsPerFF int
	NumFFs          int
	CampaignHash    uint64
	FeaturesHash    uint64
	PoolHash        uint64
	InitFFs         int
	RoundFFs        int
	MaxRounds       int
	BudgetFFs       int
	DeltaTol        float64
	CIWidthTol      float64
	Patience        int
	Rounds          []roundRecord
}

// loopHeader is the JSON first line of a loop checkpoint file.
type loopHeader struct {
	Magic           string  `json:"magic"`
	Version         int     `json:"version"`
	Strategy        string  `json:"strategy"`
	Model           string  `json:"model"`
	Seed            int64   `json:"seed"`
	InjectionsPerFF int     `json:"injections_per_ff"`
	NumFFs          int     `json:"num_ffs"`
	CampaignHash    string  `json:"campaign_hash"`
	FeaturesHash    string  `json:"features_hash"`
	PoolHash        string  `json:"pool_hash"`
	InitFFs         int     `json:"init_ffs"`
	RoundFFs        int     `json:"round_ffs"`
	MaxRounds       int     `json:"max_rounds"`
	BudgetFFs       int     `json:"budget_ffs"`
	DeltaTol        float64 `json:"delta_tol"`
	CIWidthTol      float64 `json:"ci_width_tol"`
	Patience        int     `json:"patience"`
	Rounds          int     `json:"completed_rounds"`
}

// poolFingerprint digests the eligible flip-flop set.
func poolFingerprint(pool []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	write(uint64(len(pool)))
	for _, ff := range pool {
		write(uint64(ff))
	}
	return h.Sum64()
}

// checkpoint snapshots the loop's identity plus the completed rounds.
func (l *Loop) checkpoint(records []roundRecord) *loopCheckpoint {
	return &loopCheckpoint{
		Strategy:        l.cfg.Strategy.Name(),
		Model:           l.cfg.ModelName,
		Seed:            l.cfg.Seed,
		InjectionsPerFF: l.cfg.Target.InjectionsPerFF(),
		NumFFs:          l.cfg.Target.NumFFs(),
		CampaignHash:    l.cfg.Target.CampaignFingerprint(),
		FeaturesHash:    persist.DataFingerprint(l.cfg.Target.FeatureRows(), nil),
		PoolHash:        poolFingerprint(l.pool),
		InitFFs:         l.cfg.InitFFs,
		RoundFFs:        l.cfg.RoundFFs,
		MaxRounds:       l.cfg.MaxRounds,
		BudgetFFs:       l.cfg.BudgetFFs,
		DeltaTol:        l.cfg.DeltaTol,
		CIWidthTol:      l.cfg.CIWidthTol,
		Patience:        l.cfg.Patience,
		Rounds:          records,
	}
}

// matchCheckpoint verifies a loaded checkpoint belongs to exactly this loop
// configuration; any divergence would let the resumed run select different
// flip-flops than the interrupted one.
func (l *Loop) matchCheckpoint(ck *loopCheckpoint) error {
	want := l.checkpoint(nil)
	mismatch := func(what string, got, exp any) error {
		return fmt.Errorf("%w: %s differs (checkpoint %v, loop %v)", ErrLoopCheckpointMismatch, what, got, exp)
	}
	switch {
	case ck.Strategy != want.Strategy:
		return mismatch("strategy", ck.Strategy, want.Strategy)
	case ck.Model != want.Model:
		return mismatch("model", ck.Model, want.Model)
	case ck.Seed != want.Seed:
		return mismatch("seed", ck.Seed, want.Seed)
	case ck.InjectionsPerFF != want.InjectionsPerFF:
		return mismatch("injections per FF", ck.InjectionsPerFF, want.InjectionsPerFF)
	case ck.NumFFs != want.NumFFs:
		return mismatch("flip-flop count", ck.NumFFs, want.NumFFs)
	case ck.CampaignHash != want.CampaignHash:
		return mismatch("campaign fingerprint", fmt.Sprintf("%x", ck.CampaignHash), fmt.Sprintf("%x", want.CampaignHash))
	case ck.FeaturesHash != want.FeaturesHash:
		return mismatch("feature fingerprint", fmt.Sprintf("%x", ck.FeaturesHash), fmt.Sprintf("%x", want.FeaturesHash))
	case ck.PoolHash != want.PoolHash:
		return mismatch("pool fingerprint", fmt.Sprintf("%x", ck.PoolHash), fmt.Sprintf("%x", want.PoolHash))
	case ck.InitFFs != want.InitFFs:
		return mismatch("init batch", ck.InitFFs, want.InitFFs)
	case ck.RoundFFs != want.RoundFFs:
		return mismatch("round batch", ck.RoundFFs, want.RoundFFs)
	case ck.MaxRounds != want.MaxRounds:
		return mismatch("max rounds", ck.MaxRounds, want.MaxRounds)
	case ck.BudgetFFs != want.BudgetFFs:
		return mismatch("budget", ck.BudgetFFs, want.BudgetFFs)
	case ck.DeltaTol != want.DeltaTol:
		return mismatch("delta tolerance", ck.DeltaTol, want.DeltaTol)
	case ck.CIWidthTol != want.CIWidthTol:
		return mismatch("CI width tolerance", ck.CIWidthTol, want.CIWidthTol)
	case ck.Patience != want.Patience:
		return mismatch("patience", ck.Patience, want.Patience)
	}
	return nil
}

// saveLoopCheckpoint atomically writes ck to path (temp sibling + rename).
func saveLoopCheckpoint(path string, ck *loopCheckpoint) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	w := bufio.NewWriter(tmp)
	hdr := loopHeader{
		Magic:           loopCheckpointMagic,
		Version:         LoopCheckpointVersion,
		Strategy:        ck.Strategy,
		Model:           ck.Model,
		Seed:            ck.Seed,
		InjectionsPerFF: ck.InjectionsPerFF,
		NumFFs:          ck.NumFFs,
		CampaignHash:    strconv.FormatUint(ck.CampaignHash, 16),
		FeaturesHash:    strconv.FormatUint(ck.FeaturesHash, 16),
		PoolHash:        strconv.FormatUint(ck.PoolHash, 16),
		InitFFs:         ck.InitFFs,
		RoundFFs:        ck.RoundFFs,
		MaxRounds:       ck.MaxRounds,
		BudgetFFs:       ck.BudgetFFs,
		DeltaTol:        ck.DeltaTol,
		CIWidthTol:      ck.CIWidthTol,
		Patience:        ck.Patience,
		Rounds:          len(ck.Rounds),
	}
	line, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	if _, err = w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	if err = gob.NewEncoder(w).Encode(ck.Rounds); err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	if err = w.Flush(); err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("plan: saving loop checkpoint: %w", err)
	}
	return nil
}

// loadLoopCheckpoint reads and structurally validates a loop checkpoint.
// Matching it against the running configuration is matchCheckpoint's job.
func loadLoopCheckpoint(path string) (*loopCheckpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %s: missing header", ErrLoopCheckpointCorrupt, path)
	}
	var hdr loopHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return nil, fmt.Errorf("%w: %s: bad header: %v", ErrLoopCheckpointCorrupt, path, err)
	}
	if hdr.Magic != loopCheckpointMagic {
		return nil, fmt.Errorf("%w: %s: magic %q", ErrLoopCheckpointCorrupt, path, hdr.Magic)
	}
	if hdr.Version != LoopCheckpointVersion {
		return nil, fmt.Errorf("%w: %s: version %d, supported %d",
			ErrLoopCheckpointVersion, path, hdr.Version, LoopCheckpointVersion)
	}
	campaignHash, err := strconv.ParseUint(hdr.CampaignHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad campaign hash %q", ErrLoopCheckpointCorrupt, path, hdr.CampaignHash)
	}
	featuresHash, err := strconv.ParseUint(hdr.FeaturesHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad features hash %q", ErrLoopCheckpointCorrupt, path, hdr.FeaturesHash)
	}
	poolHash, err := strconv.ParseUint(hdr.PoolHash, 16, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: bad pool hash %q", ErrLoopCheckpointCorrupt, path, hdr.PoolHash)
	}

	ck := &loopCheckpoint{
		Strategy:        hdr.Strategy,
		Model:           hdr.Model,
		Seed:            hdr.Seed,
		InjectionsPerFF: hdr.InjectionsPerFF,
		NumFFs:          hdr.NumFFs,
		CampaignHash:    campaignHash,
		FeaturesHash:    featuresHash,
		PoolHash:        poolHash,
		InitFFs:         hdr.InitFFs,
		RoundFFs:        hdr.RoundFFs,
		MaxRounds:       hdr.MaxRounds,
		BudgetFFs:       hdr.BudgetFFs,
		DeltaTol:        hdr.DeltaTol,
		CIWidthTol:      hdr.CIWidthTol,
		Patience:        hdr.Patience,
	}
	if err := gob.NewDecoder(r).Decode(&ck.Rounds); err != nil {
		return nil, fmt.Errorf("%w: %s: bad payload: %v", ErrLoopCheckpointCorrupt, path, err)
	}
	if len(ck.Rounds) != hdr.Rounds {
		return nil, fmt.Errorf("%w: %s: header says %d rounds, payload has %d",
			ErrLoopCheckpointCorrupt, path, hdr.Rounds, len(ck.Rounds))
	}
	return ck, nil
}
