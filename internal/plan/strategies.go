package plan

import (
	"fmt"
	"sort"

	"repro/internal/ml"
)

// Committee is query-by-committee acquisition: every member of the model zoo
// trains on the measured flip-flops, and the next batch goes to the
// unmeasured flip-flops the members disagree about most (highest population
// variance of the per-FF predictions). Disagreement concentrates exactly
// where the feature→FDR mapping is underdetermined by the evidence so far.
type Committee struct {
	// Members are the committee model factories (at least two).
	Members []ml.Factory
}

// Name implements Strategy.
func (Committee) Name() string { return StrategyCommittee }

// Select implements Strategy. With no measured data yet it falls back to the
// shared seeded random draw.
func (c Committee) Select(st *State, n int) ([]int, error) {
	if len(c.Members) < 2 {
		return nil, fmt.Errorf("plan: committee needs at least 2 members, have %d", len(c.Members))
	}
	if st.MeasuredCount() == 0 {
		return randomDraw(st, n), nil
	}
	trX, trY := st.TrainData()
	cand := st.Unmeasured()
	preds := make([][]float64, 0, len(c.Members))
	for i, factory := range c.Members {
		m := factory()
		if err := m.Fit(trX, trY); err != nil {
			return nil, fmt.Errorf("plan: committee member %d fit: %w", i, err)
		}
		p := make([]float64, len(cand))
		for k, ff := range cand {
			p[k] = m.Predict(st.X[ff])
		}
		preds = append(preds, p)
	}
	score := make([]float64, len(cand))
	for k := range cand {
		score[k] = predictionVariance(preds, k)
	}
	return topByScore(cand, score, n), nil
}

// Uncertainty is bootstrap-variance uncertainty sampling: Replicas copies of
// the base model train on seeded bootstrap resamples of the measured data,
// and the next batch goes to the unmeasured flip-flops whose predictions
// vary most across the replicas — a model-agnostic stand-in for predictive
// variance that works for point-estimate regressors like k-NN or SVR.
type Uncertainty struct {
	// Base builds the model being bootstrapped.
	Base ml.Factory
	// Replicas is the bootstrap ensemble size; 0 means DefaultReplicas.
	Replicas int
}

// DefaultReplicas is the default bootstrap ensemble size of Uncertainty.
const DefaultReplicas = 8

// Name implements Strategy.
func (Uncertainty) Name() string { return StrategyUncertainty }

// Select implements Strategy. With no measured data yet it falls back to the
// shared seeded random draw.
func (u Uncertainty) Select(st *State, n int) ([]int, error) {
	if u.Base == nil {
		return nil, fmt.Errorf("plan: uncertainty strategy has no base model factory")
	}
	if st.MeasuredCount() == 0 {
		return randomDraw(st, n), nil
	}
	replicas := u.Replicas
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	trX, trY := st.TrainData()
	cand := st.Unmeasured()
	rng := st.rng()
	preds := make([][]float64, 0, replicas)
	bx := make([][]float64, len(trX))
	by := make([]float64, len(trY))
	for r := 0; r < replicas; r++ {
		for i := range bx {
			j := rng.Intn(len(trX))
			bx[i], by[i] = trX[j], trY[j]
		}
		m := u.Base()
		if err := m.Fit(bx, by); err != nil {
			return nil, fmt.Errorf("plan: bootstrap replica %d fit: %w", r, err)
		}
		p := make([]float64, len(cand))
		for k, ff := range cand {
			p[k] = m.Predict(st.X[ff])
		}
		preds = append(preds, p)
	}
	score := make([]float64, len(cand))
	for k := range cand {
		score[k] = predictionVariance(preds, k)
	}
	return topByScore(cand, score, n), nil
}

// predictionVariance is the population variance of column k across the
// prediction matrix rows.
func predictionVariance(preds [][]float64, k int) float64 {
	var mean float64
	for _, p := range preds {
		mean += p[k]
	}
	mean /= float64(len(preds))
	var v float64
	for _, p := range preds {
		d := p[k] - mean
		v += d * d
	}
	return v / float64(len(preds))
}

// ClusterCoverage is density-aware exploration: the pool's feature rows are
// standardized and k-means-clustered once per selection, the batch is
// apportioned across clusters proportionally to how many unmeasured
// flip-flops each still holds (largest-remainder rounding), and within a
// cluster the flip-flops nearest the centroid go first. Unlike the
// model-based strategies it needs no labels, so it covers the feature space
// from the very first round.
type ClusterCoverage struct {
	// K is the cluster count; 0 picks ~√pool capped at 16.
	K int
}

// Name implements Strategy.
func (ClusterCoverage) Name() string { return StrategyCluster }

// Select implements Strategy.
func (c ClusterCoverage) Select(st *State, n int) ([]int, error) {
	cand := st.Unmeasured()
	if len(cand) == 0 {
		return nil, nil
	}
	if n > len(cand) {
		n = len(cand)
	}
	k := c.K
	if k <= 0 {
		k = 1
		for k*k < len(st.Pool) {
			k++
		}
		if k > 16 {
			k = 16
		}
	}

	// Cluster the whole pool (not just the unmeasured rows) with a seed
	// independent of the round, so the partition stays stable as rounds
	// consume it.
	poolX := make([][]float64, len(st.Pool))
	for i, ff := range st.Pool {
		poolX[i] = st.X[ff]
	}
	scaler := &ml.StandardScaler{}
	if err := scaler.Fit(poolX); err != nil {
		return nil, fmt.Errorf("plan: cluster scaling: %w", err)
	}
	scaled := scaler.Transform(poolX)
	km := ml.NewKMeans(k)
	if err := km.Fit(scaled, st.Seed); err != nil {
		return nil, fmt.Errorf("plan: clustering: %w", err)
	}

	// Per-cluster unmeasured members, ordered by distance to the centroid.
	scaledOf := make(map[int][]float64, len(st.Pool))
	for i, ff := range st.Pool {
		scaledOf[ff] = scaled[i]
	}
	members := make([][]int, len(km.Centers))
	for _, ff := range cand {
		cl := km.Assign(scaledOf[ff])
		members[cl] = append(members[cl], ff)
	}
	for cl := range members {
		center := km.Centers[cl]
		sortByDistance(members[cl], scaledOf, center)
	}

	quota := largestRemainderQuota(members, n)
	var sel []int
	for cl, m := range members {
		sel = append(sel, m[:quota[cl]]...)
	}
	// Rounding can leave the batch short when some cluster ran dry; top up
	// from the remaining nearest-to-centroid candidates in cluster order.
	for len(sel) < n {
		grew := false
		for cl, m := range members {
			if quota[cl] < len(m) {
				sel = append(sel, m[quota[cl]])
				quota[cl]++
				grew = true
				if len(sel) == n {
					break
				}
			}
		}
		if !grew {
			break
		}
	}
	sort.Ints(sel)
	return sel, nil
}

// largestRemainderQuota apportions n slots over clusters proportionally to
// their unmeasured population, assigning leftover slots to the largest
// fractional remainders (ties toward the lower cluster index). Quotas never
// exceed a cluster's population.
func largestRemainderQuota(members [][]int, n int) []int {
	total := 0
	for _, m := range members {
		total += len(m)
	}
	quota := make([]int, len(members))
	if total == 0 {
		return quota
	}
	assigned := 0
	order := make([]int, len(members))
	frac := make([]float64, len(members))
	for cl, m := range members {
		exact := float64(n) * float64(len(m)) / float64(total)
		quota[cl] = int(exact)
		assigned += quota[cl]
		order[cl] = cl
		frac[cl] = exact - float64(quota[cl])
	}
	sort.SliceStable(order, func(a, b int) bool { return frac[order[a]] > frac[order[b]] })
	for _, cl := range order {
		if assigned >= n {
			break
		}
		if quota[cl] < len(members[cl]) {
			quota[cl]++
			assigned++
		}
	}
	return quota
}

func sortByDistance(ffs []int, scaledOf map[int][]float64, center []float64) {
	// Stable over an ascending input, so equidistant flip-flops keep the
	// lower index first.
	sort.SliceStable(ffs, func(a, b int) bool {
		return sqDistance(scaledOf[ffs[a]], center) < sqDistance(scaledOf[ffs[b]], center)
	})
}

func sqDistance(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}
