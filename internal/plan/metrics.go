package plan

import (
	"math"

	"repro/internal/obs"
)

// planMetrics is the active-learning loop's observability surface
// (ffr_plan_*): per-round gauges tracking the estimate trajectory. A nil
// *planMetrics is a valid no-op.
type planMetrics struct {
	round      *obs.Gauge
	measured   *obs.Gauge
	injections *obs.Gauge
	ffr        *obs.Gauge
	ciWidth    *obs.Gauge
	delta      *obs.Gauge
	converged  *obs.Gauge
}

func newPlanMetrics(reg *obs.Registry) *planMetrics {
	return &planMetrics{
		round: reg.Gauge("ffr_plan_round",
			"completed planner rounds (including rounds replayed from a checkpoint)"),
		measured: reg.Gauge("ffr_plan_measured_ffs",
			"flip-flops measured so far"),
		injections: reg.Gauge("ffr_plan_injections",
			"SEU injection runs spent so far"),
		ffr: reg.Gauge("ffr_plan_ffr_estimate",
			"circuit FFR estimate after the latest round"),
		ciWidth: reg.Gauge("ffr_plan_ci_width",
			"width of the measured-FDR mean's 95% confidence interval"),
		delta: reg.Gauge("ffr_plan_delta",
			"round-over-round change of the FFR estimate (absolute)"),
		converged: reg.Gauge("ffr_plan_converged",
			"1 once the loop stopped on its convergence criteria, else 0"),
	}
}

func (m *planMetrics) observeRound(r Round) {
	if m == nil {
		return
	}
	m.round.Set(float64(r.Index + 1))
	m.measured.Set(float64(r.MeasuredFFs))
	m.injections.Set(float64(r.Injections))
	m.ffr.Set(r.FFR)
	m.ciWidth.Set(r.CIHi - r.CILo)
	if !math.IsInf(r.Delta, 1) {
		m.delta.Set(r.Delta)
	}
}

func (m *planMetrics) observeConverged(converged bool) {
	if m == nil {
		return
	}
	if converged {
		m.converged.Set(1)
	} else {
		m.converged.Set(0)
	}
}
