package plan

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/fault"
	"repro/internal/ml"
)

// Target is the injection backend a Loop drives: it exposes the per-flip-flop
// feature matrix the strategies score, and runs one round's injection
// campaign for a selected flip-flop set. core.Study adapters implement it.
type Target interface {
	// NumFFs is the number of flip-flops under study.
	NumFFs() int
	// FeatureRows is the per-FF feature matrix (aliased; callers must not
	// modify).
	FeatureRows() [][]float64
	// InjectionsPerFF is the per-flip-flop SEU budget of one round.
	InjectionsPerFF() int
	// CampaignFingerprint digests the campaign identity (golden trace);
	// loop checkpoints record it so a loop cannot resume against a
	// different circuit, workload or stimulus.
	CampaignFingerprint() uint64
	// RunRound fault-injects exactly the given flip-flops and returns the
	// per-FF failure/injection counts. When checkpointPath is non-empty the
	// round must run on a checkpointed fault.Runner; resume is set only for
	// the in-flight round of a resumed loop, where the runner must pick up
	// the path's chunk state if it exists — the machinery that makes a
	// mid-round interruption resumable and rejects a re-derived plan that
	// is not bit-identical. On fresh rounds resume is false, so a stale
	// file from an unrelated earlier run is overwritten, never adopted.
	RunRound(ctx context.Context, ffs []int, checkpointPath string, resume bool) (*fault.Result, error)
}

// State is the planner's view of the campaign so far — everything a Strategy
// may condition its selection on. Selections must be pure functions of the
// State (plus the strategy's own configuration): that purity is what makes
// checkpoint resume bit-identical.
type State struct {
	// X is the full per-FF feature matrix (aliased, read-only).
	X [][]float64
	// Pool is the ascending set of flip-flops eligible for measurement.
	Pool []int
	// Measured flags per FF whether it has been injected.
	Measured []bool
	// FDR, Failures and Injections are per-FF measured results, valid where
	// Measured is true.
	FDR        []float64
	Failures   []int
	Injections []int
	// Round is the zero-based index of the round being selected.
	Round int
	// Seed drives every stochastic choice of the loop and its strategies.
	Seed int64
}

// MeasuredCount returns how many pool flip-flops have been measured.
func (st *State) MeasuredCount() int {
	n := 0
	for _, ff := range st.Pool {
		if st.Measured[ff] {
			n++
		}
	}
	return n
}

// Unmeasured returns the ascending pool flip-flops not yet measured.
func (st *State) Unmeasured() []int {
	out := make([]int, 0, len(st.Pool))
	for _, ff := range st.Pool {
		if !st.Measured[ff] {
			out = append(out, ff)
		}
	}
	return out
}

// MeasuredSet returns the ascending pool flip-flops already measured.
func (st *State) MeasuredSet() []int {
	out := make([]int, 0, len(st.Pool))
	for _, ff := range st.Pool {
		if st.Measured[ff] {
			out = append(out, ff)
		}
	}
	return out
}

// TrainData gathers the measured feature rows and FDR targets.
func (st *State) TrainData() ([][]float64, []float64) {
	idx := st.MeasuredSet()
	X := make([][]float64, len(idx))
	y := make([]float64, len(idx))
	for k, ff := range idx {
		X[k] = st.X[ff]
		y[k] = st.FDR[ff]
	}
	return X, y
}

// rng derives the round's random source. The golden-ratio increment keeps
// per-round streams decorrelated while staying a pure function of
// (seed, round).
func (st *State) rng() *rand.Rand {
	const goldenGamma = int64(-0x61C8864680B583EB) // 2^64 / φ as int64
	return rand.New(rand.NewSource(st.Seed + int64(st.Round)*goldenGamma))
}

// Strategy selects where the next injection batch is spent. Implementations
// must be deterministic in (State, own configuration) and must only return
// unmeasured pool flip-flops, at most n, in ascending order.
type Strategy interface {
	// Name identifies the strategy in checkpoints and CLIs.
	Name() string
	// Select returns the next flip-flops to measure.
	Select(st *State, n int) ([]int, error)
}

// Strategy names accepted by New.
const (
	StrategyRandom      = "random"
	StrategyCommittee   = "committee"
	StrategyUncertainty = "uncertainty"
	StrategyCluster     = "cluster"
)

// StrategyNames lists every built-in strategy name.
func StrategyNames() []string {
	return []string{StrategyRandom, StrategyCommittee, StrategyUncertainty, StrategyCluster}
}

// New resolves a built-in strategy by name. base is the model factory the
// uncertainty strategy bootstraps; committee is the model zoo the committee
// strategy measures disagreement across (both may be nil for strategies that
// do not need them — resolution fails if a required one is missing).
func New(name string, base ml.Factory, committee []ml.Factory) (Strategy, error) {
	switch name {
	case StrategyRandom:
		return Random{}, nil
	case StrategyCommittee:
		if len(committee) < 2 {
			return nil, fmt.Errorf("plan: committee strategy needs at least 2 member factories, have %d", len(committee))
		}
		return Committee{Members: committee}, nil
	case StrategyUncertainty:
		if base == nil {
			return nil, fmt.Errorf("plan: uncertainty strategy needs a base model factory")
		}
		return Uncertainty{Base: base}, nil
	case StrategyCluster:
		return ClusterCoverage{}, nil
	}
	return nil, fmt.Errorf("plan: unknown strategy %q (valid: %v)", name, StrategyNames())
}

// Random is the baseline acquisition strategy: a seeded uniform draw from
// the unmeasured pool. Every informed strategy is judged against it.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return StrategyRandom }

// Select implements Strategy.
func (Random) Select(st *State, n int) ([]int, error) {
	return randomDraw(st, n), nil
}

// randomDraw is the shared seeded uniform draw — also the cold start of the
// model-based strategies, so every strategy opens with the identical first
// batch and comparisons measure acquisition, not initialization.
func randomDraw(st *State, n int) []int {
	cand := st.Unmeasured()
	rng := st.rng()
	rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if n > len(cand) {
		n = len(cand)
	}
	sel := append([]int(nil), cand[:n]...)
	sort.Ints(sel)
	return sel
}

// topByScore returns the n highest-scoring candidates, breaking score ties
// toward the lower flip-flop index, in ascending index order.
func topByScore(cand []int, score []float64, n int) []int {
	order := make([]int, len(cand))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return score[order[a]] > score[order[b]] })
	if n > len(order) {
		n = len(order)
	}
	sel := make([]int, n)
	for i := 0; i < n; i++ {
		sel[i] = cand[order[i]]
	}
	sort.Ints(sel)
	return sel
}
