package plan

import (
	"math/rand"
	"reflect"
	"testing"
)

// strategyState builds a State with the given measured set over a synthetic
// feature matrix.
func strategyState(t *testing.T, numFFs int, measured []int, seed int64) (*State, *fakeTarget) {
	t.Helper()
	target := newFakeTarget(numFFs, 10, seed)
	st := &State{
		X:          target.X,
		Pool:       make([]int, numFFs),
		Measured:   make([]bool, numFFs),
		FDR:        make([]float64, numFFs),
		Failures:   make([]int, numFFs),
		Injections: make([]int, numFFs),
		Round:      1,
		Seed:       seed,
	}
	for i := range st.Pool {
		st.Pool[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	for _, ff := range measured {
		st.Measured[ff] = true
		st.FDR[ff] = target.truth[ff] + rng.NormFloat64()*0.02
		st.Injections[ff] = 10
	}
	return st, target
}

func measuredRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// checkSelection asserts the Strategy output contract: ascending, unmeasured,
// within budget.
func checkSelection(t *testing.T, st *State, sel []int, n int) {
	t.Helper()
	if len(sel) > n {
		t.Fatalf("selected %d > budget %d", len(sel), n)
	}
	for i, ff := range sel {
		if st.Measured[ff] {
			t.Errorf("selected already-measured flip-flop %d", ff)
		}
		if i > 0 && sel[i-1] >= ff {
			t.Fatalf("selection not strictly ascending: %v", sel)
		}
	}
}

func TestStrategiesContractAndDeterminism(t *testing.T) {
	for _, name := range StrategyNames() {
		t.Run(name, func(t *testing.T) {
			strategy, err := New(name, testModel(), testCommittee())
			if err != nil {
				t.Fatal(err)
			}
			st, _ := strategyState(t, 90, measuredRange(30), 5)
			sel, err := strategy.Select(st, 12)
			if err != nil {
				t.Fatal(err)
			}
			if len(sel) != 12 {
				t.Fatalf("selected %d flip-flops, want 12", len(sel))
			}
			checkSelection(t, st, sel, 12)

			st2, _ := strategyState(t, 90, measuredRange(30), 5)
			sel2, err := strategy.Select(st2, 12)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(sel, sel2) {
				t.Errorf("selection not deterministic: %v vs %v", sel, sel2)
			}
		})
	}
}

func TestStrategiesColdStartMatchesRandom(t *testing.T) {
	// With no measurements yet, committee and uncertainty must fall back to
	// the exact random draw, so strategy comparisons share their round 0.
	st, _ := strategyState(t, 60, nil, 9)
	random, _ := New(StrategyRandom, nil, nil)
	want, err := random.Select(st, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{StrategyCommittee, StrategyUncertainty} {
		strategy, err := New(name, testModel(), testCommittee())
		if err != nil {
			t.Fatal(err)
		}
		st2, _ := strategyState(t, 60, nil, 9)
		got, err := strategy.Select(st2, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s cold start %v differs from random draw %v", name, got, want)
		}
	}
}

func TestCommitteePrefersDisagreement(t *testing.T) {
	// Committee scores are prediction variances; the selected set must carry
	// a higher mean disagreement than the rejected set.
	st, _ := strategyState(t, 120, measuredRange(40), 3)
	c := Committee{Members: testCommittee()}
	sel, err := c.Select(st, 10)
	if err != nil {
		t.Fatal(err)
	}
	selSet := map[int]bool{}
	for _, ff := range sel {
		selSet[ff] = true
	}
	trX, trY := st.TrainData()
	var preds [][]float64
	for _, f := range c.Members {
		m := f()
		if err := m.Fit(trX, trY); err != nil {
			t.Fatal(err)
		}
		cand := st.Unmeasured()
		p := make([]float64, len(cand))
		for k, ff := range cand {
			p[k] = m.Predict(st.X[ff])
		}
		preds = append(preds, p)
	}
	cand := st.Unmeasured()
	var selVar, otherVar float64
	var nOther int
	for k, ff := range cand {
		v := predictionVariance(preds, k)
		if selSet[ff] {
			selVar += v
		} else {
			otherVar += v
			nOther++
		}
	}
	if selVar/float64(len(sel)) <= otherVar/float64(nOther) {
		t.Errorf("selected mean variance %v not above rejected %v",
			selVar/float64(len(sel)), otherVar/float64(nOther))
	}
}

func TestClusterCoverageSpreads(t *testing.T) {
	// Cluster coverage must hit every well-separated blob at least once.
	rng := rand.New(rand.NewSource(2))
	centers := [][]float64{{0, 0, 0}, {8, 8, 0}, {-8, 5, 3}, {3, -9, 7}}
	var X [][]float64
	blobOf := map[int]int{}
	for c, center := range centers {
		for i := 0; i < 20; i++ {
			blobOf[len(X)] = c
			X = append(X, []float64{
				center[0] + rng.NormFloat64()*0.3,
				center[1] + rng.NormFloat64()*0.3,
				center[2] + rng.NormFloat64()*0.3,
			})
		}
	}
	cst := &State{
		X: X, Pool: measuredRange(len(X)),
		Measured: make([]bool, len(X)), FDR: make([]float64, len(X)),
		Failures: make([]int, len(X)), Injections: make([]int, len(X)),
		Seed: 4,
	}
	sel, err := ClusterCoverage{K: 4}.Select(cst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 8 {
		t.Fatalf("selected %d, want 8", len(sel))
	}
	hit := map[int]bool{}
	for _, ff := range sel {
		hit[blobOf[ff]] = true
	}
	if len(hit) != len(centers) {
		t.Errorf("coverage selection hit %d of %d blobs: %v", len(hit), len(centers), sel)
	}
}

func TestNewStrategyValidation(t *testing.T) {
	if _, err := New("nope", nil, nil); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := New(StrategyCommittee, nil, testCommittee()[:1]); err == nil {
		t.Error("one-member committee accepted")
	}
	if _, err := New(StrategyUncertainty, nil, nil); err == nil {
		t.Error("uncertainty without base factory accepted")
	}
}

func TestSelectMoreThanAvailable(t *testing.T) {
	for _, name := range StrategyNames() {
		strategy, err := New(name, testModel(), testCommittee())
		if err != nil {
			t.Fatal(err)
		}
		st, _ := strategyState(t, 20, measuredRange(15), 8)
		sel, err := strategy.Select(st, 50)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(sel) != 5 {
			t.Errorf("%s: selected %d of the 5 remaining", name, len(sel))
		}
	}
}
