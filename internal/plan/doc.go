// Package plan is the active-learning campaign planner: instead of fault-
// injecting a fixed random subset of flip-flops and hoping the model
// generalizes, it closes the loop the follow-up literature calls for
// (arXiv:2002.08882, arXiv:2008.13664) — train a model on what has been
// measured so far, score where the model is least certain, spend the next
// injection batch there, retrain, and stop as soon as the circuit-level FFR
// estimate has converged.
//
// The package provides pluggable acquisition strategies (random baseline,
// committee disagreement across the model zoo, bootstrap-variance
// uncertainty sampling, and k-means cluster coverage over the feature
// space), and a Loop driver with per-round budgets, convergence criteria
// (FFR-estimate delta plus confidence-interval width from ml/metrics) and
// checkpointed resumability: the loop state is persisted after every round,
// the in-flight round rides fault.Runner's own campaign checkpoints, and
// every selection is a pure function of (features, measured results, round,
// seed) — so an interrupted loop restarts bit-identically, which the runner
// enforces by fingerprint-matching the re-derived round plan against the
// round's checkpoint.
//
// The planner is deliberately decoupled from the core study: it drives any
// Target (core wires studies in via core.NewAdaptiveStudy, the ffrplan CLI
// and the examples/activelearn walkthrough build on that).
package plan
