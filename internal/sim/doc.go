// Package sim implements gate-level logic simulation for the fault-injection
// study: a levelized, cycle-based, 64-lane bit-parallel engine (every net
// carries a uint64 whose bit k belongs to independent simulation lane k), a
// scalar reference engine used to validate it, open-loop stimulus traces with
// per-lane loopback, golden-trace capture and per-flip-flop signal-activity
// statistics (the paper's dynamic features).
package sim
