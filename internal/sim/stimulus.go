package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// Stimulus is an open-loop input trace plus loopback rules. Open-loop
// stimulus is what makes bit-parallel fault simulation sound: every lane
// receives the same port vectors, so lanes differ only through injected
// faults (and through loopback, which is per-lane by construction).
type Stimulus struct {
	cycles   int
	ports    []int
	vectors  [][]bool // [port][cycle]
	loopback []Loopback
}

// Loopback feeds output port Out (sampled each cycle) into input port In on
// the following cycle, independently per lane. For cycle 0, the value is the
// output's post-reset state, which is well defined for registered outputs.
type Loopback struct {
	In  int
	Out int
}

// NewStimulus returns an empty stimulus covering the given number of cycles.
func NewStimulus(cycles int) *Stimulus {
	return &Stimulus{cycles: cycles}
}

// Cycles returns the trace length.
func (s *Stimulus) Cycles() int { return s.cycles }

// DrivePort registers an input port for vector driving and returns a setter
// for its per-cycle values. Undriven cycles default to 0.
func (s *Stimulus) DrivePort(port int) func(cycle int, v bool) {
	s.ports = append(s.ports, port)
	vec := make([]bool, s.cycles)
	s.vectors = append(s.vectors, vec)
	return func(cycle int, v bool) {
		vec[cycle] = v
	}
}

// DriveBus registers a bus of input ports and returns a setter that writes a
// value across the bus (LSB first) at a cycle.
func (s *Stimulus) DriveBus(ports []int) func(cycle int, v uint64) {
	setters := make([]func(int, bool), len(ports))
	for i, p := range ports {
		setters[i] = s.DrivePort(p)
	}
	return func(cycle int, v uint64) {
		for i := range setters {
			setters[i](cycle, v>>uint(i)&1 == 1)
		}
	}
}

// AddLoopback wires output port out into input port in with one cycle of
// delay, per lane.
func (s *Stimulus) AddLoopback(in, out int) {
	s.loopback = append(s.loopback, Loopback{In: in, Out: out})
}

// Trace records packed monitor words per cycle.
type Trace struct {
	Monitors []int // output port indices, in recording order
	words    []uint64
	cycles   int
}

// NewTrace allocates a trace for the given monitors and cycle count.
func NewTrace(monitors []int, cycles int) *Trace {
	return &Trace{
		Monitors: monitors,
		words:    make([]uint64, cycles*len(monitors)),
		cycles:   cycles,
	}
}

// Cycles returns the number of recorded cycles.
func (t *Trace) Cycles() int { return t.cycles }

// Word returns the packed word of monitor m at the given cycle.
func (t *Trace) Word(cycle, m int) uint64 { return t.words[cycle*len(t.Monitors)+m] }

// Bit returns monitor m's bit in the given lane at the given cycle.
func (t *Trace) Bit(cycle, m, lane int) bool {
	return t.Word(cycle, m)>>uint(lane)&1 == 1
}

// Row returns the packed monitor words of one cycle, one word per monitor in
// recording order. The slice aliases the trace's storage: callers must treat
// it as read-only. It exists for streaming classifiers that observe a run
// cycle by cycle without re-slicing per word.
func (t *Trace) Row(cycle int) []uint64 {
	nm := len(t.Monitors)
	return t.words[cycle*nm : (cycle+1)*nm]
}

// XORWord toggles the lanes of mask in monitor m's word at the given cycle.
// The fault runner applies SET output glitches with it: a pulse that reaches
// a monitored port flips that port's sample for exactly the pulse cycle, and
// the runner patches the recorded (or golden-copied) row post hoc so every
// backend reconstructs the identical observable trace.
func (t *Trace) XORWord(cycle, m int, mask uint64) {
	t.words[cycle*len(t.Monitors)+m] ^= mask
}

// CopyCycles copies rows [from, to) of src into t. Both traces must record
// the same monitor set over the same cycle count; the incremental campaign
// path uses it to fill the fast-forwarded prefix and early-exited suffix of
// a faulty trace from the golden run, which those cycles are provably
// identical to.
func (t *Trace) CopyCycles(src *Trace, from, to int) {
	if len(t.Monitors) != len(src.Monitors) || t.cycles != src.cycles {
		panic("sim: CopyCycles across mismatched traces")
	}
	nm := len(t.Monitors)
	copy(t.words[from*nm:to*nm], src.words[from*nm:to*nm])
}

// Fingerprint returns a stable 64-bit digest of the trace: its shape (cycles,
// monitor ports) and every packed monitor word. Two traces fingerprint equal
// iff they record the same monitors over the same cycles with identical
// values, which lets campaign checkpoints pin the golden reference they were
// classified against without storing the trace itself.
func (t *Trace) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	write(uint64(t.cycles))
	write(uint64(len(t.Monitors)))
	for _, m := range t.Monitors {
		write(uint64(m))
	}
	for _, w := range t.words {
		write(w)
	}
	return h.Sum64()
}

// Equal reports whether two traces record identical monitors, cycle counts
// and monitor words.
func (t *Trace) Equal(o *Trace) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.cycles != o.cycles || len(t.Monitors) != len(o.Monitors) {
		return false
	}
	for i, m := range t.Monitors {
		if o.Monitors[i] != m {
			return false
		}
	}
	for i, w := range t.words {
		if o.words[i] != w {
			return false
		}
	}
	return true
}

// Activity aggregates the paper's dynamic features per flip-flop over a run:
// cycles spent at logic 1 (@1; @0 is the complement) and the number of state
// changes, both observed on lane 0.
type Activity struct {
	Ones    []int64
	Toggles []int64
	Cycles  int
}

// RunConfig controls a simulation run.
type RunConfig struct {
	// Monitors lists output ports to record; nil records nothing.
	Monitors []int
	// PreEval, when non-nil, is invoked every cycle after inputs are
	// driven and before combinational evaluation — the injection hook.
	PreEval func(cycle int)
	// CollectActivity enables per-FF activity statistics (lane 0).
	CollectActivity bool
	// Snapshots, when non-nil, captures periodic engine-state restore
	// points during the run (see NewSnapshots). Only meaningful on a
	// lane-uniform (golden) run: the capture stores lane 0 as canonical.
	Snapshots *Snapshots
}

// Run executes the stimulus on a freshly reset engine and returns the
// recorded trace (nil when cfg.Monitors is nil) and activity statistics
// (nil unless requested).
func Run(e *Engine, stim *Stimulus, cfg RunConfig) (*Trace, *Activity) {
	e.Reset()
	var trace *Trace
	if cfg.Monitors != nil {
		trace = NewTrace(cfg.Monitors, stim.cycles)
	}
	var act *Activity
	var prev []bool
	if cfg.CollectActivity {
		n := e.p.NumFFs()
		act = &Activity{Ones: make([]int64, n), Toggles: make([]int64, n), Cycles: stim.cycles}
		prev = make([]bool, n)
		for i := 0; i < n; i++ {
			prev[i] = e.FFState(i)&1 == 1
		}
	}
	lb := make([]uint64, len(stim.loopback))
	for i, l := range stim.loopback {
		lb[i] = e.Output(l.Out)
	}
	for c := 0; c < stim.cycles; c++ {
		if cfg.Snapshots != nil {
			cfg.Snapshots.capture(e, lb, c)
		}
		for k, port := range stim.ports {
			e.SetInputBool(port, stim.vectors[k][c])
		}
		for i, l := range stim.loopback {
			e.SetInput(l.In, lb[i])
		}
		if cfg.PreEval != nil {
			cfg.PreEval(c)
		}
		e.Eval()
		for i, l := range stim.loopback {
			lb[i] = e.Output(l.Out)
		}
		if trace != nil {
			base := c * len(cfg.Monitors)
			for m, port := range cfg.Monitors {
				trace.words[base+m] = e.Output(port)
			}
		}
		if act != nil {
			for i := range act.Ones {
				bit := e.FFState(i)&1 == 1
				if bit {
					act.Ones[i]++
				}
				if bit != prev[i] {
					act.Toggles[i]++
					prev[i] = bit
				}
			}
		}
		e.Commit()
	}
	return trace, act
}

// RunScalar executes the stimulus on a scalar engine, recording a single
// lane. It mirrors Run and exists to cross-validate the packed engine.
func RunScalar(e *ScalarEngine, stim *Stimulus, monitors []int, preEval func(cycle int)) [][]bool {
	e.Reset()
	out := make([][]bool, stim.cycles)
	lb := make([]bool, len(stim.loopback))
	for i, l := range stim.loopback {
		lb[i] = e.Output(l.Out)
	}
	for c := 0; c < stim.cycles; c++ {
		for k, port := range stim.ports {
			e.SetInput(port, stim.vectors[k][c])
		}
		for i, l := range stim.loopback {
			e.SetInput(l.In, lb[i])
		}
		if preEval != nil {
			preEval(c)
		}
		e.Eval()
		for i, l := range stim.loopback {
			lb[i] = e.Output(l.Out)
		}
		row := make([]bool, len(monitors))
		for m, port := range monitors {
			row[m] = e.Output(port)
		}
		out[c] = row
		e.Commit()
	}
	return out
}

// CheckLaneAgainstScalar verifies that lane `lane` of a packed trace matches
// a scalar run row-for-row; it returns a descriptive error on mismatch.
func CheckLaneAgainstScalar(t *Trace, scalar [][]bool, lane int) error {
	if t.cycles != len(scalar) {
		return fmt.Errorf("sim: trace has %d cycles, scalar %d", t.cycles, len(scalar))
	}
	for c := 0; c < t.cycles; c++ {
		for m := range t.Monitors {
			if t.Bit(c, m, lane) != scalar[c][m] {
				return fmt.Errorf("sim: lane %d differs from scalar at cycle %d monitor %d", lane, c, m)
			}
		}
	}
	return nil
}
