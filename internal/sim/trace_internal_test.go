package sim

import "testing"

func TestTraceFingerprintAndEqual(t *testing.T) {
	a := NewTrace([]int{0, 1}, 3)
	b := NewTrace([]int{0, 1}, 3)
	if a.Fingerprint() != b.Fingerprint() || !a.Equal(b) {
		t.Fatal("identical traces must fingerprint equal")
	}
	b.words[2] = 7
	if a.Fingerprint() == b.Fingerprint() || a.Equal(b) {
		t.Fatal("differing words must change the fingerprint")
	}
	// Shape differences matter even with identical (all-zero) words.
	c := NewTrace([]int{0, 1}, 4)
	if a.Fingerprint() == c.Fingerprint() || a.Equal(c) {
		t.Fatal("cycle count must be part of the fingerprint")
	}
	d := NewTrace([]int{0, 2}, 3)
	if a.Fingerprint() == d.Fingerprint() || a.Equal(d) {
		t.Fatal("monitor ports must be part of the fingerprint")
	}
	if !a.Equal(a) || a.Equal(nil) {
		t.Fatal("Equal edge cases wrong")
	}
}

func TestTraceAccessors(t *testing.T) {
	tr := NewTrace([]int{0, 1}, 3)
	if tr.Cycles() != 3 {
		t.Fatalf("Cycles = %d", tr.Cycles())
	}
	tr.words[1*2+1] = 0b10
	if !tr.Bit(1, 1, 1) || tr.Bit(1, 1, 0) {
		t.Fatal("Bit extraction wrong")
	}
	if tr.Word(1, 1) != 2 {
		t.Fatal("Word extraction wrong")
	}
}
