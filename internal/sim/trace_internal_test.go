package sim

import "testing"

func TestTraceAccessors(t *testing.T) {
	tr := NewTrace([]int{0, 1}, 3)
	if tr.Cycles() != 3 {
		t.Fatalf("Cycles = %d", tr.Cycles())
	}
	tr.words[1*2+1] = 0b10
	if !tr.Bit(1, 1, 1) || tr.Bit(1, 1, 0) {
		t.Fatal("Bit extraction wrong")
	}
	if tr.Word(1, 1) != 2 {
		t.Fatal("Word extraction wrong")
	}
}
