package sim

import "fmt"

// DefaultSnapshotEvery is the default golden snapshot cadence in cycles.
// Finer cadences waste less prefix on restore (a faulty batch fast-forwards
// to the snapshot at or before its earliest injection) and give early-exit
// checks more chances to fire; coarser cadences shrink capture cost and the
// per-boundary state-comparison work. At 8 the comparison overhead is a few
// percent of engine evaluation while the average fast-forward rounding loss
// stays under 4 cycles per batch.
const DefaultSnapshotEvery = 8

// Snapshots is a set of periodic golden engine-state restore points captured
// during the (lane-uniform) golden run: for every cycle c ≡ 0 (mod every)
// the per-flip-flop state bits and the loopback words at the top of cycle c
// — the complete inter-cycle state of an engine, since every other net is
// recomputed from flip-flop state and primary inputs by Eval.
//
// Because the golden run drives identical stimulus into all 64 lanes, the
// state is one bit per flip-flop, not one word: Snapshots stores lane 0 and
// Restore broadcasts it. Restoring a snapshot and simulating forward
// reproduces the golden run exactly, which is what makes golden fast-forward
// of faulty batches sound: lanes only diverge from golden at their first
// injected flip, so every cycle before the batch's earliest injection is
// provably identical to the golden run and can be skipped.
//
// A Snapshots instance is immutable after capture and safe for concurrent
// use by any number of restoring engines.
type Snapshots struct {
	every   int
	cycles  int
	numFFs  int
	ffWords int // ceil(numFFs/64)
	numLb   int

	captured int      // snapshots captured so far (== numSnaps() when complete)
	ff       []uint64 // [snap][ffWords] packed golden FF bits
	lb       []uint64 // [snap][numLb] golden loopback words
}

// NewSnapshots allocates an empty snapshot set for a program/stimulus pair.
// Pass it to RunConfig.Snapshots on the golden run to fill it; every must be
// positive (0 selects DefaultSnapshotEvery).
func NewSnapshots(p *Program, stim *Stimulus, every int) *Snapshots {
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	s := &Snapshots{
		every:   every,
		cycles:  stim.Cycles(),
		numFFs:  p.NumFFs(),
		ffWords: (p.NumFFs() + 63) / 64,
		numLb:   len(stim.loopback),
	}
	n := s.numSnaps()
	s.ff = make([]uint64, n*s.ffWords)
	s.lb = make([]uint64, n*s.numLb)
	return s
}

// numSnaps returns the number of restore points covering [0, cycles).
func (s *Snapshots) numSnaps() int {
	if s.cycles <= 0 {
		return 0
	}
	return (s.cycles-1)/s.every + 1
}

// Every returns the snapshot cadence in cycles.
func (s *Snapshots) Every() int { return s.every }

// Cycles returns the stimulus length the snapshots cover.
func (s *Snapshots) Cycles() int { return s.cycles }

// Complete reports whether every restore point has been captured (i.e. the
// golden run the set was attached to ran to completion).
func (s *Snapshots) Complete() bool { return s.captured == s.numSnaps() }

// IndexAtOrBefore returns the index of the latest snapshot at or before the
// given cycle.
func (s *Snapshots) IndexAtOrBefore(cycle int) int { return cycle / s.every }

// SnapCycle returns the cycle a snapshot index restores to.
func (s *Snapshots) SnapCycle(idx int) int { return idx * s.every }

// Matches verifies the snapshot geometry against a program/stimulus pair; a
// mismatched set would silently fast-forward into garbage state.
func (s *Snapshots) Matches(p *Program, stim *Stimulus) error {
	if s.numFFs != p.NumFFs() {
		return fmt.Errorf("sim: snapshots cover %d flip-flops, program has %d", s.numFFs, p.NumFFs())
	}
	if s.cycles != stim.Cycles() {
		return fmt.Errorf("sim: snapshots cover %d cycles, stimulus has %d", s.cycles, stim.Cycles())
	}
	if s.numLb != len(stim.loopback) {
		return fmt.Errorf("sim: snapshots hold %d loopback words, stimulus has %d", s.numLb, len(stim.loopback))
	}
	if !s.Complete() {
		return fmt.Errorf("sim: snapshot set incomplete (%d of %d captured)", s.captured, s.numSnaps())
	}
	return nil
}

// capture records the golden state at the top of cycle c when c is
// snapshot-aligned. The engine must be running a lane-uniform (golden)
// stimulus; lane 0 is taken as canonical.
func (s *Snapshots) capture(e *Engine, lb []uint64, c int) {
	if c%s.every != 0 {
		return
	}
	idx := c / s.every
	ffBase := idx * s.ffWords
	for w := 0; w < s.ffWords; w++ {
		s.ff[ffBase+w] = 0
	}
	for i := 0; i < s.numFFs; i++ {
		if e.FFState(i)&1 == 1 {
			s.ff[ffBase+i/64] |= 1 << uint(i%64)
		}
	}
	copy(s.lb[idx*s.numLb:(idx+1)*s.numLb], lb)
	if idx >= s.captured {
		s.captured = idx + 1
	}
}

// Restore resets the engine and loads snapshot idx into every lane,
// broadcasting the golden flip-flop bits and filling lb with the golden
// loopback words at that cycle.
func (s *Snapshots) Restore(e *Engine, idx int, lb []uint64) {
	e.Reset()
	ffBase := idx * s.ffWords
	for i := 0; i < s.numFFs; i++ {
		var word uint64
		if s.ff[ffBase+i/64]>>uint(i%64)&1 == 1 {
			word = ^uint64(0)
		}
		e.nets[e.p.ffs[i].q] = word
	}
	copy(lb, s.lb[idx*s.numLb:(idx+1)*s.numLb])
}

// divergedLanes returns the mask of lanes whose inter-cycle state (flip-flop
// bits plus loopback words) differs from golden snapshot idx. A lane with a
// zero bit here has fully re-converged: its remaining simulation is
// cycle-for-cycle identical to the golden run.
func (s *Snapshots) divergedLanes(e *Engine, lb []uint64, idx int) uint64 {
	var diff uint64
	ffBase := idx * s.ffWords
	for i := 0; i < s.numFFs; i++ {
		var want uint64
		if s.ff[ffBase+i/64]>>uint(i%64)&1 == 1 {
			want = ^uint64(0)
		}
		diff |= e.nets[e.p.ffs[i].q] ^ want
	}
	lbBase := idx * s.numLb
	for j := 0; j < s.numLb; j++ {
		diff |= lb[j] ^ s.lb[lbBase+j]
	}
	return diff
}

// MemoryBytes reports the approximate snapshot store size, mostly useful for
// sizing the cadence on very large designs.
func (s *Snapshots) MemoryBytes() int {
	return 8 * (len(s.ff) + len(s.lb))
}

// WindowConfig controls an incremental faulty-batch run (RunWindow).
type WindowConfig struct {
	// Monitors lists output ports to record into Trace; must match the
	// trace's monitor set.
	Monitors []int
	// Trace receives the recorded monitor words for every simulated cycle.
	// It must span the full stimulus length; the caller fills the skipped
	// prefix and any early-exited suffix from the golden trace.
	Trace *Trace
	// PreEval is the per-cycle injection hook (see RunConfig.PreEval).
	PreEval func(cycle int)
	// OnCycle, when non-nil, is invoked after cycle c's monitor words are
	// recorded; returning true stops the run before cycle c+1.
	OnCycle func(cycle int) bool
	// OnSnapshot, when non-nil, is invoked at the top of every
	// snapshot-aligned cycle after the restore point with the mask of lanes
	// that have diverged from the golden state; returning true stops the
	// run before that cycle is simulated.
	OnSnapshot func(cycle int, diverged uint64) bool
}

// RunWindow is the incremental counterpart of Run: it restores the golden
// snapshot at or before start, then simulates cycles forward until the
// stimulus ends or a hook stops it. It returns the first cycle NOT recorded
// into cfg.Trace; rows [0, snapshot) and [returned, cycles) must be filled
// from the golden trace by the caller (they are provably identical to it:
// the prefix because lanes have not yet diverged, the suffix because the
// caller only stops once every lane's verdict can no longer change).
func RunWindow(e *Engine, stim *Stimulus, snaps *Snapshots, start int, cfg WindowConfig) int {
	idx := snaps.IndexAtOrBefore(start)
	lb := make([]uint64, snaps.numLb)
	snaps.Restore(e, idx, lb)
	first := snaps.SnapCycle(idx)

	trace := cfg.Trace
	nm := len(cfg.Monitors)
	for c := first; c < stim.cycles; c++ {
		if cfg.OnSnapshot != nil && c != first && c%snaps.every == 0 {
			if cfg.OnSnapshot(c, snaps.divergedLanes(e, lb, c/snaps.every)) {
				return c
			}
		}
		for k, port := range stim.ports {
			e.SetInputBool(port, stim.vectors[k][c])
		}
		for i, l := range stim.loopback {
			e.SetInput(l.In, lb[i])
		}
		if cfg.PreEval != nil {
			cfg.PreEval(c)
		}
		e.Eval()
		for i, l := range stim.loopback {
			lb[i] = e.Output(l.Out)
		}
		if trace != nil {
			base := c * nm
			for m, port := range cfg.Monitors {
				trace.words[base+m] = e.Output(port)
			}
		}
		if cfg.OnCycle != nil && cfg.OnCycle(c) {
			e.Commit()
			return c + 1
		}
		e.Commit()
	}
	return stim.cycles
}
