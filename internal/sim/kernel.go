package sim

import "fmt"

// DefaultKernelWords is the default wide-batch width of a KernelEngine in
// 64-lane words: 4 words = 256 independent fault-simulation lanes per
// combinational pass. Wider batches amortize instruction dispatch further
// but grow the register file; 4 keeps it cache-resident for the corpus
// circuits while quadrupling lanes per pass.
const DefaultKernelWords = 4

// kOp is a kernel bytecode opcode. The And/Or/Nand/Nor groups must stay
// consecutive in 2→4 input order; the encoder indexes into them.
type kOp uint8

const (
	kBuf kOp = iota
	kInv
	kAnd2
	kAnd3
	kAnd4
	kOr2
	kOr3
	kOr4
	kNand2
	kNand3
	kNand4
	kNor2
	kNor3
	kNor4
	kXor2
	kXnor2
	kMux2
	kAOI21
	kOAI21
	kAO21 // (a&b)|c — fused and-or
	kOA21 // (a|b)&c — fused or-and
	kAndN // a &^ b — fused and-not
	kOrN  // a | ^b — fused or-not
)

// kinstr is one kernel instruction: an opcode plus register-slot operands.
// Slots are register-file rows; a KernelEngine scales them by its batch
// width when it loads the code.
type kinstr struct {
	dst        int32
	a, b, c, d int32
	op         kOp
}

// KernelConfig parameterizes kernel compilation.
type KernelConfig struct {
	// KeepOutputs lists the output ports that must stay observable
	// (monitored ports and loopback sources); dead-fanout pruning removes
	// logic feeding only unlisted outputs. nil keeps every output port.
	KeepOutputs []int
}

// Kernel is the compiled, immutable bytecode form of a program: the fused
// and pruned instruction stream plus the register-file layout (input,
// flip-flop and output slot maps). Build one per program with BuildKernel
// and share it across any number of KernelEngine instances.
type Kernel struct {
	p      *Program
	code   []kinstr
	slots  int
	inSlot []int32 // per input port
	// outSlot is -1 for output ports whose logic was pruned away.
	outSlot        []int32
	ffQ, ffD       []int32
	ffInit         []bool
	const0, const1 int32
	stats          KernelStats
}

// Program returns the program the kernel was compiled from.
func (k *Kernel) Program() *Program { return k.p }

// Stats reports what the kernel compiler did.
func (k *Kernel) Stats() KernelStats { return k.stats }

// KernelEngine executes a kernel over a wide batch of W 64-lane words:
// 64·W independent simulation lanes per combinational pass. Word w, bit l
// is lane 64·w+l; the fault runner maps each word to one scheduled 64-job
// group so wide batches stay bit-identical to W narrow interpreter batches.
//
// The cycle protocol mirrors Engine exactly (SetInput* / FlipFF / Eval /
// read outputs / Commit); state lives in a compact register file laid out
// slot-major (slot s occupies words [s·W, s·W+W)), which keeps each
// instruction's operands in adjacent cache lines.
type KernelEngine struct {
	k     *Kernel
	w     int
	code  []kinstr // kernel code with slot operands pre-scaled by w
	regs  []uint64
	nextQ []uint64 // FF capture scratch, numFFs·W
}

// NewKernelEngine instantiates a kernel over words 64-lane words per batch
// (0 selects DefaultKernelWords). Instances are cheap; create one per
// worker goroutine.
func NewKernelEngine(k *Kernel, words int) *KernelEngine {
	if words <= 0 {
		words = DefaultKernelWords
	}
	e := &KernelEngine{
		k:     k,
		w:     words,
		code:  make([]kinstr, len(k.code)),
		regs:  make([]uint64, k.slots*words),
		nextQ: make([]uint64, len(k.ffQ)*words),
	}
	W := int32(words)
	for i, ins := range k.code {
		e.code[i] = kinstr{
			op:  ins.op,
			dst: ins.dst * W,
			a:   ins.a * W, b: ins.b * W, c: ins.c * W, d: ins.d * W,
		}
	}
	e.Reset()
	return e
}

// Kernel returns the compiled kernel this engine runs.
func (e *KernelEngine) Kernel() *Kernel { return e.k }

// Words returns the batch width in 64-lane words.
func (e *KernelEngine) Words() int { return e.w }

// Lanes returns the total lane count of one batch.
func (e *KernelEngine) Lanes() int { return e.w * Lanes }

// Reset loads the constant slots and every flip-flop's initial value into
// all lanes and clears everything else.
func (e *KernelEngine) Reset() {
	for i := range e.regs {
		e.regs[i] = 0
	}
	e.fillSlot(e.k.const1, ^uint64(0))
	for i, q := range e.k.ffQ {
		if e.k.ffInit[i] {
			e.fillSlot(q, ^uint64(0))
		}
	}
}

func (e *KernelEngine) fillSlot(slot int32, v uint64) {
	base := int(slot) * e.w
	for w := 0; w < e.w; w++ {
		e.regs[base+w] = v
	}
}

// SetInputBool broadcasts one bit to every lane of input port i.
func (e *KernelEngine) SetInputBool(i int, v bool) {
	var word uint64
	if v {
		word = ^uint64(0)
	}
	e.fillSlot(e.k.inSlot[i], word)
}

// SetInputWord drives a packed word onto input port i's batch word w.
func (e *KernelEngine) SetInputWord(i, w int, word uint64) {
	e.regs[int(e.k.inSlot[i])*e.w+w] = word
}

// FlipFF inverts flip-flop ff in the lanes of mask within batch word w —
// the SEU injection primitive, same semantics as Engine.FlipFF per word.
func (e *KernelEngine) FlipFF(ff, w int, mask uint64) {
	e.regs[int(e.k.ffQ[ff])*e.w+w] ^= mask
}

// ForceFF drives flip-flop ff to value in the lanes of mask within batch
// word w — the kernel counterpart of Engine.ForceFF, used by the stuck-at
// fault model.
func (e *KernelEngine) ForceFF(ff, w int, mask uint64, value bool) {
	if value {
		e.regs[int(e.k.ffQ[ff])*e.w+w] |= mask
	} else {
		e.regs[int(e.k.ffQ[ff])*e.w+w] &^= mask
	}
}

// FFWord returns the packed state of flip-flop ff in batch word w.
func (e *KernelEngine) FFWord(ff, w int) uint64 {
	return e.regs[int(e.k.ffQ[ff])*e.w+w]
}

// OutputWord returns the packed word on output port i in batch word w
// (valid after Eval). The port must be in the kernel's kept set.
func (e *KernelEngine) OutputWord(i, w int) uint64 {
	slot := e.k.outSlot[i]
	if slot < 0 {
		panic(fmt.Sprintf("sim: kernel output port %d was pruned (not in KeepOutputs)", i))
	}
	return e.regs[int(slot)*e.w+w]
}

// Eval executes the kernel bytecode: one fused combinational pass over all
// 64·W lanes. Operand offsets are pre-scaled; every instruction reads all
// its operand words before writing the destination word, so in-place
// destinations (the allocator's preferred layout) are safe.
func (e *KernelEngine) Eval() {
	regs := e.regs
	W := e.w
	for i := range e.code {
		ins := &e.code[i]
		rd := regs[ins.dst:][:W]
		ra := regs[ins.a:][:W]
		switch ins.op {
		case kBuf:
			copy(rd, ra)
		case kInv:
			for w := range rd {
				rd[w] = ^ra[w]
			}
		case kAnd2:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ra[w] & rb[w]
			}
		case kAnd3:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = ra[w] & rb[w] & rc[w]
			}
		case kAnd4:
			rb, rc, re := regs[ins.b:][:W], regs[ins.c:][:W], regs[ins.d:][:W]
			for w := range rd {
				rd[w] = ra[w] & rb[w] & rc[w] & re[w]
			}
		case kOr2:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ra[w] | rb[w]
			}
		case kOr3:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = ra[w] | rb[w] | rc[w]
			}
		case kOr4:
			rb, rc, re := regs[ins.b:][:W], regs[ins.c:][:W], regs[ins.d:][:W]
			for w := range rd {
				rd[w] = ra[w] | rb[w] | rc[w] | re[w]
			}
		case kNand2:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] & rb[w])
			}
		case kNand3:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] & rb[w] & rc[w])
			}
		case kNand4:
			rb, rc, re := regs[ins.b:][:W], regs[ins.c:][:W], regs[ins.d:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] & rb[w] & rc[w] & re[w])
			}
		case kNor2:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] | rb[w])
			}
		case kNor3:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] | rb[w] | rc[w])
			}
		case kNor4:
			rb, rc, re := regs[ins.b:][:W], regs[ins.c:][:W], regs[ins.d:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] | rb[w] | rc[w] | re[w])
			}
		case kXor2:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ra[w] ^ rb[w]
			}
		case kXnor2:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ^(ra[w] ^ rb[w])
			}
		case kMux2:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				s := rc[w]
				rd[w] = (ra[w] &^ s) | (rb[w] & s)
			}
		case kAOI21:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = ^((ra[w] & rb[w]) | rc[w])
			}
		case kOAI21:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = ^((ra[w] | rb[w]) & rc[w])
			}
		case kAO21:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = (ra[w] & rb[w]) | rc[w]
			}
		case kOA21:
			rb, rc := regs[ins.b:][:W], regs[ins.c:][:W]
			for w := range rd {
				rd[w] = (ra[w] | rb[w]) & rc[w]
			}
		case kAndN:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ra[w] &^ rb[w]
			}
		case kOrN:
			rb := regs[ins.b:][:W]
			for w := range rd {
				rd[w] = ra[w] | ^rb[w]
			}
		}
	}
}

// Commit performs the clock edge for all lanes: every flip-flop captures
// its D value. Capture is two-phase so FF-to-FF paths see pre-edge values.
func (e *KernelEngine) Commit() {
	W := e.w
	regs := e.regs
	for i, d := range e.k.ffD {
		copy(e.nextQ[i*W:(i+1)*W], regs[int(d)*W:][:W])
	}
	for i, q := range e.k.ffQ {
		copy(regs[int(q)*W:][:W], e.nextQ[i*W:(i+1)*W])
	}
}
