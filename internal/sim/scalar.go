package sim

import "repro/internal/netlist"

// ScalarEngine is the single-lane reference simulator. It shares no
// evaluation code with Engine (it interprets netlist.EvalScalar over bools),
// which makes the lane-equivalence property test in this package meaningful.
type ScalarEngine struct {
	p     *Program
	nets  []bool
	nextQ []bool
}

// NewScalarEngine returns a reset scalar instance of p.
func NewScalarEngine(p *Program) *ScalarEngine {
	e := &ScalarEngine{
		p:     p,
		nets:  make([]bool, p.nets),
		nextQ: make([]bool, len(p.ffs)),
	}
	e.Reset()
	return e
}

// Reset loads initial flip-flop values and clears all other nets.
func (e *ScalarEngine) Reset() {
	for i := range e.nets {
		e.nets[i] = false
	}
	for _, ff := range e.p.ffs {
		e.nets[ff.q] = ff.init
	}
}

// SetInput drives primary input port i.
func (e *ScalarEngine) SetInput(i int, v bool) { e.nets[e.p.inputNets[i]] = v }

// FlipFF inverts the state of flip-flop ff.
func (e *ScalarEngine) FlipFF(ff int) {
	q := e.p.ffs[ff].q
	e.nets[q] = !e.nets[q]
}

// Output returns primary output port i (valid after Eval).
func (e *ScalarEngine) Output(i int) bool { return e.nets[e.p.outputNets[i]] }

// Net returns the value on an arbitrary net (valid after Eval).
func (e *ScalarEngine) Net(id netlist.NetID) bool { return e.nets[id] }

// Eval propagates combinational logic using the reference semantics.
func (e *ScalarEngine) Eval() {
	var buf [4]bool
	for i := range e.p.ops {
		o := &e.p.ops[i]
		in := buf[:o.nin]
		for j := int8(0); j < o.nin; j++ {
			in[j] = e.nets[o.in[j]]
		}
		e.nets[o.out] = netlist.EvalScalar(o.fn, in)
	}
}

// Commit performs the clock edge.
func (e *ScalarEngine) Commit() {
	for i := range e.p.ffs {
		e.nextQ[i] = e.nets[e.p.ffs[i].d]
	}
	for i := range e.p.ffs {
		e.nets[e.p.ffs[i].q] = e.nextQ[i]
	}
}
