package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
)

// wideGateNetlist builds a single-cell netlist around a custom cell type of
// the given function and width: width primary inputs, one gate, one output.
func wideGateNetlist(t *testing.T, fn netlist.Func, width int) *netlist.Netlist {
	t.Helper()
	nl := netlist.NewNetlist(fmt.Sprintf("wide_%v_%d", fn, width))
	ct := &netlist.CellType{
		Name:   fmt.Sprintf("%s%d_X1", fn, width),
		Func:   fn,
		Inputs: width,
		Drive:  1,
	}
	ins := make([]netlist.NetID, width)
	for i := range ins {
		id, err := nl.AddNet(fmt.Sprintf("in[%d]", i), -1)
		if err != nil {
			t.Fatal(err)
		}
		ins[i] = id
		nl.Inputs = append(nl.Inputs, id)
	}
	out, err := nl.AddNet("out", 0)
	if err != nil {
		t.Fatal(err)
	}
	nl.Cells = append(nl.Cells, netlist.Cell{Name: "u0", Type: ct, Inputs: ins, Output: out})
	nl.Outputs = append(nl.Outputs, out)
	nl.OutputNames = append(nl.OutputNames, "out")
	return nl
}

// TestCompileDecomposesWideGates pins the balanced-tree decomposition of
// gates wider than the engine's native op width against the n-ary scalar
// reference semantics, exhaustively where feasible.
func TestCompileDecomposesWideGates(t *testing.T) {
	funcs := []netlist.Func{
		netlist.FuncAnd, netlist.FuncOr, netlist.FuncNand,
		netlist.FuncNor, netlist.FuncXor, netlist.FuncXnor,
	}
	rng := rand.New(rand.NewSource(7))
	for _, fn := range funcs {
		for _, width := range []int{3, 5, 6, 7, 9, 13, 21} {
			if width <= opWidth(fn) {
				continue
			}
			nl := wideGateNetlist(t, fn, width)
			p, err := Compile(nl)
			if err != nil {
				t.Fatalf("%v width %d: %v", fn, width, err)
			}
			if p.nets <= len(nl.Nets) {
				t.Fatalf("%v width %d: no temporary nets allocated", fn, width)
			}
			e := NewEngine(p)
			se := NewScalarEngine(p)
			vectors := 1 << width
			exhaustive := width <= 10
			if !exhaustive {
				vectors = 500
			}
			in := make([]bool, width)
			for v := 0; v < vectors; v++ {
				bits := uint64(v)
				if !exhaustive {
					bits = rng.Uint64()
				}
				for i := 0; i < width; i++ {
					in[i] = bits>>uint(i)&1 == 1
					e.SetInputBool(i, in[i])
					se.SetInput(i, in[i])
				}
				e.Eval()
				se.Eval()
				want := netlist.EvalScalar(fn, in)
				if got := e.Output(0)&1 == 1; got != want {
					t.Fatalf("%v width %d inputs %b: packed got %v, want %v", fn, width, bits, got, want)
				}
				if got := se.Output(0); got != want {
					t.Fatalf("%v width %d inputs %b: scalar got %v, want %v", fn, width, bits, got, want)
				}
			}
		}
	}
}

// TestCompileRejectsUndecomposableWideGates keeps the clear error for cell
// types that are wide by mistake rather than by associativity.
func TestCompileRejectsUndecomposableWideGates(t *testing.T) {
	nl := wideGateNetlist(t, netlist.FuncMux2, 5)
	if _, err := Compile(nl); err == nil {
		t.Fatal("expected compile error for a 5-input mux")
	}
}

// TestCompileWideGateTreeDepth checks the reduction is a tree, not a chain:
// a 64-input AND must levelize in ~log4 depth worth of ops, i.e. far fewer
// than the 63 two-input ops a linear chain would need — 21 ops for groups
// of four.
func TestCompileWideGateTreeDepth(t *testing.T) {
	nl := wideGateNetlist(t, netlist.FuncAnd, 64)
	p, err := Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.ops) != 21 {
		t.Fatalf("64-input AND compiled to %d ops, want 21 (4-ary tree)", len(p.ops))
	}
}
