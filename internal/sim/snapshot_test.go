package sim_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

// snapshotFixture builds a small MAC bench — loopback rules included, which
// is exactly the state a snapshot must capture beyond flip-flop bits.
func snapshotFixture(t *testing.T) (*sim.Program, *circuit.MACBench) {
	t.Helper()
	nl, err := circuit.NewMAC10GE(circuit.MACConfig{FIFODepth: 16, StatWidth: 16, TargetFFs: 0})
	if err != nil {
		t.Fatalf("NewMAC10GE: %v", err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	bench, err := circuit.BuildMACBench(p, circuit.MACBenchConfig{
		Packets: 3, MinPayload: 4, MaxPayload: 6, Gap: 8,
		DrainCycles: 20, Seed: 5, FIFODepth: 16,
	})
	if err != nil {
		t.Fatalf("BuildMACBench: %v", err)
	}
	return p, bench
}

func goldenWithSnapshots(t *testing.T, p *sim.Program, bench *circuit.MACBench, every int) (*sim.Trace, *sim.Snapshots) {
	t.Helper()
	snaps := sim.NewSnapshots(p, bench.Stim, every)
	e := sim.NewEngine(p)
	golden, _ := sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors, Snapshots: snaps})
	if !snaps.Complete() {
		t.Fatal("snapshots incomplete after a full golden run")
	}
	return golden, snaps
}

// A fault-free window run restored from any snapshot must reproduce the
// golden trace exactly and never report divergence — the soundness core of
// golden fast-forward.
func TestRunWindowReproducesGolden(t *testing.T) {
	p, bench := snapshotFixture(t)
	golden, snaps := goldenWithSnapshots(t, p, bench, 8)
	e := sim.NewEngine(p)
	cycles := bench.Stim.Cycles()
	for _, start := range []int{0, 1, 7, 8, 9, cycles / 2, cycles - 1} {
		trace := sim.NewTrace(bench.Monitors, cycles)
		trace.CopyCycles(golden, 0, snaps.SnapCycle(snaps.IndexAtOrBefore(start)))
		stop := sim.RunWindow(e, bench.Stim, snaps, start, sim.WindowConfig{
			Monitors: bench.Monitors,
			Trace:    trace,
			OnSnapshot: func(c int, diverged uint64) bool {
				if diverged != 0 {
					t.Fatalf("start %d: spurious divergence %x at cycle %d", start, diverged, c)
				}
				return false
			},
		})
		if stop != cycles {
			t.Fatalf("start %d: stopped at %d without a stop hook", start, stop)
		}
		if !trace.Equal(golden) {
			t.Fatalf("start %d: fast-forwarded trace differs from golden", start)
		}
	}
}

func TestRunWindowEarlyStop(t *testing.T) {
	p, bench := snapshotFixture(t)
	golden, snaps := goldenWithSnapshots(t, p, bench, 8)
	e := sim.NewEngine(p)
	cycles := bench.Stim.Cycles()

	// OnCycle stop: the stopping cycle is recorded, so the first
	// unrecorded cycle is c+1.
	trace := sim.NewTrace(bench.Monitors, cycles)
	stop := sim.RunWindow(e, bench.Stim, snaps, 0, sim.WindowConfig{
		Monitors: bench.Monitors,
		Trace:    trace,
		OnCycle:  func(c int) bool { return c == 20 },
	})
	if stop != 21 {
		t.Fatalf("OnCycle stop at 20 returned %d, want 21", stop)
	}
	trace.CopyCycles(golden, stop, cycles)
	if !trace.Equal(golden) {
		t.Fatal("stopped fault-free trace + golden suffix differs from golden")
	}

	// OnSnapshot stop: the boundary cycle is not simulated.
	stop = sim.RunWindow(e, bench.Stim, snaps, 0, sim.WindowConfig{
		Monitors:   bench.Monitors,
		Trace:      sim.NewTrace(bench.Monitors, cycles),
		OnSnapshot: func(c int, diverged uint64) bool { return c >= 24 },
	})
	if stop != 24 {
		t.Fatalf("OnSnapshot stop at 24 returned %d, want %d", stop, 24)
	}
}

// A flip must show up as divergence at the next boundary, and restoring a
// snapshot must clear it — i.e. restores really do rewind lane state.
func TestRunWindowSeesDivergenceAndRestoreClearsIt(t *testing.T) {
	p, bench := snapshotFixture(t)
	_, snaps := goldenWithSnapshots(t, p, bench, 8)
	e := sim.NewEngine(p)

	var sawDiverged uint64
	sim.RunWindow(e, bench.Stim, snaps, 0, sim.WindowConfig{
		Monitors: bench.Monitors,
		Trace:    sim.NewTrace(bench.Monitors, bench.Stim.Cycles()),
		PreEval: func(c int) {
			if c == 2 {
				e.FlipFF(0, 1<<5)
			}
		},
		OnSnapshot: func(c int, diverged uint64) bool {
			if c == 8 {
				sawDiverged = diverged
				return true
			}
			return false
		},
	})
	if sawDiverged>>5&1 != 1 {
		t.Fatalf("flip on lane 5 not seen as divergence (mask %x)", sawDiverged)
	}

	// The engine still carries the flipped state; a fresh fault-free window
	// from the same dirty engine must be golden again after Restore.
	clean := true
	sim.RunWindow(e, bench.Stim, snaps, 0, sim.WindowConfig{
		Monitors: bench.Monitors,
		Trace:    sim.NewTrace(bench.Monitors, bench.Stim.Cycles()),
		OnSnapshot: func(c int, diverged uint64) bool {
			if diverged != 0 {
				clean = false
			}
			return false
		},
	})
	if !clean {
		t.Fatal("restore did not clear previous batch state")
	}
}

func TestSnapshotsGeometry(t *testing.T) {
	p, bench := snapshotFixture(t)
	_, snaps := goldenWithSnapshots(t, p, bench, 8)
	if snaps.Every() != 8 {
		t.Fatalf("Every = %d", snaps.Every())
	}
	if got := snaps.IndexAtOrBefore(0); got != 0 {
		t.Fatalf("IndexAtOrBefore(0) = %d", got)
	}
	if got := snaps.SnapCycle(snaps.IndexAtOrBefore(17)); got != 16 {
		t.Fatalf("snapshot before 17 restores to %d, want 16", got)
	}
	if err := snaps.Matches(p, bench.Stim); err != nil {
		t.Fatalf("Matches on own geometry: %v", err)
	}
	if snaps.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes not reported")
	}

	// A never-filled set must be rejected.
	empty := sim.NewSnapshots(p, bench.Stim, 8)
	if err := empty.Matches(p, bench.Stim); err == nil {
		t.Fatal("incomplete snapshot set accepted")
	}

	// Foreign geometry must be rejected.
	other := sim.NewStimulus(bench.Stim.Cycles() + 1)
	if err := snaps.Matches(p, other); err == nil {
		t.Fatal("mismatched stimulus accepted")
	}
}

func TestTraceRowAndCopyCycles(t *testing.T) {
	p, bench := snapshotFixture(t)
	golden, _ := goldenWithSnapshots(t, p, bench, 8)
	row := golden.Row(3)
	if len(row) != len(golden.Monitors) {
		t.Fatalf("row has %d words for %d monitors", len(row), len(golden.Monitors))
	}
	for m := range row {
		if row[m] != golden.Word(3, m) {
			t.Fatalf("Row(3)[%d] != Word(3,%d)", m, m)
		}
	}

	dst := sim.NewTrace(golden.Monitors, golden.Cycles())
	dst.CopyCycles(golden, 5, 9)
	for c := 5; c < 9; c++ {
		for m := range golden.Monitors {
			if dst.Word(c, m) != golden.Word(c, m) {
				t.Fatalf("copied word (%d,%d) differs", c, m)
			}
		}
	}
	// Rows outside [5,9) stay untouched (the fresh trace is all zero).
	if dst.Word(4, 0) != 0 || dst.Word(9, 0) != 0 {
		t.Fatal("CopyCycles touched rows outside the range")
	}
}
