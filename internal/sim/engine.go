package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// Lanes is the number of independent simulations a packed engine runs at
// once: one per bit of a uint64.
const Lanes = 64

// Engine is a 64-lane bit-parallel instance of a compiled program. All lanes
// share the same primary-input stimulus words (callers may still pack
// per-lane-distinct input bits into those words); lanes diverge through
// per-lane flip-flop state flips, which is exactly the fault model of the
// paper's campaign (SEU = inversion of a stored bit).
//
// Cycle protocol:
//
//	e.Reset()
//	for each cycle {
//	    e.SetInput(i, word) ...   // drive stimulus
//	    e.FlipFF(ff, laneMask)    // optional SEU(s) for this cycle
//	    e.Eval()                  // propagate combinational logic
//	    ... read e.Output(i)      // sample
//	    e.Commit()                // clock edge: FFs capture D
//	}
type Engine struct {
	p     *Program
	nets  []uint64
	nextQ []uint64 // FF capture scratch
}

// NewEngine returns a fresh engine instance for p. Instances are cheap;
// create one per worker goroutine.
func NewEngine(p *Program) *Engine {
	e := &Engine{
		p:     p,
		nets:  make([]uint64, p.nets),
		nextQ: make([]uint64, len(p.ffs)),
	}
	e.Reset()
	return e
}

// Program returns the compiled program this engine runs.
func (e *Engine) Program() *Program { return e.p }

// Reset loads every flip-flop's initial value into all lanes and clears all
// other nets.
func (e *Engine) Reset() {
	for i := range e.nets {
		e.nets[i] = 0
	}
	for _, ff := range e.p.ffs {
		if ff.init {
			e.nets[ff.q] = ^uint64(0)
		}
	}
}

// SetInput drives the packed word onto primary input port i.
func (e *Engine) SetInput(i int, word uint64) { e.nets[e.p.inputNets[i]] = word }

// SetInputBool broadcasts a single bit to all lanes of input port i.
func (e *Engine) SetInputBool(i int, v bool) {
	if v {
		e.nets[e.p.inputNets[i]] = ^uint64(0)
	} else {
		e.nets[e.p.inputNets[i]] = 0
	}
}

// FlipFF inverts the state of flip-flop ff (by FF index, see Program.FFCell)
// in every lane selected by laneMask. Call between Commit and Eval so the
// flipped state propagates through the following cycle — the paper's
// "inverting the value stored in a flip-flop using a simulator function".
func (e *Engine) FlipFF(ff int, laneMask uint64) {
	e.nets[e.p.ffs[ff].q] ^= laneMask
}

// ForceFF drives the state of flip-flop ff to value in every lane selected
// by laneMask, leaving other lanes untouched. Like FlipFF it is meant for
// the pre-Eval injection window; calling it every cycle of an interval
// models a stuck-at fault for that duration.
func (e *Engine) ForceFF(ff int, laneMask uint64, value bool) {
	if value {
		e.nets[e.p.ffs[ff].q] |= laneMask
	} else {
		e.nets[e.p.ffs[ff].q] &^= laneMask
	}
}

// FFState returns the packed state of flip-flop ff.
func (e *Engine) FFState(ff int) uint64 { return e.nets[e.p.ffs[ff].q] }

// FFD returns the packed D-pin value of flip-flop ff (valid after Eval):
// the value the flip-flop will capture at the next Commit.
func (e *Engine) FFD(ff int) uint64 { return e.nets[e.p.ffs[ff].d] }

// Output returns the packed word on primary output port i (valid after Eval).
func (e *Engine) Output(i int) uint64 { return e.nets[e.p.outputNets[i]] }

// Net returns the packed word on an arbitrary net (valid after Eval).
func (e *Engine) Net(id netlist.NetID) uint64 { return e.nets[id] }

// Eval propagates the combinational logic in levelized order.
func (e *Engine) Eval() { e.evalFrom(0) }

// EvalPulse evaluates the combinational logic with a single-event transient
// on SET target t (see Program.NumCombTargets): the target cell's output is
// inverted for this one evaluation and the inversion propagates through its
// downstream cone. It performs a full baseline Eval first, so the non-cone
// nets hold their ordinary values; a subsequent plain Eval restores the
// un-pulsed evaluation. The pulse hits all 64 lanes.
func (e *Engine) EvalPulse(t int) {
	e.evalFrom(0)
	idx := int(e.p.combOps[t])
	e.nets[e.p.ops[idx].out] = ^e.nets[e.p.ops[idx].out]
	e.evalFrom(idx + 1)
}

// evalFrom runs ops[start:] in levelized order. Ops only read nets written
// by earlier ops (or FF/input nets), so re-running a suffix re-derives
// exactly the downstream values.
func (e *Engine) evalFrom(start int) {
	nets := e.nets
	for i := start; i < len(e.p.ops); i++ {
		o := &e.p.ops[i]
		var v uint64
		switch o.fn {
		case netlist.FuncBuf:
			v = nets[o.in[0]]
		case netlist.FuncInv:
			v = ^nets[o.in[0]]
		case netlist.FuncAnd:
			v = nets[o.in[0]] & nets[o.in[1]]
			if o.nin > 2 {
				v &= nets[o.in[2]]
				if o.nin > 3 {
					v &= nets[o.in[3]]
				}
			}
		case netlist.FuncOr:
			v = nets[o.in[0]] | nets[o.in[1]]
			if o.nin > 2 {
				v |= nets[o.in[2]]
				if o.nin > 3 {
					v |= nets[o.in[3]]
				}
			}
		case netlist.FuncNand:
			v = nets[o.in[0]] & nets[o.in[1]]
			if o.nin > 2 {
				v &= nets[o.in[2]]
				if o.nin > 3 {
					v &= nets[o.in[3]]
				}
			}
			v = ^v
		case netlist.FuncNor:
			v = nets[o.in[0]] | nets[o.in[1]]
			if o.nin > 2 {
				v |= nets[o.in[2]]
				if o.nin > 3 {
					v |= nets[o.in[3]]
				}
			}
			v = ^v
		case netlist.FuncXor:
			v = nets[o.in[0]] ^ nets[o.in[1]]
		case netlist.FuncXnor:
			v = ^(nets[o.in[0]] ^ nets[o.in[1]])
		case netlist.FuncMux2:
			s := nets[o.in[2]]
			v = (nets[o.in[0]] &^ s) | (nets[o.in[1]] & s)
		case netlist.FuncAOI21:
			v = ^((nets[o.in[0]] & nets[o.in[1]]) | nets[o.in[2]])
		case netlist.FuncOAI21:
			v = ^((nets[o.in[0]] | nets[o.in[1]]) & nets[o.in[2]])
		case netlist.FuncConst0:
			v = 0
		case netlist.FuncConst1:
			v = ^uint64(0)
		default:
			// Unreachable for compiled programs; fail loudly in development.
			panic(fmt.Sprintf("sim: unsupported op %v", o.fn))
		}
		nets[o.out] = v
	}
}

// Commit performs the clock edge: every flip-flop captures its D input.
// Capture is two-phase so FF-to-FF paths see pre-edge values.
func (e *Engine) Commit() {
	for i := range e.p.ffs {
		e.nextQ[i] = e.nets[e.p.ffs[i].d]
	}
	for i := range e.p.ffs {
		e.nets[e.p.ffs[i].q] = e.nextQ[i]
	}
}
