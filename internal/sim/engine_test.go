package sim_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"

	"repro/internal/circuit"
	"repro/internal/netlist"
)

func compileCounter(t *testing.T, width int) *sim.Program {
	t.Helper()
	nl, err := circuit.CounterCircuit(width)
	if err != nil {
		t.Fatalf("CounterCircuit: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p
}

func readBus(e *sim.Engine, first, width int, lane uint) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v |= (e.Output(first+i) >> lane & 1) << uint(i)
	}
	return v
}

func TestEngineCounterCounts(t *testing.T) {
	p := compileCounter(t, 8)
	e := sim.NewEngine(p)
	en, err := p.InputIndex("en")
	if err != nil {
		t.Fatalf("InputIndex: %v", err)
	}
	clr, err := p.InputIndex("clear")
	if err != nil {
		t.Fatalf("InputIndex: %v", err)
	}
	q0, err := p.OutputIndex("q[0]")
	if err != nil {
		t.Fatalf("OutputIndex: %v", err)
	}
	e.SetInputBool(en, true)
	e.SetInputBool(clr, false)
	for c := 0; c < 10; c++ {
		e.Eval()
		if got := readBus(e, q0, 8, 0); got != uint64(c) {
			t.Fatalf("cycle %d: count = %d, want %d", c, got, c)
		}
		e.Commit()
	}
	// Hold.
	e.SetInputBool(en, false)
	for c := 0; c < 3; c++ {
		e.Eval()
		if got := readBus(e, q0, 8, 0); got != 10 {
			t.Fatalf("hold: count = %d, want 10", got)
		}
		e.Commit()
	}
	// Clear.
	e.SetInputBool(clr, true)
	e.Eval()
	e.Commit()
	e.SetInputBool(clr, false)
	e.Eval()
	if got := readBus(e, q0, 8, 0); got != 0 {
		t.Fatalf("after clear: count = %d, want 0", got)
	}
}

func TestEngineCounterWraps(t *testing.T) {
	p := compileCounter(t, 3)
	e := sim.NewEngine(p)
	en, _ := p.InputIndex("en")
	clr, _ := p.InputIndex("clear")
	q0, _ := p.OutputIndex("q[0]")
	e.SetInputBool(en, true)
	e.SetInputBool(clr, false)
	for c := 0; c < 20; c++ {
		e.Eval()
		if got := readBus(e, q0, 3, 0); got != uint64(c%8) {
			t.Fatalf("cycle %d: count = %d, want %d", c, got, c%8)
		}
		e.Commit()
	}
}

func TestEngineResetRestoresInit(t *testing.T) {
	nl, err := circuit.LFSRCircuit()
	if err != nil {
		t.Fatalf("LFSRCircuit: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := sim.NewEngine(p)
	en, _ := p.InputIndex("en")
	e.SetInputBool(en, true)
	for c := 0; c < 5; c++ {
		e.Eval()
		e.Commit()
	}
	stateAfter := e.FFState(0)
	e.Reset()
	q0, _ := p.OutputIndex("q[0]")
	e.Eval()
	if got := readBus(e, q0, 16, 0); got != 1 {
		t.Fatalf("after reset: lfsr = %#x, want 0x0001", got)
	}
	_ = stateAfter
}

func TestEngineFlipFFPropagates(t *testing.T) {
	p := compileCounter(t, 8)
	e := sim.NewEngine(p)
	en, _ := p.InputIndex("en")
	clr, _ := p.InputIndex("clear")
	q0, _ := p.OutputIndex("q[0]")
	e.SetInputBool(en, true)
	e.SetInputBool(clr, false)
	for c := 0; c < 4; c++ {
		e.Eval()
		e.Commit()
	}
	// Flip bit 2 (value 4) in lanes 0 and 7 only.
	e.FlipFF(2, 1|1<<7)
	e.Eval()
	if got := readBus(e, q0, 8, 0); got != 0 {
		t.Fatalf("lane 0 after flip: %d, want 0 (4 ^ 4)", got)
	}
	if got := readBus(e, q0, 8, 7); got != 0 {
		t.Fatalf("lane 7 after flip: %d, want 0", got)
	}
	if got := readBus(e, q0, 8, 3); got != 4 {
		t.Fatalf("lane 3 (no flip): %d, want 4", got)
	}
}

func TestLFSRMaximalPeriod(t *testing.T) {
	nl, err := circuit.LFSRCircuit()
	if err != nil {
		t.Fatalf("LFSRCircuit: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := sim.NewEngine(p)
	en, _ := p.InputIndex("en")
	q0, _ := p.OutputIndex("q[0]")
	e.SetInputBool(en, true)
	e.Eval()
	start := readBus(e, q0, 16, 0)
	e.Commit()
	period := 0
	for c := 1; c <= 1<<16; c++ {
		e.Eval()
		if readBus(e, q0, 16, 0) == start {
			period = c
			break
		}
		e.Commit()
	}
	// Taps 16,15,13,4 give a maximal-length sequence: period 2^16-1.
	if period != (1<<16)-1 {
		t.Fatalf("LFSR period = %d, want %d", period, (1<<16)-1)
	}
}

// laneEquivalence runs a random circuit with random stimulus and random
// per-lane fault flips on the packed engine, and re-runs each lane on the
// scalar reference engine; every monitored bit must match.
func TestPackedMatchesScalarUnderFaults(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := circuit.RandomConfig{
			Inputs:  1 + rng.Intn(4),
			FFs:     1 + rng.Intn(8),
			Gates:   5 + rng.Intn(40),
			Outputs: 1 + rng.Intn(4),
		}
		nl, err := circuit.RandomCircuit(cfg, seed)
		if err != nil {
			t.Logf("RandomCircuit: %v", err)
			return false
		}
		p, err := sim.Compile(nl)
		if err != nil {
			t.Logf("Compile: %v", err)
			return false
		}
		cycles := 5 + rng.Intn(20)
		stim := sim.NewStimulus(cycles)
		for i := 0; i < cfg.Inputs; i++ {
			set := stim.DrivePort(i)
			for c := 0; c < cycles; c++ {
				set(c, rng.Intn(2) == 1)
			}
		}
		monitors := make([]int, cfg.Outputs)
		for i := range monitors {
			monitors[i] = i
		}
		// Random injection plan: per lane, at most one (ff, cycle) flip.
		type flip struct {
			ff, cycle int
		}
		flips := make([]flip, sim.Lanes)
		for l := range flips {
			flips[l] = flip{ff: rng.Intn(cfg.FFs), cycle: rng.Intn(cycles)}
		}
		e := sim.NewEngine(p)
		trace, _ := sim.Run(e, stim, sim.RunConfig{
			Monitors: monitors,
			PreEval: func(c int) {
				for l, f := range flips {
					if f.cycle == c {
						e.FlipFF(f.ff, 1<<uint(l))
					}
				}
			},
		})
		// Check a sample of lanes against the scalar engine.
		se := sim.NewScalarEngine(p)
		for _, lane := range []int{0, 1, 31, 63, rng.Intn(sim.Lanes)} {
			f := flips[lane]
			scalar := sim.RunScalar(se, stim, monitors, func(c int) {
				if f.cycle == c {
					se.FlipFF(f.ff)
				}
			})
			if err := sim.CheckLaneAgainstScalar(trace, scalar, lane); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestActivityCollection(t *testing.T) {
	// A free-running 1-bit toggler: q' = !q starting at 0.
	b := netlist.NewBuilder("tgl")
	q, setD := b.DFFDecl("t", false)
	setD(b.Not(q))
	b.Output("q", q)
	nl, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	e := sim.NewEngine(p)
	stim := sim.NewStimulus(10)
	_, act := sim.Run(e, stim, sim.RunConfig{CollectActivity: true})
	if act == nil {
		t.Fatal("activity not collected")
	}
	// Starting at 0, states over 10 observed cycles: 0,1,0,1,... → 5 ones,
	// 9 transitions after the first observation.
	if act.Ones[0] != 5 {
		t.Fatalf("Ones = %d, want 5", act.Ones[0])
	}
	if act.Toggles[0] != 9 {
		t.Fatalf("Toggles = %d, want 9", act.Toggles[0])
	}
	if act.Cycles != 10 {
		t.Fatalf("Cycles = %d, want 10", act.Cycles)
	}
}

func TestCompileRejectsInvalid(t *testing.T) {
	nl := netlist.NewNetlist("bad")
	if _, err := nl.AddNet("floating", -1); err != nil {
		t.Fatalf("AddNet: %v", err)
	}
	if _, err := sim.Compile(nl); err == nil {
		t.Fatal("Compile must reject invalid netlists")
	}
}

func TestPortResolution(t *testing.T) {
	p := compileCounter(t, 4)
	if _, err := p.InputIndex("nope"); err == nil {
		t.Fatal("expected error for unknown input")
	}
	if _, err := p.OutputIndex("nope"); err == nil {
		t.Fatal("expected error for unknown output")
	}
	if _, err := p.InputIndex("q[0]_unknown"); err == nil {
		t.Fatal("expected error for non-input net")
	}
	bus, err := p.OutputBusIndices("q", 4)
	if err != nil {
		t.Fatalf("OutputBusIndices: %v", err)
	}
	if len(bus) != 4 {
		t.Fatalf("bus = %v", bus)
	}
	if p.NumFFs() != 4 || p.NumInputs() != 2 || p.NumOutputs() != 4 {
		t.Fatalf("counts: ffs=%d in=%d out=%d", p.NumFFs(), p.NumInputs(), p.NumOutputs())
	}
}

func TestCheckLaneAgainstScalarMismatch(t *testing.T) {
	tr := sim.NewTrace([]int{0}, 1)
	if err := sim.CheckLaneAgainstScalar(tr, [][]bool{{true}}, 0); err == nil {
		t.Fatal("expected mismatch error")
	}
	if err := sim.CheckLaneAgainstScalar(tr, nil, 0); err == nil {
		t.Fatal("expected cycle-count error")
	}
	if err := sim.CheckLaneAgainstScalar(tr, [][]bool{{false}}, 0); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}
