package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// op is one compiled combinational evaluation step.
type op struct {
	out int32
	in  [4]int32
	fn  netlist.Func
	nin int8
}

// ffInfo describes one flip-flop in the compiled program.
type ffInfo struct {
	cell netlist.CellID
	d    int32 // D-pin net
	q    int32 // output net
	init bool
}

// Program is the compiled, immutable form of a netlist: combinational cells
// in topological evaluation order plus the flip-flop set. Programs are safe
// for concurrent use; per-run state lives in Engine instances.
type Program struct {
	nl   *netlist.Netlist
	ops  []op
	ffs  []ffInfo
	nets int

	inputNets  []int32 // primary input nets in port order
	outputNets []int32 // primary output nets in port order

	// SET targets: one per combinational cell, in netlist cell order, so a
	// target index is stable for a given netlist. combCells holds the cell,
	// combOps the index of the op computing the cell's output net (for a
	// decomposed wide gate, the root op).
	combCells []netlist.CellID
	combOps   []int32
}

// Compile levelizes the netlist and returns a reusable program.
func Compile(nl *netlist.Netlist) (*Program, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("sim: compile: %w", err)
	}
	order, err := nl.CombGraph().TopoSort()
	if err != nil {
		return nil, fmt.Errorf("sim: compile: %w", err)
	}
	p := &Program{nl: nl, nets: len(nl.Nets)}
	p.ops = make([]op, 0, len(nl.Cells))
	for _, ci := range order {
		c := &nl.Cells[ci]
		if c.Type.IsSequential() {
			continue
		}
		if len(c.Inputs) > opWidth(c.Type.Func) {
			if err := p.decomposeWide(c); err != nil {
				return nil, err
			}
			continue
		}
		o := op{out: int32(c.Output), fn: c.Type.Func, nin: int8(len(c.Inputs))}
		for i, in := range c.Inputs {
			o.in[i] = int32(in)
		}
		p.ops = append(p.ops, o)
	}
	for _, ci := range nl.FFs() {
		c := &nl.Cells[ci]
		p.ffs = append(p.ffs, ffInfo{
			cell: ci,
			d:    int32(c.Inputs[0]),
			q:    int32(c.Output),
			init: c.Init,
		})
	}
	p.inputNets = make([]int32, len(nl.Inputs))
	for i, id := range nl.Inputs {
		p.inputNets[i] = int32(id)
	}
	p.outputNets = make([]int32, len(nl.Outputs))
	for i, id := range nl.Outputs {
		p.outputNets[i] = int32(id)
	}
	opByOut := make(map[int32]int32, len(p.ops))
	for i := range p.ops {
		opByOut[p.ops[i].out] = int32(i)
	}
	for ci := range nl.Cells {
		c := &nl.Cells[ci]
		if c.Type.IsSequential() {
			continue
		}
		p.combCells = append(p.combCells, netlist.CellID(ci))
		p.combOps = append(p.combOps, opByOut[int32(c.Output)])
	}
	return p, nil
}

// opWidth returns the widest input count the packed engine evaluates
// natively for a function. Associative functions beyond it are decomposed
// by decomposeWide; anything else wider is a malformed cell type.
func opWidth(f netlist.Func) int {
	switch f {
	case netlist.FuncAnd, netlist.FuncOr, netlist.FuncNand, netlist.FuncNor:
		return 4
	case netlist.FuncXor, netlist.FuncXnor:
		return 2
	case netlist.FuncMux2, netlist.FuncAOI21, netlist.FuncOAI21:
		return 3
	case netlist.FuncBuf, netlist.FuncInv:
		return 1
	default:
		return 0
	}
}

// decomposeWide lowers a gate wider than the engine's native width into a
// balanced tree of native ops on synthetic temporary nets: inputs are
// reduced in groups of the base function's width until at most one native
// op's worth remains, and the final op carries the original function so
// inverted forms (NAND/NOR/XNOR) keep their inversion at the root. The
// temporaries live past len(nl.Nets); engines size their net arrays from
// Program.nets, so they need no netlist counterpart.
func (p *Program) decomposeWide(c *netlist.Cell) error {
	var base netlist.Func
	switch c.Type.Func {
	case netlist.FuncAnd, netlist.FuncNand:
		base = netlist.FuncAnd
	case netlist.FuncOr, netlist.FuncNor:
		base = netlist.FuncOr
	case netlist.FuncXor, netlist.FuncXnor:
		base = netlist.FuncXor
	default:
		return fmt.Errorf("sim: cell %q: cannot decompose %d-input %v", c.Name, len(c.Inputs), c.Type.Func)
	}
	width := opWidth(base)
	nets := make([]int32, len(c.Inputs))
	for i, in := range c.Inputs {
		nets[i] = int32(in)
	}
	for len(nets) > width {
		next := nets[:0]
		for i := 0; i < len(nets); i += width {
			j := i + width
			if j > len(nets) {
				j = len(nets)
			}
			if j-i == 1 {
				next = append(next, nets[i])
				continue
			}
			tmp := int32(p.nets)
			p.nets++
			o := op{out: tmp, fn: base, nin: int8(j - i)}
			copy(o.in[:], nets[i:j])
			p.ops = append(p.ops, o)
			next = append(next, tmp)
		}
		nets = next
	}
	o := op{out: int32(c.Output), fn: c.Type.Func, nin: int8(len(nets))}
	copy(o.in[:], nets)
	p.ops = append(p.ops, o)
	return nil
}

// Netlist returns the compiled design.
func (p *Program) Netlist() *netlist.Netlist { return p.nl }

// NumFFs returns the number of flip-flops.
func (p *Program) NumFFs() int { return len(p.ffs) }

// NumInputs returns the number of primary input ports.
func (p *Program) NumInputs() int { return len(p.inputNets) }

// NumOutputs returns the number of primary output ports.
func (p *Program) NumOutputs() int { return len(p.outputNets) }

// FFCell returns the netlist cell ID of flip-flop index i (the campaign's
// injection targets are FF indices; reports map them back to cell names).
func (p *Program) FFCell(i int) netlist.CellID { return p.ffs[i].cell }

// NumCombTargets returns the number of SET-injection targets: one per
// combinational cell, indexed in netlist cell order.
func (p *Program) NumCombTargets() int { return len(p.combCells) }

// CombTargetCell returns the netlist cell ID of SET target t, for mapping
// pulse targets back to cell names in reports.
func (p *Program) CombTargetCell(t int) netlist.CellID { return p.combCells[t] }

// InputIndex resolves a primary input port by net name.
func (p *Program) InputIndex(name string) (int, error) {
	id, ok := p.nl.FindNet(name)
	if !ok {
		return 0, fmt.Errorf("sim: no net %q", name)
	}
	for i, n := range p.inputNets {
		if n == int32(id) {
			return i, nil
		}
	}
	return 0, fmt.Errorf("sim: net %q is not a primary input", name)
}

// OutputIndex resolves a primary output port by its port name.
func (p *Program) OutputIndex(name string) (int, error) {
	if i, ok := p.nl.FindOutput(name); ok {
		return i, nil
	}
	return 0, fmt.Errorf("sim: no output port %q", name)
}

// InputBusIndices resolves name[0..width-1] to input port indices.
func (p *Program) InputBusIndices(name string, width int) ([]int, error) {
	out := make([]int, width)
	for i := 0; i < width; i++ {
		idx, err := p.InputIndex(fmt.Sprintf("%s[%d]", name, i))
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}

// OutputBusIndices resolves output ports name[0..width-1] to port indices.
func (p *Program) OutputBusIndices(name string, width int) ([]int, error) {
	out := make([]int, width)
	for i := 0; i < width; i++ {
		idx, err := p.OutputIndex(fmt.Sprintf("%s[%d]", name, i))
		if err != nil {
			return nil, err
		}
		out[i] = idx
	}
	return out, nil
}
