package sim

// wide.go threads the kernel backend's wide batches (64·W lanes) through
// the snapshot/window machinery: golden fast-forward, per-word divergence
// tracking and the incremental simulation window, each the W-word
// counterpart of its 64-lane sibling in snapshot.go. Word w of a wide
// batch evolves exactly like one narrow batch, so every soundness argument
// of the incremental path (prefix identity, settlement stickiness, final
// failure verdicts) applies per word unchanged.

// Loopbacks returns the stimulus's loopback rules (shared storage; treat
// as read-only). The fault runner uses it to keep loopback source ports in
// the kernel's observed output set.
func (s *Stimulus) Loopbacks() []Loopback { return s.loopback }

// RestoreKernel resets the engine and loads snapshot idx into every lane
// of every batch word, broadcasting the golden flip-flop bits and filling
// lb (numLb·W words, loopback-major) with the golden loopback words.
func (s *Snapshots) RestoreKernel(e *KernelEngine, idx int, lb []uint64) {
	e.Reset()
	W := e.w
	ffBase := idx * s.ffWords
	for i := 0; i < s.numFFs; i++ {
		var word uint64
		if s.ff[ffBase+i/64]>>uint(i%64)&1 == 1 {
			word = ^uint64(0)
		}
		base := int(e.k.ffQ[i]) * W
		for w := 0; w < W; w++ {
			e.regs[base+w] = word
		}
	}
	lbBase := idx * s.numLb
	for j := 0; j < s.numLb; j++ {
		for w := 0; w < W; w++ {
			lb[j*W+w] = s.lb[lbBase+j]
		}
	}
}

// divergedKernel fills out (one mask per batch word) with the lanes whose
// inter-cycle state differs from golden snapshot idx — the per-word
// counterpart of divergedLanes.
func (s *Snapshots) divergedKernel(e *KernelEngine, lb []uint64, idx int, out []uint64) {
	W := e.w
	for w := 0; w < W; w++ {
		out[w] = 0
	}
	ffBase := idx * s.ffWords
	for i := 0; i < s.numFFs; i++ {
		var want uint64
		if s.ff[ffBase+i/64]>>uint(i%64)&1 == 1 {
			want = ^uint64(0)
		}
		base := int(e.k.ffQ[i]) * W
		for w := 0; w < W; w++ {
			out[w] |= e.regs[base+w] ^ want
		}
	}
	lbBase := idx * s.numLb
	for j := 0; j < s.numLb; j++ {
		for w := 0; w < W; w++ {
			out[w] |= lb[j*W+w] ^ s.lb[lbBase+j]
		}
	}
}

// WideWindowConfig controls an incremental wide-batch run (RunWindowWide).
// It mirrors WindowConfig with per-word recording: batch word w records
// into Traces[w], and OnSnapshot receives one diverged mask per word.
type WideWindowConfig struct {
	// Monitors lists output ports to record; must match the traces'
	// monitor sets and be within the kernel's kept output set.
	Monitors []int
	// Traces receives the recorded monitor words, one trace per batch
	// word; a nil entry skips that word (empty tail group of a plan).
	Traces []*Trace
	// PreEval is the per-cycle injection hook.
	PreEval func(cycle int)
	// OnCycle is invoked after cycle c's monitor words are recorded;
	// returning true stops the run before cycle c+1.
	OnCycle func(cycle int) bool
	// OnSnapshot is invoked at the top of every snapshot-aligned cycle
	// after the restore point with the per-word diverged-lane masks;
	// returning true stops the run before that cycle is simulated.
	OnSnapshot func(cycle int, diverged []uint64) bool
}

// RunWindowWide is the kernel-backend counterpart of RunWindow: it
// restores the golden snapshot at or before start into all 64·W lanes,
// then simulates forward until the stimulus ends or a hook stops it. It
// returns the first cycle NOT recorded into the traces; the caller fills
// rows [0, snapshot) and [returned, cycles) from the golden trace, exactly
// as on the narrow path.
func RunWindowWide(e *KernelEngine, stim *Stimulus, snaps *Snapshots, start int, cfg WideWindowConfig) int {
	W := e.w
	idx := snaps.IndexAtOrBefore(start)
	lb := make([]uint64, snaps.numLb*W)
	diverged := make([]uint64, W)
	snaps.RestoreKernel(e, idx, lb)
	first := snaps.SnapCycle(idx)

	nm := len(cfg.Monitors)
	for c := first; c < stim.cycles; c++ {
		if cfg.OnSnapshot != nil && c != first && c%snaps.every == 0 {
			snaps.divergedKernel(e, lb, c/snaps.every, diverged)
			if cfg.OnSnapshot(c, diverged) {
				return c
			}
		}
		for k, port := range stim.ports {
			e.SetInputBool(port, stim.vectors[k][c])
		}
		for i, l := range stim.loopback {
			for w := 0; w < W; w++ {
				e.SetInputWord(l.In, w, lb[i*W+w])
			}
		}
		if cfg.PreEval != nil {
			cfg.PreEval(c)
		}
		e.Eval()
		for i, l := range stim.loopback {
			for w := 0; w < W; w++ {
				lb[i*W+w] = e.OutputWord(l.Out, w)
			}
		}
		base := c * nm
		for w, trace := range cfg.Traces {
			if trace == nil {
				continue
			}
			for m, port := range cfg.Monitors {
				trace.words[base+m] = e.OutputWord(port, w)
			}
		}
		if cfg.OnCycle != nil && cfg.OnCycle(c) {
			e.Commit()
			return c + 1
		}
		e.Commit()
	}
	return stim.cycles
}
