package sim_test

import (
	"testing"

	"repro/internal/circuit"
	"repro/internal/sim"
)

func compiledMAC(b *testing.B) (*sim.Program, *circuit.MACBench) {
	b.Helper()
	nl, err := circuit.NewMAC10GE(circuit.DefaultMACConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		b.Fatal(err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	bench, err := circuit.BuildMACBench(p, circuit.DefaultMACBenchConfig())
	if err != nil {
		b.Fatal(err)
	}
	return p, bench
}

// BenchmarkEngineEvalCycle measures one evaluate+commit cycle of the packed
// engine on the full 1054-FF MAC — 64 concurrent simulations per op.
func BenchmarkEngineEvalCycle(b *testing.B) {
	p, _ := compiledMAC(b)
	e := sim.NewEngine(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Eval()
		e.Commit()
	}
}

// BenchmarkTestbenchRun measures one full 64-lane testbench pass (the unit
// of the fault campaign).
func BenchmarkTestbenchRun(b *testing.B) {
	p, bench := compiledMAC(b)
	e := sim.NewEngine(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Run(e, bench.Stim, sim.RunConfig{Monitors: bench.Monitors})
	}
	b.ReportMetric(float64(64*bench.Stim.Cycles()), "lane-cycles/op")
}

// BenchmarkScalarRun pins the cost ratio against the reference engine.
func BenchmarkScalarRun(b *testing.B) {
	p, bench := compiledMAC(b)
	e := sim.NewScalarEngine(p)
	monitors := bench.Monitors
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunScalar(e, bench.Stim, monitors, nil)
	}
}

// BenchmarkCompile measures netlist-to-program compilation.
func BenchmarkCompile(b *testing.B) {
	nl, err := circuit.NewMAC10GE(circuit.DefaultMACConfig())
	if err != nil {
		b.Fatal(err)
	}
	if err := circuit.Synthesize(nl); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Compile(nl); err != nil {
			b.Fatal(err)
		}
	}
}
