package sim

import (
	"fmt"

	"repro/internal/netlist"
)

// ir.go is the kernel compiler's middle end: it lowers a levelized Program
// through an optimizing IR into the fused-op bytecode a KernelEngine
// executes (kernel.go). Four passes run over the op list, all of them
// result-preserving on every observable value (kept outputs and flip-flop
// state — the equivalence suite pins bit-identical campaign results):
//
//  1. Simplify: constant folding (TIEL/TIEH propagation, algebraic
//     identities) and copy propagation (BUF elimination, double-inverter
//     collapsing) over a net-aliasing table.
//  2. Fuse: peephole rewrites that merge an op with its producer into one
//     fused superop — INV absorbing AND/OR/XOR into NAND/NOR/XNOR (and
//     back), AND-OR / OR-AND chains into AO21/OA21, their inverted forms
//     into the library's AOI21/OAI21, and inverted operands into
//     and-not/or-not ops.
//  3. Prune: dead-fanout elimination against the observed set — everything
//     outside the input cone of the kept output ports and the flip-flop D
//     pins is dropped. All flip-flops stay: they are the campaign's
//     injection targets and the golden snapshot state, so their next-state
//     logic is always live.
//  4. Allocate: liveness-based register-slot assignment. Values get slots
//     in evaluation order and dead values return their slot to a free list,
//     so the kernel's working set is compacted into a small register file
//     that stays cache-resident regardless of netlist size (operand
//     locality), with destination slots preferentially reusing a dying
//     operand's slot.
//
// Fused superops that have no netlist.Func counterpart live in a private
// extension of the Func space; they exist only between the fuse pass and
// bytecode emission.
const (
	fnAO21 netlist.Func = 1000 + iota // (a&b)|c
	fnOA21                            // (a|b)&c
	fnAndN                            // a &^ b
	fnOrN                             // a | ^b
)

// Net-kind classification of the IR's value table.
const (
	irKindExt   uint8 = iota // externally driven: primary input or FF Q
	irKindOp                 // produced by a surviving op
	irKindC0                 // folded to constant 0
	irKindC1                 // folded to constant 1
	irKindAlias              // alias of another net (BUF/copy propagation)
)

// irOp is one mutable IR operation; the simplify and fuse passes rewrite
// fn/in/nin in place and the prune pass decides which ops reach emission.
type irOp struct {
	fn   netlist.Func
	out  int32
	in   [4]int32
	nin  int8
	dead bool // folded away by simplify
	live bool // reaches an observed value (set by prune)
}

// KernelStats summarizes what the kernel compiler did to a program.
type KernelStats struct {
	// ProgramOps is the interpreter op count the kernel was lowered from.
	ProgramOps int
	// KernelOps is the emitted bytecode instruction count.
	KernelOps int
	// Folded counts ops removed by constant folding and copy propagation.
	Folded int
	// Fused counts peephole rewrites that absorbed a producer op.
	Fused int
	// Pruned counts live-code ops dropped as dead fanout (outside the
	// observed output + flip-flop cone).
	Pruned int
	// Slots is the register-file height in 64-lane words per batch word.
	Slots int
}

// irBuilder carries the per-net value table across passes.
type irBuilder struct {
	p     *Program
	ops   []irOp
	kind  []uint8
	alias []int32 // canonical net for irKindAlias entries
	def   []int32 // producing op index for irOp entries
	fused int
}

// resolve follows the alias table to a canonical net. Aliases are created
// pointing at already-canonical nets, so the chain length is at most one;
// the loop is belt and braces.
func (b *irBuilder) resolve(n int32) int32 {
	for b.kind[n] == irKindAlias {
		n = b.alias[n]
	}
	return n
}

func (b *irBuilder) isConst(n int32) (val, ok bool) {
	switch b.kind[n] {
	case irKindC0:
		return false, true
	case irKindC1:
		return true, true
	}
	return false, false
}

// setConst folds op o away, pinning its output net to a constant.
func (b *irBuilder) setConst(o *irOp, one bool) {
	if one {
		b.kind[o.out] = irKindC1
	} else {
		b.kind[o.out] = irKindC0
	}
	o.dead = true
}

// setAlias folds op o away, aliasing its output to canonical net target.
func (b *irBuilder) setAlias(o *irOp, target int32) {
	b.kind[o.out] = irKindAlias
	b.alias[o.out] = target
	o.dead = true
}

// newIR seeds the value table from a program: every net defaults to
// externally driven (inputs, FF outputs) until an op claims it.
func newIR(p *Program) *irBuilder {
	b := &irBuilder{
		p:     p,
		ops:   make([]irOp, len(p.ops)),
		kind:  make([]uint8, p.nets),
		alias: make([]int32, p.nets),
		def:   make([]int32, p.nets),
	}
	for i := range b.def {
		b.def[i] = -1
	}
	for i, o := range p.ops {
		b.ops[i] = irOp{fn: o.fn, out: o.out, in: o.in, nin: o.nin}
	}
	return b
}

// simplify is pass 1: forward constant folding and copy propagation. Ops
// are visited in topological order, so every input's classification is
// final when its consumers are simplified.
func (b *irBuilder) simplify() {
	for i := range b.ops {
		o := &b.ops[i]
		for j := int8(0); j < o.nin; j++ {
			o.in[j] = b.resolve(o.in[j])
		}
		switch o.fn {
		case netlist.FuncConst0:
			b.setConst(o, false)
		case netlist.FuncConst1:
			b.setConst(o, true)
		case netlist.FuncBuf:
			b.setAlias(o, o.in[0])
		case netlist.FuncInv:
			if v, ok := b.isConst(o.in[0]); ok {
				b.setConst(o, !v)
			} else if d := b.defOf(o.in[0]); d != nil && d.fn == netlist.FuncInv {
				// INV∘INV: the grandparent value, whatever its kind.
				b.setAlias(o, d.in[0])
			}
		case netlist.FuncAnd, netlist.FuncNand:
			b.simplifyAndOr(o, o.fn == netlist.FuncNand, false)
		case netlist.FuncOr, netlist.FuncNor:
			b.simplifyAndOr(o, o.fn == netlist.FuncNor, true)
		case netlist.FuncXor, netlist.FuncXnor:
			b.simplifyXor(o)
		case netlist.FuncMux2:
			if v, ok := b.isConst(o.in[2]); ok {
				if v {
					b.setAlias(o, o.in[1])
				} else {
					b.setAlias(o, o.in[0])
				}
			} else if o.in[0] == o.in[1] {
				b.setAlias(o, o.in[0])
			}
		case netlist.FuncAOI21:
			b.simplifyAOI(o)
		case netlist.FuncOAI21:
			b.simplifyOAI(o)
		}
		if !o.dead {
			b.kind[o.out] = irKindOp
			b.def[o.out] = int32(i)
		}
	}
}

// defOf returns the surviving op producing net n, or nil.
func (b *irBuilder) defOf(n int32) *irOp {
	if b.kind[n] != irKindOp {
		return nil
	}
	return &b.ops[b.def[n]]
}

// simplifyAndOr folds an AND/NAND (identity=1, absorbing=0) or OR/NOR
// (identity=0, absorbing=1) op: identity inputs and duplicates drop out,
// an absorbing input decides the op, and a single survivor degrades the op
// to a copy or an inverter.
func (b *irBuilder) simplifyAndOr(o *irOp, inverted, isOr bool) {
	kept := o.in[:0]
	for j := int8(0); j < o.nin; j++ {
		in := o.in[j]
		if v, ok := b.isConst(in); ok {
			if v == isOr { // absorbing element
				b.setConst(o, isOr != inverted)
				return
			}
			continue // identity element
		}
		dup := false
		for _, k := range kept {
			if k == in {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, in)
		}
	}
	switch len(kept) {
	case 0: // all inputs were the identity constant
		b.setConst(o, isOr == inverted)
	case 1:
		if inverted {
			o.fn, o.nin = netlist.FuncInv, 1
		} else {
			b.setAlias(o, kept[0])
		}
	default:
		o.nin = int8(len(kept))
	}
}

// simplifyXor folds an XOR/XNOR op: constant inputs contribute parity,
// XNOR is XOR with one extra inversion, and 0/1 surviving inputs collapse
// to a constant, copy or inverter.
func (b *irBuilder) simplifyXor(o *irOp) {
	invert := o.fn == netlist.FuncXnor
	kept := o.in[:0]
	for j := int8(0); j < o.nin; j++ {
		in := o.in[j]
		if v, ok := b.isConst(in); ok {
			invert = invert != v
			continue
		}
		kept = append(kept, in)
	}
	switch len(kept) {
	case 0:
		b.setConst(o, invert)
	case 1:
		if invert {
			o.fn, o.nin = netlist.FuncInv, 1
			o.in[0] = kept[0]
		} else {
			b.setAlias(o, kept[0])
		}
	default:
		if invert {
			o.fn = netlist.FuncXnor
		} else {
			o.fn = netlist.FuncXor
		}
		o.nin = 2
	}
}

// simplifyAOI folds constants in AOI21: out = !((a&b) | c).
func (b *irBuilder) simplifyAOI(o *irOp) {
	a, bn, c := o.in[0], o.in[1], o.in[2]
	if v, ok := b.isConst(c); ok {
		if v {
			b.setConst(o, false)
			return
		}
		o.fn, o.nin = netlist.FuncNand, 2 // !((a&b)|0) = !(a&b)
		o.in[0], o.in[1] = a, bn
		b.simplifyAndOr(o, true, false)
		return
	}
	for k := 0; k < 2; k++ {
		if v, ok := b.isConst(o.in[k]); ok {
			other := o.in[1-k]
			if v { // !((1&x)|c) = !(x|c)
				o.fn, o.nin = netlist.FuncNor, 2
				o.in[0], o.in[1] = other, c
				b.simplifyAndOr(o, true, true)
			} else { // !((0&x)|c) = !c
				o.fn, o.nin = netlist.FuncInv, 1
				o.in[0] = c
			}
			return
		}
	}
}

// simplifyOAI folds constants in OAI21: out = !((a|b) & c).
func (b *irBuilder) simplifyOAI(o *irOp) {
	a, bn, c := o.in[0], o.in[1], o.in[2]
	if v, ok := b.isConst(c); ok {
		if !v {
			b.setConst(o, true)
			return
		}
		o.fn, o.nin = netlist.FuncNor, 2 // !((a|b)&1) = !(a|b)
		o.in[0], o.in[1] = a, bn
		b.simplifyAndOr(o, true, true)
		return
	}
	for k := 0; k < 2; k++ {
		if v, ok := b.isConst(o.in[k]); ok {
			other := o.in[1-k]
			if !v { // !((0|x)&c) = !(x&c)
				o.fn, o.nin = netlist.FuncNand, 2
				o.in[0], o.in[1] = other, c
				b.simplifyAndOr(o, true, false)
			} else { // !((1|x)&c) = !c
				o.fn, o.nin = netlist.FuncInv, 1
				o.in[0] = c
			}
			return
		}
	}
}

// fuse is pass 2: forward peephole fusion. Every rewrite merges an op with
// one of its producers into a single fused superop; producers that lose
// their last consumer fall to the prune pass. Processing in topological
// order lets chains fuse in one pass (AND → AO21 → AOI21).
func (b *irBuilder) fuse() {
	for i := range b.ops {
		o := &b.ops[i]
		if o.dead {
			continue
		}
		switch o.fn {
		case netlist.FuncInv:
			if d := b.defOf(o.in[0]); d != nil {
				if fn, ok := invertedForm(d.fn, d.nin); ok {
					b.fused++
					o.fn, o.nin, o.in = fn, d.nin, d.in
				}
			}
		case netlist.FuncAnd, netlist.FuncOr:
			if o.nin == 2 {
				b.fuseBinary(o)
			}
		case netlist.FuncXor, netlist.FuncXnor:
			// An inverted XOR operand flips the parity for free.
			for j := int8(0); j < 2; j++ {
				if d := b.defOf(o.in[j]); d != nil && d.fn == netlist.FuncInv {
					b.fused++
					o.in[j] = d.in[0]
					if o.fn == netlist.FuncXor {
						o.fn = netlist.FuncXnor
					} else {
						o.fn = netlist.FuncXor
					}
				}
			}
		}
	}
}

// invertedForm returns the op that computes the inversion of fn, for the
// INV-absorption rewrites, when one exists at the given width.
func invertedForm(fn netlist.Func, nin int8) (netlist.Func, bool) {
	switch fn {
	case netlist.FuncAnd:
		return netlist.FuncNand, true
	case netlist.FuncNand:
		return netlist.FuncAnd, true
	case netlist.FuncOr:
		return netlist.FuncNor, true
	case netlist.FuncNor:
		return netlist.FuncOr, true
	case netlist.FuncXor:
		return netlist.FuncXnor, true
	case netlist.FuncXnor:
		return netlist.FuncXor, true
	case fnAO21:
		return netlist.FuncAOI21, true
	case fnOA21:
		return netlist.FuncOAI21, true
	case netlist.FuncAOI21:
		return fnAO21, true
	case netlist.FuncOAI21:
		return fnOA21, true
	}
	return 0, false
}

// fuseBinary rewrites a 2-input AND/OR whose operands invite fusion:
// an AND/OR producer folds into AO21/OA21 (the and-or chains the ISSUE
// names), and inverted operands fold into and-not/or-not superops or, with
// both operands inverted, De Morgan into a NOR/NAND of the sources.
func (b *irBuilder) fuseBinary(o *irOp) {
	isOr := o.fn == netlist.FuncOr
	d0, d1 := b.defOf(o.in[0]), b.defOf(o.in[1])
	inner := netlist.FuncAnd
	if isOr {
		inner = netlist.FuncOr
	}
	// OR(AND(a,b), c) → AO21; AND(OR(a,b), c) → OA21. Prefer the first
	// operand; either works, only one can be absorbed.
	for k, d := range [2]*irOp{d0, d1} {
		if d != nil && d.fn != inner && (d.fn == netlist.FuncAnd || d.fn == netlist.FuncOr) && d.nin == 2 {
			b.fused++
			c := o.in[1-k]
			o.in[0], o.in[1], o.in[2] = d.in[0], d.in[1], c
			o.nin = 3
			if isOr {
				o.fn = fnAO21
			} else {
				o.fn = fnOA21
			}
			return
		}
	}
	inv0 := d0 != nil && d0.fn == netlist.FuncInv
	inv1 := d1 != nil && d1.fn == netlist.FuncInv
	switch {
	case inv0 && inv1: // De Morgan: ^a&^b = ^(a|b), ^a|^b = ^(a&b)
		b.fused++
		o.in[0], o.in[1] = d0.in[0], d1.in[0]
		if isOr {
			o.fn = netlist.FuncNand
		} else {
			o.fn = netlist.FuncNor
		}
	case inv0:
		b.fused++
		o.in[0], o.in[1] = o.in[1], d0.in[0]
		o.fn = notSecond(isOr)
	case inv1:
		b.fused++
		o.in[1] = d1.in[0]
		o.fn = notSecond(isOr)
	}
}

func notSecond(isOr bool) netlist.Func {
	if isOr {
		return fnOrN
	}
	return fnAndN
}

// prune is pass 3: dead-fanout elimination. The live roots are the kept
// output nets and every flip-flop's D pin; one reverse sweep over the
// topologically ordered ops marks the complete input cone.
func (b *irBuilder) prune(keepOutputs []int) {
	liveNet := make([]bool, b.p.nets)
	mark := func(n int32) { liveNet[b.resolve(n)] = true }
	if keepOutputs == nil {
		for _, n := range b.p.outputNets {
			mark(n)
		}
	} else {
		for _, port := range keepOutputs {
			mark(b.p.outputNets[port])
		}
	}
	for i := range b.p.ffs {
		mark(b.p.ffs[i].d)
	}
	for i := len(b.ops) - 1; i >= 0; i-- {
		o := &b.ops[i]
		if o.dead || !liveNet[o.out] {
			continue
		}
		o.live = true
		for j := int8(0); j < o.nin; j++ {
			mark(o.in[j])
		}
	}
}

// buildKernel is pass 4 plus emission: liveness-based slot allocation over
// the surviving ops, then bytecode. See kernel.go for the artifact.
func (b *irBuilder) buildKernel() (*Kernel, error) {
	p := b.p
	const unallocated = int32(-1)
	slotOfNet := make([]int32, p.nets)
	for i := range slotOfNet {
		slotOfNet[i] = unallocated
	}

	// Fixed slots: the two constants, every primary input port (kept even
	// when its fanout was pruned, so SetInput stays valid), every FF Q.
	nextSlot := int32(0)
	alloc := func() int32 { s := nextSlot; nextSlot++; return s }
	const0 := alloc()
	const1 := alloc()
	for _, n := range p.inputNets {
		if slotOfNet[n] == unallocated {
			slotOfNet[n] = alloc()
		}
	}
	for i := range p.ffs {
		q := p.ffs[i].q
		if slotOfNet[q] == unallocated {
			slotOfNet[q] = alloc()
		}
	}

	// slotOf maps a canonical net to its slot; constants share the two
	// dedicated slots.
	slotOf := func(n int32) (int32, error) {
		switch b.kind[n] {
		case irKindC0:
			return const0, nil
		case irKindC1:
			return const1, nil
		}
		if s := slotOfNet[n]; s != unallocated {
			return s, nil
		}
		return 0, fmt.Errorf("sim: kernel: net %d read before any definition", n)
	}

	// Liveness: the last op position reading each temp. Roots (FF D pins,
	// kept outputs — prune marked their cones) must survive the whole pass
	// for Commit and output reads; flag them never-free.
	live := make([]*irOp, 0, len(b.ops))
	for i := range b.ops {
		if b.ops[i].live {
			live = append(live, &b.ops[i])
		}
	}
	lastUse := make([]int32, p.nets)
	rooted := make([]bool, p.nets)
	for i := range lastUse {
		lastUse[i] = -1
	}
	for pos, o := range live {
		for j := int8(0); j < o.nin; j++ {
			lastUse[o.in[j]] = int32(pos)
		}
	}
	for i := range p.ffs {
		rooted[b.resolve(p.ffs[i].d)] = true
	}
	for _, n := range p.outputNets {
		rooted[b.resolve(n)] = true
	}

	k := &Kernel{
		p:      p,
		code:   make([]kinstr, 0, len(live)),
		inSlot: make([]int32, len(p.inputNets)),
		ffQ:    make([]int32, len(p.ffs)),
		ffD:    make([]int32, len(p.ffs)),
		ffInit: make([]bool, len(p.ffs)),
		const0: const0,
		const1: const1,
	}
	var free []int32
	for pos, o := range live {
		code, err := encodeOp(o)
		if err != nil {
			return nil, err
		}
		var ops [4]int32
		for j := int8(0); j < o.nin; j++ {
			s, err := slotOf(o.in[j])
			if err != nil {
				return nil, err
			}
			ops[j] = s
		}
		// Free operand slots dying at this op before allocating the
		// destination, so in-place evaluation (dst = one of the operands)
		// is the common case — every kernel op reads all operands of a
		// word before writing that word, which makes aliasing safe.
		for j := int8(0); j < o.nin; j++ {
			n := o.in[j]
			if b.kind[n] == irKindOp && !rooted[n] && lastUse[n] == int32(pos) &&
				slotOfNet[n] != unallocated {
				free = append(free, slotOfNet[n])
				slotOfNet[n] = unallocated
			}
		}
		var dst int32
		if len(free) > 0 {
			dst = free[len(free)-1]
			free = free[:len(free)-1]
		} else {
			dst = alloc()
		}
		slotOfNet[o.out] = dst
		k.code = append(k.code, kinstr{
			op: code, dst: dst,
			a: ops[0], b: ops[1], c: ops[2], d: ops[3],
		})
	}

	for i := range p.ffs {
		k.ffQ[i] = slotOfNet[p.ffs[i].q]
		k.ffInit[i] = p.ffs[i].init
		s, err := slotOf(b.resolve(p.ffs[i].d))
		if err != nil {
			return nil, err
		}
		k.ffD[i] = s
	}
	k.outSlot = make([]int32, len(p.outputNets))
	for i, n := range p.outputNets {
		cn := b.resolve(n)
		if b.kind[cn] == irKindOp && slotOfNet[cn] == unallocated {
			k.outSlot[i] = -1 // pruned output port
			continue
		}
		s, err := slotOf(cn)
		if err != nil {
			k.outSlot[i] = -1
			continue
		}
		k.outSlot[i] = s
	}
	for i, n := range p.inputNets {
		k.inSlot[i] = slotOfNet[n]
	}
	k.slots = int(nextSlot)

	folded := 0
	for i := range b.ops {
		if b.ops[i].dead {
			folded++
		}
	}
	k.stats = KernelStats{
		ProgramOps: len(p.ops),
		KernelOps:  len(k.code),
		Folded:     folded,
		Fused:      b.fused,
		Pruned:     len(p.ops) - folded - len(k.code),
		Slots:      k.slots,
	}
	return k, nil
}

// encodeOp maps a surviving IR op to its kernel opcode.
func encodeOp(o *irOp) (kOp, error) {
	switch o.fn {
	case netlist.FuncBuf:
		return kBuf, nil
	case netlist.FuncInv:
		return kInv, nil
	case netlist.FuncAnd:
		return kAnd2 + kOp(o.nin-2), nil
	case netlist.FuncOr:
		return kOr2 + kOp(o.nin-2), nil
	case netlist.FuncNand:
		return kNand2 + kOp(o.nin-2), nil
	case netlist.FuncNor:
		return kNor2 + kOp(o.nin-2), nil
	case netlist.FuncXor:
		return kXor2, nil
	case netlist.FuncXnor:
		return kXnor2, nil
	case netlist.FuncMux2:
		return kMux2, nil
	case netlist.FuncAOI21:
		return kAOI21, nil
	case netlist.FuncOAI21:
		return kOAI21, nil
	case fnAO21:
		return kAO21, nil
	case fnOA21:
		return kOA21, nil
	case fnAndN:
		return kAndN, nil
	case fnOrN:
		return kOrN, nil
	}
	return 0, fmt.Errorf("sim: kernel: no opcode for %v/%d", o.fn, o.nin)
}

// BuildKernel compiles a program into a fused-op bytecode kernel. The
// kernel is immutable and safe for concurrent use by any number of
// KernelEngine instances.
func BuildKernel(p *Program, cfg KernelConfig) (*Kernel, error) {
	for _, port := range cfg.KeepOutputs {
		if port < 0 || port >= len(p.outputNets) {
			return nil, fmt.Errorf("sim: kernel: kept output port %d of %d", port, len(p.outputNets))
		}
	}
	b := newIR(p)
	b.simplify()
	b.fuse()
	b.prune(cfg.KeepOutputs)
	return b.buildKernel()
}
