package sim_test

// Property test: the three execution backends — ScalarEngine (n-ary
// reference semantics), the packed Engine interpreter and the compiled
// KernelEngine — must agree bit-for-bit on randomized netlists under
// random stimulus and random flip-flop upsets, across multiple cycles and
// batch widths. The generator deliberately includes the cell types the
// corpus generators underuse: TIEL/TIEH (constant folding paths), BUF
// (copy propagation), NAND/NOR (inverted forms) and AOI21/OAI21 (the
// fusion superops).

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/sim"
)

// randKernelNetlist generates a random valid netlist exercising every
// combinational cell type the standard library offers, including constant
// ties and buffers.
func randKernelNetlist(seed int64) (*netlist.Netlist, error) {
	rng := rand.New(rand.NewSource(seed))
	b := netlist.NewBuilder(fmt.Sprintf("kprop_%d", seed))

	nIn := 3 + rng.Intn(6)
	nFF := 2 + rng.Intn(6)
	nGates := 30 + rng.Intn(120)
	nOut := 2 + rng.Intn(4)

	pool := make([]netlist.NetID, 0, nIn+nFF+nGates+2)
	for i := 0; i < nIn; i++ {
		pool = append(pool, b.Input(fmt.Sprintf("in[%d]", i)))
	}
	pool = append(pool, b.Const0(), b.Const1())
	ffSet := make([]func(netlist.NetID), nFF)
	for i := 0; i < nFF; i++ {
		var q netlist.NetID
		q, ffSet[i] = b.DFFDecl(fmt.Sprintf("ff[%d]", i), rng.Intn(2) == 1)
		pool = append(pool, q)
	}
	pick := func() netlist.NetID { return pool[rng.Intn(len(pool))] }
	for g := 0; g < nGates; g++ {
		var out netlist.NetID
		switch rng.Intn(15) {
		case 0:
			out = b.Not(pick())
		case 1:
			out = b.Buf(pick())
		case 2:
			out = b.And(pick(), pick())
		case 3:
			out = b.And(pick(), pick(), pick(), pick())
		case 4:
			out = b.Or(pick(), pick())
		case 5:
			out = b.Or(pick(), pick(), pick())
		case 6:
			out = b.Nand(pick(), pick())
		case 7:
			out = b.Nor(pick(), pick())
		case 8:
			out = b.Xor(pick(), pick())
		case 9:
			out = b.Xnor(pick(), pick())
		case 10:
			out = b.Mux(pick(), pick(), pick())
		case 11:
			out = b.AOI21(pick(), pick(), pick())
		case 12:
			out = b.OAI21(pick(), pick(), pick())
		case 13:
			// Chains the fuse pass targets: INV over AND/OR, AND of OR.
			out = b.Not(b.And(pick(), pick()))
		default:
			out = b.Or(b.And(pick(), pick()), pick())
		}
		pool = append(pool, out)
	}
	for i := range ffSet {
		ffSet[i](pick())
	}
	for i := 0; i < nOut; i++ {
		b.Output(fmt.Sprintf("out[%d]", i), pick())
	}
	return b.Finish()
}

// TestKernelMatchesInterpreters drives one KernelEngine of W words against
// W independent packed Engines (word w ≡ narrow batch w) and a
// ScalarEngine shadowing lane 0 of word 0, with per-word random flip
// schedules, asserting every output word and flip-flop word agrees on
// every cycle.
func TestKernelMatchesInterpreters(t *testing.T) {
	var totFused, totFolded, totPruned int
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		nl, err := randKernelNetlist(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := sim.Compile(nl)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		k, err := sim.BuildKernel(p, sim.KernelConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st := k.Stats()
		if st.KernelOps > st.ProgramOps {
			t.Fatalf("seed %d: kernel grew: %+v", seed, st)
		}
		totFused += st.Fused
		totFolded += st.Folded
		totPruned += st.Pruned

		W := 1 + rng.Intn(4)
		ke := sim.NewKernelEngine(k, W)
		if ke.Lanes() != W*sim.Lanes {
			t.Fatalf("seed %d: lanes %d, want %d", seed, ke.Lanes(), W*sim.Lanes)
		}
		narrow := make([]*sim.Engine, W)
		for w := range narrow {
			narrow[w] = sim.NewEngine(p)
		}
		sc := sim.NewScalarEngine(p)

		nIn, nOut, nFF := p.NumInputs(), p.NumOutputs(), p.NumFFs()
		for cycle := 0; cycle < 24; cycle++ {
			for i := 0; i < nIn; i++ {
				v := rng.Intn(2) == 1
				ke.SetInputBool(i, v)
				for _, e := range narrow {
					e.SetInputBool(i, v)
				}
				sc.SetInput(i, v)
			}
			if rng.Intn(3) != 0 { // SEU injection on a random word
				ff, w := rng.Intn(nFF), rng.Intn(W)
				mask := rng.Uint64() | 1
				ke.FlipFF(ff, w, mask)
				narrow[w].FlipFF(ff, mask)
				if w == 0 {
					sc.FlipFF(ff)
				}
			}
			ke.Eval()
			sc.Eval()
			for w, e := range narrow {
				e.Eval()
				for i := 0; i < nOut; i++ {
					if got, want := ke.OutputWord(i, w), e.Output(i); got != want {
						t.Fatalf("seed %d cycle %d out %d word %d: kernel %016x, interp %016x",
							seed, cycle, i, w, got, want)
					}
				}
			}
			for i := 0; i < nOut; i++ {
				if got, want := sc.Output(i), narrow[0].Output(i)&1 == 1; got != want {
					t.Fatalf("seed %d cycle %d out %d: scalar %v, interp lane0 %v", seed, cycle, i, got, want)
				}
			}
			ke.Commit()
			sc.Commit()
			for w, e := range narrow {
				e.Commit()
				for f := 0; f < nFF; f++ {
					if got, want := ke.FFWord(f, w), e.FFState(f); got != want {
						t.Fatalf("seed %d cycle %d ff %d word %d: kernel %016x, interp %016x",
							seed, cycle, f, w, got, want)
					}
				}
			}
		}
	}
	// The generator feeds every optimization pass; across 25 seeds each
	// must have found work, or the compiler is silently a no-op.
	if totFused == 0 || totFolded == 0 || totPruned == 0 {
		t.Fatalf("optimizer idle across all seeds: fused=%d folded=%d pruned=%d",
			totFused, totFolded, totPruned)
	}
}

// TestKernelPrunedOutputs checks dead-fanout pruning against a restricted
// observed set: kept ports and all flip-flop state must stay bit-identical
// to the interpreter while reading a pruned port panics.
func TestKernelPrunedOutputs(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed * 104729))
		nl, err := randKernelNetlist(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p, err := sim.Compile(nl)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		k, err := sim.BuildKernel(p, sim.KernelConfig{KeepOutputs: []int{0}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ke := sim.NewKernelEngine(k, 2)
		e := sim.NewEngine(p)
		nIn, nFF := p.NumInputs(), p.NumFFs()
		for cycle := 0; cycle < 16; cycle++ {
			for i := 0; i < nIn; i++ {
				v := rng.Intn(2) == 1
				ke.SetInputBool(i, v)
				e.SetInputBool(i, v)
			}
			if cycle == 3 {
				mask := rng.Uint64()
				ke.FlipFF(0, 0, mask)
				e.FlipFF(0, mask)
			}
			ke.Eval()
			e.Eval()
			if got, want := ke.OutputWord(0, 0), e.Output(0); got != want {
				t.Fatalf("seed %d cycle %d: kept output diverged: %016x vs %016x", seed, cycle, got, want)
			}
			ke.Commit()
			e.Commit()
			for f := 0; f < nFF; f++ {
				if got, want := ke.FFWord(f, 0), e.FFState(f); got != want {
					t.Fatalf("seed %d cycle %d ff %d: %016x vs %016x", seed, cycle, f, got, want)
				}
			}
		}
	}
}

// TestKernelOutputWordPanicsOnPruned pins the contract that reading an
// output outside KeepOutputs is a programming error, not silent garbage.
func TestKernelOutputWordPanicsOnPruned(t *testing.T) {
	b := netlist.NewBuilder("pruned")
	a := b.Input("a")
	c := b.Input("c")
	b.Output("keep", b.And(a, c))
	b.Output("drop", b.Xor(a, c))
	nl, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	p, err := sim.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	k, err := sim.BuildKernel(p, sim.KernelConfig{KeepOutputs: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	e := sim.NewKernelEngine(k, 1)
	e.Eval()
	defer func() {
		if recover() == nil {
			t.Fatal("reading a pruned output port did not panic")
		}
	}()
	_ = e.OutputWord(1, 0)
}
